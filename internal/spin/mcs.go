package spin

import (
	"runtime"
	"sync/atomic"
)

// mcsNode is an MCS queue node. The flag and next pointer are together well
// under a cache line; nodes are heap-allocated per handle so distinct
// threads' nodes do not share lines in practice.
type mcsNode struct {
	locked atomic.Bool
	next   atomic.Pointer[mcsNode]
}

// MCS is a Mellor-Crummey–Scott queue lock: FIFO, local spinning on the
// waiter's own node. Included because the paper evaluated it (footnote 2)
// before settling on CLH as the stronger lock baseline.
type MCS struct {
	tail atomic.Pointer[mcsNode]
}

// MCSHandle is one goroutine's private view of an MCS lock.
type MCSHandle struct {
	lock *MCS
	node *mcsNode
}

// NewMCS returns an unlocked MCS lock.
func NewMCS() *MCS { return &MCS{} }

// NewHandle returns a per-goroutine handle on the lock.
func (l *MCS) NewHandle() *MCSHandle {
	return &MCSHandle{lock: l, node: &mcsNode{}}
}

// Lock acquires the lock.
func (h *MCSHandle) Lock() {
	n := h.node
	n.next.Store(nil)
	n.locked.Store(true)
	pred := h.lock.tail.Swap(n)
	if pred != nil {
		pred.next.Store(n)
		for n.locked.Load() {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock, handing it to the queue successor if one exists.
func (h *MCSHandle) Unlock() {
	n := h.node
	succ := n.next.Load()
	if succ == nil {
		if h.lock.tail.CompareAndSwap(n, nil) {
			return
		}
		// A successor is enqueueing; wait for it to link itself.
		for {
			succ = n.next.Load()
			if succ != nil {
				break
			}
			runtime.Gosched()
		}
	}
	succ.locked.Store(false)
}
