package queue

import "testing"

// FuzzQueueEquivalence drives every queue implementation with a fuzzed op
// string against the reference model (seed corpus runs under plain go test;
// use -fuzz for coverage-guided exploration).
func FuzzQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 1})
	f.Add([]byte{1})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		impls := all(1)
		refs := make([][]uint64, len(impls))
		for step, o := range ops {
			if o%2 == 0 {
				v := uint64(step) + 1
				for i, q := range impls {
					q.Enqueue(0, v)
					refs[i] = append(refs[i], v)
				}
			} else {
				for i, q := range impls {
					v, ok := q.Dequeue(0)
					if len(refs[i]) == 0 {
						if ok {
							t.Fatalf("%s: dequeue on empty returned %d", q.Name(), v)
						}
						continue
					}
					want := refs[i][0]
					refs[i] = refs[i][1:]
					if !ok || v != want {
						t.Fatalf("%s: dequeue = (%d,%v), want (%d,true)", q.Name(), v, ok, want)
					}
				}
			}
		}
	})
}
