package trace

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
)

// payloadMagic ties each event's B word to its A word so a mixed (torn)
// payload is detectable: every writer maintains B = A ^ payloadMagic.
const payloadMagic = 0x9E3779B97F4A7C15

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tt := tr.OpStart(0); tt != 0 {
		t.Fatalf("nil OpStart = %d, want 0", tt)
	}
	tr.OpCommit(0, 1, 2, 3, 4)
	tr.OpServed(0, 1)
	tr.Instant(0, KindCASFail, 1, 2)
	tr.Rare(0, KindBackoffGrow, 1, 2)
	tr.AnonInstant(KindHazardOverflow, 1, 2)
	if evs := tr.Snapshot(); evs != nil {
		t.Fatalf("nil Snapshot = %v, want nil", evs)
	}
	if s, c := tr.Progress(0); s != 0 || c != 0 {
		t.Fatalf("nil Progress = %d,%d", s, c)
	}
	if tr.N() != 0 || tr.Capacity() != 0 || tr.TotalCommitted() != 0 {
		t.Fatal("nil accessors not zero")
	}
}

func TestRoundEventRecorded(t *testing.T) {
	tr := New(2, WithSampleEvery(1))
	t0 := tr.OpStart(1)
	if t0 == 0 {
		t.Fatal("sampled OpStart returned 0")
	}
	tr.OpCommit(1, t0, 5, 3, 5)
	evs := tr.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Pid != 1 || ev.Kind != KindRound || ev.A != 5 || ev.B != 3 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.Start != t0 || ev.Dur < 0 {
		t.Fatalf("bad stamps: start=%d t0=%d dur=%d", ev.Start, t0, ev.Dur)
	}
	if s, c := tr.Progress(1); s != 1 || c != 1 {
		t.Fatalf("progress = %d,%d, want 1,1", s, c)
	}
}

func TestSamplingGatesRoundEvents(t *testing.T) {
	tr := New(1, WithSampleEvery(4))
	for i := 0; i < 16; i++ {
		t0 := tr.OpStart(0)
		wantSampled := i%4 == 0
		if (t0 != 0) != wantSampled {
			t.Fatalf("op %d: sampled=%v, want %v", i, t0 != 0, wantSampled)
		}
		tr.Instant(0, KindCASFail, uint64(i), 0)
		tr.OpCommit(0, t0, 1, 1, 1)
	}
	var rounds, instants int
	for _, ev := range tr.Snapshot() {
		switch ev.Kind {
		case KindRound:
			rounds++
		case KindCASFail:
			instants++
		}
	}
	if rounds != 4 || instants != 4 {
		t.Fatalf("rounds=%d instants=%d, want 4,4", rounds, instants)
	}
	// Progress counters are never sampled.
	if s, c := tr.Progress(0); s != 16 || c != 16 {
		t.Fatalf("progress = %d,%d, want 16,16", s, c)
	}
}

func TestRareBypassesSampling(t *testing.T) {
	tr := New(1, WithSampleEvery(1024))
	tr.OpStart(0) // op 0 sampled; subsequent ops are not
	tr.OpCommit(0, 0, 1, 1, 1)
	tr.OpStart(0)
	tr.Rare(0, KindBackoffGrow, 512, 0)
	tr.OpCommit(0, 0, 1, 1, 1)
	var grows int
	for _, ev := range tr.Snapshot() {
		if ev.Kind == KindBackoffGrow && ev.A == 512 {
			grows++
		}
	}
	if grows != 1 {
		t.Fatalf("grow events = %d, want 1", grows)
	}
}

func TestOverwriteOldest(t *testing.T) {
	tr := New(1, WithCapacity(16), WithSampleEvery(1))
	const total = 100
	for i := 0; i < total; i++ {
		tr.Rare(0, KindRecycleMiss, uint64(i), 0)
	}
	evs := tr.SnapshotPid(0)
	if len(evs) != 16 {
		t.Fatalf("got %d events, want capacity 16", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(total - 16 + i)
		if ev.Seq != wantSeq || ev.A != wantSeq {
			t.Fatalf("event %d: seq=%d a=%d, want %d (newest survive)", i, ev.Seq, ev.A, wantSeq)
		}
	}
}

func TestAnonInstant(t *testing.T) {
	tr := New(1)
	tr.AnonInstant(KindHazardOverflow, 7, 0)
	evs := tr.Snapshot()
	if len(evs) != 1 || evs[0].Pid != AnonPid || evs[0].Kind != KindHazardOverflow || evs[0].A != 7 {
		t.Fatalf("unexpected anon events %+v", evs)
	}
}

// TestConcurrentWritersSnapshotRace is the -race torn-event test: per-pid
// writers hammer small rings (maximizing overwrites) while readers snapshot
// concurrently. Every returned event must be internally consistent
// (B == A ^ payloadMagic) and per-pid sequence stamps strictly monotone.
func TestConcurrentWritersSnapshotRace(t *testing.T) {
	const (
		pids  = 4
		ops   = 20000
		snaps = 200
	)
	tr := New(pids, WithCapacity(16), WithSampleEvery(1))
	var wg sync.WaitGroup
	for pid := 0; pid < pids; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				t0 := tr.OpStart(pid)
				a := uint64(pid)<<32 | uint64(i)
				tr.Instant(pid, KindCASFail, a, a^payloadMagic)
				tr.OpCommit(pid, t0, a, a^payloadMagic, a)
				tr.AnonInstant(KindHazardOverflow, a, a^payloadMagic)
			}
		}(pid)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for s := 0; s < snaps; s++ {
				// Every event in the global snapshot — including the shared
				// anon ring's — must be internally consistent.
				for _, ev := range tr.Snapshot() {
					if ev.B != ev.A^payloadMagic {
						t.Errorf("torn event returned: %+v", ev)
						return
					}
				}
				// Per-pid sequence stamps must be strictly monotone (in
				// particular unique: a torn slot reuse would duplicate one).
				for pid := 0; pid < pids; pid++ {
					evs := tr.SnapshotPid(pid)
					for i := 1; i < len(evs); i++ {
						if evs[i].Seq <= evs[i-1].Seq {
							t.Errorf("pid %d seq not monotone: %d after %d", pid, evs[i].Seq, evs[i-1].Seq)
							return
						}
					}
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	readers.Wait()
	for pid := 0; pid < pids; pid++ {
		if s, c := tr.Progress(pid); s != ops || c != ops {
			t.Fatalf("pid %d progress = %d,%d, want %d,%d", pid, s, c, ops, ops)
		}
	}
	if got := tr.TotalCommitted(); got != pids*ops {
		t.Fatalf("TotalCommitted = %d, want %d", got, pids*ops)
	}
}

func TestSnapshotOrderedByStart(t *testing.T) {
	tr := New(3, WithSampleEvery(1))
	for i := 0; i < 30; i++ {
		pid := i % 3
		t0 := tr.OpStart(pid)
		tr.OpCommit(pid, t0, 1, 1, 1)
	}
	evs := tr.Snapshot()
	if len(evs) != 30 {
		t.Fatalf("got %d events, want 30", len(evs))
	}
	var last obs.Stamp
	for _, ev := range evs {
		if ev.Start < last {
			t.Fatalf("snapshot not ordered by start: %d after %d", ev.Start, last)
		}
		last = ev.Start
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New(1, WithCapacity(100)).Capacity(); got != 128 {
		t.Fatalf("capacity = %d, want 128", got)
	}
	if got := New(1, WithCapacity(1)).Capacity(); got != 16 {
		t.Fatalf("capacity = %d, want min 16", got)
	}
	if got := New(2).Capacity(); got != DefaultCapacity {
		t.Fatalf("capacity = %d, want default %d", got, DefaultCapacity)
	}
}
