package v2

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/check"
)

// ErrNotDifferentiated is returned by ForwardQueue when two enqueues carry
// the same value: the axiom checker's completeness theorem needs unique
// values to pair each dequeue with its enqueue. Callers fall back to the
// generic frontier engine (or the search) for such histories.
var ErrNotDifferentiated = errors.New("queue checker: enqueued values are not unique")

const infTime = int64(1) << 62

// pair joins a value's enqueue and dequeue (indices into the history;
// -1 = absent).
type pair struct {
	enq, deq int
}

// ForwardQueue decides linearizability of a complete queue history — only
// check.OpEnqueue and check.OpDequeue, with pairwise-distinct enqueued
// values — in O(n log n), with no limit on how many operations overlap.
//
// It checks the aspect-oriented queue conditions (Henzinger, Sezgin &
// Vafeiadis, CONCUR'13), which are sound and complete for differentiated
// complete histories:
//
//	VFresh — a dequeue returns a value no enqueue supplied.
//	VRepet — two dequeues return the same value.
//	pair order — a value's dequeue completes before its enqueue begins.
//	VOrd  — FIFO inversion: enq(x) precedes enq(y) in real time, y is
//	        dequeued, but x's dequeue (if any) begins only after y's
//	        dequeue returns, so no interleaving dequeues x first.
//	VWit  — an empty dequeue runs while the queue is provably non-empty:
//	        its whole window is covered by intervals (retEnq(x), invDeq(x))
//	        during which value x is certainly in the queue. Coverage is by
//	        the UNION of merged intervals — a single witness value is not
//	        enough, since different values can block different sub-windows.
//
// The VOrd scan sorts enqueues by return time and keeps a prefix maximum of
// their dequeue-invocation times; each dequeued value then needs one binary
// search. VWit merges the blocking intervals once and binary-searches each
// empty dequeue against them.
func ForwardQueue(ops []check.Operation) error {
	byVal := make(map[uint64]*pair, len(ops))
	at := func(v uint64) *pair {
		p := byVal[v]
		if p == nil {
			p = &pair{enq: -1, deq: -1}
			byVal[v] = p
		}
		return p
	}
	var empties []int
	for i, o := range ops {
		if o.Invoke >= o.Return {
			return fmt.Errorf("queue checker: operation %v has an empty or inverted window", o)
		}
		switch o.Op {
		case check.OpEnqueue:
			p := at(o.Arg)
			if p.enq >= 0 {
				return fmt.Errorf("%w: value %d enqueued by %v and %v", ErrNotDifferentiated, o.Arg, ops[p.enq], o)
			}
			p.enq = i
		case check.OpDequeue:
			if !o.RetOK {
				empties = append(empties, i)
				continue
			}
			p := at(o.Ret)
			if p.deq >= 0 {
				return fmt.Errorf("%w: value %d dequeued twice, by %v and %v", ErrRejected, o.Ret, ops[p.deq], o)
			}
			p.deq = i
		default:
			return fmt.Errorf("queue checker: unsupported operation %q in %v", o.Op, o)
		}
	}

	// VFresh and per-pair timing.
	for v, p := range byVal {
		if p.deq < 0 {
			continue
		}
		if p.enq < 0 {
			return fmt.Errorf("%w: %v returned value %d that no enqueue supplied", ErrRejected, ops[p.deq], v)
		}
		if ops[p.deq].Return < ops[p.enq].Invoke {
			return fmt.Errorf("%w: %v completed before its enqueue %v began", ErrRejected, ops[p.deq], ops[p.enq])
		}
	}

	// VOrd. Sort enqueues by return time; alongside each keep the invoke
	// time of its dequeue (infTime if the value was never dequeued — an
	// undequeued value blocks every later-enqueued value's dequeue order).
	type enqInfo struct {
		retE   int64
		dInv   int64
		val    uint64
		enqIdx int
	}
	enqs := make([]enqInfo, 0, len(byVal))
	for v, p := range byVal {
		e := enqInfo{retE: ops[p.enq].Return, dInv: infTime, val: v, enqIdx: p.enq}
		if p.deq >= 0 {
			e.dInv = ops[p.deq].Invoke
		}
		enqs = append(enqs, e)
	}
	sort.Slice(enqs, func(a, b int) bool { return enqs[a].retE < enqs[b].retE })
	// prefMax[i] = max dInv over enqs[0..i]; argMax tracks a witness value.
	prefMax := make([]int64, len(enqs))
	argMax := make([]int, len(enqs))
	for i := range enqs {
		prefMax[i] = enqs[i].dInv
		argMax[i] = i
		if i > 0 && prefMax[i-1] > prefMax[i] {
			prefMax[i] = prefMax[i-1]
			argMax[i] = argMax[i-1]
		}
	}
	for _, p := range byVal {
		if p.deq < 0 {
			continue
		}
		invE, retD := ops[p.enq].Invoke, ops[p.deq].Return
		// Enqueues that certainly precede this value's enqueue: retE < invE.
		idx := sort.Search(len(enqs), func(i int) bool { return enqs[i].retE >= invE })
		if idx == 0 {
			continue
		}
		if prefMax[idx-1] > retD {
			x := enqs[argMax[idx-1]]
			return fmt.Errorf("%w: FIFO violation — %v precedes %v but value %d was dequeued by %v before value %d could be (its dequeue %s)",
				ErrRejected, ops[x.enqIdx], ops[p.enq], ops[p.deq].Ret, ops[p.deq], x.val, describeDeq(ops, byVal[x.val]))
		}
	}

	// VWit. Value x certainly occupies the queue throughout the open
	// interval (retEnq(x), invDeq(x)). Merge these; an empty dequeue whose
	// whole open window (inv, ret) lies inside one merged interval observed
	// a provably non-empty queue.
	if len(empties) > 0 {
		type ival struct{ a, b int64 }
		var blocks []ival
		for _, p := range byVal {
			if p.enq < 0 {
				continue
			}
			a := ops[p.enq].Return
			b := infTime
			if p.deq >= 0 {
				b = ops[p.deq].Invoke
			}
			if b > a {
				blocks = append(blocks, ival{a, b})
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].a < blocks[j].a })
		merged := blocks[:0]
		for _, iv := range blocks {
			if n := len(merged); n > 0 && iv.a < merged[n-1].b {
				if iv.b > merged[n-1].b {
					merged[n-1].b = iv.b
				}
				continue
			}
			merged = append(merged, iv)
		}
		for _, di := range empties {
			d := ops[di]
			// Strict on both ends: equal stamps mean CONCURRENT (the search
			// engine's Invoke <= minReturn convention), so an interval
			// merely touching d's window does not pin it.
			idx := sort.Search(len(merged), func(i int) bool { return merged[i].a >= d.Invoke })
			if idx > 0 && merged[idx-1].b > d.Return {
				return fmt.Errorf("%w: %v observed an empty queue, but the queue is non-empty throughout (%d, %d)",
					ErrRejected, d, merged[idx-1].a, merged[idx-1].b)
			}
		}
	}
	return nil
}

func describeDeq(ops []check.Operation, p *pair) string {
	if p.deq < 0 {
		return "never happened"
	}
	return fmt.Sprintf("began at %d", ops[p.deq].Invoke)
}
