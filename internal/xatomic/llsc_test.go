package xatomic

import (
	"sync"
	"testing"
)

func TestLLSCBasicRoundTrip(t *testing.T) {
	l := NewLLSC(42)
	v, tag := l.LL()
	if v != 42 {
		t.Fatalf("LL returned %d, want 42", v)
	}
	if !l.SC(tag, 43) {
		t.Fatal("SC with fresh tag failed")
	}
	if l.Read() != 43 {
		t.Fatalf("Read = %d, want 43", l.Read())
	}
}

func TestLLSCFailsAfterInterveningSC(t *testing.T) {
	l := NewLLSC(0)
	_, tag1 := l.LL()
	_, tag2 := l.LL()
	if !l.SC(tag2, 1) {
		t.Fatal("first SC failed")
	}
	if l.SC(tag1, 2) {
		t.Fatal("SC with stale tag succeeded")
	}
	if l.Read() != 1 {
		t.Fatalf("Read = %d, want 1", l.Read())
	}
}

func TestLLSCSecondSCSameTagFails(t *testing.T) {
	l := NewLLSC(0)
	_, tag := l.LL()
	if !l.SC(tag, 1) {
		t.Fatal("first SC failed")
	}
	if l.SC(tag, 2) {
		t.Fatal("second SC with the same tag succeeded")
	}
}

func TestLLSCValidate(t *testing.T) {
	l := NewLLSC(0)
	_, tag := l.LL()
	if !l.VL(tag) {
		t.Fatal("VL failed with no intervening SC")
	}
	_, tag2 := l.LL()
	l.SC(tag2, 5)
	if l.VL(tag) {
		t.Fatal("VL succeeded after an intervening SC")
	}
}

// TestLLSCSameValueNoABA: an SC that writes the SAME value still invalidates
// older tags — the property a plain CAS on the value would lack.
func TestLLSCSameValueNoABA(t *testing.T) {
	l := NewLLSC(7)
	_, old := l.LL()
	_, mid := l.LL()
	if !l.SC(mid, 7) { // write the same value
		t.Fatal("SC failed")
	}
	if l.SC(old, 8) {
		t.Fatal("stale SC succeeded despite intervening same-value SC (ABA)")
	}
}

func TestLLSCStructValues(t *testing.T) {
	type pair struct{ a, b int }
	l := NewLLSC(pair{1, 2})
	v, tag := l.LL()
	v.a = 10
	if !l.SC(tag, v) {
		t.Fatal("SC failed")
	}
	if got := l.Read(); got != (pair{10, 2}) {
		t.Fatalf("Read = %+v", got)
	}
}

// TestLLSCConcurrentCounter: concurrent LL/SC increments with retry — final
// value must equal total increments (atomicity) and each success must
// observe a distinct previous value.
func TestLLSCConcurrentCounter(t *testing.T) {
	const workers, per = 8, 300
	l := NewLLSC(uint64(0))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					v, tag := l.LL()
					if l.SC(tag, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Read(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestLLSCExactlyOneWinner: many concurrent SCs against one LL generation —
// exactly one must succeed.
func TestLLSCExactlyOneWinner(t *testing.T) {
	const workers = 16
	for round := 0; round < 50; round++ {
		l := NewLLSC(0)
		var wins int32
		var mu sync.Mutex
		var wg, linked sync.WaitGroup
		linked.Add(workers) // barrier: every LL completes before any SC
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				_, tag := l.LL()
				linked.Done()
				linked.Wait()
				if l.SC(tag, id+1) {
					mu.Lock()
					wins++
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("round %d: %d SC winners, want exactly 1", round, wins)
		}
	}
}
