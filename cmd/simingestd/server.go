package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/retention"
	"repro/internal/spool"
)

// server is the ingest daemon: -shards independent Pipelines (each a
// SimQueue in front of a P-Sim spool with its own drain loop and retention
// runner), served over the same pipelined TCP shape as the KV server.
//
// Connection slot s publishes into partition s%shards under producer pid
// s/shards, so every process id keeps the construction's single-writer
// announce discipline. POLL and HWM read PSim.Read snapshots and need no
// process id at all — a consumer can never block a producer.
//
// Protocol (one request per line; responses in request order):
//
//	PUB <payload>              -> OK <seq>       (per-producer sequence stamp)
//	POLL <part> <cursor> <max> -> EVT <off> <producer> <seq> <payload> ...
//	                              END <next> <skipped>
//	HWM <part>                 -> HWM <low> <end>
//	STATS                      -> PART <i> low=… end=… sealed=… expired=… skipped=… passes=…
//	                              (one line per partition: spool watermarks,
//	                              seal/expiry totals, POLL reads that lost
//	                              events to retention, retention passes)
//	                              STATS appended=… drained=… low=… end=… passes=…
//	QUIT                       -> BYE
//
// Pipelining: consecutive queued PUB lines execute as ONE AppendBatch
// vector (one EnqueueBatch announce per run instead of one per event);
// responses are byte-identical to the one-at-a-time protocol.
type server struct {
	parts   []*ingest.Pipeline
	runners []*retention.Runner[spool.Event] // nil entries when the policy is empty
	perPart int                 // producer slots per partition
	drainID int
	retID   int
	batch   int // max queued PUB lines executed as one AppendBatch

	ids    chan int
	ln     net.Listener
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	drainStop chan struct{}
	drainWG   sync.WaitGroup

	reg    *obs.Registry
	tracer *trace.Tracer

	cPub, cPoll, cHwm, cStats, cErr *obs.Counter
	pollSkip                        []*obs.Counter // per partition: events lost to retention before a POLL arrived
	gConns                          *obs.Gauge
}

// serverConfig sizes a server.
type serverConfig struct {
	clients    int
	shards     int
	batch      int
	spool      spool.Config
	policy     retention.Policy
	retainTick time.Duration
	flight     int // flight-recorder capacity; 0 disables
	flightSamp int
	timeline   time.Duration // telemetry-timeline scrape interval; 0 disables
	slo        string        // SLO rule spec evaluated over the timeline
}

func newServer(cfg serverConfig) *server {
	if cfg.clients < 1 {
		cfg.clients = 1
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.shards > cfg.clients {
		cfg.shards = cfg.clients
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.retainTick <= 0 {
		cfg.retainTick = 50 * time.Millisecond
	}
	perPart := (cfg.clients + cfg.shards - 1) / cfg.shards
	s := &server{
		parts:     make([]*ingest.Pipeline, cfg.shards),
		runners:   make([]*retention.Runner[spool.Event], cfg.shards),
		perPart:   perPart,
		drainID:   perPart,
		retID:     perPart + 1,
		batch:     cfg.batch,
		ids:       make(chan int, cfg.clients),
		conns:     map[net.Conn]struct{}{},
		drainStop: make(chan struct{}),
		reg:       obs.NewRegistry(),
	}
	s.cPub = s.reg.Counter("ingest_pub_total", cfg.clients)
	s.cPoll = s.reg.Counter("ingest_poll_total", cfg.clients)
	s.cHwm = s.reg.Counter("ingest_hwm_total", cfg.clients)
	s.cStats = s.reg.Counter("ingest_stats_total", cfg.clients)
	s.cErr = s.reg.Counter("ingest_err_total", cfg.clients)
	s.gConns = s.reg.Gauge("ingest_connections")
	s.pollSkip = make([]*obs.Counter, cfg.shards)
	for i := range s.pollSkip {
		s.pollSkip[i] = s.reg.Counter(
			obs.Labeled("ingest_poll_skipped_total", "partition", strconv.Itoa(i)), cfg.clients)
	}
	if cfg.flight > 0 {
		opts := []trace.Option{trace.WithCapacity(cfg.flight)}
		if cfg.flightSamp > 1 {
			opts = append(opts, trace.WithSampleEvery(cfg.flightSamp))
		}
		s.tracer = trace.New(perPart+2, opts...)
	}
	for i := range s.parts {
		p := ingest.New(perPart+2, ingest.Config{Batch: cfg.batch, Spool: cfg.spool})
		p.Instrument(s.reg, obs.Labeled("ingest", "partition", strconv.Itoa(i)))
		if i == 0 && s.tracer != nil {
			// One partition on the flight recorder: process ids repeat across
			// partitions, and each per-pid ring must keep a single writer.
			p.SetTracer(s.tracer)
		}
		s.parts[i] = p
		if cfg.policy.MaxAge > 0 || cfg.policy.MaxSegments > 0 || cfg.policy.MaxEvents > 0 {
			r := retention.NewRunner(p.Spool(), s.retID, cfg.policy)
			r.Start(cfg.retainTick)
			s.runners[i] = r
		}
	}
	for i := 0; i < cfg.clients; i++ {
		s.ids <- i
	}
	for i := range s.parts {
		s.drainWG.Add(1)
		go s.drainLoop(s.parts[i])
	}
	return s
}

// drainLoop is partition p's dedicated drainer: it owns process id drainID
// and moves queue batches into the spool until shutdown, with a final sweep
// so no accepted event is stranded in the queue.
func (s *server) drainLoop(p *ingest.Pipeline) {
	defer s.drainWG.Done()
	const chunk = 128
	for {
		n := p.Drain(s.drainID, chunk)
		if n > 0 {
			continue
		}
		select {
		case <-s.drainStop:
			for p.Drain(s.drainID, chunk) > 0 {
			}
			return
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// Registry returns the daemon's metrics registry for HTTP export.
func (s *server) Registry() *obs.Registry { return s.reg }

// Tracer returns the flight recorder (nil unless enabled).
func (s *server) Tracer() *trace.Tracer { return s.tracer }

// Listen starts accepting connections and returns the bound address.
func (s *server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		slot := <-s.ids
		s.wg.Add(1)
		s.gConns.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.gConns.Add(-1)
			defer func() { s.ids <- slot }()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(slot, conn)
		}()
	}
}

func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the listener, closes in-flight connections, stops retention
// and drain loops (after a final queue sweep), and waits for everything.
func (s *server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	for _, r := range s.runners {
		if r != nil {
			r.Stop()
		}
	}
	close(s.drainStop)
	s.drainWG.Wait()
	return err
}

// serveConn handles one connection on slot: partition slot%shards, producer
// pid slot/shards. The loop is the kvserver's pipelined shape — block for
// one request, drain already-queued complete lines up to the batch depth,
// execute PUB runs as one AppendBatch, respond in order, flush once.
func (s *server) serveConn(slot int, conn net.Conn) {
	part := slot % len(s.parts)
	pid := slot / len(s.parts)
	labels := pprof.Labels("pid", strconv.Itoa(pid), "object", "ingest"+strconv.Itoa(part))
	pprof.Do(context.Background(), labels, func(context.Context) {
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		ex := &executor{s: s, p: s.parts[part], slot: slot, pid: pid, w: w}
		lines := make([]string, 0, s.batch)
		for {
			line, err := r.ReadString('\n')
			if line == "" && err != nil {
				return
			}
			lines = append(lines[:0], line)
			for len(lines) < s.batch && bufferedLine(r) {
				line, err = r.ReadString('\n')
				if line == "" {
					break
				}
				lines = append(lines, line)
			}
			quit := ex.run(lines)
			if w.Flush() != nil || quit || err != nil {
				return
			}
		}
	})
}

// bufferedLine reports whether r holds a complete line that can be read
// without touching the connection.
func bufferedLine(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	b, _ := r.Peek(n)
	return bytes.IndexByte(b, '\n') >= 0
}

// executor accumulates a run of consecutive PUB payloads and submits each
// run as one AppendBatch vector. Slices are reused across batches.
type executor struct {
	s    *server
	p    *ingest.Pipeline
	slot int
	pid  int
	w    *bufio.Writer

	payloads []uint64
	seqs     []uint64
	evs      []ingest.Event
}

// run executes one batch of request lines; quit reports a QUIT.
func (ex *executor) run(lines []string) (quit bool) {
	for _, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if strings.EqualFold(fields[0], "PUB") && len(fields) == 2 {
			if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				ex.payloads = append(ex.payloads, v)
				continue
			}
		}
		// Anything else is a run barrier handled one at a time.
		ex.flushPubs()
		if ex.handle(fields) {
			return true
		}
	}
	ex.flushPubs()
	return false
}

// flushPubs submits the pending PUB run as one AppendBatch and writes the
// OK <seq> responses.
func (ex *executor) flushPubs() {
	if len(ex.payloads) == 0 {
		return
	}
	ex.s.cPub.Add(ex.slot, uint64(len(ex.payloads)))
	ex.seqs = ex.p.AppendBatch(ex.pid, ex.payloads, ex.seqs[:0])
	for _, q := range ex.seqs {
		fmt.Fprintf(ex.w, "OK %d\n", q)
	}
	ex.payloads = ex.payloads[:0]
}

// handle serves one non-PUB request; quit reports a QUIT.
func (ex *executor) handle(fields []string) (quit bool) {
	s := ex.s
	switch strings.ToUpper(fields[0]) {
	case "POLL":
		if len(fields) != 4 {
			s.cErr.Inc(ex.slot)
			fmt.Fprintln(ex.w, "ERR usage: POLL <part> <cursor> <max>")
			return false
		}
		part, err1 := strconv.Atoi(fields[1])
		cursor, err2 := strconv.ParseUint(fields[2], 10, 64)
		max, err3 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || err3 != nil || part < 0 || part >= len(s.parts) || max < 1 {
			s.cErr.Inc(ex.slot)
			fmt.Fprintln(ex.w, "ERR POLL arguments out of range")
			return false
		}
		s.cPoll.Inc(ex.slot)
		v := s.parts[part].View()
		evs, next, skipped := v.Read(cursor, max, ex.evs[:0])
		ex.evs = evs
		if skipped > 0 {
			s.pollSkip[part].Add(ex.slot, skipped)
		}
		off := next - uint64(len(evs))
		for i, ev := range evs {
			fmt.Fprintf(ex.w, "EVT %d %d %d %d\n", off+uint64(i), ev.Producer, ev.Seq, ev.Payload)
		}
		fmt.Fprintf(ex.w, "END %d %d\n", next, skipped)
	case "HWM":
		if len(fields) != 2 {
			s.cErr.Inc(ex.slot)
			fmt.Fprintln(ex.w, "ERR usage: HWM <part>")
			return false
		}
		part, err := strconv.Atoi(fields[1])
		if err != nil || part < 0 || part >= len(s.parts) {
			s.cErr.Inc(ex.slot)
			fmt.Fprintln(ex.w, "ERR no such partition")
			return false
		}
		s.cHwm.Inc(ex.slot)
		v := s.parts[part].View()
		fmt.Fprintf(ex.w, "HWM %d %d\n", v.LowWater(), v.End())
	case "STATS":
		s.cStats.Inc(ex.slot)
		var appended, drained, low, end, passes uint64
		for i, p := range s.parts {
			st := p.Stats()
			appended += st.Appended
			drained += st.Drained
			v := p.View()
			low += v.LowWater()
			end += v.End()
			var partPasses uint64
			if r := s.runners[i]; r != nil {
				partPasses = r.Passes()
			}
			passes += partPasses
			fmt.Fprintf(ex.w, "PART %d low=%d end=%d sealed=%d expired=%d skipped=%d passes=%d\n",
				i, v.LowWater(), v.End(), v.SealedTotal(), v.ExpiredTotal(),
				s.pollSkip[i].Total(), partPasses)
		}
		fmt.Fprintf(ex.w, "STATS appended=%d drained=%d low=%d end=%d passes=%d\n",
			appended, drained, low, end, passes)
	case "QUIT":
		fmt.Fprintln(ex.w, "BYE")
		return true
	default:
		s.cErr.Inc(ex.slot)
		fmt.Fprintln(ex.w, "ERR unknown command "+strings.ToUpper(fields[0]))
	}
	return false
}
