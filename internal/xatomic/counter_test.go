package xatomic

import (
	"sync"
	"testing"
)

func TestAccessCounterNilSafe(t *testing.T) {
	var c *AccessCounter
	c.Inc(0) // must not panic
	c.Add(3, 10)
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("nil counter Total != 0")
	}
	if c.PerThread() != nil {
		t.Fatal("nil counter PerThread != nil")
	}
}

func TestAccessCounterAddTotal(t *testing.T) {
	c := NewAccessCounter(4)
	c.Inc(0)
	c.Add(1, 5)
	c.Add(3, 2)
	if got := c.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
	per := c.PerThread()
	want := []uint64{1, 5, 0, 2}
	for i := range want {
		if per[i] != want[i] {
			t.Fatalf("PerThread = %v, want %v", per, want)
		}
	}
}

func TestAccessCounterReset(t *testing.T) {
	c := NewAccessCounter(2)
	c.Add(0, 3)
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("Total after Reset = %d", c.Total())
	}
}

func TestAccessCounterConcurrent(t *testing.T) {
	const n, per = 8, 1000
	c := NewAccessCounter(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				c.Inc(id)
			}
		}(i)
	}
	wg.Wait()
	if got := c.Total(); got != n*per {
		t.Fatalf("Total = %d, want %d", got, n*per)
	}
}
