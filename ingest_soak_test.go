package simuc_test

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/check"
	v2 "repro/internal/check/v2"
	"repro/internal/ingest"
	"repro/internal/spool"
)

// TestIngestSoakHistory10k drives the full ingest pipeline — producers
// batching appends into the wait-free queue, a drainer moving batches into
// the spool, a retention pass trimming the log, consumers reading cursor
// snapshots — while recording a 10,000-event produce/consume/retention
// history in the internal/check text format, then validates it with the
// compositional checker in -engine both mode (forward engine decides every
// partition; the Wing–Gong search cross-checks the partitions within its
// 64-operation reach and bows out of the rest with ErrTooLarge).
//
// The history composes two object classes:
//
//   - queue: producers record each AppendBatch as per-element enq ops
//     sharing the batch's call window (the vector linearizes contiguously);
//     the drainer records DequeueBatch the same way, with unfilled slots
//     returned as deq-empty.
//   - log: the drainer records each spool AppendBatch element as lapp with
//     its assigned offset; retention records TrimTo as ltrim (the spec
//     admits the segment-granular result through the returned watermark);
//     a consumer records single-event cursor reads as lget.
//
// The spool's ring bound is disabled so every watermark movement in the
// real execution is a recorded ltrim — otherwise the history would contain
// unannounced trims the log spec cannot account for.
func TestIngestSoakHistory10k(t *testing.T) {
	const (
		producers = 4
		perProd   = 2500 // producers*perProd = 10_000 events
		appBatch  = 8
		drainID   = producers
		retID     = producers + 1
		conTID    = producers + 2 // recorder thread ids for consumers
		total     = producers * perProd
		keep      = 128 // retention target: retain at most ~2*keep events
	)
	p := ingest.New(producers+2, ingest.Config{
		Batch: appBatch,
		Spool: spool.Config{SegEvents: 64, MaxSegments: 1 << 20},
	})
	q, sp := p.Queue(), p.Spool()
	rec := check.NewRecorder(120_000)

	var drained atomic.Uint64
	prodDone := make(chan struct{}, producers)

	// Producers: unique payloads (pid<<16|k+1, well within the 32-bit bound
	// the lget packing needs), recorded per element around each AppendBatch.
	for i := 0; i < producers; i++ {
		go func(pid int) {
			defer func() { prodDone <- struct{}{} }()
			payloads := make([]uint64, 0, appBatch)
			seqs := make([]uint64, 0, appBatch)
			slots := make([]int, 0, appBatch)
			for k := 0; k < perProd; k += appBatch {
				payloads, slots = payloads[:0], slots[:0]
				for j := 0; j < appBatch && k+j < perProd; j++ {
					v := uint64(pid)<<16 | uint64(k+j+1)
					payloads = append(payloads, v)
					slots = append(slots, rec.Invoke(pid, check.OpEnqueue, v))
				}
				seqs = p.AppendBatch(pid, payloads, seqs[:0])
				for _, s := range slots {
					rec.Return(s, 0, false)
				}
			}
		}(i)
	}

	// Drainer: DequeueBatch recorded per element (misses as deq-empty —
	// sound because a short batch means the queue WAS empty inside the
	// window), then the spool AppendBatch recorded as lapp per element.
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		const want = 32
		evs := make([]ingest.Event, 0, want)
		offs := make([]uint64, 0, want)
		slots := make([]int, 0, want)
		lean := false // after an empty round, record a single probe only
		for drained.Load() < total {
			n := want
			if lean {
				n = 1
			}
			slots = slots[:0]
			for j := 0; j < n; j++ {
				slots = append(slots, rec.Invoke(drainID, check.OpDequeue, 0))
			}
			evs = q.DequeueBatch(drainID, n, evs[:0])
			for j, ev := range evs {
				rec.Return(slots[j], ev.Payload, true)
			}
			for j := len(evs); j < n; j++ {
				rec.Return(slots[j], 0, false)
			}
			lean = len(evs) == 0
			if lean {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			slots = slots[:0]
			for _, ev := range evs {
				slots = append(slots, rec.Invoke(drainID, check.OpLogAppend, ev.Payload))
			}
			offs = sp.AppendBatch(drainID, evs, offs[:0])
			for j, off := range offs {
				rec.Return(slots[j], off, true)
			}
			drained.Add(uint64(len(evs)))
		}
	}()

	// Consumer 1 records single-event cursor reads; consumer 2 polls larger
	// windows unrecorded, purely to add read-side concurrency.
	consDone := make(chan uint64, 1)
	go func() {
		buf := make([]ingest.Event, 0, 1)
		var pos, skipped uint64
		lean := false
		for pos < total {
			slot := -1
			if !lean {
				slot = rec.Invoke(conTID, check.OpLogRead, pos)
			}
			v := sp.Snapshot()
			evs, next, skip := v.Read(pos, 1, buf[:0])
			if len(evs) == 1 {
				if slot >= 0 {
					rec.Return(slot, (next-1)<<32|evs[0].Payload, true)
				}
				lean = false
			} else {
				if slot >= 0 {
					rec.Return(slot, 0, false)
				}
				lean = true // caught up: stop recording misses until a hit
				time.Sleep(100 * time.Microsecond)
			}
			skipped += skip
			pos = next
		}
		consDone <- skipped
	}()
	stopPoll := make(chan struct{})
	go func() {
		c := p.NewCursor()
		buf := make([]ingest.Event, 0, 64)
		for {
			select {
			case <-stopPoll:
				return
			default:
				c.Poll(64, buf[:0])
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	// Retention: progress-driven rather than wall-clock — the whole
	// execution takes a few milliseconds, so a timer-based pass would race
	// the shutdown and record few or no trims. Trim whenever the retained
	// window outgrows 2*keep, recorded as ltrim; the segment-granular result
	// is carried by the returned watermark.
	stopRet := make(chan struct{})
	retDone := make(chan struct{})
	go func() {
		defer close(retDone)
		var lwm uint64
		for {
			select {
			case <-stopRet:
				return
			default:
			}
			v := sp.Snapshot()
			if v.End()-lwm <= 2*keep {
				runtime.Gosched()
				continue
			}
			cut := v.End() - keep
			slot := rec.Invoke(retID, check.OpLogTrim, cut)
			lwm = sp.Do(retID, spool.TrimToOp[spool.Event](cut))
			rec.Return(slot, lwm, true)
		}
	}()

	for i := 0; i < producers; i++ {
		<-prodDone
	}
	<-drainDone
	skipped := <-consDone
	close(stopRet)
	<-retDone
	close(stopPoll)

	// Sanity on the execution itself before checking the history.
	v := sp.Snapshot()
	if v.End() != total {
		t.Fatalf("spool end=%d, want %d", v.End(), total)
	}
	t.Logf("execution: %d events, consumer skipped %d to retention, lwm=%d, %d sealed segments live",
		total, skipped, v.LowWater(), v.Segments())

	h := rec.Operations()
	if len(h) < 3*total {
		t.Fatalf("recorded %d operations, want ≥ %d (enq+deq+lapp at least)", len(h), 3*total)
	}

	// Round-trip through the text format: the history the checker sees is
	// the history a dump file would carry.
	text := v2.FormatHistory(h)
	parsed, err := v2.ParseHistory(text)
	if err != nil {
		t.Fatalf("text round trip: %v", err)
	}
	if len(parsed) != len(h) {
		t.Fatalf("text round trip lost ops: %d -> %d", len(h), len(parsed))
	}

	// SOAK_HIST dumps the recorded history for offline simcheck runs.
	if path := os.Getenv("SOAK_HIST"); path != "" {
		if err := os.WriteFile(path, text, 0o644); err != nil {
			t.Fatalf("dump history: %v", err)
		}
	}
	opts := v2.DefaultOptions()
	opts.Engine = v2.EngineBoth
	start := time.Now()
	if err := v2.CheckHistory(parsed, opts); err != nil {
		t.Fatalf("%d-op ingest history rejected or undecided: %v", len(parsed), err)
	}
	t.Logf("engine both checked %d recorded operations (%d bytes of history text) in %v",
		len(parsed), len(text), time.Since(start))
}
