// Package ingest is the producer-facing stage of the wait-free event
// pipeline and the glue that composes the repository's stack into a
// service-shaped workload:
//
//	producers ──Append──▶ SimQueue (batched announce-vectors)
//	                         │ Drain
//	                         ▼
//	                      Spool (P-Sim append log, sealed segments)
//	                         │ PSim.Read snapshots
//	                         ▼
//	                      Cursors (consumers; never block writers)
//
// Producers stamp a per-producer sequence number on every event and buffer
// Config.Batch events locally before handing them to the wait-free queue as
// ONE EnqueueBatch announce-vector — the paper's batching lever applied at
// the ingest edge, which is what makes the steady-state append path free of
// allocation and of per-event announce traffic. Drainers move queue batches
// into the spool with a single ApplyBatch per batch. Consumers read spool
// snapshots through Cursor, paying no coordination with either stage.
//
// Every process id (producer or drainer) must be driven by one goroutine at
// a time — the single-writer announce discipline of the construction.
// Cursors need no process id at all.
package ingest

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/queue"
	"repro/internal/spool"
)

// Event is the ingested record (defined by the spool, which owns storage).
type Event = spool.Event

// Config sizes a Pipeline.
type Config struct {
	// Batch is the producer-side buffer: Append hands events to the queue
	// in EnqueueBatch vectors of this size (default 32). Flush submits a
	// partial batch.
	Batch int
	// Spool configures the storage stage (segment size, ring bound, time
	// bucketing).
	Spool spool.Config
	// Clock stamps Event.TS (unix nanos); tests and benchmarks may pin it.
	// Defaults to the wall clock.
	Clock func() int64
}

// Pipeline is one ingest partition: a wait-free queue in front of a spool,
// plus per-process producer and drainer state.
type Pipeline struct {
	n     int
	batch int
	clock func() int64
	q     *queue.SimQueue[Event]
	sp    *spool.Spool[Event]

	prods  []producerSlot
	drains []drainSlot

	appended *obs.Counter // events stamped by producers
	flushed  *obs.Counter // EnqueueBatch vectors submitted
	drained  *obs.Counter // events moved queue → spool
}

// producerSlot is process id i's producer state; only the goroutine driving
// id i touches it (padded so neighbouring producers never share a line).
type producerSlot struct {
	seq     uint64
	pending []Event
	_       pad.CacheLinePad
}

// drainSlot is process id i's drain scratch: reused buffers so a steady
// drain loop allocates nothing.
type drainSlot struct {
	evs  []Event
	offs []uint64
	_    pad.CacheLinePad
}

// New returns a pipeline for n process ids (producers and drainers share
// the id space; give a dedicated id to each drain loop).
func New(n int, cfg Config) *Pipeline {
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	p := &Pipeline{
		n:        n,
		batch:    cfg.Batch,
		clock:    cfg.Clock,
		q:        queue.NewSimQueue[Event](n),
		sp:       spool.NewEvents(n, cfg.Spool),
		prods:    make([]producerSlot, n),
		drains:   make([]drainSlot, n),
		appended: obs.NewCounter(n),
		flushed:  obs.NewCounter(n),
		drained:  obs.NewCounter(n),
	}
	for i := range p.prods {
		p.prods[i].pending = make([]Event, 0, cfg.Batch)
	}
	return p
}

// Append stamps payload with producer id's next sequence number and the
// clock, buffers it, and flushes the buffer through EnqueueBatch when it
// reaches Config.Batch. It returns the assigned sequence number. The
// steady-state path performs zero allocations.
func (p *Pipeline) Append(id int, payload uint64) uint64 {
	t := &p.prods[id]
	t.seq++
	t.pending = append(t.pending, Event{
		Payload:  payload,
		Seq:      t.seq,
		TS:       p.clock(),
		Producer: int32(id),
	})
	p.appended.Inc(id)
	if len(t.pending) >= p.batch {
		p.flush(id, t)
	}
	return t.seq
}

// AppendBatch stamps every payload and submits them immediately as one
// EnqueueBatch vector (flushing any buffered events first so queue order
// matches stamp order). The assigned sequence numbers are appended to seqs.
func (p *Pipeline) AppendBatch(id int, payloads []uint64, seqs []uint64) []uint64 {
	t := &p.prods[id]
	if len(t.pending) > 0 {
		p.flush(id, t)
	}
	now := p.clock()
	for _, v := range payloads {
		t.seq++
		t.pending = append(t.pending, Event{Payload: v, Seq: t.seq, TS: now, Producer: int32(id)})
		seqs = append(seqs, t.seq)
	}
	p.appended.Add(id, uint64(len(payloads)))
	if len(t.pending) > 0 {
		p.flush(id, t)
	}
	return seqs
}

// Flush submits id's partial batch (idle producers call this so trailing
// events are not stranded in the local buffer).
func (p *Pipeline) Flush(id int) {
	t := &p.prods[id]
	if len(t.pending) > 0 {
		p.flush(id, t)
	}
}

func (p *Pipeline) flush(id int, t *producerSlot) {
	p.q.EnqueueBatch(id, t.pending)
	t.pending = t.pending[:0]
	p.flushed.Inc(id)
}

// Pending returns the number of buffered (not yet enqueued) events for id.
func (p *Pipeline) Pending(id int) int { return len(p.prods[id].pending) }

// Seq returns the last sequence number stamped by producer id.
func (p *Pipeline) Seq(id int) uint64 { return p.prods[id].seq }

// Drain moves up to max events from the queue into the spool on behalf of
// process id: one DequeueBatch announce-vector, one ApplyBatch op-vector.
// It returns the number of events moved (0 when the queue is empty). The
// scratch buffers are per-id, so a dedicated drain loop allocates nothing
// in steady state.
func (p *Pipeline) Drain(id, max int) int {
	t := &p.drains[id]
	t.evs = p.q.DequeueBatch(id, max, t.evs[:0])
	if len(t.evs) == 0 {
		return 0
	}
	t.offs = p.sp.AppendBatch(id, t.evs, t.offs[:0])
	p.drained.Add(id, uint64(len(t.evs)))
	return len(t.evs)
}

// View returns a consistent snapshot of the spool (see spool.View).
func (p *Pipeline) View() spool.View[Event] { return p.sp.Snapshot() }

// Queue exposes the front queue (recording, tests, instrumentation).
func (p *Pipeline) Queue() *queue.SimQueue[Event] { return p.q }

// Spool exposes the storage stage (retention runners attach here).
func (p *Pipeline) Spool() *spool.Spool[Event] { return p.sp }

// SetTracer attaches one flight recorder to both constructions: queue
// splices and spool rounds interleave in one timeline.
func (p *Pipeline) SetTracer(tr *trace.Tracer) {
	p.q.SetTracer(tr)
	p.sp.SetTracer(tr)
}

// Instrument registers both stages' combining counters plus the pipeline's
// own stage counters under prefix.
func (p *Pipeline) Instrument(reg *obs.Registry, prefix string) {
	p.q.Instrument(reg, obs.Join(prefix, "_queue"))
	p.sp.Instrument(reg, obs.Join(prefix, "_spool"))
	reg.AttachCounter(obs.Join(prefix, "_appended_total"), p.appended)
	reg.AttachCounter(obs.Join(prefix, "_flushes_total"), p.flushed)
	reg.AttachCounter(obs.Join(prefix, "_drained_total"), p.drained)
}

// Stats aggregates the pipeline's counters and both stages' combining
// statistics.
type Stats struct {
	Appended uint64 // events stamped by producers
	Flushes  uint64 // enqueue vectors submitted
	Drained  uint64 // events moved queue → spool
	Queue    core.Stats
	Spool    core.Stats
}

// Stats returns a statistical snapshot (see core.StatsPlane.Aggregate for
// the snapshot-only caveat).
func (p *Pipeline) Stats() Stats {
	return Stats{
		Appended: p.appended.Total(),
		Flushes:  p.flushed.Total(),
		Drained:  p.drained.Total(),
		Queue:    p.q.Stats(),
		Spool:    p.sp.Stats(),
	}
}

// N returns the number of process ids.
func (p *Pipeline) N() int { return p.n }

// Batch returns the producer-side batch size.
func (p *Pipeline) Batch() int { return p.batch }
