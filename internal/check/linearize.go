package check

import (
	"errors"
	"fmt"
)

// ErrTooLarge is returned by Linearizable for histories longer than 64
// operations: the search uses a bitmask over the operation set, so larger
// histories need the forward-simulation engine (internal/check/v2), which
// has no such limit.
var ErrTooLarge = errors.New("check: history longer than 64 operations (use the forward engine)")

// Spec is a sequential specification for the checker: an immutable initial
// state, a step function that applies an operation and reports whether the
// operation's RECORDED response is consistent with the state, and a
// canonical key used to memoize explored configurations.
type Spec struct {
	Init func() any
	// Step returns the successor state and whether op's recorded response
	// matches what the sequential object would have returned. It must not
	// mutate state.
	Step func(state any, op Operation) (any, bool)
	// Key canonically encodes a state (used with the remaining-set bitmask
	// to prune re-explorations).
	Key func(state any) string
}

// Linearizable reports whether the history admits a linearization under
// spec: a total order of all operations that (1) contains every operation
// exactly once, (2) respects real-time order — if A returned before B was
// invoked, A precedes B — and (3) yields each operation's recorded response
// when executed sequentially. Histories are limited to 64 operations (the
// search uses a bitmask) — longer histories return ErrTooLarge instead of a
// verdict; the test suite checks many small adversarial histories with this
// search and hands long histories to internal/check/v2.
func Linearizable(ops []Operation, spec Spec) (bool, error) {
	n := len(ops)
	if n == 0 {
		return true, nil
	}
	if n > 64 {
		return false, ErrTooLarge
	}

	type frame struct {
		remaining uint64
		state     any
	}
	full := uint64(1)<<uint(n) - 1
	seen := make(map[string]bool)

	var dfs func(remaining uint64, state any) bool
	dfs = func(remaining uint64, state any) bool {
		if remaining == 0 {
			return true
		}
		memo := spec.Key(state) + "/" + string(maskBytes(remaining))
		if seen[memo] {
			return false
		}
		seen[memo] = true

		// minReturn: the earliest response among remaining operations. An
		// operation may be linearized next only if it was invoked before
		// that response (otherwise some remaining operation finished
		// entirely before it began).
		minReturn := int64(1) << 62
		for i := 0; i < n; i++ {
			if remaining&(1<<uint(i)) != 0 && ops[i].Return < minReturn {
				minReturn = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if remaining&bit == 0 || ops[i].Invoke > minReturn {
				continue
			}
			if ns, ok := spec.Step(state, ops[i]); ok {
				if dfs(remaining&^bit, ns) {
					return true
				}
			}
		}
		return false
	}
	return dfs(full, spec.Init()), nil
}

// maskBytes encodes a bitmask as 8 bytes for memo keys.
func maskBytes(m uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(m >> (8 * i))
	}
	return b
}

// LinearizablePartitioned splits the history into independent
// sub-histories (e.g. per key for a map whose operations each touch one
// key) and checks each part separately. This is sound whenever operations
// of different parts commute in the sequential specification — then a
// global linearization exists iff each part has one — and it lets much
// longer histories be checked than the 64-operation global limit.
func LinearizablePartitioned(ops []Operation, partOf func(Operation) string, spec func(part string) Spec) (bool, error) {
	parts := make(map[string][]Operation)
	for _, op := range ops {
		p := partOf(op)
		parts[p] = append(parts[p], op)
	}
	for p, sub := range parts {
		ok, err := Linearizable(sub, spec(p))
		if err != nil {
			return false, fmt.Errorf("partition %q: %w", p, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
