package timeline

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// RuleKind selects what a rule measures over its window.
type RuleKind int

const (
	// RuleOpsFloor breaches when throughput (ops/sec) drops BELOW the
	// threshold.
	RuleOpsFloor RuleKind = iota
	// RuleP99Ceiling breaches when the windowed p99 latency upper bound
	// (nanoseconds) EXCEEDS the threshold.
	RuleP99Ceiling
	// RuleCASFailCeiling breaches when the CAS-failure ratio EXCEEDS the
	// threshold (0..1).
	RuleCASFailCeiling
	// RuleStallRate breaches when watchdog stall episodes recorded in the
	// window EXCEED the threshold.
	RuleStallRate
)

func (k RuleKind) String() string {
	switch k {
	case RuleOpsFloor:
		return "ops"
	case RuleP99Ceiling:
		return "p99"
	case RuleCASFailCeiling:
		return "casfail"
	case RuleStallRate:
		return "stalls"
	}
	return "unknown"
}

// Rule is one SLO bound, evaluated after every scrape over a sliding
// window of recent samples. Series selects which discovered series the
// rule watches; empty means every unlabeled (aggregate) series combined.
type Rule struct {
	Kind      RuleKind
	Threshold float64
	Window    time.Duration
	Series    string
}

func (r Rule) withDefaults() Rule {
	if r.Window <= 0 {
		if r.Kind == RuleStallRate {
			r.Window = time.Minute
		} else {
			r.Window = 10 * time.Second
		}
	}
	return r
}

// Name renders the rule compactly, e.g. `p99<=2ms@10s` or
// `map:ops>=5000@10s` — the same syntax ParseRules accepts.
func (r Rule) Name() string {
	var b strings.Builder
	if r.Series != "" {
		b.WriteString(r.Series)
		b.WriteByte(':')
	}
	b.WriteString(r.Kind.String())
	if r.Kind == RuleOpsFloor {
		b.WriteString(">=")
	} else {
		b.WriteString("<=")
	}
	switch r.Kind {
	case RuleP99Ceiling:
		b.WriteString(time.Duration(r.Threshold).String())
	default:
		b.WriteString(strconv.FormatFloat(r.Threshold, 'g', -1, 64))
	}
	fmt.Fprintf(&b, "@%s", r.Window)
	return b.String()
}

// ParseRules parses the -slo flag syntax: comma-separated rules of the
// form [series:]kind(op)value[@window].
//
//	ops>=12000            throughput floor, ops/sec
//	p99<=2ms              latency ceiling (Go duration)
//	casfail<=0.25         CAS-failure-ratio ceiling
//	stalls<=3@1m          watchdog-episode ceiling per window
//	map{shard="0"}:ops>=100   scope a rule to one series
//
// `=` is accepted as shorthand for each kind's natural direction. Windows
// default to 10s (1m for stalls).
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		r := Rule{}
		// Optional series scope. Labels may not contain ':', so the last
		// ':' before the kind keyword is the separator.
		body := item
		if i := strings.LastIndexByte(item, ':'); i >= 0 {
			r.Series, body = item[:i], item[i+1:]
		}
		// Optional @window suffix.
		if i := strings.LastIndexByte(body, '@'); i >= 0 {
			w, err := time.ParseDuration(body[i+1:])
			if err != nil {
				return nil, fmt.Errorf("slo rule %q: bad window: %v", item, err)
			}
			r.Window, body = w, body[:i]
		}
		kind, op, val, err := splitRule(body)
		if err != nil {
			return nil, fmt.Errorf("slo rule %q: %v", item, err)
		}
		switch kind {
		case "ops":
			r.Kind = RuleOpsFloor
			if op == "<=" {
				return nil, fmt.Errorf("slo rule %q: ops is a floor, use >=", item)
			}
		case "p99":
			r.Kind = RuleP99Ceiling
		case "casfail":
			r.Kind = RuleCASFailCeiling
		case "stalls":
			r.Kind = RuleStallRate
		default:
			return nil, fmt.Errorf("slo rule %q: unknown kind %q (want ops, p99, casfail, stalls)", item, kind)
		}
		if r.Kind != RuleOpsFloor && op == ">=" {
			return nil, fmt.Errorf("slo rule %q: %s is a ceiling, use <=", item, kind)
		}
		if r.Kind == RuleP99Ceiling {
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("slo rule %q: bad duration: %v", item, err)
			}
			r.Threshold = float64(d)
		} else {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("slo rule %q: bad threshold: %v", item, err)
			}
			r.Threshold = f
		}
		rules = append(rules, r.withDefaults())
	}
	return rules, nil
}

// splitRule splits `kind(op)value` at the first >=, <= or =.
func splitRule(s string) (kind, op, val string, err error) {
	for _, op := range []string{">=", "<=", "="} {
		if i := strings.Index(s, op); i >= 0 {
			return s[:i], op, s[i+len(op):], nil
		}
	}
	return "", "", "", fmt.Errorf("missing comparison (want kind>=value or kind<=value)")
}

// ruleState is one rule's evaluation state: the resolved target series and
// the episode latch that makes breach/clear callbacks fire once per
// transition, mirroring the watchdog's once-per-episode discipline.
type ruleState struct {
	rule      Rule
	targets   []int // series indices the rule aggregates over
	breached  bool
	sinceTS   int64
	lastValue float64
	evaluated bool
}

// Breach reports one SLO transition (Cleared false: entered violation;
// true: recovered).
type Breach struct {
	Rule      Rule
	Value     float64
	TS        int64
	Cleared   bool
	SinceNs   int64 // violation duration, set on clear
	RuleIndex int
}

// BreachState is the currently-known state of one rule, for the query
// surface.
type BreachState struct {
	Rule      Rule    `json:"-"`
	Name      string  `json:"rule"`
	Breached  bool    `json:"breached"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	SinceNs   int64   `json:"since_ns,omitempty"`
	Evaluated bool    `json:"evaluated"`
}

// Breaches returns the current state of every rule, in configuration
// order. Safe from any goroutine: the rule mutex serializes it against the
// scraper's evaluation pass.
func (t *Timeline) Breaches(now int64) []BreachState {
	out := make([]BreachState, len(t.rules))
	t.ruleMu.Lock()
	defer t.ruleMu.Unlock()
	for i := range t.rules {
		rs := &t.rules[i]
		out[i] = BreachState{
			Rule:      rs.rule,
			Name:      rs.rule.Name(),
			Breached:  rs.breached,
			Value:     rs.lastValue,
			Threshold: rs.rule.Threshold,
			Evaluated: rs.evaluated,
		}
		if rs.breached {
			out[i].SinceNs = now - rs.sinceTS
		}
	}
	return out
}

// resolveRuleTargets fills each rule's target series set: the named series,
// or every unlabeled series for an unscoped rule.
func (t *Timeline) resolveRuleTargets() {
	for i := range t.rules {
		rs := &t.rules[i]
		rs.targets = rs.targets[:0]
		for j, name := range t.names {
			if rs.rule.Series == "" {
				if !strings.ContainsRune(name, '{') {
					rs.targets = append(rs.targets, j)
				}
			} else if name == rs.rule.Series {
				rs.targets = append(rs.targets, j)
			}
		}
	}
}

// evalRules runs every rule against the sample rings after a scrape. Runs
// on the scraper goroutine only; the rule mutex covers the state pass so
// Breaches (any goroutine) sees consistent episodes. Annotations and the
// OnBreach callback fire after the lock drops — transitions are rare, so
// the deferred slice stays nil (and allocation-free) on the common path.
func (t *Timeline) evalRules(now int64) {
	type transition struct {
		b    Breach
		kind Kind
	}
	var fired []transition
	t.ruleMu.Lock()
	for i := range t.rules {
		rs := &t.rules[i]
		cutoff := now - rs.rule.Window.Nanoseconds()
		value, ok := t.measure(rs, cutoff)
		if !ok {
			continue
		}
		rs.lastValue = value
		rs.evaluated = true
		breached := false
		switch rs.rule.Kind {
		case RuleOpsFloor:
			breached = value < rs.rule.Threshold
		default:
			breached = value > rs.rule.Threshold
		}
		if breached == rs.breached {
			continue
		}
		rs.breached = breached
		b := Breach{Rule: rs.rule, Value: value, TS: now, RuleIndex: i}
		kind := KindBreach
		if breached {
			rs.sinceTS = now
		} else {
			b.Cleared = true
			b.SinceNs = now - rs.sinceTS
			kind = KindClear
		}
		fired = append(fired, transition{b: b, kind: kind})
	}
	t.ruleMu.Unlock()
	for _, tr := range fired {
		t.annotate(Sample{TS: now, Series: int32(tr.b.RuleIndex), Kind: tr.kind, Value: tr.b.Value})
		if t.cfg.OnBreach != nil {
			t.cfg.OnBreach(tr.b)
		}
	}
}

// measure computes a rule's windowed value. ok is false while the window
// holds no complete sample yet (warm-up) — a rule never breaches on
// missing data. Throughput sums across target series; latency takes the
// worst per-sample p99 upper bound in the window; the CAS ratio is
// computed over summed counts.
func (t *Timeline) measure(rs *ruleState, cutoff int64) (value float64, ok bool) {
	if rs.rule.Kind == RuleStallRate {
		return float64(t.stallsSince(cutoff)), true
	}
	var ops, casFail, casTotal uint64
	var elapsedNs int64
	var p99 uint64
	for _, j := range rs.targets {
		ss := t.series[j]
		var seriesElapsed int64
		ss.recent(func(s Sample) bool {
			if s.TS < cutoff {
				return false
			}
			ops += s.Ops
			casFail += s.CASFail
			casTotal += s.CASFail + s.CASSuccess
			seriesElapsed += s.IntervalNs
			if s.LatCount > 0 && s.LatP99 > p99 {
				p99 = s.LatP99
			}
			return true
		})
		if seriesElapsed > elapsedNs {
			elapsedNs = seriesElapsed
		}
	}
	if elapsedNs == 0 {
		return 0, false
	}
	switch rs.rule.Kind {
	case RuleOpsFloor:
		return float64(ops) * 1e9 / float64(elapsedNs), true
	case RuleP99Ceiling:
		return float64(p99), true
	case RuleCASFailCeiling:
		if casTotal == 0 {
			return 0, true
		}
		return float64(casFail) / float64(casTotal), true
	}
	return 0, false
}
