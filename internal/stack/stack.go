// Package stack implements the five shared-stack algorithms of Figure 3
// (left): SimStack — the paper's new wait-free stack over P-Sim — and its
// four competitors: Treiber's lock-free stack, the HSY elimination-backoff
// stack, a CLH spin-lock stack, and a flat-combining stack.
//
// All implementations satisfy Interface. Process ids identify threads for
// the combining-based algorithms; each id must be driven by one goroutine.
package stack

// Interface is the common shape of every stack implementation in the
// benchmark suite. Pop returns ok=false on an empty stack.
type Interface[V any] interface {
	Push(id int, v V)
	Pop(id int) (V, bool)
	// Name identifies the algorithm in harness output.
	Name() string
}

// node is the immutable singly-linked node shared by the pointer-based
// stacks (a node's fields are never written after publication, so concurrent
// traversals are safe).
type node[V any] struct {
	v    V
	next *node[V]
}
