// Package timeline is the self-hosted telemetry history of the repository:
// a background scraper that snapshots the wait-free metric registry at a
// fixed interval, converts lifetime totals into per-interval deltas, and
// appends one fixed-size Sample per series into a spool-backed log — the
// same segmented log (internal/spool) and expiry engine (internal/retention)
// that back the ingest daemon, instantiated at Sample granularity. The
// history is therefore itself a client of the universal construction:
// appends are wait-free operations of a P-Sim instance, retention is one
// linearizable op-vector, and queries are PSim.Read snapshots that never
// block the scraper or any hot path they observe.
//
// # Sample schema
//
// Every entry in the log is one Sample (fixed size, no pointers — the
// spool's recycled-clone path keeps steady-state appends at 0 allocs/op).
// Kind separates periodic scrape samples from annotation events:
//
//	TS          unix nanos; scrape time or annotation time (spool Stamp)
//	IntervalNs  width of the scrape interval the deltas cover (samples only)
//	Series      series index (samples) / rule index (breach,clear) / pid (stall)
//	Kind        KindSample | KindBreach | KindClear | KindStall
//	Ops         operations completed in the interval        (Δ <p>_ops_total)
//	CASSuccess  successful CAS transitions in the interval  (Δ <p>_cas_success_total)
//	CASFail     failed CAS transitions in the interval      (Δ <p>_cas_fail_total)
//	Combined    operations applied by a combiner on behalf  (Δ <p>_combined_total)
//	LatCount    latency observations in the interval        (Δ <p>_op_latency_ns)
//	LatP50/90/99  latency quantile upper bounds over the interval's delta
//	LatMax      lifetime maximum latency (interval maxima are not recoverable)
//	CombineMeanMilli  mean combining degree over the interval, ×1000
//	Value       annotation payload: measured rule value (breach/clear),
//	            outlived rounds (stall); 0 for samples
//
// A "series" is one metric family prefix discovered in the registry: every
// counter named <prefix>_ops_total (label block included) declares the
// series <prefix>, so `map`, `map{shard="0"}` and `ingest{partition="2"}`
// are scraped side by side and the per-shard breakdown falls out of the
// labeled-name convention (obs.Labeled) rather than bespoke plumbing.
//
// Memory-plane size classes are discovered the same way: every counter
// alloc_blocks_total{class="C"} (published by alloc.Pool.Register, wired
// through core.StatsPlane.AttachAllocPool) declares the series
// alloc{class="C"}, with the plane's families mapped onto the sample
// columns — Ops = blocks issued, CASSuccess = shared-pool chain handoffs,
// CASFail = guard-starved Gets, Combined = fresh heap allocations. Alloc
// series carry no latency histograms, so their latency columns stay zero.
package timeline

// Kind discriminates log entries.
type Kind int32

const (
	// KindSample is a periodic scrape sample.
	KindSample Kind = iota
	// KindBreach marks an SLO rule transitioning into violation.
	KindBreach
	// KindClear marks an SLO rule recovering.
	KindClear
	// KindStall records a watchdog stall episode fed via RecordStall.
	KindStall
)

// String names the kind for JSON export.
func (k Kind) String() string {
	switch k {
	case KindSample:
		return "sample"
	case KindBreach:
		return "slo_breach"
	case KindClear:
		return "slo_clear"
	case KindStall:
		return "watchdog_stall"
	}
	return "unknown"
}

// Sample is one fixed-size timeline entry; see the package doc for the
// field-by-field schema. It satisfies spool.Entry so the segmented log can
// seal and expire by time.
type Sample struct {
	TS               int64
	IntervalNs       int64
	Series           int32
	Kind             Kind
	Ops              uint64
	CASSuccess       uint64
	CASFail          uint64
	Combined         uint64
	LatCount         uint64
	LatP50           uint64
	LatP90           uint64
	LatP99           uint64
	LatMax           uint64
	CombineMeanMilli uint64
	Value            float64
}

// Stamp returns the entry's timestamp (spool.Entry).
func (s Sample) Stamp() int64 { return s.TS }

// OpsPerSec returns the sample's throughput over its interval.
func (s Sample) OpsPerSec() float64 {
	if s.IntervalNs <= 0 {
		return 0
	}
	return float64(s.Ops) * 1e9 / float64(s.IntervalNs)
}

// CASFailRatio returns failed CAS transitions as a fraction of all CAS
// attempts in the interval (0 when the interval saw none).
func (s Sample) CASFailRatio() float64 {
	total := s.CASSuccess + s.CASFail
	if total == 0 {
		return 0
	}
	return float64(s.CASFail) / float64(total)
}
