package xatomic

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestFetchAdd64ReturnsPrevious(t *testing.T) {
	var a atomic.Uint64
	if got := FetchAdd64(&a, 5); got != 0 {
		t.Fatalf("first FetchAdd returned %d, want 0", got)
	}
	if got := FetchAdd64(&a, 3); got != 5 {
		t.Fatalf("second FetchAdd returned %d, want 5", got)
	}
	if a.Load() != 8 {
		t.Fatalf("value = %d, want 8", a.Load())
	}
}

func TestFetchAdd64NegativeDelta(t *testing.T) {
	var a atomic.Uint64
	a.Store(10)
	if got := FetchAdd64(&a, ^uint64(0)); got != 10 { // add -1
		t.Fatalf("FetchAdd(-1) returned %d, want 10", got)
	}
	if a.Load() != 9 {
		t.Fatalf("value = %d, want 9", a.Load())
	}
}

func TestFetchAdd32ReturnsPrevious(t *testing.T) {
	var a atomic.Uint32
	if got := FetchAdd32(&a, 7); got != 0 {
		t.Fatalf("FetchAdd32 returned %d, want 0", got)
	}
	if got := FetchAdd32(&a, 1); got != 7 {
		t.Fatalf("FetchAdd32 returned %d, want 7", got)
	}
}

func TestFetchAddInt64ReturnsPrevious(t *testing.T) {
	var a atomic.Int64
	if got := FetchAddInt64(&a, -4); got != 0 {
		t.Fatalf("FetchAddInt64 returned %d, want 0", got)
	}
	if got := FetchAddInt64(&a, 10); got != -4 {
		t.Fatalf("FetchAddInt64 returned %d, want -4", got)
	}
}

// TestFetchAdd64ConcurrentDistinct: with delta 1 from many goroutines, the
// returned previous values must form a permutation of 0..N-1 — the
// fetch-and-add atomicity property everything in the paper builds on.
func TestFetchAdd64ConcurrentDistinct(t *testing.T) {
	const workers, per = 8, 500
	var a atomic.Uint64
	seen := make([]atomic.Bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				prev := FetchAdd64(&a, 1)
				if prev >= workers*per {
					t.Errorf("previous value %d out of range", prev)
					return
				}
				if seen[prev].Swap(true) {
					t.Errorf("previous value %d returned twice", prev)
					return
				}
			}
		}()
	}
	wg.Wait()
	if a.Load() != workers*per {
		t.Fatalf("final value %d, want %d", a.Load(), workers*per)
	}
}

func TestFetchAddQuickSumsMatch(t *testing.T) {
	f := func(deltas []uint64) bool {
		var a atomic.Uint64
		var want uint64
		for _, d := range deltas {
			prev := FetchAdd64(&a, d)
			if prev != want {
				return false
			}
			want += d
		}
		return a.Load() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
