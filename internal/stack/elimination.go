package stack

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/workload"
)

// Elimination is the HSY elimination-backoff stack (Hendler, Shavit,
// Yerushalmi, SPAA 2004): a Treiber stack whose contended operations back
// off into a collision array where concurrent push/pop pairs exchange values
// and complete without touching the top pointer at all.
type Elimination[V any] struct {
	base    *Treiber[V]
	slots   []pad.Slot[exchanger[V]]
	rngs    []pad.Slot[*workload.RNG]
	timeout int // spin iterations to wait for a partner
}

// exchanger is a single collision slot: a lock-free exchanger specialised to
// the push/pop pairing (a pop offers nil; a push offers its node).
type exchanger[V any] struct {
	slot atomic.Pointer[xcell[V]]
}

// xcell is one party waiting in a slot. The matcher removes the cell from
// the slot with a CAS and then publishes its own item through response;
// response non-nil is the waiter's signal that the exchange committed.
type xcell[V any] struct {
	offered  *node[V] // nil means the waiter is a pop
	response atomic.Pointer[xresp[V]]
}

type xresp[V any] struct {
	item *node[V] // nil when the matcher was a pop
}

// EliminationTimeout is the default partner-wait bound in spin iterations.
const EliminationTimeout = 256

// NewElimination returns an empty elimination-backoff stack for n processes
// with a collision array of width ⌈n/2⌉ (capped at 16, the useful range for
// the machine sizes of the paper's evaluation).
func NewElimination[V any](n int) *Elimination[V] {
	width := (n + 1) / 2
	if width < 1 {
		width = 1
	}
	if width > 16 {
		width = 16
	}
	s := &Elimination[V]{
		base:    NewTreiber[V](n),
		slots:   make([]pad.Slot[exchanger[V]], width),
		rngs:    make([]pad.Slot[*workload.RNG], n),
		timeout: EliminationTimeout,
	}
	for i := range s.rngs {
		s.rngs[i].Value = workload.NewRNG(uint64(i)*0x9E3779B9 + 1)
	}
	return s
}

// exchange waits in the slot with mine (nil for pop) and returns the
// partner's item. ok reports whether an exchange with an OPPOSITE operation
// committed within the timeout.
func (e *exchanger[V]) exchange(mine *node[V], isPush bool, timeout int) (*node[V], bool) {
	for spins := 0; spins < timeout; spins++ {
		cur := e.slot.Load()
		if cur == nil {
			// Empty slot: enlist and wait for a partner.
			cell := &xcell[V]{offered: mine}
			if !e.slot.CompareAndSwap(nil, cell) {
				continue
			}
			for w := 0; w < timeout; w++ {
				if r := cell.response.Load(); r != nil {
					return r.item, true
				}
				runtime.Gosched()
			}
			// Timed out: withdraw. If the withdraw CAS fails, a matcher has
			// already claimed us and its response is imminent.
			if e.slot.CompareAndSwap(cell, nil) {
				return nil, false
			}
			for {
				if r := cell.response.Load(); r != nil {
					return r.item, true
				}
				runtime.Gosched()
			}
		}
		// Occupied slot: match only opposite kinds (push with pop).
		waiterIsPush := cur.offered != nil
		if waiterIsPush == isPush {
			return nil, false // same kind — no elimination possible here
		}
		if e.slot.CompareAndSwap(cur, nil) {
			cur.response.Store(&xresp[V]{item: mine})
			return cur.offered, true
		}
	}
	return nil, false
}

// Push pushes v, eliminating against a concurrent Pop when the top is
// contended.
func (s *Elimination[V]) Push(id int, v V) {
	n := &node[V]{v: v}
	rng := s.rngs[id].Value
	for {
		if s.base.tryPush(n) {
			return
		}
		slot := &s.slots[rng.Intn(len(s.slots))].Value
		if _, ok := slot.exchange(n, true, s.timeout); ok {
			return // a popper took our node
		}
	}
}

// Pop pops a value, eliminating against a concurrent Push when contended.
func (s *Elimination[V]) Pop(id int) (V, bool) {
	rng := s.rngs[id].Value
	for {
		v, ok, popped := s.base.tryPop()
		if popped {
			return v, ok
		}
		slot := &s.slots[rng.Intn(len(s.slots))].Value
		if item, ok := slot.exchange(nil, false, s.timeout); ok && item != nil {
			return item.v, true
		}
	}
}

// Name implements Interface.
func (s *Elimination[V]) Name() string { return "EliminationBackoff" }
