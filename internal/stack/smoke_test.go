package stack

import (
	"sync"
	"testing"
)

// all returns one instance of each stack implementation for n processes.
func all(n int) []Interface[uint64] {
	return []Interface[uint64]{
		NewSimStack[uint64](n),
		NewTreiber[uint64](n),
		NewElimination[uint64](n),
		NewCLHStack[uint64](n),
		NewFCStack[uint64](n, 0, 0),
	}
}

func TestStackSmokeSequential(t *testing.T) {
	for _, s := range all(1) {
		t.Run(s.Name(), func(t *testing.T) {
			if _, ok := s.Pop(0); ok {
				t.Fatal("pop on empty stack returned ok")
			}
			s.Push(0, 10)
			s.Push(0, 20)
			if v, ok := s.Pop(0); !ok || v != 20 {
				t.Fatalf("pop = (%d,%v), want (20,true)", v, ok)
			}
			if v, ok := s.Pop(0); !ok || v != 10 {
				t.Fatalf("pop = (%d,%v), want (10,true)", v, ok)
			}
			if _, ok := s.Pop(0); ok {
				t.Fatal("pop on drained stack returned ok")
			}
		})
	}
}

// TestStackSmokeConservation checks, for every implementation, that under a
// concurrent push/pop mix no value is lost or duplicated.
func TestStackSmokeConservation(t *testing.T) {
	const n, pairs = 8, 300
	for _, s := range all(n) {
		t.Run(s.Name(), func(t *testing.T) {
			var mu sync.Mutex
			popped := make(map[uint64]int)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					local := make(map[uint64]int)
					for k := 0; k < pairs; k++ {
						v := uint64(id*pairs+k) + 1
						s.Push(id, v)
						if got, ok := s.Pop(id); ok {
							local[got]++
						}
					}
					mu.Lock()
					for v, c := range local {
						popped[v] += c
					}
					mu.Unlock()
				}(i)
			}
			wg.Wait()
			// Drain the remainder.
			for {
				v, ok := s.Pop(0)
				if !ok {
					break
				}
				popped[v]++
			}
			if len(popped) != n*pairs {
				t.Fatalf("popped %d distinct values, want %d", len(popped), n*pairs)
			}
			for v, c := range popped {
				if c != 1 {
					t.Fatalf("value %d popped %d times", v, c)
				}
			}
		})
	}
}
