package spool

import (
	"sync"
	"testing"
)

func ev(payload uint64, ts int64) Event { return Event{Payload: payload, TS: ts} }

func TestAppendAssignsContiguousOffsets(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 4})
	for i := 0; i < 10; i++ {
		off := s.Append(0, ev(uint64(100+i), int64(i)))
		if off != uint64(i) {
			t.Fatalf("append %d assigned offset %d", i, off)
		}
	}
	v := s.Snapshot()
	if v.LowWater() != 0 || v.End() != 10 || v.Len() != 10 {
		t.Fatalf("view lwm=%d end=%d len=%d, want 0,10,10", v.LowWater(), v.End(), v.Len())
	}
	if v.Segments() != 2 { // 10 events, SegEvents=4: two sealed, two active
		t.Fatalf("sealed segments = %d, want 2", v.Segments())
	}
	evs, next, skipped := v.Read(0, 100, nil)
	if len(evs) != 10 || next != 10 || skipped != 0 {
		t.Fatalf("read: %d events next=%d skipped=%d", len(evs), next, skipped)
	}
	for i, e := range evs {
		if e.Payload != uint64(100+i) {
			t.Fatalf("event %d payload %d, want %d", i, e.Payload, 100+i)
		}
	}
}

func TestTimeBucketSealing(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 1000, BucketNs: 10})
	for i := 0; i < 6; i++ {
		s.Append(0, ev(uint64(i), int64(i*5))) // ts 0,5,10,15,20,25
	}
	v := s.Snapshot()
	// Buckets of width 10ns: [0,5] [10,15] [20,25] — two sealed, one active.
	if v.Segments() != 2 {
		t.Fatalf("sealed segments = %d, want 2 (time-bucketed)", v.Segments())
	}
	if v.Len() != 6 {
		t.Fatalf("retained %d events, want 6", v.Len())
	}
}

func TestSealedRingBoundAdvancesWatermark(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 2, MaxSegments: 2})
	for i := 0; i < 10; i++ { // 5 potential segments of 2; ring keeps 2 + active
		s.Append(0, ev(uint64(i), int64(i)))
	}
	v := s.Snapshot()
	if v.Segments() != 2 {
		t.Fatalf("sealed segments = %d, want ring bound 2", v.Segments())
	}
	if v.LowWater() == 0 {
		t.Fatal("ring bound exceeded but low watermark did not advance")
	}
	if v.ExpiredTotal() != v.LowWater() {
		t.Fatalf("expired=%d lwm=%d: contiguous offsets make these equal", v.ExpiredTotal(), v.LowWater())
	}
	// Retained range still contiguous and readable.
	evs, next, skipped := v.Read(0, 100, nil)
	if skipped != v.LowWater() || next != 10 {
		t.Fatalf("read skipped=%d next=%d, want %d,10", skipped, next, v.LowWater())
	}
	for i, e := range evs {
		if e.Payload != v.LowWater()+uint64(i) {
			t.Fatalf("event %d payload %d, want %d", i, e.Payload, v.LowWater()+uint64(i))
		}
	}
}

func TestTrimToTrimsActiveInPlace(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 100})
	for i := 0; i < 10; i++ {
		s.Append(0, ev(uint64(i), int64(i)))
	}
	if lwm := s.Do(0, TrimToOp[Event](7)); lwm != 7 {
		t.Fatalf("TrimTo(7) returned lwm %d, want 7 (exact within active)", lwm)
	}
	v := s.Snapshot()
	if v.LowWater() != 7 || v.Len() != 3 {
		t.Fatalf("after trim: lwm=%d len=%d, want 7,3", v.LowWater(), v.Len())
	}
	evs, _, _ := v.Read(0, 100, nil)
	if len(evs) != 3 || evs[0].Payload != 7 {
		t.Fatalf("read after trim: %d events first=%v", len(evs), evs)
	}
}

func TestTrimAgeAndSealAged(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 3})
	for i := 0; i < 7; i++ { // segments [0..2](ts 0..2) [3..5](ts 3..5), active [6](ts 6)
		s.Append(0, ev(uint64(i), int64(i)))
	}
	// Age out everything before ts 6: the aged active head is first sealed,
	// then dropped with the older segments — one linearizable vector.
	lwm := s.Do(0, SealAgedOp[Event](6), TrimAgeOp[Event](6))
	if lwm != 6 {
		t.Fatalf("age trim lwm=%d, want 6", lwm)
	}
	v := s.Snapshot()
	if v.Len() != 1 {
		t.Fatalf("retained %d events after age trim, want 1", v.Len())
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 4})
	for i := 0; i < 6; i++ {
		s.Append(0, ev(uint64(i), int64(i)))
	}
	v := s.Snapshot()
	before, _, _ := v.Read(0, 100, nil)
	// Mutate heavily after the snapshot: appends, seals, trims.
	for i := 6; i < 50; i++ {
		s.Append(0, ev(uint64(i), int64(i)))
	}
	s.Do(0, SealOp[Event](), TrimToOp[Event](40))
	after, _, _ := v.Read(0, 100, nil)
	if len(before) != len(after) {
		t.Fatalf("snapshot changed size: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot event %d changed: %v -> %v", i, before[i], after[i])
		}
	}
	if len(after) != 6 || after[5].Payload != 5 {
		t.Fatalf("snapshot content wrong: %v", after)
	}
}

func TestConcurrentAppendersKeepOffsetsUnique(t *testing.T) {
	const (
		n   = 4
		per = 512
	)
	s := NewEvents(n, Config{SegEvents: 64, MaxSegments: 1 << 20})
	offs := make([][]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			batch := make([]Event, 0, 8)
			out := make([]uint64, 0, 8)
			for k := 0; k < per; k += 8 {
				batch = batch[:0]
				for j := 0; j < 8; j++ {
					batch = append(batch, Event{Payload: uint64(id)<<32 | uint64(k+j), Producer: int32(id)})
				}
				out = s.AppendBatch(id, batch, out[:0])
				offs[id] = append(offs[id], out...)
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for id := range offs {
		for i, o := range offs[id] {
			if seen[o] {
				t.Fatalf("offset %d assigned twice", o)
			}
			seen[o] = true
			// Batches linearize contiguously per chunk, so each producer's
			// own offsets are strictly increasing.
			if i > 0 && o <= offs[id][i-1] {
				t.Fatalf("producer %d offsets not increasing: %d then %d", id, offs[id][i-1], o)
			}
		}
	}
	if len(seen) != n*per {
		t.Fatalf("assigned %d offsets, want %d", len(seen), n*per)
	}
	v := s.Snapshot()
	if v.End() != uint64(n*per) || v.Len() != n*per {
		t.Fatalf("view end=%d len=%d, want %d", v.End(), v.Len(), n*per)
	}
}

func TestViewReadWindows(t *testing.T) {
	s := NewEvents(1, Config{SegEvents: 4})
	for i := 0; i < 10; i++ {
		s.Append(0, ev(uint64(i), int64(i)))
	}
	v := s.Snapshot()
	out := make([]Event, 0, 3)
	cursor := uint64(0)
	var got []uint64
	for {
		evs, next, _ := v.Read(cursor, 3, out[:0])
		if len(evs) == 0 {
			break
		}
		if next != cursor+uint64(len(evs)) {
			t.Fatalf("next=%d after cursor=%d +%d events", next, cursor, len(evs))
		}
		for _, e := range evs {
			got = append(got, e.Payload)
		}
		cursor = next
	}
	if len(got) != 10 {
		t.Fatalf("windowed read returned %d events, want 10", len(got))
	}
	for i, p := range got {
		if p != uint64(i) {
			t.Fatalf("windowed read out of order at %d: %v", i, got)
		}
	}
	// Reading from the future returns nothing and keeps the cursor.
	if evs, next, skipped := v.Read(99, 10, nil); len(evs) != 0 || next != 99 || skipped != 0 {
		t.Fatalf("future read: %d events next=%d skipped=%d", len(evs), next, skipped)
	}
}
