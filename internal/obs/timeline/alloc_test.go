package timeline

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// gateTimeline builds the scraper the allocation gate measures: three
// discovered series (one aggregate with latency, two labeled shards), a
// segment size large enough that no seal lands mid-measurement, and a
// count-bound retention policy so periodic Compact passes keep the active
// segment — and therefore the construction's recycled clone buffers — in
// steady state, mirroring the ingest gate.
func gateTimeline() (*Timeline, *obs.Counter, *obs.Histogram) {
	reg := obs.NewRegistry()
	ops := reg.Counter("map_ops_total", 1)
	reg.Counter("map_cas_success_total", 1)
	reg.Counter("map_cas_fail_total", 1)
	lat := reg.Histogram("map_op_latency_ns", 1)
	reg.Histogram("map_combine_degree", 1)
	reg.Counter(`map_ops_total{shard="0"}`, 1)
	reg.Counter(`map_ops_total{shard="1"}`, 1)
	tl := New(reg, Config{
		Interval:   10 * time.Millisecond,
		SegSamples: 1 << 30,
		MaxSamples: 1024,
	})
	return tl, ops, lat
}

// TestScrapeAllocsSteadyState is the timeline allocation gate (CI-gated):
// once the spool's clone buffers are warm, a scrape tick — counter delta
// reads, histogram snapshot/sub/quantiles, one fixed-size Sample per
// series appended as a single batch — performs ZERO allocations per pass,
// so the scraper can never become the perturbation it is measuring.
func TestScrapeAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own")
	}
	tl, ops, lat := gateTimeline()
	var n int
	op := func() {
		n++
		ops.Add(0, 17)
		lat.Record(0, uint64(100+n%1000))
		tl.Scrape()
		if n%256 == 0 {
			tl.Compact()
		}
	}
	for i := 0; i < 2048; i++ { // warm clone buffers and the retained range
		op()
	}
	if allocs := testing.AllocsPerRun(600, op); allocs != 0 {
		t.Fatalf("steady-state scrape allocates %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkScrape is the benchmark face of the gate: one full scrape tick
// across three series, reporting allocs/op.
func BenchmarkScrape(b *testing.B) {
	tl, ops, lat := gateTimeline()
	var n int
	op := func() {
		n++
		ops.Add(0, 17)
		lat.Record(0, uint64(100+n%1000))
		tl.Scrape()
		if n%256 == 0 {
			tl.Compact()
		}
	}
	for i := 0; i < 2048; i++ {
		op()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}
