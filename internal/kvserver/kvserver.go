// Package kvserver is a small TCP key-value server built on the wait-free
// striped map — the kind of downstream application the universal
// construction exists for. Every mutation is wait-free: a slow or stalled
// client connection can never hold a lock that blocks other clients'
// operations (there are no locks), and reads are single atomic loads.
//
// Protocol (one request per line, space-separated, values base-10 uint64):
//
//	PUT <key> <value>   -> OK <previous>|OK NIL
//	GET <key>           -> VAL <value>|NIL
//	DEL <key>           -> OK <previous>|OK NIL
//	LEN                 -> LEN <count>
//	STATS               -> STATS ops=<n> helping=<avg> cas_fail=<n> served_by=<n>
//	QUIT                -> BYE (closes the connection)
//
// Malformed requests get "ERR <reason>" and the connection stays open.
//
// Large values (WithLargeValues): the server additionally carries a tiered
// byte-value store (simmap.Tiered) with its own command family — values are
// single whitespace-free byte tokens, stored verbatim:
//
//	BPUT <key> <value>  -> OK NEW|OK SET   (prev-less by design; see
//	                       internal/simmap/tiered.go)
//	BGET <key>          -> VAL <value>|NIL
//	BDEL <key>          -> OK|OK NIL
//
// Values of at least the configured threshold bytes are served by L-Sim
// item records (one O(1) item write per overwrite); smaller ones ride the
// P-Sim striped map inline. STATS gains per-tier routing counters and the
// L-Sim engine's totals, so a client can see which engine served its
// traffic.
//
// Pipelining (WithPipeline): clients may send many newline-separated
// requests without waiting for responses. The server reads up to the
// configured depth of ALREADY-QUEUED complete lines per wakeup, executes
// consecutive runs of the same command as ONE batched map operation
// (simmap MSet/MGet/MDelete — one combining round per touched shard
// instead of one per key), and writes the responses back strictly in
// request order. Responses are byte-identical to the unpipelined protocol,
// so pipelining is purely a client-side throughput knob.
//
// Sharding (WithShards): the store becomes a simmap.Sharded of independent
// per-shard maps, so heavy multi-client write loads scale past a single
// combiner.
//
// Every server carries an obs.Registry (see internal/obs): the striped map's
// Sim recorders (map_* metrics: op latency, combining degree, CAS outcomes)
// plus per-command counters (kv_put_total, …) and a connection gauge
// (kv_connections). Export it over HTTP with obs.Handler(srv.Registry()) —
// cmd/simkvd's -metrics-addr does exactly that.
package kvserver

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/simmap"
)

// Store is the map surface the server runs on; both simmap.Map (striped)
// and simmap.Sharded (sharded-and-striped) satisfy it.
type Store interface {
	Put(id int, k string, v uint64) (prev uint64, existed bool)
	Delete(id int, k string) (prev uint64, existed bool)
	Get(k string) (uint64, bool)
	MSet(id int, keys []string, vals []uint64) (prevs []uint64, existed []bool)
	MDelete(id int, keys []string) (prevs []uint64, existed []bool)
	MGet(id int, keys []string) (vals []uint64, ok []bool)
	Len() int
	Stats() core.Stats
}

// Server is a key-value server instance. Up to MaxClients connections are
// served concurrently; each holds one of the map's process ids while
// connected.
type Server struct {
	store    Store
	m        *simmap.Map[string, uint64]     // non-nil in unsharded mode
	sh       *simmap.Sharded[string, uint64] // non-nil in sharded mode
	blob     *simmap.Tiered[string]          // non-nil with WithLargeValues
	pipeline int                             // batch depth; <=1 is line-at-a-time
	ids      chan int                        // free-list of process ids
	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{} // in-flight connections, closed by Close
	wg       sync.WaitGroup
	maxConn  int

	reg    *obs.Registry
	tracer *trace.Tracer // nil until EnableFlightRecorder
	// per-command counters, indexed by client slot (single writer per slot:
	// a slot serves one connection at a time).
	cPut, cGet, cDel, cLen, cStats, cErr *obs.Counter
	cBPut, cBGet, cBDel                  *obs.Counter // nil without WithLargeValues
	gConns                               *obs.Gauge
}

// Option configures a Server.
type Option func(*serverCfg)

type serverCfg struct {
	shards    int
	pipeline  int
	largeVals bool
	threshold int
}

// WithShards partitions the store into k independent shards (rounded up to
// a power of two; <=1 keeps the single striped map). Each shard gets its
// own labeled metric series (map_*_total{shard="<i>"}).
func WithShards(k int) Option { return func(c *serverCfg) { c.shards = k } }

// WithPipeline enables pipelined request handling with the given batch
// depth: up to depth queued requests are read per wakeup and consecutive
// same-command runs execute as one batched map operation. Depth <=1
// keeps the line-at-a-time loop.
func WithPipeline(depth int) Option { return func(c *serverCfg) { c.pipeline = depth } }

// WithLargeValues enables the tiered byte-value store and its BPUT/BGET/BDEL
// commands. Values of at least threshold bytes are held in L-Sim item
// records; threshold <= 0 selects simmap.DefaultLargeThreshold.
func WithLargeValues(threshold int) Option {
	return func(c *serverCfg) { c.largeVals, c.threshold = true, threshold }
}

// New returns a server allowing maxClients concurrent connections, with the
// given stripe count for the underlying map (0 selects maxClients; in
// sharded mode the count applies per shard).
func New(maxClients, stripes int, opts ...Option) *Server {
	if maxClients < 1 {
		maxClients = 1
	}
	if stripes <= 0 {
		stripes = maxClients
	}
	var cfg serverCfg
	for _, o := range opts {
		o(&cfg)
	}
	reg := obs.NewRegistry()
	s := &Server{
		pipeline: cfg.pipeline,
		ids:      make(chan int, maxClients),
		conns:    map[net.Conn]struct{}{},
		maxConn:  maxClients,
		reg:      reg,
		cPut:     reg.Counter("kv_put_total", maxClients),
		cGet:     reg.Counter("kv_get_total", maxClients),
		cDel:     reg.Counter("kv_del_total", maxClients),
		cLen:     reg.Counter("kv_len_total", maxClients),
		cStats:   reg.Counter("kv_stats_total", maxClients),
		cErr:     reg.Counter("kv_err_total", maxClients),
		gConns:   reg.Gauge("kv_connections"),
	}
	// Record every operation's latency: map mutations sit behind network
	// round-trips here, so the default distribution sampling would only thin
	// out an already low-rate signal.
	if cfg.shards > 1 {
		s.sh = simmap.NewSharded[string, uint64](maxClients, cfg.shards, stripes)
		s.store = s.sh
		for _, rec := range s.sh.Instrument(reg, "map") {
			rec.SetSampleEvery(1)
		}
	} else {
		s.m = simmap.New[string, uint64](maxClients, stripes)
		s.store = s.m
		s.m.Instrument(reg, "map").SetSampleEvery(1)
	}
	if cfg.largeVals {
		s.blob = simmap.NewTiered[string](maxClients, stripes, cfg.threshold)
		s.blob.Instrument(reg, "blob").SetSampleEvery(1)
		s.cBPut = reg.Counter("kv_bput_total", maxClients)
		s.cBGet = reg.Counter("kv_bget_total", maxClients)
		s.cBDel = reg.Counter("kv_bdel_total", maxClients)
	}
	for i := 0; i < maxClients; i++ {
		s.ids <- i
	}
	return s
}

// Registry returns the server's metrics registry, for HTTP export.
func (s *Server) Registry() *obs.Registry { return s.reg }

// EnableFlightRecorder attaches a wait-free flight recorder to the striped
// map: one event ring per client slot, capacity events each (0 selects the
// default), recording one in sampleEvery operations (min 1). Call before
// Listen — attaching while operations run is not supported. Returns the
// tracer for snapshotting (cmd/simkvd's /debug/flight endpoint).
func (s *Server) EnableFlightRecorder(capacity, sampleEvery int) *trace.Tracer {
	opts := []trace.Option{}
	if capacity > 0 {
		opts = append(opts, trace.WithCapacity(capacity))
	}
	if sampleEvery > 1 {
		opts = append(opts, trace.WithSampleEvery(sampleEvery))
	}
	s.tracer = trace.New(s.maxConn, opts...)
	if s.sh != nil {
		// One shared tracer across shards: a multi-key call touches shards
		// one after another, so per-pid rings keep a single writer, and one
		// interleaved stream is the right shape for /debug/flight.
		trs := make([]*trace.Tracer, s.sh.Shards())
		for i := range trs {
			trs[i] = s.tracer
		}
		s.sh.SetTracer(trs)
	} else {
		s.m.SetTracer(s.tracer)
	}
	if s.blob != nil {
		s.blob.SetTracer(s.tracer)
	}
	return s.tracer
}

// Tracer returns the flight recorder, or nil when EnableFlightRecorder was
// never called.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Track before blocking on a free slot: Close closes tracked
		// connections, which both unblocks their ServeConn loops and recycles
		// their ids, so this receive cannot deadlock a shutdown.
		if !s.track(conn) {
			conn.Close() // racing with Close: refuse
			continue
		}
		id := <-s.ids // waits if all client slots are busy
		s.wg.Add(1)
		s.gConns.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.gConns.Add(-1)
			defer func() { s.ids <- id }()
			defer s.untrack(conn)
			defer conn.Close()
			s.ServeConn(id, conn)
		}()
	}
}

// track registers an in-flight connection; false if the server is closed.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the listener, closes every in-flight connection (so a slow or
// idle client cannot stall shutdown or leak its serve goroutine), and waits
// for all serve loops to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// ServeConn handles one client connection with map process id. Exposed so
// tests (and in-process embedders) can drive the protocol over net.Pipe.
//
// The whole connection runs under pprof labels ("pid" = the map process id,
// "object" = "simmap"), so CPU profiles and runtime traces captured through
// cmd/simkvd's /debug endpoints attribute combiner time to the announcing
// slot. Labeling once per connection keeps the per-operation path free of
// the context plumbing and allocation pprof.Do would otherwise add.
func (s *Server) ServeConn(id int, conn net.Conn) {
	labels := pprof.Labels("pid", strconv.Itoa(id), "object", "simmap")
	pprof.Do(context.Background(), labels, func(context.Context) {
		if s.pipeline > 1 {
			s.servePipelined(id, conn)
			return
		}
		sc := bufio.NewScanner(conn)
		w := bufio.NewWriter(conn)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			resp, quit := s.handle(id, line)
			fmt.Fprintln(w, resp)
			if err := w.Flush(); err != nil {
				return
			}
			if quit {
				return
			}
		}
	})
}

// servePipelined is the ServeConn loop in pipeline mode: block for one
// request, then drain up to pipeline-1 further COMPLETE lines the client
// already queued (never blocking mid-batch — a lone request is still served
// immediately), execute the batch, flush all responses at once.
func (s *Server) servePipelined(id int, conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	ex := newExecutor(s, id, w)
	lines := make([]string, 0, s.pipeline)
	for {
		line, err := r.ReadString('\n')
		if line == "" && err != nil {
			return
		}
		lines = append(lines[:0], line)
		for len(lines) < s.pipeline && bufferedLine(r) {
			line, err = r.ReadString('\n')
			if line == "" {
				break
			}
			lines = append(lines, line)
		}
		quit := ex.run(lines)
		if w.Flush() != nil || quit || err != nil {
			return
		}
	}
}

// bufferedLine reports whether r holds a complete line that can be read
// without touching the connection.
func bufferedLine(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	b, _ := r.Peek(n)
	return bytes.IndexByte(b, '\n') >= 0
}

// executor accumulates consecutive same-command requests of a pipelined
// batch and executes each run as one multi-key map operation. Its slices
// are reused across batches, so a steady pipelined connection allocates
// only what the responses themselves need.
type executor struct {
	s    *Server
	id   int
	w    *bufio.Writer
	kind byte // pending run: 'P', 'G', 'D', or 0
	keys []string
	vals []uint64
}

func newExecutor(s *Server, id int, w *bufio.Writer) *executor {
	return &executor{s: s, id: id, w: w}
}

// run executes one batch of request lines, writing responses in request
// order; quit reports a QUIT (remaining queued lines are dropped, matching
// the unpipelined loop which stops reading after QUIT).
func (ex *executor) run(lines []string) (quit bool) {
	for _, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "PUT":
			if len(fields) == 3 {
				if v, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
					ex.push('P', fields[1], v)
					continue
				}
			}
		case "GET":
			if len(fields) == 2 {
				ex.push('G', fields[1], 0)
				continue
			}
		case "DEL":
			if len(fields) == 2 {
				ex.push('D', fields[1], 0)
				continue
			}
		}
		// Anything else — blob commands, LEN, STATS, QUIT, malformed — is a
		// run barrier served by the single-request handler. (Blob traffic is
		// unbatched: a large-tier overwrite is already one O(1) item round,
		// so there is no per-key batching win to chase.)
		ex.flush()
		resp, q := ex.s.handle(ex.id, line)
		fmt.Fprintln(ex.w, resp)
		if q {
			return true
		}
	}
	ex.flush()
	return false
}

// push appends one keyed request to the pending run, flushing first when
// the command kind changes (responses must stay in request order).
func (ex *executor) push(kind byte, key string, val uint64) {
	if ex.kind != kind {
		ex.flush()
		ex.kind = kind
	}
	ex.keys = append(ex.keys, key)
	if kind == 'P' {
		ex.vals = append(ex.vals, val)
	}
}

// flush executes the pending run as one batched store call and writes its
// responses.
func (ex *executor) flush() {
	if len(ex.keys) == 0 {
		ex.kind = 0
		return
	}
	s, id, m := ex.s, ex.id, uint64(len(ex.keys))
	switch ex.kind {
	case 'P':
		s.cPut.Add(id, m)
		prevs, existed := s.store.MSet(id, ex.keys, ex.vals)
		for i := range prevs {
			if existed[i] {
				fmt.Fprintf(ex.w, "OK %d\n", prevs[i])
			} else {
				fmt.Fprintln(ex.w, "OK NIL")
			}
		}
	case 'G':
		s.cGet.Add(id, m)
		vals, ok := s.store.MGet(id, ex.keys)
		for i := range vals {
			if ok[i] {
				fmt.Fprintf(ex.w, "VAL %d\n", vals[i])
			} else {
				fmt.Fprintln(ex.w, "NIL")
			}
		}
	case 'D':
		s.cDel.Add(id, m)
		prevs, existed := s.store.MDelete(id, ex.keys)
		for i := range prevs {
			if existed[i] {
				fmt.Fprintf(ex.w, "OK %d\n", prevs[i])
			} else {
				fmt.Fprintln(ex.w, "OK NIL")
			}
		}
	}
	ex.keys = ex.keys[:0]
	ex.vals = ex.vals[:0]
	ex.kind = 0
}

// handle executes one request line and returns the response line.
func (s *Server) handle(id int, line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PUT":
		if len(fields) != 3 {
			s.cErr.Inc(id)
			return "ERR usage: PUT <key> <value>", false
		}
		v, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			s.cErr.Inc(id)
			return "ERR value must be a uint64", false
		}
		s.cPut.Inc(id)
		prev, existed := s.store.Put(id, fields[1], v)
		if !existed {
			return "OK NIL", false
		}
		return fmt.Sprintf("OK %d", prev), false
	case "GET":
		if len(fields) != 2 {
			s.cErr.Inc(id)
			return "ERR usage: GET <key>", false
		}
		s.cGet.Inc(id)
		v, ok := s.store.Get(fields[1])
		if !ok {
			return "NIL", false
		}
		return fmt.Sprintf("VAL %d", v), false
	case "DEL":
		if len(fields) != 2 {
			s.cErr.Inc(id)
			return "ERR usage: DEL <key>", false
		}
		s.cDel.Inc(id)
		prev, existed := s.store.Delete(id, fields[1])
		if !existed {
			return "OK NIL", false
		}
		return fmt.Sprintf("OK %d", prev), false
	case "BPUT":
		if s.blob == nil {
			s.cErr.Inc(id)
			return "ERR large-value tier disabled (enable with WithLargeValues / -large-threshold)", false
		}
		if len(fields) != 3 {
			s.cErr.Inc(id)
			return "ERR usage: BPUT <key> <value>", false
		}
		s.cBPut.Inc(id)
		if s.blob.Put(id, fields[1], []byte(fields[2])) {
			return "OK SET", false
		}
		return "OK NEW", false
	case "BGET":
		if s.blob == nil {
			s.cErr.Inc(id)
			return "ERR large-value tier disabled (enable with WithLargeValues / -large-threshold)", false
		}
		if len(fields) != 2 {
			s.cErr.Inc(id)
			return "ERR usage: BGET <key>", false
		}
		s.cBGet.Inc(id)
		v, ok := s.blob.Get(fields[1])
		if !ok {
			return "NIL", false
		}
		return "VAL " + string(v), false
	case "BDEL":
		if s.blob == nil {
			s.cErr.Inc(id)
			return "ERR large-value tier disabled (enable with WithLargeValues / -large-threshold)", false
		}
		if len(fields) != 2 {
			s.cErr.Inc(id)
			return "ERR usage: BDEL <key>", false
		}
		s.cBDel.Inc(id)
		if s.blob.Delete(id, fields[1]) {
			return "OK", false
		}
		return "OK NIL", false
	case "LEN":
		s.cLen.Inc(id)
		return fmt.Sprintf("LEN %d", s.store.Len()), false
	case "STATS":
		s.cStats.Inc(id)
		st := s.store.Stats()
		resp := fmt.Sprintf("STATS ops=%d helping=%.2f cas_fail=%d served_by=%d",
			st.Ops, st.AvgHelping, st.CASFailures, st.ServedByOther)
		if s.blob != nil {
			// The tier split makes the engine routing observable: blob_small
			// writes were served inline by the P-Sim stripes, blob_large by
			// L-Sim item records (lsim_ops announced rounds, lsim_items
			// committed item write-backs).
			bs := s.blob.Stats()
			resp += fmt.Sprintf(" blob_small=%d blob_large=%d lsim_ops=%d lsim_items=%d threshold=%d",
				bs.SmallOps, bs.LargeOps, bs.Large.Ops, bs.ItemsHeld, s.blob.Threshold())
		}
		return resp, false
	case "QUIT":
		return "BYE", true
	}
	s.cErr.Inc(id)
	return "ERR unknown command " + cmd, false
}

// Map exposes the underlying map for embedding scenarios and tests; nil
// when the server was built with WithShards (use Store or Sharded then).
func (s *Server) Map() *simmap.Map[string, uint64] { return s.m }

// Sharded exposes the underlying sharded map; nil unless the server was
// built with WithShards.
func (s *Server) Sharded() *simmap.Sharded[string, uint64] { return s.sh }

// Store exposes whichever store the server runs on.
func (s *Server) Store() Store { return s.store }

// Tiered exposes the large-value store; nil unless the server was built
// with WithLargeValues.
func (s *Server) Tiered() *simmap.Tiered[string] { return s.blob }
