package v2

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The conformance corpus lives one level up, next to the specs it
// exercises: internal/check/testdata.
const testdataDir = "../testdata"

// TestConformanceCorpus replays every golden history against the
// compositional driver with EngineBoth, so each verdict is cross-validated
// between the forward engine and the search oracle. File names carry the
// expected verdict: *.good.hist must be accepted, *.bad.hist rejected.
func TestConformanceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(testdataDir, "conformance", "*.hist"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("conformance corpus is empty")
	}
	classes := make(map[string]bool)
	for _, path := range files {
		name := filepath.Base(path)
		classes[strings.SplitN(name, ".", 2)[0]] = true
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			ops, err := ParseHistory(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			opts := DefaultOptions()
			opts.Engine = EngineBoth
			verr := CheckHistory(ops, opts)
			if errors.Is(verr, ErrDisagree) {
				t.Fatalf("engine cross-validation failed: %v", verr)
			}
			switch {
			case strings.Contains(name, ".good."):
				if verr != nil {
					t.Fatalf("good history rejected: %v", verr)
				}
			case strings.Contains(name, ".bad."):
				if !Rejected(verr) {
					t.Fatalf("bad history not rejected (got %v)", verr)
				}
			default:
				t.Fatalf("file name must carry .good. or .bad.: %s", name)
			}
		})
	}
	// Every spec class must be represented in the corpus.
	for _, want := range []string{"stack", "queue", "queue_empty", "counter", "fmul", "register", "set", "map", "log"} {
		if !classes[want] {
			t.Errorf("conformance corpus has no %q goldens", want)
		}
	}
}

// TestRegressionCorpusRejectedByBothEngines asserts that each minimized
// non-linearizable history is rejected by the forward engine AND by the
// search independently — a soundness tripwire for both.
func TestRegressionCorpusRejectedByBothEngines(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(testdataDir, "regression", "*.hist"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("regression corpus has %d histories, want at least 3", len(files))
	}
	for _, path := range files {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			ops, err := ParseHistory(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, engine := range []Engine{EngineForward, EngineSearch} {
				opts := DefaultOptions()
				opts.Engine = engine
				if verr := CheckHistory(ops, opts); !Rejected(verr) {
					t.Errorf("engine %v does not reject (got %v)", engine, verr)
				}
			}
		})
	}
}
