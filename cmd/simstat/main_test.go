package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

// testServer boots an in-process timeline with scripted traffic and serves
// it the same way the daemons do, so simstat's fetch/render path is
// exercised against the real wire format.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	ops := reg.Counter("map_ops_total", 1)
	reg.Counter("map_cas_success_total", 1)
	casFail := reg.Counter("map_cas_fail_total", 1)
	lat := reg.Histogram("map_op_latency_ns", 1)
	shard0 := reg.Counter(`map_ops_total{shard="0"}`, 1)
	now := time.Now().UnixNano()
	rules, err := timeline.ParseRules("ops>=1e9@2s") // impossible floor: breaches
	if err != nil {
		t.Fatal(err)
	}
	tl := timeline.New(reg, timeline.Config{
		Interval: time.Second,
		Rules:    rules,
		Now:      func() int64 { return now },
	})
	for i := 0; i < 4; i++ {
		ops.Add(0, 1000)
		casFail.Add(0, 50)
		shard0.Add(0, 400)
		lat.Record(0, 1500)
		tl.Scrape()
		now += int64(time.Second)
	}
	srv := httptest.NewServer(timeline.Handler(tl))
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchAndRender(t *testing.T) {
	srv := testServer(t)
	doc, err := fetch(srv.URL + "?window=60s")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series["map"]) == 0 || len(doc.Series[`map{shard="0"}`]) == 0 {
		t.Fatalf("missing series: %v", doc.Series)
	}

	var buf strings.Builder
	renderFrame(&buf, "test:0", doc)
	frame := buf.String()
	for _, want := range []string{
		"simstat — test:0",
		"map", `map{shard="0"}`,
		"ops/s",
		"1000", // 1000 ops over a 1s interval
		"1.5µs",
		"SLO",
		"BREACH",
		"ops>=1e+09@2s",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// Breach annotations surface in the frame.
	if !strings.Contains(frame, "slo_breach") {
		t.Fatalf("frame missing breach annotation:\n%s", frame)
	}
}

func TestOneShotJSON(t *testing.T) {
	srv := testServer(t)
	var buf strings.Builder
	if err := oneShot(&buf, srv.URL+"?window=60s", true); err != nil {
		t.Fatal(err)
	}
	var doc timeline.ResponseJSON
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("-once -json output is not valid JSON: %v", err)
	}
	if len(doc.Series) != 2 || len(doc.SLO) != 1 || !doc.SLO[0].Breached {
		t.Fatalf("unexpected snapshot: series=%d slo=%+v", len(doc.Series), doc.SLO)
	}
}

func TestFetchError(t *testing.T) {
	srv := testServer(t)
	if _, err := fetch(srv.URL + "?window=banana"); err == nil ||
		!strings.Contains(err.Error(), "window") {
		t.Fatalf("bad window not surfaced: %v", err)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 50, 100}, 32); got != "▁▄█" {
		t.Fatalf("sparkline = %q", got)
	}
	if got := sparkline([]float64{0, 0}, 32); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
	if got := sparkline(make([]float64, 100), 8); len([]rune(got)) != 8 {
		t.Fatalf("sparkline not clipped to width: %q", got)
	}
}

func TestFmtNs(t *testing.T) {
	for ns, want := range map[uint64]string{
		0: "-", 999: "999ns", 1500: "1.5µs", 2_500_000: "2.5ms", 3_210_000_000: "3.21s",
	} {
		if got := fmtNs(ns); got != want {
			t.Fatalf("fmtNs(%d) = %q, want %q", ns, got, want)
		}
	}
}
