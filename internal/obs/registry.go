package obs

import (
	"sort"
	"sync"
)

// Registry is a named-metric directory. Registration (the get-or-create
// accessors and Attach methods) takes a mutex — it happens at setup time, not
// on hot paths — while the returned primitives are the wait-free per-thread
// structures. Snapshot and Delta read every registered metric with atomic
// loads.
//
// A name may hold SEVERAL counters or histograms: Attach lets code that
// already maintains its own per-thread counters (core.StatsPlane, one per
// Sim instance) publish them under a shared name, and snapshots sum the
// collection — e.g. every stripe of a simmap attaches its plane to the same
// "map_ops_total".
type Registry struct {
	mu       sync.Mutex
	counters map[string][]*Counter
	gauges   map[string]*Gauge
	hists    map[string][]*Histogram

	lastCounters map[string]uint64
	lastHists    map[string]HistSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string][]*Counter{},
		gauges:       map[string]*Gauge{},
		hists:        map[string][]*Histogram{},
		lastCounters: map[string]uint64{},
		lastHists:    map[string]HistSnapshot{},
	}
}

// Counter returns the counter registered under name, creating it with n
// per-thread slots on first use. Later calls ignore n (first registration
// wins), so pass the maximum process count the metric will ever see.
func (r *Registry) Counter(name string, n int) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l := r.counters[name]; len(l) > 0 {
		return l[0]
	}
	c := NewCounter(n)
	r.counters[name] = []*Counter{c}
	return c
}

// AttachCounter publishes an externally owned counter under name; snapshots
// report the sum of every counter attached to the name. Attaching the same
// counter twice double-counts it — don't.
func (r *Registry) AttachCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = append(r.counters[name], c)
}

// AttachHistogram publishes an externally owned histogram under name;
// snapshots report the merge of every histogram attached to the name.
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = append(r.hists[name], h)
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with n
// per-thread slots on first use. Later calls ignore n (first registration
// wins).
func (r *Registry) Histogram(name string, n int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l := r.hists[name]; len(l) > 0 {
		return l[0]
	}
	h := NewHistogram(n)
	r.hists[name] = []*Histogram{h}
	return h
}

// CounterNames returns every registered counter name, sorted. Setup-time
// discovery (the telemetry timeline resolves its series from it); not for
// hot paths.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// LookupCounters returns the counters published under name (a copy of the
// attach list; nil if the name is unregistered). Resolving the list once at
// setup lets a periodic reader sum Total() with no per-read locking.
func (r *Registry) LookupCounters(name string) []*Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l := r.counters[name]; len(l) > 0 {
		return append([]*Counter(nil), l...)
	}
	return nil
}

// LookupHistograms returns the histograms published under name (a copy;
// nil if unregistered).
func (r *Registry) LookupHistograms(name string) []*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l := r.hists[name]; len(l) > 0 {
		return append([]*Histogram(nil), l...)
	}
	return nil
}

// Snapshot is a point-in-time aggregated view of every registered metric.
// Maps are keyed by metric name; histogram values are aggregated across
// threads. Not a linearizable cross-metric cut (see package doc).
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Names returns all metric names of the snapshot, sorted, for stable export.
func (s Snapshot) Names() (counters, gauges, hists []string) {
	for k := range s.Counters {
		counters = append(counters, k)
	}
	for k := range s.Gauges {
		gauges = append(gauges, k)
	}
	for k := range s.Histograms {
		hists = append(hists, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// Snapshot reads every registered metric. Nil-safe (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string][]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = append([]*Counter(nil), v...)
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string][]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = append([]*Histogram(nil), v...)
	}
	r.mu.Unlock()

	for k, l := range counters {
		var t uint64
		for _, c := range l {
			t += c.Total()
		}
		out.Counters[k] = t
	}
	for k, g := range gauges {
		out.Gauges[k] = g.Value()
	}
	for k, l := range hists {
		var s HistSnapshot
		for _, h := range l {
			s.Merge(h.Snapshot())
		}
		out.Histograms[k] = s
	}
	return out
}

// Delta returns the change in every counter and histogram since the previous
// Delta call (or since registry creation on the first call). Gauges are
// reported at their absolute value — a delta of a level is meaningless.
// Delta is what a periodic dumper wants: per-interval rates instead of
// lifetime totals. Serialized internally; concurrent callers see disjoint
// intervals.
func (r *Registry) Delta() Snapshot {
	snap := r.Snapshot()
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range snap.Counters {
		prev := r.lastCounters[k]
		r.lastCounters[k] = v
		snap.Counters[k] = subClamp(v, prev)
	}
	for k, v := range snap.Histograms {
		prev := r.lastHists[k]
		r.lastHists[k] = v
		v.Sub(prev)
		snap.Histograms[k] = v
	}
	return snap
}
