package obs

import (
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/pad"
)

// NumBuckets is the number of logarithmic histogram buckets. Bucket i counts
// recorded values v with bits.Len64(v) == i: bucket 0 holds exactly v = 0,
// bucket i ≥ 1 holds v in [2^(i-1), 2^i). One bucket per power of two covers
// the full uint64 range — nanosecond latencies from sub-2ns to centuries —
// with bounded relative error (a value is at most 2x its bucket's upper
// bound estimate).
const NumBuckets = 65

// histSlot is one thread's private histogram block. The trailing pad rounds
// the struct to a whole number of cache lines so consecutive slots of a
// []histSlot never share a line.
type histSlot struct {
	buckets         [NumBuckets]atomic.Uint64
	count, sum, max atomic.Uint64
	_               [pad.CacheLineSize - (NumBuckets*8+24)%pad.CacheLineSize]byte
}

// Histogram is a per-thread log-bucketed histogram: n single-writer slots,
// one per process id. Thread i must be the only writer of slot i. Record is
// a handful of uncontended load+store pairs — cheap enough for wait-free hot
// paths (the per-operation latency recorders use it).
type Histogram struct {
	slots []histSlot
}

// NewHistogram returns a histogram with n per-thread slots (rounds up to 1).
func NewHistogram(n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{slots: make([]histSlot, n)}
}

// Record adds value v to slot id. Single-writer load+store, atomic
// visibility for readers. No-op on a nil histogram.
func (h *Histogram) Record(id int, v uint64) {
	if h == nil {
		return
	}
	s := &h.slots[id]
	b := &s.buckets[bits.Len64(v)]
	b.Store(b.Load() + 1)
	s.count.Store(s.count.Load() + 1)
	s.sum.Store(s.sum.Load() + v)
	if v > s.max.Load() {
		s.max.Store(v)
	}
}

// Slots returns the number of per-thread slots.
func (h *Histogram) Slots() int {
	if h == nil {
		return 0
	}
	return len(h.slots)
}

// Reset zeroes every slot. Not safe concurrently with writers.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.slots {
		s := &h.slots[i]
		for b := range s.buckets {
			s.buckets[b].Store(0)
		}
		s.count.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
	}
}

// Snapshot aggregates all slots with atomic loads. Safe concurrently with
// writers; each per-slot value is exact, the cross-slot cut is not atomic.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	if h == nil {
		return out
	}
	for i := range h.slots {
		s := &h.slots[i]
		for b := 0; b < NumBuckets; b++ {
			out.Buckets[b] += s.buckets[b].Load()
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		if m := s.max.Load(); m > out.Max {
			out.Max = m
		}
	}
	return out
}

// HistSnapshot is an aggregated point-in-time view of a Histogram. The zero
// value is an empty snapshot; snapshots combine with Merge and Sub.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds b's samples into s. Max becomes the larger of the two.
func (s *HistSnapshot) Merge(b HistSnapshot) {
	s.Count += b.Count
	s.Sum += b.Sum
	if b.Max > s.Max {
		s.Max = b.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += b.Buckets[i]
	}
}

// Sub subtracts an earlier snapshot of the same histogram, leaving the
// samples recorded in between (the delta view). Fields clamp at 0 so a
// concurrent Reset cannot produce wrapped counts. Max stays the lifetime
// max — per-interval maxima are not recoverable from bucket deltas.
func (s *HistSnapshot) Sub(earlier HistSnapshot) {
	s.Count = subClamp(s.Count, earlier.Count)
	s.Sum = subClamp(s.Sum, earlier.Sum)
	for i := range s.Buckets {
		s.Buckets[i] = subClamp(s.Buckets[i], earlier.Buckets[i])
	}
}

func subClamp(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Mean returns the mean recorded value, or 0 for an empty snapshot.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpper returns the largest value bucket i can hold (its inclusive
// upper bound): 0 for bucket 0, 2^i - 1 for i ≥ 1.
func BucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q ≤ 1):
// the upper bound of the bucket containing the ⌈q·Count⌉-th smallest sample,
// clamped to the observed Max. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			u := BucketUpper(i)
			if s.Max > 0 && u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}
