package alloc

import "repro/internal/obs/trace"

// Guard answers whether a block is currently protected by a reader and must
// not be reissued. *core.Hazards[T] satisfies it; tests may substitute any
// predicate. A Guard must be conservative: it may say "protected" for an
// unprotected block (costing only a wider probe), but never the reverse for
// a block whose protection was published before the probe.
type Guard[T any] interface {
	Hazarded(*T) bool
}

// Typed composes a Pool with a hazard-pointer Guard: its Get probes
// candidate blocks against the guard and never returns a protected one, the
// exact validation Ring.PopFree performed per-ring, now done once at the
// plane's reissue boundary — which is the only place it is needed, because a
// block is invisible to readers between Put and Get.
//
// Why probing at reissue time is safe even across threads: a reader
// publishes its hazard pointer and then validates the block is still
// current; a writer retires the block (Put) only after unlinking it from the
// shared structure. So by the time a retired block reaches any Get, a reader
// still holding it has its hazard slot published, and the probe sees it.
// Handing a chain through the shared pool does not change this — the chain
// CAS happens after retirement, and the probe happens before reissue, so the
// protected block simply parks in some handle's cache until the reader
// leaves. Recycling remains an optimization, never a wait: a fully protected
// cache costs one fresh allocation, not a spin.
type Typed[T any] struct {
	pool  *Pool[T]
	guard Guard[T]
}

// NewTyped wraps pool with guard.
func NewTyped[T any](pool *Pool[T], guard Guard[T]) *Typed[T] {
	if guard == nil {
		panic("alloc: NewTyped needs a Guard")
	}
	return &Typed[T]{pool: pool, guard: guard}
}

// Pool returns the underlying pool (for Register/SetTracer/Retained).
func (ty *Typed[T]) Pool() *Pool[T] { return ty.pool }

// Put returns a block to the plane (identical to Handle.Put — retirement
// needs no guard check; the check happens at reissue).
func (ty *Typed[T]) Put(h *Handle[T], x *T) { h.Put(x) }

// Get returns an unprotected block, or a fresh one (fresh=true) when the
// local cache — plus at most one chain taken from the shared pool — holds
// only protected blocks or nothing at all. Probed-but-protected blocks are
// parked aside and returned to the cache before Get returns, so they are
// retried on later Gets (readers leave; hazards clear). The probe budget is
// bounded by the cache capacity, keeping Get wait-free.
func (ty *Typed[T]) Get(h *Handle[T]) (x *T, fresh bool) {
	p := ty.pool
	// Fast path: the active stack's top block is free. This is the steady
	// state of every construction (retire/reissue alternate, so the hottest
	// block sits on top and its reader count is almost always zero).
	if h.nA > 0 {
		cand := h.headA
		if !ty.guard.Hazarded(cand) {
			h.headA = p.next(cand)
			h.nA--
			p.setNext(cand, nil)
			p.blocks.Add(h.id, 1)
			return cand, false
		}
	}
	return ty.getSlow(h)
}

// getSlow is Get minus the fast path: probe through the whole cache (the
// top block included — a reader may have left since the fast-path probe),
// refill once from the shared pool, fall back to a fresh allocation.
func (ty *Typed[T]) getSlow(h *Handle[T]) (x *T, fresh bool) {
	p := ty.pool
	budget := h.nA
	if h.headF != nil {
		budget += p.chain
	}
	refilled := false
	var got, parked *T
	probed := 0
	for {
		if budget == 0 {
			if refilled {
				break
			}
			refilled = true
			c := p.take(h.id)
			if c == nil {
				break
			}
			h.headA, h.nA = c, p.chain
			budget = p.chain
		}
		cand := h.popLocal()
		if cand == nil {
			break
		}
		budget--
		if !ty.guard.Hazarded(cand) {
			got = cand
			break
		}
		probed++
		p.setNext(cand, parked)
		parked = cand
	}
	for parked != nil {
		nx := p.next(parked)
		h.stash(parked)
		parked = nx
	}
	p.blocks.Add(h.id, 1)
	if got != nil {
		return got, false
	}
	p.fresh.Add(h.id, 1)
	if probed > 0 {
		// Every candidate was protected: the starvation case the space-bound
		// test drives. Fresh allocation keeps the caller wait-free.
		p.starved.Add(h.id, 1)
		p.tr.AnonInstant(trace.KindAllocStarved, uint64(probed), 0)
	}
	return p.newFn(), true
}
