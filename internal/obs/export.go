package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// histJSON is the JSON shape of one histogram: the derived statistics the
// acceptance dashboards want (p50/p99/mean/max) plus the non-empty buckets,
// keyed by inclusive upper bound.
type histJSON struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Mean    float64           `json:"mean"`
	Max     uint64            `json:"max"`
	P50     uint64            `json:"p50"`
	P90     uint64            `json:"p90"`
	P99     uint64            `json:"p99"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

type snapshotJSON struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

// WriteJSON writes the snapshot as one indented JSON document: counters and
// gauges as flat name→value maps, histograms with precomputed p50/p90/p99,
// mean, max, and the non-empty log buckets.
func WriteJSON(w io.Writer, s Snapshot) error {
	out := snapshotJSON{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: map[string]histJSON{},
	}
	for name, h := range s.Histograms {
		hj := histJSON{
			Count: h.Count,
			Sum:   h.Sum,
			Mean:  h.Mean(),
			Max:   h.Max,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		for i, c := range h.Buckets {
			if c != 0 {
				if hj.Buckets == nil {
					hj.Buckets = map[string]uint64{}
				}
				hj.Buckets[fmt.Sprintf("%d", BucketUpper(i))] = c
			}
		}
		out.Histograms[name] = hj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeries renders a metric name for one exposition line: the sanitized
// base name plus suffix, with the name's label block — extended by extra
// (e.g. a `le` bound) — emitted as real Prometheus labels.
func promSeries(name, suffix, extra string) string {
	base, labels := SplitName(name)
	out := promName(base) + suffix
	switch {
	case labels != "" && extra != "":
		return out + "{" + labels + "," + extra + "}"
	case labels != "":
		return out + "{" + labels + "}"
	case extra != "":
		return out + "{" + extra + "}"
	}
	return out
}

// promType writes the `# TYPE` header when base differs from *last: labeled
// series of one family (map_ops_total{shard="0"}, {shard="1"}, …) sort
// adjacently, and the family gets exactly one header.
func promType(w io.Writer, name, kind string, last *string) error {
	base, _ := SplitName(name)
	pn := promName(base)
	if pn == *last {
		return nil
	}
	*last = pn
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, kind)
	return err
}

// WriteProm writes the snapshot in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count` (the standard
// histogram convention, so PromQL's histogram_quantile works unchanged).
// Names carrying a label block (see Labeled) become real labeled series
// under their shared family name.
func WriteProm(w io.Writer, s Snapshot) error {
	counters, gauges, hists := s.Names()
	var last string
	for _, name := range counters {
		if err := promType(w, name, "counter", &last); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(name, "", ""), s.Counters[name]); err != nil {
			return err
		}
	}
	last = ""
	for _, name := range gauges {
		if err := promType(w, name, "gauge", &last); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(name, "", ""), s.Gauges[name]); err != nil {
			return err
		}
	}
	last = ""
	for _, name := range hists {
		h := s.Histograms[name]
		if err := promType(w, name, "histogram", &last); err != nil {
			return err
		}
		var cum uint64
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			le := fmt.Sprintf("le=\"%d\"", BucketUpper(i))
			if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(name, "_bucket", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n%s %d\n",
			promSeries(name, "_bucket", `le="+Inf"`), h.Count,
			promSeries(name, "_sum", ""), h.Sum,
			promSeries(name, "_count", ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry over HTTP: Prometheus text format by default,
// JSON with `?format=json` (or an Accept: application/json header), and the
// delta-since-last-scrape view with `?delta=1`. Mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var snap Snapshot
		if req.URL.Query().Get("delta") == "1" {
			snap = r.Delta()
		} else {
			snap = r.Snapshot()
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, snap)
	})
}
