package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// dialPipe wires a client to ServeConn over an in-memory pipe.
func dialPipe(t *testing.T, s *Server, id int) (send func(string) string, shutdown func()) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer server.Close()
		s.ServeConn(id, server)
		close(done)
	}()
	r := bufio.NewReader(client)
	send = func(line string) string {
		if _, err := fmt.Fprintln(client, line); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimSpace(resp)
	}
	return send, func() {
		client.Close()
		<-done
	}
}

func TestProtocolBasics(t *testing.T) {
	s := New(2, 2)
	send, done := dialPipe(t, s, 0)
	defer done()

	cases := [][2]string{
		{"GET a", "NIL"},
		{"PUT a 5", "OK NIL"},
		{"GET a", "VAL 5"},
		{"PUT a 7", "OK 5"},
		{"DEL a", "OK 7"},
		{"DEL a", "OK NIL"},
		{"LEN", "LEN 0"},
		{"PUT b 1", "OK NIL"},
		{"LEN", "LEN 1"},
	}
	for _, c := range cases {
		if got := send(c[0]); got != c[1] {
			t.Fatalf("%q -> %q, want %q", c[0], got, c[1])
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	defer done()

	for _, req := range []string{
		"PUT a", "PUT a b c d", "PUT a notanumber",
		"GET", "DEL", "NOSUCH x",
	} {
		if got := send(req); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", req, got)
		}
	}
	// The connection survives errors.
	if got := send("PUT k 1"); got != "OK NIL" {
		t.Fatalf("connection broken after errors: %q", got)
	}
}

func TestProtocolQuit(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	if got := send("QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
	done()
}

func TestProtocolStats(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	defer done()
	send("PUT x 1")
	got := send("STATS")
	if !strings.HasPrefix(got, "STATS ops=") {
		t.Fatalf("STATS -> %q", got)
	}
	// Extended fields: publish failures and helped completions.
	for _, field := range []string{"cas_fail=", "served_by="} {
		if !strings.Contains(got, field) {
			t.Fatalf("STATS missing %s: %q", field, got)
		}
	}
}

// TestCommandMetrics: the per-command counters and the map recorder see the
// traffic.
func TestCommandMetrics(t *testing.T) {
	s := New(2, 2)
	send, done := dialPipe(t, s, 0)
	defer done()
	send("PUT a 1")
	send("PUT b 2")
	send("GET a")
	send("DEL b")
	send("BOGUS")

	snap := s.Registry().Snapshot()
	for name, want := range map[string]uint64{
		"kv_put_total": 2,
		"kv_get_total": 1,
		"kv_del_total": 1,
		"kv_err_total": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	// 3 mutations went through the instrumented map.
	if got := snap.Counters["map_ops_total"]; got != 3 {
		t.Fatalf("map_ops_total = %d, want 3", got)
	}
	lat, ok := snap.Histograms["map_op_latency_ns"]
	if !ok || lat.Count != 3 {
		t.Fatalf("map_op_latency_ns count = %d (present=%v), want 3", lat.Count, ok)
	}
	if lat.Quantile(0.99) == 0 || lat.Max == 0 {
		t.Fatalf("latency histogram recorded no time: %+v", lat)
	}
}

// TestCloseUnblocksInFlightConnections: Close must not wait for (or leak)
// serve goroutines stuck reading from idle clients — it closes their
// connections and drains.
func TestCloseUnblocksInFlightConnections(t *testing.T) {
	s := New(2, 2)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	// Two clients connect, speak once, then go idle holding the connection.
	var conns []net.Conn
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conns = append(conns, conn)
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "PUT k%d 1\n", i)
		if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "OK") {
			t.Fatalf("PUT -> %q", resp)
		}
	}
	if got := s.Registry().Snapshot().Gauges["kv_connections"]; got != 2 {
		t.Fatalf("kv_connections = %d, want 2", got)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on in-flight idle connections")
	}
	if got := s.Registry().Snapshot().Gauges["kv_connections"]; got != 0 {
		t.Fatalf("kv_connections after close = %d, want 0", got)
	}
	for _, c := range conns {
		c.Close()
	}
}

func TestTCPEndToEnd(t *testing.T) {
	s := New(4, 4)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, "PUT hello 42")
	if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "OK NIL" {
		t.Fatalf("PUT -> %q", resp)
	}
	fmt.Fprintln(conn, "GET hello")
	if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "VAL 42" {
		t.Fatalf("GET -> %q", resp)
	}
}

// TestConcurrentClientsConservation: many TCP clients hammer disjoint keys;
// every binding must be present afterwards.
func TestConcurrentClientsConservation(t *testing.T) {
	const clients, keysPer = 6, 50
	s := New(clients, 4)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for k := 0; k < keysPer; k++ {
				fmt.Fprintf(conn, "PUT k%d-%d %d\n", c, k, c*1000+k)
				if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "OK") {
					t.Errorf("PUT -> %q", resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := s.Map().Len(); got != clients*keysPer {
		t.Fatalf("map has %d entries, want %d", got, clients*keysPer)
	}
	for c := 0; c < clients; c++ {
		for k := 0; k < keysPer; k++ {
			key := fmt.Sprintf("k%d-%d", c, k)
			if v, ok := s.Map().Get(key); !ok || v != uint64(c*1000+k) {
				t.Fatalf("key %s = (%d,%v)", key, v, ok)
			}
		}
	}
}

// TestClientSlotRecycling: more sequential connections than client slots —
// ids must recycle.
func TestClientSlotRecycling(t *testing.T) {
	s := New(2, 2)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "PUT k%d 1\nQUIT\n", i)
		if resp, _ := r.ReadString('\n'); !strings.HasPrefix(resp, "OK") {
			t.Fatalf("PUT -> %q", resp)
		}
		if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "BYE" {
			t.Fatalf("QUIT -> %q", resp)
		}
		conn.Close()
	}
	if got := s.Map().Len(); got != 8 {
		t.Fatalf("map has %d entries, want 8", got)
	}
}

// TestBlobProtocol exercises the large-value command family over both tiers:
// a value below the threshold rides the inline map, one at or above it is
// served by an L-Sim item, and STATS reports the routing split.
func TestBlobProtocol(t *testing.T) {
	const threshold = 8
	s := New(2, 2, WithLargeValues(threshold))
	send, done := dialPipe(t, s, 0)
	defer done()

	small := "tiny"                               // 4 bytes: inline tier
	large := strings.Repeat("x", threshold) + "Z" // 9 bytes: item tier

	cases := [][2]string{
		{"BGET a", "NIL"},
		{"BPUT a " + small, "OK NEW"},
		{"BGET a", "VAL " + small},
		{"BPUT a " + large, "OK SET"}, // small -> large tier move
		{"BGET a", "VAL " + large},
		{"BPUT a " + large + "2", "OK SET"}, // in-tier L-Sim overwrite
		{"BGET a", "VAL " + large + "2"},
		{"BDEL a", "OK"},
		{"BDEL a", "OK NIL"},
		{"BGET a", "NIL"},
		{"BPUT big " + large, "OK NEW"},
	}
	for _, c := range cases {
		if got := send(c[0]); got != c[1] {
			t.Fatalf("%q -> %q, want %q", c[0], got, c[1])
		}
	}

	stats := send("STATS")
	for _, want := range []string{"blob_small=", "blob_large=", "lsim_ops=", "lsim_items=",
		fmt.Sprintf("threshold=%d", threshold)} {
		if !strings.Contains(stats, want) {
			t.Fatalf("STATS %q missing %q", stats, want)
		}
	}
	bs := s.Tiered().Stats()
	if bs.SmallOps == 0 || bs.LargeOps == 0 {
		t.Fatalf("tier routing counters small=%d large=%d, want both > 0", bs.SmallOps, bs.LargeOps)
	}
	if bs.Large.Ops == 0 {
		t.Fatal("no L-Sim rounds recorded for the in-tier overwrite")
	}

	for _, req := range []string{"BPUT a", "BPUT a b c", "BGET", "BDEL x y"} {
		if got := send(req); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", req, got)
		}
	}
}

// TestBlobDisabled pins the error surface when the tier is off, and that
// STATS stays in its legacy shape.
func TestBlobDisabled(t *testing.T) {
	s := New(1, 1)
	send, done := dialPipe(t, s, 0)
	defer done()
	for _, req := range []string{"BPUT a xx", "BGET a", "BDEL a"} {
		if got := send(req); !strings.HasPrefix(got, "ERR large-value tier disabled") {
			t.Fatalf("%q -> %q, want disabled error", req, got)
		}
	}
	if got := send("STATS"); strings.Contains(got, "blob_") {
		t.Fatalf("STATS leaked blob fields without WithLargeValues: %q", got)
	}
}

// TestBlobPipelinedBarrier checks that blob commands interleave correctly
// with batched uint64 traffic in pipeline mode (they execute as run
// barriers, responses in request order).
func TestBlobPipelinedBarrier(t *testing.T) {
	s := New(2, 2, WithPipeline(8), WithLargeValues(8))
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer server.Close()
		s.ServeConn(0, server)
		close(done)
	}()
	defer func() { client.Close(); <-done }()

	reqs := "PUT a 1\nBPUT blob 123456789\nPUT a 2\nBGET blob\nGET a\nQUIT\n"
	if _, err := client.Write([]byte(reqs)); err != nil {
		t.Fatalf("write: %v", err)
	}
	want := []string{"OK NIL", "OK NEW", "OK 1", "VAL 123456789", "VAL 2", "BYE"}
	r := bufio.NewReader(client)
	for _, w := range want {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read (want %q): %v", w, err)
		}
		if got := strings.TrimSpace(line); got != w {
			t.Fatalf("pipelined response = %q, want %q", got, w)
		}
	}
}
