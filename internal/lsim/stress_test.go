package lsim

import (
	"sync"
	"testing"
)

// TestLSimItemRecyclingStress drives heavy multi-writer traffic over a small
// item set — maximal body recycling pressure — while concurrent readers spin
// on Item.Current. Run under -race this is the ItemSV reuse safety gate: a
// body recycled while a reader or co-helper still holds it would be a
// write-after-read race the detector flags; without -race the value
// conservation check still validates exactly-once application over recycled
// bodies.
func TestLSimItemRecyclingStress(t *testing.T) {
	const (
		n     = 4
		items = 3
		per   = 3000
	)
	l := New[uint64, [2]uint64, uint64](n)
	its := make([]*Item[uint64], items)
	for i := range its {
		its[i] = l.NewRootItem(0)
	}
	// Move arg[1] units from item arg[0] to the next item, touching two
	// bodies per op, and bump a third as a read-set entry.
	op := func(m *Mem[uint64, [2]uint64, uint64], a [2]uint64) uint64 {
		src := its[a[0]%items]
		dst := its[(a[0]+1)%items]
		v := m.Read(src)
		m.Write(src, v-a[1])
		m.Write(dst, m.Read(dst)+a[1])
		return v
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, it := range its {
					_ = it.Current()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				l.ApplyOp(id, op, [2]uint64{uint64(id + k), 1})
			}
		}(id)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Conservation: every op moved 1 unit between items, so the sum over
	// all items is zero (mod 2^64) iff every op applied exactly once.
	var sum uint64
	for _, it := range its {
		sum += it.Current()
	}
	if sum != 0 {
		t.Fatalf("conservation violated: items sum to %d, want 0", sum)
	}
	st := l.Stats()
	if st.Ops != n*per {
		t.Fatalf("ops = %d, want %d", st.Ops, n*per)
	}
	if st.Combined != n*per {
		t.Fatalf("combined = %d, want %d (exactly-once)", st.Combined, n*per)
	}
}

// TestLSimApplyBatch checks vector announcements: every element of a batch
// is applied exactly once, responses come back in order, and batches from
// several processes interleave without loss.
func TestLSimApplyBatch(t *testing.T) {
	const n, batches, b = 3, 200, 8
	l := New[uint64, uint64, uint64](n)
	item := l.NewRootItem(0)
	add := func(m *cnt, arg uint64) uint64 {
		v := m.Read(item)
		m.Write(item, v+arg)
		return v
	}

	var wg sync.WaitGroup
	errs := make(chan string, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			args := make([]uint64, b)
			res := make([]uint64, 0, b)
			for k := 0; k < batches; k++ {
				for j := range args {
					args[j] = 1
				}
				res = l.ApplyBatch(id, add, args, res)
				if len(res) != b {
					errs <- "short response vector"
					return
				}
				// Batch elements run consecutively in one round: responses
				// must be consecutive pre-values.
				for j := 1; j < b; j++ {
					if res[j] != res[j-1]+1 {
						errs <- "batch responses not consecutive"
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := item.Current(); got != n*batches*b {
		t.Fatalf("item = %d, want %d", got, n*batches*b)
	}
	st := l.Stats()
	if st.Combined != n*batches*b {
		t.Fatalf("combined = %d, want %d", st.Combined, n*batches*b)
	}
}

// TestLSimBatchSingleAndEmpty covers the ApplyBatch degenerate shapes.
func TestLSimBatchSingleAndEmpty(t *testing.T) {
	l := New[uint64, uint64, uint64](1)
	item := l.NewRootItem(0)
	add := func(m *cnt, arg uint64) uint64 {
		v := m.Read(item)
		m.Write(item, v+arg)
		return v
	}
	if got := l.ApplyBatch(0, add, nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
	res := l.ApplyBatch(0, add, []uint64{5}, nil)
	if len(res) != 1 || res[0] != 0 {
		t.Fatalf("single-element batch returned %v", res)
	}
	if item.Current() != 5 {
		t.Fatalf("item = %d, want 5", item.Current())
	}
}
