// Command simcheck stress-tests the repository's concurrent objects and
// checks them for linearizability. Two modes:
//
//	-mode stress    large concurrent runs checked with structural invariants
//	                (value conservation, no duplication, per-producer order)
//	-mode linearize many small adversarial histories validated with the
//	                Wing–Gong checker
//
// Example:
//
//	simcheck -object stack -impl sim -threads 8 -ops 10000
//	simcheck -object queue -impl ms -mode linearize -rounds 200
//	simcheck -object queue -impl sim -batch 4 -mode linearize
//	simcheck -object map -mode linearize -batch 4
//
// -batch B drives the Sim-family batched entry points (ApplyBatch,
// EnqueueBatch/DequeueBatch, PushBatch/PopBatch, MSet/MGet/MDelete): stress
// mode produces and consumes in B-sized batches, linearize mode records
// each batched call as B per-element operations sharing the call's
// invoke/return window (a batch promises each element a linearization
// point inside the call, not elementwise atomic separation) and checks the
// history as usual. For fmul the batch is additionally checked for internal
// consistency (res[j+1] = res[j]*f[j]) and collapsed to one Fetch&Multiply
// of the factors' product. -object map checks the SHARDED map per key with
// the partitioned checker — per-key linearizability is exactly the
// guarantee a sharded map makes.
//
// Linearize mode is driven by the internal/check/v2 compositional checker:
//
//	-engine forward   single-pass forward-simulation checkers (default;
//	                  scales to histories far past 64 operations)
//	-engine search    the original Wing–Gong exhaustive search (degrades
//	                  to forward past its 64-operation budget)
//	-engine both      runs both and fails on any verdict disagreement —
//	                  the cross-validation mode CI uses
//
// Neither engine limits history LENGTH, but the forward engine tracks at
// most 64 concurrently OPEN operations (one bit each in the frontier's
// pending mask). Batched linearize runs therefore cap -batch at 21: three
// overlapping batched calls open 3×batch operations at once, and 3×21 = 63
// is the widest that fits. A wider history makes the checker return
// ErrTooWide ("forward engine: more than 64 operations overlap") — a
// capacity verdict, not a linearizability verdict: the history was not
// proven wrong, the engine just could not decide it. Callers must treat it
// as "undecided", never as a pass or a violation; simcheck reports such
// rounds as "history not decided" warnings (v2.Rejected distinguishes real
// violations from engine limits).
//
//	-partition=false  checks map histories against the whole-map spec on a
//	                  single state instead of per key; by Herlihy–Wing
//	                  locality the verdict is the same, so this is another
//	                  cross-validation path, not a different contract
//
// -sched-seed S (nonzero) replaces free-running goroutines with the
// deterministic adversarial scheduler from internal/check/sched: every
// linearize round derives a replayable schedule from S, and a failing
// round prints the exact flags that reproduce it plus a minimized
// preemption budget. -sched-preempt bounds forced preemptions per
// schedule (-1 = a switch is considered at every preemption point).
// Only the Sim-family implementations expose preemption points; other
// impls simply serialize under the scheduler.
//
// Exit status 0 means every check passed.
//
// Sim-family implementations run with the wait-free flight recorder
// attached: when a check FAILs, the newest combining-round events (round
// commits with their degree, CAS publish failures, recycling misses, …)
// are dumped to stderr — the post-mortem view of what the combiners were
// doing when the invariant broke. -flight-last bounds the dump.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/check/sched"
	"repro/internal/check/v2"
	"repro/internal/fmul"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/simmap"
	"repro/internal/stack"
)

// flight is the flight recorder shared by every Sim-family instance the
// checker builds (attached via attachFlight); nil for untraced impls.
var flight *trace.Tracer

// flightLast bounds the number of events dumped on failure.
var flightLast int

// attachFlight hooks the flight recorder onto implementations that support
// it and returns the object for inline use.
func attachFlight[T any](o T) T {
	if t, ok := any(o).(interface{ SetTracer(*trace.Tracer) }); ok {
		t.SetTracer(flight)
	}
	return o
}

// dumpFlight writes the newest recorded events to stderr after a failure.
func dumpFlight() {
	if flight == nil {
		return
	}
	evs := flight.Snapshot()
	if len(evs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "--- flight recorder: newest %d of %d events ---\n",
		min(flightLast, len(evs)), len(evs))
	_ = trace.WriteText(os.Stderr, trace.Tail(evs, flightLast))
}

// Linearize-mode configuration set once in main from flags.
var (
	engineSel    v2.Engine // which checker engine validates histories
	partitionSel bool      // per-key map checking vs whole-map spec
	schedSeed    uint64    // 0 = free-running goroutines, else deterministic schedules
	schedPreempt int       // forced-preemption budget per seeded schedule
)

func main() {
	var (
		object  = flag.String("object", "stack", "object to check: stack, queue, fmul, map (sharded)")
		impl    = flag.String("impl", "sim", "implementation (stack: sim|treiber|elimination|clh|fc; queue: sim|ms|twolock|fc; fmul: psim|pool|clh|mcs|lockfree|fc|herlihy|combtree)")
		mode    = flag.String("mode", "stress", "check mode: stress or linearize")
		threads = flag.Int("threads", 8, "concurrent processes")
		ops     = flag.Int("ops", 5000, "operations per process (stress mode)")
		rounds  = flag.Int("rounds", 100, "histories to check (linearize mode)")
		last    = flag.Int("flight-last", 64, "max flight-recorder events dumped to stderr on failure")
		batch   = flag.Int("batch", 1, "drive batched entry points with vectors of this size (1 = single-op paths)")

		engine = flag.String("engine", "forward",
			"linearize-mode checker: forward, search, or both (cross-validate); forward tracks at most "+
				"64 concurrently open operations, so batched runs cap -batch at 21 (search: 8) and wider "+
				"histories fail fast with ErrTooWide")
		partition = flag.Bool("partition", true, "check map histories per key; false uses the whole-map spec (same verdict, different code path)")
		seed      = flag.Uint64("sched-seed", 0, "deterministic schedule seed for linearize mode (0 = free-running goroutines)")
		preempt   = flag.Int("sched-preempt", -1, "max forced preemptions per seeded schedule (-1 = consider a switch at every point)")
	)
	flag.Parse()

	var err error
	engineSel, err = v2.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		os.Exit(2)
	}
	partitionSel = *partition
	schedSeed = *seed
	schedPreempt = *preempt

	// Linearize mode always runs 3-process histories; size the rings for
	// whichever mode needs more. Every operation is recorded (no sampling):
	// a post-mortem with holes is not a post-mortem.
	n := *threads
	if n < 3 {
		n = 3
	}
	flight = trace.New(n, trace.WithSampleEvery(1))
	flightLast = *last

	ok := false
	switch *object {
	case "stack":
		ok = checkStack(*impl, *mode, *threads, *ops, *rounds, *batch)
	case "queue":
		ok = checkQueue(*impl, *mode, *threads, *ops, *rounds, *batch)
	case "fmul":
		ok = checkFMul(*impl, *mode, *threads, *ops, *rounds, *batch)
	case "map":
		ok = checkMap(*mode, *threads, *ops, *rounds, *batch)
	default:
		fmt.Fprintf(os.Stderr, "simcheck: unknown object %q\n", *object)
		os.Exit(2)
	}
	if !ok {
		dumpFlight()
		fmt.Println("FAIL")
		os.Exit(1)
	}
	fmt.Println("OK")
}

func newStack(impl string, n int) stack.Interface[uint64] {
	switch impl {
	case "sim":
		return stack.NewSimStack[uint64](n)
	case "treiber":
		return stack.NewTreiber[uint64](n)
	case "elimination":
		return stack.NewElimination[uint64](n)
	case "clh":
		return stack.NewCLHStack[uint64](n)
	case "fc":
		return stack.NewFCStack[uint64](n, 0, 0)
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown stack impl %q\n", impl)
	os.Exit(2)
	return nil
}

func newQueue(impl string, n int) queue.Interface[uint64] {
	switch impl {
	case "sim":
		return queue.NewSimQueue[uint64](n)
	case "ms":
		return queue.NewMSQueue[uint64](n)
	case "twolock":
		return queue.NewTwoLockQueue[uint64](n)
	case "fc":
		return queue.NewFCQueue[uint64](n, 0, 0)
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown queue impl %q\n", impl)
	os.Exit(2)
	return nil
}

func newFMul(impl string, n int) fmul.Interface {
	switch impl {
	case "psim":
		return fmul.NewPSim(n)
	case "pool":
		return fmul.NewPSimPooled(n)
	case "clh":
		return fmul.NewCLH(n)
	case "mcs":
		return fmul.NewMCS(n)
	case "lockfree":
		return fmul.NewLockFree(n)
	case "fc":
		return fmul.NewFC(n, 0, 0)
	case "herlihy":
		return fmul.NewHerlihy(n)
	case "combtree":
		return fmul.NewCombTree(n)
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown fmul impl %q\n", impl)
	os.Exit(2)
	return nil
}

// batched is the batched produce/consume surface shared by SimStack
// (PushBatch/PopBatch) and SimQueue (EnqueueBatch/DequeueBatch) once the
// method names are adapted by the callers below.
type batched struct {
	produce func(id int, vals []uint64)
	consume func(id, want int, out []uint64) []uint64
}

// asBatchedStack adapts a stack to the batched surface, exiting if the
// implementation has no vector entry points.
func asBatchedStack(s stack.Interface[uint64], impl string) batched {
	type sb interface {
		PushBatch(id int, vals []uint64)
		PopBatch(id, want int, out []uint64) []uint64
	}
	b, ok := any(s).(sb)
	if !ok {
		fmt.Fprintf(os.Stderr, "simcheck: stack impl %q has no batched entry points (-batch needs sim)\n", impl)
		os.Exit(2)
	}
	return batched{produce: b.PushBatch, consume: b.PopBatch}
}

// asBatchedQueue adapts a queue to the batched surface.
func asBatchedQueue(q queue.Interface[uint64], impl string) batched {
	type qb interface {
		EnqueueBatch(id int, vals []uint64)
		DequeueBatch(id, want int, out []uint64) []uint64
	}
	b, ok := any(q).(qb)
	if !ok {
		fmt.Fprintf(os.Stderr, "simcheck: queue impl %q has no batched entry points (-batch needs sim)\n", impl)
		os.Exit(2)
	}
	return batched{produce: b.EnqueueBatch, consume: b.DequeueBatch}
}

func checkStack(impl, mode string, threads, ops, rounds, batch int) bool {
	switch mode {
	case "stress":
		s := attachFlight(newStack(impl, threads))
		var popped map[uint64]int
		if batch > 1 {
			b := asBatchedStack(s, impl)
			popped = concurrentBatchPairs(threads, ops, batch, b)
		} else {
			popped = concurrentPairs(threads, ops,
				func(id int, v uint64) { s.Push(id, v) },
				func(id int) (uint64, bool) { return s.Pop(id) })
		}
		return verifyConservation(popped, threads*ops, func() (uint64, bool) { return s.Pop(0) })
	case "linearize":
		for r := 0; r < rounds; r++ {
			record := func(cfg sched.Config) []check.Operation {
				s := attachFlight(newStack(impl, 3))
				if batch > 1 {
					return recordBatchHistory(cfg, linBatch(batch), check.OpPush, check.OpPop, asBatchedStack(s, impl))
				}
				return recordHistory(cfg, 3,
					check.OpPush, func(id int, v uint64) { s.Push(id, v) },
					check.OpPop, func(id int) (uint64, bool) { return s.Pop(id) })
			}
			cfg := roundCfg(r, 3)
			if !reportCheck(r, "stack", record(cfg), cfg, record) {
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

func checkQueue(impl, mode string, threads, ops, rounds, batch int) bool {
	switch mode {
	case "stress":
		q := attachFlight(newQueue(impl, threads))
		var got map[uint64]int
		if batch > 1 {
			b := asBatchedQueue(q, impl)
			got = concurrentBatchPairs(threads, ops, batch, b)
		} else {
			got = concurrentPairs(threads, ops,
				func(id int, v uint64) { q.Enqueue(id, v) },
				func(id int) (uint64, bool) { return q.Dequeue(id) })
		}
		return verifyConservation(got, threads*ops, func() (uint64, bool) { return q.Dequeue(0) })
	case "linearize":
		for r := 0; r < rounds; r++ {
			record := func(cfg sched.Config) []check.Operation {
				q := attachFlight(newQueue(impl, 3))
				if batch > 1 {
					return recordBatchHistory(cfg, linBatch(batch), check.OpEnqueue, check.OpDequeue, asBatchedQueue(q, impl))
				}
				return recordHistory(cfg, 3,
					check.OpEnqueue, func(id int, v uint64) { q.Enqueue(id, v) },
					check.OpDequeue, func(id int) (uint64, bool) { return q.Dequeue(id) })
			}
			cfg := roundCfg(r, 3)
			if !reportCheck(r, "queue", record(cfg), cfg, record) {
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

// fmulBatcher is the vector entry point of the P-Sim Fetch&Multiply
// variants.
type fmulBatcher interface {
	ApplyBatch(id int, fs, res []uint64) []uint64
}

// asBatchedFMul asserts the vector entry point, exiting if absent.
func asBatchedFMul(o fmul.Interface, impl string) fmulBatcher {
	b, ok := any(o).(fmulBatcher)
	if !ok {
		fmt.Fprintf(os.Stderr, "simcheck: fmul impl %q has no ApplyBatch (-batch needs psim or pool)\n", impl)
		os.Exit(2)
	}
	return b
}

// chainConsistent verifies the internal promise of a Fetch&Multiply batch:
// element j+1 observes exactly the state element j left behind, i.e. the
// vector was applied contiguously at one linearization point.
func chainConsistent(fs, res []uint64) bool {
	for j := 1; j < len(res); j++ {
		if res[j] != res[j-1]*fs[j-1] {
			return false
		}
	}
	return true
}

func checkFMul(impl, mode string, threads, ops, rounds, batch int) bool {
	switch mode {
	case "stress":
		o := attachFlight(newFMul(impl, threads))
		var want uint64 = 1
		for i := 0; i < threads*ops; i++ {
			want *= 3
		}
		var bad atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if batch > 1 {
					b := asBatchedFMul(o, impl)
					fs := make([]uint64, batch)
					res := make([]uint64, 0, batch)
					for k := 0; k < ops; k += len(fs) {
						if rem := ops - k; rem < len(fs) {
							fs = fs[:rem]
						}
						for j := range fs {
							fs[j] = 3
						}
						res = b.ApplyBatch(id, fs, res[:0])
						if !chainConsistent(fs, res) {
							bad.Store(true)
						}
					}
					return
				}
				for k := 0; k < ops; k++ {
					o.Apply(id, 3)
				}
			}(i)
		}
		wg.Wait()
		if bad.Load() {
			fmt.Println("batch chain inconsistency: res[j+1] != res[j]*f[j] inside one ApplyBatch")
			return false
		}
		if got := o.Read(); got != want {
			fmt.Printf("product mismatch: got %#x want %#x\n", got, want)
			return false
		}
		return true
	case "linearize":
		for r := 0; r < rounds; r++ {
			chainBad := make([]bool, 3)
			record := func(cfg sched.Config) []check.Operation {
				o := attachFlight(newFMul(impl, 3))
				rec := check.NewRecorder(9)
				for i := range chainBad {
					chainBad[i] = false
				}
				runWorkers(cfg, func(id int) {
					if batch > 1 {
						// Each batched call is checked for internal chain
						// consistency, then collapsed to ONE Fetch&Multiply
						// of the factors' product returning res[0]: if the
						// chain holds, the vector is indistinguishable from
						// that single operation to every other process.
						b := asBatchedFMul(o, impl)
						fs := make([]uint64, batch)
						res := make([]uint64, 0, batch)
						for k := 0; k < 3; k++ {
							prod := uint64(1)
							for j := range fs {
								fs[j] = uint64(2*(id*batch+j)+3) | 1
								prod *= fs[j]
							}
							slot := rec.Invoke(id, check.OpMul, prod)
							res = b.ApplyBatch(id, fs, res[:0])
							if !chainConsistent(fs, res) {
								chainBad[id] = true
							}
							rec.Return(slot, res[0], false)
						}
						return
					}
					for k := 0; k < 3; k++ {
						slot := rec.Invoke(id, check.OpMul, 3)
						prev := o.Apply(id, 3)
						rec.Return(slot, prev, false)
					}
				})
				return rec.Operations()
			}
			cfg := roundCfg(r, 3)
			h := record(cfg)
			for id, b := range chainBad {
				if b {
					fmt.Printf("round %d: process %d saw an inconsistent batch chain\n", r, id)
					return false
				}
			}
			if !reportCheck(r, "Fetch&Multiply", h, cfg, record) {
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

// concurrentPairs runs threads×ops produce+consume pairs with unique tagged
// values and returns the multiset of consumed values.
func concurrentPairs(threads, ops int, produce func(int, uint64), consume func(int) (uint64, bool)) map[uint64]int {
	var mu sync.Mutex
	got := make(map[uint64]int)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := map[uint64]int{}
			for k := 0; k < ops; k++ {
				produce(id, uint64(id*ops+k)+1)
				if v, ok := consume(id); ok {
					local[v]++
				}
			}
			mu.Lock()
			for v, c := range local {
				got[v] += c
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return got
}

// verifyConservation drains the remainder and checks that every produced
// value was consumed exactly once.
func verifyConservation(got map[uint64]int, produced int, drain func() (uint64, bool)) bool {
	for {
		v, ok := drain()
		if !ok {
			break
		}
		got[v]++
	}
	if len(got) != produced {
		fmt.Printf("conservation: %d distinct values consumed, want %d\n", len(got), produced)
		return false
	}
	for v, c := range got {
		if c != 1 {
			fmt.Printf("duplication: value %d consumed %d times\n", v, c)
			return false
		}
	}
	return true
}

// roundCfg derives round r's schedule config. With -sched-seed=0 the config
// is inert (runWorkers falls back to free goroutines); otherwise each round
// gets a distinct seed derived from the flag so the whole run is replayable
// from -sched-seed alone, and any single failing round is replayable by
// passing its derived seed with -rounds 1.
func roundCfg(r, threads int) sched.Config {
	if schedSeed == 0 {
		return sched.Config{Threads: threads}
	}
	s := schedSeed + uint64(r)*0x9e3779b97f4a7c15
	if s == 0 {
		s = 1
	}
	return sched.Config{Seed: s, Threads: threads, Preemptions: schedPreempt}
}

// runWorkers executes body on cfg.Threads workers: free goroutines when the
// config is unseeded, the deterministic token-passing scheduler otherwise.
func runWorkers(cfg sched.Config, body func(id int)) {
	if cfg.Seed != 0 {
		sched.Exec(cfg, body)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(id)
		}(i)
	}
	wg.Wait()
}

// checkLin runs the configured engine over one linearize-mode history. When
// the Wing–Gong oracle exceeds its 64-operation budget the check degrades
// to the forward engine instead of giving up (-engine=both already does
// this internally; the explicit fallback covers -engine=search).
func checkLin(h []check.Operation) error {
	opts := v2.DefaultOptions()
	opts.Engine = engineSel
	opts.Partition = partitionSel
	err := v2.CheckHistory(h, opts)
	if err != nil && !v2.Rejected(err) && errors.Is(err, check.ErrTooLarge) {
		opts.Engine = v2.EngineForward
		err = v2.CheckHistory(h, opts)
	}
	return err
}

// reportCheck validates one linearize-mode history. A rejection prints the
// history in the replayable text format plus, for seeded runs, a minimized
// schedule that still reproduces it. An engine limitation (frontier or
// width cap, ambiguous classification) is a warning, not a failure: the
// history was not proven wrong, the checker just could not decide it.
func reportCheck(r int, what string, h []check.Operation, cfg sched.Config, record func(sched.Config) []check.Operation) bool {
	err := checkLin(h)
	if err == nil {
		return true
	}
	if !v2.Rejected(err) {
		fmt.Fprintf(os.Stderr, "simcheck: round %d: %s history not decided: %v\n", r, what, err)
		return true
	}
	fmt.Printf("round %d: non-linearizable %s history: %v\n", r, what, err)
	os.Stdout.Write(v2.FormatHistory(h))
	if cfg.Seed != 0 {
		min := sched.Minimize(cfg, func(c sched.Config) bool {
			return v2.Rejected(checkLin(record(c)))
		})
		fmt.Printf("replay: -mode linearize -rounds 1 -sched-seed=%d -sched-preempt=%d (minimized from %s)\n",
			min.Seed, min.Preemptions, cfg)
	}
	return false
}

// recordHistory runs a tiny concurrent history of produce/consume pairs.
func recordHistory(cfg sched.Config, per int, prodOp string, produce func(int, uint64), consOp string, consume func(int) (uint64, bool)) []check.Operation {
	rec := check.NewRecorder(2 * cfg.Threads * per)
	runWorkers(cfg, func(id int) {
		for k := 0; k < per; k++ {
			v := uint64(id*per+k) + 1
			slot := rec.Invoke(id, prodOp, v)
			produce(id, v)
			rec.Return(slot, 0, false)

			slot = rec.Invoke(id, consOp, 0)
			cv, ok := consume(id)
			rec.Return(slot, cv, ok)
		}
	})
	return rec.Operations()
}

// newSharded builds a sharded map wired to the flight recorder (every shard
// shares the one ring — multi-key calls touch shards sequentially, so the
// single-writer-per-lane discipline holds).
func newSharded(n, shards, stripes int) *simmap.Sharded[uint64, uint64] {
	m := simmap.NewSharded[uint64, uint64](n, shards, stripes)
	trs := make([]*trace.Tracer, m.Shards())
	for i := range trs {
		trs[i] = flight
	}
	m.SetTracer(trs)
	return m
}

// checkMap validates the sharded map. Stress mode: every thread owns a
// DISJOINT key range on one shared Sharded instance (shards and stripes stay
// contended even though keys are not) and hammers it with batched
// MSet/MDelete; because each key has a single writer, its final binding is
// deterministic and verified with MGet afterwards. Linearize mode: small
// adversarial histories on a 4-key space, each batched call recorded as
// per-key operations spanning the call's window, checked with the
// compositional v2 checker (per key by default; -partition=false routes the
// same history through the whole-map spec instead).
func checkMap(mode string, threads, ops, rounds, batch int) bool {
	if batch < 1 {
		batch = 1
	}
	switch mode {
	case "stress":
		const keysPerThread = 64
		m := newSharded(threads, 4, 4)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				base := uint64(id * keysPerThread)
				keys := make([]uint64, 0, batch)
				vals := make([]uint64, 0, batch)
				for k := 0; k < ops; k += batch {
					keys, vals = keys[:0], vals[:0]
					for j := 0; j < batch && k+j < ops; j++ {
						key := base + uint64((k+j)%keysPerThread)
						keys = append(keys, key)
						vals = append(vals, uint64(k+j)<<16|key)
					}
					m.MSet(id, keys, vals)
					if k%3 == 0 {
						m.MDelete(id, keys)
					}
				}
				// Deterministic final pass: bind every owned key, then
				// delete the multiples of three.
				keys, vals = keys[:0], vals[:0]
				for j := 0; j < keysPerThread; j++ {
					keys = append(keys, base+uint64(j))
					vals = append(vals, (base+uint64(j))^0xabcdef)
				}
				m.MSet(id, keys, vals)
				keys = keys[:0]
				for j := 0; j < keysPerThread; j++ {
					if key := base + uint64(j); key%3 == 0 {
						keys = append(keys, key)
					}
				}
				m.MDelete(id, keys)
			}(i)
		}
		wg.Wait()
		keys := make([]uint64, 0, keysPerThread)
		for id := 0; id < threads; id++ {
			keys = keys[:0]
			for j := 0; j < keysPerThread; j++ {
				keys = append(keys, uint64(id*keysPerThread+j))
			}
			vals, ok := m.MGet(0, keys)
			for j, key := range keys {
				wantOK := key%3 != 0
				if ok[j] != wantOK || (wantOK && vals[j] != key^0xabcdef) {
					fmt.Printf("key %d: got (%d,%v) want present=%v val=%d\n",
						key, vals[j], ok[j], wantOK, key^0xabcdef)
					return false
				}
			}
		}
		return true
	case "linearize":
		b := linBatch(batch)
		for r := 0; r < rounds; r++ {
			record := func(cfg sched.Config) []check.Operation {
				m := newSharded(3, 2, 1)
				rec := check.NewRecorder(2 * 3 * b)
				runWorkers(cfg, func(id int) {
					// Tiny deterministic PRNG so failures replay.
					seed := uint64(r*3+id)*2654435761 + 1
					next := func() uint64 {
						seed = seed*6364136223846793005 + 1442695040888963407
						return seed >> 33
					}
					keys := make([]uint64, b)
					vals := make([]uint64, b)
					slots := make([]int, b)
					// Call 1: a batched MSet on random keys of 0..3.
					for j := range keys {
						keys[j] = next() % 4
						vals[j] = next()%1000 + 1
					}
					for j := range keys {
						slots[j] = rec.Invoke(id, check.OpMapPut, keys[j]<<32|vals[j])
					}
					prevs, existed := m.MSet(id, keys, vals)
					for j := range slots {
						rec.Return(slots[j], prevs[j], existed[j])
					}
					// Call 2: a batched MGet or MDelete, alternating.
					for j := range keys {
						keys[j] = next() % 4
					}
					if (r+id)%2 == 0 {
						for j := range keys {
							slots[j] = rec.Invoke(id, check.OpMapGet, keys[j]<<32)
						}
						gv, gok := m.MGet(id, keys)
						for j := range slots {
							rec.Return(slots[j], gv[j], gok[j])
						}
					} else {
						for j := range keys {
							slots[j] = rec.Invoke(id, check.OpMapDel, keys[j]<<32)
						}
						prevs, existed := m.MDelete(id, keys)
						for j := range slots {
							rec.Return(slots[j], prevs[j], existed[j])
						}
					}
				})
				return rec.Operations()
			}
			cfg := roundCfg(r, 3)
			if !reportCheck(r, "map", record(cfg), cfg, record) {
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

// linBatch caps the linearize-mode batch. The Wing–Gong search needs each
// 3-process history inside its 64-operation budget; the forward engine has
// no history-length limit but tracks at most 64 simultaneously open
// operations, and three overlapping batched calls open 3×batch at once.
func linBatch(batch int) int {
	max := 21 // 3 overlapping calls stay within the 64 open-op slots
	if engineSel == v2.EngineSearch {
		max = 8
	}
	if batch > max {
		return max
	}
	return batch
}

// concurrentBatchPairs is concurrentPairs over vector entry points: each
// iteration produces a batch of unique tagged values and then consumes a
// batch, returning the multiset of consumed values.
func concurrentBatchPairs(threads, ops, batch int, b batched) map[uint64]int {
	var mu sync.Mutex
	got := make(map[uint64]int)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := map[uint64]int{}
			vals := make([]uint64, 0, batch)
			out := make([]uint64, 0, batch)
			for k := 0; k < ops; k += batch {
				vals = vals[:0]
				for j := 0; j < batch && k+j < ops; j++ {
					vals = append(vals, uint64(id*ops+k+j)+1)
				}
				b.produce(id, vals)
				out = b.consume(id, len(vals), out[:0])
				for _, v := range out {
					local[v]++
				}
			}
			mu.Lock()
			for v, c := range local {
				got[v] += c
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return got
}

// recordBatchHistory runs one produce-batch + consume-batch round per
// process and records every element as its own operation sharing the batch
// call's invoke/return window: a batched call guarantees each element a
// linearization point inside the call (in fact the whole vector applies at
// one point), so the per-element history must still linearize. Consume
// batches report hits first (at most one chunk is involved at these sizes,
// and within a chunk misses are a suffix).
func recordBatchHistory(cfg sched.Config, batch int, prodOp, consOp string, b batched) []check.Operation {
	rec := check.NewRecorder(2 * cfg.Threads * batch)
	runWorkers(cfg, func(id int) {
		vals := make([]uint64, batch)
		out := make([]uint64, 0, batch)
		slots := make([]int, batch)
		for j := range vals {
			vals[j] = uint64(id*batch+j) + 1
		}
		for j, v := range vals {
			slots[j] = rec.Invoke(id, prodOp, v)
		}
		b.produce(id, vals)
		for _, sl := range slots {
			rec.Return(sl, 0, false)
		}
		for j := range slots {
			slots[j] = rec.Invoke(id, consOp, 0)
		}
		out = b.consume(id, batch, out[:0])
		for j, sl := range slots {
			if j < len(out) {
				rec.Return(sl, out[j], true)
			} else {
				rec.Return(sl, 0, false)
			}
		}
	})
	return rec.Operations()
}
