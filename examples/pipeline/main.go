// Pipeline: producers → transformers → consumers over two wait-free
// SimQueues — the inter-thread communication pattern the paper's
// introduction motivates ("shared data structures, like stacks and queues,
// are the most widely used inter-thread communication structures").
//
// Because SimQueue is wait-free, a stalled producer can never wedge the
// transformers, and the enqueuer/dequeuer independence of the two-instance
// design means the hand-off queues never serialize their two ends.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	simuc "repro"
)

const (
	producers    = 3
	transformers = 3
	consumers    = 2
	itemsPerProd = 5_000
	totalItems   = producers * itemsPerProd
)

func main() {
	// Stage ids partition each queue's [0, n): producers and transformers
	// share q1; transformers and consumers share q2.
	q1 := simuc.NewQueue[uint64](producers+transformers, simuc.Config{})
	q2 := simuc.NewQueue[uint64](transformers+consumers, simuc.Config{})

	var transformed, consumed atomic.Uint64
	var checksumIn, checksumOut atomic.Uint64
	var wg sync.WaitGroup

	// Producers: ids [0, producers) on q1. Each item's transformed value is
	// added to checksumIn, so in==out at the end proves no loss and no
	// duplication through both hand-offs.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < itemsPerProd; k++ {
				v := uint64(id*itemsPerProd+k) + 1
				checksumIn.Add(v * 3)
				q1.Enqueue(id, v)
			}
		}(p)
	}

	// Transformers: dequeue from q1, triple, enqueue to q2. They exit when
	// all items have been claimed (transformed counts claims atomically).
	for t := 0; t < transformers; t++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			q1id, q2id := producers+idx, idx
			for {
				v, ok := q1.Dequeue(q1id)
				if !ok {
					if transformed.Load() >= totalItems {
						return
					}
					runtime.Gosched() // producers still filling q1
					continue
				}
				q2.Enqueue(q2id, v*3)
				transformed.Add(1)
			}
		}(t)
	}

	// Consumers: drain q2 until every item has been consumed.
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			id := transformers + idx
			for {
				v, ok := q2.Dequeue(id)
				if !ok {
					if consumed.Load() >= totalItems {
						return
					}
					runtime.Gosched()
					continue
				}
				checksumOut.Add(v)
				consumed.Add(1)
			}
		}(c)
	}

	wg.Wait()
	fmt.Printf("items: produced %d, transformed %d, consumed %d\n",
		totalItems, transformed.Load(), consumed.Load())
	fmt.Printf("checksum in %d, out %d, conserved=%v\n",
		checksumIn.Load(), checksumOut.Load(), checksumIn.Load() == checksumOut.Load())
	s := q1.Stats()
	fmt.Printf("stage-1 queue: %d ops, avg combining %.2f\n", s.Ops, s.AvgHelping)
}
