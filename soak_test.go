package simuc_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	simuc "repro"
)

// Soak tests: long mixed workloads that exercise state-record churn, GC
// pressure and scheduler interleavings at a scale the unit tests do not.
// Skipped under -short.

func TestSoakUniversalCounter(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n, per = 16, 20_000
	u := simuc.NewUniversal(n, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		prev := *st
		*st += d
		return prev
	}, nil, simuc.Config{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
				if k%1024 == 0 {
					runtime.Gosched()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("counter = %d, want %d", got, n*per)
	}
	s := u.Stats()
	if s.Ops != n*per || s.Combined != n*per {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestSoakStackMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n, per = 12, 10_000
	s := simuc.NewStack[uint64](n, simuc.Config{})
	var pushed, popped sync.Map
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id) + 1
			nPush, nPop := 0, 0
			for k := 0; k < per; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				if seed%2 == 0 {
					s.Push(id, uint64(id)<<32|uint64(k))
					nPush++
				} else if _, ok := s.Pop(id); ok {
					nPop++
				}
			}
			pushed.Store(id, nPush)
			popped.Store(id, nPop)
		}(i)
	}
	wg.Wait()
	totPush, totPop := 0, 0
	pushed.Range(func(_, v any) bool { totPush += v.(int); return true })
	popped.Range(func(_, v any) bool { totPop += v.(int); return true })
	if got := s.Len(); got != totPush-totPop {
		t.Fatalf("Len = %d, want pushes-pops = %d", got, totPush-totPop)
	}
}

func TestSoakQueueThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const producers, consumers, items = 6, 6, 60_000
	n := producers + consumers
	q := simuc.NewQueue[uint64](n, simuc.Config{})
	var wg sync.WaitGroup
	var sumIn, sumOut uint64
	var muIn, muOut sync.Mutex
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := uint64(0)
			for k := 0; k < items/producers; k++ {
				v := uint64(id*1_000_000+k) + 1
				q.Enqueue(id, v)
				local += v
			}
			muIn.Lock()
			sumIn += local
			muIn.Unlock()
		}(p)
	}
	var consumedCount atomic.Uint64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			id := producers + idx
			local := uint64(0)
			for {
				v, ok := q.Dequeue(id)
				if !ok {
					if consumedCount.Load() >= items {
						break
					}
					runtime.Gosched()
					continue
				}
				local += v
				consumedCount.Add(1)
			}
			muOut.Lock()
			sumOut += local
			muOut.Unlock()
		}(c)
	}
	wg.Wait()
	if sumIn != sumOut {
		t.Fatalf("checksum mismatch: in %d, out %d", sumIn, sumOut)
	}
}

func TestSoakMapChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n, per = 8, 15_000
	m := simuc.NewMap[uint64, uint64](n, 8)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9E3779B9 + 5
			for k := 0; k < per; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				key := seed % 1024
				switch seed % 4 {
				case 0:
					m.Delete(id, key)
				case 1:
					m.Get(key)
				default:
					m.Put(id, key, seed)
				}
			}
		}(i)
	}
	wg.Wait()
	// Post-condition: the map is internally consistent — every ranged key
	// Gets back to the same value, and Len matches Range's count.
	count := 0
	consistent := true
	m.Range(func(k, v uint64) bool {
		count++
		if got, ok := m.Get(k); !ok || got != v {
			consistent = false
			return false
		}
		return true
	})
	if !consistent {
		t.Fatal("Range and Get disagree at quiescence")
	}
	if count != m.Len() {
		t.Fatalf("Range saw %d entries, Len says %d", count, m.Len())
	}
}
