// Package obs is the wait-free observability plane of the reproduction: a
// metrics subsystem whose instrumentation cost does not perturb the wait-free
// hot paths it measures.
//
// The design transplants the paper's single-writer discipline — the same one
// that makes the Fetch&Add collect object of §3 cost one shared access — to
// metrics: every primitive (Counter, Histogram) gives each thread its own
// cache-line padded slot, and only thread i ever writes slot i. Updates are
// therefore a plain load + store of an uncontended line (no LOCK-prefixed
// RMW, no coherence traffic between writers), which is as cheap as shared
// instrumentation gets. Readers aggregate all slots with atomic loads; a
// snapshot is not a linearizable cut across threads (exactly like the Stats
// of any per-thread counter scheme), but every per-slot value read is exact
// and monotone.
//
// All write-side methods are nil-receiver safe and become no-ops on a nil
// primitive, so instrumented code can keep unconditional calls on its hot
// path and pay only a predictable not-taken branch when observability is
// disabled (BenchmarkObsOverhead quantifies this).
package obs

import "repro/internal/pad"

// Counter is a per-thread monotone counter: n single-writer slots, one per
// process id, each on its own cache line. Thread i must be the only writer
// of slot i (the same contract as core.PSim process ids).
type Counter struct {
	slots []pad.Uint64
}

// NewCounter returns a counter with n per-thread slots (n rounds up to 1).
func NewCounter(n int) *Counter {
	if n < 1 {
		n = 1
	}
	return &Counter{slots: make([]pad.Uint64, n)}
}

// Inc adds 1 to slot id. No-op on a nil counter.
func (c *Counter) Inc(id int) { c.Add(id, 1) }

// Add adds d to slot id. Single-writer: the load+store pair is not an atomic
// RMW, which is exactly why it is cheap — only thread id writes this slot, so
// nothing can interleave. Atomics are still used so concurrent readers see
// no torn values (Go memory model: no data race).
func (c *Counter) Add(id int, d uint64) {
	if c == nil {
		return
	}
	v := &c.slots[id].V
	v.Store(v.Load() + d)
}

// AddAtomic adds d to slot id with a real atomic RMW, for writers that have
// no stable process id (e.g. the memory plane's anonymous front, where any
// goroutine may touch any slot). Costs a LOCK-prefixed add; do not mix with
// Add on the same slot — the single-writer load+store would lose concurrent
// RMW updates. No-op on a nil counter.
func (c *Counter) AddAtomic(id int, d uint64) {
	if c == nil {
		return
	}
	c.slots[id].V.Add(d)
}

// Total sums all slots with atomic loads. Safe concurrently with writers;
// the result is monotone across calls but not a linearizable cut.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.slots {
		t += c.slots[i].V.Load()
	}
	return t
}

// Value returns slot id's current value.
func (c *Counter) Value(id int) uint64 {
	if c == nil {
		return 0
	}
	return c.slots[id].V.Load()
}

// Slots returns the number of per-thread slots.
func (c *Counter) Slots() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

// Reset zeroes every slot. Not safe concurrently with writers; intended for
// harness reuse between runs.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	for i := range c.slots {
		c.slots[i].V.Store(0)
	}
}

// Gauge is a single shared up/down value (e.g. open connections). Unlike
// Counter it has writers with no stable process id, so it uses one padded
// atomic word and real atomic adds — fine for control-plane rates (connection
// setup/teardown), not for per-operation hot paths.
type Gauge struct {
	v pad.Int64
}

// NewGauge returns a gauge at 0.
func NewGauge() *Gauge { return &Gauge{} }

// Add moves the gauge by d (negative to decrease). No-op on nil.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.V.Add(d)
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.V.Store(v)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.V.Load()
}
