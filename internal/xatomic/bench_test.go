package xatomic

import (
	"sync/atomic"
	"testing"
)

func BenchmarkFetchAdd64(b *testing.B) {
	var a atomic.Uint64
	for i := 0; i < b.N; i++ {
		FetchAdd64(&a, 1)
	}
}

func BenchmarkLLSCRoundTrip(b *testing.B) {
	l := NewLLSC(uint64(0))
	for i := 0; i < b.N; i++ {
		v, tag := l.LL()
		l.SC(tag, v+1)
	}
}

func BenchmarkTogglerToggle(b *testing.B) {
	bits := NewSharedBits(64)
	tg := NewToggler(bits, 7)
	for i := 0; i < b.N; i++ {
		tg.Toggle()
	}
}

func BenchmarkSharedBitsLoad(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(map[int]string{64: "1word", 512: "8words"}[n], func(b *testing.B) {
			bits := NewSharedBits(n)
			dst := NewSnapshot(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bits.LoadInto(dst)
			}
		})
	}
}

func BenchmarkSnapshotXorAndDrain(b *testing.B) {
	a, c, d := NewSnapshot(64), NewSnapshot(64), NewSnapshot(64)
	for i := 0; i < 64; i += 3 {
		a.SetBit(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.XorInto(c, d)
		for {
			k := d.BitSearchFirst()
			if k < 0 {
				break
			}
			d.ClearBit(k)
		}
	}
}

func BenchmarkTimedWordCAS(b *testing.B) {
	var w TimedWord
	for i := 0; i < b.N; i++ {
		raw := w.LoadRaw()
		idx, stamp := UnpackTimed(raw)
		w.CompareAndSwap(raw, idx+1, stamp+1)
	}
}
