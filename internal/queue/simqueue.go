package queue

import (
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xatomic"
)

// SimQueue is the paper's wait-free queue (§5, Algorithms 4–6). Two
// independent instances of the Sim machinery are used — one synchronizing
// enqueuers, one synchronizing dequeuers — so the two ends of the queue
// proceed in parallel (the source of SimQueue's advantage over flat
// combining in Figure 3).
//
// An enqueue combiner builds a PRIVATE linked list with one node per helped
// enqueuer, then publishes an EnqState carrying ⟨old tail, first node of the
// list, new tail⟩; the list is spliced onto the shared queue with a separate
// CAS on the old tail's next pointer (Algorithm 5 lines 18/34). Any
// subsequent enqueuer — and any dequeuer (Algorithm 6 lines 49–51) — helps
// perform that splice, so a crash between publishing EnqState and splicing
// cannot lose the batch.
//
// Like core.PSim, this implementation publishes immutable state records via
// CAS on an atomic pointer (GC-based reclamation) instead of the paper's
// pooled records with seq stamps; see DESIGN.md.
type SimQueue[V any] struct {
	n int

	enqAnnounce *collect.Announce[V]
	enqAct      *xatomic.SharedBits
	enqP        atomic.Pointer[enqState[V]]

	deqAct *xatomic.SharedBits
	deqP   atomic.Pointer[deqState[V]]

	enqThreads []sqThread
	deqThreads []sqThread
	enqStats   *core.StatsPlane
	deqStats   *core.StatsPlane

	rec *obs.SimRecorder // optional observability plane, shared by both ends

	boLower, boUpper int
}

// qnode is a queue node; next is written once with CAS when the node's
// batch is spliced onto the shared list.
type qnode[V any] struct {
	v    V
	next atomic.Pointer[qnode[V]]
}

// enqState is the enqueuers' State record (struct EnqState of Algorithm 4).
type enqState[V any] struct {
	applied xatomic.Snapshot
	oldTail *qnode[V] // tail of the queue when this batch was built
	lfirst  *qnode[V] // first node of this batch's private list (nil: none)
	newTail *qnode[V] // last node of this batch — the tail after splicing
}

// deqState is the dequeuers' State record (struct DeqState of Algorithm 4).
type deqState[V any] struct {
	applied xatomic.Snapshot
	head    *qnode[V] // node whose next pointer is the queue front
	rvals   []deqRes[V]
}

type deqRes[V any] struct {
	v  V
	ok bool
}

type sqThread struct {
	toggler *xatomic.Toggler
	bo      *backoff.Adaptive
	active  xatomic.Snapshot
	diffs   xatomic.Snapshot
	inited  bool
}

// NewSimQueue returns an empty wait-free queue shared by n processes.
func NewSimQueue[V any](n int) *SimQueue[V] {
	sentinel := &qnode[V]{}
	q := &SimQueue[V]{
		n:           n,
		enqAnnounce: collect.NewAnnounce[V](n),
		enqAct:      xatomic.NewSharedBits(n),
		deqAct:      xatomic.NewSharedBits(n),
		enqThreads:  make([]sqThread, n),
		deqThreads:  make([]sqThread, n),
		enqStats:    core.NewStatsPlane(n),
		deqStats:    core.NewStatsPlane(n),
		boLower:     1,
		boUpper:     core.DefaultBackoffUpper,
	}
	q.enqP.Store(&enqState[V]{
		applied: xatomic.NewSnapshot(n),
		newTail: sentinel,
	})
	q.deqP.Store(&deqState[V]{
		applied: xatomic.NewSnapshot(n),
		head:    sentinel,
		rvals:   make([]deqRes[V], n),
	})
	return q
}

// SetBackoff reconfigures the adaptive backoff bounds (upper 0 disables).
// Call before any operation.
func (q *SimQueue[V]) SetBackoff(lower, upper int) { q.boLower, q.boUpper = lower, upper }

// SetRecorder attaches a distribution recorder shared by the enqueue and
// dequeue instances (see core.PSim.SetRecorder). Call before any operation.
func (q *SimQueue[V]) SetRecorder(rec *obs.SimRecorder) { q.rec = rec }

// Instrument publishes the queue in reg under prefix: both ends' exact
// counters attach to the same metric names (the registry sums them, matching
// Stats) plus one shared SimRecorder for the latency and combining-degree
// histograms, which is attached and returned. Call before any operation.
func (q *SimQueue[V]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	q.enqStats.Register(reg, prefix)
	q.deqStats.Register(reg, prefix)
	rec := obs.NewSimRecorder(reg, prefix, q.n)
	q.SetRecorder(rec)
	return rec
}

func (q *SimQueue[V]) thread(ts []sqThread, act *xatomic.SharedBits, i int) *sqThread {
	t := &ts[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(act, i)
		t.bo = backoff.NewAdaptive(q.boLower, q.boUpper)
		if q.rec != nil {
			t.bo.Instrument(q.rec.Retries, i)
		}
		t.active = xatomic.NewSnapshot(q.n)
		t.diffs = xatomic.NewSnapshot(q.n)
		t.inited = true
	}
	return t
}

// splice links batch es onto the shared queue if not already done. Both
// enqueuers and dequeuers call it to help (lines 18, 34 and 49–51).
func splice[V any](es *enqState[V]) {
	if es.oldTail != nil && es.lfirst != nil {
		es.oldTail.next.CompareAndSwap(nil, es.lfirst)
	}
}

// Enqueue appends v on behalf of process id (Algorithm 5).
func (q *SimQueue[V]) Enqueue(id int, v V) {
	t := q.thread(q.enqThreads, q.enqAct, id)
	st := q.enqStats
	t0 := q.rec.Start(id)

	q.enqAnnounce.Write(id, &v) // line 1: announce
	t.toggler.Toggle()          // lines 2–3
	t.bo.Wait()                 // line 4

	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ {
		ls := q.enqP.Load() // lines 6–7
		q.enqAct.LoadInto(t.active)
		ls.applied.XorInto(t.active, t.diffs)
		if t.diffs[myWord]&myMask == 0 { // line 11: already applied
			st.Ops.Inc(id)
			st.ServedBy.Inc(id)
			q.rec.OpDone(id, t0)
			return
		}
		splice(ls) // line 18: help link the previous batch

		// lines 12–27: build the private list — own node first (lines
		// 13–17), then one node per remaining enqueuer in diffs.
		first := &qnode[V]{v: v}
		last := first
		t.diffs.ClearBit(id) // line 17: exclude self
		combined := uint64(1)
		for {
			k := t.diffs.BitSearchFirst() // line 20
			if k < 0 {
				break
			}
			nn := &qnode[V]{v: *q.enqAnnounce.Read(k)} // lines 21–24
			last.next.Store(nn)
			last = nn
			t.diffs.ClearBit(k)
			combined++
		}

		ns := &enqState[V]{ // lines 28–31
			applied: t.active.Clone(),
			oldTail: ls.newTail,
			lfirst:  first,
			newTail: last,
		}
		if q.enqP.CompareAndSwap(ls, ns) { // line 35
			splice(ns) // line 36: link our own batch
			st.Ops.Inc(id)
			st.CASSuccess.Inc(id)
			st.Combined.Add(id, combined)
			q.rec.OpPublished(id, t0, combined)
			if j == 0 {
				t.bo.Shrink()
			}
			return
		}
		st.CASFail.Inc(id)
		if j == 0 {
			t.bo.Grow()
			t.bo.Wait()
		}
	}
	// line 38: two failed CASes ⇒ a helper applied our enqueue.
	st.Ops.Inc(id)
	st.ServedBy.Inc(id)
	q.rec.OpDone(id, t0)
}

// Dequeue removes and returns the front value on behalf of process id
// (Algorithm 6); ok is false if the queue was empty.
func (q *SimQueue[V]) Dequeue(id int) (V, bool) {
	t := q.thread(q.deqThreads, q.deqAct, id)
	st := q.deqStats
	t0 := q.rec.Start(id)

	t.toggler.Toggle() // lines 39–40 (dequeue carries no argument)
	t.bo.Wait()        // line 41

	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ {
		ls := q.deqP.Load() // lines 43–44
		q.deqAct.LoadInto(t.active)
		ls.applied.XorInto(t.active, t.diffs)
		if t.diffs[myWord]&myMask == 0 { // line 48: already applied
			st.Ops.Inc(id)
			st.ServedBy.Inc(id)
			q.rec.OpDone(id, t0)
			r := ls.rvals[id]
			return r.v, r.ok
		}

		// lines 49–51: help enqueuers splice their latest batch, so every
		// completed enqueue is visible to the traversal below.
		splice(q.enqP.Load())

		head := ls.head
		rvals := append([]deqRes[V](nil), ls.rvals...)
		combined := uint64(0)
		for { // lines 53–61: serve every dequeuer in diffs
			k := t.diffs.BitSearchFirst()
			if k < 0 {
				break
			}
			if next := head.next.Load(); next != nil {
				rvals[k] = deqRes[V]{v: next.v, ok: true}
				head = next
			} else {
				rvals[k] = deqRes[V]{}
			}
			t.diffs.ClearBit(k)
			combined++
		}

		ns := &deqState[V]{applied: t.active.Clone(), head: head, rvals: rvals}
		if q.deqP.CompareAndSwap(ls, ns) { // line 67
			st.Ops.Inc(id)
			st.CASSuccess.Inc(id)
			st.Combined.Add(id, combined)
			q.rec.OpPublished(id, t0, combined)
			if j == 0 {
				t.bo.Shrink()
			}
			r := ns.rvals[id]
			return r.v, r.ok
		}
		st.CASFail.Inc(id)
		if j == 0 {
			t.bo.Grow()
			t.bo.Wait()
		}
	}
	// lines 70–72: a helper served us; read the published record.
	st.Ops.Inc(id)
	st.ServedBy.Inc(id)
	q.rec.OpDone(id, t0)
	ls := q.deqP.Load()
	r := ls.rvals[id]
	return r.v, r.ok
}

// Stats aggregates both instances' combining statistics into a core.Stats
// (enqueue and dequeue sides summed).
func (q *SimQueue[V]) Stats() core.Stats {
	return q.enqStats.Aggregate().Add(q.deqStats.Aggregate())
}

// Name implements Interface.
func (q *SimQueue[V]) Name() string { return "SimQueue" }
