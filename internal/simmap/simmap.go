// Package simmap is a wait-free hash map built from MULTIPLE instances of
// the Sim universal construction — the direction the paper sketches for
// data structures with internal parallelism (§1: "This limitation can
// possibly be overcome by using multiple instances of Sim (as done in our
// queue implementation)"). SimQueue uses two instances (one per end); simmap
// generalizes to S stripes, each an independent P-Sim simulating one
// bucket's immutable entry list. Operations on different stripes proceed in
// parallel; operations within a stripe combine.
//
// Gets do not announce at all: a stripe's state is an immutable list behind
// one atomic pointer, so reading that pointer is the linearization point —
// the structural analogue of the paper's observation that reads of the
// simulated state need no helping. Since core.PSim recycles its state
// records, the read costs a handful of atomic operations (claim an
// anonymous hazard slot, validate, release — see internal/core/recycle.go)
// rather than a bare load, but the entry NODES are immutable and never
// recycled, so a fetched list stays valid for as long as the caller holds
// it. Under recycling a Get is lock-free rather than wait-free: the hazard
// validation retries only when a concurrent mutation publishes, so it never
// waits on a lock holder, but its step count is not bounded.
package simmap

import (
	"hash/maphash"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
)

// entry is one immutable node of a stripe's entry list. Nodes are never
// mutated after publication; updates rebuild the prefix of the list up to
// the affected key.
type entry[K comparable, V any] struct {
	k    K
	v    V
	next *entry[K, V]
}

// mapOp is the announced mutation descriptor.
type mapOp[K comparable, V any] struct {
	del bool
	k   K
	v   V
}

// mapRes carries a mutation's response: the previous value, if any.
type mapRes[V any] struct {
	prev    V
	existed bool
}

// Map is a wait-free striped hash map for n processes. Each process id in
// [0, n) must be driven by one goroutine at a time.
type Map[K comparable, V any] struct {
	stripes []*core.PSim[*entry[K, V], mapOp[K, V], mapRes[V]]
	seed    maphash.Seed
	// per-process scratch for the multi-key operations: per-stripe op
	// buckets, position maps back to caller order, and the result slices
	// those operations return. Reused across calls, so the steady-state
	// batched path allocates nothing.
	scratch []mapScratch[K, V]
}

type mapScratch[K comparable, V any] struct {
	buckets [][]mapOp[K, V] // ops grouped by stripe, one bucket per stripe
	pos     [][]int         // pos[s][j] = caller index of buckets[s][j]
	res     []mapRes[V]     // ApplyBatch result scratch
	prevs   []V             // returned previous-value slice
	oks     []bool          // returned existed/found slice
	_       pad.CacheLinePad
}

// grouped splits keys (with optional parallel vals; del selects deletions)
// into per-stripe buckets and resizes the output slices to len(keys).
func (m *Map[K, V]) grouped(id int, keys []K, vals []V, del bool) *mapScratch[K, V] {
	sc := &m.scratch[id]
	if sc.buckets == nil {
		sc.buckets = make([][]mapOp[K, V], len(m.stripes))
		sc.pos = make([][]int, len(m.stripes))
	}
	for s := range sc.buckets {
		sc.buckets[s] = sc.buckets[s][:0]
		sc.pos[s] = sc.pos[s][:0]
	}
	for i, k := range keys {
		s := m.stripeIdx(k)
		op := mapOp[K, V]{del: del, k: k}
		if vals != nil {
			op.v = vals[i]
		}
		sc.buckets[s] = append(sc.buckets[s], op)
		sc.pos[s] = append(sc.pos[s], i)
	}
	sc.prevs = sc.prevs[:0]
	sc.oks = sc.oks[:0]
	var zero V
	for range keys {
		sc.prevs = append(sc.prevs, zero)
		sc.oks = append(sc.oks, false)
	}
	return sc
}

// mutateBatch runs one ApplyBatch per non-empty bucket and scatters the
// results back to caller order.
func (m *Map[K, V]) mutateBatch(id int, sc *mapScratch[K, V]) ([]V, []bool) {
	for s, ops := range sc.buckets {
		if len(ops) == 0 {
			continue
		}
		sc.res = m.stripes[s].ApplyBatch(id, ops, sc.res)
		for j, r := range sc.res {
			i := sc.pos[s][j]
			sc.prevs[i] = r.prev
			sc.oks[i] = r.existed
		}
	}
	return sc.prevs, sc.oks
}

// New returns a map with the given number of stripes (rounded up to 1).
// More stripes mean more inter-key parallelism and shorter chains; a stripe
// count near the expected concurrency level is a good default.
func New[K comparable, V any](n, stripes int) *Map[K, V] {
	if stripes < 1 {
		stripes = 1
	}
	m := &Map[K, V]{
		stripes: make([]*core.PSim[*entry[K, V], mapOp[K, V], mapRes[V]], stripes),
		seed:    maphash.MakeSeed(),
	}
	apply := func(head **entry[K, V], _ int, op mapOp[K, V]) mapRes[V] {
		if op.del {
			nh, prev, existed := removeKey(*head, op.k)
			*head = nh
			return mapRes[V]{prev: prev, existed: existed}
		}
		nh, prev, existed := putKey(*head, op.k, op.v)
		*head = nh
		return mapRes[V]{prev: prev, existed: existed}
	}
	for i := range m.stripes {
		m.stripes[i] = core.NewPSim[*entry[K, V], mapOp[K, V], mapRes[V]](n, nil, apply)
	}
	m.scratch = make([]mapScratch[K, V], n)
	return m
}

// putKey returns a new list with k bound to v, plus the previous binding.
// The prefix before k is copied; the suffix is shared (immutable).
func putKey[K comparable, V any](head *entry[K, V], k K, v V) (*entry[K, V], V, bool) {
	var prefix []*entry[K, V]
	for e := head; e != nil; e = e.next {
		if e.k == k {
			nh := &entry[K, V]{k: k, v: v, next: e.next}
			for i := len(prefix) - 1; i >= 0; i-- {
				nh = &entry[K, V]{k: prefix[i].k, v: prefix[i].v, next: nh}
			}
			return nh, e.v, true
		}
		prefix = append(prefix, e)
	}
	var zero V
	return &entry[K, V]{k: k, v: v, next: head}, zero, false
}

// removeKey returns a new list without k, plus the removed binding.
func removeKey[K comparable, V any](head *entry[K, V], k K) (*entry[K, V], V, bool) {
	var prefix []*entry[K, V]
	for e := head; e != nil; e = e.next {
		if e.k == k {
			nh := e.next
			for i := len(prefix) - 1; i >= 0; i-- {
				nh = &entry[K, V]{k: prefix[i].k, v: prefix[i].v, next: nh}
			}
			return nh, e.v, true
		}
		prefix = append(prefix, e)
	}
	var zero V
	return head, zero, false
}

func (m *Map[K, V]) stripeIdx(k K) int {
	h := maphash.Comparable(m.seed, k)
	return int(h % uint64(len(m.stripes)))
}

func (m *Map[K, V]) stripe(k K) *core.PSim[*entry[K, V], mapOp[K, V], mapRes[V]] {
	return m.stripes[m.stripeIdx(k)]
}

// Put binds k to v on behalf of process id and returns the previous binding.
func (m *Map[K, V]) Put(id int, k K, v V) (prev V, existed bool) {
	r := m.stripe(k).Apply(id, mapOp[K, V]{k: k, v: v})
	return r.prev, r.existed
}

// Delete removes k on behalf of process id and returns the removed binding.
func (m *Map[K, V]) Delete(id int, k K) (prev V, existed bool) {
	r := m.stripe(k).Apply(id, mapOp[K, V]{del: true, k: k})
	return r.prev, r.existed
}

// Get returns k's binding. It is linearizable WITHOUT announcing: the
// stripe state is immutable behind one atomic pointer, and the
// hazard-protected load of that pointer is the linearization point. It is
// lock-free under record recycling — a Get retries only when a concurrent
// Put/Delete on the same stripe publishes, never waiting on any thread
// (see the package comment).
func (m *Map[K, V]) Get(k K) (V, bool) {
	for e := m.stripe(k).Read(); e != nil; e = e.next {
		if e.k == k {
			return e.v, true
		}
	}
	var zero V
	return zero, false
}

// MSet binds keys[i] to vals[i] for every i on behalf of process id,
// returning the previous bindings aligned with keys. Keys are grouped by
// stripe and each stripe's group is applied as ONE batched operation
// (atomic within the stripe, in key order); groups on different stripes
// commit at different instants, so the whole MSet is per-key linearizable
// but not a single atomic multi-key write — the usual striped-map contract.
// If keys repeat, same-stripe repeats apply in key order. The returned
// slices are process-id-owned scratch, valid until id's next multi-key call.
func (m *Map[K, V]) MSet(id int, keys []K, vals []V) (prevs []V, existed []bool) {
	return m.mutateBatch(id, m.grouped(id, keys, vals, false))
}

// MDelete removes every key on behalf of process id, returning the removed
// bindings aligned with keys. Same grouping, atomicity, and scratch
// contract as MSet.
func (m *Map[K, V]) MDelete(id int, keys []K) (prevs []V, existed []bool) {
	return m.mutateBatch(id, m.grouped(id, keys, nil, true))
}

// MGet returns the bindings of all keys, aligned with keys. Each stripe's
// snapshot is fetched ONCE and answers all of that stripe's keys — keys
// sharing a stripe are read at a single linearization point; different
// stripes are read at different instants (same contract as MSet). The
// returned slices are process-id-owned scratch, valid until id's next
// multi-key call.
func (m *Map[K, V]) MGet(id int, keys []K) (vals []V, ok []bool) {
	sc := m.grouped(id, keys, nil, false)
	for s, ops := range sc.buckets {
		if len(ops) == 0 {
			continue
		}
		head := m.stripes[s].Read()
		for j, op := range ops {
			for e := head; e != nil; e = e.next {
				if e.k == op.k {
					i := sc.pos[s][j]
					sc.prevs[i] = e.v
					sc.oks[i] = true
					break
				}
			}
		}
	}
	return sc.prevs, sc.oks
}

// Len counts all entries. Each stripe is read atomically but stripes are
// read one after another, so the total is NOT a linearizable snapshot (like
// the size of any striped map under concurrent updates).
func (m *Map[K, V]) Len() int {
	total := 0
	for _, s := range m.stripes {
		for e := s.Read(); e != nil; e = e.next {
			total++
		}
	}
	return total
}

// Range calls f for every entry of a point-in-time per-stripe snapshot,
// stopping early if f returns false. Same consistency caveat as Len.
func (m *Map[K, V]) Range(f func(k K, v V) bool) {
	for _, s := range m.stripes {
		for e := s.Read(); e != nil; e = e.next {
			if !f(e.k, e.v) {
				return
			}
		}
	}
}

// Stripes returns the stripe count.
func (m *Map[K, V]) Stripes() int { return len(m.stripes) }

// Instrument publishes the map in reg under prefix: every stripe's exact
// counters attach to the same metric names (the registry sums them, matching
// Stats), and one SimRecorder — returned, e.g. to adjust its sampling rate —
// is shared by all stripes for the latency and combining-degree histograms.
// Sharing one recorder across stripes is safe: process id i is driven by one
// goroutine at a time, so slot i keeps a single writer no matter which stripe
// the operation lands on. Call before any mutation.
func (m *Map[K, V]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	if len(m.stripes) == 0 {
		return nil
	}
	rec := obs.NewSimRecorder(reg, prefix, m.stripes[0].N())
	for _, s := range m.stripes {
		s.RegisterStats(reg, prefix)
		s.SetRecorder(rec)
	}
	return rec
}

// SetTracer attaches one flight recorder to every stripe. Sharing a tracer
// across stripes is safe for the same reason sharing the recorder is:
// process id i is driven by one goroutine at a time, so ring i keeps a
// single writer no matter which stripe the operation lands on. Events from
// different stripes interleave on one per-pid track, which is exactly the
// thread's-eye view a flight recorder is for. Call before any mutation.
func (m *Map[K, V]) SetTracer(tr *trace.Tracer) {
	for _, s := range m.stripes {
		s.SetTracer(tr)
	}
}

// Stats aggregates combining statistics across all stripes.
func (m *Map[K, V]) Stats() core.Stats {
	var total core.Stats
	for _, s := range m.stripes {
		st := s.Stats()
		total.Ops += st.Ops
		total.CASSuccesses += st.CASSuccesses
		total.CASFailures += st.CASFailures
		total.Combined += st.Combined
		total.ServedByOther += st.ServedByOther
	}
	if total.CASSuccesses > 0 {
		total.AvgHelping = float64(total.Combined) / float64(total.CASSuccesses)
	}
	return total
}
