package collect

import (
	"sync"
	"testing"
)

// TestSimCollectD1MirrorsActSet: a 1-bit collect is exactly an active set;
// cross-validate the two implementations under the same update schedule.
func TestSimCollectD1MirrorsActSet(t *testing.T) {
	const n = 10
	col := NewSimCollect(n, 1)
	as := NewActSet(n)
	ups := make([]*Updater, n)
	mems := make([]*Member, n)
	for i := 0; i < n; i++ {
		ups[i] = col.Updater(i)
		mems[i] = as.Member(i)
	}
	schedule := [][2]int{{0, 1}, {3, 1}, {0, 0}, {7, 1}, {3, 0}, {9, 1}, {7, 0}, {7, 1}}
	for _, step := range schedule {
		i, v := step[0], step[1]
		ups[i].Update(uint64(v))
		if v == 1 {
			mems[i].Join()
		} else {
			mems[i].Leave()
		}
		vals := col.Collect()
		set := as.GetSet()
		for q := 0; q < n; q++ {
			if (vals[q] == 1) != set.Bit(q) {
				t.Fatalf("after step %v: collect %v disagrees with actset %v", step, vals, set)
			}
		}
	}
}

// TestUpdaterIndependentComponentsConcurrent: two updaters whose chunks
// share a word, updated concurrently at full speed — per-writer last values
// must be exact (the no-carry invariant under real interleavings).
func TestUpdaterIndependentComponentsConcurrent(t *testing.T) {
	const iters = 20_000
	c := NewSimCollect(2, 32) // both chunks in one word
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := c.Updater(w)
			for k := 1; k <= iters; k++ {
				u.Update(uint64(k))
			}
		}(w)
	}
	wg.Wait()
	vals := c.Collect()
	if vals[0] != iters || vals[1] != iters {
		t.Fatalf("final collect %v, want [%d %d]", vals, iters, iters)
	}
}

// TestAnnounceNilOverwrite: writing nil clears the register (the theoretical
// algorithm's ⊥), and Swap returns the displaced announcement.
func TestAnnounceNilOverwrite(t *testing.T) {
	a := NewAnnounce[int](2)
	v := 5
	a.Write(0, &v)
	a.Write(0, nil)
	if a.Read(0) != nil {
		t.Fatal("nil write did not clear the slot")
	}
	w := 6
	a.Write(0, &w)
	if prev := a.Swap(0, nil); prev == nil || *prev != 6 {
		t.Fatalf("Swap returned %v", prev)
	}
}

// TestSimCollectManyWriters: 64 single-writer components of 8 bits across 8
// words, all hammered concurrently.
func TestSimCollectManyWriters(t *testing.T) {
	const n, per = 64, 2_000
	c := NewSimCollect(n, 8)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			u := c.Updater(id)
			for k := 0; k < per; k++ {
				u.Update(uint64((id + k) % 256))
			}
		}(i)
	}
	wg.Wait()
	vals := c.Collect()
	for i := 0; i < n; i++ {
		want := uint64((i + per - 1) % 256)
		if vals[i] != want {
			t.Fatalf("component %d = %d, want %d", i, vals[i], want)
		}
	}
}
