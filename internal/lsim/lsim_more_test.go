package lsim

import (
	"sync"
	"testing"
)

// TestLSimConcurrentAllocStress: every operation allocates, under high
// contention — the shared new-variable list is the only way co-helpers can
// agree on fresh item identities, so duplicates or lost nodes here would
// mean the Alloc protocol (lines 21–27) broke.
func TestLSimConcurrentAllocStress(t *testing.T) {
	type lv struct {
		val  uint64
		next *Item[lv]
	}
	const n, per = 8, 120
	l := New[lv, uint64, uint64](n)
	head := l.NewRootItem(lv{})
	prepend := func(m *Mem[lv, uint64, uint64], arg uint64) uint64 {
		h := m.Read(head)
		node := m.Alloc()
		m.Write(node, lv{val: arg, next: h.next})
		m.Write(head, lv{next: node})
		return arg
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				l.ApplyOp(id, prepend, uint64(id*per+k)+1)
			}
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	count := 0
	for it := head.Current().next; it != nil; it = it.Current().next {
		v := it.Current().val
		if seen[v] {
			t.Fatalf("value %d duplicated in list", v)
		}
		seen[v] = true
		count++
	}
	if count != n*per {
		t.Fatalf("list has %d nodes, want %d", count, n*per)
	}
}

// TestLSimMixedReadersWriters: read-only ops interleaved with writers; every
// read response must be a value the counter actually passed through (a
// multiple of 3, since every add is 3).
func TestLSimMixedReadersWriters(t *testing.T) {
	const n, per = 6, 150
	l := New[uint64, uint64, uint64](n)
	ctr := l.NewRootItem(0)
	add := func(m *Mem[uint64, uint64, uint64], arg uint64) uint64 {
		v := m.Read(ctr)
		m.Write(ctr, v+arg)
		return v
	}
	read := func(m *Mem[uint64, uint64, uint64], _ uint64) uint64 {
		return m.Read(ctr)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if id%2 == 0 {
					l.ApplyOp(id, add, 3)
				} else {
					if got := l.ApplyOp(id, read, 0); got%3 != 0 {
						t.Errorf("read observed non-multiple-of-3: %d", got)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := ctr.Current(); got != 3*(n/2)*per {
		t.Fatalf("counter = %d, want %d", got, 3*(n/2)*per)
	}
}

// TestLSimTwoItemsSwap: an operation that swaps two items' values must be
// atomic: concurrent swappers always leave the pair a permutation of the
// initial values.
func TestLSimTwoItemsSwap(t *testing.T) {
	const n, per = 4, 200
	l := New[uint64, uint64, uint64](n)
	a := l.NewRootItem(1)
	b := l.NewRootItem(2)
	swap := func(m *Mem[uint64, uint64, uint64], _ uint64) uint64 {
		av, bv := m.Read(a), m.Read(b)
		m.Write(a, bv)
		m.Write(b, av)
		return av
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				l.ApplyOp(id, swap, 0)
			}
		}(i)
	}
	wg.Wait()
	av, bv := a.Current(), b.Current()
	if !(av == 1 && bv == 2 || av == 2 && bv == 1) {
		t.Fatalf("pair corrupted: a=%d b=%d", av, bv)
	}
	// n*per swaps total; parity determines the final arrangement.
	if (n*per)%2 == 0 && av != 1 {
		t.Fatalf("even number of swaps must restore the pair: a=%d b=%d", av, bv)
	}
}
