package spin

import (
	"runtime"
	"sync"
	"testing"
)

// exerciseMutex pounds a plain counter under the lock and checks mutual
// exclusion by the final count (any lost update means two holders
// overlapped).
func exerciseMutex(t *testing.T, lock func() (acquire, release func())) {
	const workers, per = 8, 2000
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acquire, release := lock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				acquire()
				counter++
				release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*per)
	}
}

func TestCLHMutualExclusion(t *testing.T) {
	l := NewCLH()
	exerciseMutex(t, func() (func(), func()) {
		h := l.NewHandle()
		return h.Lock, h.Unlock
	})
}

func TestMCSMutualExclusion(t *testing.T) {
	l := NewMCS()
	exerciseMutex(t, func() (func(), func()) {
		h := l.NewHandle()
		return h.Lock, h.Unlock
	})
}

func TestTTASMutualExclusion(t *testing.T) {
	var l TTAS
	exerciseMutex(t, func() (func(), func()) {
		return l.Lock, l.Unlock
	})
}

func TestCLHHandleReuse(t *testing.T) {
	l := NewCLH()
	h := l.NewHandle()
	for i := 0; i < 100; i++ {
		h.Lock()
		h.Unlock()
	}
}

func TestMCSHandleReuse(t *testing.T) {
	l := NewMCS()
	h := l.NewHandle()
	for i := 0; i < 100; i++ {
		h.Lock()
		h.Unlock()
	}
}

func TestTTASTryLock(t *testing.T) {
	var l TTAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !l.Locked() {
		t.Fatal("Locked() false while held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Locked() true after Unlock")
	}
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

// TestCLHFIFO: with goroutines enqueueing one after another (each waits for
// the previous to be IN the queue before enqueueing), admission follows
// enqueue order.
func TestCLHFIFO(t *testing.T) {
	l := NewCLH()
	const waiters = 6

	h0 := l.NewHandle()
	h0.Lock() // hold so the others queue up

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueued := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		h := l.NewHandle()
		go func(id int, h *CLHHandle) {
			defer wg.Done()
			// Serialize arrival: the CLH swap below fixes queue position.
			h.node.locked.V.Store(true)
			pred := l.tail.Swap(h.node)
			enqueued <- struct{}{}
			for pred.locked.V.Load() {
				runtime.Gosched()
			}
			h.pred = pred
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			h.Unlock()
		}(i, h)
		<-enqueued // next goroutine enqueues only after this one is queued
	}
	h0.Unlock()
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
}

// TestMCSUnlockWithRacingEnqueuer covers the MCS unlock path where the
// successor has swapped the tail but not yet linked itself.
func TestMCSUnlockWithRacingEnqueuer(t *testing.T) {
	l := NewMCS()
	for i := 0; i < 200; i++ {
		h1, h2 := l.NewHandle(), l.NewHandle()
		h1.Lock()
		done := make(chan struct{})
		go func() {
			h2.Lock()
			h2.Unlock()
			close(done)
		}()
		h1.Unlock()
		<-done
	}
}
