package stack

import "repro/internal/spin"

// CLHStack is the paper's lock-based stack baseline: a plain sequential
// linked stack protected by a CLH queue lock (§5: "a stack implementation
// based on CLH spin lock").
type CLHStack[V any] struct {
	lock    *spin.CLH
	handles []*spin.CLHHandle
	top     *node[V] // guarded by lock
}

// NewCLHStack returns an empty lock-based stack for n processes.
func NewCLHStack[V any](n int) *CLHStack[V] {
	s := &CLHStack[V]{lock: spin.NewCLH(), handles: make([]*spin.CLHHandle, n)}
	for i := range s.handles {
		s.handles[i] = s.lock.NewHandle()
	}
	return s
}

// Push pushes v under the lock.
func (s *CLHStack[V]) Push(id int, v V) {
	h := s.handles[id]
	h.Lock()
	s.top = &node[V]{v: v, next: s.top}
	h.Unlock()
}

// Pop pops under the lock; ok is false if empty.
func (s *CLHStack[V]) Pop(id int) (V, bool) {
	h := s.handles[id]
	h.Lock()
	t := s.top
	if t == nil {
		h.Unlock()
		var zero V
		return zero, false
	}
	s.top = t.next
	h.Unlock()
	return t.v, true
}

// Name implements Interface.
func (s *CLHStack[V]) Name() string { return "CLH-lock" }
