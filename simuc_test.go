package simuc_test

import (
	"sync"
	"testing"

	simuc "repro"
)

func TestFacadeUniversalCounter(t *testing.T) {
	u := simuc.NewUniversal(4, uint64(0), func(st *uint64, _ int, arg uint64) uint64 {
		prev := *st
		*st += arg
		return prev
	}, nil, simuc.Config{})
	const n, per = 4, 300
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("counter = %d, want %d", got, n*per)
	}
	if s := u.Stats(); s.Ops != n*per {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFacadeUniversalWithClone(t *testing.T) {
	u := simuc.NewUniversal(2, map[string]int{},
		func(st *map[string]int, _ int, key string) int {
			(*st)[key]++
			return (*st)[key]
		},
		func(m map[string]int) map[string]int {
			c := make(map[string]int, len(m))
			for k, v := range m {
				c[k] = v
			}
			return c
		}, simuc.Config{})
	if got := u.Apply(0, "a"); got != 1 {
		t.Fatalf("Apply = %d", got)
	}
	if got := u.Apply(1, "a"); got != 2 {
		t.Fatalf("Apply = %d", got)
	}
}

func TestFacadeConfigVariants(t *testing.T) {
	for _, cfg := range []simuc.Config{
		{},
		{BackoffHigh: -1},                   // disabled backoff
		{BackoffLow: 64, BackoffHigh: 1024}, // custom window
		{PaddedAct: true},                   // padded Act layout
		{BackoffLow: 8, BackoffHigh: 8},     // fixed window
		{BackoffLow: -5, BackoffHigh: 0},    // clamped defaults
	} {
		u := simuc.NewUniversal(2, uint64(0), func(st *uint64, _ int, a uint64) uint64 {
			*st += a
			return *st
		}, nil, cfg)
		u.Apply(0, 1)
		u.Apply(1, 1)
		if got := u.Read(); got != 2 {
			t.Fatalf("cfg %+v: state = %d", cfg, got)
		}
	}
}

func TestFacadeStack(t *testing.T) {
	s := simuc.NewStack[string](2, simuc.Config{})
	s.Push(0, "a")
	s.Push(1, "b")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.Pop(0); !ok || v != "b" {
		t.Fatalf("Pop = (%q,%v)", v, ok)
	}
	if v, ok := s.Pop(1); !ok || v != "a" {
		t.Fatalf("Pop = (%q,%v)", v, ok)
	}
	if _, ok := s.Pop(0); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if s.Stats().Ops != 5 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestFacadeQueue(t *testing.T) {
	q := simuc.NewQueue[int](2, simuc.Config{BackoffHigh: -1})
	q.Enqueue(0, 1)
	q.Enqueue(1, 2)
	if v, ok := q.Dequeue(0); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}
	if v, ok := q.Dequeue(1); !ok || v != 2 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("Dequeue on empty returned ok")
	}
	if q.Stats().Ops == 0 {
		t.Fatal("queue stats empty")
	}
}

func TestFacadeCollect(t *testing.T) {
	c := simuc.NewCollect(4, 8)
	u := c.Updater(2)
	u.Update(9)
	if got := c.Collect(); got[2] != 9 {
		t.Fatalf("Collect = %v", got)
	}
	if !c.Single() {
		t.Fatal("4×8 bits should fit one word")
	}
	if got := c.Snapshot(); got[2] != 9 {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestFacadeActiveSet(t *testing.T) {
	a := simuc.NewActiveSet(8)
	m := a.Member(5)
	m.Join()
	if !a.GetSet().Bit(5) {
		t.Fatal("join not visible")
	}
	m.Leave()
	if a.GetSet().Bit(5) {
		t.Fatal("leave not visible")
	}
}

func TestFacadeLargeObject(t *testing.T) {
	l := simuc.NewLargeObject[uint64, uint64, uint64](4)
	item := l.NewRootItem(0)
	add := func(m *simuc.Mem[uint64, uint64, uint64], arg uint64) uint64 {
		v := m.Read(item)
		m.Write(item, v+arg)
		return v
	}
	const n, per = 4, 150
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				l.ApplyOp(id, add, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := item.Current(); got != n*per {
		t.Fatalf("item = %d, want %d", got, n*per)
	}
}

// TestFacadeOpFuncAlias ensures the exported OpFunc alias is usable as a
// named operation type.
func TestFacadeOpFuncAlias(t *testing.T) {
	l := simuc.NewLargeObject[uint64, uint64, uint64](1)
	item := l.NewRootItem(10)
	var read simuc.OpFunc[uint64, uint64, uint64] = func(m *simuc.Mem[uint64, uint64, uint64], _ uint64) uint64 {
		return m.Read(item)
	}
	if got := l.ApplyOp(0, read, 0); got != 10 {
		t.Fatalf("read = %d", got)
	}
}

func TestFacadeSnapshot(t *testing.T) {
	s := simuc.NewSnapshot(4, 8, 8) // 4 components × 16 bits -> one word
	w := s.Writer(2)
	w.Update(42)
	if got := s.Scan(); got[2] != 42 || got[0] != 0 {
		t.Fatalf("Scan = %v", got)
	}
	if !s.Single() {
		t.Fatal("4 components x 16 bits should fit one word")
	}
}

func TestFacadeSnapshotConcurrent(t *testing.T) {
	const writers = 4
	s := simuc.NewSnapshot(writers, 16, 16)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := s.Writer(id)
			for k := 1; k <= 200; k++ {
				w.Update(uint64(k))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		prev := make([]uint64, writers)
		for i := 0; i < 500; i++ {
			vals := s.Scan()
			for w := 0; w < writers; w++ {
				if vals[w] < prev[w] {
					t.Errorf("component %d went backwards", w)
					return
				}
				prev[w] = vals[w]
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestFacadeSortedSet(t *testing.T) {
	s := simuc.NewSortedSet(2)
	if !s.Insert(0, 3) || !s.Insert(1, 1) || !s.Insert(0, 2) {
		t.Fatal("fresh inserts failed")
	}
	if s.Insert(1, 2) {
		t.Fatal("duplicate insert succeeded")
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	if !s.Remove(0, 2) || !s.Contains(1, 3) || s.Contains(0, 2) {
		t.Fatal("remove/contains semantics wrong")
	}
}
