package simuc_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	simuc "repro"
)

// Integration tests: cross-module scenarios exercising the public API the
// way a downstream application would — several objects interacting, mixed
// readers and writers, and end-to-end invariants.

// TestIntegrationWorkQueuePipeline wires a Queue, a Map and a Universal
// counter together: producers enqueue jobs, workers dequeue them, record
// results in the map, and bump a shared completion counter. Everything is
// wait-free, so the pipeline can be drained deterministically.
func TestIntegrationWorkQueuePipeline(t *testing.T) {
	const producers, workers, jobs = 3, 3, 1200
	n := producers + workers

	q := simuc.NewQueue[uint64](n, simuc.Config{})
	results := simuc.NewMap[uint64, uint64](workers, 4)
	done := simuc.NewUniversal(workers, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		*st += d
		return *st
	}, nil, simuc.Config{})

	var wg sync.WaitGroup
	perProd := jobs / producers
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < perProd; k++ {
				q.Enqueue(id, uint64(id*perProd+k)+1)
			}
		}(p)
	}
	var processed atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			qid := producers + idx
			for {
				job, ok := q.Dequeue(qid)
				if !ok {
					if processed.Load() >= jobs {
						return
					}
					runtime.Gosched()
					continue
				}
				results.Put(idx, job, job*job)
				done.Apply(idx, 1)
				processed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if got := done.Read(); got != jobs {
		t.Fatalf("completion counter = %d, want %d", got, jobs)
	}
	if results.Len() != jobs {
		t.Fatalf("results map has %d entries, want %d", results.Len(), jobs)
	}
	for j := uint64(1); j <= jobs; j++ {
		if v, ok := results.Get(j); !ok || v != j*j {
			t.Fatalf("job %d result = (%d,%v)", j, v, ok)
		}
	}
}

// TestIntegrationStackAsUndoLog drives a Universal ledger and a Stack of
// undo records in lock-step, then unwinds: after all undos the ledger must
// be back at its initial state.
func TestIntegrationStackAsUndoLog(t *testing.T) {
	const n, per = 4, 300
	type change struct {
		acct  int
		delta int64
	}
	ledger := simuc.NewUniversal(n, make([]int64, 8),
		func(st *[]int64, _ int, c change) int64 {
			(*st)[c.acct] += c.delta
			return (*st)[c.acct]
		},
		func(s []int64) []int64 { return append([]int64(nil), s...) },
		simuc.Config{})
	undo := simuc.NewStack[change](n, simuc.Config{})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*2654435761 + 3
			for k := 0; k < per; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				c := change{acct: int(seed % 8), delta: int64(seed%100) - 50}
				ledger.Apply(id, c)
				undo.Push(id, c)
			}
		}(i)
	}
	wg.Wait()

	// Unwind concurrently: apply the inverse of every logged change.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				c, ok := undo.Pop(id)
				if !ok {
					return
				}
				ledger.Apply(id, change{acct: c.acct, delta: -c.delta})
			}
		}(i)
	}
	wg.Wait()

	final := ledger.Read()
	for acct, bal := range final {
		if bal != 0 {
			t.Fatalf("account %d = %d after full unwind, want 0", acct, bal)
		}
	}
}

// TestIntegrationCollectCoordinatesPhases uses the ActiveSet and Collect
// objects as the coordination substrate they were designed to be: workers
// join, publish progress through the collect, and a coordinator watches
// until every worker reports completion.
func TestIntegrationCollectCoordinatesPhases(t *testing.T) {
	const workers, steps = 6, 100
	as := simuc.NewActiveSet(workers)
	col := simuc.NewCollect(workers, 8) // progress in [0,255]

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := as.Member(id)
			m.Join()
			u := col.Updater(id)
			for s := 1; s <= steps; s++ {
				u.Update(uint64(s * 255 / steps))
			}
			m.Leave()
		}(w)
	}

	// Coordinator: wait until the active set drains and progress is full.
	for {
		if as.GetSet().IsZero() {
			vals := col.Collect()
			doneAll := true
			for _, v := range vals {
				if v != 255 {
					doneAll = false
					break
				}
			}
			if doneAll {
				break
			}
		}
		runtime.Gosched()
	}
	wg.Wait()
}

// TestIntegrationLargeObjectCheckpoint pairs a LargeObject document store
// with a Queue of checkpoint requests: a checkpointer drains the queue and
// snapshots named cells, verifying L-Sim's per-item reads compose with the
// wait-free queue.
func TestIntegrationLargeObjectCheckpoint(t *testing.T) {
	const editors, edits = 4, 200
	n := editors + 1
	doc := simuc.NewLargeObject[uint64, [2]uint64, uint64](n)
	cells := make([]*simuc.Item[uint64], 64)
	for i := range cells {
		cells[i] = doc.NewRootItem(0)
	}
	edit := func(m *simuc.Mem[uint64, [2]uint64, uint64], a [2]uint64) uint64 {
		v := m.Read(cells[a[0]%64])
		m.Write(cells[a[0]%64], v+a[1])
		return v
	}
	ckq := simuc.NewQueue[uint64](n, simuc.Config{})

	var wg sync.WaitGroup
	var totalAdded atomic.Uint64
	for e := 0; e < editors; e++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id) + 17
			for k := 0; k < edits; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				add := seed%9 + 1
				doc.ApplyOp(id, edit, [2]uint64{seed, add})
				totalAdded.Add(add)
				if k%10 == 0 {
					ckq.Enqueue(id, seed%64)
				}
			}
		}(e)
	}
	// Checkpointer: read requested cells while edits continue (wait-free
	// reads via Item.Current never block editors).
	ckpts := 0
	go func() {
		for {
			if _, ok := ckq.Dequeue(editors); ok {
				ckpts++
			} else if ckpts >= editors*edits/10 {
				return
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()

	var sum uint64
	for _, c := range cells {
		sum += c.Current()
	}
	if sum != totalAdded.Load() {
		t.Fatalf("document sum %d, want %d", sum, totalAdded.Load())
	}
}
