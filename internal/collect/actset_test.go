package collect

import (
	"sync"
	"testing"
)

func TestActSetJoinLeave(t *testing.T) {
	a := NewActSet(8)
	m := a.Member(3)
	if m.Joined() {
		t.Fatal("fresh member reports joined")
	}
	m.Join()
	if !m.Joined() || !a.GetSet().Bit(3) {
		t.Fatal("join not visible")
	}
	m.Leave()
	if m.Joined() || a.GetSet().Bit(3) {
		t.Fatal("leave not visible")
	}
}

func TestActSetIdempotent(t *testing.T) {
	a := NewActSet(4)
	m := a.Member(1)
	m.Join()
	m.Join() // no double-add
	if got := a.GetSet(); !got.Bit(1) || got.PopCount() != 1 {
		t.Fatalf("set after double join: %v", got)
	}
	m.Leave()
	m.Leave() // no double-remove
	if got := a.GetSet(); !got.IsZero() {
		t.Fatalf("set after double leave: %v", got)
	}
}

func TestActSetMultiWord(t *testing.T) {
	a := NewActSet(130)
	if a.Words() != 3 {
		t.Fatalf("Words = %d, want 3", a.Words())
	}
	m0, m129 := a.Member(0), a.Member(129)
	m0.Join()
	m129.Join()
	s := a.GetSet()
	if !s.Bit(0) || !s.Bit(129) || s.PopCount() != 2 {
		t.Fatalf("set = %v", s)
	}
}

func TestActSetGetSetInto(t *testing.T) {
	a := NewActSet(8)
	a.Member(5).Join()
	dst := make([]uint64, a.Words())
	a.GetSetInto(dst)
	if dst[0] != 1<<5 {
		t.Fatalf("GetSetInto = %b", dst[0])
	}
}

// TestActSetConcurrentChurn: processes join/leave repeatedly; the final set
// must reflect each member's final state, and no observation may show a bit
// owned by a process that never joined.
func TestActSetConcurrentChurn(t *testing.T) {
	const n, rounds = 16, 400
	a := NewActSet(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := a.Member(id)
			for k := 0; k < rounds; k++ {
				m.Join()
				m.Leave()
			}
			if id%2 == 0 {
				m.Join() // evens end joined
			}
		}(i)
	}
	wg.Wait()
	s := a.GetSet()
	for i := 0; i < n; i++ {
		want := i%2 == 0
		if s.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, s.Bit(i), want)
		}
	}
}

func TestAnnounceBasics(t *testing.T) {
	a := NewAnnounce[int](4)
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Read(2) != nil {
		t.Fatal("fresh slot non-nil")
	}
	v := 42
	a.Write(2, &v)
	if got := a.Read(2); got == nil || *got != 42 {
		t.Fatalf("Read = %v", got)
	}
	w := 43
	if prev := a.Swap(2, &w); prev == nil || *prev != 42 {
		t.Fatalf("Swap prev = %v", prev)
	}
	if *a.Read(2) != 43 {
		t.Fatal("Swap did not install")
	}
}

// TestAnnounceHandoff: the announce array transfers a struct written before
// publication to a concurrent reader (the memory-ordering property P-Sim's
// helpers rely on).
func TestAnnounceHandoff(t *testing.T) {
	type payload struct{ a, b uint64 }
	an := NewAnnounce[payload](2)
	const rounds = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := uint64(1); k <= rounds; k++ {
			an.Write(0, &payload{a: k, b: k * 2})
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < rounds; k++ {
			if p := an.Read(0); p != nil && p.b != p.a*2 {
				t.Errorf("torn announce: %+v", *p)
				return
			}
		}
	}()
	wg.Wait()
}
