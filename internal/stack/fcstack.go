package stack

import "repro/internal/flatcombining"

// FCStack is the linked stack over flat combining used as the strongest
// baseline in Figure 3 (left): the combiner applies announced pushes and
// pops to a private sequential list while holding the global lock.
type FCStack[V any] struct {
	fc      *flatcombining.FC[stackOp[V], popResult[V]]
	handles []*flatcombining.Handle[stackOp[V], popResult[V]]
}

// NewFCStack returns an empty flat-combining stack for n processes with the
// given combining parameters (0,0 for defaults; the paper tuned these per
// machine).
func NewFCStack[V any](n, rounds, cleanupEvery int) *FCStack[V] {
	var top *node[V]
	apply := func(_ int, op stackOp[V]) popResult[V] {
		if op.push {
			top = &node[V]{v: op.v, next: top}
			return popResult[V]{}
		}
		if top == nil {
			return popResult[V]{ok: false}
		}
		r := popResult[V]{v: top.v, ok: true}
		top = top.next
		return r
	}
	s := &FCStack[V]{
		fc:      flatcombining.New(apply, rounds, cleanupEvery),
		handles: make([]*flatcombining.Handle[stackOp[V], popResult[V]], n),
	}
	for i := range s.handles {
		s.handles[i] = s.fc.NewHandle(i)
	}
	return s
}

// Push pushes v.
func (s *FCStack[V]) Push(id int, v V) {
	s.handles[id].Apply(stackOp[V]{push: true, v: v})
}

// Pop pops; ok is false if empty.
func (s *FCStack[V]) Pop(id int) (V, bool) {
	r := s.handles[id].Apply(stackOp[V]{})
	return r.v, r.ok
}

// Stats exposes the flat-combining statistics.
func (s *FCStack[V]) Stats() flatcombining.Stats { return s.fc.Stats() }

// Name implements Interface.
func (s *FCStack[V]) Name() string { return "FlatCombining" }
