// Edge-case tests for the batched entry points, written to run under the
// race detector: empty vectors, vectors larger than the combining budget
// (forcing the chunking paths), batched producers racing batched consumers,
// and multi-key reads spanning shards.
package simuc_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/simmap"
	"repro/internal/stack"
)

// TestBatchEmpty pins the degenerate vectors: every batched entry point
// must treat a zero-length batch as a no-op — no announce, no round, no
// state change.
func TestBatchEmpty(t *testing.T) {
	u := core.NewPSim(2, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	})
	if res := u.ApplyBatch(0, nil, nil); len(res) != 0 {
		t.Errorf("ApplyBatch(nil) returned %d results, want 0", len(res))
	}
	u.Apply(0, 7)
	if res := u.ApplyBatch(1, []uint64{}, nil); len(res) != 0 {
		t.Errorf("ApplyBatch(empty) returned %d results, want 0", len(res))
	}
	if got := u.Read(); got != 7 {
		t.Errorf("state after empty batches = %d, want 7", got)
	}

	w := core.NewPSimWord(2, 0, 1, func(st, f uint64) (uint64, uint64) { return st * f, st })
	if res := w.ApplyBatch(0, nil, nil); len(res) != 0 {
		t.Errorf("PSimWord.ApplyBatch(nil) returned %d results, want 0", len(res))
	}

	q := queue.NewSimQueue[uint64](2)
	q.EnqueueBatch(0, nil)
	if out := q.DequeueBatch(0, 0, nil); len(out) != 0 {
		t.Errorf("DequeueBatch(want=0) returned %d values, want 0", len(out))
	}
	if _, ok := q.Dequeue(0); ok {
		t.Error("queue non-empty after empty EnqueueBatch")
	}

	s := stack.NewSimStack[uint64](2)
	s.PushBatch(0, nil)
	if out := s.PopBatch(0, 0, nil); len(out) != 0 {
		t.Errorf("PopBatch(want=0) returned %d values, want 0", len(out))
	}
	if _, ok := s.Pop(0); ok {
		t.Error("stack non-empty after empty PushBatch")
	}

	m := simmap.NewSharded[uint64, uint64](2, 4, 2)
	if prevs, existed := m.MSet(0, nil, nil); len(prevs) != 0 || len(existed) != 0 {
		t.Error("MSet(empty) returned non-empty results")
	}
	if vals, ok := m.MGet(0, nil); len(vals) != 0 || len(ok) != 0 {
		t.Error("MGet(empty) returned non-empty results")
	}
	if prevs, existed := m.MDelete(0, nil); len(prevs) != 0 || len(existed) != 0 {
		t.Error("MDelete(empty) returned non-empty results")
	}
}

// TestBatchLargerThanBudget forces the chunking paths: vectors several
// times the combining budget must still apply exactly once each, in order,
// with results identical to sequential application.
func TestBatchLargerThanBudget(t *testing.T) {
	const budget, total = 4, 50
	u := core.NewPSim(2, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	}, core.WithBatchBudget[uint64](budget))
	args := make([]uint64, total)
	for i := range args {
		args[i] = 1
	}
	res := u.ApplyBatch(0, args, nil)
	if len(res) != total {
		t.Fatalf("ApplyBatch returned %d results, want %d", len(res), total)
	}
	for i, r := range res {
		if r != uint64(i) {
			t.Fatalf("res[%d] = %d, want %d (sequential fetch-add)", i, r, i)
		}
	}
	if got := u.Read(); got != total {
		t.Errorf("state = %d, want %d", got, total)
	}

	// PSimWord chunks at WordBatchBudget (8).
	w := core.NewPSimWord(2, 0, 0, func(st, f uint64) (uint64, uint64) { return st + f, st })
	wargs := make([]uint64, 3*core.WordBatchBudget+1)
	for i := range wargs {
		wargs[i] = 1
	}
	wres := w.ApplyBatch(1, wargs, nil)
	for i, r := range wres {
		if r != uint64(i) {
			t.Fatalf("PSimWord res[%d] = %d, want %d", i, r, i)
		}
	}

	// SimQueue chunks at its internal budget (64): a 150-element batch
	// enqueued single-threadedly must come back complete and in order.
	q := queue.NewSimQueue[uint64](2)
	vals := make([]uint64, 150)
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	q.EnqueueBatch(0, vals)
	out := q.DequeueBatch(1, len(vals), nil)
	if len(out) != len(vals) {
		t.Fatalf("DequeueBatch returned %d values, want %d", len(out), len(vals))
	}
	for i, v := range out {
		if v != vals[i] {
			t.Fatalf("out[%d] = %d, want %d (FIFO)", i, v, vals[i])
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Error("queue non-empty after full drain")
	}
}

// TestBatchEnqueueVsDequeue races batched producers against batched
// consumers and checks (a) conservation — every value surfaces exactly
// once — and (b) per-producer FIFO: the subsequence of one producer's
// values seen by one consumer must appear in production order, batches
// included.
func TestBatchEnqueueVsDequeue(t *testing.T) {
	const producers, consumers, perProducer, b = 2, 2, 600, 7
	q := queue.NewSimQueue[uint64](producers + consumers)

	var wg sync.WaitGroup
	seen := make([][]uint64, consumers)
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			vals := make([]uint64, 0, b)
			for k := 0; k < perProducer; k += b {
				vals = vals[:0]
				for j := 0; j < b && k+j < perProducer; j++ {
					vals = append(vals, uint64(p)<<32|uint64(k+j))
				}
				q.EnqueueBatch(p, vals)
			}
		}(i)
	}
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := producers + c
			got := make([]uint64, 0, perProducer)
			out := make([]uint64, 0, b)
			misses := 0
			for len(got) < producers*perProducer && misses < 1_000_000 {
				out = q.DequeueBatch(id, b, out[:0])
				if len(out) == 0 {
					misses++
					continue
				}
				got = append(got, out...)
			}
			seen[c] = got
		}(i)
	}
	wg.Wait()

	counts := make(map[uint64]int)
	for c, got := range seen {
		last := make([]int64, producers)
		for i := range last {
			last[i] = -1
		}
		for _, v := range got {
			counts[v]++
			p, seq := int(v>>32), int64(v&0xffffffff)
			if seq <= last[p] {
				t.Fatalf("consumer %d saw producer %d seq %d after %d (FIFO violation)", c, p, seq, last[p])
			}
			last[p] = seq
		}
	}
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		counts[v]++
	}
	if len(counts) != producers*perProducer {
		t.Fatalf("conservation: %d distinct values, want %d", len(counts), producers*perProducer)
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("value %#x dequeued %d times", v, c)
		}
	}
}

// TestBatchCrossShardMGet checks the consistency a sharded multi-get DOES
// promise: each key individually reads a value that was current at some
// point during the call. Writers publish strictly increasing values per
// key (keys spread across all shards); a reader's repeated MGets must then
// observe per-key non-decreasing values — a torn read or a stale shard
// snapshot surfacing an older value after a newer one fails here.
func TestBatchCrossShardMGet(t *testing.T) {
	const writers, keysPerWriter, rounds = 3, 8, 400
	m := simmap.NewSharded[uint64, uint64](writers+1, 4, 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]uint64, keysPerWriter)
			vals := make([]uint64, keysPerWriter)
			for j := range keys {
				keys[j] = uint64(w*keysPerWriter + j)
			}
			for v := uint64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range vals {
					vals[j] = v
				}
				m.MSet(w, keys, vals)
			}
		}(i)
	}

	allKeys := make([]uint64, writers*keysPerWriter)
	for i := range allKeys {
		allKeys[i] = uint64(i)
	}
	high := make([]uint64, len(allKeys))
	for r := 0; r < rounds; r++ {
		vals, ok := m.MGet(writers, allKeys)
		for j := range allKeys {
			if !ok[j] {
				continue // not yet written
			}
			if vals[j] < high[j] {
				t.Fatalf("key %d went backwards: saw %d after %d", allKeys[j], vals[j], high[j])
			}
			high[j] = vals[j]
		}
	}
	close(stop)
	wg.Wait()
}
