package core

import (
	"sync"
	"testing"

	"repro/internal/xatomic"
)

// The paper's robustness claim (§1): flat combining is blocking — "a thread
// holding the lock could be preempted causing all other threads to wait or
// it may fail causing the entire system to block" — whereas Sim is
// wait-free: a crashed thread can never prevent others from completing, and
// an operation the crashed thread had already announced is still applied by
// helpers. These tests simulate the crash by driving the announcement steps
// of the protocol directly and never calling the rest of Apply.

// TestPSimCrashedAnnouncerDoesNotBlock: process 0 announces an operation
// (announce write + Act toggle) and "crashes". Every other process must
// still complete all its operations, and the crashed process's operation
// must be applied exactly once by a helper.
func TestPSimCrashedAnnouncerDoesNotBlock(t *testing.T) {
	const n, per = 4, 200
	u := faaPSim(n)

	// Simulate process 0 crashing right after the announcement steps
	// (Algorithm 3 lines 1-3).
	arg := uint64(1_000_000)
	u.announce.PublishOne(0, arg)
	xatomic.NewToggler(u.act, 0).Toggle()

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()

	// All live processes completed (we got here: wait-freedom held), and the
	// crashed announcement was helped exactly once.
	want := uint64((n-1)*per) + arg
	if got := u.Read(); got != want {
		t.Fatalf("state = %d, want %d (crashed op applied exactly once)", got, want)
	}
	// The response for the crashed process is recorded in the state.
	st := u.state.Load()
	if st.rvals[0] >= uint64((n-1)*per)+1 {
		t.Fatalf("crashed op's recorded response %d impossible", st.rvals[0])
	}
}

// TestPSimWordCrashedAnnouncerDoesNotBlock: same property for the pooled
// variant.
func TestPSimWordCrashedAnnouncerDoesNotBlock(t *testing.T) {
	const n, per = 4, 200
	u := faaWord(n, 4)

	u.announce[0].args[0].Store(777)
	u.announce[0].cnt.Store(1)
	xatomic.NewToggler(u.act, 0).Toggle()

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != (n-1)*per+777 {
		t.Fatalf("state = %d, want %d", got, (n-1)*per+777)
	}
}

// TestSimCrashedAnnouncerDoesNotBlock: the theoretical construction applies
// a crashed process's announced opcode and keeps running. (The announcement
// is never withdrawn, so helpers apply it once — applied[i] stays true — and
// continue unaffected.)
func TestSimCrashedAnnouncerDoesNotBlock(t *testing.T) {
	const n, per = 3, 150
	u := faaSim(n, 8)

	// Crash after line 1 of ApplyOp: the collect announcement is written but
	// Attempt is never called.
	u.updater(0).Update(200)

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.ApplyOp(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != (n-1)*per+200 {
		t.Fatalf("state = %d, want %d", got, (n-1)*per+200)
	}
}
