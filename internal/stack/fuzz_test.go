package stack

import "testing"

// FuzzStackEquivalence drives every stack implementation with a fuzzed op
// string and cross-checks it against the reference model. Run with
// `go test -fuzz FuzzStackEquivalence ./internal/stack` for coverage-guided
// exploration; under plain `go test` the seed corpus runs as a unit test.
func FuzzStackEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 1, 1})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		impls := all(1)
		refs := make([][]uint64, len(impls))
		for step, o := range ops {
			if o%2 == 0 {
				v := uint64(step) + 1
				for i, s := range impls {
					s.Push(0, v)
					refs[i] = append(refs[i], v)
				}
			} else {
				for i, s := range impls {
					v, ok := s.Pop(0)
					if len(refs[i]) == 0 {
						if ok {
							t.Fatalf("%s: pop on empty returned %d", s.Name(), v)
						}
						continue
					}
					want := refs[i][len(refs[i])-1]
					refs[i] = refs[i][:len(refs[i])-1]
					if !ok || v != want {
						t.Fatalf("%s: pop = (%d,%v), want (%d,true)", s.Name(), v, ok, want)
					}
				}
			}
		}
	})
}
