package v2

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/check"
)

// Engine selects which checker decides each partition.
type Engine int

const (
	// EngineForward uses the single-pass checkers: ForwardQueue for queue
	// partitions, Simulate for everything else. Scales to arbitrarily long
	// histories.
	EngineForward Engine = iota
	// EngineSearch uses the 64-operation Wing–Gong search from
	// internal/check. Partitions longer than 64 ops return ErrTooLarge.
	EngineSearch
	// EngineBoth runs both and cross-validates: a verdict disagreement is
	// reported as ErrDisagree (a checker bug, not a history property).
	// Partitions beyond the search's reach are decided by the forward
	// engine alone.
	EngineBoth
)

func (e Engine) String() string {
	switch e {
	case EngineForward:
		return "forward"
	case EngineSearch:
		return "search"
	case EngineBoth:
		return "both"
	}
	return "?"
}

// ParseEngine maps the simcheck -engine flag values onto Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "forward":
		return EngineForward, nil
	case "search":
		return EngineSearch, nil
	case "both":
		return EngineBoth, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want forward, search or both)", s)
}

// ErrDisagree means the forward and search engines returned different
// verdicts for the same partition — a bug in one of the checkers.
var ErrDisagree = errors.New("check engines disagree")

// ErrAmbiguous means the history mixes operations the driver cannot
// classify into one object class (e.g. bare reads next to both add and mul).
var ErrAmbiguous = errors.New("compose: ambiguous history")

// Options configures CheckHistory.
type Options struct {
	Engine Engine
	// Partition splits map and set histories per key before checking.
	// Sound and complete by the locality property of linearizability
	// (Herlihy & Wing): with every operation touching one key, the history
	// is linearizable iff each per-key projection is. Disabling it checks
	// the same history against the whole-object spec in a single frontier —
	// slower, and liable to hit ErrFrontierLimit under cross-key overlap,
	// but an independent cross-check of the partitioning machinery. (Note
	// multi-key batches are recorded as per-key operations sharing a call
	// window, so neither mode asserts batch-snapshot atomicity; that
	// matches the contract of the sharded map, which promises per-key
	// linearizability only.)
	Partition bool
	// Initial values for the value-object specs.
	CounterInit, FMulInit, RegisterInit uint64
	// MaxFrontier caps the forward engine's frontier (0 = DefaultMaxFrontier).
	MaxFrontier int
}

// DefaultOptions: forward engine with per-key partitioning.
func DefaultOptions() Options {
	return Options{Engine: EngineForward, Partition: true, FMulInit: 1}
}

// Check verifies a mixed history with the default options.
func Check(ops []check.Operation) error { return CheckHistory(ops, DefaultOptions()) }

// object classes recognised by the driver.
const (
	classQueue    = "queue"
	classStack    = "stack"
	classCounter  = "counter"
	classFMul     = "fmul"
	classRegister = "register"
	classSet      = "set"
	classMap      = "map"
	classBlob     = "blobmap"
	classLog      = "log"
)

// CheckHistory splits ops into independent object classes (queue, stack,
// counter, fmul, register, set, map, log — the classes never share state, so
// their sub-histories are checked independently), partitions map and set
// classes per key when opts.Partition is set, and routes every partition to
// the engine chosen by opts.Engine. nil means linearizable; ErrRejected
// (test with Rejected) means proven non-linearizable; other errors are
// engine limitations or malformed input.
func CheckHistory(ops []check.Operation, opts Options) error {
	classes, err := classify(ops)
	if err != nil {
		return err
	}
	// Deterministic class order for reproducible error messages.
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		if err := checkClass(c, classes[c], opts); err != nil {
			return fmt.Errorf("%s history: %w", c, err)
		}
	}
	return nil
}

// classify buckets operations by object class. Bare reads are attributed to
// whichever of counter/fmul/register also appears; reads with no writer
// class (or more than one) go to a register unless that is ambiguous.
func classify(ops []check.Operation) (map[string][]check.Operation, error) {
	classes := make(map[string][]check.Operation)
	var reads []check.Operation
	for _, o := range ops {
		switch o.Op {
		case check.OpEnqueue, check.OpDequeue:
			classes[classQueue] = append(classes[classQueue], o)
		case check.OpPush, check.OpPop:
			classes[classStack] = append(classes[classStack], o)
		case check.OpAdd:
			classes[classCounter] = append(classes[classCounter], o)
		case check.OpMul:
			classes[classFMul] = append(classes[classFMul], o)
		case check.OpWrite:
			classes[classRegister] = append(classes[classRegister], o)
		case check.OpRead:
			reads = append(reads, o)
		case check.OpInsert, check.OpRemove, check.OpContains:
			classes[classSet] = append(classes[classSet], o)
		case check.OpMapPut, check.OpMapDel, check.OpMapGet:
			classes[classMap] = append(classes[classMap], o)
		case check.OpBlobPut, check.OpBlobDel, check.OpBlobGet:
			classes[classBlob] = append(classes[classBlob], o)
		case check.OpLogAppend, check.OpLogRead, check.OpLogTrim:
			classes[classLog] = append(classes[classLog], o)
		default:
			return nil, fmt.Errorf("compose: unknown operation %q in %v", o.Op, o)
		}
	}
	if len(reads) > 0 {
		var owners []string
		for _, c := range []string{classCounter, classFMul, classRegister} {
			if len(classes[c]) > 0 {
				owners = append(owners, c)
			}
		}
		switch len(owners) {
		case 0:
			classes[classRegister] = reads
		case 1:
			classes[owners[0]] = append(classes[owners[0]], reads...)
		default:
			return nil, fmt.Errorf("%w: bare reads alongside several value objects (%s)",
				ErrAmbiguous, strings.Join(owners, ", "))
		}
	}
	return classes, nil
}

func checkClass(class string, ops []check.Operation, opts Options) error {
	var sim []SimOption
	if opts.MaxFrontier > 0 {
		sim = append(sim, WithMaxFrontier(opts.MaxFrontier))
	}

	// run dispatches one partition to the selected engine(s).
	run := func(ops []check.Operation, spec check.Spec) error {
		forward := func() error { return Simulate(ops, spec, sim...) }
		if class == classQueue {
			forward = func() error {
				err := ForwardQueue(ops)
				if errors.Is(err, ErrNotDifferentiated) {
					// Duplicate values defeat the axiom checker; the
					// frontier engine decides (it needs no uniqueness).
					return Simulate(ops, spec, sim...)
				}
				return err
			}
		}
		search := func() error {
			ok, err := check.Linearizable(ops, spec)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("%w (search engine)", ErrRejected)
			}
			return nil
		}
		switch opts.Engine {
		case EngineForward:
			return forward()
		case EngineSearch:
			return search()
		case EngineBoth:
			ferr := forward()
			if ferr != nil && !Rejected(ferr) {
				return ferr // forward engine could not decide
			}
			serr := search()
			if errors.Is(serr, check.ErrTooLarge) {
				return ferr // beyond the search's reach: forward alone decides
			}
			if serr != nil && !Rejected(serr) {
				return serr
			}
			if Rejected(ferr) != Rejected(serr) {
				return fmt.Errorf("%w: forward says %v, search says %v", ErrDisagree, verdict(ferr), verdict(serr))
			}
			return ferr
		}
		return fmt.Errorf("compose: unknown engine %d", opts.Engine)
	}

	switch class {
	case classQueue:
		return run(ops, check.QueueSpec())
	case classStack:
		return run(ops, check.StackSpec())
	case classCounter:
		return run(ops, check.CounterSpec(opts.CounterInit))
	case classFMul:
		init := opts.FMulInit
		if init == 0 {
			init = 1
		}
		return run(ops, check.FMulSpec(init))
	case classRegister:
		return run(ops, check.RegisterSpec(opts.RegisterInit))
	case classSet:
		if !opts.Partition {
			return run(ops, check.SetSpec())
		}
		return eachPartition(ops, func(o check.Operation) uint64 { return o.Arg },
			func(part []check.Operation) error { return run(part, SetKeySpec()) })
	case classMap:
		if !opts.Partition {
			return run(ops, MapSpec())
		}
		return eachPartition(ops, func(o check.Operation) uint64 { return o.Arg >> 32 },
			func(part []check.Operation) error { return run(part, check.MapKeySpec()) })
	case classBlob:
		if !opts.Partition {
			return run(ops, BlobMapSpec())
		}
		return eachPartition(ops, func(o check.Operation) uint64 { return o.Arg >> 32 },
			func(part []check.Operation) error { return run(part, check.BlobKeySpec()) })
	case classLog:
		// One global offset space: the log is never partitioned.
		return run(ops, check.LogSpec())
	}
	return fmt.Errorf("compose: unknown class %q", class)
}

// eachPartition splits ops by key and checks every partition, visiting keys
// in sorted order so failures are deterministic.
func eachPartition(ops []check.Operation, keyOf func(check.Operation) uint64, checkPart func([]check.Operation) error) error {
	parts := make(map[uint64][]check.Operation)
	for _, o := range ops {
		k := keyOf(o)
		parts[k] = append(parts[k], o)
	}
	keys := make([]uint64, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := checkPart(parts[k]); err != nil {
			return fmt.Errorf("key %d: %w", k, err)
		}
	}
	return nil
}

func verdict(err error) string {
	if err == nil {
		return "linearizable"
	}
	return "NOT linearizable"
}

// SetKeySpec is the sequential specification of ONE set key: a boolean
// present/absent cell. The per-key projection of SetSpec, for use with
// partitioned checking (sound because set operations on distinct keys
// commute).
func SetKeySpec() check.Spec {
	return check.Spec{
		Init: func() any { return false },
		Step: func(state any, op check.Operation) (any, bool) {
			present := state.(bool)
			switch op.Op {
			case check.OpContains:
				return present, op.RetOK == present
			case check.OpInsert:
				if present {
					return present, !op.RetOK
				}
				return op.RetOK, op.RetOK
			case check.OpRemove:
				if !present {
					return present, !op.RetOK
				}
				return !op.RetOK, op.RetOK
			}
			return present, false
		},
		Key: func(state any) string {
			if state.(bool) {
				return "1"
			}
			return "0"
		},
	}
}

// BlobMapSpec is the WHOLE-map sequential specification of the blob-map
// class (all keys in one state), the -partition=false cross-check of
// BlobKeySpec — same relationship MapSpec has to MapKeySpec. Put and del
// validate existence only; get validates the stored token (see
// check.BlobKeySpec).
func BlobMapSpec() check.Spec {
	return check.Spec{
		Init: func() any { return &mapState{} },
		Step: func(state any, op check.Operation) (any, bool) {
			st := state.(*mapState)
			key := op.Arg >> 32
			idx := sort.Search(len(st.keys), func(i int) bool { return st.keys[i] >= key })
			exists := idx < len(st.keys) && st.keys[idx] == key
			var cur uint64
			if exists {
				cur = st.vals[idx]
			}
			switch op.Op {
			case check.OpBlobGet:
				return st, op.RetOK == exists && (!exists || op.Ret == cur)
			case check.OpBlobPut:
				if op.RetOK != exists {
					return st, false
				}
				ns := &mapState{
					keys: append([]uint64(nil), st.keys...),
					vals: append([]uint64(nil), st.vals...),
				}
				if exists {
					ns.vals[idx] = op.Arg & 0xffffffff
				} else {
					ns.keys = append(ns.keys[:idx], append([]uint64{key}, ns.keys[idx:]...)...)
					ns.vals = append(ns.vals[:idx], append([]uint64{op.Arg & 0xffffffff}, ns.vals[idx:]...)...)
				}
				return ns, true
			case check.OpBlobDel:
				if op.RetOK != exists {
					return st, false
				}
				if !exists {
					return st, true
				}
				ns := &mapState{
					keys: append(append([]uint64(nil), st.keys[:idx]...), st.keys[idx+1:]...),
					vals: append(append([]uint64(nil), st.vals[:idx]...), st.vals[idx+1:]...),
				}
				return ns, true
			}
			return st, false
		},
		Key: func(state any) string {
			st := state.(*mapState)
			var b strings.Builder
			for i, k := range st.keys {
				fmt.Fprintf(&b, "%d=%d,", k, st.vals[i])
			}
			return b.String()
		},
	}
}

// mapState is an immutable sorted association list for MapSpec.
type mapState struct {
	keys, vals []uint64
}

// MapSpec is the WHOLE-map sequential specification (all keys in one
// state). Since every map operation touches a single key, checking against
// MapSpec is equivalent to per-key checking with MapKeySpec (locality), but
// the two take entirely different code paths, so -partition=false serves as
// a cross-validation mode; it is also much slower under cross-key overlap.
func MapSpec() check.Spec {
	return check.Spec{
		Init: func() any { return &mapState{} },
		Step: func(state any, op check.Operation) (any, bool) {
			st := state.(*mapState)
			key := op.Arg >> 32
			idx := sort.Search(len(st.keys), func(i int) bool { return st.keys[i] >= key })
			exists := idx < len(st.keys) && st.keys[idx] == key
			var cur uint64
			if exists {
				cur = st.vals[idx]
			}
			prevOK := op.RetOK == exists && (!exists || op.Ret == cur)
			switch op.Op {
			case check.OpMapGet:
				return st, prevOK
			case check.OpMapPut:
				if !prevOK {
					return st, false
				}
				ns := &mapState{
					keys: append([]uint64(nil), st.keys...),
					vals: append([]uint64(nil), st.vals...),
				}
				if exists {
					ns.vals[idx] = op.Arg & 0xffffffff
				} else {
					ns.keys = append(ns.keys[:idx], append([]uint64{key}, ns.keys[idx:]...)...)
					ns.vals = append(ns.vals[:idx], append([]uint64{op.Arg & 0xffffffff}, ns.vals[idx:]...)...)
				}
				return ns, true
			case check.OpMapDel:
				if !prevOK {
					return st, false
				}
				if !exists {
					return st, true
				}
				ns := &mapState{
					keys: append(append([]uint64(nil), st.keys[:idx]...), st.keys[idx+1:]...),
					vals: append(append([]uint64(nil), st.vals[:idx]...), st.vals[idx+1:]...),
				}
				return ns, true
			}
			return st, false
		},
		Key: func(state any) string {
			st := state.(*mapState)
			var b strings.Builder
			for i, k := range st.keys {
				fmt.Fprintf(&b, "%d=%d,", k, st.vals[i])
			}
			return b.String()
		},
	}
}
