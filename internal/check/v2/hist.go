package v2

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/check"
)

// The conformance corpus in internal/check/testdata stores histories as
// text, one operation per line:
//
//	<thread> <op> <arg> <ret> <ok> <invoke> <return>
//
// '#' starts a comment; blank lines are ignored. <arg> and <ret> accept the
// sugar "k:v" for map operations — "3:17" encodes key 3, value 17, i.e.
// 3<<32|17 — so map goldens stay readable. <ok> is "ok" or "no".
//
// ParseHistory and FormatHistory round-trip, so failing histories found by
// the fuzzers can be dumped, minimized, and checked in as goldens.

// ParseHistory decodes the corpus text format.
func ParseHistory(data []byte) ([]check.Operation, error) {
	var ops []check.Operation
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 7 {
			return nil, fmt.Errorf("line %d: want 7 fields (thread op arg ret ok invoke return), got %d", ln+1, len(fields))
		}
		var o check.Operation
		var err error
		if o.Thread, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("line %d: thread: %v", ln+1, err)
		}
		o.Op = fields[1]
		if o.Arg, err = parsePacked(fields[2]); err != nil {
			return nil, fmt.Errorf("line %d: arg: %v", ln+1, err)
		}
		if o.Ret, err = parsePacked(fields[3]); err != nil {
			return nil, fmt.Errorf("line %d: ret: %v", ln+1, err)
		}
		switch fields[4] {
		case "ok":
			o.RetOK = true
		case "no":
			o.RetOK = false
		default:
			return nil, fmt.Errorf("line %d: ok flag %q (want ok or no)", ln+1, fields[4])
		}
		if o.Invoke, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("line %d: invoke: %v", ln+1, err)
		}
		if o.Return, err = strconv.ParseInt(fields[6], 10, 64); err != nil {
			return nil, fmt.Errorf("line %d: return: %v", ln+1, err)
		}
		ops = append(ops, o)
	}
	return ops, nil
}

func parsePacked(s string) (uint64, error) {
	if k, v, found := strings.Cut(s, ":"); found {
		key, err := strconv.ParseUint(k, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("key %q: %v", k, err)
		}
		val, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("value %q: %v", v, err)
		}
		return key<<32 | val, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// FormatHistory encodes ops in the corpus text format. Map operation
// ARGUMENTS get the k:v sugar (returns carry a bare value).
func FormatHistory(ops []check.Operation) []byte {
	var b strings.Builder
	for _, o := range ops {
		ok := "no"
		if o.RetOK {
			ok = "ok"
		}
		fmt.Fprintf(&b, "%d %s %s %d %s %d %d\n",
			o.Thread, o.Op, formatPacked(o.Op, o.Arg), o.Ret, ok, o.Invoke, o.Return)
	}
	return []byte(b.String())
}

func formatPacked(op string, v uint64) string {
	switch op {
	case check.OpMapPut, check.OpMapDel, check.OpMapGet,
		check.OpBlobPut, check.OpBlobDel, check.OpBlobGet:
		return fmt.Sprintf("%d:%d", v>>32, v&0xffffffff)
	}
	return strconv.FormatUint(v, 10)
}
