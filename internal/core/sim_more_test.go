package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSimReadMonotoneUnderConcurrency: with monotonically growing state
// (adds only), concurrent Reads must never observe a regression — Read is a
// single load of the linearizable LL/SC object's current value.
func TestSimReadMonotoneUnderConcurrency(t *testing.T) {
	const n, per = 4, 150
	u := faaSim(n, 8)
	var stop atomic.Bool
	readerErr := make(chan string, 1)
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var last uint64
		for !stop.Load() {
			v := u.Read()
			if v < last {
				select {
				case readerErr <- "Read went backwards":
				default:
				}
				return
			}
			last = v
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.ApplyOp(id, 1)
			}
		}(i)
	}
	wg.Wait()
	stop.Store(true)
	readers.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
}

// TestSimOpcodeBoundaryWidths: the d=63 and d=64 boundary cases of the
// opcode validation and chunk packing.
func TestSimOpcodeBoundaryWidths(t *testing.T) {
	u63 := NewSim(1, 63, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		return st ^ op, st
	})
	big := uint64(1)<<63 - 1
	u63.ApplyOp(0, big)
	if u63.Read() != big {
		t.Fatalf("state = %#x", u63.Read())
	}
	assertPanics(t, func() { u63.ApplyOp(0, 1<<63) })

	u64 := NewSim(1, 64, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		return op, st
	})
	u64.ApplyOp(0, ^uint64(0))
	if u64.Read() != ^uint64(0) {
		t.Fatalf("state = %#x", u64.Read())
	}
}

// TestSimManySequentialOps: a long single-process run keeps the ⊥
// alternation sound (the applied bit flips on, then off, every request).
func TestSimManySequentialOps(t *testing.T) {
	u := faaSim(1, 8)
	for k := 0; k < 500; k++ {
		if got := u.ApplyOp(0, 1); got != uint64(k) {
			t.Fatalf("op %d returned %d", k, got)
		}
	}
}

// TestSimDistinctOpcodesRouting: different opcodes from different processes
// apply their own semantics (the opcode is the operation, not just a flag).
func TestSimDistinctOpcodesRouting(t *testing.T) {
	// Opcode semantics: 1 = add 10, 2 = add 100, 3 = add 1000.
	u := NewSim(3, 4, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		switch op {
		case 1:
			return st + 10, st
		case 2:
			return st + 100, st
		case 3:
			return st + 1000, st
		}
		return st, st
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				u.ApplyOp(id, uint64(id)+1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != 50*(10+100+1000) {
		t.Fatalf("state = %d, want %d", got, 50*(10+100+1000))
	}
}
