package queue

import "repro/internal/spin"

// TwoLockQueue is the two-lock concurrent queue of Michael and Scott with
// both locks replaced by CLH queue locks — the paper's lock-based queue
// baseline (§5: "a lock-based algorithm (using two CLH locks)"). Enqueues
// and dequeues contend on separate locks, so the two ends proceed in
// parallel when the queue is non-empty.
type TwoLockQueue[V any] struct {
	headLock, tailLock *spin.CLH
	headHandles        []*spin.CLHHandle
	tailHandles        []*spin.CLHHandle
	head, tail         *qnode[V] // guarded by the respective locks
}

// NewTwoLockQueue returns an empty two-lock queue for n processes.
func NewTwoLockQueue[V any](n int) *TwoLockQueue[V] {
	sentinel := &qnode[V]{}
	q := &TwoLockQueue[V]{
		headLock:    spin.NewCLH(),
		tailLock:    spin.NewCLH(),
		headHandles: make([]*spin.CLHHandle, n),
		tailHandles: make([]*spin.CLHHandle, n),
		head:        sentinel,
		tail:        sentinel,
	}
	for i := 0; i < n; i++ {
		q.headHandles[i] = q.headLock.NewHandle()
		q.tailHandles[i] = q.tailLock.NewHandle()
	}
	return q
}

// Enqueue appends v under the tail lock. The node's next pointer is stored
// atomically so a concurrent dequeuer's read of it is properly synchronized
// even though the two operations hold different locks.
func (q *TwoLockQueue[V]) Enqueue(id int, v V) {
	n := &qnode[V]{v: v}
	h := q.tailHandles[id]
	h.Lock()
	q.tail.next.Store(n)
	q.tail = n
	h.Unlock()
}

// Dequeue removes the front value under the head lock; ok is false if empty.
func (q *TwoLockQueue[V]) Dequeue(id int) (V, bool) {
	h := q.headHandles[id]
	h.Lock()
	next := q.head.next.Load()
	if next == nil {
		h.Unlock()
		var zero V
		return zero, false
	}
	v := next.v
	q.head = next
	h.Unlock()
	return v, true
}

// Name implements Interface.
func (q *TwoLockQueue[V]) Name() string { return "2CLH-lock" }
