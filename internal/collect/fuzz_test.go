package collect

import "testing"

// FuzzCollectLastWrites: fuzzed update schedules over a multi-word collect;
// each component must always read back its owner's last write (the
// no-carry/no-borrow packing invariant under arbitrary value sequences).
func FuzzCollectLastWrites(f *testing.F) {
	f.Add([]byte{0, 1, 2, 250, 3, 0})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n, d = 9, 12 // 5 chunks/word -> 2 words
		c := NewSimCollect(n, d)
		ups := make([]*Updater, n)
		last := make([]uint64, n)
		for i := range ups {
			ups[i] = c.Updater(i)
		}
		for i, b := range raw {
			if i > 4096 {
				break
			}
			comp := i % n
			v := (uint64(b) * 17) & ((1 << d) - 1)
			ups[comp].Update(v)
			last[comp] = v
		}
		got := c.Collect()
		for i := 0; i < n; i++ {
			if got[i] != last[i] {
				t.Fatalf("component %d = %d, want %d", i, got[i], last[i])
			}
		}
	})
}
