package simmap

// The large-value tier: a byte-value map that routes each binding to the
// engine its size deserves. Small values live INLINE in the P-Sim striped
// map — a put is one stripe round and the value rides the immutable entry
// list. Large values (>= threshold bytes) live in lsim ItemSV records: the
// map binds the key to an *lsim.Item, and overwriting the value is ONE
// L-Sim operation on that item (O(w)=O(1) write-back) instead of a stripe
// round that rebuilds an entry-list prefix per write. Reads on either tier
// stay lock-free: the map read is hazard-protected, and Item.Current reads
// the item body under an anonymous hazard slot.
//
// Linearizability is per key (the same contract as Map/Sharded), with the
// map op or the L-Sim round as the linearization point:
//
//   - small put / delete / large install: the stripe round that swings the
//     binding;
//   - large overwrite: the L-Sim round that writes the item;
//   - get: the hazard-protected map read, plus Item.Current for large keys.
//
// One write can lose a tier-move race: writer A moves key k to the small
// tier (map round) while writer B, which found k's item just before, lands
// an L-Sim write on the now-orphaned item. B's value is then never
// observable. That history stays linearizable — order B's put immediately
// before A's, which is legal because their intervals overlap — but ONLY
// because Put does not report the previous VALUE (B's prev would have to be
// ordered around both). That is why Tiered.Put returns existence alone;
// TestTieredSoakHistory validates recorded mixed-tier histories against
// exactly this prev-less spec with the check/v2 engines.

import (
	"repro/internal/core"
	"repro/internal/lsim"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// DefaultLargeThreshold is the value size, in bytes, at which Tiered routes
// a binding to the L-Sim item tier (simkvd's -large-threshold overrides it).
const DefaultLargeThreshold = 1024

// blobVal is one binding: exactly one of inline (small tier) or item (large
// tier) is set.
type blobVal struct {
	inline []byte
	item   *lsim.Item[[]byte]
}

// blobArg is the argument of the large-tier overwrite operation.
type blobArg struct {
	it  *lsim.Item[[]byte]
	val []byte
}

// Tiered is a byte-value map with size-routed storage tiers. All write
// methods take the calling process id (0..n-1, one goroutine per id, shared
// by both engines); Get is id-free and safe for any goroutine.
type Tiered[K comparable] struct {
	m         *Map[K, blobVal]
	ls        *lsim.LSim[[]byte, blobArg, []byte]
	threshold int
	smallOps  *obs.Counter // writes served by the inline tier
	largeOps  *obs.Counter // writes served by the L-Sim item tier
	overwrite lsim.OpFunc[[]byte, blobArg, []byte]
}

// NewTiered returns a tiered map for n processes with the given stripe
// count for the small tier. threshold <= 0 selects DefaultLargeThreshold.
func NewTiered[K comparable](n, stripes, threshold int) *Tiered[K] {
	if threshold <= 0 {
		threshold = DefaultLargeThreshold
	}
	t := &Tiered[K]{
		m:         New[K, blobVal](n, stripes),
		ls:        lsim.New[[]byte, blobArg, []byte](n),
		threshold: threshold,
		smallOps:  obs.NewCounter(n),
		largeOps:  obs.NewCounter(n),
	}
	t.overwrite = func(m *lsim.Mem[[]byte, blobArg, []byte], a blobArg) []byte {
		old := m.Read(a.it)
		m.Write(a.it, a.val)
		return old
	}
	return t
}

// Threshold returns the large-tier routing threshold in bytes.
func (t *Tiered[K]) Threshold() int { return t.threshold }

// Put binds k to a copy of v and reports whether k was already bound. The
// copy makes the caller's buffer free to reuse (wire buffers); the stored
// copy is immutable from then on. Values of len >= Threshold() go to the
// large tier; an overwrite that stays in the large tier is a single L-Sim
// item operation and never touches the map structure.
func (t *Tiered[K]) Put(id int, k K, v []byte) (existed bool) {
	owned := append(make([]byte, 0, len(v)), v...)
	if len(owned) < t.threshold {
		t.smallOps.Inc(id)
		_, existed = t.m.Put(id, k, blobVal{inline: owned})
		return existed
	}
	t.largeOps.Inc(id)
	if cur, ok := t.m.Get(k); ok && cur.item != nil {
		t.ls.ApplyOp(id, t.overwrite, blobArg{it: cur.item, val: owned})
		return true
	}
	// Install: the item is born with the value, so the binding-publishing
	// map round is the only shared step.
	_, existed = t.m.Put(id, k, blobVal{item: t.ls.NewRootItem(owned)})
	return existed
}

// Delete removes k's binding and reports whether one existed.
func (t *Tiered[K]) Delete(id int, k K) (existed bool) {
	prev, ok := t.m.Delete(id, k)
	if ok && prev.item != nil {
		t.largeOps.Inc(id)
	} else {
		t.smallOps.Inc(id)
	}
	return ok
}

// Get returns the value bound to k. The returned slice is the store's
// immutable copy — callers must not modify it.
func (t *Tiered[K]) Get(k K) ([]byte, bool) {
	cur, ok := t.m.Get(k)
	if !ok {
		return nil, false
	}
	if cur.item != nil {
		return cur.item.Current(), true
	}
	return cur.inline, true
}

// Len returns the number of bindings (see Map.Len for the snapshot
// semantics).
func (t *Tiered[K]) Len() int { return t.m.Len() }

// Range calls f for every binding until f returns false. Values are read
// with the same point-read semantics as Get; the iteration order is
// unspecified and the set of keys is a per-stripe snapshot (see Map.Range).
func (t *Tiered[K]) Range(f func(k K, v []byte) bool) {
	t.m.Range(func(k K, bv blobVal) bool {
		if bv.item != nil {
			return f(k, bv.item.Current())
		}
		return f(k, bv.inline)
	})
}

// TieredStats is the per-engine view of a Tiered map's combining counters.
type TieredStats struct {
	Small     core.Stats // the P-Sim stripes (inline tier + binding changes)
	Large     core.Stats // the L-Sim instance (large-value overwrites)
	SmallOps  uint64     // writes routed to the inline tier
	LargeOps  uint64     // writes routed to the item tier
	ItemsHeld uint64     // committed item write-backs (L-Sim write-set total)
}

// Stats aggregates both engines' counters (snapshot semantics; see
// core.StatsPlane.Aggregate).
func (t *Tiered[K]) Stats() TieredStats {
	return TieredStats{
		Small:     t.m.Stats(),
		Large:     t.ls.Stats(),
		SmallOps:  t.smallOps.Total(),
		LargeOps:  t.largeOps.Total(),
		ItemsHeld: t.ls.ItemsWritten(),
	}
}

// Instrument publishes both engines in reg under prefix: the small tier's
// stripes as <prefix>_*, the L-Sim engine as <prefix>_lsim_*, and the tier
// routing counters as <prefix>_tier_{small,large}_ops_total. Returns the
// small tier's recorder (shared across stripes).
func (t *Tiered[K]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	rec := t.m.Instrument(reg, prefix)
	t.ls.RegisterStats(reg, prefix+"_lsim")
	reg.AttachCounter(prefix+"_tier_small_ops_total", t.smallOps)
	reg.AttachCounter(prefix+"_tier_large_ops_total", t.largeOps)
	return rec
}

// SetTracer attaches one flight recorder to both engines (their events
// interleave in the same per-pid rings). Call before operations start.
func (t *Tiered[K]) SetTracer(tr *trace.Tracer) {
	t.m.SetTracer(tr)
	t.ls.SetTracer(tr)
}
