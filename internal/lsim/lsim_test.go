package lsim

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/xatomic"
)

type cnt = Mem[uint64, uint64, uint64]

func faaLSim(n int) (*LSim[uint64, uint64, uint64], *Item[uint64], OpFunc[uint64, uint64, uint64]) {
	l := New[uint64, uint64, uint64](n)
	item := l.NewRootItem(0)
	op := func(m *cnt, arg uint64) uint64 {
		v := m.Read(item)
		m.Write(item, v+arg)
		return v
	}
	return l, item, op
}

func TestItemCurrentInitial(t *testing.T) {
	l := New[uint64, uint64, uint64](1)
	it := l.NewRootItem(99)
	if it.Current() != 99 {
		t.Fatalf("Current = %d", it.Current())
	}
}

func TestLSimReadOnlyOp(t *testing.T) {
	l, item, add := faaLSim(1)
	l.ApplyOp(0, add, 10)
	readOp := func(m *cnt, _ uint64) uint64 { return m.Read(item) }
	if got := l.ApplyOp(0, readOp, 0); got != 10 {
		t.Fatalf("read op = %d", got)
	}
	if item.Current() != 10 {
		t.Fatal("read op modified the item")
	}
}

func TestLSimWriteWithoutRead(t *testing.T) {
	l, item, _ := faaLSim(1)
	setOp := func(m *cnt, arg uint64) uint64 {
		m.Write(item, arg)
		return arg
	}
	l.ApplyOp(0, setOp, 77)
	if item.Current() != 77 {
		t.Fatalf("item = %d", item.Current())
	}
}

func TestLSimMultiItemTransfer(t *testing.T) {
	type m2 = Mem[int64, int64, int64]
	const n, per = 6, 150
	l := New[int64, int64, int64](n)
	a := l.NewRootItem(int64(10_000))
	b := l.NewRootItem(int64(0))
	transfer := func(m *m2, amt int64) int64 {
		av := m.Read(a)
		if av < amt {
			return -1
		}
		m.Write(a, av-amt)
		m.Write(b, m.Read(b)+amt)
		return av - amt
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				l.ApplyOp(id, transfer, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := a.Current() + b.Current(); got != 10_000 {
		t.Fatalf("conservation violated: a+b = %d", got)
	}
	if b.Current() != n*per {
		t.Fatalf("b = %d, want %d", b.Current(), n*per)
	}
}

// TestLSimResponsesArePermutation: the exactly-once property under the
// applied/papplied two-round protocol.
func TestLSimResponsesArePermutation(t *testing.T) {
	const n, per = 6, 150
	l, _, add := faaLSim(n)
	seen := make([]bool, n*per)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for k := 0; k < per; k++ {
				local = append(local, l.ApplyOp(id, add, 1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, prev := range local {
				if prev >= n*per || seen[prev] {
					t.Errorf("bad/duplicate previous value %d", prev)
					return
				}
				seen[prev] = true
			}
		}(i)
	}
	wg.Wait()
}

func TestLSimLinearizableHistories(t *testing.T) {
	const n, per, rounds = 3, 3, 15
	for r := 0; r < rounds; r++ {
		l, _, add := faaLSim(n)
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					slot := rec.Invoke(id, check.OpAdd, 1)
					prev := l.ApplyOp(id, add, 1)
					rec.Return(slot, prev, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

func TestLSimSeqAdvances(t *testing.T) {
	l, _, add := faaLSim(1)
	s0 := l.Seq()
	l.ApplyOp(0, add, 1)
	if l.Seq() <= s0 {
		t.Fatalf("seq did not advance: %d -> %d", s0, l.Seq())
	}
}

func TestLSimRvalsPersist(t *testing.T) {
	l, _, add := faaLSim(2)
	l.ApplyOp(0, add, 5)
	if got := l.Rvals(0); got != 0 {
		t.Fatalf("rvals[0] = %d, want 0", got)
	}
	l.ApplyOp(1, add, 1)
	if got := l.Rvals(0); got != 0 {
		t.Fatalf("rvals[0] overwritten by another process's op: %d", got)
	}
}

// TestLSimAccessCountScalesWithW: the O(kw) bound — sequential runs (k=1)
// with footprints w=1 and w=4 must differ by roughly the item SC/LL cost,
// not by the object size.
func TestLSimAccessCountScalesWithW(t *testing.T) {
	measure := func(w int) float64 {
		l := New[uint64, uint64, uint64](1)
		items := make([]*Item[uint64], w)
		for i := range items {
			items[i] = l.NewRootItem(0)
		}
		op := func(m *cnt, arg uint64) uint64 {
			for _, it := range items {
				m.Write(it, m.Read(it)+arg)
			}
			return 0
		}
		c := xatomic.NewAccessCounter(1)
		l.SetAccessCounter(c)
		const per = 50
		for k := 0; k < per; k++ {
			l.ApplyOp(0, op, 1)
		}
		return float64(c.Total()) / per
	}
	a1, a4 := measure(1), measure(4)
	if a4 <= a1 {
		t.Fatalf("w=4 not costlier than w=1: %v vs %v", a4, a1)
	}
	// Each extra item costs one LL (first read) + one LL/SC pair at
	// write-back per executing round; it must NOT cost a full state copy.
	if a4-a1 > 30 {
		t.Fatalf("per-item cost too high: w=1 %v, w=4 %v", a1, a4)
	}
}

func TestLSimStats(t *testing.T) {
	const n, per = 4, 80
	l, _, add := faaLSim(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				l.ApplyOp(id, add, 1)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Ops != n*per {
		t.Fatalf("ops = %d", st.Ops)
	}
	if st.Combined != n*per {
		t.Fatalf("combined = %d, want %d (exactly-once)", st.Combined, n*per)
	}
	if st.CASSuccesses == 0 {
		t.Fatal("no successful SC recorded")
	}
}

// TestLSimAllocSharedIdentity: two items allocated by one operation must be
// distinct, and allocations across sequential operations must be distinct.
func TestLSimAllocSharedIdentity(t *testing.T) {
	l := New[uint64, uint64, uint64](1)
	reg := l.NewRootItem(0)
	var got []*Item[uint64]
	alloc2 := func(m *cnt, _ uint64) uint64 {
		a := m.Alloc()
		b := m.Alloc()
		if a == b {
			t.Error("Alloc returned the same item twice in one op")
		}
		m.Write(a, 1)
		m.Write(b, 2)
		got = append(got, a, b)
		return 0
	}
	l.ApplyOp(0, alloc2, 0)
	l.ApplyOp(0, alloc2, 0)
	_ = reg
	if len(got) != 4 {
		t.Fatalf("allocated %d items", len(got))
	}
	seen := map[*Item[uint64]]bool{}
	for _, it := range got {
		if seen[it] {
			t.Fatal("item identity reused across operations")
		}
		seen[it] = true
	}
	if got[0].Current() != 1 || got[1].Current() != 2 {
		t.Fatalf("allocated item values wrong: %d %d", got[0].Current(), got[1].Current())
	}
}

func TestLSimN(t *testing.T) {
	if New[uint64, uint64, uint64](5).N() != 5 {
		t.Fatal("N() wrong")
	}
}
