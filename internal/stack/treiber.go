package stack

import (
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/pad"
)

// Treiber is R. K. Treiber's classic lock-free stack (IBM RJ 5118, 1986):
// a CAS loop on the top pointer, here with bounded exponential backoff on
// failure as in the paper's tuned baseline. Garbage collection removes the
// ABA hazard that the original needed counters for.
type Treiber[V any] struct {
	top atomic.Pointer[node[V]]
	_   pad.CacheLinePad
	bo  []pad.Slot[*backoff.Exp]
}

// TreiberBackoff bounds the default exponential backoff window of the
// lock-free baselines, in delay-loop iterations.
const TreiberBackoff = 1024

// NewTreiber returns an empty Treiber stack for n processes.
func NewTreiber[V any](n int) *Treiber[V] {
	s := &Treiber[V]{bo: make([]pad.Slot[*backoff.Exp], n)}
	for i := range s.bo {
		s.bo[i].Value = backoff.NewExp(1, TreiberBackoff)
	}
	return s
}

// Push pushes v.
func (s *Treiber[V]) Push(id int, v V) {
	bo := s.bo[id].Value
	n := &node[V]{v: v}
	for {
		top := s.top.Load()
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			bo.Reset()
			return
		}
		bo.Wait()
	}
}

// Pop pops the most recently pushed value; ok is false if empty.
func (s *Treiber[V]) Pop(id int) (V, bool) {
	bo := s.bo[id].Value
	for {
		top := s.top.Load()
		if top == nil {
			var zero V
			bo.Reset()
			return zero, false
		}
		if s.top.CompareAndSwap(top, top.next) {
			bo.Reset()
			return top.v, true
		}
		bo.Wait()
	}
}

// tryPush attempts one CAS push and reports success (used by the
// elimination stack's fast path).
func (s *Treiber[V]) tryPush(n *node[V]) bool {
	top := s.top.Load()
	n.next = top
	return s.top.CompareAndSwap(top, n)
}

// tryPop attempts one CAS pop. popped reports whether the CAS succeeded;
// when popped is true and ok is false the stack was empty.
func (s *Treiber[V]) tryPop() (v V, ok bool, popped bool) {
	top := s.top.Load()
	if top == nil {
		var zero V
		return zero, false, true
	}
	if s.top.CompareAndSwap(top, top.next) {
		return top.v, true, true
	}
	var zero V
	return zero, false, false
}

// Name implements Interface.
func (s *Treiber[V]) Name() string { return "Treiber" }
