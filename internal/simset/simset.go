// Package simset is a wait-free sorted set built on L-Sim — a demonstration
// that the large-object construction (§6) carries a real pointer-linked
// structure, not just flat arrays: nodes are ItemSV records allocated
// through the round-shared new-variable list, links are item values, and an
// operation's footprint is the traversal prefix (w = O(position)), never
// the whole set.
//
// Each operation kind (insert, remove, contains) is a deterministic OpFunc
// replayed identically by every helper of a combining round, as L-Sim
// requires.
package simset

import (
	"repro/internal/lsim"
)

// nodeVal is an item's payload: a key and the link to the next node. The
// head sentinel's key is ignored.
type nodeVal struct {
	key  uint64
	next *lsim.Item[nodeVal]
}

// opKind selects the operation.
type opKind byte

const (
	opInsert opKind = iota
	opRemove
	opContains
)

// opArg is the announced argument.
type opArg struct {
	kind opKind
	key  uint64
}

// Set is a wait-free sorted set of uint64 keys for n processes. Each
// process id must be driven by a single goroutine.
type Set struct {
	l    *lsim.LSim[nodeVal, opArg, bool]
	head *lsim.Item[nodeVal]
	op   lsim.OpFunc[nodeVal, opArg, bool]
}

// New returns an empty set shared by n processes.
func New(n int) *Set {
	s := &Set{l: lsim.New[nodeVal, opArg, bool](n)}
	s.head = s.l.NewRootItem(nodeVal{})
	s.op = s.apply
	return s
}

// apply is the sequential set algorithm against the L-Sim memory interface.
func (s *Set) apply(m *lsim.Mem[nodeVal, opArg, bool], a opArg) bool {
	// Walk to the first node with key >= a.key, tracking the predecessor.
	prev := s.head
	prevVal := m.Read(prev)
	cur := prevVal.next
	for cur != nil {
		cv := m.Read(cur)
		if cv.key >= a.key {
			break
		}
		prev, prevVal = cur, cv
		cur = cv.next
	}
	found := false
	if cur != nil {
		found = m.Read(cur).key == a.key
	}
	switch a.kind {
	case opContains:
		return found
	case opInsert:
		if found {
			return false
		}
		node := m.Alloc()
		m.Write(node, nodeVal{key: a.key, next: cur})
		m.Write(prev, nodeVal{key: prevVal.key, next: node})
		return true
	case opRemove:
		if !found {
			return false
		}
		m.Write(prev, nodeVal{key: prevVal.key, next: m.Read(cur).next})
		return true
	}
	return false
}

// Insert adds key on behalf of process id; reports whether it was absent.
func (s *Set) Insert(id int, key uint64) bool {
	return s.l.ApplyOp(id, s.op, opArg{kind: opInsert, key: key})
}

// Remove deletes key on behalf of process id; reports whether it was
// present.
func (s *Set) Remove(id int, key uint64) bool {
	return s.l.ApplyOp(id, s.op, opArg{kind: opRemove, key: key})
}

// Contains reports membership on behalf of process id (goes through the
// construction so it linearizes with mutations).
func (s *Set) Contains(id int, key uint64) bool {
	return s.l.ApplyOp(id, s.op, opArg{kind: opContains, key: key})
}

// Keys returns the committed keys in ascending order (quiescent snapshot:
// exact when no mutation is in flight).
func (s *Set) Keys() []uint64 {
	var out []uint64
	for it := s.head.Current().next; it != nil; {
		v := it.Current()
		out = append(out, v.key)
		it = v.next
	}
	return out
}

// Len returns the committed size (same caveat as Keys).
func (s *Set) Len() int { return len(s.Keys()) }
