package queue

import (
	"sync"
	"testing"
)

// all returns one instance of each queue implementation for n processes.
func all(n int) []Interface[uint64] {
	return []Interface[uint64]{
		NewSimQueue[uint64](n),
		NewMSQueue[uint64](n),
		NewTwoLockQueue[uint64](n),
		NewFCQueue[uint64](n, 0, 0),
	}
}

func TestQueueSmokeSequential(t *testing.T) {
	for _, q := range all(1) {
		t.Run(q.Name(), func(t *testing.T) {
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("dequeue on empty queue returned ok")
			}
			q.Enqueue(0, 10)
			q.Enqueue(0, 20)
			if v, ok := q.Dequeue(0); !ok || v != 10 {
				t.Fatalf("dequeue = (%d,%v), want (10,true)", v, ok)
			}
			if v, ok := q.Dequeue(0); !ok || v != 20 {
				t.Fatalf("dequeue = (%d,%v), want (20,true)", v, ok)
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("dequeue on drained queue returned ok")
			}
		})
	}
}

// TestQueueSmokeConservation checks, for every implementation, that under a
// concurrent enqueue/dequeue mix no value is lost or duplicated.
func TestQueueSmokeConservation(t *testing.T) {
	const n, pairs = 8, 300
	for _, q := range all(n) {
		t.Run(q.Name(), func(t *testing.T) {
			var mu sync.Mutex
			got := make(map[uint64]int)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					local := make(map[uint64]int)
					for k := 0; k < pairs; k++ {
						v := uint64(id*pairs+k) + 1
						q.Enqueue(id, v)
						if dv, ok := q.Dequeue(id); ok {
							local[dv]++
						}
					}
					mu.Lock()
					for v, c := range local {
						got[v] += c
					}
					mu.Unlock()
				}(i)
			}
			wg.Wait()
			for {
				v, ok := q.Dequeue(0)
				if !ok {
					break
				}
				got[v]++
			}
			if len(got) != n*pairs {
				t.Fatalf("dequeued %d distinct values, want %d", len(got), n*pairs)
			}
			for v, c := range got {
				if c != 1 {
					t.Fatalf("value %d dequeued %d times", v, c)
				}
			}
		})
	}
}
