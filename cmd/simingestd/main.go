// Command simingestd serves the wait-free event-ingest pipeline over TCP:
// producers append batched events through the SimQueue into P-Sim spool
// partitions, retention expires old segments as single linearizable
// op-vectors, and consumers poll cursor snapshots that never block writers.
//
//	simingestd -addr 127.0.0.1:7080 -clients 64 -shards 4 -batch 32 \
//	           -seg 256 -retain-events 65536 -metrics-addr 127.0.0.1:9091
//
// Talk to it with netcat:
//
//	$ printf 'PUB 7\nPUB 8\nPOLL 0 0 10\nHWM 0\nQUIT\n' | nc 127.0.0.1 7080
//	OK 1
//	OK 2
//	EVT 0 0 1 7
//	EVT 1 0 2 8
//	END 2 0
//	HWM 0 2
//	BYE
//
// Consumers hold their own cursors (POLL is stateless server-side): POLL
// returns events from offset max(cursor, low-watermark) and the next cursor
// to resume from, with events lost to retention surfaced as a counted
// `skipped` — never silent disorder.
//
// With -metrics-addr set, /metrics exports the wait-free observability
// plane (per-partition queue and spool combining metrics, stage counters,
// command counters, the connection gauge) and /debug carries pprof, the
// runtime-trace capture, and — with -flight — the flight-recorder snapshot
// of partition 0 (process ids repeat across partitions, so one partition
// owns the recorder). -watchdog BUDGET arms the progress watchdog on the
// same partition. /debug/timeline serves the telemetry timeline (-timeline,
// on by default at 1s): windowed per-series history of every *_ops_total
// family, including the per-partition ingest_spool{partition="i"} series —
// watch it live with cmd/simstat. -slo RULES arms SLO rules on it
// (throughput floors, p99 ceilings, CAS-failure and stall-rate ceilings),
// escalated to stderr once per breach episode like watchdog stalls.
//
// -smoke N switches the binary into a self-driving smoke test: it boots the
// daemon on a loopback port, publishes N events from several pipelined
// producer connections, polls every partition to the end, asserts cursor
// monotonicity and the retention high-watermark, prints a summary, and
// exits non-zero on any violation — CI's end-to-end gate.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
	obstrace "repro/internal/obs/trace"
	"repro/internal/retention"
	"repro/internal/spool"
)

// daemon is a running simingestd: the ingest server plus the optional
// metrics listener and progress watchdog.
type daemon struct {
	srv       *server
	addr      string
	metricsLn net.Listener
	metricsWG chan struct{}
	watchdog  *obstrace.Watchdog
	timeline  *timeline.Timeline
}

// start boots the ingest server on addr and, when metricsAddr is non-empty,
// the /metrics + /debug HTTP surface.
func start(addr, metricsAddr string, cfg serverConfig, watchdogBudget int) (*daemon, error) {
	if watchdogBudget > 0 && cfg.flight == 0 {
		cfg.flight = obstrace.DefaultCapacity // watchdog reads the tracer's progress counters
	}
	srv := newServer(cfg)
	bound, err := srv.Listen(addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	d := &daemon{srv: srv, addr: bound}
	if cfg.timeline > 0 {
		rules, err := timeline.ParseRules(cfg.slo)
		if err != nil {
			d.close()
			return nil, err
		}
		d.timeline = timeline.New(srv.Registry(), timeline.Config{
			Interval: cfg.timeline,
			Rules:    rules,
			OnBreach: func(b timeline.Breach) {
				if b.Cleared {
					fmt.Fprintf(os.Stderr, "simingestd: slo: %s recovered (value %.4g, violated for %s)\n",
						b.Rule.Name(), b.Value, time.Duration(b.SinceNs))
					return
				}
				fmt.Fprintf(os.Stderr, "simingestd: slo: BREACH %s (value %.4g)\n", b.Rule.Name(), b.Value)
			},
		})
		d.timeline.Start()
	} else if cfg.slo != "" {
		d.close()
		return nil, fmt.Errorf("-slo requires -timeline")
	}
	if watchdogBudget > 0 {
		tl := d.timeline
		d.watchdog = obstrace.NewWatchdog(srv.Tracer(), uint64(watchdogBudget), func(s obstrace.Stall) {
			fmt.Fprintf(os.Stderr, "simingestd: watchdog: pid %d stalled: %d announced op(s) uncommitted for %d rounds (%s)\n",
				s.Pid, s.Pending, s.Rounds, s.Since)
			if tl != nil {
				tl.RecordStall(s.Pid, s.Rounds)
			}
		})
		d.watchdog.Start(100 * time.Millisecond)
	}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			d.close()
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(srv.Registry()))
		var tlHandler http.Handler
		if d.timeline != nil {
			tlHandler = timeline.Handler(d.timeline)
		}
		obstrace.RegisterDebug(mux, srv.Tracer(), tlHandler)
		d.metricsLn = ln
		d.metricsWG = make(chan struct{})
		go func() {
			defer close(d.metricsWG)
			_ = http.Serve(ln, mux) // returns when ln closes
		}()
	}
	return d, nil
}

// metricsAddr returns the bound metrics address, or "" if metrics are off.
func (d *daemon) metricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// close shuts down both listeners and waits for the serve loops to drain.
func (d *daemon) close() error {
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	if d.timeline != nil {
		d.timeline.Stop()
	}
	err := d.srv.Close()
	if d.metricsLn != nil {
		d.metricsLn.Close()
		<-d.metricsWG
	}
	return err
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7080", "listen address")
		clients     = flag.Int("clients", 64, "max concurrent client connections (producer slots)")
		shards      = flag.Int("shards", 1, "independent ingest partitions (each its own queue+spool+drainer)")
		batch       = flag.Int("batch", 32, "pipelined PUB batch depth: queued PUBs submitted as one AppendBatch vector")
		segEvents   = flag.Int("seg", 256, "spool segment size in events (sealed segments are immutable)")
		bucket      = flag.Duration("bucket", 0, "seal segments on time-bucket boundaries (0 disables time bucketing)")
		maxSegments = flag.Int("ring", 64, "hard ring bound: sealed segments kept per partition before forced expiry")
		retainAge   = flag.Duration("retain-age", 0, "retention window: expire events older than this (0 disables)")
		retainSegs  = flag.Int("retain-segs", 0, "retention: keep at most this many sealed segments (0 disables)")
		retainEvts  = flag.Int("retain-events", 0, "retention: keep at most this many events per partition (0 disables)")
		retainEvery = flag.Duration("retain-every", 50*time.Millisecond, "retention pass interval")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug on this address (empty disables)")
		flight      = flag.Int("flight", 0,
			"flight-recorder events per process id on partition 0 (rounded up to a power of two; 0 disables)")
		flightSample = flag.Int("flight-sample", 1,
			"with -flight, record one in N operations per process id (1 = every op)")
		watchdog = flag.Int("watchdog", 0,
			"report process ids whose announced op hasn't committed within N system-wide rounds (0 disables; implies -flight)")
		smoke = flag.Int("smoke", 0,
			"self-driving smoke mode: publish N events over loopback TCP, verify cursors and retention, exit (0 = serve)")
		timelineEvery = flag.Duration("timeline", time.Second,
			"telemetry-timeline scrape interval; samples are queryable at /debug/timeline (0 disables)")
		slo = flag.String("slo", "",
			"SLO rules over the timeline, e.g. 'ops>=10000,p99<=2ms,casfail<=0.5,stalls<=3@1m' (requires -timeline)")
	)
	flag.Parse()

	cfg := serverConfig{
		clients: *clients,
		shards:  *shards,
		batch:   *batch,
		spool: spool.Config{
			SegEvents:   *segEvents,
			BucketNs:    bucket.Nanoseconds(),
			MaxSegments: *maxSegments,
		},
		policy: retention.Policy{
			MaxAge:      *retainAge,
			MaxSegments: *retainSegs,
			MaxEvents:   *retainEvts,
		},
		retainTick: *retainEvery,
		flight:     *flight,
		flightSamp: *flightSample,
		timeline:   *timelineEvery,
		slo:        *slo,
	}

	if *smoke > 0 {
		if err := runSmoke(*smoke, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "simingestd: smoke:", err)
			os.Exit(1)
		}
		return
	}

	d, err := start(*addr, *metricsAddr, cfg, *watchdog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simingestd:", err)
		os.Exit(1)
	}
	fmt.Printf("simingestd listening on %s (%d client slots, %d partition(s), batch %d, seg %d)\n",
		d.addr, *clients, *shards, *batch, *segEvents)
	if ma := d.metricsAddr(); ma != "" {
		fmt.Printf("simingestd metrics on http://%s/metrics\n", ma)
		if d.srv.Tracer() != nil {
			fmt.Printf("simingestd flight recorder on http://%s/debug/flight (pprof under /debug/pprof/)\n", ma)
		}
	}
	if d.watchdog != nil {
		fmt.Printf("simingestd progress watchdog armed: budget %d rounds\n", *watchdog)
	}
	if d.timeline != nil {
		fmt.Printf("simingestd timeline scraping every %s (%d series)\n", *timelineEvery, len(d.timeline.SeriesNames()))
		for _, r := range d.timeline.Rules() {
			fmt.Printf("simingestd slo rule armed: %s\n", r.Name())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("simingestd: shutting down")
	d.close()
}
