// Package simuc is the public API of this reproduction of
//
//	P. Fatourou and N. D. Kallimanis,
//	"A Highly-Efficient Wait-Free Universal Construction", SPAA 2011.
//
// It exposes the paper's contributions behind a stable facade:
//
//   - Universal — the practical wait-free universal construction P-Sim:
//     turn ANY sequential object into a linearizable, wait-free concurrent
//     object. Announce with one Fetch&Add on a toggle-bit vector, combine
//     every announced operation on a private copy of the state, publish
//     with one CAS; at most two rounds per operation, no locks, no waiting.
//
//   - Stack and Queue — the paper's wait-free SimStack and SimQueue. The
//     queue runs TWO independent instances of the construction so enqueuers
//     and dequeuers never serialize against each other.
//
//   - Collect, ActiveSet — the Fetch&Add-based collect object and active
//     set of §3, with step complexity 1 for update/join/leave.
//
//   - LargeObject (and the lsim aliases) — L-Sim (§6), the variant for
//     objects too large to copy: operations run against per-helper
//     directories and write back per-item, costing O(kw) shared accesses.
//
// Every process (goroutine) using one of these objects is identified by an
// id in [0, n); each id must be driven by at most one goroutine at a time —
// the standard model of the paper (§2).
package simuc

import (
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/lsim"
	"repro/internal/queue"
	"repro/internal/simmap"
	"repro/internal/simset"
	"repro/internal/snapshot"
	"repro/internal/stack"
)

// Stats summarizes an object's combining behaviour. AvgHelping is the
// paper's "average degree of helping" (Figure 2, right): announced
// operations applied per successful state publication.
type Stats = core.Stats

// Config tunes a construction. The zero value selects the defaults.
type Config struct {
	// BackoffLow and BackoffHigh bound the adaptive backoff window in
	// delay-loop iterations (Algorithm 3 line 4). BackoffHigh = -1 disables
	// backoff; 0 selects the default.
	BackoffLow, BackoffHigh int
	// PaddedAct lays the Act bit vector out one word per cache line instead
	// of the paper's dense minimal-line layout.
	PaddedAct bool
}

func (c Config) bounds() (lo, hi int) {
	lo, hi = c.BackoffLow, c.BackoffHigh
	if lo <= 0 {
		lo = 1
	}
	switch {
	case hi < 0:
		hi = 0 // disabled
	case hi == 0:
		hi = core.DefaultBackoffUpper
	}
	return lo, hi
}

func psimOpts[S any](c Config) []core.PSimOption[S] {
	lo, hi := c.bounds()
	opts := []core.PSimOption[S]{core.WithBackoff[S](lo, hi)}
	if c.PaddedAct {
		opts = append(opts, core.WithPaddedAct[S]())
	}
	return opts
}

// Universal is a wait-free universal object: a sequential object of state S
// with operations of argument type A and response type R, simulated by up to
// n concurrent processes via the P-Sim construction.
type Universal[S, A, R any] struct {
	p *core.PSim[S, A, R]
}

// NewUniversal builds a universal object for n processes. apply is the
// sequential operation: it receives a PRIVATE copy of the state (mutate
// freely), the id of the process whose operation is being applied, and the
// announced argument, and returns the response.
//
// If S contains references to mutable data (slices, maps), supply a deep
// copy via clone; pass nil when shallow copies are safe (plain values, or
// pointers into immutable structures).
func NewUniversal[S, A, R any](n int, init S, apply func(st *S, pid int, arg A) R, clone func(S) S, cfg Config) *Universal[S, A, R] {
	opts := psimOpts[S](cfg)
	if clone != nil {
		opts = append(opts, core.WithClone(clone))
	}
	return &Universal[S, A, R]{p: core.NewPSim(n, init, apply, opts...)}
}

// Apply announces arg on behalf of process id, participates in combining,
// and returns the operation's response. Wait-free: completes in a bounded
// number of this process's own steps.
func (u *Universal[S, A, R]) Apply(id int, arg A) R { return u.p.Apply(id, arg) }

// ApplyBatch announces the whole vector args in ONE announce slot, applies
// it contiguously at a single linearization point, and appends the per-
// element responses to res[:0], returning it. One announce, one toggle,
// one CAS per combining round amortize over the entire vector, so batched
// throughput grows with the batch size; the hot path allocates nothing.
// Vectors longer than the combining budget are split into budget-sized
// chunks, each linearized atomically. Wait-free like Apply.
func (u *Universal[S, A, R]) ApplyBatch(id int, args []A, res []R) []R {
	return u.p.ApplyBatch(id, args, res)
}

// Read returns the current state without announcing an operation. Treat the
// result as immutable.
func (u *Universal[S, A, R]) Read() S { return u.p.Read() }

// Stats returns combining statistics.
func (u *Universal[S, A, R]) Stats() Stats { return u.p.Stats() }

// Stack is the paper's wait-free SimStack.
type Stack[V any] struct {
	s *stack.SimStack[V]
}

// NewStack returns an empty wait-free stack for n processes.
func NewStack[V any](n int, cfg Config) *Stack[V] {
	lo, hi := cfg.bounds()
	opts := []stack.SimOption{stack.WithBackoff(lo, hi)}
	if cfg.PaddedAct {
		opts = append(opts, stack.WithPaddedAct())
	}
	return &Stack[V]{s: stack.NewSimStack[V](n, opts...)}
}

// Push pushes v on behalf of process id.
func (s *Stack[V]) Push(id int, v V) { s.s.Push(id, v) }

// Pop pops on behalf of process id; ok is false when the stack is empty.
func (s *Stack[V]) Pop(id int) (v V, ok bool) { return s.s.Pop(id) }

// PushBatch pushes all of vals (vals[len-1] ends up on top) in one
// combined operation vector — one announce and one publish per combining
// round for the whole batch.
func (s *Stack[V]) PushBatch(id int, vals []V) { s.s.PushBatch(id, vals) }

// PopBatch pops up to want values, appending them in pop order to out[:0]
// and returning it. Fewer than want values are returned when the stack ran
// empty at the batch's linearization point.
func (s *Stack[V]) PopBatch(id int, want int, out []V) []V {
	return s.s.PopBatch(id, want, out)
}

// Len returns a snapshot of the stack's size.
func (s *Stack[V]) Len() int { return s.s.Len() }

// Stats returns combining statistics.
func (s *Stack[V]) Stats() Stats { return s.s.Stats() }

// Queue is the paper's wait-free SimQueue (two independent Sim instances:
// enqueuers and dequeuers do not serialize against each other).
type Queue[V any] struct {
	q *queue.SimQueue[V]
}

// NewQueue returns an empty wait-free queue for n processes.
func NewQueue[V any](n int, cfg Config) *Queue[V] {
	q := queue.NewSimQueue[V](n)
	lo, hi := cfg.bounds()
	q.SetBackoff(lo, hi)
	return &Queue[V]{q: q}
}

// Enqueue appends v on behalf of process id.
func (q *Queue[V]) Enqueue(id int, v V) { q.q.Enqueue(id, v) }

// Dequeue removes the front value on behalf of process id; ok is false when
// the queue is empty.
func (q *Queue[V]) Dequeue(id int) (v V, ok bool) { return q.q.Dequeue(id) }

// EnqueueBatch appends all of vals in order as one combined operation
// vector: the combiner splices the whole batch into the queue as a single
// pre-linked node list.
func (q *Queue[V]) EnqueueBatch(id int, vals []V) { q.q.EnqueueBatch(id, vals) }

// DequeueBatch removes up to want front values, appending them in FIFO
// order to out[:0] and returning it. Fewer than want values are returned
// when the queue ran empty at the batch's linearization point.
func (q *Queue[V]) DequeueBatch(id int, want int, out []V) []V {
	return q.q.DequeueBatch(id, want, out)
}

// Stats returns combining statistics aggregated over both instances.
func (q *Queue[V]) Stats() Stats { return q.q.Stats() }

// Collect is the paper's SimCollect: n single-writer components of d bits
// each over Fetch&Add words; update costs ONE shared access, collect costs
// ⌈nd/64⌉ (Theorem 3.1). When n·d ≤ 64, Snapshot provides a linearizable
// single-writer snapshot.
type Collect = collect.SimCollect

// NewCollect returns a collect object with n components of d bits each.
func NewCollect(n, d int) *Collect { return collect.NewSimCollect(n, d) }

// CollectUpdater is process i's single-writer handle on a Collect.
type CollectUpdater = collect.Updater

// Snapshot is the paper's single-writer snapshot object (§1): each
// component updated by its owner with ONE Fetch&Add; scans are a single
// atomic load when the object fits one word (n·(dataBits+seqBits) ≤ 64) and
// a lock-free double collect otherwise.
type Snapshot = snapshot.SWSnapshot

// SnapshotWriter is component i's single-writer handle on a Snapshot.
type SnapshotWriter = snapshot.Writer

// NewSnapshot returns a snapshot object with n components of dataBits bits
// each and seqBits of embedded update counter (0 = default).
func NewSnapshot(n, dataBits, seqBits int) *Snapshot {
	return snapshot.New(n, dataBits, seqBits)
}

// ActiveSet is the paper's SimActSet: join/leave with one Fetch&Add each,
// getSet with ⌈n/64⌉ reads.
type ActiveSet = collect.ActSet

// NewActiveSet returns an active set for n processes.
func NewActiveSet(n int) *ActiveSet { return collect.NewActSet(n) }

// ActiveSetMember is process i's single-writer handle on an ActiveSet.
type ActiveSetMember = collect.Member

// LargeObject is L-Sim (§6): the universal construction for objects too
// large to copy per round. Operations access shared items through a Mem and
// must be deterministic; see the lsim aliases below.
type LargeObject[V, A, R any] = lsim.LSim[V, A, R]

// NewLargeObject returns an L-Sim instance for n processes.
func NewLargeObject[V, A, R any](n int) *LargeObject[V, A, R] {
	return lsim.New[V, A, R](n)
}

// Map is a wait-free striped hash map built from multiple independent Sim
// instances — the paper's sketched route to data structures with internal
// parallelism (§1), generalizing SimQueue's two-instance design. Put and
// Delete combine within a stripe; Get is a single atomic load of the
// stripe's immutable entry list (linearizable without announcing).
type Map[K comparable, V any] = simmap.Map[K, V]

// NewMap returns a wait-free map for n processes with the given stripe
// count (more stripes, more inter-key parallelism). Multi-key batches
// (MSet, MGet, MDelete) group keys by stripe and combine each group as one
// operation vector.
func NewMap[K comparable, V any](n, stripes int) *Map[K, V] {
	return simmap.New[K, V](n, stripes)
}

// ShardedMap distributes keys over independent Map shards, multiplying the
// combining throughput: different shards never serialize against each
// other, and multi-key batches fan out per shard. Single keys are
// linearizable; multi-key calls guarantee per-key linearizability (each
// element linearizes during the call), not cross-key atomicity.
type ShardedMap[K comparable, V any] = simmap.Sharded[K, V]

// NewShardedMap returns a sharded wait-free map for n processes. shards is
// rounded up to a power of two; each shard gets stripesPerShard internal
// stripes.
func NewShardedMap[K comparable, V any](n, shards, stripesPerShard int) *ShardedMap[K, V] {
	return simmap.NewSharded[K, V](n, shards, stripesPerShard)
}

// SortedSet is a wait-free sorted set of uint64 keys built on L-Sim: nodes
// are shared items allocated through the construction, and an operation's
// cost scales with its traversal length, never the set size times the copy
// cost (the large-object property, §6).
type SortedSet = simset.Set

// NewSortedSet returns an empty sorted set for n processes.
func NewSortedSet(n int) *SortedSet { return simset.New(n) }

// Item is one shared data item of a LargeObject.
type Item[V any] = lsim.Item[V]

// Mem is the memory interface a LargeObject operation uses to read, write
// and allocate items.
type Mem[V, A, R any] = lsim.Mem[V, A, R]

// OpFunc is a sequential operation on a LargeObject.
type OpFunc[V, A, R any] = lsim.OpFunc[V, A, R]
