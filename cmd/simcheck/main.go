// Command simcheck stress-tests the repository's concurrent objects and
// checks them for linearizability. Two modes:
//
//	-mode stress    large concurrent runs checked with structural invariants
//	                (value conservation, no duplication, per-producer order)
//	-mode linearize many small adversarial histories validated with the
//	                Wing–Gong checker
//
// Example:
//
//	simcheck -object stack -impl sim -threads 8 -ops 10000
//	simcheck -object queue -impl ms -mode linearize -rounds 200
//
// Exit status 0 means every check passed.
//
// Sim-family implementations run with the wait-free flight recorder
// attached: when a check FAILs, the newest combining-round events (round
// commits with their degree, CAS publish failures, recycling misses, …)
// are dumped to stderr — the post-mortem view of what the combiners were
// doing when the invariant broke. -flight-last bounds the dump.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/check"
	"repro/internal/fmul"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/stack"
)

// flight is the flight recorder shared by every Sim-family instance the
// checker builds (attached via attachFlight); nil for untraced impls.
var flight *trace.Tracer

// flightLast bounds the number of events dumped on failure.
var flightLast int

// attachFlight hooks the flight recorder onto implementations that support
// it and returns the object for inline use.
func attachFlight[T any](o T) T {
	if t, ok := any(o).(interface{ SetTracer(*trace.Tracer) }); ok {
		t.SetTracer(flight)
	}
	return o
}

// dumpFlight writes the newest recorded events to stderr after a failure.
func dumpFlight() {
	if flight == nil {
		return
	}
	evs := flight.Snapshot()
	if len(evs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "--- flight recorder: newest %d of %d events ---\n",
		min(flightLast, len(evs)), len(evs))
	_ = trace.WriteText(os.Stderr, trace.Tail(evs, flightLast))
}

func main() {
	var (
		object  = flag.String("object", "stack", "object to check: stack, queue, fmul")
		impl    = flag.String("impl", "sim", "implementation (stack: sim|treiber|elimination|clh|fc; queue: sim|ms|twolock|fc; fmul: psim|pool|clh|mcs|lockfree|fc|herlihy|combtree)")
		mode    = flag.String("mode", "stress", "check mode: stress or linearize")
		threads = flag.Int("threads", 8, "concurrent processes")
		ops     = flag.Int("ops", 5000, "operations per process (stress mode)")
		rounds  = flag.Int("rounds", 100, "histories to check (linearize mode)")
		last    = flag.Int("flight-last", 64, "max flight-recorder events dumped to stderr on failure")
	)
	flag.Parse()

	// Linearize mode always runs 3-process histories; size the rings for
	// whichever mode needs more. Every operation is recorded (no sampling):
	// a post-mortem with holes is not a post-mortem.
	n := *threads
	if n < 3 {
		n = 3
	}
	flight = trace.New(n, trace.WithSampleEvery(1))
	flightLast = *last

	ok := false
	switch *object {
	case "stack":
		ok = checkStack(*impl, *mode, *threads, *ops, *rounds)
	case "queue":
		ok = checkQueue(*impl, *mode, *threads, *ops, *rounds)
	case "fmul":
		ok = checkFMul(*impl, *mode, *threads, *ops, *rounds)
	default:
		fmt.Fprintf(os.Stderr, "simcheck: unknown object %q\n", *object)
		os.Exit(2)
	}
	if !ok {
		dumpFlight()
		fmt.Println("FAIL")
		os.Exit(1)
	}
	fmt.Println("OK")
}

func newStack(impl string, n int) stack.Interface[uint64] {
	switch impl {
	case "sim":
		return stack.NewSimStack[uint64](n)
	case "treiber":
		return stack.NewTreiber[uint64](n)
	case "elimination":
		return stack.NewElimination[uint64](n)
	case "clh":
		return stack.NewCLHStack[uint64](n)
	case "fc":
		return stack.NewFCStack[uint64](n, 0, 0)
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown stack impl %q\n", impl)
	os.Exit(2)
	return nil
}

func newQueue(impl string, n int) queue.Interface[uint64] {
	switch impl {
	case "sim":
		return queue.NewSimQueue[uint64](n)
	case "ms":
		return queue.NewMSQueue[uint64](n)
	case "twolock":
		return queue.NewTwoLockQueue[uint64](n)
	case "fc":
		return queue.NewFCQueue[uint64](n, 0, 0)
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown queue impl %q\n", impl)
	os.Exit(2)
	return nil
}

func newFMul(impl string, n int) fmul.Interface {
	switch impl {
	case "psim":
		return fmul.NewPSim(n)
	case "pool":
		return fmul.NewPSimPooled(n)
	case "clh":
		return fmul.NewCLH(n)
	case "mcs":
		return fmul.NewMCS(n)
	case "lockfree":
		return fmul.NewLockFree(n)
	case "fc":
		return fmul.NewFC(n, 0, 0)
	case "herlihy":
		return fmul.NewHerlihy(n)
	case "combtree":
		return fmul.NewCombTree(n)
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown fmul impl %q\n", impl)
	os.Exit(2)
	return nil
}

func checkStack(impl, mode string, threads, ops, rounds int) bool {
	switch mode {
	case "stress":
		s := attachFlight(newStack(impl, threads))
		popped := concurrentPairs(threads, ops,
			func(id int, v uint64) { s.Push(id, v) },
			func(id int) (uint64, bool) { return s.Pop(id) })
		return verifyConservation(popped, threads*ops, func() (uint64, bool) { return s.Pop(0) })
	case "linearize":
		for r := 0; r < rounds; r++ {
			s := attachFlight(newStack(impl, 3))
			h := recordHistory(3, 3,
				check.OpPush, func(id int, v uint64) { s.Push(id, v) },
				check.OpPop, func(id int) (uint64, bool) { return s.Pop(id) })
			if !check.Linearizable(h, check.StackSpec()) {
				fmt.Printf("round %d: non-linearizable stack history:\n", r)
				for _, op := range h {
					fmt.Println(" ", op)
				}
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

func checkQueue(impl, mode string, threads, ops, rounds int) bool {
	switch mode {
	case "stress":
		q := attachFlight(newQueue(impl, threads))
		got := concurrentPairs(threads, ops,
			func(id int, v uint64) { q.Enqueue(id, v) },
			func(id int) (uint64, bool) { return q.Dequeue(id) })
		return verifyConservation(got, threads*ops, func() (uint64, bool) { return q.Dequeue(0) })
	case "linearize":
		for r := 0; r < rounds; r++ {
			q := attachFlight(newQueue(impl, 3))
			h := recordHistory(3, 3,
				check.OpEnqueue, func(id int, v uint64) { q.Enqueue(id, v) },
				check.OpDequeue, func(id int) (uint64, bool) { return q.Dequeue(id) })
			if !check.Linearizable(h, check.QueueSpec()) {
				fmt.Printf("round %d: non-linearizable queue history:\n", r)
				for _, op := range h {
					fmt.Println(" ", op)
				}
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

func checkFMul(impl, mode string, threads, ops, rounds int) bool {
	switch mode {
	case "stress":
		o := attachFlight(newFMul(impl, threads))
		var want uint64 = 1
		for i := 0; i < threads*ops; i++ {
			want *= 3
		}
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < ops; k++ {
					o.Apply(id, 3)
				}
			}(i)
		}
		wg.Wait()
		if got := o.Read(); got != want {
			fmt.Printf("product mismatch: got %#x want %#x\n", got, want)
			return false
		}
		return true
	case "linearize":
		for r := 0; r < rounds; r++ {
			o := attachFlight(newFMul(impl, 3))
			rec := check.NewRecorder(9)
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < 3; k++ {
						slot := rec.Invoke(id, check.OpMul, 3)
						prev := o.Apply(id, 3)
						rec.Return(slot, prev, false)
					}
				}(i)
			}
			wg.Wait()
			if !check.Linearizable(rec.Operations(), check.FMulSpec(1)) {
				fmt.Printf("round %d: non-linearizable Fetch&Multiply history\n", r)
				return false
			}
		}
		return true
	}
	fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q\n", mode)
	os.Exit(2)
	return false
}

// concurrentPairs runs threads×ops produce+consume pairs with unique tagged
// values and returns the multiset of consumed values.
func concurrentPairs(threads, ops int, produce func(int, uint64), consume func(int) (uint64, bool)) map[uint64]int {
	var mu sync.Mutex
	got := make(map[uint64]int)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := map[uint64]int{}
			for k := 0; k < ops; k++ {
				produce(id, uint64(id*ops+k)+1)
				if v, ok := consume(id); ok {
					local[v]++
				}
			}
			mu.Lock()
			for v, c := range local {
				got[v] += c
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return got
}

// verifyConservation drains the remainder and checks that every produced
// value was consumed exactly once.
func verifyConservation(got map[uint64]int, produced int, drain func() (uint64, bool)) bool {
	for {
		v, ok := drain()
		if !ok {
			break
		}
		got[v]++
	}
	if len(got) != produced {
		fmt.Printf("conservation: %d distinct values consumed, want %d\n", len(got), produced)
		return false
	}
	for v, c := range got {
		if c != 1 {
			fmt.Printf("duplication: value %d consumed %d times\n", v, c)
			return false
		}
	}
	return true
}

// recordHistory runs a tiny concurrent history of produce/consume pairs.
func recordHistory(threads, per int, prodOp string, produce func(int, uint64), consOp string, consume func(int) (uint64, bool)) []check.Operation {
	rec := check.NewRecorder(2 * threads * per)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				v := uint64(id*per+k) + 1
				slot := rec.Invoke(id, prodOp, v)
				produce(id, v)
				rec.Return(slot, 0, false)

				slot = rec.Invoke(id, consOp, 0)
				cv, ok := consume(id)
				rec.Return(slot, cv, ok)
			}
		}(i)
	}
	wg.Wait()
	return rec.Operations()
}
