package xatomic

import (
	"sync"
	"testing"
)

// TestTogglersConcurrentPaddedLayout mirrors TestTogglersConcurrent on the
// padded layout, covering its AddWord/LoadWord paths under contention.
func TestTogglersConcurrentPaddedLayout(t *testing.T) {
	const n = 130 // three words
	b := NewSharedBitsPadded(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tg := NewToggler(b, id)
			for k := 0; k <= id%3; k++ { // 1..3 toggles
				tg.Toggle()
			}
		}(i)
	}
	wg.Wait()
	s := b.Load()
	for i := 0; i < n; i++ {
		want := (i%3+1)%2 == 1
		if s.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, s.Bit(i), want)
		}
	}
}

// TestTogglerReturnsPreviousWord: the F&A's previous-word return value is
// what P-Sim uses nowhere, but the primitive must still report it exactly.
func TestTogglerReturnsPreviousWord(t *testing.T) {
	b := NewSharedBits(8)
	t0 := NewToggler(b, 0)
	t1 := NewToggler(b, 1)
	if prev := t0.Toggle(); prev != 0 {
		t.Fatalf("prev = %b", prev)
	}
	if prev := t1.Toggle(); prev != 1 {
		t.Fatalf("prev = %b, want bit0 set", prev)
	}
	if prev := t0.Toggle(); prev != 0b11 {
		t.Fatalf("prev = %b, want both bits", prev)
	}
}

// TestSnapshotZeroLength: WordsFor(0) keeps a one-word minimum so empty
// vectors stay usable.
func TestSnapshotZeroLength(t *testing.T) {
	s := NewSnapshot(0)
	if len(s) != 1 || !s.IsZero() {
		t.Fatalf("zero-length snapshot: %v", s)
	}
}

// TestLLSCManyGenerations: long LL/SC chains keep exact semantics (each
// generation's stale tag must fail).
func TestLLSCManyGenerations(t *testing.T) {
	l := NewLLSC(0)
	var stale []Tag[int]
	for g := 0; g < 100; g++ {
		v, tag := l.LL()
		if v != g {
			t.Fatalf("generation %d reads %d", g, v)
		}
		stale = append(stale, tag)
		if !l.SC(tag, g+1) {
			t.Fatalf("SC failed at generation %d", g)
		}
	}
	for i, tag := range stale {
		if l.SC(tag, -1) {
			t.Fatalf("stale tag %d succeeded", i)
		}
	}
}

// TestAccessCounterPerThreadIsolated: concurrent increments on distinct
// slots never bleed into each other.
func TestAccessCounterPerThreadIsolated(t *testing.T) {
	const n = 8
	c := NewAccessCounter(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < (id+1)*100; k++ {
				c.Inc(id)
			}
		}(i)
	}
	wg.Wait()
	per := c.PerThread()
	for i := 0; i < n; i++ {
		if per[i] != uint64((i+1)*100) {
			t.Fatalf("slot %d = %d, want %d", i, per[i], (i+1)*100)
		}
	}
}
