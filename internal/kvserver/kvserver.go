// Package kvserver is a small TCP key-value server built on the wait-free
// striped map — the kind of downstream application the universal
// construction exists for. Every mutation is wait-free: a slow or stalled
// client connection can never hold a lock that blocks other clients'
// operations (there are no locks), and reads are single atomic loads.
//
// Protocol (one request per line, space-separated, values base-10 uint64):
//
//	PUT <key> <value>   -> OK <previous>|OK NIL
//	GET <key>           -> VAL <value>|NIL
//	DEL <key>           -> OK <previous>|OK NIL
//	LEN                 -> LEN <count>
//	STATS               -> STATS ops=<n> helping=<avg> cas_fail=<n> served_by=<n>
//	QUIT                -> BYE (closes the connection)
//
// Malformed requests get "ERR <reason>" and the connection stays open.
//
// Every server carries an obs.Registry (see internal/obs): the striped map's
// Sim recorders (map_* metrics: op latency, combining degree, CAS outcomes)
// plus per-command counters (kv_put_total, …) and a connection gauge
// (kv_connections). Export it over HTTP with obs.Handler(srv.Registry()) —
// cmd/simkvd's -metrics-addr does exactly that.
package kvserver

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/simmap"
)

// Server is a key-value server instance. Up to MaxClients connections are
// served concurrently; each holds one of the map's process ids while
// connected.
type Server struct {
	m       *simmap.Map[string, uint64]
	ids     chan int // free-list of process ids
	ln      net.Listener
	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{} // in-flight connections, closed by Close
	wg      sync.WaitGroup
	maxConn int

	reg    *obs.Registry
	tracer *trace.Tracer // nil until EnableFlightRecorder
	// per-command counters, indexed by client slot (single writer per slot:
	// a slot serves one connection at a time).
	cPut, cGet, cDel, cLen, cStats, cErr *obs.Counter
	gConns                               *obs.Gauge
}

// New returns a server allowing maxClients concurrent connections, with the
// given stripe count for the underlying map (0 selects maxClients).
func New(maxClients, stripes int) *Server {
	if maxClients < 1 {
		maxClients = 1
	}
	if stripes <= 0 {
		stripes = maxClients
	}
	reg := obs.NewRegistry()
	s := &Server{
		m:       simmap.New[string, uint64](maxClients, stripes),
		ids:     make(chan int, maxClients),
		conns:   map[net.Conn]struct{}{},
		maxConn: maxClients,
		reg:     reg,
		cPut:    reg.Counter("kv_put_total", maxClients),
		cGet:    reg.Counter("kv_get_total", maxClients),
		cDel:    reg.Counter("kv_del_total", maxClients),
		cLen:    reg.Counter("kv_len_total", maxClients),
		cStats:  reg.Counter("kv_stats_total", maxClients),
		cErr:    reg.Counter("kv_err_total", maxClients),
		gConns:  reg.Gauge("kv_connections"),
	}
	// Record every operation's latency: map mutations sit behind network
	// round-trips here, so the default distribution sampling would only thin
	// out an already low-rate signal.
	s.m.Instrument(reg, "map").SetSampleEvery(1)
	for i := 0; i < maxClients; i++ {
		s.ids <- i
	}
	return s
}

// Registry returns the server's metrics registry, for HTTP export.
func (s *Server) Registry() *obs.Registry { return s.reg }

// EnableFlightRecorder attaches a wait-free flight recorder to the striped
// map: one event ring per client slot, capacity events each (0 selects the
// default), recording one in sampleEvery operations (min 1). Call before
// Listen — attaching while operations run is not supported. Returns the
// tracer for snapshotting (cmd/simkvd's /debug/flight endpoint).
func (s *Server) EnableFlightRecorder(capacity, sampleEvery int) *trace.Tracer {
	opts := []trace.Option{}
	if capacity > 0 {
		opts = append(opts, trace.WithCapacity(capacity))
	}
	if sampleEvery > 1 {
		opts = append(opts, trace.WithSampleEvery(sampleEvery))
	}
	s.tracer = trace.New(s.maxConn, opts...)
	s.m.SetTracer(s.tracer)
	return s.tracer
}

// Tracer returns the flight recorder, or nil when EnableFlightRecorder was
// never called.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Track before blocking on a free slot: Close closes tracked
		// connections, which both unblocks their ServeConn loops and recycles
		// their ids, so this receive cannot deadlock a shutdown.
		if !s.track(conn) {
			conn.Close() // racing with Close: refuse
			continue
		}
		id := <-s.ids // waits if all client slots are busy
		s.wg.Add(1)
		s.gConns.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.gConns.Add(-1)
			defer func() { s.ids <- id }()
			defer s.untrack(conn)
			defer conn.Close()
			s.ServeConn(id, conn)
		}()
	}
}

// track registers an in-flight connection; false if the server is closed.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the listener, closes every in-flight connection (so a slow or
// idle client cannot stall shutdown or leak its serve goroutine), and waits
// for all serve loops to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// ServeConn handles one client connection with map process id. Exposed so
// tests (and in-process embedders) can drive the protocol over net.Pipe.
//
// The whole connection runs under pprof labels ("pid" = the map process id,
// "object" = "simmap"), so CPU profiles and runtime traces captured through
// cmd/simkvd's /debug endpoints attribute combiner time to the announcing
// slot. Labeling once per connection keeps the per-operation path free of
// the context plumbing and allocation pprof.Do would otherwise add.
func (s *Server) ServeConn(id int, conn net.Conn) {
	labels := pprof.Labels("pid", strconv.Itoa(id), "object", "simmap")
	pprof.Do(context.Background(), labels, func(context.Context) {
		sc := bufio.NewScanner(conn)
		w := bufio.NewWriter(conn)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			resp, quit := s.handle(id, line)
			fmt.Fprintln(w, resp)
			if err := w.Flush(); err != nil {
				return
			}
			if quit {
				return
			}
		}
	})
}

// handle executes one request line and returns the response line.
func (s *Server) handle(id int, line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PUT":
		if len(fields) != 3 {
			s.cErr.Inc(id)
			return "ERR usage: PUT <key> <value>", false
		}
		v, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			s.cErr.Inc(id)
			return "ERR value must be a uint64", false
		}
		s.cPut.Inc(id)
		prev, existed := s.m.Put(id, fields[1], v)
		if !existed {
			return "OK NIL", false
		}
		return fmt.Sprintf("OK %d", prev), false
	case "GET":
		if len(fields) != 2 {
			s.cErr.Inc(id)
			return "ERR usage: GET <key>", false
		}
		s.cGet.Inc(id)
		v, ok := s.m.Get(fields[1])
		if !ok {
			return "NIL", false
		}
		return fmt.Sprintf("VAL %d", v), false
	case "DEL":
		if len(fields) != 2 {
			s.cErr.Inc(id)
			return "ERR usage: DEL <key>", false
		}
		s.cDel.Inc(id)
		prev, existed := s.m.Delete(id, fields[1])
		if !existed {
			return "OK NIL", false
		}
		return fmt.Sprintf("OK %d", prev), false
	case "LEN":
		s.cLen.Inc(id)
		return fmt.Sprintf("LEN %d", s.m.Len()), false
	case "STATS":
		s.cStats.Inc(id)
		st := s.m.Stats()
		return fmt.Sprintf("STATS ops=%d helping=%.2f cas_fail=%d served_by=%d",
			st.Ops, st.AvgHelping, st.CASFailures, st.ServedByOther), false
	case "QUIT":
		return "BYE", true
	}
	s.cErr.Inc(id)
	return "ERR unknown command " + cmd, false
}

// Map exposes the underlying map for embedding scenarios and tests.
func (s *Server) Map() *simmap.Map[string, uint64] { return s.m }
