package combtree

import (
	"sync"
	"testing"
)

func TestTreeSequentialAdd(t *testing.T) {
	tr := NewFetchAdd(4, 0)
	if got := tr.Apply(0, 5); got != 0 {
		t.Fatalf("first = %d", got)
	}
	if got := tr.Apply(0, 3); got != 5 {
		t.Fatalf("second = %d", got)
	}
	if tr.Read() != 8 {
		t.Fatalf("state = %d", tr.Read())
	}
}

func TestTreeSequentialMultiply(t *testing.T) {
	tr := NewFetchMultiply(2, 1)
	if got := tr.Apply(0, 3); got != 1 {
		t.Fatalf("first = %d", got)
	}
	if got := tr.Apply(1, 5); got != 3 {
		t.Fatalf("second = %d", got)
	}
	if tr.Read() != 15 {
		t.Fatalf("state = %d", tr.Read())
	}
}

func TestTreeSingleThread(t *testing.T) {
	tr := NewFetchAdd(1, 10)
	for k := 0; k < 100; k++ {
		if got := tr.Apply(0, 1); got != uint64(10+k) {
			t.Fatalf("op %d = %d", k, got)
		}
	}
}

// TestTreeResponsesArePermutation: concurrent add(1) responses must form a
// permutation of 0..N-1 — combining must not lose, duplicate or misroute a
// response.
func TestTreeResponsesArePermutation(t *testing.T) {
	const n, per = 8, 300
	tr := NewFetchAdd(n, 0)
	seen := make([]bool, n*per)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for k := 0; k < per; k++ {
				local = append(local, tr.Apply(id, 1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, prev := range local {
				if prev >= n*per || seen[prev] {
					t.Errorf("bad/duplicate previous value %d", prev)
					return
				}
				seen[prev] = true
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Read(); got != n*per {
		t.Fatalf("state = %d, want %d", got, n*per)
	}
}

// TestTreeConcurrentMultiply: commutative product must be exact however the
// batches combined.
func TestTreeConcurrentMultiply(t *testing.T) {
	const n, per = 6, 200
	tr := NewFetchMultiply(n, 1)
	var want uint64 = 1
	for i := 0; i < n*per; i++ {
		want *= 3
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				tr.Apply(id, 3)
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Read(); got != want {
		t.Fatalf("product = %#x, want %#x", got, want)
	}
}

// TestTreePairSharingLeaf: the two threads of one leaf are the pair most
// likely to combine; hammer exactly that pair.
func TestTreePairSharingLeaf(t *testing.T) {
	const per = 2000
	tr := NewFetchAdd(2, 0)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				tr.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Read(); got != 2*per {
		t.Fatalf("state = %d, want %d", got, 2*per)
	}
}

func TestTreeOddThreadCount(t *testing.T) {
	const n, per = 5, 200
	tr := NewFetchAdd(n, 0)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				tr.Apply(id, 2)
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Read(); got != 2*n*per {
		t.Fatalf("state = %d, want %d", got, 2*n*per)
	}
}

func TestTreeBadNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFetchAdd(0, 0)
}

// TestTreeDeepPathsHeavy: many threads over a depth-3 tree for long runs —
// the configuration that exposed a distribution bug where a thread stopping
// as "second" returned without draining its own lower path, leaving nodes
// locked forever (regression test; fails by deadlock/timeout if the
// distribution loop is skipped).
func TestTreeDeepPathsHeavy(t *testing.T) {
	const n, per = 16, 3000
	tr := NewFetchAdd(n, 0)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				tr.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Read(); got != n*per {
		t.Fatalf("state = %d, want %d", got, n*per)
	}
}
