package trace

import (
	"testing"
	"time"
)

// TestWatchdogDetectsStalledPid is the acceptance test for the progress
// watchdog: pid 1 announces an operation that never commits (an artificially
// stalled / never-helped thread) while pid 0 keeps committing rounds. Once
// the rest of the system has committed more than the budget, Scan must
// report pid 1 — and only pid 1.
func TestWatchdogDetectsStalledPid(t *testing.T) {
	tr := New(2, WithSampleEvery(1))
	var reported []Stall
	wd := NewWatchdog(tr, 10, func(s Stall) { reported = append(reported, s) })

	tr.OpStart(1) // pid 1 announces and stalls forever

	if stalls := wd.Scan(); len(stalls) != 0 {
		t.Fatalf("first scan (arming) reported %v, want none", stalls)
	}

	// The rest of the system commits well past the budget.
	for i := 0; i < 25; i++ {
		t0 := tr.OpStart(0)
		tr.OpCommit(0, t0, 1, 1, 1)
	}

	stalls := wd.Scan()
	if len(stalls) != 1 {
		t.Fatalf("got %d stalls (%v), want 1", len(stalls), stalls)
	}
	s := stalls[0]
	if s.Pid != 1 || s.Pending != 1 {
		t.Fatalf("unexpected stall %+v", s)
	}
	if s.Rounds < 25 {
		t.Fatalf("stall rounds = %d, want >= 25", s.Rounds)
	}
	if len(reported) != 1 || reported[0].Pid != 1 {
		t.Fatalf("onStall reports = %v, want one for pid 1", reported)
	}

	// Re-scanning reports the ongoing stall but does not re-fire the callback.
	if stalls := wd.Scan(); len(stalls) != 1 {
		t.Fatalf("repeat scan got %v, want the ongoing stall", stalls)
	}
	if len(reported) != 1 {
		t.Fatalf("callback re-fired: %v", reported)
	}

	// The stalled operation finally commits: the stall clears.
	tr.OpCommit(1, 0, 1, 1, 1)
	if stalls := wd.Scan(); len(stalls) != 0 {
		t.Fatalf("after commit got %v, want none", stalls)
	}
}

func TestWatchdogIdleThreadsNotReported(t *testing.T) {
	tr := New(3, WithSampleEvery(1))
	wd := NewWatchdog(tr, 5, nil)
	// Pids 1 and 2 never announce anything; pid 0 runs alone.
	wd.Scan()
	for i := 0; i < 50; i++ {
		t0 := tr.OpStart(0)
		tr.OpCommit(0, t0, 1, 1, 1)
	}
	if stalls := wd.Scan(); len(stalls) != 0 {
		t.Fatalf("idle pids reported as stalled: %v", stalls)
	}
}

func TestWatchdogProgressResetsTracking(t *testing.T) {
	tr := New(2, WithSampleEvery(1))
	wd := NewWatchdog(tr, 8, nil)
	// pid 1 always has an op in flight but keeps committing — never a stall.
	tr.OpStart(1)
	wd.Scan()
	for i := 0; i < 30; i++ {
		t0 := tr.OpStart(0)
		tr.OpCommit(0, t0, 1, 1, 1)
		tr.OpCommit(1, 0, 1, 1, 1) // commit the in-flight op...
		tr.OpStart(1)              // ...and immediately announce the next
		if stalls := wd.Scan(); len(stalls) != 0 {
			t.Fatalf("progressing pid reported stalled: %v", stalls)
		}
	}
}

// TestWatchdogEpisodeCycles drives one pid through repeated
// stall → recover → stall cycles and pins the once-PER-EPISODE contract:
// every distinct episode fires the callback exactly once (not once ever,
// not once per scan), and the episode state — round count, wall-clock
// baseline — restarts fresh each time rather than accumulating across
// recoveries.
func TestWatchdogEpisodeCycles(t *testing.T) {
	tr := New(2, WithSampleEvery(1))
	var reported []Stall
	wd := NewWatchdog(tr, 10, func(s Stall) { reported = append(reported, s) })

	const cycles = 5
	for c := 0; c < cycles; c++ {
		tr.OpStart(1) // announce and stall
		wd.Scan()     // arm

		// The rest of the system commits past the budget; several scans
		// while the stall persists must report it but fire no extra
		// callbacks.
		for i := 0; i < 15; i++ {
			t0 := tr.OpStart(0)
			tr.OpCommit(0, t0, 1, 1, 1)
		}
		for scan := 0; scan < 3; scan++ {
			stalls := wd.Scan()
			if len(stalls) != 1 || stalls[0].Pid != 1 {
				t.Fatalf("cycle %d scan %d: stalls = %v, want pid 1", c, scan, stalls)
			}
		}
		if len(reported) != c+1 {
			t.Fatalf("cycle %d: %d callbacks, want %d (once per episode)", c, len(reported), c+1)
		}
		// Rounds count commits within THIS episode only: 15 plus at most
		// a few strays, never the cumulative total across cycles.
		if r := reported[c].Rounds; r < 11 || r > 20 {
			t.Fatalf("cycle %d: episode rounds = %d, want ~15 (fresh per episode)", c, r)
		}

		// The stalled op commits: the episode ends.
		tr.OpCommit(1, 0, 1, 1, 1)
		if stalls := wd.Scan(); len(stalls) != 0 {
			t.Fatalf("cycle %d: stall survived recovery: %v", c, stalls)
		}
	}
	if len(reported) != cycles {
		t.Fatalf("%d callbacks over %d episodes, want one each: %+v", len(reported), cycles, reported)
	}
}

func TestWatchdogBudgetFloorsAtN(t *testing.T) {
	tr := New(8)
	wd := NewWatchdog(tr, 1, nil)
	if wd.budget != 8 {
		t.Fatalf("budget = %d, want floored to n=8", wd.budget)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	tr := New(2, WithSampleEvery(1))
	fired := make(chan Stall, 1)
	wd := NewWatchdog(tr, 2, func(s Stall) {
		select {
		case fired <- s:
		default:
		}
	})
	tr.OpStart(1)
	wd.Start(time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		t0 := tr.OpStart(0)
		tr.OpCommit(0, t0, 1, 1, 1)
		select {
		case s := <-fired:
			if s.Pid != 1 {
				t.Fatalf("stall pid = %d, want 1", s.Pid)
			}
			wd.Stop()
			wd.Stop() // idempotent
			return
		case <-deadline:
			t.Fatal("watchdog goroutine never reported the stall")
		default:
		}
	}
}
