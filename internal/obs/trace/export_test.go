package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTrace records a small deterministic event mix on two pids.
func buildTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := New(2, WithSampleEvery(1))
	t0 := tr.OpStart(0)
	tr.Instant(0, KindCASFail, 0, 0)
	tr.OpCommit(0, t0, 3, 2, 7)
	t1 := tr.OpStart(1)
	tr.Rare(1, KindBackoffGrow, 128, 0)
	tr.OpServed(1, t1)
	tr.AnonInstant(KindHazardOverflow, 1, 0)
	return tr
}

func TestWriteChrome(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}

	var rounds, instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			if ev.Name == "round" {
				rounds++
				if ev.Tid != 0 {
					t.Fatalf("round event on tid %d, want 0", ev.Tid)
				}
				if deg, ok := ev.Args["degree"].(float64); !ok || deg != 3 {
					t.Fatalf("round degree arg = %v, want 3", ev.Args["degree"])
				}
				if act, ok := ev.Args["act"].(float64); !ok || act != 2 {
					t.Fatalf("round act arg = %v, want 2", ev.Args["act"])
				}
			}
		case "i":
			instants++
		}
	}
	if rounds != 1 {
		t.Fatalf("round events = %d, want 1", rounds)
	}
	if instants != 3 { // cas_fail + backoff_grow + hazard_overflow
		t.Fatalf("instant events = %d, want 3", instants)
	}
	if metas < 3 { // process_name + at least pid 0, pid 1 thread names
		t.Fatalf("metadata events = %d, want >= 3", metas)
	}
}

func TestWriteText(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"round", "served", "cas_fail", "backoff_grow", "hazard_overflow", "degree=3", "window=128", "p00", "p01", "p??"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no events)") {
		t.Fatalf("empty dump = %q", buf.String())
	}
}

func TestTail(t *testing.T) {
	evs := make([]Event, 10)
	for i := range evs {
		evs[i].Seq = uint64(i)
	}
	if got := Tail(evs, 3); len(got) != 3 || got[0].Seq != 7 {
		t.Fatalf("Tail(10, 3) = %v", got)
	}
	if got := Tail(evs, 0); len(got) != 10 {
		t.Fatalf("Tail(10, 0) trimmed to %d", len(got))
	}
	if got := Tail(evs, 50); len(got) != 10 {
		t.Fatalf("Tail(10, 50) = %d events", len(got))
	}
}
