package queue

import "repro/internal/flatcombining"

// FCQueue is a linked queue over flat combining, the strongest baseline of
// Figure 3 (right). A single combiner serves both enqueues and dequeues —
// the lack of enqueue/dequeue parallelism is exactly what SimQueue's two
// Sim instances exploit against it.
type FCQueue[V any] struct {
	fc      *flatcombining.FC[queueOp[V], deqRes[V]]
	handles []*flatcombining.Handle[queueOp[V], deqRes[V]]
}

type queueOp[V any] struct {
	enq bool
	v   V
}

// NewFCQueue returns an empty flat-combining queue for n processes with the
// given combining parameters (0,0 for defaults).
func NewFCQueue[V any](n, rounds, cleanupEvery int) *FCQueue[V] {
	sentinel := &qnode[V]{}
	head, tail := sentinel, sentinel
	apply := func(_ int, op queueOp[V]) deqRes[V] {
		if op.enq {
			n := &qnode[V]{v: op.v}
			tail.next.Store(n)
			tail = n
			return deqRes[V]{}
		}
		next := head.next.Load()
		if next == nil {
			return deqRes[V]{}
		}
		head = next
		return deqRes[V]{v: next.v, ok: true}
	}
	q := &FCQueue[V]{
		fc:      flatcombining.New(apply, rounds, cleanupEvery),
		handles: make([]*flatcombining.Handle[queueOp[V], deqRes[V]], n),
	}
	for i := range q.handles {
		q.handles[i] = q.fc.NewHandle(i)
	}
	return q
}

// Enqueue appends v.
func (q *FCQueue[V]) Enqueue(id int, v V) {
	q.handles[id].Apply(queueOp[V]{enq: true, v: v})
}

// Dequeue removes the front value; ok is false if empty.
func (q *FCQueue[V]) Dequeue(id int) (V, bool) {
	r := q.handles[id].Apply(queueOp[V]{})
	return r.v, r.ok
}

// Stats exposes the flat-combining statistics.
func (q *FCQueue[V]) Stats() flatcombining.Stats { return q.fc.Stats() }

// Name implements Interface.
func (q *FCQueue[V]) Name() string { return "FlatCombining" }
