package snapshot

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotSingleWordBasics(t *testing.T) {
	s := New(2, 8, 16) // 2×24 = 48 bits -> single word
	if !s.Single() || s.Words() != 1 {
		t.Fatalf("geometry: single=%v words=%d", s.Single(), s.Words())
	}
	w0, w1 := s.Writer(0), s.Writer(1)
	w0.Update(10)
	w1.Update(20)
	got := s.Scan()
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("Scan = %v", got)
	}
}

func TestSnapshotMultiWordBasics(t *testing.T) {
	s := New(8, 16, 16) // 8×32 bits -> 4 words
	if s.Single() {
		t.Fatal("expected multi-word object")
	}
	for i := 0; i < 8; i++ {
		s.Writer(i).Update(uint64(i * 11))
	}
	got := s.Scan()
	for i := 0; i < 8; i++ {
		if got[i] != uint64(i*11) {
			t.Fatalf("Scan = %v", got)
		}
	}
}

func TestSnapshotValueTruncation(t *testing.T) {
	s := New(1, 4, 8)
	w := s.Writer(0)
	w.Update(0xFF) // only 4 bits kept
	if got := s.Scan()[0]; got != 0xF {
		t.Fatalf("Scan = %#x", got)
	}
}

func TestSnapshotSameValueRewriteVisible(t *testing.T) {
	// The embedded counter must change even when the value does not, so a
	// concurrent double-collect cannot mistake an active writer for silence.
	s := New(2, 8, 8)
	w := s.Writer(0)
	w.Update(5)
	before := s.col.Collect()[0]
	w.Update(5)
	after := s.col.Collect()[0]
	if before == after {
		t.Fatal("rewriting the same value left the chunk unchanged")
	}
	if got := s.Scan()[0]; got != 5 {
		t.Fatalf("Scan = %d", got)
	}
}

func TestSnapshotBadWidthsPanic(t *testing.T) {
	for _, c := range [][2]int{{0, 8}, {8, 0x41 - 8 + 1}, {60, 8}, {-1, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(4,%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(4, c[0], c[1])
		}()
	}
}

func TestSnapshotDefaultSeqBits(t *testing.T) {
	s := New(2, 8, 0)
	if s.seqBits != DefaultSeqBits {
		t.Fatalf("seqBits = %d", s.seqBits)
	}
}

// TestSnapshotScanNeverTorn: writers keep pairs of components consistent
// (component 2i+1 = component 2i + 1); every scan must observe the
// invariant — the atomicity property that separates a snapshot from a
// plain collect. Run in both the single-word and multi-word regimes.
func TestSnapshotScanNeverTorn(t *testing.T) {
	cases := []struct {
		name              string
		writers           int
		dataBits, seqBits int
	}{
		{"single-word", 1, 16, 16},     // 2 components × 32 bits
		{"multi-word", 4, 16, 16},      // 8 components × 32 bits -> 4 words
		{"multi-word-wide", 3, 24, 16}, // 6 components × 40 bits -> 6 words
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			nComp := c.writers * 2
			s := New(nComp, c.dataBits, c.seqBits)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < c.writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					a, b := s.Writer(2*w), s.Writer(2*w+1)
					for k := uint64(0); !stop.Load(); k++ {
						// The PAIR (a,b) is not atomic — only each component
						// is. Writers publish a then b; scans may see a
						// fresh a with a stale b, but never a torn single
						// component and never b > a.
						a.Update(k + 1)
						b.Update(k + 2)
					}
				}(w)
			}
			for i := 0; i < 3000; i++ {
				vals := s.Scan()
				for w := 0; w < c.writers; w++ {
					// The writer keeps the invariant b ∈ {a, a+1} at every
					// instant; a linearizable scan must observe it.
					a, b := vals[2*w], vals[2*w+1]
					if b != a && b != a+1 {
						t.Errorf("torn scan: a=%d b=%d (writer %d)", a, b, w)
					}
				}
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}

// TestSnapshotConcurrentMonotonicScans: each writer publishes an increasing
// counter; per component, successive scans by one scanner must never go
// backwards (scans are linearizable, hence monotone per single-writer
// component).
func TestSnapshotConcurrentMonotonicScans(t *testing.T) {
	const writers = 6
	s := New(writers, 24, 16) // 40-bit chunks -> 6 words (multi-word path)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := s.Writer(w)
			for k := uint64(1); !stop.Load(); k++ {
				wr.Update(k)
			}
		}(w)
	}
	prev := make([]uint64, writers)
	for i := 0; i < 3000; i++ {
		vals := s.Scan()
		for w := 0; w < writers; w++ {
			if vals[w] < prev[w] {
				t.Errorf("component %d went backwards: %d after %d", w, vals[w], prev[w])
			}
			prev[w] = vals[w]
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestSnapshotQuiescentAgreement(t *testing.T) {
	const writers, per = 4, 500
	s := New(writers, 16, 16)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := s.Writer(w)
			for k := 1; k <= per; k++ {
				wr.Update(uint64(k))
			}
		}(w)
	}
	wg.Wait()
	vals := s.Scan()
	for w := 0; w < writers; w++ {
		if vals[w] != per {
			t.Fatalf("component %d = %d, want %d", w, vals[w], per)
		}
	}
}
