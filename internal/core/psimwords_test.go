package core

import (
	"sync"
	"testing"

	"repro/internal/check"
)

// wideCounter builds a PSimWords object with `words` counter cells; each
// operation adds arg to cell (arg mod words) and returns that cell's
// previous value.
func wideCounter(n, c, words int) *PSimWords {
	return NewPSimWords(n, c, make([]uint64, words), func(st []uint64, _ int, arg uint64) uint64 {
		cell := arg % uint64(len(st))
		prev := st[cell]
		st[cell] += 1
		return prev
	})
}

func TestPSimWordsSequential(t *testing.T) {
	u := wideCounter(1, 2, 4)
	if got := u.Apply(0, 2); got != 0 {
		t.Fatalf("first = %d", got)
	}
	if got := u.Apply(0, 2); got != 1 {
		t.Fatalf("second = %d", got)
	}
	st := make([]uint64, 4)
	u.ReadInto(st)
	if st[2] != 2 || st[0] != 0 {
		t.Fatalf("state = %v", st)
	}
}

func TestPSimWordsValidation(t *testing.T) {
	assertPanics(t, func() { NewPSimWords(0, 2, []uint64{0}, nil) })
	assertPanics(t, func() { NewPSimWords(2, 1, []uint64{0}, nil) })
	assertPanics(t, func() { NewPSimWords(2, 2, nil, nil) })
	assertPanics(t, func() {
		NewPSimWords(8192, 16, []uint64{0}, nil) // pool index overflow
	})
}

func TestPSimWordsConcurrentSums(t *testing.T) {
	const n, per, words = 8, 300, 8
	u := wideCounter(n, 2, words)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, uint64(k))
			}
		}(i)
	}
	wg.Wait()
	st := make([]uint64, words)
	u.ReadInto(st)
	var total uint64
	for _, v := range st {
		total += v
	}
	if total != n*per {
		t.Fatalf("total = %d, want %d", total, n*per)
	}
}

// TestPSimWordsResponsesPermutationPerCell: per cell, the previous values
// returned must form a permutation of 0..hits-1 (exactly-once on a
// multi-word state).
func TestPSimWordsResponsesPermutationPerCell(t *testing.T) {
	const n, per = 6, 200
	u := NewPSimWords(n, 2, make([]uint64, 2), func(st []uint64, _ int, arg uint64) uint64 {
		prev := st[arg%2]
		st[arg%2]++
		return prev
	})
	var mu sync.Mutex
	seen := [2]map[uint64]bool{{}, {}}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			type rec struct{ cell, prev uint64 }
			local := make([]rec, 0, per)
			for k := 0; k < per; k++ {
				cell := uint64(k % 2)
				local = append(local, rec{cell, u.Apply(id, cell)})
			}
			mu.Lock()
			defer mu.Unlock()
			for _, r := range local {
				if seen[r.cell][r.prev] {
					t.Errorf("cell %d: previous value %d duplicated", r.cell, r.prev)
					return
				}
				seen[r.cell][r.prev] = true
			}
		}(i)
	}
	wg.Wait()
}

func TestPSimWordsLinearizable(t *testing.T) {
	const n, per, rounds = 3, 4, 15
	for r := 0; r < rounds; r++ {
		u := NewPSimWords(n, 2, []uint64{0, 0}, func(st []uint64, _ int, arg uint64) uint64 {
			prev := st[0]
			st[0] += arg
			st[1] ^= prev // second word exercises multi-word copies
			return prev
		})
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					slot := rec.Invoke(id, check.OpAdd, 1)
					prev := u.Apply(id, 1)
					rec.Return(slot, prev, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

func TestPSimWordsStatsAndAccessors(t *testing.T) {
	u := wideCounter(3, 2, 5)
	if u.N() != 3 || u.StateWords() != 5 {
		t.Fatalf("N=%d StateWords=%d", u.N(), u.StateWords())
	}
	u.Apply(0, 1)
	u.Apply(1, 1)
	s := u.Stats()
	if s.Ops != 2 || s.Combined != 2 {
		t.Fatalf("stats: %+v", s)
	}
	u.ResetStats()
	if u.Stats().Ops != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestPSimWordsSmallPoolStress(t *testing.T) {
	const n, per = 8, 400
	u := NewPSimWords(n, 2, make([]uint64, 16), func(st []uint64, _ int, arg uint64) uint64 {
		prev := st[0]
		st[0] += arg
		st[15] = st[0] // keep the far word in play
		return prev
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	st := make([]uint64, 16)
	u.ReadInto(st)
	if st[0] != n*per || st[15] != n*per {
		t.Fatalf("state = %v", st[:2])
	}
}
