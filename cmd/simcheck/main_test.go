package main

import "testing"

func TestCheckStackStress(t *testing.T) {
	for _, impl := range []string{"sim", "treiber", "elimination", "clh", "fc"} {
		if !checkStack(impl, "stress", 4, 200, 0, 1) {
			t.Fatalf("stack %s failed stress check", impl)
		}
	}
}

func TestCheckStackLinearize(t *testing.T) {
	if !checkStack("sim", "linearize", 3, 0, 10, 1) {
		t.Fatal("SimStack failed linearizability check")
	}
}

func TestCheckStackBatched(t *testing.T) {
	if !checkStack("sim", "stress", 4, 200, 0, 4) {
		t.Fatal("SimStack failed batched stress check")
	}
	if !checkStack("sim", "linearize", 3, 0, 10, 4) {
		t.Fatal("SimStack failed batched linearizability check")
	}
}

func TestCheckQueueStress(t *testing.T) {
	for _, impl := range []string{"sim", "ms", "twolock", "fc"} {
		if !checkQueue(impl, "stress", 4, 200, 0, 1) {
			t.Fatalf("queue %s failed stress check", impl)
		}
	}
}

func TestCheckQueueLinearize(t *testing.T) {
	if !checkQueue("ms", "linearize", 3, 0, 10, 1) {
		t.Fatal("MS queue failed linearizability check")
	}
}

func TestCheckQueueBatched(t *testing.T) {
	if !checkQueue("sim", "stress", 4, 200, 0, 4) {
		t.Fatal("SimQueue failed batched stress check")
	}
	if !checkQueue("sim", "linearize", 3, 0, 10, 4) {
		t.Fatal("SimQueue failed batched linearizability check")
	}
}

func TestCheckFMul(t *testing.T) {
	for _, impl := range []string{"psim", "pool", "lockfree", "combtree"} {
		if !checkFMul(impl, "stress", 4, 200, 0, 1) {
			t.Fatalf("fmul %s failed stress check", impl)
		}
	}
	if !checkFMul("psim", "linearize", 3, 0, 10, 1) {
		t.Fatal("P-Sim failed linearizability check")
	}
}

func TestCheckFMulBatched(t *testing.T) {
	for _, impl := range []string{"psim", "pool"} {
		if !checkFMul(impl, "stress", 4, 200, 0, 4) {
			t.Fatalf("fmul %s failed batched stress check", impl)
		}
		if !checkFMul(impl, "linearize", 3, 0, 10, 4) {
			t.Fatalf("fmul %s failed batched linearizability check", impl)
		}
	}
}

func TestCheckMap(t *testing.T) {
	if !checkMap("stress", 4, 200, 0, 1) {
		t.Fatal("sharded map failed stress check")
	}
	if !checkMap("stress", 4, 200, 0, 4) {
		t.Fatal("sharded map failed batched stress check")
	}
	if !checkMap("linearize", 3, 0, 10, 4) {
		t.Fatal("sharded map failed batched per-key linearizability check")
	}
}
