package core

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/xatomic"
)

// faaSim builds a theoretical-Sim fetch-and-add object: opcode = delta.
func faaSim(n, d int) *Sim[uint64, uint64] {
	return NewSim(n, d, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		return st + op, st
	})
}

func TestSimSequential(t *testing.T) {
	u := faaSim(1, 8)
	if got := u.ApplyOp(0, 5); got != 0 {
		t.Fatalf("first op returned %d", got)
	}
	if got := u.ApplyOp(0, 3); got != 5 {
		t.Fatalf("second op returned %d", got)
	}
	if u.Read() != 8 {
		t.Fatalf("state = %d", u.Read())
	}
}

func TestSimOpcodeValidation(t *testing.T) {
	u := faaSim(2, 8)
	assertPanics(t, func() { u.ApplyOp(0, OpBottom) })
	assertPanics(t, func() { u.ApplyOp(0, 256) }) // 9 bits into d=8
	u.ApplyOp(0, 255)                             // max opcode fine
}

func TestSimBadNPanics(t *testing.T) {
	assertPanics(t, func() { faaSim(0, 8) })
}

func TestSimGeometry(t *testing.T) {
	if u := faaSim(8, 8); u.CollectWords() != 1 || u.N() != 8 {
		t.Fatalf("words=%d n=%d", u.CollectWords(), u.N())
	}
	if u := faaSim(16, 8); u.CollectWords() != 2 {
		t.Fatalf("words=%d, want 2 (nd=128)", u.CollectWords())
	}
}

// TestSimResponsesArePermutation mirrors the P-Sim permutation test for the
// theoretical construction, in both the single-word and the multi-word
// collect regimes.
func TestSimResponsesArePermutation(t *testing.T) {
	cases := []struct {
		name string
		n, d int
	}{
		{"single-word", 6, 8},
		{"multi-word", 12, 8}, // nd = 96 > 64: non-linearizable collect path
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const per = 150
			u := faaSim(c.n, c.d)
			total := c.n * per
			seen := make([]bool, total)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := 0; i < c.n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					local := make([]uint64, 0, per)
					for k := 0; k < per; k++ {
						local = append(local, u.ApplyOp(id, 1))
					}
					mu.Lock()
					defer mu.Unlock()
					for _, prev := range local {
						if prev >= uint64(total) || seen[prev] {
							t.Errorf("bad/duplicate previous value %d", prev)
							return
						}
						seen[prev] = true
					}
				}(i)
			}
			wg.Wait()
			if got := u.Read(); got != uint64(total) {
				t.Fatalf("final = %d, want %d", got, total)
			}
		})
	}
}

func TestSimLinearizableHistories(t *testing.T) {
	const n, per, rounds = 3, 4, 20
	for r := 0; r < rounds; r++ {
		u := faaSim(n, 8)
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					slot := rec.Invoke(id, check.OpAdd, 2)
					prev := u.ApplyOp(id, 2)
					rec.Return(slot, prev, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

// TestSimAccessCountConstant: the headline Theorem 3.1 property — shared
// accesses per op are a constant independent of n while the collect stays
// single-word (8 accesses: 2 updates + 2×(LL + 1-word collect + SC), plus 1
// for the final rvals read in our accounting).
func TestSimAccessCountConstant(t *testing.T) {
	perOp := func(n int) float64 {
		u := faaSim(n, 4) // nd ≤ 64 for n ≤ 16
		c := xatomic.NewAccessCounter(n)
		u.SetAccessCounter(c)
		const per = 50
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					u.ApplyOp(id, 1)
				}
			}(i)
		}
		wg.Wait()
		return float64(c.Total()) / float64(n*per)
	}
	a1, a4, a16 := perOp(1), perOp(4), perOp(16)
	if a1 != a4 || a4 != a16 {
		t.Fatalf("accesses/op varies with n: %v %v %v (must be constant)", a1, a4, a16)
	}
	if a1 != 15 { // 2 updates + 2 attempts×(1 LL + 1 collect + 1 SC)×2 rounds + 1 read
		t.Fatalf("accesses/op = %v, want the constant 15", a1)
	}
}

// TestSimAccessCountMultiWord: with nd > 64 the cost per op grows by exactly
// 4·(extra collect words) — the ⌈nd/b⌉ term of Theorem 3.1.
func TestSimAccessCountMultiWord(t *testing.T) {
	u := faaSim(32, 8) // nd = 256 -> 4 words
	c := xatomic.NewAccessCounter(32)
	u.SetAccessCounter(c)
	u.ApplyOp(0, 1)
	// 2 updates + 4 attempt-rounds × (1 LL + 4 collect + 1 SC) + 1 read
	want := uint64(2 + 4*6 + 1)
	if got := c.Total(); got != want {
		t.Fatalf("accesses = %d, want %d", got, want)
	}
}

func TestSimStatsCombined(t *testing.T) {
	const n, per = 4, 100
	u := faaSim(n, 8)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.ApplyOp(id, 1)
			}
		}(i)
	}
	wg.Wait()
	s := u.Stats()
	if s.Ops != n*per {
		t.Fatalf("Ops = %d", s.Ops)
	}
	if s.Combined != n*per {
		t.Fatalf("Combined = %d, want %d (exactly-once)", s.Combined, n*per)
	}
	u.ResetStats()
	if u.Stats().Ops != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

// TestSimRepeatedSameOpcode: the same opcode reused back-to-back by the same
// process must be applied once per request (the ⊥ alternation keeps requests
// distinguishable even with identical opcodes).
func TestSimRepeatedSameOpcode(t *testing.T) {
	u := faaSim(2, 8)
	for k := 0; k < 50; k++ {
		if got := u.ApplyOp(0, 1); got != uint64(k) {
			t.Fatalf("op %d returned %d", k, got)
		}
	}
}

func TestSimFunctionalStateNotAliased(t *testing.T) {
	// A pure-functional apply on a slice-backed state: each op must build a
	// new slice; sharing would corrupt earlier states.
	u := NewSim(2, 4, []int{0}, func(st []int, _ int, op uint64) ([]int, uint64) {
		ns := append([]int(nil), st...)
		ns[0] += int(op)
		return ns, uint64(st[0])
	})
	u.ApplyOp(0, 1)
	first := u.Read()
	u.ApplyOp(1, 2)
	if first[0] != 1 {
		t.Fatalf("earlier state mutated: %v", first)
	}
	if got := u.Read(); got[0] != 3 {
		t.Fatalf("state = %v", got)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
