package v2

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
)

// h builds one history operation.
func h(thread int, op string, arg, ret uint64, ok bool, inv, ret2 int64) check.Operation {
	return check.Operation{Thread: thread, Op: op, Arg: arg, Ret: ret, RetOK: ok, Invoke: inv, Return: ret2}
}

// --- Simulate: agreement with the search on hand-written histories ---

// agree cross-checks the frontier engine against the Wing–Gong search.
func agree(t *testing.T, ops []check.Operation, spec check.Spec, wantLin bool) {
	t.Helper()
	serr := Simulate(ops, spec)
	if serr != nil && !Rejected(serr) {
		t.Fatalf("forward engine limitation: %v", serr)
	}
	if got := serr == nil; got != wantLin {
		t.Fatalf("forward engine: linearizable=%v, want %v (err: %v)", got, wantLin, serr)
	}
	ok, err := check.Linearizable(ops, spec)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if ok != wantLin {
		t.Fatalf("search disagrees with expectation: linearizable=%v, want %v", ok, wantLin)
	}
}

func TestSimulateSequentialStack(t *testing.T) {
	agree(t, []check.Operation{
		h(0, check.OpPush, 1, 0, false, 1, 2),
		h(0, check.OpPush, 2, 0, false, 3, 4),
		h(0, check.OpPop, 0, 2, true, 5, 6),
		h(0, check.OpPop, 0, 1, true, 7, 8),
		h(0, check.OpPop, 0, 0, false, 9, 10),
	}, check.StackSpec(), true)
}

func TestSimulateRejectsWrongPopOrder(t *testing.T) {
	agree(t, []check.Operation{
		h(0, check.OpPush, 1, 0, false, 1, 2),
		h(0, check.OpPush, 2, 0, false, 3, 4),
		h(0, check.OpPop, 0, 1, true, 5, 6), // LIFO says 2 first
	}, check.StackSpec(), false)
}

func TestSimulateConcurrentOverlapIsPermissive(t *testing.T) {
	// Two overlapping pushes; pops may see either order.
	for _, first := range []uint64{1, 2} {
		second := uint64(3) - first
		agree(t, []check.Operation{
			h(0, check.OpPush, 1, 0, false, 1, 4),
			h(1, check.OpPush, 2, 0, false, 2, 5),
			h(0, check.OpPop, 0, second, true, 6, 7),
			h(0, check.OpPop, 0, first, true, 8, 9),
		}, check.StackSpec(), true)
	}
}

func TestSimulateRespectsRealTimeOrder(t *testing.T) {
	// push(1) completes before push(2) begins, yet pops claim 1 on top.
	agree(t, []check.Operation{
		h(0, check.OpPush, 1, 0, false, 1, 2),
		h(1, check.OpPush, 2, 0, false, 3, 4),
		h(0, check.OpPop, 0, 1, true, 5, 6),
		h(0, check.OpPop, 0, 2, true, 7, 8),
	}, check.StackSpec(), false)
}

func TestSimulateEmptyPopWindow(t *testing.T) {
	// The empty pop overlaps the push, so it may linearize first.
	agree(t, []check.Operation{
		h(0, check.OpPush, 7, 0, false, 1, 4),
		h(1, check.OpPop, 0, 0, false, 2, 3),
		h(1, check.OpPop, 0, 7, true, 5, 6),
	}, check.StackSpec(), true)
	// Here it cannot: the push completed first.
	agree(t, []check.Operation{
		h(0, check.OpPush, 7, 0, false, 1, 2),
		h(1, check.OpPop, 0, 0, false, 3, 4),
		h(1, check.OpPop, 0, 7, true, 5, 6),
	}, check.StackSpec(), false)
}

func TestSimulateCounterAndRegister(t *testing.T) {
	agree(t, []check.Operation{
		h(0, check.OpAdd, 5, 0, false, 1, 4),
		h(1, check.OpAdd, 3, 5, false, 2, 5),
		h(0, check.OpRead, 0, 8, false, 6, 7),
	}, check.CounterSpec(0), true)
	agree(t, []check.Operation{
		h(0, check.OpWrite, 9, 0, false, 1, 2),
		h(1, check.OpRead, 0, 0, false, 3, 4), // stale read after write returned
	}, check.RegisterSpec(0), false)
}

func TestSimulateLongHistoryPastSearchLimit(t *testing.T) {
	// 2000 sequential counter adds: far beyond the search's 64-op cap.
	var ops []check.Operation
	sum := uint64(0)
	for i := 0; i < 2000; i++ {
		ops = append(ops, h(i%4, check.OpAdd, 1, sum, false, int64(2*i+1), int64(2*i+2)))
		sum++
	}
	if err := Simulate(ops, check.CounterSpec(0)); err != nil {
		t.Fatalf("forward engine on 2000 ops: %v", err)
	}
	if _, err := check.Linearizable(ops, check.CounterSpec(0)); !errors.Is(err, check.ErrTooLarge) {
		t.Fatalf("search should refuse 2000 ops, got %v", err)
	}
}

func TestSimulateTooWide(t *testing.T) {
	// 65 overlapping adds whose recorded returns force a single
	// linearization chain (so the frontier stays small and the engine
	// genuinely runs out of open-op slots rather than frontier room).
	var ops []check.Operation
	for i := 0; i < 65; i++ {
		ops = append(ops, h(i, check.OpAdd, 1, uint64(i), false, int64(i+1), 1000+int64(i)))
	}
	err := Simulate(ops, check.CounterSpec(0))
	if !errors.Is(err, ErrTooWide) {
		t.Fatalf("got %v, want ErrTooWide", err)
	}
	if Rejected(err) {
		t.Fatal("width limit must not read as a rejection")
	}
}

func TestSimulateFrontierLimit(t *testing.T) {
	// Ten overlapping pushes of distinct values: every subset in every
	// order is a distinct stack state, so the frontier explodes past a tiny
	// cap.
	var ops []check.Operation
	for i := 0; i < 10; i++ {
		ops = append(ops, h(i, check.OpPush, uint64(i+1), 0, false, 1, 100))
	}
	err := Simulate(ops, check.StackSpec(), WithMaxFrontier(16))
	if !errors.Is(err, ErrFrontierLimit) {
		t.Fatalf("got %v, want ErrFrontierLimit", err)
	}
}

func TestSimulateMalformedWindow(t *testing.T) {
	err := Simulate([]check.Operation{h(0, check.OpAdd, 1, 0, false, 5, 5)}, check.CounterSpec(0))
	if err == nil || Rejected(err) {
		t.Fatalf("empty window should be a non-verdict error, got %v", err)
	}
}

// --- ForwardQueue ---

func TestForwardQueueSequential(t *testing.T) {
	if err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(0, check.OpEnqueue, 2, 0, false, 3, 4),
		h(0, check.OpDequeue, 0, 1, true, 5, 6),
		h(0, check.OpDequeue, 0, 2, true, 7, 8),
		h(0, check.OpDequeue, 0, 0, false, 9, 10),
	}); err != nil {
		t.Fatalf("good FIFO history rejected: %v", err)
	}
}

func TestForwardQueueVFresh(t *testing.T) {
	err := ForwardQueue([]check.Operation{
		h(0, check.OpDequeue, 0, 42, true, 1, 2),
	})
	if !Rejected(err) {
		t.Fatalf("dequeue of never-enqueued value: got %v", err)
	}
}

func TestForwardQueueVRepet(t *testing.T) {
	err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 5, 0, false, 1, 2),
		h(0, check.OpDequeue, 0, 5, true, 3, 4),
		h(1, check.OpDequeue, 0, 5, true, 5, 6),
	})
	if !Rejected(err) {
		t.Fatalf("value dequeued twice: got %v", err)
	}
}

func TestForwardQueuePairTiming(t *testing.T) {
	err := ForwardQueue([]check.Operation{
		h(0, check.OpDequeue, 0, 5, true, 1, 2),
		h(1, check.OpEnqueue, 5, 0, false, 3, 4), // enqueue begins after dequeue ended
	})
	if !Rejected(err) {
		t.Fatalf("dequeue before its enqueue: got %v", err)
	}
}

func TestForwardQueueVOrd(t *testing.T) {
	// enq(1) ≺ enq(2) in real time, both dequeued, but in reverse order by
	// non-overlapping dequeues.
	err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(0, check.OpEnqueue, 2, 0, false, 3, 4),
		h(1, check.OpDequeue, 0, 2, true, 5, 6),
		h(1, check.OpDequeue, 0, 1, true, 7, 8),
	})
	if !Rejected(err) {
		t.Fatalf("FIFO inversion: got %v", err)
	}
	// Overlapping enqueues may be dequeued in either order.
	if err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 4),
		h(1, check.OpEnqueue, 2, 0, false, 2, 5),
		h(1, check.OpDequeue, 0, 2, true, 6, 7),
		h(1, check.OpDequeue, 0, 1, true, 8, 9),
	}); err != nil {
		t.Fatalf("concurrent enqueues rejected: %v", err)
	}
}

func TestForwardQueueVOrdUndequeuedBlocker(t *testing.T) {
	// 1 is enqueued first and never dequeued; dequeuing the later value 2
	// is only legal while... actually it is illegal: a linearization must
	// dequeue 1 before 2. The undequeued value's dInv = ∞ triggers VOrd.
	err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(0, check.OpEnqueue, 2, 0, false, 3, 4),
		h(1, check.OpDequeue, 0, 2, true, 5, 6),
	})
	if !Rejected(err) {
		t.Fatalf("dequeue past an undequeued head: got %v", err)
	}
}

func TestForwardQueueEmptyDequeue(t *testing.T) {
	// Legal: the empty dequeue overlaps the enqueue.
	if err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 4),
		h(1, check.OpDequeue, 0, 0, false, 2, 3),
		h(1, check.OpDequeue, 0, 1, true, 5, 6),
	}); err != nil {
		t.Fatalf("overlapping empty dequeue rejected: %v", err)
	}
	// Illegal: the queue certainly holds 1 for the whole window.
	err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(1, check.OpDequeue, 0, 0, false, 3, 4),
		h(1, check.OpDequeue, 0, 1, true, 5, 6),
	})
	if !Rejected(err) {
		t.Fatalf("empty dequeue on a non-empty queue: got %v", err)
	}
}

func TestForwardQueueEmptyDequeueNeedsIntervalCover(t *testing.T) {
	// No SINGLE value blocks the whole window of the empty dequeue, but
	// the union of two blocking intervals does: x=1 occupies (2, 5) and
	// y=2 occupies (4, ∞); the empty dequeue runs over (3, 8) ⊂ (2, ∞).
	// A single-witness check would wrongly accept this history.
	err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2), // retE(1)=2
		h(0, check.OpEnqueue, 2, 0, false, 1, 4), // retE(2)=4
		h(1, check.OpDequeue, 0, 0, false, 3, 8), // empty over (3,8)
		h(2, check.OpDequeue, 0, 1, true, 5, 7),  // invD(1)=5
	})
	if !Rejected(err) {
		t.Fatalf("interval-cover empty violation: got %v", err)
	}
	// Cross-check with the search engine: it must agree.
	ok, serr := check.Linearizable([]check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(0, check.OpEnqueue, 2, 0, false, 1, 4),
		h(1, check.OpDequeue, 0, 0, false, 3, 8),
		h(2, check.OpDequeue, 0, 1, true, 5, 7),
	}, check.QueueSpec())
	if serr != nil || ok {
		t.Fatalf("search: (%v, %v), want rejection", ok, serr)
	}
}

func TestForwardQueueNotDifferentiated(t *testing.T) {
	err := ForwardQueue([]check.Operation{
		h(0, check.OpEnqueue, 7, 0, false, 1, 2),
		h(1, check.OpEnqueue, 7, 0, false, 3, 4),
	})
	if !errors.Is(err, ErrNotDifferentiated) {
		t.Fatalf("got %v, want ErrNotDifferentiated", err)
	}
	if Rejected(err) {
		t.Fatal("ErrNotDifferentiated must not read as a rejection")
	}
}

func TestForwardQueueLongHistory(t *testing.T) {
	// 5000 values through a FIFO with two interleaved lanes.
	var ops []check.Operation
	ts := int64(0)
	tick := func() int64 { ts++; return ts }
	for i := 0; i < 5000; i++ {
		v := uint64(i + 1)
		ops = append(ops, h(0, check.OpEnqueue, v, 0, false, tick(), tick()))
	}
	for i := 0; i < 5000; i++ {
		v := uint64(i + 1)
		ops = append(ops, h(1, check.OpDequeue, 0, v, true, tick(), tick()))
	}
	if err := ForwardQueue(ops); err != nil {
		t.Fatalf("long FIFO history rejected: %v", err)
	}
}

// --- differential fuzz over random small histories (deterministic seed) ---

// genQueueHistory produces a random complete queue history by simulating a
// (possibly buggy) queue over random interleavings.
func genQueueHistory(rng *rand.Rand, nOps int, lifo bool) []check.Operation {
	type open struct {
		slot int
		deq  bool
	}
	var (
		ops   []check.Operation
		queue []uint64
		opens []open
		ts    int64
		next  uint64 = 1
	)
	tick := func() int64 { ts++; return ts }
	for len(ops) < nOps || len(opens) > 0 {
		if len(opens) > 0 && (len(ops) >= nOps || rng.Intn(2) == 0) {
			// close a random open op
			i := rng.Intn(len(opens))
			o := opens[i]
			opens = append(opens[:i], opens[i+1:]...)
			if o.deq {
				if len(queue) == 0 {
					ops[o.slot].RetOK = false
				} else {
					idx := 0
					if lifo {
						idx = len(queue) - 1 // bug: LIFO service
					}
					ops[o.slot].Ret = queue[idx]
					ops[o.slot].RetOK = true
					queue = append(queue[:idx], queue[idx+1:]...)
				}
			} else {
				queue = append(queue, ops[o.slot].Arg)
			}
			ops[o.slot].Return = tick()
			continue
		}
		// open a new op
		deq := rng.Intn(2) == 0
		op := check.Operation{Thread: rng.Intn(4), Invoke: tick()}
		if deq {
			op.Op = check.OpDequeue
		} else {
			op.Op = check.OpEnqueue
			op.Arg = next
			next++
		}
		ops = append(ops, op)
		opens = append(opens, open{slot: len(ops) - 1, deq: deq})
	}
	return ops
}

// Note: the linearization point of this generator's operations is the
// CLOSE event, which always lies inside the recorded window, so fair
// histories are linearizable by construction; lifo histories usually are
// not. Either way both engines must agree — that is what's asserted.
func TestForwardQueueAgreesWithSearchOnRandomHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		lifo := trial%2 == 1
		ops := genQueueHistory(rng, 10+rng.Intn(8), lifo)
		if len(ops) > 64 {
			continue
		}
		ferr := ForwardQueue(ops)
		if ferr != nil && !Rejected(ferr) {
			t.Fatalf("trial %d: queue checker limitation: %v\n%s", trial, ferr, FormatHistory(ops))
		}
		ok, serr := check.Linearizable(ops, check.QueueSpec())
		if serr != nil {
			t.Fatalf("trial %d: search: %v", trial, serr)
		}
		if ok != (ferr == nil) {
			t.Fatalf("trial %d: search=%v forward=%v\nhistory:\n%s", trial, ok, ferr, FormatHistory(ops))
		}
		// The frontier engine must agree too — except where many
		// concurrent distinct-value enqueues blow the frontier (the very
		// case ForwardQueue exists for), which is a declared limitation.
		merr := Simulate(ops, check.QueueSpec(), WithMaxFrontier(4096))
		if errors.Is(merr, ErrFrontierLimit) {
			continue
		}
		if merr != nil && !Rejected(merr) {
			t.Fatalf("trial %d: frontier limitation: %v", trial, merr)
		}
		if ok != (merr == nil) {
			t.Fatalf("trial %d: search=%v frontier=%v\nhistory:\n%s", trial, ok, merr, FormatHistory(ops))
		}
	}
}

// --- compositional driver ---

func TestCheckHistoryMixedClasses(t *testing.T) {
	ops := []check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(1, check.OpMapPut, 3<<32|9, 0, false, 3, 4),
		h(0, check.OpDequeue, 0, 1, true, 5, 6),
		h(1, check.OpMapGet, 3<<32, 9, true, 7, 8),
		h(2, check.OpPush, 4, 0, false, 9, 10),
		h(2, check.OpPop, 0, 4, true, 11, 12),
	}
	if err := Check(ops); err != nil {
		t.Fatalf("mixed history rejected: %v", err)
	}
	// Break the map part only.
	ops[3].Ret = 8
	err := Check(ops)
	if !Rejected(err) {
		t.Fatalf("bad map read: got %v", err)
	}
}

func TestCheckHistoryEngines(t *testing.T) {
	good := []check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(0, check.OpDequeue, 0, 1, true, 3, 4),
	}
	bad := []check.Operation{
		h(0, check.OpEnqueue, 1, 0, false, 1, 2),
		h(0, check.OpDequeue, 0, 2, true, 3, 4),
	}
	for _, e := range []Engine{EngineForward, EngineSearch, EngineBoth} {
		opts := DefaultOptions()
		opts.Engine = e
		if err := CheckHistory(good, opts); err != nil {
			t.Fatalf("engine %v rejected good history: %v", e, err)
		}
		if err := CheckHistory(bad, opts); !Rejected(err) {
			t.Fatalf("engine %v on bad history: %v", e, err)
		}
	}
}

func TestCheckHistoryBothFallsBackPastSearchLimit(t *testing.T) {
	// >64 ops in one partition: EngineBoth must let the forward engine
	// decide alone rather than fail with ErrTooLarge.
	var ops []check.Operation
	sum := uint64(0)
	for i := 0; i < 100; i++ {
		ops = append(ops, h(0, check.OpAdd, 1, sum, false, int64(2*i+1), int64(2*i+2)))
		sum++
	}
	opts := DefaultOptions()
	opts.Engine = EngineBoth
	if err := CheckHistory(ops, opts); err != nil {
		t.Fatalf("EngineBoth past search limit: %v", err)
	}
}

func TestCheckHistoryMapPartitionModesAgree(t *testing.T) {
	// By locality, per-key and whole-map checking must return the same
	// verdict on every single-key-op history; the two modes exist to
	// cross-validate each other. A good overlapped history...
	good := []check.Operation{
		h(0, check.OpMapPut, 1<<32|5, 0, false, 1, 10),
		h(0, check.OpMapPut, 2<<32|6, 0, false, 2, 3),
		h(1, check.OpMapGet, 2<<32, 6, true, 4, 5),
		h(1, check.OpMapGet, 1<<32, 0, false, 6, 7), // put(1,5) still open: may linearize later
	}
	// ...and a bad one: the get misses a put that returned before it began.
	bad := append([]check.Operation(nil), good...)
	bad[0].Return = 3

	for _, partition := range []bool{true, false} {
		opts := DefaultOptions()
		opts.Partition = partition
		if err := CheckHistory(good, opts); err != nil {
			t.Fatalf("partition=%v rejected good history: %v", partition, err)
		}
		if err := CheckHistory(bad, opts); !Rejected(err) {
			t.Fatalf("partition=%v on bad history: %v", partition, err)
		}
	}
}

func TestCheckHistorySetPartitioning(t *testing.T) {
	ops := []check.Operation{
		h(0, check.OpInsert, 1, 0, true, 1, 2),
		h(1, check.OpInsert, 2, 0, true, 3, 4),
		h(0, check.OpContains, 1, 0, true, 5, 6),
		h(1, check.OpRemove, 2, 0, true, 7, 8),
		h(1, check.OpContains, 2, 0, false, 9, 10),
	}
	if err := Check(ops); err != nil {
		t.Fatalf("good set history rejected: %v", err)
	}
	ops[4].RetOK = true // contains(2) after remove(2) succeeded
	if err := Check(ops); !Rejected(err) {
		t.Fatalf("bad set history: %v", err)
	}
}

func TestCheckHistoryAmbiguousReads(t *testing.T) {
	ops := []check.Operation{
		h(0, check.OpAdd, 1, 0, false, 1, 2),
		h(0, check.OpMul, 2, 1, false, 3, 4),
		h(0, check.OpRead, 0, 2, false, 5, 6),
	}
	if err := Check(ops); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("got %v, want ErrAmbiguous", err)
	}
}

func TestCheckHistoryBareReadsAreARegister(t *testing.T) {
	ops := []check.Operation{
		h(0, check.OpRead, 0, 0, false, 1, 2),
		h(1, check.OpRead, 0, 0, false, 3, 4),
	}
	if err := Check(ops); err != nil {
		t.Fatalf("reads-only history rejected: %v", err)
	}
}

func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{"forward": EngineForward, "search": EngineSearch, "both": EngineBoth} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Fatal("ParseEngine should reject unknown names")
	}
}

// --- SetKeySpec / MapSpec sanity against their whole-object originals ---

func TestSetKeySpecMatchesSetSpecPerKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		var ops []check.Operation
		ts := int64(0)
		for i := 0; i < 12; i++ {
			ts++
			op := check.Operation{Thread: 0, Arg: uint64(rng.Intn(2) + 1), Invoke: ts, Return: ts + 1}
			ts++
			op.Op = []string{check.OpInsert, check.OpRemove, check.OpContains}[rng.Intn(3)]
			op.RetOK = rng.Intn(2) == 0
			ops = append(ops, op)
		}
		whole, err := check.Linearizable(ops, check.SetSpec())
		if err != nil {
			t.Fatal(err)
		}
		perKey, err := check.LinearizablePartitioned(ops,
			func(o check.Operation) string { return fmt.Sprint(o.Arg) },
			func(string) check.Spec { return SetKeySpec() })
		if err != nil {
			t.Fatal(err)
		}
		if whole != perKey {
			t.Fatalf("trial %d: SetSpec=%v per-key SetKeySpec=%v\n%s", trial, whole, perKey, FormatHistory(ops))
		}
	}
}

func TestMapSpecMatchesMapKeySpecOnSequentialHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var ops []check.Operation
		ts := int64(0)
		for i := 0; i < 12; i++ {
			key := uint64(rng.Intn(2) + 1)
			val := uint64(rng.Intn(3))
			op := check.Operation{Thread: 0, Invoke: ts + 1, Return: ts + 2}
			ts += 2
			switch rng.Intn(3) {
			case 0:
				op.Op = check.OpMapPut
				op.Arg = key<<32 | val
			case 1:
				op.Op = check.OpMapDel
				op.Arg = key << 32
			default:
				op.Op = check.OpMapGet
				op.Arg = key << 32
			}
			op.Ret = uint64(rng.Intn(3))
			op.RetOK = rng.Intn(2) == 0
			ops = append(ops, op)
		}
		whole, err := check.Linearizable(ops, MapSpec())
		if err != nil {
			t.Fatal(err)
		}
		perKey, err := check.LinearizablePartitioned(ops, check.MapPartOf,
			func(string) check.Spec { return check.MapKeySpec() })
		if err != nil {
			t.Fatal(err)
		}
		// On sequential histories whole-map and per-key agree exactly.
		if whole != perKey {
			t.Fatalf("trial %d: MapSpec=%v per-key=%v\n%s", trial, whole, perKey, FormatHistory(ops))
		}
	}
}

// --- history text format ---

func TestHistoryFormatRoundTrip(t *testing.T) {
	ops := []check.Operation{
		h(0, check.OpEnqueue, 7, 0, false, 1, 2),
		h(1, check.OpMapPut, 3<<32|17, 0, false, 3, 4),
		h(2, check.OpMapGet, 3<<32, 17, true, 5, 6),
		h(3, check.OpDequeue, 0, 7, true, 7, 8),
	}
	text := FormatHistory(ops)
	back, err := ParseHistory(text)
	if err != nil {
		t.Fatalf("ParseHistory: %v\n%s", err, text)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip length %d != %d", len(back), len(ops))
	}
	for i := range ops {
		if back[i] != ops[i] {
			t.Fatalf("op %d: %v != %v", i, back[i], ops[i])
		}
	}
	if !bytes.Contains(text, []byte("3:17")) {
		t.Fatalf("map put should use k:v sugar:\n%s", text)
	}
}

func TestParseHistoryErrors(t *testing.T) {
	for _, bad := range []string{
		"0 enq 1 0 ok 1", // too few fields
		"x enq 1 0 ok 1 2",
		"0 enq 1 0 maybe 1 2",
		"0 mput 3:z 0 ok 1 2",
	} {
		if _, err := ParseHistory([]byte(bad)); err == nil {
			t.Fatalf("ParseHistory(%q) should fail", bad)
		}
	}
	ops, err := ParseHistory([]byte("# comment\n\n  0 enq 5 0 no 1 2 # trailing\n"))
	if err != nil || len(ops) != 1 || ops[0].Arg != 5 {
		t.Fatalf("comment handling: %v %v", ops, err)
	}
}
