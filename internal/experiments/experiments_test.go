package experiments

import (
	"strings"
	"testing"

	"repro/internal/fmul"
	"repro/internal/harness"
	"repro/internal/workload"
)

// runMakers smoke-runs every maker at a small scale and returns the results.
func runMakers(t *testing.T, makers []harness.Maker) []harness.Result {
	t.Helper()
	cfg := harness.Config{Threads: []int{2}, TotalOps: 400, MaxWork: 16, Reps: 1, Seed: 1}
	return harness.Run(cfg, makers)
}

func TestFig2MakersRun(t *testing.T) {
	res := runMakers(t, Fig2Makers(true))
	if len(res) != 7 { // P-Sim, P-Sim(combine), CLH, lock-free, FC, CombTree, MCS
		t.Fatalf("got %d results", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Impl] = true
		if r.MeanSec <= 0 {
			t.Fatalf("no timing for %s", r.Impl)
		}
	}
	for _, want := range []string{"P-Sim", "P-Sim(combine)", "CLH-lock", "lock-free CAS", "FlatCombining", "CombiningTree", "MCS-lock"} {
		if !names[want] {
			t.Fatalf("missing implementation %q in %v", want, names)
		}
	}
}

func TestFig3StackMakersRun(t *testing.T) {
	res := runMakers(t, Fig3StackMakers())
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestFig3QueueMakersRun(t *testing.T) {
	res := runMakers(t, Fig3QueueMakers())
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestAblationMakersRun(t *testing.T) {
	for _, makers := range [][]harness.Maker{
		AblationBackoffMakers(),
		AblationPublicationMakers(),
		AblationActLayoutMakers(),
	} {
		if res := runMakers(t, makers); len(res) != 2 {
			t.Fatalf("ablation produced %d results", len(res))
		}
	}
}

func TestTable1MeasureShapes(t *testing.T) {
	rows := Table1Measure([]int{1, 4}, 50)
	if len(rows) != 8 { // 4 algorithms × 2 thread counts
		t.Fatalf("got %d rows", len(rows))
	}
	byAlgo := map[string]map[int]float64{}
	for _, r := range rows {
		if r.AccessesPer <= 0 {
			t.Fatalf("no accesses measured: %+v", r)
		}
		if byAlgo[r.Algorithm] == nil {
			byAlgo[r.Algorithm] = map[int]float64{}
		}
		byAlgo[r.Algorithm][r.Threads] = r.AccessesPer
	}
	// Sim must be flat in n (single-word collect regime at these sizes).
	if byAlgo["Sim"][1] != byAlgo["Sim"][4] {
		t.Fatalf("Sim accesses/op not constant: %v", byAlgo["Sim"])
	}
	// Herlihy must grow with n.
	if byAlgo["Herlihy-UC"][4] <= byAlgo["Herlihy-UC"][1] {
		t.Fatalf("Herlihy accesses/op did not grow: %v", byAlgo["Herlihy-UC"])
	}
}

func TestTable1Render(t *testing.T) {
	rows := Table1Measure([]int{1}, 20)
	out := Table1Render(rows)
	for _, want := range []string{"Sim", "L-Sim(w=2)", "Herlihy-UC", "O(1)", "O(kw)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// probe records the factors the fig2 workload applies.
type probe struct{ factors []uint64 }

func (p *probe) Apply(_ int, f uint64) uint64 { p.factors = append(p.factors, f); return 0 }
func (p *probe) Read() uint64                 { return 0 }
func (p *probe) Name() string                 { return "probe" }

func TestFmulMakerAppliesOddFactors(t *testing.T) {
	p := &probe{}
	mk := fmulMaker("x", func(n int) fmul.Interface { return p }, nil)
	inst := mk(1)
	rng := workload.NewRNG(1)
	for i := 0; i < 200; i++ {
		inst.Op(0, rng)
	}
	for _, f := range p.factors {
		if f%2 == 0 {
			t.Fatalf("even factor %d would zero the state word quickly", f)
		}
		if f < 3 {
			t.Fatalf("factor %d < 3", f)
		}
	}
}

func TestLargeObjectMakersRun(t *testing.T) {
	cfg := harness.Config{Threads: []int{2}, TotalOps: 200, MaxWork: 8, Reps: 1, Seed: 1}
	res := LargeObjectSweep(cfg, []int{8, 64})
	if len(res) != 4 { // 2 sizes × 2 implementations
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.MeanSec <= 0 {
			t.Fatalf("no timing for %s", r.Impl)
		}
	}
}

func TestMapContentionMakersRun(t *testing.T) {
	res := runMakers(t, MapContentionMakers(4))
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
}

// TestLargeObjectOpsEquivalent: the P-Sim and L-Sim array objects implement
// the SAME sequential operation — identical op sequences must produce
// identical arrays.
func TestLargeObjectOpsEquivalent(t *testing.T) {
	const size = 32
	p := newArrayPSim(1, size)
	l, items, op := newArrayLSim(1, size)
	rng := workload.NewRNG(99)
	for k := 0; k < 300; k++ {
		arg := [2]uint64{uint64(rng.Intn(size)), uint64(rng.Intn(size))}
		pv := p.Apply(0, arg)
		lv := l.ApplyOp(0, op, arg)
		if pv != lv {
			t.Fatalf("op %d: responses differ: P-Sim %d, L-Sim %d", k, pv, lv)
		}
	}
	final := p.Read()
	for i := 0; i < size; i++ {
		if items[i].Current() != final[i] {
			t.Fatalf("cell %d differs: P-Sim %d, L-Sim %d", i, final[i], items[i].Current())
		}
	}
}
