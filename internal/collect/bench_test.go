package collect

import "testing"

// The paper's step-complexity claims as micro-benchmarks: update is ONE
// Fetch&Add regardless of n; collect costs one load per backing word.

func BenchmarkUpdate(b *testing.B) {
	c := NewSimCollect(8, 8)
	u := c.Updater(3)
	for i := 0; i < b.N; i++ {
		u.Update(uint64(i) & 0xFF)
	}
}

func BenchmarkCollect(b *testing.B) {
	for _, cfg := range []struct {
		name string
		n, d int
	}{
		{"1word", 8, 8},
		{"4words", 32, 8},
		{"16words", 128, 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := NewSimCollect(cfg.n, cfg.d)
			dst := make([]uint64, cfg.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.CollectInto(dst)
			}
		})
	}
}

func BenchmarkActSetJoinLeave(b *testing.B) {
	a := NewActSet(64)
	m := a.Member(9)
	for i := 0; i < b.N; i++ {
		m.Join()
		m.Leave()
	}
}

func BenchmarkAnnounceWriteRead(b *testing.B) {
	a := NewAnnounce[uint64](8)
	v := uint64(42)
	for i := 0; i < b.N; i++ {
		a.Write(3, &v)
		_ = a.Read(3)
	}
}
