// Package core implements the paper's universal constructions:
//
//   - Sim (Algorithm 1): the theoretical wait-free universal construction —
//     one LL/SC object holding the simulated state plus a SimCollect object
//     for announcements; O(1) shared memory accesses when the Fetch&Add word
//     fits all announcements, ⌈nd/b⌉ otherwise.
//
//   - PSim (Algorithms 2–3): the practical variant for real machines —
//     announce array, Act bit vector toggled with one Fetch&Add, adaptive
//     backoff, and the state published through a CAS. This implementation
//     publishes immutable state records through an atomic pointer and lets
//     the garbage collector reclaim them (the idiomatic Go port; no ABA, no
//     seqlock, race-detector clean).
//
//   - PSimWord (Algorithms 2–3, faithful layout): the pooled variant with
//     the paper's exact memory discipline — a pool of n·C state records, a
//     16-bit pool index + 48-bit timestamp packed in the single CAS word,
//     and seq1/seq2 consistency stamps guarding seqlock-style state copies.
//     Specialised to word-sized states so that every shared access is a
//     plain atomic operation.
//
// All three are wait-free: an operation completes after at most two Attempt
// rounds regardless of the progress of other threads (Theorem 3.1; the
// fallback read of Algorithm 3 lines 28–30).
package core
