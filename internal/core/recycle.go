package core

import (
	"sync/atomic"

	"repro/internal/pad"
)

// This file carries the state-record recycling discipline of the GC-based
// P-Sim variants: a per-thread Ring of retired records plus a Hazards table
// that tells recyclers which retired records are still being read.
//
// The paper's pooled layout (PSimWord) recycles records under seq1/seq2
// stamps and lets readers *detect* a torn copy after the fact. That is not
// available to the generic PSim: its State records hold arbitrary Go values
// (pointers, slices), so a reader overlapping a recycler's in-place rewrite
// would be a data race under the Go memory model no matter how it is
// validated afterwards. Observation 3.2's "retired two successful CASes ago"
// bound is likewise not enough on its own — a goroutine preempted mid-round
// can hold a record reference across arbitrarily many publishes.
//
// Hazard slots close that gap while keeping the paper's cost profile: a
// reader protects the record it is about to read with one store and one
// validating re-load (both on its own cache-line-padded slot / the single
// shared pointer), and a recycler reuses a retired record only after a scan
// of the slots finds no reader holding it. Because Go's sync/atomic
// operations are sequentially consistent, the classic hazard-pointer
// argument applies verbatim: if the scan misses a reader's slot store, that
// reader's validating re-load is ordered after the record's retirement and
// therefore fails, so the reader never touches the record.
//
// Progress guarantees. Recyclers never wait: PopFree skips protected
// records and the caller allocates fresh when every resident is protected.
// Readers are lock-free, not wait-free: a protection attempt fails only
// when a concurrent CAS publishes a new record between the two loads, so
// every retry is paid for by another operation's success, but a bounded
// number of steps cannot be guaranteed (the classic hazard-pointer bound).
// Acquire with attempts > 0 IS bounded — the caller treats exhaustion like
// a failed CAS. Anonymous readers additionally never wait on each other: a
// claim sweep that finds every slot held by other (possibly preempted)
// readers allocates an overflow slot instead of spinning.

// Hazards is a table of hazard-pointer slots guarding records of type T.
// Slots [0, fixed) are single-writer: slot i belongs to the goroutine
// driving process i (stored on every protected read, never cleared — a
// stale slot merely pins one retired record until the owner's next read).
// Slots [fixed, fixed+anon) are claimable by anonymous readers (Read paths
// with no process id) with a CAS on the slot's claim word; when every
// claimable slot is held, readers grow an overflow list rather than wait.
type Hazards[T any] struct {
	fixed []pad.Pointer[T]
	anon  []anonSlot[T]
	// extra is a list of overflow anonymous slots, pushed when a claim sweep
	// finds every slot (preallocated and overflow) held — so a preempted
	// reader never blocks new readers. It grows to the instantaneous number
	// of simultaneous anonymous readers and is shrunk back by a bounded
	// reclaim pass on every ReleaseAnon (shrinkOverflow), so a one-off burst
	// of parked readers does not permanently tax every later Hazarded scan.
	extra atomic.Pointer[anonSlot[T]]

	// onOverflow, when set, is invoked each time a reader is about to push an
	// overflow slot (the flight recorder counts these growth events). Called
	// from arbitrary reader goroutines concurrently; the hook must be safe for
	// that, and must never block — it sits on a path that exists precisely so
	// readers never wait.
	onOverflow func()
}

// SetOverflowHook attaches the overflow notification hook (nil detaches).
// Not safe to call concurrently with readers; set it before operations start.
func (h *Hazards[T]) SetOverflowHook(f func()) { h.onOverflow = f }

// anonSlot is one claimable hazard slot; claim word and pointer sit on the
// same (padded) line because they are always touched together. next links
// overflow slots (nil for the preallocated array; immutable once pushed).
type anonSlot[T any] struct {
	claimed atomic.Uint32
	ptr     atomic.Pointer[T]
	next    *anonSlot[T]
	_       pad.CacheLinePad
}

// tryClaim claims a free slot; the load filters the common held case so the
// sweep stays read-only until a free slot is actually seen.
func (s *anonSlot[T]) tryClaim() bool {
	return s.claimed.Load() == 0 && s.claimed.CompareAndSwap(0, 1)
}

// NewHazards returns a table with `fixed` per-process slots and `anon`
// claimable reader slots.
func NewHazards[T any](fixed, anon int) *Hazards[T] {
	if fixed < 0 {
		fixed = 0
	}
	if anon < 0 {
		anon = 0
	}
	return &Hazards[T]{
		fixed: make([]pad.Pointer[T], fixed),
		anon:  make([]anonSlot[T], anon),
	}
}

// Acquire loads src and protects the loaded record in fixed slot `slot`:
// store the pointer, re-load src, and accept only if the pointer is still
// current (at which point the record cannot be retired-and-recycled under
// the reader — see the package comment). It retries up to `attempts` times
// (attempts <= 0 means retry until success; every failed attempt implies a
// concurrent successful publish, so the unbounded form is lock-free).
// Returns the protected record and whether protection was established.
func (h *Hazards[T]) Acquire(slot int, src *atomic.Pointer[T], attempts int) (*T, bool) {
	s := &h.fixed[slot].P
	for try := 0; attempts <= 0 || try < attempts; try++ {
		p := src.Load()
		s.Store(p)
		if src.Load() == p {
			return p, true
		}
	}
	return nil, false
}

// anonClaimSweeps bounds how many times AcquireAnon rescans the claimable
// slots before allocating an overflow slot of its own. Claim failures mean
// other READERS hold the slots; unlike validation failures they imply no
// publisher progress, so spinning on them would let one preempted reader
// block every new reader indefinitely.
const anonClaimSweeps = 2

// AcquireAnon claims an anonymous slot — a preallocated one, an overflow
// one, or (when a bounded number of sweeps finds all of them held) a freshly
// pushed overflow slot — then runs the Acquire protocol in it until it
// succeeds. It returns the protected record and the claimed slot, which the
// caller must pass to ReleaseAnon when done with the record. Lock-free: the
// only unbounded loops are the protection validation (each failure means a
// concurrent publish succeeded) and the overflow push CAS (each failure
// means another reader pushed a slot).
func (h *Hazards[T]) AcquireAnon(src *atomic.Pointer[T]) (*T, *anonSlot[T]) {
	for sweep := 0; sweep < anonClaimSweeps; sweep++ {
		for i := range h.anon {
			if s := &h.anon[i]; s.tryClaim() {
				return h.protect(s, src), s
			}
		}
		for s := h.extra.Load(); s != nil; s = s.next {
			if s.tryClaim() {
				return h.protect(s, src), s
			}
		}
	}
	if h.onOverflow != nil {
		h.onOverflow()
	}
	s := &anonSlot[T]{}
	s.claimed.Store(1)
	for {
		s.next = h.extra.Load()
		if h.extra.CompareAndSwap(s.next, s) {
			return h.protect(s, src), s
		}
	}
}

// protect runs the Acquire protocol in slot s until it succeeds.
func (h *Hazards[T]) protect(s *anonSlot[T], src *atomic.Pointer[T]) *T {
	for {
		p := src.Load()
		s.ptr.Store(p)
		if src.Load() == p {
			return p
		}
	}
}

// anonShrinkMax bounds the overflow slots one ReleaseAnon may retire, so
// the reclaim pass adds O(1) work to the release path.
const anonShrinkMax = 4

// ReleaseAnon returns an anonymous slot claimed by AcquireAnon, then runs a
// bounded reclaim pass over the overflow list so burst-grown slots are given
// back once the burst subsides.
func (h *Hazards[T]) ReleaseAnon(s *anonSlot[T]) {
	s.ptr.Store(nil)
	s.claimed.Store(0)
	h.shrinkOverflow()
}

// shrinkOverflow retires up to anonShrinkMax free slots from the head of the
// overflow list. A slot is unlinked only after being claimed, so no reader
// can be protecting through it: claimed==0 implies ptr==nil (ReleaseAnon
// clears ptr before claim), and a claimed slot is exclusively ours. Unlinked
// slots are left claimed forever — unreachable from extra, they are garbage
// the moment the last traversal that saw them finishes, and can never hide a
// protected pointer from Hazarded. Only the head is unlinked (next fields
// are immutable once pushed, so mid-list surgery is off the table); a CAS
// loss means another reader pushed or shrank concurrently, and we simply
// hand the slot back and stop — the next release tries again. No ABA: a slot
// is never re-pushed, so the head CAS can only see each slot value once.
func (h *Hazards[T]) shrinkOverflow() {
	for i := 0; i < anonShrinkMax; i++ {
		s := h.extra.Load()
		if s == nil || !s.tryClaim() {
			return
		}
		if !h.extra.CompareAndSwap(s, s.next) {
			s.claimed.Store(0)
			return
		}
	}
}

// Clear resets fixed slot `slot`. Operations clear their slot when they
// return so a thread that goes quiet does not permanently pin the last
// record it protected (pinning retains that record's rvals and state
// references for reference-typed objects, and keeps it out of its owner's
// recycling ring).
func (h *Hazards[T]) Clear(slot int) {
	h.fixed[slot].P.Store(nil)
}

// Hazarded reports whether p is protected by any slot. Recyclers call it on
// retired records before overwriting them.
func (h *Hazards[T]) Hazarded(p *T) bool {
	for i := range h.fixed {
		if h.fixed[i].P.Load() == p {
			return true
		}
	}
	for i := range h.anon {
		if h.anon[i].ptr.Load() == p {
			return true
		}
	}
	for s := h.extra.Load(); s != nil; s = s.next {
		if s.ptr.Load() == p {
			return true
		}
	}
	return false
}

// Ring is a single-owner FIFO of retired records awaiting reuse — the GC
// variant's analogue of the paper's per-thread pool of C State records. A
// thread pushes the record its successful CAS retired (or a record it built
// but failed to publish) and pops the oldest record no reader holds. The
// ring is not safe for concurrent use; each thread owns one.
type Ring[T any] struct {
	buf  []*T
	head int // index of the oldest resident
	n    int // residents
}

// NewRing returns a ring holding at most capacity retired records.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]*T, capacity)}
}

// Len returns the number of resident records.
func (r *Ring[T]) Len() int { return r.n }

// Push retires x into the ring. When the ring is full x is dropped and the
// garbage collector reclaims it — capacity bounds the recycling working set,
// not correctness.
func (r *Ring[T]) Push(x *T) {
	if r.n == len(r.buf) {
		return
	}
	r.buf[(r.head+r.n)%len(r.buf)] = x
	r.n++
}

// PopFree removes and returns the oldest resident no hazard slot protects,
// probing each resident at most once (hazarded residents rotate to the
// back). It returns nil when every resident is protected — the caller then
// allocates a fresh record, which keeps the hot path wait-free: recycling is
// an optimization, never a wait.
func (r *Ring[T]) PopFree(h *Hazards[T]) *T {
	for probes := r.n; probes > 0; probes-- {
		x := r.buf[r.head]
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		if !h.Hazarded(x) {
			return x
		}
		r.Push(x)
	}
	return nil
}
