// Priority queue: a wait-free task scheduler in ~30 lines of sequential
// code. The universal construction's pitch is exactly this — write the data
// structure you actually need (here a binary min-heap with task metadata)
// as ordinary sequential Go, and get a linearizable, wait-free concurrent
// version for free. No fine-grained lock-free heap algorithm exists that a
// practitioner would write by hand; with simuc.Universal none is needed.
//
// Run with: go run ./examples/priorityqueue
package main

import (
	"fmt"
	"sync"

	simuc "repro"
)

type task struct {
	priority uint64
	id       uint64
}

// heap is the sequential state: a classic binary min-heap.
type heap struct {
	items []task
}

func (h *heap) push(t task) {
	h.items = append(h.items, t)
	for i := len(h.items) - 1; i > 0; {
		p := (i - 1) / 2
		if h.items[p].priority <= h.items[i].priority {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *heap) pop() (task, bool) {
	if len(h.items) == 0 {
		return task{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].priority < h.items[small].priority {
			small = l
		}
		if r < len(h.items) && h.items[r].priority < h.items[small].priority {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top, true
}

// op is the announced operation: push a task, or pop the minimum.
type op struct {
	push bool
	t    task
}

type res struct {
	t  task
	ok bool
}

func main() {
	const n = 6
	const tasksPer = 2_000

	pq := simuc.NewUniversal(n, heap{},
		func(h *heap, _ int, o op) res {
			if o.push {
				h.push(o.t)
				return res{}
			}
			t, ok := h.pop()
			return res{t: t, ok: ok}
		},
		func(h heap) heap { // deep copy: the heap slice is mutable state
			return heap{items: append([]task(nil), h.items...)}
		},
		simuc.Config{})

	// Phase 1: all processes submit tasks with pseudo-random priorities.
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9E3779B9 + 1
			for k := 0; k < tasksPer; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				pq.Apply(id, op{push: true, t: task{
					priority: seed % 1_000_000,
					id:       uint64(id*tasksPer + k),
				}})
			}
		}(id)
	}
	wg.Wait()

	// Phase 2: drain concurrently; each worker checks that the priorities
	// IT receives never decrease (a linearizable heap can interleave
	// workers, but each serial drain stream must be non-decreasing).
	var popped sync.Map
	violations := 0
	var mu sync.Mutex
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			last := uint64(0)
			count := 0
			for {
				r := pq.Apply(id, op{})
				if !r.ok {
					break
				}
				if r.t.priority < last {
					mu.Lock()
					violations++
					mu.Unlock()
				}
				last = r.t.priority
				popped.Store(r.t.id, true)
				count++
			}
		}(id)
	}
	wg.Wait()

	total := 0
	popped.Range(func(_, _ any) bool { total++; return true })
	fmt.Printf("submitted %d tasks, drained %d distinct (conserved=%v)\n",
		n*tasksPer, total, total == n*tasksPer)
	fmt.Printf("per-worker priority order violations: %d\n", violations)
	s := pq.Stats()
	fmt.Printf("ops %d, avg combined per publish %.2f\n", s.Ops, s.AvgHelping)
}
