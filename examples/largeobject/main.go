// Large object: a 4096-bucket shared histogram under L-Sim.
//
// P-Sim would copy all 4096 buckets on EVERY operation; L-Sim (§6) operates
// directly on the shared structure, touching only the buckets an operation
// names — O(kw) shared accesses for interval contention k and op footprint
// w (here w = 1 or 2) regardless of the object's size. This example also
// exercises Alloc: an overflow list of sample records grown concurrently by
// the helpers of a round, who must all agree on the identity of each new
// record.
//
// Run with: go run ./examples/largeobject
package main

import (
	"fmt"
	"sync"

	simuc "repro"
)

const (
	buckets = 4096
	n       = 8
	opsPer  = 2_000
)

// sample is the overflow-list record type.
type sample struct {
	bucket uint64
	next   *simuc.Item[sample]
}

type histArg struct {
	bucket uint64
	weight uint64
}

func main() {
	type V = sample // items hold either bucket counters (in .bucket) or list nodes
	h := simuc.NewLargeObject[V, histArg, uint64](n)

	// Root structure: one item per bucket plus the overflow-list head.
	items := make([]*simuc.Item[V], buckets)
	for i := range items {
		items[i] = h.NewRootItem(V{})
	}
	overflow := h.NewRootItem(V{})

	// addOp bumps one bucket and, when the bucket crosses a threshold,
	// allocates an overflow record — two items touched, never 4096.
	addOp := func(m *simuc.Mem[V, histArg, uint64], a histArg) uint64 {
		it := items[a.bucket%buckets]
		cur := m.Read(it)
		nv := cur.bucket + a.weight
		m.Write(it, V{bucket: nv})
		if nv%16 < a.weight { // crossed a multiple of 16
			head := m.Read(overflow)
			rec := m.Alloc()
			m.Write(rec, V{bucket: a.bucket % buckets, next: head.next})
			m.Write(overflow, V{next: rec})
		}
		return nv
	}

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9E3779B9 + 7
			for k := 0; k < opsPer; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				h.ApplyOp(id, addOp, histArg{bucket: seed, weight: 1 + seed%5})
			}
		}(id)
	}
	wg.Wait()

	var total uint64
	for _, it := range items {
		total += it.Current().bucket
	}
	records := 0
	for it := overflow.Current().next; it != nil; it = it.Current().next {
		records++
	}
	fmt.Printf("histogram total weight: %d across %d buckets\n", total, buckets)
	fmt.Printf("overflow records allocated concurrently: %d\n", records)
	fmt.Printf("every operation touched <=3 of %d items - the object was never copied\n", buckets)
}
