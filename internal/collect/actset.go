package collect

import "repro/internal/xatomic"

// ActSet is the paper's SimActSet: an active set over a Fetch&Add bit vector
// with one bit per process. join sets the caller's bit and leave clears it,
// each with a single Fetch&Add (no carry/borrow can escape the bit because
// the bit's owner is its only writer); getSet reads ⌈n/64⌉ words.
//
// L-Sim (§6) uses an ActSet to discover which processes have announced
// operations.
type ActSet struct {
	bits *xatomic.SharedBits
}

// NewActSet returns an active set for n processes, all initially absent.
func NewActSet(n int) *ActSet {
	return &ActSet{bits: xatomic.NewSharedBits(n)}
}

// N returns the capacity of the set.
func (a *ActSet) N() int { return a.bits.Len() }

// Member is process i's single-writer handle for joining and leaving.
type Member struct {
	set    *ActSet
	word   int
	mask   uint64
	joined bool
}

// Member returns the handle for process i; it must be used by one goroutine.
func (a *ActSet) Member(i int) *Member {
	return &Member{set: a, word: i / 64, mask: 1 << uint(i%64)}
}

// Join adds the process to the set (one Fetch&Add). Idempotent.
func (m *Member) Join() {
	if m.joined {
		return
	}
	m.set.bits.AddWord(m.word, m.mask)
	m.joined = true
}

// Leave removes the process from the set (one Fetch&Add). Idempotent.
func (m *Member) Leave() {
	if !m.joined {
		return
	}
	m.set.bits.AddWord(m.word, -m.mask)
	m.joined = false
}

// Joined reports the member's own view of its membership.
func (m *Member) Joined() bool { return m.joined }

// GetSet reads the vector (⌈n/64⌉ shared accesses) and returns it as a
// snapshot; bit i set means process i is participating.
func (a *ActSet) GetSet() xatomic.Snapshot {
	return a.bits.Load()
}

// GetSetInto is GetSet without allocation.
func (a *ActSet) GetSetInto(dst xatomic.Snapshot) {
	a.bits.LoadInto(dst)
}

// Words returns the number of words backing the set.
func (a *ActSet) Words() int { return a.bits.Words() }
