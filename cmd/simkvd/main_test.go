package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// dial connects to the daemon and returns a request/response helper.
func dial(t *testing.T, addr string) (send func(string) string, conn net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := bufio.NewReader(conn)
	send = func(line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimSpace(resp)
	}
	return send, conn
}

// TestDaemonEndToEnd boots the full daemon on ephemeral ports, exercises the
// KV protocol over TCP and the /metrics endpoint over HTTP, and verifies a
// clean shutdown.
func TestDaemonEndToEnd(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", 4, 4, options{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	send, conn := dial(t, d.addr)
	defer conn.Close()
	for _, c := range [][2]string{
		{"PUT a 41", "OK NIL"},
		{"PUT a 42", "OK 41"},
		{"GET a", "VAL 42"},
		{"GET missing", "NIL"},
		{"LEN", "LEN 1"},
	} {
		if got := send(c[0]); got != c[1] {
			t.Fatalf("%q -> %q, want %q", c[0], got, c[1])
		}
	}
	stats := send("STATS")
	for _, field := range []string{"STATS ops=", "helping=", "cas_fail=", "served_by="} {
		if !strings.Contains(stats, field) {
			t.Fatalf("STATS missing %s: %q", field, stats)
		}
	}

	// Prometheus text format.
	promBody := httpGet(t, "http://"+d.metricsAddr()+"/metrics")
	for _, want := range []string{
		"# TYPE kv_put_total counter",
		"# TYPE kv_connections gauge",
		"# TYPE map_op_latency_ns histogram",
		"map_op_latency_ns_count",
		"map_combine_degree_bucket",
	} {
		if !strings.Contains(promBody, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, promBody)
		}
	}

	// JSON format: live op counts, combining-degree histogram, latency
	// percentiles.
	var snap struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P50   uint64  `json:"p50"`
			P99   uint64  `json:"p99"`
			Mean  float64 `json:"mean"`
			Max   uint64  `json:"max"`
		} `json:"histograms"`
	}
	jsonBody := httpGet(t, "http://"+d.metricsAddr()+"/metrics?format=json")
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, jsonBody)
	}
	if snap.Counters["kv_put_total"] != 2 || snap.Counters["kv_get_total"] != 2 {
		t.Fatalf("command counters wrong: %v", snap.Counters)
	}
	if snap.Counters["map_ops_total"] != 2 { // two PUTs mutated the map
		t.Fatalf("map_ops_total = %d, want 2", snap.Counters["map_ops_total"])
	}
	lat := snap.Histograms["map_op_latency_ns"]
	if lat.Count != 2 || lat.P99 == 0 || lat.P50 > lat.P99 || lat.P99 > lat.Max {
		t.Fatalf("latency histogram implausible: %+v", lat)
	}
	cd := snap.Histograms["map_combine_degree"]
	if cd.Count == 0 {
		t.Fatalf("combine-degree histogram empty: %+v", cd)
	}
	if snap.Gauges["kv_connections"] != 1 {
		t.Fatalf("kv_connections = %d, want 1", snap.Gauges["kv_connections"])
	}

	// Clean shutdown with the client still connected: close must not hang,
	// and both ports must come free.
	closed := make(chan error, 1)
	go func() { closed <- d.close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon close hung")
	}
	if _, err := net.Dial("tcp", d.addr); err == nil {
		t.Fatal("KV port still accepting after close")
	}
}

func TestStartRejectsBadMetricsAddr(t *testing.T) {
	if _, err := start("127.0.0.1:0", "256.0.0.1:bad", 1, 1, options{}); err == nil {
		t.Fatal("start accepted a bad metrics address")
	}
}

// TestDebugSurface boots the daemon with the flight recorder on, drives some
// mutations, and checks the /debug endpoints: the flight snapshot in both
// formats, last=N trimming, and the pprof index.
func TestDebugSurface(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", 2, 2,
		options{flight: 64, flightSample: 1})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	send, conn := dial(t, d.addr)
	defer conn.Close()
	for i := 0; i < 8; i++ {
		if got := send(fmt.Sprintf("PUT k%d %d", i, i)); !strings.HasPrefix(got, "OK") {
			t.Fatalf("PUT -> %q", got)
		}
	}

	base := "http://" + d.metricsAddr()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	body := httpGet(t, base+"/debug/flight")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("flight chrome export invalid JSON: %v\n%s", err, body)
	}
	rounds := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "round" {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatalf("flight snapshot has no round events:\n%s", body)
	}

	text := httpGet(t, base+"/debug/flight?format=text&last=3")
	if !strings.Contains(text, "round") {
		t.Fatalf("text flight dump missing round events:\n%s", text)
	}
	if n := strings.Count(text, "\n"); n > 3 {
		t.Fatalf("last=3 returned %d lines:\n%s", n, text)
	}

	if idx := httpGet(t, base+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index implausible:\n%.200s", idx)
	}

	if resp, err := http.Get(base + "/debug/flight?format=nope"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: err=%v status=%v", err, resp.Status)
	}
}

// TestFlightDisabledEndpoint checks /debug/flight 404s when -flight is off.
func TestFlightDisabledEndpoint(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", 1, 1, options{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()
	resp, err := http.Get("http://" + d.metricsAddr() + "/debug/flight")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// TestDaemonLargeValueTier boots with -large-threshold and checks the blob
// command family end to end, including the tier split in STATS and the
// blob_* metric family on /metrics.
func TestDaemonLargeValueTier(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", 4, 4, options{largeThresh: 16})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	send, conn := dial(t, d.addr)
	defer conn.Close()
	big := strings.Repeat("v", 64)
	for _, c := range [][2]string{
		{"BPUT s tiny", "OK NEW"},
		{"BPUT l " + big, "OK NEW"},
		{"BPUT l " + big + "2", "OK SET"},
		{"BGET l", "VAL " + big + "2"},
		{"BGET s", "VAL tiny"},
		{"BDEL s", "OK"},
	} {
		if got := send(c[0]); got != c[1] {
			t.Fatalf("%q -> %q, want %q", c[0], got, c[1])
		}
	}
	stats := send("STATS")
	for _, field := range []string{"blob_small=", "blob_large=", "lsim_ops=", "lsim_items=", "threshold=16"} {
		if !strings.Contains(stats, field) {
			t.Fatalf("STATS missing %s: %q", field, stats)
		}
	}
	promBody := httpGet(t, "http://"+d.metricsAddr()+"/metrics")
	for _, want := range []string{"kv_bput_total", "blob_tier_large_ops_total", "blob_lsim_ops_total"} {
		if !strings.Contains(promBody, want) {
			t.Fatalf("prometheus output missing %q", want)
		}
	}
}

// TestTimelineEndpoint boots with the telemetry timeline on a fast scrape
// interval, drives load, and checks /debug/timeline serves windowed
// per-series history — and that an unmeetable SLO throughput floor
// escalates into a breach visible in both the rule state and the
// annotation log.
func TestTimelineEndpoint(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", 4, 4,
		options{timeline: 10 * time.Millisecond, slo: "ops>=1e12@50ms"})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	send, conn := dial(t, d.addr)
	defer conn.Close()
	for i := 0; i < 64; i++ {
		if got := send(fmt.Sprintf("PUT k%d %d", i, i)); !strings.HasPrefix(got, "OK") {
			t.Fatalf("PUT -> %q", got)
		}
	}

	base := "http://" + d.metricsAddr()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp struct {
			Series map[string][]struct {
				Ops       uint64  `json:"ops"`
				OpsPerSec float64 `json:"ops_per_sec"`
			} `json:"series"`
			Annotations []struct {
				Kind string `json:"kind"`
				Ref  string `json:"ref"`
			} `json:"annotations"`
			SLO []struct {
				Rule     string `json:"rule"`
				Breached bool   `json:"breached"`
			} `json:"slo"`
		}
		body := httpGet(t, base+"/debug/timeline?window=30s")
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("timeline response invalid JSON: %v\n%s", err, body)
		}
		var ops uint64
		for _, s := range resp.Series["map"] {
			ops += s.Ops
		}
		breached := len(resp.SLO) == 1 && resp.SLO[0].Breached
		annotated := false
		for _, a := range resp.Annotations {
			if a.Kind == "slo_breach" {
				annotated = true
			}
		}
		if ops >= 64 && breached && annotated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline never converged: ops=%d breached=%v annotated=%v\n%s",
				ops, breached, annotated, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Series filtering trims the response to the requested family.
	body := httpGet(t, base+"/debug/timeline?window=30s&series=map")
	var filtered struct {
		Series map[string]json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatalf("filtered response invalid JSON: %v", err)
	}
	if len(filtered.Series) != 1 {
		t.Fatalf("series filter returned %d series, want 1", len(filtered.Series))
	}
}

// TestTimelineDisabled checks /debug/timeline 404s when -timeline is 0 and
// that -slo without -timeline is rejected.
func TestTimelineDisabled(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", 1, 1, options{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()
	resp, err := http.Get("http://" + d.metricsAddr() + "/debug/timeline")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if _, err := start("127.0.0.1:0", "", 1, 1, options{slo: "ops>=1"}); err == nil {
		t.Fatal("-slo without -timeline accepted")
	}
}
