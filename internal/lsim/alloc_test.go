// Allocation-regression tests for the L-Sim hot path: after a warm-up that
// fills the recycling rings (round records, item bodies) and announce box
// pools, steady-state ApplyOp/ApplyBatch must run without heap allocation —
// the same bar P-Sim's TestApplyAllocsSteadyState sets. Mem.Alloc is
// excluded by construction: it creates genuinely new items.
package lsim

import (
	"testing"
)

// steadyAllocs warms the structure up, then measures allocations per op.
func steadyAllocs(warmup int, op func()) float64 {
	for i := 0; i < warmup; i++ {
		op()
	}
	return testing.AllocsPerRun(200, op)
}

func TestLSimApplyAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own; bounds only hold without it")
	}

	t.Run("ApplyOp/n=1/w=2", func(t *testing.T) {
		l := New[uint64, uint64, uint64](1)
		a := l.NewRootItem(0)
		b := l.NewRootItem(0)
		op := func(m *cnt, arg uint64) uint64 {
			v := m.Read(a)
			m.Write(a, v+arg)
			m.Write(b, m.Read(b)^v)
			return v
		}
		got := steadyAllocs(256, func() { l.ApplyOp(0, op, 1) })
		if got != 0 {
			t.Errorf("LSim ApplyOp n=1 allocs/op = %v, want 0", got)
		}
	})

	t.Run("ApplyOp/n=4/w=2", func(t *testing.T) {
		// Round-robin ids from one goroutine: every op takes the full
		// announce/join/attempt path, without CAS contention.
		l := New[uint64, uint64, uint64](4)
		a := l.NewRootItem(0)
		b := l.NewRootItem(0)
		op := func(m *cnt, arg uint64) uint64 {
			v := m.Read(a)
			m.Write(a, v+arg)
			m.Write(b, m.Read(b)+v)
			return v
		}
		id := 0
		got := steadyAllocs(256, func() {
			l.ApplyOp(id, op, 1)
			id = (id + 1) % 4
		})
		if got != 0 {
			t.Errorf("LSim ApplyOp n=4 allocs/op = %v, want 0", got)
		}
	})

	t.Run("ApplyBatch/n=4/b=8", func(t *testing.T) {
		l := New[uint64, uint64, uint64](4)
		items := make([]*Item[uint64], 8)
		for i := range items {
			items[i] = l.NewRootItem(0)
		}
		op := func(m *cnt, arg uint64) uint64 {
			it := items[arg%8]
			v := m.Read(it)
			m.Write(it, v+1)
			return v
		}
		args := make([]uint64, 8)
		for i := range args {
			args[i] = uint64(i)
		}
		res := make([]uint64, 0, 8)
		id := 0
		got := steadyAllocs(256, func() {
			res = l.ApplyBatch(id, op, args, res)
			id = (id + 1) % 4
		})
		if got != 0 {
			t.Errorf("LSim ApplyBatch n=4 b=8 allocs/op = %v, want 0", got)
		}
	})

	t.Run("Current", func(t *testing.T) {
		l := New[uint64, uint64, uint64](1)
		a := l.NewRootItem(7)
		got := steadyAllocs(64, func() {
			if a.Current() != 7 {
				t.Fatal("wrong value")
			}
		})
		if got != 0 {
			t.Errorf("Item.Current allocs/op = %v, want 0", got)
		}
	})
}
