// Quickstart: make any sequential operation wait-free and linearizable.
//
// The paper's synthetic benchmark object is a Fetch&Multiply instruction —
// an atomic "multiply the shared word, return the previous value" that no
// hardware provides. With the universal construction it is four lines: the
// sequential operation, wrapped by NewUniversal.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	simuc "repro"
)

func main() {
	const n = 8         // processes sharing the object
	const opsPer = 1000 // operations per process

	// The sequential object: state is a uint64, the operation multiplies it
	// by the argument and returns the previous value. The construction makes
	// it linearizable and wait-free; no locks anywhere.
	fmul := simuc.NewUniversal(n, uint64(1),
		func(st *uint64, _ int, factor uint64) uint64 {
			prev := *st
			*st = prev * factor
			return prev
		},
		nil, // uint64 needs no deep copy
		simuc.Config{},
	)

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				fmul.Apply(id, 3) // each call is one wait-free Fetch&Multiply
			}
		}(id)
	}
	wg.Wait()

	// 3^(n*opsPer) mod 2^64 — every one of the 8000 multiplications applied
	// exactly once, in some linearization order.
	want := uint64(1)
	for i := 0; i < n*opsPer; i++ {
		want *= 3
	}
	got := fmul.Read()
	fmt.Printf("state after %d Fetch&Multiply(3): %#x (expected %#x, match=%v)\n",
		n*opsPer, got, want, got == want)

	s := fmul.Stats()
	fmt.Printf("operations: %d, successful publishes: %d, avg ops combined per publish: %.2f\n",
		s.Ops, s.CASSuccesses, s.AvgHelping)
}
