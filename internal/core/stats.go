package core

import "repro/internal/pad"

// threadStats is one thread's padded counter block. Threads only ever write
// their own block, so the instrumentation adds no coherence traffic.
type threadStats struct {
	ops        pad.Uint64 // operations completed by this thread
	casSuccess pad.Uint64 // successful state-publish CAS/SC by this thread
	casFail    pad.Uint64 // failed state-publish CAS/SC
	combined   pad.Uint64 // operations this thread applied while combining
	servedBy   pad.Uint64 // own ops completed by another thread's combine
}

// Stats aggregates the combining behaviour of a construction instance. The
// AverageHelping value is the paper's "average degree of helping" plotted in
// the right part of Figure 2: how many announced operations each successful
// state change applied.
type Stats struct {
	Ops           uint64  // total completed operations
	CASSuccesses  uint64  // total successful publishes
	CASFailures   uint64  // total failed publishes
	Combined      uint64  // total operations applied inside combines
	ServedByOther uint64  // operations completed for a thread by a helper
	AvgHelping    float64 // Combined / CASSuccesses
}

func aggregate(ts []threadStats) Stats {
	var s Stats
	for i := range ts {
		s.Ops += ts[i].ops.V.Load()
		s.CASSuccesses += ts[i].casSuccess.V.Load()
		s.CASFailures += ts[i].casFail.V.Load()
		s.Combined += ts[i].combined.V.Load()
		s.ServedByOther += ts[i].servedBy.V.Load()
	}
	if s.CASSuccesses > 0 {
		s.AvgHelping = float64(s.Combined) / float64(s.CASSuccesses)
	}
	return s
}

func resetStats(ts []threadStats) {
	for i := range ts {
		ts[i].ops.V.Store(0)
		ts[i].casSuccess.V.Store(0)
		ts[i].casFail.V.Store(0)
		ts[i].combined.V.Store(0)
		ts[i].servedBy.V.Store(0)
	}
}
