package core

import (
	"sync"
	"testing"
)

// fmulPSim builds a Fetch&Multiply object (the paper's §4 synthetic
// benchmark object) over the GC-based PSim: state is a uint64, the operation
// multiplies it by the argument and returns the previous value.
func fmulPSim(n int) *PSim[uint64, uint64, uint64] {
	return NewPSim(n, uint64(1), func(st *uint64, _ int, arg uint64) uint64 {
		prev := *st
		*st = prev * arg
		return prev
	})
}

func TestPSimSmokeSequential(t *testing.T) {
	u := fmulPSim(1)
	if got := u.Apply(0, 3); got != 1 {
		t.Fatalf("first Fetch&Multiply returned %d, want 1", got)
	}
	if got := u.Apply(0, 5); got != 3 {
		t.Fatalf("second Fetch&Multiply returned %d, want 3", got)
	}
	if got := u.Read(); got != 15 {
		t.Fatalf("state = %d, want 15", got)
	}
}

func TestPSimSmokeConcurrent(t *testing.T) {
	const n, opsPer = 8, 200
	u := NewPSim(n, uint64(0), func(st *uint64, _ int, arg uint64) uint64 {
		prev := *st
		*st = prev + arg
		return prev
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*opsPer {
		t.Fatalf("counter = %d, want %d", got, n*opsPer)
	}
	s := u.Stats()
	if s.Ops != n*opsPer {
		t.Fatalf("stats ops = %d, want %d", s.Ops, n*opsPer)
	}
}

func TestSimSmokeConcurrent(t *testing.T) {
	const n, opsPer = 4, 100
	// Opcode = amount to add (non-zero); response = previous value.
	u := NewSim(n, 8, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
		return st + op, st
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				u.ApplyOp(id, 2)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*opsPer*2 {
		t.Fatalf("counter = %d, want %d", got, n*opsPer*2)
	}
}

func TestPSimWordSmokeConcurrent(t *testing.T) {
	const n, opsPer = 8, 200
	u := NewPSimWord(n, 0, 0, func(st, arg uint64) (uint64, uint64) {
		return st + arg, st
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*opsPer {
		t.Fatalf("counter = %d, want %d", got, n*opsPer)
	}
}
