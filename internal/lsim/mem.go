package lsim

// Mem is the memory interface an operation uses to access the shared
// object (Algorithm 8 lines 21–36). Reads and writes go through a private
// directory (the paper's D) so a helper's speculative updates stay local
// until the write-back phase; allocations go through the round's shared
// new-variable list so every helper of the round agrees on the identity of
// freshly allocated items.
type Mem[V, A, R any] struct {
	l    *LSim[V, A, R]
	id   int // helper's process id (instrumentation only)
	seq  uint64
	dir  map[*Item[V]]*dirEntry[V]
	ltop *newVar // cursor into the round's new-variable list
	pvar *newVar // preallocated node for the next Alloc attempt
}

// dirEntry is one directory record (struct DirectoryNode): the item's
// locally current value.
type dirEntry[V any] struct {
	val V
}

// Read returns the item's value as of this round's simulation, fetching it
// from the shared record on first access (lines 28–35). It aborts the
// enclosing attempt (via panic, recovered in attempt) when the item has
// already been written by a LATER round — the state this helper simulates
// against is obsolete.
func (m *Mem[V, A, R]) Read(it *Item[V]) V {
	if d, ok := m.dir[it]; ok { // line 31: read the local copy
		return d.val
	}
	body, _ := it.sv.LL() // line 32
	m.l.count(m.id, 1)
	var v V
	switch {
	case body.seq == m.seq:
		// A co-helper of THIS round already wrote the item; the pre-round
		// value sits in the other slot (line 33).
		v = body.val[1-body.toggle]
	case body.seq < m.seq:
		v = body.val[body.toggle] // line 34: committed value
	default:
		panic(obsoleteError{}) // line 35: goto the validation (abort)
	}
	m.dir[it] = &dirEntry[V]{val: v}
	return v
}

// Write records v as the item's new value in the directory (line 36). The
// shared record is updated during the write-back phase.
func (m *Mem[V, A, R]) Write(it *Item[V], v V) {
	if d, ok := m.dir[it]; ok {
		d.val = v
		return
	}
	m.dir[it] = &dirEntry[V]{val: v}
}

// Alloc returns a fresh item (lines 21–27). All helpers of the round
// allocate through the round's shared list, so the k-th allocation of the
// round yields the SAME item for every helper — their speculative writes to
// it therefore converge on one shared record.
func (m *Mem[V, A, R]) Alloc() *Item[V] {
	if m.pvar == nil { // the paper preallocates pvar before the round
		m.pvar = &newVar{item: newItem(*new(V))}
	}
	if m.ltop.next.CompareAndSwap(nil, m.pvar) { // line 23
		m.l.count(m.id, 1)
		m.pvar = nil // consumed; line 24–25 preallocate lazily next time
	}
	m.ltop = m.ltop.next.Load() // line 26
	m.l.count(m.id, 1)
	it := m.ltop.item.(*Item[V])
	if _, ok := m.dir[it]; !ok {
		// line 27: enter it into the directory with its initial value.
		m.dir[it] = &dirEntry[V]{val: *new(V)}
	}
	return it
}
