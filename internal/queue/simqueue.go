package queue

import (
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/backoff"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/xatomic"
)

// SimQueue is the paper's wait-free queue (§5, Algorithms 4–6). Two
// independent instances of the Sim machinery are used — one synchronizing
// enqueuers, one synchronizing dequeuers — so the two ends of the queue
// proceed in parallel (the source of SimQueue's advantage over flat
// combining in Figure 3).
//
// An enqueue combiner builds a PRIVATE linked list with one node per helped
// operation, then publishes an EnqState carrying ⟨old tail, first node of the
// list, new tail⟩; the list is spliced onto the shared queue with a separate
// CAS on the old tail's next pointer (Algorithm 5 lines 18/34). Every
// enqueue splices the batch containing its operation before returning, so a
// completed enqueue is always visible to traversals; dequeuers additionally
// help splice the latest batch (Algorithm 6 lines 49–51) so in-flight
// batches become visible promptly.
//
// Batching: enqueuers announce operation VECTORS (collect.BatchAnnounce) —
// EnqueueBatch publishes a whole value vector under one toggle, and a
// combining round turns every announced vector into nodes of the same
// private list, so an enqueue batch splices onto the shared queue as one
// contiguous run. Dequeuers carry no values, so DequeueBatch announces just
// a COUNT in a single-writer padded word; combiners serve that many front
// values into the announcing process's batch-response row. Count words are
// read unchecked: a stale count can only be observed when the announcing
// process re-announced, which requires an intervening successful publish
// that dooms the reader's CAS anyway (the staleness argument of
// collect/batch.go, which also covers enqueue box revalidation failures).
//
// Memory discipline: like core.PSim, state records publish via CAS on an
// atomic pointer, and the hot path recycles them through the unified memory
// plane (internal/alloc). Retired EnqState/DeqState records go to per-thread
// two-stack handles and are reissued through alloc.Typed over the end's
// hazard table, so a record a stalled combiner still reads is never reused
// (see internal/core/recycle.go); chains of records move through a bounded
// shared pool when the thread that retires is not the thread that reuses
// (the CAS winner retires the record some OTHER thread published, so record
// ownership migrates constantly). Queue nodes live in a second pool with one
// handle per (end, process): failed combining rounds return their private
// node lists to the enqueue-side handle, and single-thread instances also
// recycle consumed nodes — the dequeue-side handle's chains flow back to the
// enqueue side through the pool's shared slots, making the enqueue+dequeue
// pair allocation-free in steady state. Nodes that were PUBLISHED are never
// recycled when n > 1 (a stalled combiner may still traverse them). Beyond
// the plane's O(threads × cache) bound, retired blocks are dropped to the
// GC — the Blelloch–Wei space guarantee.
//
// Progress: as in core.PSim, everything up to the Observation-3.2 fallback
// is bounded, but the fallback's hazard-protected read retries only when a
// concurrent publish succeeds — lock-free rather than strictly bounded
// (see internal/core/recycle.go).
type SimQueue[V any] struct {
	n int

	enqAnnounce *collect.BatchAnnounce[V]
	enqAct      *xatomic.SharedBits
	enqP        atomic.Pointer[enqState[V]]
	// enqHaz slots [0,n) protect enqueuers' combining reads; slots [n,2n)
	// protect dequeuers' splice-help reads of enqP.
	enqHaz *core.Hazards[enqState[V]]

	deqAct    *xatomic.SharedBits
	deqCounts []pad.Uint64 // announced dequeue counts, single-writer per pid
	deqP      atomic.Pointer[deqState[V]]
	deqHaz    *core.Hazards[deqState[V]]

	// The memory plane (internal/alloc): one guarded pool per record type and
	// one node pool shared by both ends — enqueuers own node handles [0,n),
	// dequeuers [n,2n), so consumed chains flow dequeue→enqueue through the
	// pool's shared slots (replacing the old spare-slot exchange at n == 1).
	estate *alloc.Typed[enqState[V]]
	dstate *alloc.Typed[deqState[V]]
	nodes  *alloc.Pool[qnode[V]]

	enqThreads []sqThread[V]
	deqThreads []sqThread[V]
	enqStats   *core.StatsPlane
	deqStats   *core.StatsPlane

	rec *obs.SimRecorder // optional observability plane, shared by both ends

	boLower, boUpper int
}

// batchBudget bounds how many operations one announcement may carry on
// either end; EnqueueBatch/DequeueBatch split longer requests into
// budget-sized chunks so one combining round's work stays bounded by
// n×batchBudget — the constant in the wait-freedom bound.
const batchBudget = 64

// qnode is a queue node; next is written once with CAS when the node's
// batch is spliced onto the shared list (and doubles as the memory plane's
// free-chain link while the node is retired).
type qnode[V any] struct {
	v    V
	next atomic.Pointer[qnode[V]]
}

// enqState is the enqueuers' State record (struct EnqState of Algorithm 4).
type enqState[V any] struct {
	applied  xatomic.Snapshot
	oldTail  *qnode[V]    // tail of the queue when this batch was built
	lfirst   *qnode[V]    // first node of this batch's private list (nil: none)
	newTail  *qnode[V]    // last node of this batch — the tail after splicing
	nextFree *enqState[V] // memory-plane chain link; unused while live
}

// deqState is the dequeuers' State record (struct DeqState of Algorithm 4).
// brvals[k] holds process k's batch responses when its last served count was
// more than one (single dequeues answer through rvals[k] alone).
type deqState[V any] struct {
	applied  xatomic.Snapshot
	head     *qnode[V] // node whose next pointer is the queue front
	rvals    []deqRes[V]
	brvals   [][]deqRes[V]
	nextFree *deqState[V] // memory-plane chain link; unused while live
}

type deqRes[V any] struct {
	v  V
	ok bool
}

type sqThread[V any] struct {
	toggler *xatomic.Toggler
	bo      *backoff.Adaptive
	active  xatomic.Snapshot
	diffs   xatomic.Snapshot
	eblk    *alloc.Handle[enqState[V]] // record cache (enq threads)
	dblk    *alloc.Handle[deqState[V]] // record cache (deq threads)
	nblk    *alloc.Handle[qnode[V]]    // node cache (both ends, disjoint ids)
	lastCnt uint64                     // last announced dequeue count (deq threads)
	inited  bool
}

// hazardAttempts mirrors core.PSim's bound: a failed hazard acquisition
// implies a concurrent successful publish, so a bounded number of attempts
// consumes the round the same way a failed CAS does.
const hazardAttempts = 8

// NewSimQueue returns an empty wait-free queue shared by n processes.
func NewSimQueue[V any](n int) *SimQueue[V] {
	sentinel := &qnode[V]{}
	q := &SimQueue[V]{
		n:           n,
		enqAnnounce: collect.NewBatchAnnounce[V](n),
		enqAct:      xatomic.NewSharedBits(n),
		enqHaz:      core.NewHazards[enqState[V]](2*n, 0),
		deqAct:      xatomic.NewSharedBits(n),
		deqCounts:   make([]pad.Uint64, n),
		deqHaz:      core.NewHazards[deqState[V]](n, 0),
		enqThreads:  make([]sqThread[V], n),
		deqThreads:  make([]sqThread[V], n),
		enqStats:    core.NewStatsPlane(n),
		deqStats:    core.NewStatsPlane(n),
		boLower:     1,
		boUpper:     core.DefaultBackoffUpper,
	}
	q.enqP.Store(&enqState[V]{
		applied: xatomic.NewSnapshot(n),
		newTail: sentinel,
	})
	q.deqP.Store(&deqState[V]{
		applied: xatomic.NewSnapshot(n),
		head:    sentinel,
		rvals:   make([]deqRes[V], n),
		brvals:  make([][]deqRes[V], n),
	})
	// Memory plane: record pools carry cache 2(n+1) per thread (the old rings
	// held 2n+2) and reissue through the end's hazard table; records are NOT
	// reset at Put — a retired record may still be hazard-protected, so it may
	// only be mutated at reissue, after the guard probe clears it.
	q.estate = alloc.NewTyped(alloc.NewPool(n, alloc.Config[enqState[V]]{
		New:     func() *enqState[V] { return &enqState[V]{applied: xatomic.NewSnapshot(n)} },
		Next:    func(s *enqState[V]) *enqState[V] { return s.nextFree },
		SetNext: func(s, nx *enqState[V]) { s.nextFree = nx },
		Chain:   n + 1,
		Slots:   n,
	}), q.enqHaz)
	q.dstate = alloc.NewTyped(alloc.NewPool(n, alloc.Config[deqState[V]]{
		New: func() *deqState[V] {
			return &deqState[V]{
				applied: xatomic.NewSnapshot(n),
				rvals:   make([]deqRes[V], n),
				brvals:  make([][]deqRes[V], n),
			}
		},
		Next:    func(s *deqState[V]) *deqState[V] { return s.nextFree },
		SetNext: func(s, nx *deqState[V]) { s.nextFree = nx },
		Chain:   n + 1,
		Slots:   n,
	}), q.deqHaz)
	// Nodes need no guard (reissue is governed by reachability, not hazards:
	// only never-published or provably unreachable nodes are ever Put). Reset
	// clears the value so parked nodes do not retain references.
	nodeSlots := 4
	if n > nodeSlots {
		nodeSlots = n
	}
	q.nodes = alloc.NewPool(2*n, alloc.Config[qnode[V]]{
		New:     func() *qnode[V] { return &qnode[V]{} },
		Next:    func(nd *qnode[V]) *qnode[V] { return nd.next.Load() },
		SetNext: func(nd, nx *qnode[V]) { nd.next.Store(nx) },
		Reset:   func(nd *qnode[V]) { var zero V; nd.v = zero },
		Chain:   16,
		Slots:   nodeSlots,
	})
	q.enqStats.AttachAllocPool("enq_state", q.estate.Pool())
	q.enqStats.AttachAllocPool("node", q.nodes)
	q.deqStats.AttachAllocPool("deq_state", q.dstate.Pool())
	return q
}

// SetBackoff reconfigures the adaptive backoff bounds (upper 0 disables).
// Call before any operation.
func (q *SimQueue[V]) SetBackoff(lower, upper int) { q.boLower, q.boUpper = lower, upper }

// SetRecorder attaches a distribution recorder shared by the enqueue and
// dequeue instances (see core.PSim.SetRecorder). Call before any operation.
func (q *SimQueue[V]) SetRecorder(rec *obs.SimRecorder) { q.rec = rec }

// SetTracer attaches a flight recorder shared by the enqueue and dequeue
// instances (see core.PSim.SetTracer); batch hand-offs additionally appear
// as splice events. Sharing one tracer across both ends is safe for the
// same reason sharing the recorder is: process id i is driven by one
// goroutine at a time, whichever end it operates on. Call before any
// operation.
func (q *SimQueue[V]) SetTracer(tr *trace.Tracer) {
	q.enqStats.Trace = tr
	q.deqStats.Trace = tr
	q.estate.Pool().SetTracer(tr)
	q.dstate.Pool().SetTracer(tr)
	q.nodes.SetTracer(tr)
}

// Instrument publishes the queue in reg under prefix: both ends' exact
// counters attach to the same metric names (the registry sums them, matching
// Stats) plus one shared SimRecorder for the latency and combining-degree
// histograms, which is attached and returned. Call before any operation.
func (q *SimQueue[V]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	q.enqStats.Register(reg, prefix)
	q.deqStats.Register(reg, prefix)
	rec := obs.NewSimRecorder(reg, prefix, q.n)
	q.SetRecorder(rec)
	return rec
}

func (q *SimQueue[V]) thread(ts []sqThread[V], act *xatomic.SharedBits, i int) *sqThread[V] {
	t := &ts[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(act, i)
		upper := q.boUpper
		if q.n == 1 {
			upper = 0 // no helper can exist: waiting is pure overhead
		}
		t.bo = backoff.NewAdaptive(q.boLower, upper)
		if q.rec != nil {
			t.bo.Instrument(q.rec.Retries, i)
		}
		if tr := q.enqStats.Trace; tr != nil {
			id := i
			t.bo.OnGrow(func(w int) { tr.Rare(id, trace.KindBackoffGrow, uint64(w), 0) })
		}
		t.active = xatomic.NewSnapshot(q.n)
		t.diffs = xatomic.NewSnapshot(q.n)
		if &ts[0] == &q.enqThreads[0] {
			t.eblk = q.estate.Pool().Handle(i)
			t.nblk = q.nodes.Handle(i)
		} else {
			t.dblk = q.dstate.Pool().Handle(i)
			t.nblk = q.nodes.Handle(q.n + i)
		}
		t.inited = true
	}
	return t
}

// node returns a queue node holding v from the thread's plane handle: its
// cached blocks, a chain taken from the pool's shared slots (how dequeue-side
// chains come back at n == 1), or a fresh allocation.
func (q *SimQueue[V]) node(t *sqThread[V], v V) *qnode[V] {
	nd, _ := t.nblk.Get() // Get clears the link; Reset cleared the value
	nd.v = v
	return nd
}

// freeNodes returns the private list first..last (never published — its CAS
// lost) to the thread's plane handle.
func (t *sqThread[V]) freeNodes(first, last *qnode[V]) {
	for nd := first; ; {
		nx := nd.next.Load() // Put overwrites the link: read it first
		end := nd == last
		t.nblk.Put(nd)
		if end {
			return
		}
		nd = nx
	}
}

// enqRecord returns an EnqState record for process id to build the next
// batch into, reissued through the guarded plane (never one a stalled
// combiner still reads).
func (q *SimQueue[V]) enqRecord(id int, t *sqThread[V]) *enqState[V] {
	ns, fresh := q.estate.Get(t.eblk)
	tr := q.enqStats.Trace
	if fresh {
		tr.Rare(id, trace.KindRecycleMiss, uint64(t.eblk.Cached()), 0)
	} else {
		tr.Instant(id, trace.KindRecycleHit, uint64(t.eblk.Cached()), 0)
	}
	return ns
}

// deqRecord returns a DeqState record for process id to build the next
// batch into, reissued through the guarded plane.
func (q *SimQueue[V]) deqRecord(id int, t *sqThread[V]) *deqState[V] {
	ns, fresh := q.dstate.Get(t.dblk)
	tr := q.deqStats.Trace
	if fresh {
		tr.Rare(id, trace.KindRecycleMiss, uint64(t.dblk.Cached()), 0)
	} else {
		tr.Instant(id, trace.KindRecycleHit, uint64(t.dblk.Cached()), 0)
	}
	return ns
}

// splice links batch es onto the shared queue if not already done
// (Algorithm 5 lines 18/34, Algorithm 6 lines 49–51). es must be protected
// by a hazard slot (or be unreachable by recyclers, as on the solo paths).
//
// Invariant relied on throughout: a record is spliced before it is replaced
// — every combining round splices the record it loaded before attempting to
// CAS it away — so only the CURRENT record can be unspliced, and every
// return path of Enqueue splices the record covering its own operation.
func splice[V any](es *enqState[V]) {
	if es.oldTail != nil && es.lfirst != nil {
		es.oldTail.next.CompareAndSwap(nil, es.lfirst)
	}
}

// Enqueue appends v on behalf of process id (Algorithm 5).
func (q *SimQueue[V]) Enqueue(id int, v V) {
	t := q.thread(q.enqThreads, q.enqAct, id)
	t0 := q.rec.Start(id)
	tt := q.enqStats.Trace.OpStart(id)

	if q.n == 1 {
		q.enqueueSolo(t, t0, tt, v)
		return
	}

	q.enqAnnounce.PublishOne(id, v) // line 1: announce (a vector of one)
	core.SchedYield(id, core.PointAnnounce)
	t.toggler.Toggle() // lines 2–3
	t.bo.Wait()        // line 4

	q.enqueueAnnounced(id, t, t0, tt, 1)
}

// EnqueueBatch appends every value of vals, in order, on behalf of process
// id. Each budget-sized chunk is announced under ONE toggle and becomes one
// contiguous run of the queue: a combining round turns the whole vector into
// consecutive nodes of its private list, so no other process's values
// interleave within a chunk. Progress and cost match a single Enqueue per
// chunk. An empty vals is a no-op.
func (q *SimQueue[V]) EnqueueBatch(id int, vals []V) {
	for len(vals) > 0 {
		m := len(vals)
		if m > batchBudget {
			m = batchBudget
		}
		chunk := vals[:m]
		vals = vals[m:]

		t := q.thread(q.enqThreads, q.enqAct, id)
		t0 := q.rec.Start(id)
		tt := q.enqStats.Trace.OpStart(id)
		if q.n == 1 {
			q.enqueueSoloBatch(t, t0, tt, chunk)
			continue
		}
		q.enqAnnounce.Publish(id, chunk)
		core.SchedYield(id, core.PointAnnounce)
		t.toggler.Toggle()
		t.bo.Wait()
		q.enqueueAnnounced(id, t, t0, tt, m)
	}
}

// enqueueAnnounced runs the two-round combining protocol plus the fallback
// for process id's just-published vector of m values.
func (q *SimQueue[V]) enqueueAnnounced(id int, t *sqThread[V], t0, tt obs.Stamp, m int) {
	st := q.enqStats
	tr := st.Trace
	um := uint64(m)
	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ {
		// lines 6–7: read the state reference under hazard protection so the
		// record cannot be recycled while we use it.
		ls, ok := q.enqHaz.Acquire(id, &q.enqP, hazardAttempts)
		if !ok {
			st.CASFail.Inc(id)
			tr.Instant(id, trace.KindCASFail, uint64(j), 1)
			continue
		}
		core.SchedYield(id, core.PointCollect)
		splice(ls) // line 18: help link the current batch (before any return)
		q.enqAct.LoadInto(t.active)
		ls.applied.XorInto(t.active, t.diffs)
		if t.diffs[myWord]&myMask == 0 { // line 11: already applied
			// Our batch B ≤ ls: if B < ls it was spliced before being
			// replaced, and splice(ls) above covers B == ls.
			q.enqHaz.Clear(id) // don't pin ls while parked outside Enqueue
			st.Ops.Add(id, um)
			st.ServedBy.Add(id, um)
			q.rec.OpDone(id, t0)
			tr.OpServed(id, tt)
			return
		}

		// lines 12–27: build the private list — own vector first (lines
		// 13–17), then every value of every remaining announced vector in
		// diffs. Nodes come from the plane handle (refilled by failed rounds).
		own := q.enqAnnounce.OwnVec(id)
		first := q.node(t, own[0])
		last := first
		for _, v := range own[1:] {
			nn := q.node(t, v)
			last.next.Store(nn)
			last = nn
		}
		t.diffs.ClearBit(id) // line 17: exclude self
		slots, ops := uint64(1), uint64(len(own))
		abandoned := false
		for {
			k := t.diffs.BitSearchFirst() // line 20
			if k < 0 {
				break
			}
			t.diffs.ClearBit(k)
			// lines 21–24, batched: protect k's announce box and append its
			// whole vector. A validation failure means k re-announced — an
			// intervening publish doomed our CAS; abandon like a failed CAS.
			b, bok := q.enqAnnounce.Protect(id, k)
			if !bok {
				abandoned = true
				break
			}
			for _, v := range b.Vec() {
				nn := q.node(t, v)
				last.next.Store(nn)
				last = nn
				ops++
			}
			slots++
		}
		q.enqAnnounce.Clear(id) // done reading other processes' boxes
		if abandoned {
			t.freeNodes(first, last) // the list was never published: reuse it
			st.CASFail.Inc(id)
			tr.Instant(id, trace.KindCASFail, uint64(j), 2)
			if j == 0 {
				t.bo.Grow()
				t.bo.Wait()
			}
			continue
		}

		oldTail := ls.newTail    // capture before CAS: ls may recycle after it
		ns := q.enqRecord(id, t) // lines 28–31, into a recycled record
		ns.applied.CopyFrom(t.active)
		ns.oldTail = oldTail
		ns.lfirst = first
		ns.newTail = last
		core.SchedYield(id, core.PointCAS)
		if q.enqP.CompareAndSwap(ls, ns) { // line 35
			// line 36: link our own batch. Splice from the locals — once
			// published, ns may be retired and recycled by a later winner.
			oldTail.next.CompareAndSwap(nil, first)
			q.enqHaz.Clear(id)       // unpin ls before retiring it
			q.estate.Put(t.eblk, ls) // retire the replaced record for reuse
			st.Ops.Add(id, um)
			st.CASSuccess.Inc(id)
			st.Combined.Add(id, ops)
			q.rec.OpPublished(id, t0, slots)
			var act uint64
			if tt != 0 {
				act = uint64(t.active.PopCount()) // sampled rounds only
			}
			tr.Instant(id, trace.KindSplice, 0, 0) // own-batch hand-off
			tr.OpCommit(id, tt, slots, act, ops)
			if j == 0 {
				t.bo.Shrink()
			}
			return
		}
		t.freeNodes(first, last) // the list was never published: reuse it
		q.estate.Put(t.eblk, ns) // likewise the record
		st.CASFail.Inc(id)
		tr.Instant(id, trace.KindCASFail, uint64(j), 0)
		if j == 0 {
			t.bo.Grow()
			t.bo.Wait()
		}
	}
	// line 38: two failed CASes ⇒ a helper applied our enqueue in batch B.
	// Ensure B is spliced before returning: one hazard attempt either
	// protects the current record (splice covers B ≤ current) or fails
	// because the current record was replaced — and replaced ⇒ spliced.
	if es, ok := q.enqHaz.Acquire(id, &q.enqP, 1); ok {
		splice(es)
	}
	q.enqHaz.Clear(id)
	st.Ops.Add(id, um)
	st.ServedBy.Add(id, um)
	q.rec.OpDone(id, t0)
	tr.OpServed(id, tt)
}

// enqueueSolo is Enqueue for n == 1: no helper can exist, so skip announce,
// toggle, backoff, and CAS (process 0's enqueuer is the sole writer of
// enqP). Records rotate through the plane's record cache and nodes through
// its node pool (consumed chains flow back from the dequeue-side handle via
// the pool's shared slots), so the steady-state path allocates nothing.
func (q *SimQueue[V]) enqueueSolo(t *sqThread[V], t0, tt obs.Stamp, v V) {
	ls := q.enqP.Load() // current record: never retired, safe to read
	nd := q.node(t, v)
	ns := q.enqRecord(0, t)
	ns.applied.CopyFrom(ls.applied)
	ns.oldTail = ls.newTail
	ns.lfirst = nd
	ns.newTail = nd
	q.enqP.Store(ns)
	// Splice before returning; prior batches were spliced by their own
	// enqueues, so the tail's next is nil until this CAS.
	ns.oldTail.next.CompareAndSwap(nil, nd)
	q.estate.Put(t.eblk, ls)
	st := q.enqStats
	st.Ops.Inc(0)
	st.CASSuccess.Inc(0)
	st.Combined.Add(0, 1)
	q.rec.OpPublished(0, t0, 1)
	st.Trace.OpCommit(0, tt, 1, 1, 1)
}

// enqueueSoloBatch is EnqueueBatch for n == 1: the whole chunk becomes one
// private chain spliced with a single record rotation.
func (q *SimQueue[V]) enqueueSoloBatch(t *sqThread[V], t0, tt obs.Stamp, vals []V) {
	ls := q.enqP.Load()
	first := q.node(t, vals[0])
	last := first
	for _, v := range vals[1:] {
		nn := q.node(t, v)
		last.next.Store(nn)
		last = nn
	}
	ns := q.enqRecord(0, t)
	ns.applied.CopyFrom(ls.applied)
	ns.oldTail = ls.newTail
	ns.lfirst = first
	ns.newTail = last
	q.enqP.Store(ns)
	ns.oldTail.next.CompareAndSwap(nil, first)
	q.estate.Put(t.eblk, ls)
	m := uint64(len(vals))
	st := q.enqStats
	st.Ops.Add(0, m)
	st.CASSuccess.Inc(0)
	st.Combined.Add(0, m)
	q.rec.OpPublished(0, t0, 1)
	st.Trace.OpCommit(0, tt, 1, 1, m)
}

// announceDeqCount publishes process id's dequeue count for the next toggle.
// The word is single-writer and most operations are single dequeues, so the
// store is skipped when the count is unchanged.
func (q *SimQueue[V]) announceDeqCount(id int, t *sqThread[V], m uint64) {
	if t.lastCnt != m {
		q.deqCounts[id].V.Store(m)
		t.lastCnt = m
	}
}

// Dequeue removes and returns the front value on behalf of process id
// (Algorithm 6); ok is false if the queue was empty.
func (q *SimQueue[V]) Dequeue(id int) (V, bool) {
	t := q.thread(q.deqThreads, q.deqAct, id)
	t0 := q.rec.Start(id)
	tt := q.deqStats.Trace.OpStart(id)

	if q.n == 1 {
		r := q.dequeueSolo(t, t0, tt, 1, nil)
		return r.v, r.ok
	}

	q.announceDeqCount(id, t, 1)
	core.SchedYield(id, core.PointAnnounce)
	t.toggler.Toggle() // lines 39–40 (a dequeue announces only its count)
	t.bo.Wait()        // line 41

	r, _ := q.dequeueAnnounced(id, t, t0, tt, 1, nil)
	return r.v, r.ok
}

// DequeueBatch removes up to want front values on behalf of process id,
// appending them to out[:0] (pass a slice kept across calls for an
// allocation-free steady state; nil allocates) and returning it. Each
// budget-sized chunk of the request is served contiguously at one
// linearization point; fewer than want values are returned exactly when the
// queue ran empty at the last chunk's linearization point.
func (q *SimQueue[V]) DequeueBatch(id int, want int, out []V) []V {
	out = out[:0]
	for want > 0 {
		m := want
		if m > batchBudget {
			m = batchBudget
		}
		want -= m

		t := q.thread(q.deqThreads, q.deqAct, id)
		t0 := q.rec.Start(id)
		tt := q.deqStats.Trace.OpStart(id)
		before := len(out)
		if q.n == 1 {
			if m == 1 {
				if r := q.dequeueSolo(t, t0, tt, 1, nil); r.ok {
					out = append(out, r.v)
				}
			} else {
				out = q.dequeueSoloBatch(t, t0, tt, m, out)
			}
		} else {
			q.announceDeqCount(id, t, uint64(m))
			core.SchedYield(id, core.PointAnnounce)
			t.toggler.Toggle()
			t.bo.Wait()
			if m == 1 {
				r, _ := q.dequeueAnnounced(id, t, t0, tt, 1, nil)
				if r.ok {
					out = append(out, r.v)
				}
			} else {
				_, out = q.dequeueAnnounced(id, t, t0, tt, m, out)
			}
		}
		if len(out)-before < m {
			break // the queue was empty at the chunk's linearization point
		}
	}
	return out
}

// dequeueAnnounced runs the two-round combining protocol plus the fallback
// for process id's just-announced count of m dequeues. For m == 1 the single
// response is returned directly (out untouched, may be nil); for m > 1 the
// successful responses are appended to out in dequeue order.
func (q *SimQueue[V]) dequeueAnnounced(id int, t *sqThread[V], t0, tt obs.Stamp, m int, out []V) (deqRes[V], []V) {
	st := q.deqStats
	tr := st.Trace
	um := uint64(m)
	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ {
		ls, ok := q.deqHaz.Acquire(id, &q.deqP, hazardAttempts) // lines 43–44
		if !ok {
			st.CASFail.Inc(id)
			tr.Instant(id, trace.KindCASFail, uint64(j), 1)
			continue
		}
		core.SchedYield(id, core.PointCollect)
		q.deqAct.LoadInto(t.active)
		ls.applied.XorInto(t.active, t.diffs)
		if t.diffs[myWord]&myMask == 0 { // line 48: already applied
			var r deqRes[V]
			if m == 1 {
				r = ls.rvals[id] // record hazard-protected: safe to read
			} else {
				out = appendHits(out, ls.brvals[id])
			}
			q.deqHaz.Clear(id) // don't pin ls while parked outside Dequeue
			st.Ops.Add(id, um)
			st.ServedBy.Add(id, um)
			q.rec.OpDone(id, t0)
			tr.OpServed(id, tt)
			return r, out
		}

		// lines 49–51: help enqueuers splice their latest batch. Best
		// effort under a bounded hazard acquire: a failure means enqueuers
		// are actively publishing, and since every COMPLETED enqueue splices
		// its batch before returning, an unspliced batch can only contain
		// in-flight operations — missing those is linearizable.
		if es, ok := q.enqHaz.Acquire(q.n+id, &q.enqP, hazardAttempts); ok {
			splice(es)
			tr.Instant(id, trace.KindSplice, 1, 0) // dequeuer helped the hand-off
		}
		q.enqHaz.Clear(q.n + id) // help slot done: never leave it set

		head := ls.head
		ns := q.deqRecord(id, t) // recycled record: reuse applied and rvals
		ns.applied.CopyFrom(t.active)
		copy(ns.rvals, ls.rvals)
		for k := 0; k < q.n; k++ { // carry pending batch-response rows forward
			if len(ls.brvals[k]) == 0 {
				ns.brvals[k] = ns.brvals[k][:0]
				continue
			}
			ns.brvals[k] = append(ns.brvals[k][:0], ls.brvals[k]...)
		}
		slots, ops := uint64(0), uint64(0)
		for { // lines 53–61: serve every dequeuer in diffs, its whole count
			k := t.diffs.BitSearchFirst()
			if k < 0 {
				break
			}
			t.diffs.ClearBit(k)
			cnt := q.deqCounts[k].V.Load() // unchecked: see the type comment
			if cnt < 1 {
				cnt = 1
			} else if cnt > batchBudget {
				cnt = batchBudget
			}
			if cnt == 1 {
				if next := head.next.Load(); next != nil {
					ns.rvals[k] = deqRes[V]{v: next.v, ok: true}
					head = next
				} else {
					ns.rvals[k] = deqRes[V]{}
				}
				ns.brvals[k] = ns.brvals[k][:0]
			} else {
				row := ns.brvals[k][:0]
				var r deqRes[V]
				for c := uint64(0); c < cnt; c++ {
					if next := head.next.Load(); next != nil {
						r = deqRes[V]{v: next.v, ok: true}
						head = next
					} else {
						r = deqRes[V]{}
					}
					row = append(row, r)
				}
				ns.brvals[k] = row
				ns.rvals[k] = r
			}
			slots++
			ops += cnt
		}
		ns.head = head
		// Read the responses BEFORE publishing: once published, ns may be
		// retired and recycled by any later winner.
		var r deqRes[V]
		base := len(out)
		if m == 1 {
			r = ns.rvals[id]
		} else {
			out = appendHits(out, ns.brvals[id])
		}
		core.SchedYield(id, core.PointCAS)
		if q.deqP.CompareAndSwap(ls, ns) { // line 67
			q.deqHaz.Clear(id) // unpin ls before retiring it
			q.dstate.Put(t.dblk, ls)
			st.Ops.Add(id, um)
			st.CASSuccess.Inc(id)
			st.Combined.Add(id, ops)
			q.rec.OpPublished(id, t0, slots)
			var act uint64
			if tt != 0 {
				act = uint64(t.active.PopCount()) // sampled rounds only
			}
			tr.OpCommit(id, tt, slots, act, ops)
			if j == 0 {
				t.bo.Shrink()
			}
			return r, out
		}
		out = out[:base]         // speculative copies die with the failed round
		q.dstate.Put(t.dblk, ns) // never published — immediately reusable
		st.CASFail.Inc(id)
		tr.Instant(id, trace.KindCASFail, uint64(j), 0)
		if j == 0 {
			t.bo.Grow()
			t.bo.Wait()
		}
	}
	// lines 70–72: a helper served us; read the published record under
	// hazard protection (unbounded form is lock-free: each failure implies
	// a concurrent successful publish).
	st.Ops.Add(id, um)
	st.ServedBy.Add(id, um)
	q.rec.OpDone(id, t0)
	tr.OpServed(id, tt)
	ls, _ := q.deqHaz.Acquire(id, &q.deqP, 0)
	var r deqRes[V]
	if m == 1 {
		r = ls.rvals[id]
	} else {
		out = appendHits(out, ls.brvals[id])
	}
	q.deqHaz.Clear(id)
	return r, out
}

// appendHits appends the successful dequeue values of row to out. Misses are
// a suffix of the row (the queue stayed empty once drained within a round),
// so the returned values are exactly the dequeued front run in order.
func appendHits[V any](out []V, row []deqRes[V]) []V {
	for _, r := range row {
		if r.ok {
			out = append(out, r.v)
		}
	}
	return out
}

// dequeueSolo is Dequeue for n == 1. Consumed nodes retire into the
// dequeue-side plane handle, whose full chains flow back to the enqueue end
// through the pool's shared slots — nodes strictly before the head are
// unreachable from every record still in use, and with one process per end
// no stalled combiner can be traversing them.
func (q *SimQueue[V]) dequeueSolo(t *sqThread[V], t0, tt obs.Stamp, m int, _ []V) deqRes[V] {
	ls := q.deqP.Load()
	head := ls.head
	next := head.next.Load()
	ns := q.deqRecord(0, t)
	ns.applied.CopyFrom(ls.applied)
	copy(ns.rvals, ls.rvals)
	ns.brvals[0] = ns.brvals[0][:0]
	if next != nil {
		ns.rvals[0] = deqRes[V]{v: next.v, ok: true}
		ns.head = next
	} else {
		ns.rvals[0] = deqRes[V]{}
		ns.head = head
	}
	r := ns.rvals[0]
	q.deqP.Store(ns)
	q.dstate.Put(t.dblk, ls)
	if next != nil {
		// head was consumed: recycle it (Put's Reset clears the value, and
		// Get clears the link before reuse so a splice CAS can hit it).
		t.nblk.Put(head)
	}
	st := q.deqStats
	st.Ops.Inc(0)
	st.CASSuccess.Inc(0)
	st.Combined.Add(0, 1)
	q.rec.OpPublished(0, t0, 1)
	st.Trace.OpCommit(0, tt, 1, 1, 1)
	return r
}

// dequeueSoloBatch is DequeueBatch for n == 1: up to m front values are
// consumed in one record rotation and every consumed node retires into the
// dequeue-side plane handle, so batched pair workloads stay
// allocation-free.
func (q *SimQueue[V]) dequeueSoloBatch(t *sqThread[V], t0, tt obs.Stamp, m int, out []V) []V {
	ls := q.deqP.Load()
	head := ls.head
	got := 0
	newHead := head
	for got < m {
		next := newHead.next.Load()
		if next == nil {
			break
		}
		out = append(out, next.v)
		newHead = next
		got++
	}
	ns := q.deqRecord(0, t)
	ns.applied.CopyFrom(ls.applied)
	copy(ns.rvals, ls.rvals)
	ns.brvals[0] = ns.brvals[0][:0]
	ns.head = newHead
	if got > 0 {
		ns.rvals[0] = deqRes[V]{v: out[len(out)-1], ok: true}
	} else {
		ns.rvals[0] = deqRes[V]{}
	}
	q.deqP.Store(ns)
	q.dstate.Put(t.dblk, ls)
	// Nodes head..(node before newHead) were consumed: retire each (Put's
	// Reset clears values; read the link before Put overwrites it).
	for nd := head; nd != newHead; {
		nx := nd.next.Load()
		t.nblk.Put(nd)
		nd = nx
	}
	st := q.deqStats
	st.Ops.Add(0, uint64(m))
	st.CASSuccess.Inc(0)
	st.Combined.Add(0, uint64(m))
	q.rec.OpPublished(0, t0, 1)
	st.Trace.OpCommit(0, tt, 1, 1, uint64(m))
	return out
}

// Stats aggregates both instances' combining statistics into a core.Stats
// (enqueue and dequeue sides summed).
func (q *SimQueue[V]) Stats() core.Stats {
	return q.enqStats.Aggregate().Add(q.deqStats.Aggregate())
}

// Name implements Interface.
func (q *SimQueue[V]) Name() string { return "SimQueue" }
