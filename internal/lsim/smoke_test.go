package lsim

import (
	"sync"
	"testing"
)

func TestLSimSequentialCounter(t *testing.T) {
	l := New[uint64, uint64, uint64](1)
	ctr := l.NewRootItem(0)
	addOp := func(m *Mem[uint64, uint64, uint64], arg uint64) uint64 {
		v := m.Read(ctr)
		m.Write(ctr, v+arg)
		return v
	}
	if got := l.ApplyOp(0, addOp, 5); got != 0 {
		t.Fatalf("first add returned %d, want 0", got)
	}
	if got := l.ApplyOp(0, addOp, 7); got != 5 {
		t.Fatalf("second add returned %d, want 5", got)
	}
	if got := ctr.Current(); got != 12 {
		t.Fatalf("counter item = %d, want 12", got)
	}
}

func TestLSimConcurrentCounter(t *testing.T) {
	const n, opsPer = 8, 100
	l := New[uint64, uint64, uint64](n)
	ctr := l.NewRootItem(0)
	addOp := func(m *Mem[uint64, uint64, uint64], arg uint64) uint64 {
		v := m.Read(ctr)
		m.Write(ctr, v+arg)
		return v
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				l.ApplyOp(id, addOp, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := ctr.Current(); got != n*opsPer {
		t.Fatalf("counter = %d, want %d", got, n*opsPer)
	}
}

// TestLSimConcurrentLinkedList exercises Alloc: a shared singly linked list
// where each operation allocates a node and prepends it. Conservation of all
// prepended values verifies that co-helpers agreed on allocated items.
func TestLSimConcurrentLinkedList(t *testing.T) {
	type lv struct {
		val  uint64
		next *Item[lv]
	}
	const n, opsPer = 6, 60
	l := New[lv, uint64, uint64](n)
	head := l.NewRootItem(lv{})
	prepend := func(m *Mem[lv, uint64, uint64], arg uint64) uint64 {
		h := m.Read(head)
		node := m.Alloc()
		m.Write(node, lv{val: arg, next: h.next})
		m.Write(head, lv{next: node})
		return arg
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				l.ApplyOp(id, prepend, uint64(id*opsPer+k)+1)
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	cnt := 0
	for it := head.Current().next; it != nil; it = it.Current().next {
		v := it.Current().val
		if seen[v] {
			t.Fatalf("value %d appears twice in the list", v)
		}
		seen[v] = true
		cnt++
	}
	if cnt != n*opsPer {
		t.Fatalf("list has %d nodes, want %d", cnt, n*opsPer)
	}
}
