package xatomic

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		index uint16
		stamp uint64
	}{
		{0, 0},
		{1, 1},
		{65535, 0},
		{0, TimedStampMax},
		{65535, TimedStampMax},
		{1234, 0xABCDEF},
	}
	for _, c := range cases {
		i, s := UnpackTimed(PackTimed(c.index, c.stamp))
		if i != c.index || s != c.stamp {
			t.Fatalf("round-trip (%d,%d) -> (%d,%d)", c.index, c.stamp, i, s)
		}
	}
}

func TestPackUnpackQuick(t *testing.T) {
	f := func(index uint16, stamp uint64) bool {
		stamp &= TimedStampMax
		i, s := UnpackTimed(PackTimed(index, stamp))
		return i == index && s == stamp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackStampWraps(t *testing.T) {
	// A stamp beyond 48 bits wraps silently rather than corrupting the index.
	w := PackTimed(7, TimedStampMax+1)
	i, s := UnpackTimed(w)
	if i != 7 {
		t.Fatalf("index corrupted by overflowing stamp: %d", i)
	}
	if s != 0 {
		t.Fatalf("stamp = %d, want wrap to 0", s)
	}
}

func TestTimedWordStoreLoad(t *testing.T) {
	var w TimedWord
	w.Store(12, 34)
	i, s := w.Load()
	if i != 12 || s != 34 {
		t.Fatalf("Load = (%d,%d), want (12,34)", i, s)
	}
}

func TestTimedWordCAS(t *testing.T) {
	var w TimedWord
	w.Store(1, 10)
	raw := w.LoadRaw()
	if !w.CompareAndSwap(raw, 2, 11) {
		t.Fatal("CAS with current raw failed")
	}
	if w.CompareAndSwap(raw, 3, 12) {
		t.Fatal("CAS with stale raw succeeded")
	}
	i, s := w.Load()
	if i != 2 || s != 11 {
		t.Fatalf("Load = (%d,%d), want (2,11)", i, s)
	}
}

func TestTimedWordCASDistinguishesSameIndexDifferentStamp(t *testing.T) {
	// The stamp is exactly what makes index reuse ABA-safe: the same index
	// with a bumped stamp must not satisfy a stale expectation.
	var w TimedWord
	w.Store(5, 100)
	stale := w.LoadRaw()
	if !w.CompareAndSwap(stale, 5, 101) {
		t.Fatal("setup CAS failed")
	}
	if w.CompareAndSwap(stale, 6, 102) {
		t.Fatal("stale CAS succeeded against same index, newer stamp")
	}
}

// TestTimedWordStampWrapVersionReuse pins the wrap bound's sharpness from
// the package comment: the packed word recurs — and a stale CAS succeeds
// again — after EXACTLY 2^48 successful updates, and not one update
// earlier. The "2^48 updates" are simulated by packing the post-wrap stamp
// values directly; what is under test is the recurrence structure of the
// word, not the counter loop.
func TestTimedWordStampWrapVersionReuse(t *testing.T) {
	var w TimedWord
	w.Store(5, 7)
	stale := w.LoadRaw() // the word some stalled thread remembered

	// One update short of a full wrap: stamp 7 + (2^48 - 1) wraps to 6.
	// Same index, different stamp — the stale CAS must still fail.
	w.Store(5, (7+TimedStampMax)&TimedStampMax)
	if i, s := w.Load(); i != 5 || s != 6 {
		t.Fatalf("pre-wrap word = (%d,%d), want (5,6)", i, s)
	}
	if w.CompareAndSwap(stale, 9, 10) {
		t.Fatal("stale CAS succeeded one update before the wrap bound")
	}

	// The 2^48th update: stamp 7 + 2^48 wraps back to exactly 7. The word
	// is bit-identical to the stale observation, so the stale CAS succeeds
	// — this is the ABA the bound admits, reachable only by a thread
	// stalled across 2^48 successful updates.
	w.Store(5, (7+TimedStampMax+1)&TimedStampMax)
	if w.LoadRaw() != stale {
		t.Fatal("full 2^48 advance did not reproduce the observed word")
	}
	if !w.CompareAndSwap(stale, 9, 10) {
		t.Fatal("recurred word rejected the stale CAS; wrap analysis is wrong")
	}
}

// TestTimedWordCASStampMasksLikePack documents that CompareAndSwap packs
// its stamp exactly like PackTimed: an overflowing stamp wraps into the
// stamp field and never corrupts the index bits.
func TestTimedWordCASStampMasksLikePack(t *testing.T) {
	var w TimedWord
	w.Store(3, TimedStampMax)
	if !w.CompareAndSwap(w.LoadRaw(), 3, TimedStampMax+1) {
		t.Fatal("CAS failed")
	}
	if i, s := w.Load(); i != 3 || s != 0 {
		t.Fatalf("post-overflow word = (%d,%d), want (3,0) (stamp wraps, index intact)", i, s)
	}
}
