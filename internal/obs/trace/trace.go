// Package trace is the flight recorder of the observability plane: a
// wait-free, per-thread ring of typed events recording WHAT the combining
// machinery did — which process committed which round and how wide it was,
// when a publish CAS failed, when the backoff window grew, when the
// recycling ring hit or missed, when the anonymous hazard table overflowed,
// and when a queue batch was spliced. The metrics plane (package obs)
// answers "how much"; this package answers "what happened, in what order".
//
// The design carries the single-writer discipline one level up from
// counters to events:
//
//   - One ring per process id. Only the goroutine driving process i writes
//     ring i, so recording an event is a handful of uncontended atomic
//     stores — no RMW, no coherence traffic between writers, the same cost
//     profile as obs.Counter.
//   - Power-of-two capacity, overwrite-oldest. A full ring costs nothing:
//     the writer keeps going and the oldest events are lost, never the
//     writer's time. This is what preserves wait-freedom — a tracer can
//     never make an operation wait, block, or allocate.
//   - Mod-2 sequence stamps. Each slot carries a header word holding
//     2·seq+1 while the writer is mid-write and 2·seq+2 once the slot is
//     consistent. A concurrent Snapshot re-reads the header after copying
//     the payload and simply discards torn slots (odd header, or header
//     changed between the two reads) — the seqlock argument of the paper's
//     pooled records (Algorithm 3 line 11), applied per event slot.
//
// Round events are sampled with the same 1-in-k per-thread knob as
// obs.SimRecorder (SetSampleEvery; default obs.DefaultSampleEvery), since
// stamping a round needs the same clock reads the recorder rations. Rare
// events that already sit on a slow path — a recycling miss (which
// allocates), backoff growth (two failed CASes), hazard-table overflow
// (which allocates) — are recorded unconditionally. All methods are
// nil-receiver safe no-ops, so a nil *Tracer IS tracing disabled and
// instrumented hot paths pay one predictable branch.
//
// On top of the rings, every ring maintains two always-on progress
// counters — operations started and operations committed — which the
// Watchdog (watchdog.go) scans to flag threads whose announced operation
// has not completed within a round budget: the observable counterpart of
// the construction's wait-freedom bound.
package trace

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pad"
)

// Kind identifies the type of a recorded event.
type Kind uint8

const (
	// KindRound is a committed combining round: the recording process won
	// the publish CAS. A = degree of combining (announce slots applied), B =
	// popcount of the Act announce bit-vector when the round was built, C =
	// logical operations applied (each slot carries a vector, so C ≥ A; C/A
	// is the batch amplification on top of the combining degree).
	// Dur spans announce → commit, so a Chrome export renders it as a
	// complete per-pid track event.
	KindRound Kind = 1 + iota
	// KindServed is an operation completed by another thread's combine
	// (the recording process never published). Dur spans announce → return.
	KindServed
	// KindCASFail is a failed publish: the state CAS lost (B = 0) or the
	// bounded hazard acquisition was exhausted by concurrent publishes
	// (B = 1). A = the attempt round index (0 or 1).
	KindCASFail
	// KindBackoffGrow is an adaptive-backoff window expansion (the thread's
	// publish failed twice — the paper's contention signal). A = the new
	// window size in spin iterations. Always recorded.
	KindBackoffGrow
	// KindRecycleHit is a combining round rebuilt into a recycled state
	// record. A = records resident in the ring after the pop.
	KindRecycleHit
	// KindRecycleMiss is a fresh state-record allocation: every retired
	// record was still hazard-protected (or the ring is warming up).
	// A = records resident in the ring. Always recorded.
	KindRecycleMiss
	// KindHazardOverflow is an anonymous hazard-slot overflow: a reader
	// found every claimable slot held and pushed a new one. Recorded in the
	// shared ring (no process id). Always recorded.
	KindHazardOverflow
	// KindSplice is a queue batch hand-off: a dequeuer helped link an
	// enqueue batch onto the shared list (A = 1) or an enqueuer spliced on
	// the fallback path (A = 0).
	KindSplice
	// KindAllocHandoff is a memory-plane chain exchange through the shared
	// pool: A = 0 for a take, 1 for a give, 2 for a drop to the GC (pool
	// full — the allocator's space bound at work). B = the chain length.
	// Recorded in the shared ring (handles outnumber process ids). Always
	// recorded — handoffs happen once per B block operations.
	KindAllocHandoff
	// KindAllocStarved is a guarded allocation that found every candidate
	// block hazard-protected and fell back to a fresh allocation. A = blocks
	// probed. Recorded in the shared ring. Always recorded.
	KindAllocStarved
)

// String returns the event kind's export name.
func (k Kind) String() string {
	switch k {
	case KindRound:
		return "round"
	case KindServed:
		return "served"
	case KindCASFail:
		return "cas_fail"
	case KindBackoffGrow:
		return "backoff_grow"
	case KindRecycleHit:
		return "recycle_hit"
	case KindRecycleMiss:
		return "recycle_miss"
	case KindHazardOverflow:
		return "hazard_overflow"
	case KindSplice:
		return "splice"
	case KindAllocHandoff:
		return "alloc_handoff"
	case KindAllocStarved:
		return "alloc_starved"
	}
	return "unknown"
}

// argNames returns the export labels of the kind's A, B, and C payload words
// ("" = not meaningful for this kind).
func (k Kind) argNames() (a, b, c string) {
	switch k {
	case KindRound:
		return "degree", "act", "ops"
	case KindCASFail:
		return "attempt", "hazard", ""
	case KindBackoffGrow:
		return "window", "", ""
	case KindRecycleHit, KindRecycleMiss:
		return "resident", "", ""
	case KindSplice:
		return "helper", "", ""
	case KindAllocHandoff:
		return "dir", "chain", ""
	case KindAllocStarved:
		return "probed", "", ""
	}
	return "", "", ""
}

// AnonPid is the Pid reported for events recorded without a process id
// (KindHazardOverflow from anonymous readers).
const AnonPid = -1

// Event is one decoded flight-recorder event.
type Event struct {
	Pid     int       // recording process id, or AnonPid
	Kind    Kind      //
	Seq     uint64    // per-ring monotone event index (detects overwrites)
	Start   obs.Stamp // ns since the obs epoch (same clock as SimRecorder)
	Dur     int64     // ns; 0 for instant events
	A, B, C uint64    // kind-specific payload (see the Kind constants)
}

// slot is one ring slot. hdr is the mod-2 sequence stamp: 0 = never
// written, 2·seq+1 = write in progress, 2·seq+2 = consistent. The payload
// words are individually atomic so a racing Snapshot is race-detector-clean;
// consistency of the WHOLE slot comes from re-validating hdr.
type slot struct {
	hdr     atomic.Uint64
	kind    atomic.Uint64
	start   atomic.Int64
	dur     atomic.Int64
	a, b, c atomic.Uint64
}

// write records one event into the slot for sequence number seq.
func (s *slot) write(seq uint64, k Kind, start obs.Stamp, dur int64, a, b, c uint64) {
	s.hdr.Store(2*seq + 1) // open: odd marks the slot torn
	s.kind.Store(uint64(k))
	s.start.Store(int64(start))
	s.dur.Store(dur)
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.hdr.Store(2*seq + 2) // close: even and unique per reuse
}

// read decodes the slot if it is consistent. The header is read before and
// after the payload; any concurrent rewrite changes it (each reuse strictly
// increases hdr), so a torn copy is always discarded.
func (s *slot) read(pid int) (Event, bool) {
	h1 := s.hdr.Load()
	if h1 == 0 || h1&1 == 1 {
		return Event{}, false
	}
	ev := Event{
		Pid:   pid,
		Kind:  Kind(s.kind.Load()),
		Seq:   h1/2 - 1,
		Start: obs.Stamp(s.start.Load()),
		Dur:   s.dur.Load(),
		A:     s.a.Load(),
		B:     s.b.Load(),
		C:     s.c.Load(),
	}
	if s.hdr.Load() != h1 {
		return Event{}, false
	}
	return ev, true
}

// ring is one process id's event ring plus its private sampling state and
// always-on progress counters. pos and the sampling fields are owner-only
// (plain words); started/committed are read by the watchdog and snapshots,
// so they are atomic (single-writer load+store, like obs.Counter slots).
// The trailing pad keeps neighbouring rings' counters off one line.
type ring struct {
	slots     []slot
	pos       uint64 // next event sequence number (owner-only)
	sampleSeq uint64 // operations seen, for the 1-in-k gate (owner-only)
	sampled   bool   // current operation's sampling decision (owner-only)
	started   atomic.Uint64
	committed atomic.Uint64
	_         pad.CacheLinePad
}

func (r *ring) write(k Kind, start obs.Stamp, dur int64, a, b, c uint64) {
	r.slots[r.pos&uint64(len(r.slots)-1)].write(r.pos, k, start, dur, a, b, c)
	r.pos++
}

// DefaultCapacity is the default number of event slots per process ring.
const DefaultCapacity = 1024

// anonCapacity sizes the shared ring for id-less events (hazard overflows
// are bounded by the historical maximum of simultaneous anonymous readers,
// so a small ring never loses the interesting ones).
const anonCapacity = 64

// Tracer is a flight recorder for n process ids. The zero value is not
// usable; a nil *Tracer is the disabled recorder (every method no-ops).
type Tracer struct {
	rings []ring
	mask  uint64

	// anon is the shared ring for events with no process id. Writers claim
	// a sequence number with one Fetch&Add, then a slot with one CAS on its
	// header; a claim that loses (two writers lapped onto one slot) drops
	// the event rather than wait — wait-free, and torn-proof by the same
	// header protocol.
	anonPos   atomic.Uint64
	anonSlots []slot
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithCapacity sets the per-process ring capacity (rounded up to a power of
// two, min 16). Default DefaultCapacity.
func WithCapacity(c int) Option {
	return func(t *Tracer) {
		if c < 16 {
			c = 16
		}
		t.rings[0].slots = make([]slot, 1<<bits.Len(uint(c-1)))
	}
}

// WithSampleEvery records round events on every k-th operation per thread
// (k rounds up to a power of two; k <= 1 records every operation) — the
// same knob as obs.SimRecorder.SetSampleEvery.
func WithSampleEvery(k int) Option {
	return func(t *Tracer) { t.SetSampleEvery(k) }
}

// New returns a flight recorder for n process ids (n rounds up to 1).
func New(n int, opts ...Option) *Tracer {
	if n < 1 {
		n = 1
	}
	t := &Tracer{
		rings:     make([]ring, n),
		mask:      obs.DefaultSampleEvery - 1,
		anonSlots: make([]slot, anonCapacity),
	}
	t.rings[0].slots = make([]slot, DefaultCapacity)
	for _, o := range opts {
		o(t)
	}
	cap0 := len(t.rings[0].slots)
	for i := 1; i < n; i++ {
		t.rings[i].slots = make([]slot, cap0)
	}
	return t
}

// N returns the number of per-process rings.
func (t *Tracer) N() int {
	if t == nil {
		return 0
	}
	return len(t.rings)
}

// Capacity returns the per-process ring capacity.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.rings[0].slots)
}

// SetSampleEvery records round events on every k-th operation per thread.
// Call before the first operation; not safe concurrently with recording.
func (t *Tracer) SetSampleEvery(k int) {
	if t == nil {
		return
	}
	p := uint64(1)
	for p < uint64(k) {
		p <<= 1
	}
	t.mask = p - 1
}

// OpStart opens an operation for process id: the started progress counter
// advances (always — the watchdog needs every announce) and the operation's
// sampling decision is drawn. Returns the operation's start stamp, or 0
// when the operation is unsampled (no clock was read) or the tracer is nil.
func (t *Tracer) OpStart(id int) obs.Stamp {
	if t == nil {
		return 0
	}
	r := &t.rings[id]
	v := &r.started
	v.Store(v.Load() + 1)
	hit := r.sampleSeq&t.mask == 0
	r.sampleSeq++
	r.sampled = hit
	if !hit {
		return 0
	}
	return obs.Now()
}

// OpCommit closes an operation that won its publish CAS, having combined
// `degree` announce slots — `ops` logical operations, counting each slot's
// whole announced vector — out of an Act vector with `act` bits set. The
// committed progress counter advances always; the round event is recorded
// only for sampled operations (t0 != 0).
func (t *Tracer) OpCommit(id int, t0 obs.Stamp, degree, act, ops uint64) {
	if t == nil {
		return
	}
	r := &t.rings[id]
	v := &r.committed
	v.Store(v.Load() + 1)
	if t0 == 0 {
		return
	}
	r.write(KindRound, t0, int64(obs.Now()-t0), degree, act, ops)
}

// OpServed closes an operation completed by another thread's combine.
func (t *Tracer) OpServed(id int, t0 obs.Stamp) {
	if t == nil {
		return
	}
	r := &t.rings[id]
	v := &r.committed
	v.Store(v.Load() + 1)
	if t0 == 0 {
		return
	}
	r.write(KindServed, t0, int64(obs.Now()-t0), 0, 0, 0)
}

// Instant records a mid-operation event — honouring the current operation's
// sampling decision, like SimRecorder.CombineObserved. Use for per-round
// events (CAS failures, recycling hits, splices) whose rate tracks the
// operation rate.
func (t *Tracer) Instant(id int, k Kind, a, b uint64) {
	if t == nil {
		return
	}
	r := &t.rings[id]
	if !r.sampled {
		return
	}
	r.write(k, obs.Now(), 0, a, b, 0)
}

// Rare records an event unconditionally (no sampling gate). Use for events
// that already sit on a slow path — a recycling miss pays an allocation,
// backoff growth two failed CASes — so the clock read is never the cost
// that matters.
func (t *Tracer) Rare(id int, k Kind, a, b uint64) {
	if t == nil {
		return
	}
	t.rings[id].write(k, obs.Now(), 0, a, b, 0)
}

// AnonInstant records an event with no process id into the shared ring
// (hazard-table overflow from an anonymous reader). One Fetch&Add claims a
// sequence number and one CAS claims the slot; if the CAS loses — another
// writer lapped the ring onto the same slot mid-write — the event is
// dropped rather than waited for.
func (t *Tracer) AnonInstant(k Kind, a, b uint64) {
	if t == nil {
		return
	}
	seq := t.anonPos.Add(1) - 1
	s := &t.anonSlots[seq&uint64(len(t.anonSlots)-1)]
	h := s.hdr.Load()
	if h&1 == 1 || !s.hdr.CompareAndSwap(h, 2*seq+1) {
		return // concurrent writer on this slot: drop, never wait
	}
	s.kind.Store(uint64(k))
	s.start.Store(int64(obs.Now()))
	s.dur.Store(0)
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(0)
	s.hdr.Store(2*seq + 2)
}

// Progress returns process id's operation progress counters: operations
// announced (started) and operations completed (committed, whether by the
// process's own publish or a helper's). started-committed is the number of
// in-flight operations (0 or 1 under the one-goroutine-per-id contract).
func (t *Tracer) Progress(id int) (started, committed uint64) {
	if t == nil {
		return 0, 0
	}
	r := &t.rings[id]
	return r.started.Load(), r.committed.Load()
}

// TotalCommitted sums the committed counter across all process ids — the
// system-wide round/operation completion count the watchdog budgets
// against.
func (t *Tracer) TotalCommitted() uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	for i := range t.rings {
		total += t.rings[i].committed.Load()
	}
	return total
}

// SnapshotPid decodes process id's ring: consistent events only, in
// sequence order. Safe concurrently with the writer; slots being rewritten
// or overwritten during the scan are discarded by their header stamps.
func (t *Tracer) SnapshotPid(id int) []Event {
	if t == nil {
		return nil
	}
	r := &t.rings[id]
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev, ok := r.slots[i].read(id); ok {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Snapshot decodes every ring (per-process and shared) into one event list
// ordered by start stamp. Not a linearizable cross-ring cut — the same
// caveat as every per-thread scheme in this repository — but every returned
// event is internally consistent and per-pid sequence numbers are monotone.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for id := range t.rings {
		out = append(out, t.SnapshotPid(id)...)
	}
	for i := range t.anonSlots {
		if ev, ok := t.anonSlots[i].read(AnonPid); ok {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.Seq < b.Seq
	})
	return out
}
