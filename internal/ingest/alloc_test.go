package ingest_test

import (
	"testing"

	"repro/internal/ingest"
	"repro/internal/spool"
)

// gatePipeline builds the single-producer pipeline the allocation gate
// measures: batch-64 appends, a spool that never seals (so no Segment is
// ever allocated mid-measurement), and a trim keeping the active segment
// bounded so the construction's clone buffers stop growing. Drains ride the
// same process id, which keeps the n==1 queue on its solo splice path where
// consumed node chains recycle through the spare slot.
func gatePipeline() *ingest.Pipeline {
	return ingest.New(1, ingest.Config{
		Batch: 64,
		Spool: spool.Config{SegEvents: 1 << 30, PreallocEvents: 1024},
	})
}

// gateOp returns the op the gate repeats: one Append, with a drain + trim
// every batch boundary so the queue, the spool clones, and the retained
// range all stay in steady state.
func gateOp(p *ingest.Pipeline) func() {
	const keep = 128
	var (
		appended uint64
		trim     [1]spool.Op[spool.Event]
	)
	return func() {
		appended++
		p.Append(0, appended)
		if appended%64 == 0 {
			p.Drain(0, 64)
			if appended > keep {
				trim[0] = spool.TrimToOp[spool.Event](appended - keep)
				p.Spool().Do(0, trim[:]...)
			}
		}
	}
}

// TestIngestAppendAllocsSteadyState is the ingest allocation gate,
// mirroring TestApplyAllocsSteadyState: once the recycling rings and clone
// buffers are warm, the full producer append path — sequence stamp, local
// batch buffer, EnqueueBatch splice, drain DequeueBatch, spool ApplyBatch
// clone-and-publish, retention trim — performs ZERO allocations per event
// with tracing disabled.
func TestIngestAppendAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own")
	}
	p := gatePipeline()
	op := gateOp(p)
	for i := 0; i < 4096; i++ { // warm the node free-lists and clone buffers
		op()
	}
	if allocs := testing.AllocsPerRun(600, op); allocs != 0 {
		t.Fatalf("steady-state append allocates %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkIngestAppend measures the steady-state producer append path
// (append + amortized flush/drain/trim) and reports allocs/op — the
// benchmark face of the gate above.
func BenchmarkIngestAppend(b *testing.B) {
	p := gatePipeline()
	op := gateOp(p)
	for i := 0; i < 4096; i++ {
		op()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}
