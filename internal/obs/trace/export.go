// Chrome trace_event and plain-text exporters for flight-recorder
// snapshots. The Chrome format is the Trace Event Format consumed by
// chrome://tracing and Perfetto: one track (tid) per process id, committed
// combining rounds as complete ("X") events whose duration spans
// announce → commit and whose args carry the degree of combining, and
// everything else as instant ("i") events.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// chromeEvent is one Trace Event Format record. Ts/Dur are microseconds
// (floats, so nanosecond stamps keep sub-microsecond precision).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeProcessID is the constant "pid" of the Chrome export; the
// construction's process ids map to trace threads, which is what renders
// them as stacked per-pid tracks.
const chromeProcessID = 1

// WriteChrome writes events as Chrome trace_event JSON
// ({"traceEvents": [...]}) loadable in chrome://tracing or
// https://ui.perfetto.dev. Events should come from Tracer.Snapshot (already
// start-ordered; the format does not require ordering, but viewers load
// ordered files faster).
func WriteChrome(w io.Writer, evs []Event) error {
	out := make([]chromeEvent, 0, len(evs)+8)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromeProcessID,
		Args: map[string]any{"name": "sim flight recorder"},
	})
	seen := map[int]bool{}
	for _, ev := range evs {
		if !seen[ev.Pid] {
			seen[ev.Pid] = true
			name := fmt.Sprintf("pid %d", ev.Pid)
			if ev.Pid == AnonPid {
				name = "anonymous"
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: chromeProcessID, Tid: ev.Pid,
				Args: map[string]any{"name": name},
			})
		}
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Pid:  chromeProcessID,
			Tid:  ev.Pid,
			Ts:   float64(ev.Start) / 1e3,
			Args: map[string]any{"seq": ev.Seq},
		}
		an, bn, cn := ev.Kind.argNames()
		if an != "" {
			ce.Args[an] = ev.A
		}
		if bn != "" {
			ce.Args[bn] = ev.B
		}
		if cn != "" {
			ce.Args[cn] = ev.C
		}
		switch ev.Kind {
		case KindRound, KindServed:
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		default:
			ce.Ph = "i"
			ce.S = "t" // thread-scoped instant
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// WriteText writes events as an aligned human-readable dump, one line per
// event, timestamps relative to the first event.
func WriteText(w io.Writer, evs []Event) error {
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	base := evs[0].Start
	for _, ev := range evs {
		pid := fmt.Sprintf("p%02d", ev.Pid)
		if ev.Pid == AnonPid {
			pid = "p??"
		}
		dur := ""
		if ev.Dur > 0 {
			dur = " dur=" + time.Duration(ev.Dur).String()
		}
		args := ""
		an, bn, cn := ev.Kind.argNames()
		if an != "" {
			args += fmt.Sprintf(" %s=%d", an, ev.A)
		}
		if bn != "" {
			args += fmt.Sprintf(" %s=%d", bn, ev.B)
		}
		if cn != "" {
			args += fmt.Sprintf(" %s=%d", cn, ev.C)
		}
		_, err := fmt.Fprintf(w, "%12s %s #%-6d %-15s%s%s\n",
			"+"+time.Duration(ev.Start-base).String(), pid, ev.Seq, ev.Kind, dur, args)
		if err != nil {
			return err
		}
	}
	return nil
}

// Tail returns the last n events of evs (all of them when n <= 0 or evs is
// shorter) — the usual shape for a trace-on-failure dump or a demo.
func Tail(evs []Event, n int) []Event {
	if n > 0 && len(evs) > n {
		return evs[len(evs)-n:]
	}
	return evs
}

// compile-time check that obs.Stamp stays an integer nanosecond count; the
// exporters convert it to microseconds assuming so.
var _ = int64(obs.Stamp(0))
