package timeline

import (
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/retention"
	"repro/internal/spool"
)

// Spool process ids. The construction's announce slots are single-writer,
// so each timeline actor owns one: the scraper, the annotation feed (SLO
// transitions, watchdog stalls — serialized by a mutex), and the retention
// runner.
const (
	pidScrape = iota
	pidAnnotate
	pidRetention
	pidCount
)

// ringCap bounds the in-memory recent-sample ring kept per series for SLO
// evaluation. At the default 1s interval it covers over 8 minutes — far
// beyond any sane rule window — while staying a fixed-size allocation.
const ringCap = 512

// Config parameterizes a Timeline. The zero value is usable: 1s interval,
// 15 minute retention.
type Config struct {
	// Interval is the scrape period (default 1s, floor 10ms).
	Interval time.Duration
	// Retain bounds sample age; older samples expire as whole segments
	// via one retention op-vector (default 15m).
	Retain time.Duration
	// MaxSamples additionally caps retained entries (0 = no cap).
	MaxSamples int
	// SegSamples is the spool segment size (default 256).
	SegSamples int
	// Rules are the SLO rules evaluated after every scrape.
	Rules []Rule
	// OnBreach, if non-nil, is invoked once per rule episode on each
	// breach and clear transition, from the scraper goroutine — wire it
	// to the same escalation path as the progress watchdog.
	OnBreach func(Breach)
	// Now overrides the clock (unix nanos) for tests.
	Now func() int64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Interval < 10*time.Millisecond {
		c.Interval = 10 * time.Millisecond
	}
	if c.Retain <= 0 {
		c.Retain = 15 * time.Minute
	}
	if c.SegSamples <= 0 {
		c.SegSamples = 256
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// seriesState is the scraper's per-series working set: the metric pointers
// resolved once at construction, the previous-tick totals the deltas are
// computed against, and a fixed ring of recent samples for rule evaluation.
// Only the scraper touches it after construction.
type seriesState struct {
	name string

	ops, casSuccess, casFail, combined []*obs.Counter
	lat, combine                       []*obs.Histogram

	prevOps, prevCASSuccess, prevCASFail, prevCombined uint64
	prevLat, prevCombine                               obs.HistSnapshot

	ring    []Sample
	ringLen int // filled prefix while warming; == len(ring) afterwards
	ringPos int // next write position
}

func (ss *seriesState) push(s Sample) {
	ss.ring[ss.ringPos] = s
	ss.ringPos = (ss.ringPos + 1) % len(ss.ring)
	if ss.ringLen < len(ss.ring) {
		ss.ringLen++
	}
}

// recent iterates the ring newest-first, stopping when fn returns false.
func (ss *seriesState) recent(fn func(Sample) bool) {
	for i := 1; i <= ss.ringLen; i++ {
		if !fn(ss.ring[(ss.ringPos-i+len(ss.ring))%len(ss.ring)]) {
			return
		}
	}
}

// Timeline owns the metric history log. Construct with New, drive with
// Start/Stop (or Scrape directly in tests), query with Snapshot/Handler.
type Timeline struct {
	cfg    Config
	sp     *spool.Spool[Sample]
	ret    *retention.Runner[Sample]
	series []*seriesState
	names  []string

	lastScrape int64
	batch      []Sample
	offs       []uint64

	ruleMu sync.Mutex // guards ruleState mutable fields (scraper writes, queries read)
	rules  []ruleState

	annotMu  sync.Mutex
	stallTS  [128]int64
	stallPos int

	skipped *obs.Counter // queries that observed expired samples
	samples *obs.Counter // appended scrape samples

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// New builds a timeline over reg, resolving its series from the registry's
// current contents: every counter named <prefix>_ops_total declares the
// series <prefix> (labeled names included — see the package doc), and every
// memory-plane size class (a counter alloc_blocks_total{class="C"}, see
// alloc.Pool.Register) declares the series alloc{class="C"} with the plane's
// families mapped onto the sample columns — Ops carries blocks issued,
// CASSuccess shared-pool handoffs, CASFail guard starvation, Combined fresh
// heap allocations. Metrics registered AFTER New are not scraped, so
// instrument first. reg may also carry the timeline's own self-metrics
// (timeline_samples_total, timeline_query_skip_total).
func New(reg *obs.Registry, cfg Config) *Timeline {
	cfg = cfg.withDefaults()
	t := &Timeline{cfg: cfg}
	for _, name := range reg.CounterNames() {
		base, labels := obs.SplitName(name)
		if !strings.HasSuffix(base, "_ops_total") {
			continue
		}
		prefix := strings.TrimSuffix(base, "_ops_total")
		if labels != "" {
			prefix += "{" + labels + "}"
		}
		ss := &seriesState{
			name:       prefix,
			ops:        reg.LookupCounters(name),
			casSuccess: reg.LookupCounters(obs.Join(prefix, "_cas_success_total")),
			casFail:    reg.LookupCounters(obs.Join(prefix, "_cas_fail_total")),
			combined:   reg.LookupCounters(obs.Join(prefix, "_combined_total")),
			lat:        reg.LookupHistograms(obs.Join(prefix, "_op_latency_ns")),
			combine:    reg.LookupHistograms(obs.Join(prefix, "_combine_degree")),
			ring:       make([]Sample, ringCap),
		}
		t.series = append(t.series, ss)
		t.names = append(t.names, prefix)
	}
	for _, name := range reg.CounterNames() {
		base, labels := obs.SplitName(name)
		if base != "alloc_blocks_total" {
			continue
		}
		prefix := "alloc"
		if labels != "" {
			prefix += "{" + labels + "}"
		}
		ss := &seriesState{
			name:       prefix,
			ops:        reg.LookupCounters(name),
			casSuccess: reg.LookupCounters(obs.Join(prefix, "_pool_handoff_total")),
			casFail:    reg.LookupCounters(obs.Join(prefix, "_starved_total")),
			combined:   reg.LookupCounters(obs.Join(prefix, "_fresh_total")),
			ring:       make([]Sample, ringCap),
		}
		t.series = append(t.series, ss)
		t.names = append(t.names, prefix)
	}
	t.sp = spool.New[Sample](pidCount, spool.Config{
		SegEvents:      cfg.SegSamples,
		BucketNs:       cfg.Interval.Nanoseconds() * int64(cfg.SegSamples),
		PreallocEvents: cfg.SegSamples,
	})
	t.ret = retention.NewRunner[Sample](t.sp, pidRetention, retention.Policy{
		MaxAge:    cfg.Retain,
		MaxEvents: cfg.MaxSamples,
	})
	t.ret.Now = cfg.Now
	t.batch = make([]Sample, len(t.series))
	t.offs = make([]uint64, 0, len(t.series))
	t.rules = make([]ruleState, len(cfg.Rules))
	for i := range cfg.Rules {
		t.rules[i] = ruleState{rule: cfg.Rules[i].withDefaults()}
	}
	t.resolveRuleTargets()
	t.skipped = reg.Counter("timeline_query_skip_total", 1)
	t.samples = obs.NewCounter(1)
	reg.AttachCounter("timeline_samples_total", t.samples)
	return t
}

// SeriesNames returns the discovered series, in scrape order.
func (t *Timeline) SeriesNames() []string { return t.names }

// Rules returns the configured SLO rules, in evaluation order.
func (t *Timeline) Rules() []Rule {
	out := make([]Rule, len(t.rules))
	for i := range t.rules {
		out[i] = t.rules[i].rule
	}
	return out
}

// Interval returns the configured scrape interval.
func (t *Timeline) Interval() time.Duration { return t.cfg.Interval }

// Snapshot returns a point-in-time view of the sample log. The view is a
// PSim.Read snapshot: immutable, valid forever, and obtained without
// blocking the scraper.
func (t *Timeline) Snapshot() spool.View[Sample] { return t.sp.Snapshot() }

// CountSkip records that a query observed skipped (expired) samples.
// Serialized on the annotation mutex — the counter slot is single-writer
// and queries are concurrent.
func (t *Timeline) CountSkip(n uint64) {
	if n > 0 {
		t.annotMu.Lock()
		t.skipped.Add(0, n)
		t.annotMu.Unlock()
	}
}

// Compact runs one retention pass now and returns the new low watermark:
// every expiry leg the policy implies is submitted as ONE op-vector, so
// samples expire at a single linearization point. The Start loop runs
// passes periodically; tests and batch tools call it directly.
func (t *Timeline) Compact() uint64 { return t.ret.Pass() }

// Scrape runs one scrape pass at the current clock: per-series deltas are
// computed against the previous pass, one Sample per series is appended as
// a single batch (one linearizable op-vector), and SLO rules are evaluated
// on the updated rings. Steady-state cost is 0 allocs/op — the sample is
// fixed-size, the batch buffer and the spool's clone buffers are recycled.
// Called by the Start loop; tests drive it directly.
func (t *Timeline) Scrape() {
	now := t.cfg.Now()
	interval := t.cfg.Interval.Nanoseconds()
	if t.lastScrape != 0 && now > t.lastScrape {
		interval = now - t.lastScrape
	}
	t.lastScrape = now

	for i, ss := range t.series {
		s := Sample{TS: now, IntervalNs: interval, Series: int32(i), Kind: KindSample}

		ops := sumCounters(ss.ops)
		s.Ops, ss.prevOps = ops-ss.prevOps, ops
		cs := sumCounters(ss.casSuccess)
		s.CASSuccess, ss.prevCASSuccess = cs-ss.prevCASSuccess, cs
		cf := sumCounters(ss.casFail)
		s.CASFail, ss.prevCASFail = cf-ss.prevCASFail, cf
		cb := sumCounters(ss.combined)
		s.Combined, ss.prevCombined = cb-ss.prevCombined, cb

		lat := snapHists(ss.lat)
		d := lat
		d.Sub(ss.prevLat)
		ss.prevLat = lat
		s.LatCount = d.Count
		s.LatP50 = d.Quantile(0.50)
		s.LatP90 = d.Quantile(0.90)
		s.LatP99 = d.Quantile(0.99)
		s.LatMax = d.Max

		comb := snapHists(ss.combine)
		dc := comb
		dc.Sub(ss.prevCombine)
		ss.prevCombine = comb
		s.CombineMeanMilli = uint64(dc.Mean() * 1000)

		t.batch[i] = s
		ss.push(s)
	}
	if len(t.batch) > 0 {
		t.offs = t.sp.AppendBatch(pidScrape, t.batch, t.offs[:0])
		t.samples.Add(0, uint64(len(t.batch)))
	}
	t.evalRules(now)
}

func sumCounters(l []*obs.Counter) uint64 {
	var t uint64
	for _, c := range l {
		t += c.Total()
	}
	return t
}

func snapHists(l []*obs.Histogram) obs.HistSnapshot {
	var out obs.HistSnapshot
	for _, h := range l {
		out.Merge(h.Snapshot())
	}
	return out
}

// annotate appends one annotation entry. Annotations share process id
// pidAnnotate behind a mutex: they come from several goroutines (SLO
// transitions on the scraper, watchdog callbacks on the scan goroutine)
// but the construction's announce slots are single-writer.
func (t *Timeline) annotate(s Sample) {
	t.annotMu.Lock()
	t.sp.Append(pidAnnotate, s)
	if s.Kind == KindStall {
		t.stallTS[t.stallPos] = s.TS
		t.stallPos = (t.stallPos + 1) % len(t.stallTS)
	}
	t.annotMu.Unlock()
}

// RecordStall feeds a progress-watchdog stall episode into the timeline:
// it becomes a KindStall annotation (Series = pid, Value = outlived
// rounds) and counts toward the `stalls` SLO rule. Wire it into the
// trace.Watchdog onStall callback.
func (t *Timeline) RecordStall(pid int, rounds uint64) {
	t.annotate(Sample{TS: t.cfg.Now(), Series: int32(pid), Kind: KindStall, Value: float64(rounds)})
}

// stallsSince counts recorded stall episodes at or after cutoff.
func (t *Timeline) stallsSince(cutoff int64) int {
	t.annotMu.Lock()
	defer t.annotMu.Unlock()
	n := 0
	for _, ts := range t.stallTS {
		if ts != 0 && ts >= cutoff {
			n++
		}
	}
	return n
}

// Start launches the periodic scrape loop and the retention runner.
func (t *Timeline) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	retEvery := t.cfg.Interval
	if retEvery < time.Second {
		retEvery = time.Second
	}
	t.ret.Start(retEvery)
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(t.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Scrape()
			}
		}
	}(t.stop, t.done)
}

// Stop halts the scrape loop and retention runner.
func (t *Timeline) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.ret.Stop()
	t.stop, t.done = nil, nil
}
