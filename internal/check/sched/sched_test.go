package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/check"
	v2 "repro/internal/check/v2"
	"repro/internal/core"
	"repro/internal/queue"
)

// runCounter drives a fresh PSim fetch-and-add counter under cfg and
// returns the recorded history.
func runCounter(cfg Config, opsPer int) ([]check.Operation, Stats) {
	u := core.NewPSim(cfg.Threads, uint64(0), func(st *uint64, pid int, arg uint64) uint64 {
		prev := *st
		*st += arg
		return prev
	})
	rec := check.NewRecorder(cfg.Threads * opsPer)
	st := Exec(cfg, func(pid int) {
		for k := 0; k < opsPer; k++ {
			slot := rec.Invoke(pid, check.OpAdd, 1)
			prev := u.Apply(pid, 1)
			rec.Return(slot, prev, false)
		}
	})
	return rec.Operations(), st
}

func TestExecReplaysIdentically(t *testing.T) {
	cfg := Config{Seed: 0xfeedface, Threads: 3, Preemptions: -1}
	h1, s1 := runCounter(cfg, 8)
	h2, s2 := runCounter(cfg, 8)
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("same seed, different histories:\n%s\nvs\n%s", v2.FormatHistory(h1), v2.FormatHistory(h2))
	}
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if s1.Points == 0 {
		t.Fatal("no instrumented yield points reached — is the core hook wired?")
	}
}

func TestExecSeedsExploreDifferentInterleavings(t *testing.T) {
	distinct := make(map[string]bool)
	for seed := uint64(0); seed < 10; seed++ {
		h, _ := runCounter(Config{Seed: seed, Threads: 3, Preemptions: -1}, 6)
		distinct[string(v2.FormatHistory(h))] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("10 seeds produced %d distinct interleavings — scheduler is not steering", len(distinct))
	}
}

func TestExecHistoriesAreLinearizable(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		h, _ := runCounter(Config{Seed: seed, Threads: 4, Preemptions: -1}, 6)
		if err := v2.Check(h); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, v2.FormatHistory(h))
		}
	}
}

func TestExecPreemptionBudget(t *testing.T) {
	_, st := runCounter(Config{Seed: 7, Threads: 3, Preemptions: 0}, 5)
	if st.Switches != 0 {
		t.Fatalf("budget 0 took %d switches", st.Switches)
	}
	if st.Points == 0 {
		t.Fatal("no yield points with budget 0 — instrumentation missing")
	}
	_, st = runCounter(Config{Seed: 7, Threads: 3, Preemptions: 5}, 5)
	if st.Switches > 5 {
		t.Fatalf("budget 5 took %d switches", st.Switches)
	}
}

// runQueueScenario drives a fresh SimQueue through cfg's schedule: each
// worker enqueues `per` unique values, then dequeues `per` times. Shared
// with FuzzSchedule.
func runQueueScenario(cfg Config, per int) []check.Operation {
	q := queue.NewSimQueue[uint64](cfg.Threads)
	rec := check.NewRecorder(cfg.Threads * per * 2)
	Exec(cfg, func(pid int) {
		for k := 0; k < per; k++ {
			v := uint64(pid*100 + k + 1)
			slot := rec.Invoke(pid, check.OpEnqueue, v)
			q.Enqueue(pid, v)
			rec.Return(slot, 0, false)
		}
		for k := 0; k < per; k++ {
			slot := rec.Invoke(pid, check.OpDequeue, 0)
			v, ok := q.Dequeue(pid)
			rec.Return(slot, v, ok)
		}
	})
	return rec.Operations()
}

// TestSimQueueUnderAdversarialSchedules drives the two-instance SimQueue
// protocol through many seeded schedules (covering its own announce,
// hazard-acquire, and CAS preemption points) and checks every resulting
// history with the queue axiom checker.
func TestSimQueueUnderAdversarialSchedules(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		cfg := Config{Seed: seed, Threads: 3, Preemptions: -1}
		hist := runQueueScenario(cfg, 4)
		if err := v2.ForwardQueue(hist); err != nil {
			t.Fatalf("seed %d (%v): %v\n%s", seed, cfg, err, v2.FormatHistory(hist))
		}
	}
}

func TestMinimize(t *testing.T) {
	probes := 0
	fails := func(c Config) bool {
		probes++
		return c.Preemptions < 0 || c.Preemptions >= 7
	}
	got := Minimize(Config{Seed: 1, Threads: 2, Preemptions: -1}, fails)
	if got.Preemptions != 7 {
		t.Fatalf("minimized to %d, want 7 (%d probes)", got.Preemptions, probes)
	}

	// Already-passing configs come back unchanged.
	cfg := Config{Seed: 1, Threads: 2, Preemptions: 3}
	if got := Minimize(cfg, func(Config) bool { return false }); got != cfg {
		t.Fatalf("passing config changed: %+v", got)
	}

	// A failure independent of scheduling minimizes to budget 0.
	if got := Minimize(cfg, func(Config) bool { return true }); got.Preemptions != 0 {
		t.Fatalf("always-failing minimized to %d, want 0", got.Preemptions)
	}

	// Only the unbounded schedule fails: config must survive untouched.
	unbounded := Config{Seed: 9, Threads: 2, Preemptions: -1}
	if got := Minimize(unbounded, func(c Config) bool { return c.Preemptions < 0 }); got != unbounded {
		t.Fatalf("unbounded-only failure changed config: %+v", got)
	}
}

func TestConfigString(t *testing.T) {
	s := Config{Seed: 0x2a, Threads: 4, Preemptions: 3}.String()
	want := "sched.Config{Seed: 0x2a, Threads: 4, Preemptions: 3}"
	if s != want {
		t.Fatalf("got %q, want %q", s, want)
	}
	if fmt.Sprintf("%v", Config{}) == "" {
		t.Fatal("empty config must still render")
	}
}
