package core

import (
	"sync/atomic"

	"repro/internal/pad"
)

// This file carries the state-record recycling discipline of the GC-based
// P-Sim variants: a per-thread Ring of retired records plus a Hazards table
// that tells recyclers which retired records are still being read.
//
// The paper's pooled layout (PSimWord) recycles records under seq1/seq2
// stamps and lets readers *detect* a torn copy after the fact. That is not
// available to the generic PSim: its State records hold arbitrary Go values
// (pointers, slices), so a reader overlapping a recycler's in-place rewrite
// would be a data race under the Go memory model no matter how it is
// validated afterwards. Observation 3.2's "retired two successful CASes ago"
// bound is likewise not enough on its own — a goroutine preempted mid-round
// can hold a record reference across arbitrarily many publishes.
//
// Hazard slots close that gap while keeping the paper's cost profile: a
// reader protects the record it is about to read with one store and one
// validating re-load (both on its own cache-line-padded slot / the single
// shared pointer), and a recycler reuses a retired record only after a scan
// of the slots finds no reader holding it. Because Go's sync/atomic
// operations are sequentially consistent, the classic hazard-pointer
// argument applies verbatim: if the scan misses a reader's slot store, that
// reader's validating re-load is ordered after the record's retirement and
// therefore fails, so the reader never touches the record.

// Hazards is a table of hazard-pointer slots guarding records of type T.
// Slots [0, fixed) are single-writer: slot i belongs to the goroutine
// driving process i (stored on every protected read, never cleared — a
// stale slot merely pins one retired record until the owner's next read).
// Slots [fixed, fixed+anon) are claimable by anonymous readers (Read paths
// with no process id) with a CAS on the slot's claim word.
type Hazards[T any] struct {
	fixed []pad.Pointer[T]
	anon  []anonSlot[T]
}

// anonSlot is one claimable hazard slot; claim word and pointer sit on the
// same (padded) line because they are always touched together.
type anonSlot[T any] struct {
	claimed atomic.Uint32
	ptr     atomic.Pointer[T]
	_       pad.CacheLinePad
}

// NewHazards returns a table with `fixed` per-process slots and `anon`
// claimable reader slots.
func NewHazards[T any](fixed, anon int) *Hazards[T] {
	if fixed < 0 {
		fixed = 0
	}
	if anon < 0 {
		anon = 0
	}
	return &Hazards[T]{
		fixed: make([]pad.Pointer[T], fixed),
		anon:  make([]anonSlot[T], anon),
	}
}

// Acquire loads src and protects the loaded record in fixed slot `slot`:
// store the pointer, re-load src, and accept only if the pointer is still
// current (at which point the record cannot be retired-and-recycled under
// the reader — see the package comment). It retries up to `attempts` times
// (attempts <= 0 means retry until success; every failed attempt implies a
// concurrent successful publish, so the unbounded form is lock-free).
// Returns the protected record and whether protection was established.
func (h *Hazards[T]) Acquire(slot int, src *atomic.Pointer[T], attempts int) (*T, bool) {
	s := &h.fixed[slot].P
	for try := 0; attempts <= 0 || try < attempts; try++ {
		p := src.Load()
		s.Store(p)
		if src.Load() == p {
			return p, true
		}
	}
	return nil, false
}

// AcquireAnon claims an anonymous slot, then runs the Acquire protocol in it
// until it succeeds. It returns the protected record and the claimed slot
// index, which the caller must pass to ReleaseAnon when done with the
// record. Both loops are lock-free: a claim failure means another reader
// holds the slot for an O(1) critical section, and a validation failure
// means a concurrent publish succeeded.
func (h *Hazards[T]) AcquireAnon(src *atomic.Pointer[T]) (*T, int) {
	for {
		for i := range h.anon {
			s := &h.anon[i]
			if s.claimed.Load() != 0 || !s.claimed.CompareAndSwap(0, 1) {
				continue
			}
			for {
				p := src.Load()
				s.ptr.Store(p)
				if src.Load() == p {
					return p, i
				}
			}
		}
	}
}

// ReleaseAnon returns an anonymous slot claimed by AcquireAnon.
func (h *Hazards[T]) ReleaseAnon(slot int) {
	s := &h.anon[slot]
	s.ptr.Store(nil)
	s.claimed.Store(0)
}

// Hazarded reports whether p is protected by any slot. Recyclers call it on
// retired records before overwriting them.
func (h *Hazards[T]) Hazarded(p *T) bool {
	for i := range h.fixed {
		if h.fixed[i].P.Load() == p {
			return true
		}
	}
	for i := range h.anon {
		if h.anon[i].ptr.Load() == p {
			return true
		}
	}
	return false
}

// Ring is a single-owner FIFO of retired records awaiting reuse — the GC
// variant's analogue of the paper's per-thread pool of C State records. A
// thread pushes the record its successful CAS retired (or a record it built
// but failed to publish) and pops the oldest record no reader holds. The
// ring is not safe for concurrent use; each thread owns one.
type Ring[T any] struct {
	buf  []*T
	head int // index of the oldest resident
	n    int // residents
}

// NewRing returns a ring holding at most capacity retired records.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]*T, capacity)}
}

// Len returns the number of resident records.
func (r *Ring[T]) Len() int { return r.n }

// Push retires x into the ring. When the ring is full x is dropped and the
// garbage collector reclaims it — capacity bounds the recycling working set,
// not correctness.
func (r *Ring[T]) Push(x *T) {
	if r.n == len(r.buf) {
		return
	}
	r.buf[(r.head+r.n)%len(r.buf)] = x
	r.n++
}

// PopFree removes and returns the oldest resident no hazard slot protects,
// probing each resident at most once (hazarded residents rotate to the
// back). It returns nil when every resident is protected — the caller then
// allocates a fresh record, which keeps the hot path wait-free: recycling is
// an optimization, never a wait.
func (r *Ring[T]) PopFree(h *Hazards[T]) *T {
	for probes := r.n; probes > 0; probes-- {
		x := r.buf[r.head]
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		if !h.Hazarded(x) {
			return x
		}
		r.Push(x)
	}
	return nil
}
