package obs

import "strings"

// Metric names may carry a Prometheus-style label block:
//
//	map_ops_total{shard="3"}
//	ingest_spool_cas_fail_total{partition="0"}
//
// The registry treats the whole string as the key (each labeled series is
// its own metric), the JSON export keeps it verbatim, and the Prometheus
// export emits it as a real label set — so per-shard and per-partition
// series aggregate with `sum by (shard)` instead of regexp gymnastics over
// name suffixes. Labeled and Join are the only sanctioned ways to build
// such names: Labeled appends (or extends) the block, Join inserts a
// suffix BEFORE it, so instrumentation helpers that derive families from a
// prefix (`<prefix>_ops_total`, …) keep working when the prefix is labeled.

// Labeled returns base with label="value" appended to its label block
// (creating the block if absent): Labeled("map", "shard", "3") is
// `map{shard="3"}`. Values must not contain `"` or `}`.
func Labeled(base, label, value string) string {
	if i := strings.IndexByte(base, '{'); i >= 0 {
		return base[:len(base)-1] + `,` + label + `="` + value + `"}`
	}
	return base + "{" + label + `="` + value + `"}`
}

// Join appends suffix to prefix, inserting it before any label block:
// Join(`map{shard="3"}`, "_ops_total") is `map_ops_total{shard="3"}`.
func Join(prefix, suffix string) string {
	if i := strings.IndexByte(prefix, '{'); i >= 0 {
		return prefix[:i] + suffix + prefix[i:]
	}
	return prefix + suffix
}

// SplitName splits a metric name into its base name and label block
// (labels == "" when the name carries none; otherwise the block without
// braces, e.g. `shard="3"`).
func SplitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	j := strings.LastIndexByte(name, '}')
	if j < i {
		return name, "" // malformed; treat as unlabeled
	}
	return name[:i], name[i+1 : j]
}
