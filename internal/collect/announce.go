package collect

import "repro/internal/pad"

// Announce is the practical substitute P-Sim makes for the collect object
// (§4): an array of n single-writer registers, one per process, each on its
// own cache line. Process i announces its operation (with arguments) by
// storing into slot i; helpers read the slots of the processes whose Act
// bits differ from the applied vector. This raises Sim's step complexity
// from O(1) to O(k) — k the interval contention — but shrinks the Fetch&Add
// object to one bit per process.
//
// The register holds a *T published with an atomic pointer store, so the
// announcement (closure + arguments) is safely transferred to helpers under
// the Go memory model.
type Announce[T any] struct {
	slots []pad.Pointer[T]
}

// NewAnnounce returns an announce array for n processes.
func NewAnnounce[T any](n int) *Announce[T] {
	return &Announce[T]{slots: make([]pad.Pointer[T], n)}
}

// N returns the number of slots.
func (a *Announce[T]) N() int { return len(a.slots) }

// Write publishes v in process i's register.
func (a *Announce[T]) Write(i int, v *T) {
	a.slots[i].P.Store(v)
}

// Read returns the value last published by process i (nil if none).
func (a *Announce[T]) Read(i int) *T {
	return a.slots[i].P.Load()
}

// Swap publishes v and returns the previous value.
func (a *Announce[T]) Swap(i int, v *T) *T {
	return a.slots[i].P.Swap(v)
}
