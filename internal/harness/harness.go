// Package harness drives the paper's experiments: it runs a fixed total
// number of operations split across n goroutines (each inserting the random
// dummy-loop work of §4 between operations), repeats every configuration,
// and reports mean wall-clock time, throughput, and the average degree of
// helping. Output formats match what the figures need: aligned text tables,
// CSV series, and the speedup ratios the paper quotes ("Sim is up to 2.36
// times faster than spin locks").
package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/workload"
)

// Config describes one experiment sweep.
type Config struct {
	Threads  []int // thread counts to sweep (the figures' x axis)
	TotalOps int   // operations per run, split evenly across threads
	MaxWork  int   // max dummy-loop iterations between operations (§4: 512)
	Reps     int   // repetitions per configuration (paper: 10)
	Seed     uint64

	// Latency enables per-operation latency recording into a wait-free
	// per-thread histogram (internal/obs): Result gains the p50/p99/max
	// distribution the figures' mean throughput hides. Off by default: the
	// two monotonic clock reads per operation are comparable to a wait-free
	// operation itself, so recording visibly inflates the mean times the
	// harness exists to measure.
	Latency bool

	// Registry, when non-nil, makes the latency histogram a live registered
	// metric ("harness_op_latency_ns") and counts every logical operation
	// into "harness_ops_total", so an external watcher (simbench's
	// -obs-every dumper or the telemetry timeline behind -timeline-dump)
	// sees a "harness" series while a run is in flight. Implies latency
	// recording.
	Registry *obs.Registry

	// Tracer, when non-nil, is attached to every instance that supports
	// flight recording (Instance.Trace non-nil) before its run starts.
	// Runs of every width share the tracer, so size it to the sweep's max
	// thread count. Instances rebuilt each rep re-attach to the same rings;
	// the recorder keeps only the newest events anyway (overwrite-oldest).
	Tracer *trace.Tracer
}

// DefaultConfig mirrors the paper's setup scaled to CI-sized runs: the
// paper used 10^6 operations and 10 repetitions on 32 cores; the defaults
// keep the same shape at a fraction of the wall-clock cost and the CLI
// exposes flags to restore the full-size run.
func DefaultConfig() Config {
	return Config{
		Threads:  []int{1, 2, 4, 8, 16, 32},
		TotalOps: 100_000,
		MaxWork:  workload.DefaultMaxWork,
		Reps:     3,
		Seed:     1,
	}
}

// Instance is one ready-to-run implementation under test: Op performs a
// single operation for process id; Helping reports the average combining
// degree at the end of the run (NaN when the notion does not apply).
type Instance struct {
	Name    string
	Op      func(id int, rng *workload.RNG)
	Helping func() float64

	// OpsPerCall is the number of logical operations one Op call performs
	// (a batched instance sets its batch size; 0 means 1). The harness
	// divides the per-thread call count by it so every instance of a sweep
	// executes the same number of LOGICAL operations, and throughput /
	// allocs-per-op are reported per logical operation.
	OpsPerCall int

	// Trace, when non-nil, attaches a flight recorder to the instance
	// (called once before the run when Config.Tracer is set). Makers for
	// implementations without tracing hooks leave it nil.
	Trace func(tr *trace.Tracer)
}

// Maker builds a fresh Instance for a run with n threads. A fresh instance
// per run keeps state (and pools, publication lists, …) unshared between
// repetitions.
type Maker func(n int) Instance

// Result is one (implementation, thread-count) cell of an experiment.
type Result struct {
	Impl       string
	Threads    int
	Batch      int // logical operations per call (1 unless batched)
	TotalOps   int // logical operations actually executed
	Reps       int
	MeanSec    float64
	StdevSec   float64
	MinSec     float64
	MaxSec     float64
	Throughput float64 // ops per second at the mean
	AvgHelping float64 // NaN if not applicable

	// AllocsPerOp is the heap-allocation count per operation, taken as the
	// minimum over repetitions of the runtime.MemStats.Mallocs delta around
	// the timed section divided by TotalOps. The minimum is the steady-state
	// figure: early reps pay one-time warm-up (rings, pools, goroutine
	// stacks) that later reps amortize away.
	AllocsPerOp float64

	// Latency is the per-operation latency distribution over all reps
	// (empty when Config.Latency is off). P50/P99 come from
	// Latency.Quantile; Max is exact.
	Latency obs.HistSnapshot
}

// Run executes the sweep and returns one Result per (maker, thread count).
func Run(cfg Config, makers []Maker) []Result {
	var results []Result
	for _, maker := range makers {
		for _, n := range cfg.Threads {
			results = append(results, runOne(cfg, maker, n))
		}
	}
	return results
}

// latencyHist returns the histogram a run should record into: a registered
// live metric when cfg.Registry is set, a private one when only cfg.Latency
// is, nil (recording off) otherwise. Registered histograms are sized to the
// sweep's max thread count because runs of every width share them.
func latencyHist(cfg Config, n int) *obs.Histogram {
	if cfg.Registry != nil {
		return cfg.Registry.Histogram("harness_op_latency_ns", maxThreads(cfg, n))
	}
	if cfg.Latency {
		return obs.NewHistogram(n)
	}
	return nil
}

// opsCounter returns the live logical-operation counter when cfg.Registry
// is set (nil otherwise). Like the histogram it is shared by runs of every
// width, so it is sized to the sweep's max thread count.
func opsCounter(cfg Config, n int) *obs.Counter {
	if cfg.Registry == nil {
		return nil
	}
	return cfg.Registry.Counter("harness_ops_total", maxThreads(cfg, n))
}

func maxThreads(cfg Config, n int) int {
	for _, t := range cfg.Threads {
		if t > n {
			n = t
		}
	}
	return n
}

func runOne(cfg Config, maker Maker, n int) Result {
	times := make([]float64, 0, cfg.Reps)
	helping := math.NaN()
	allocs := math.Inf(1)
	var name string
	batch, totalOps := 1, cfg.TotalOps
	hist := latencyHist(cfg, n)
	opsC := opsCounter(cfg, n)
	before := hist.Snapshot() // shared registry metric: delta out other runs
	var ms runtime.MemStats
	for rep := 0; rep < cfg.Reps; rep++ {
		inst := maker(n)
		name = inst.Name
		if inst.OpsPerCall > 1 {
			batch = inst.OpsPerCall
		}
		if cfg.Tracer != nil && inst.Trace != nil {
			inst.Trace(cfg.Tracer)
		}
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		sec, ops := timeRun(cfg, inst, n, uint64(rep)+cfg.Seed, hist, opsC)
		times = append(times, sec)
		totalOps = ops
		runtime.ReadMemStats(&ms)
		if a := float64(ms.Mallocs-m0) / float64(ops); a < allocs {
			allocs = a
		}
		if rep == cfg.Reps-1 && inst.Helping != nil {
			helping = inst.Helping()
		}
	}
	mean, stdev := meanStdev(times)
	r := Result{
		Impl: name, Threads: n, Batch: batch,
		TotalOps: totalOps, Reps: cfg.Reps,
		MeanSec: mean, StdevSec: stdev,
		MinSec: minOf(times), MaxSec: maxOf(times),
		AvgHelping:  helping,
		AllocsPerOp: allocs,
	}
	if hist != nil {
		r.Latency = hist.Snapshot()
		r.Latency.Sub(before)
	}
	if mean > 0 {
		r.Throughput = float64(totalOps) / mean
	}
	return r
}

// timeRun measures one run: n goroutines, each performing TotalOps/n
// logical operations (an instance whose Op covers OpsPerCall operations is
// called proportionally fewer times), with random local work between calls.
// It returns the wall-clock seconds and the number of LOGICAL operations
// actually executed. A non-nil hist additionally records each call's
// latency into the goroutine's private slot; a non-nil opsC counts logical
// operations the same way (both per-thread wait-free writes).
func timeRun(cfg Config, inst Instance, n int, seed uint64, hist *obs.Histogram, opsC *obs.Counter) (float64, int) {
	opsPer := cfg.TotalOps / n
	if opsPer == 0 {
		opsPer = 1
	}
	if b := inst.OpsPerCall; b > 1 {
		opsPer /= b
		if opsPer == 0 {
			opsPer = 1
		}
	}
	logical := uint64(1)
	if inst.OpsPerCall > 1 {
		logical = uint64(inst.OpsPerCall)
	}
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer done.Done()
			rng := workload.NewRNG(seed*0x1000193 + uint64(id) + 1)
			start.Wait()
			if hist != nil {
				for k := 0; k < opsPer; k++ {
					o0 := time.Now()
					inst.Op(id, rng)
					hist.Record(id, uint64(time.Since(o0)))
					if opsC != nil {
						opsC.Add(id, logical)
					}
					rng.RandomWork(cfg.MaxWork)
				}
				return
			}
			for k := 0; k < opsPer; k++ {
				inst.Op(id, rng)
				rng.RandomWork(cfg.MaxWork)
			}
		}(i)
	}
	t0 := time.Now()
	start.Done()
	done.Wait()
	b := inst.OpsPerCall
	if b < 1 {
		b = 1
	}
	return time.Since(t0).Seconds(), opsPer * b * n
}

func meanStdev(xs []float64) (mean, stdev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Table renders the results as an aligned text table: one row per thread
// count, one column per implementation, cells showing mean milliseconds.
func Table(results []Result) string {
	impls, threads := axes(results)
	cell := index(results)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, im := range impls {
		fmt.Fprintf(&b, " %14s", im)
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, im := range impls {
			if r, ok := cell[key{im, n}]; ok {
				fmt.Fprintf(&b, " %12.2fms", r.MeanSec*1e3)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HelpingTable renders the average helping degree per (impl, threads) —
// Figure 2's right-hand plot.
func HelpingTable(results []Result) string {
	impls, threads := axes(results)
	cell := index(results)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, im := range impls {
		fmt.Fprintf(&b, " %14s", im)
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, im := range impls {
			r, ok := cell[key{im, n}]
			if !ok || math.IsNaN(r.AvgHelping) {
				fmt.Fprintf(&b, " %14s", "-")
			} else {
				fmt.Fprintf(&b, " %14.2f", r.AvgHelping)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LatencyTable renders the per-operation latency distribution per
// (impl, threads): p50 / p99 / max microseconds. Implementations without
// recorded latency show "-".
func LatencyTable(results []Result) string {
	impls, threads := axes(results)
	cell := index(results)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, im := range impls {
		fmt.Fprintf(&b, " %24s", im+" p50/p99/max µs")
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, im := range impls {
			r, ok := cell[key{im, n}]
			if !ok || r.Latency.Count == 0 {
				fmt.Fprintf(&b, " %24s", "-")
			} else {
				fmt.Fprintf(&b, " %24s", fmt.Sprintf("%.1f / %.1f / %.1f",
					float64(r.Latency.Quantile(0.50))/1e3,
					float64(r.Latency.Quantile(0.99))/1e3,
					float64(r.Latency.Max)/1e3))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the results as comma-separated series for external plotting.
// The latency columns are empty when recording was off.
func CSV(results []Result) string {
	var b strings.Builder
	b.WriteString("impl,threads,total_ops,reps,mean_sec,stdev_sec,min_sec,max_sec,throughput_ops_per_sec,avg_helping,p50_ns,p99_ns,max_ns\n")
	for _, r := range results {
		help := ""
		if !math.IsNaN(r.AvgHelping) {
			help = fmt.Sprintf("%.4f", r.AvgHelping)
		}
		lat := ",,"
		if r.Latency.Count > 0 {
			lat = fmt.Sprintf("%d,%d,%d",
				r.Latency.Quantile(0.50), r.Latency.Quantile(0.99), r.Latency.Max)
		}
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.1f,%s,%s\n",
			r.Impl, r.Threads, r.TotalOps, r.Reps,
			r.MeanSec, r.StdevSec, r.MinSec, r.MaxSec, r.Throughput, help, lat)
	}
	return b.String()
}

// benchRecord is one (impl, threads) cell in the machine-readable output.
type benchRecord struct {
	Impl        string  `json:"impl"`
	Threads     int     `json:"threads"`
	Batch       int     `json:"batch"`
	TotalOps    int     `json:"total_ops"`
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Throughput  float64 `json:"throughput_ops_per_sec"`
	AvgHelping  float64 `json:"avg_helping,omitempty"`
	P50Ns       uint64  `json:"p50_ns,omitempty"`
	P99Ns       uint64  `json:"p99_ns,omitempty"`
	MaxNs       uint64  `json:"max_ns,omitempty"`
}

type benchFile struct {
	GeneratedUnix int64                    `json:"generated_unix"`
	GOMAXPROCS    int                      `json:"gomaxprocs"`
	Experiments   map[string][]benchRecord `json:"experiments"`
}

// BenchJSON renders a map of experiment name → results as the indented JSON
// document `make bench-json` writes to BENCH_psim.json, so the performance
// trajectory (ns/op, allocs/op, helping degree) is tracked across commits.
func BenchJSON(experiments map[string][]Result) ([]byte, error) {
	f := benchFile{
		GeneratedUnix: time.Now().Unix(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Experiments:   make(map[string][]benchRecord, len(experiments)),
	}
	for name, results := range experiments {
		recs := make([]benchRecord, 0, len(results))
		for _, r := range results {
			batch := r.Batch
			if batch < 1 {
				batch = 1
			}
			rec := benchRecord{
				Impl:        r.Impl,
				Threads:     r.Threads,
				Batch:       batch,
				TotalOps:    r.TotalOps,
				Reps:        r.Reps,
				AllocsPerOp: r.AllocsPerOp,
				Throughput:  r.Throughput,
			}
			if r.TotalOps > 0 {
				rec.NsPerOp = r.MeanSec * 1e9 / float64(r.TotalOps)
			}
			if !math.IsNaN(r.AvgHelping) {
				rec.AvgHelping = r.AvgHelping
			}
			if r.Latency.Count > 0 {
				rec.P50Ns = r.Latency.Quantile(0.50)
				rec.P99Ns = r.Latency.Quantile(0.99)
				rec.MaxNs = r.Latency.Max
			}
			recs = append(recs, rec)
		}
		f.Experiments[name] = recs
	}
	return json.MarshalIndent(f, "", "  ")
}

// Speedups reports, for each baseline implementation, the maximum over
// thread counts of baseline-time / target-time — the ratios the paper quotes
// in §4 and §5.
func Speedups(results []Result, target string) string {
	impls, threads := axes(results)
	cell := index(results)

	var b strings.Builder
	fmt.Fprintf(&b, "max speedup of %s over each baseline (across thread counts):\n", target)
	for _, im := range impls {
		if im == target {
			continue
		}
		best, bestAt := 0.0, 0
		for _, n := range threads {
			t, okT := cell[key{target, n}]
			o, okO := cell[key{im, n}]
			if !okT || !okO || t.MeanSec == 0 {
				continue
			}
			if s := o.MeanSec / t.MeanSec; s > best {
				best, bestAt = s, n
			}
		}
		fmt.Fprintf(&b, "  vs %-16s %.2fx (at %d threads)\n", im, best, bestAt)
	}
	return b.String()
}

type key struct {
	impl    string
	threads int
}

func axes(results []Result) (impls []string, threads []int) {
	seenI := map[string]bool{}
	seenT := map[int]bool{}
	for _, r := range results {
		if !seenI[r.Impl] {
			seenI[r.Impl] = true
			impls = append(impls, r.Impl)
		}
		if !seenT[r.Threads] {
			seenT[r.Threads] = true
			threads = append(threads, r.Threads)
		}
	}
	sort.Ints(threads)
	return impls, threads
}

func index(results []Result) map[key]Result {
	m := make(map[key]Result, len(results))
	for _, r := range results {
		m[key{r.Impl, r.Threads}] = r
	}
	return m
}
