package core

// Deterministic-schedule instrumentation: a test-only hook invoked at the
// protocol boundaries where adversarial interleavings matter — after an
// operation is announced, after the published state is read for a combining
// round, and immediately before a publish attempt. internal/check/sched
// installs a cooperative scheduler here to serialize goroutines and explore
// seeded, replayable preemption schedules; production code never sets the
// hook, so the hot path pays one predictable nil check per boundary.

// SchedPoint identifies an instrumented preemption boundary.
type SchedPoint uint8

const (
	// PointAnnounce: the operation (or vector) is announced but the
	// announcing process has not yet entered a combining round — a helper
	// may serve it first, or its toggle may race a concurrent collect.
	PointAnnounce SchedPoint = iota
	// PointCollect: a combining round has read the published state (LL /
	// hazard-protected load) but not yet collected announcements or
	// applied them — the classic stale-view window.
	PointCollect
	// PointCAS: the round has built its successor record and is about to
	// attempt the publish CAS/SC — preempting here maximizes CAS failures
	// and helping.
	PointCAS
)

// String names the point for schedule dumps.
func (p SchedPoint) String() string {
	switch p {
	case PointAnnounce:
		return "announce"
	case PointCollect:
		return "collect"
	case PointCAS:
		return "cas"
	}
	return "?"
}

// schedHook is the installed scheduler callback, nil in production. It is a
// plain (non-atomic) global: SetSchedHook must be called while no
// instrumented operation is in flight (before worker goroutines start and
// after they join), which also gives the necessary happens-before edges.
var schedHook func(pid int, p SchedPoint)

// SetSchedHook installs (or, with nil, removes) the test-only preemption
// hook. TEST USE ONLY: call only while no operation on any instrumented
// structure is running, and remove the hook before returning from the test.
func SetSchedHook(h func(pid int, p SchedPoint)) { schedHook = h }

// SchedYield invokes the hook if one is installed. It is exported so that
// sibling packages implementing the same announce/collect/publish protocol
// shape (internal/queue, internal/stack) can share the single hook; the
// call inlines to a nil check when no scheduler is attached.
func SchedYield(pid int, p SchedPoint) {
	if schedHook != nil {
		schedHook(pid, p)
	}
}
