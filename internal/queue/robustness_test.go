package queue

import (
	"sync"
	"testing"

	"repro/internal/xatomic"
)

// TestSimQueueCrashedEnqueuerDoesNotBlock: an enqueuer that crashes right
// after announcing (Algorithm 5 lines 1–3) cannot block the queue, and its
// enqueue is performed by helpers exactly once. This is the robustness
// property that separates SimQueue from flat combining's blocking combiner.
func TestSimQueueCrashedEnqueuerDoesNotBlock(t *testing.T) {
	const n, per = 4, 200
	q := NewSimQueue[uint64](n)

	// Process 0 announces value 999999 and crashes.
	v := uint64(999_999)
	q.enqAnnounce.PublishOne(0, v)
	xatomic.NewToggler(q.enqAct, 0).Toggle()

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				q.Enqueue(id, uint64(id*per+k))
			}
		}(i)
	}
	wg.Wait()

	// Drain: every live enqueue must be present plus the crashed one.
	count, crashed := 0, 0
	for {
		got, ok := q.Dequeue(1)
		if !ok {
			break
		}
		if got == v {
			crashed++
		}
		count++
	}
	if count != (n-1)*per+1 {
		t.Fatalf("drained %d values, want %d", count, (n-1)*per+1)
	}
	if crashed != 1 {
		t.Fatalf("crashed enqueue applied %d times, want exactly 1", crashed)
	}
}

// TestSimQueueCrashedDequeuerDoesNotBlock: a dequeuer that crashes after
// toggling its DeqAct bit is served by helpers; live dequeuers keep going.
func TestSimQueueCrashedDequeuerDoesNotBlock(t *testing.T) {
	const n = 4
	q := NewSimQueue[uint64](n)
	for k := uint64(1); k <= 100; k++ {
		q.Enqueue(0, k)
	}

	// Process 3 announces a dequeue and crashes.
	xatomic.NewToggler(q.deqAct, 3).Toggle()

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[uint64]int{}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				if v, ok := q.Dequeue(id); ok {
					mu.Lock()
					got[v]++
					mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()

	// 90 live dequeues + 1 helped crashed dequeue = at most 91 removals; no
	// value may be dequeued twice.
	for v, c := range got {
		if c != 1 {
			t.Fatalf("value %d dequeued %d times", v, c)
		}
	}
	if len(got) > 91 {
		t.Fatalf("%d values dequeued by 90 live ops (+1 crashed)", len(got))
	}
	// The crashed dequeuer's response was recorded by helpers.
	ls := q.deqP.Load()
	if !ls.applied.Bit(3) {
		t.Fatal("crashed dequeuer's operation was never applied")
	}
	if !ls.rvals[3].ok {
		t.Fatal("crashed dequeuer's recorded response is empty on a non-empty queue")
	}
}
