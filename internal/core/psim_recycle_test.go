package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/check"
)

// TestPSimRecyclingNoStaleResponses hammers one PSim Fetch&Add counter from
// n goroutines and checks that record recycling never serves a stale
// response: every Apply(+1) returns the counter's previous value, so the N
// responses must be exactly the permutation 0..N-1 — a duplicate would mean
// a reader saw a recycled record's old rvals, a gap a lost operation. Run
// under -race this also exercises the hazard-pointer protocol's ordering.
func TestPSimRecyclingNoStaleResponses(t *testing.T) {
	n := 8
	per := 5_000
	if testing.Short() {
		per = 1_000
	}
	u := NewPSim(n, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	})
	seen := make([][]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := make([]uint64, per)
			for k := 0; k < per; k++ {
				out[k] = u.Apply(id, 1)
			}
			seen[id] = out
		}(i)
	}
	wg.Wait()

	total := n * per
	got := make([]bool, total)
	for id, out := range seen {
		for _, v := range out {
			if v >= uint64(total) {
				t.Fatalf("thread %d: response %d out of range [0,%d)", id, v, total)
			}
			if got[v] {
				t.Fatalf("thread %d: duplicate response %d — stale rvals after record reuse", id, v)
			}
			got[v] = true
		}
	}
	if st := u.Read(); st != uint64(total) {
		t.Fatalf("final state = %d, want %d", st, total)
	}
}

// TestPSimRecyclingSoloInterleavedReads drives the n=1 solo fast path while
// concurrent anonymous Read()ers race against record recycling — the
// anonymous hazard slots are the only thing keeping those reads safe.
func TestPSimRecyclingSoloInterleavedReads(t *testing.T) {
	const ops = 20_000
	u := NewPSim(1, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := u.Read()
				if v < last {
					t.Errorf("Read went backwards: %d after %d", v, last)
					return
				}
				last = v
				runtime.Gosched()
			}
		}()
	}
	for k := 0; k < ops; k++ {
		if got := u.Apply(0, 1); got != uint64(k) {
			t.Fatalf("op %d returned %d", k, got)
		}
	}
	close(stop)
	readers.Wait()
}

// TestPSimReadSnapshotSurvivesRecycling pins the Read() contract under
// WithCloneInto: the snapshot must be deep-copied while hazard-protected, so
// later operations — which rebuild recycled records' state buffers IN PLACE
// — can never rewrite a snapshot already handed to a caller.
func TestPSimReadSnapshotSurvivesRecycling(t *testing.T) {
	u := NewPSim(1, []uint64{0, 0, 0, 0},
		func(st *[]uint64, _ int, d uint64) uint64 {
			for i := range *st {
				(*st)[i] += d
			}
			return (*st)[0]
		},
		WithCloneInto[[]uint64](func(dst, src *[]uint64) {
			*dst = append((*dst)[:0], *src...)
		}))
	u.Apply(0, 1)
	snap := u.Read() // every cell is 1
	// Drive enough operations that the record snap was taken from is retired,
	// recycled, and its state buffer rewritten several times over.
	for k := 0; k < 64; k++ {
		u.Apply(0, 1)
	}
	for i, v := range snap {
		if v != 1 {
			t.Fatalf("snapshot[%d] = %d, want 1 — Read() aliased a recycled buffer", i, v)
		}
	}
}

// TestPSimReadersRaceCloneIntoRecycling races anonymous Read()ers against
// combining rounds that rebuild recycled state buffers in place (the
// largeobject CloneInto shape). Both invariants the review race found are
// checked: -race must stay silent (the copy happens under protection) and
// no reader may observe a torn or later-mutated snapshot (both cells of the
// state always advance together).
func TestPSimReadersRaceCloneIntoRecycling(t *testing.T) {
	const n, per = 2, 10_000
	u := NewPSim(n, []uint64{0, 0}, func(st *[]uint64, _ int, d uint64) uint64 {
		(*st)[0] += d
		(*st)[1] += d
		return (*st)[0]
	}, WithCloneInto[[]uint64](func(dst, src *[]uint64) {
		*dst = append((*dst)[:0], *src...)
	}))
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s := u.Read(); s[0] != s[1] {
					t.Errorf("torn snapshot: %v", s)
					return
				}
				runtime.Gosched()
			}
		}()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if s := u.Read(); s[0] != n*per {
		t.Fatalf("final state = %v, want [%d %d]", s, n*per, n*per)
	}
}

// TestPSimRecyclingLinearizable records a concurrent history against the
// recycled-record PSim and runs the linearizability checker with the
// counter spec — the spot-check the alloc-free rewrite must not regress.
// (check.Linearizable caps histories at 64 operations, hence the size.)
func TestPSimRecyclingLinearizable(t *testing.T) {
	const n, per = 4, 15
	u := NewPSim(n, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	})
	rec := check.NewRecorder(n * per)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				slot := rec.Invoke(id, check.OpAdd, 1)
				rec.Return(slot, u.Apply(id, 1), true)
			}
		}(i)
	}
	wg.Wait()
	if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
		t.Fatalf("linearizability search: %v", err)
	} else if !ok {
		t.Fatal("concurrent FAA history over recycled records is not linearizable")
	}
}
