package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/backoff"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/xatomic"
)

// PSimWords generalizes PSimWord to simulated states of any fixed number of
// 64-bit words, completing the faithful pooled layout for the paper's full
// State struct (Algorithm 2 stores the object state `st` inline in each
// pool record, whatever its size). The memory discipline is identical to
// PSimWord — pool of n·C+1 records, 16-bit index + 48-bit stamp CAS word,
// seq1/seq2 stamps around seqlock copies — but each record carries a
// stateWords-long vector, so the copy cost per round is O(stateWords + n),
// exactly the O(s) term that motivates L-Sim for large objects. Announce
// registers carry vectors of up to WordBatchBudget operations, read
// unchecked under the same staleness argument as PSimWord.
type PSimWords struct {
	n, c   int
	words  int // applied bit-vector words
	sWords int // state words
	apply  func(st []uint64, pid int, arg uint64) uint64

	announce []wordAnnounce
	act      *xatomic.SharedBits
	pool     []wordsState
	// p is the LL/SC-shaped shared variable (see PSimWord.p).
	p xatomic.TimedVar

	threads []wordsThread
	stats   *StatsPlane

	boLower, boUpper int

	// readScratch is the memory plane's anonymous front for ReadInto
	// scratch (bounded retention; see PSimWord.readScratch).
	readScratch *alloc.Shared[wordsThread]
}

// wordsState is one pool record with a multi-word state vector. bn/brv are
// the per-process batch-response rows, as in wordState.
type wordsState struct {
	seq1    atomic.Uint64
	applied []atomic.Uint64
	st      []atomic.Uint64
	rvals   []atomic.Uint64
	bn      []atomic.Uint64
	brv     []atomic.Uint64 // flat n×WordBatchBudget rows
	seq2    atomic.Uint64
	_       pad.CacheLinePad
}

type wordsThread struct {
	toggler   *xatomic.Toggler
	bo        *backoff.Adaptive
	poolIndex int
	inited    bool
	applied   xatomic.Snapshot
	active    xatomic.Snapshot
	diffs     xatomic.Snapshot
	st        []uint64
	rvals     []uint64
	bn        []uint64
	brv       []uint64 // flat n×WordBatchBudget rows
}

// NewPSimWords builds a pooled P-Sim for n threads over a state of
// len(init) words. c is the per-thread pool size (0 = default, ≥ 2). apply
// receives a PRIVATE copy of the state words it may mutate in place, the id
// of the process whose operation is applied, and that process's announced
// argument; it returns the response word. The shared ⟨index, stamp⟩
// variable assumes DefaultUpdateHorizon successful updates; use
// NewPSimWordsHorizon for longer-lived instances.
func NewPSimWords(n, c int, init []uint64, apply func(st []uint64, pid int, arg uint64) uint64) *PSimWords {
	return NewPSimWordsHorizon(n, c, init, apply, DefaultUpdateHorizon)
}

// NewPSimWordsHorizon is NewPSimWords with an explicit successful-update
// horizon (see NewPSimWordHorizon for the TimedWord/TimedSafe selection
// argument).
func NewPSimWordsHorizon(n, c int, init []uint64, apply func(st []uint64, pid int, arg uint64) uint64, horizon uint64) *PSimWords {
	if n < 1 {
		panic("core: PSimWords needs n >= 1")
	}
	if len(init) < 1 {
		panic("core: PSimWords needs at least one state word")
	}
	if c == 0 {
		c = DefaultPoolPerThread
	}
	if c < 2 {
		panic("core: PSimWords needs C >= 2")
	}
	if n*c+1 > xatomic.TimedIndexMax {
		panic(fmt.Sprintf("core: n*C+1 = %d exceeds the 16-bit pool index", n*c+1))
	}
	w := xatomic.WordsFor(n)
	u := &PSimWords{
		n: n, c: c, words: w, sWords: len(init),
		apply:    apply,
		announce: make([]wordAnnounce, n),
		act:      xatomic.NewSharedBits(n),
		pool:     make([]wordsState, n*c+1),
		threads:  make([]wordsThread, n),
		stats:    NewStatsPlane(n),
		boLower:  1,
		boUpper:  DefaultBackoffUpper,
	}
	for i := range u.pool {
		u.pool[i].applied = make([]atomic.Uint64, w)
		u.pool[i].st = make([]atomic.Uint64, len(init))
		u.pool[i].rvals = make([]atomic.Uint64, n)
		u.pool[i].bn = make([]atomic.Uint64, n)
		u.pool[i].brv = make([]atomic.Uint64, n*WordBatchBudget)
	}
	initRec := &u.pool[n*c]
	for i, v := range init {
		initRec.st[i].Store(v)
	}
	u.p = xatomic.NewTimedVar(horizon)
	u.p.Store(uint16(n*c), 0)
	u.readScratch = alloc.NewShared(readScratchSlots, func() *wordsThread {
		return &wordsThread{
			applied: xatomic.NewSnapshot(n),
			st:      make([]uint64, len(init)),
			rvals:   make([]uint64, n),
			bn:      make([]uint64, n),
			brv:     make([]uint64, n*WordBatchBudget),
		}
	})
	u.stats.AttachAllocPool("scratch", u.readScratch)
	return u
}

// SetBackoff reconfigures the adaptive backoff bounds (0 upper disables).
// Call before any Apply.
func (u *PSimWords) SetBackoff(lower, upper int) { u.boLower, u.boUpper = lower, upper }

// SetTracer attaches a flight recorder (see PSimWord's SetTracer). Call
// before the first operation.
func (u *PSimWords) SetTracer(tr *trace.Tracer) { u.stats.Trace = tr }

// N returns the number of threads.
func (u *PSimWords) N() int { return u.n }

// StateWords returns the state width in words.
func (u *PSimWords) StateWords() int { return u.sWords }

func (u *PSimWords) thread(i int) *wordsThread {
	t := &u.threads[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(u.act, i)
		upper := u.boUpper
		if u.n == 1 {
			upper = 0 // no helper can exist: waiting is pure overhead
		}
		t.bo = backoff.NewAdaptive(u.boLower, upper)
		if tr := u.stats.Trace; tr != nil {
			id := i
			t.bo.OnGrow(func(w int) { tr.Rare(id, trace.KindBackoffGrow, uint64(w), 0) })
		}
		t.applied = xatomic.NewSnapshot(u.n)
		t.active = xatomic.NewSnapshot(u.n)
		t.diffs = xatomic.NewSnapshot(u.n)
		t.st = make([]uint64, u.sWords)
		t.rvals = make([]uint64, u.n)
		t.bn = make([]uint64, u.n)
		t.brv = make([]uint64, u.n*WordBatchBudget)
		t.inited = true
	}
	return t
}

// copyState copies record src into thread scratch under the seq protocol.
// Batch counts read mid-rewrite are clamped before indexing; the stamp check
// rejects the whole copy afterwards.
func (u *PSimWords) copyState(src *wordsState, t *wordsThread) bool {
	s1 := src.seq1.Load()
	for w := 0; w < u.words; w++ {
		t.applied[w] = src.applied[w].Load()
	}
	for w := 0; w < u.sWords; w++ {
		t.st[w] = src.st[w].Load()
	}
	for k := 0; k < u.n; k++ {
		t.rvals[k] = src.rvals[k].Load()
		bn := src.bn[k].Load()
		if bn > WordBatchBudget {
			bn = WordBatchBudget
		}
		t.bn[k] = bn
		for j := uint64(0); j < bn; j++ {
			t.brv[k*WordBatchBudget+int(j)] = src.brv[k*WordBatchBudget+int(j)].Load()
		}
	}
	return s1 == src.seq2.Load()
}

// Apply announces arg for process i and returns the operation's response.
func (u *PSimWords) Apply(i int, arg uint64) uint64 {
	t := u.thread(i)
	tt := u.stats.Trace.OpStart(i)

	an := &u.announce[i]
	an.args[0].Store(arg)
	an.cnt.Store(1)
	t.toggler.Toggle()
	t.bo.Wait()

	r, _ := u.applyAnnounced(i, t, tt, 1, nil)
	return r
}

// ApplyBatch announces the operation vector args for process i and returns
// the responses in args order, appended to res[:0] (nil allocates). Vectors
// longer than WordBatchBudget are split into budget-sized chunks, each
// applied contiguously at its own linearization point.
func (u *PSimWords) ApplyBatch(i int, args []uint64, res []uint64) []uint64 {
	res = res[:0]
	if len(args) == 0 {
		return res
	}
	t := u.thread(i)
	for len(args) > 0 {
		m := len(args)
		if m > WordBatchBudget {
			m = WordBatchBudget
		}
		chunk := args[:m]
		args = args[m:]
		if m == 1 {
			res = append(res, u.Apply(i, chunk[0]))
			continue
		}
		tt := u.stats.Trace.OpStart(i)
		an := &u.announce[i]
		for j, a := range chunk {
			an.args[j].Store(a)
		}
		an.cnt.Store(uint64(m))
		t.toggler.Toggle()
		t.bo.Wait()
		_, res = u.applyAnnounced(i, t, tt, m, res)
	}
	return res
}

// applyAnnounced runs the two-round protocol plus the fallback read for
// process i's just-announced vector of m operations (see PSimWord).
func (u *PSimWords) applyAnnounced(i int, t *wordsThread, tt obs.Stamp, m int, res []uint64) (uint64, []uint64) {
	st := u.stats
	tr := st.Trace
	um := uint64(m)
	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ {
		lpIdx, lpStamp, lpTag := u.p.LL()
		if !u.copyState(&u.pool[lpIdx], t) {
			continue
		}
		u.act.LoadInto(t.active)
		t.applied.XorInto(t.active, t.diffs)

		if t.diffs[myWord]&myMask == 0 {
			st.Ops.Add(i, um)
			st.ServedBy.Add(i, um)
			tr.OpServed(i, tt)
			if m == 1 {
				return t.rvals[i], res
			}
			return 0, appendRow(res, t.brv, t.bn, i)
		}

		dst := &u.pool[i*u.c+t.poolIndex]
		dst.seq1.Add(1)
		slots, ops := uint64(0), uint64(0)
		d := t.diffs
		for {
			k := d.BitSearchFirst()
			if k < 0 {
				break
			}
			d.ClearBit(k)
			an := &u.announce[k]
			cnt := int(an.cnt.Load())
			if cnt < 1 {
				cnt = 1
			} else if cnt > WordBatchBudget {
				cnt = WordBatchBudget
			}
			if cnt == 1 {
				t.rvals[k] = u.apply(t.st, k, an.args[0].Load())
				t.bn[k] = 0
			} else {
				var rv uint64
				for q := 0; q < cnt; q++ {
					rv = u.apply(t.st, k, an.args[q].Load())
					t.brv[k*WordBatchBudget+q] = rv
				}
				t.rvals[k] = rv
				t.bn[k] = uint64(cnt)
			}
			slots++
			ops += uint64(cnt)
		}
		for w := 0; w < u.words; w++ {
			dst.applied[w].Store(t.active[w])
		}
		for w := 0; w < u.sWords; w++ {
			dst.st[w].Store(t.st[w])
		}
		for k := 0; k < u.n; k++ {
			dst.rvals[k].Store(t.rvals[k])
			dst.bn[k].Store(t.bn[k])
			for q := uint64(0); q < t.bn[k]; q++ {
				dst.brv[k*WordBatchBudget+int(q)].Store(t.brv[k*WordBatchBudget+int(q)])
			}
		}
		dst.seq2.Add(1)

		if u.p.SC(lpTag, uint16(i*u.c+t.poolIndex), lpStamp+1) {
			t.poolIndex = (t.poolIndex + 1) % u.c
			st.Ops.Add(i, um)
			st.CASSuccess.Inc(i)
			st.Combined.Add(i, ops)
			var act uint64
			if tt != 0 {
				act = uint64(t.active.PopCount()) // sampled rounds only
			}
			tr.OpCommit(i, tt, slots, act, ops)
			if j == 0 {
				t.bo.Shrink()
			}
			if m == 1 {
				return t.rvals[i], res
			}
			return 0, appendRow(res, t.brv, t.bn, i)
		}
		st.CASFail.Inc(i)
		tr.Instant(i, trace.KindCASFail, uint64(j), 0)
		if j == 0 {
			t.bo.Grow()
			t.bo.Wait()
		}
	}

	st.Ops.Add(i, um)
	st.ServedBy.Add(i, um)
	tr.OpServed(i, tt)
	for tries := 0; tries < 64; tries++ {
		lpIdx, _ := u.p.Load()
		if u.copyState(&u.pool[lpIdx], t) {
			if m == 1 {
				return t.rvals[i], res
			}
			return 0, appendRow(res, t.brv, t.bn, i)
		}
	}
	lpIdx, _ := u.p.Load()
	src := &u.pool[lpIdx]
	if m == 1 {
		return src.rvals[i].Load(), res
	}
	bn := src.bn[i].Load()
	if bn > WordBatchBudget {
		bn = WordBatchBudget
	}
	for q := uint64(0); q < bn; q++ {
		res = append(res, src.brv[i*WordBatchBudget+int(q)].Load())
	}
	return 0, res
}

// ReadInto copies the current state into dst (len ≥ StateWords). Lock-free.
// Scratch buffers for the seqlock copy come from the memory plane's
// anonymous front, so steady-state reads allocate nothing and parked
// scratch is bounded by readScratchSlots.
func (u *PSimWords) ReadInto(dst []uint64) {
	scratch := u.readScratch.Get()
	for {
		lpIdx, _ := u.p.Load()
		if u.copyState(&u.pool[lpIdx], scratch) {
			copy(dst, scratch.st)
			u.readScratch.Put(scratch)
			return
		}
	}
}

// Stats returns aggregated combining statistics.
func (u *PSimWords) Stats() Stats { return u.stats.Aggregate() }

// ResetStats zeroes the statistics counters.
func (u *PSimWords) ResetStats() { u.stats.Reset() }
