package spin

import (
	"sync"
	"testing"
)

// TestTwoCLHLocksIndependent: holding one CLH lock never blocks another
// lock's users (the two-lock queue relies on this).
func TestTwoCLHLocksIndependent(t *testing.T) {
	l1, l2 := NewCLH(), NewCLH()
	h1 := l1.NewHandle()
	h1.Lock() // hold l1 for the whole test
	done := make(chan struct{})
	go func() {
		defer close(done)
		h2 := l2.NewHandle()
		for i := 0; i < 100; i++ {
			h2.Lock()
			h2.Unlock()
		}
	}()
	<-done
	h1.Unlock()
}

// TestCLHManyHandlesOneGoroutine: one goroutine may own several handles on
// DIFFERENT locks simultaneously (nested acquisition).
func TestCLHManyHandlesOneGoroutine(t *testing.T) {
	locks := []*CLH{NewCLH(), NewCLH(), NewCLH()}
	handles := make([]*CLHHandle, len(locks))
	for i, l := range locks {
		handles[i] = l.NewHandle()
	}
	for round := 0; round < 50; round++ {
		for _, h := range handles {
			h.Lock()
		}
		for i := len(handles) - 1; i >= 0; i-- {
			handles[i].Unlock()
		}
	}
}

// TestMCSConvoy: many threads queueing on one MCS lock drain in bounded
// time with every critical section observed exactly once.
func TestMCSConvoy(t *testing.T) {
	l := NewMCS()
	const waiters = 12
	var order []int
	var mu sync.Mutex
	h0 := l.NewHandle()
	h0.Lock()
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := l.NewHandle()
			h.Lock()
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			h.Unlock()
		}(i)
	}
	h0.Unlock()
	wg.Wait()
	if len(order) != waiters {
		t.Fatalf("%d critical sections, want %d", len(order), waiters)
	}
	seen := map[int]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("thread %d entered twice", id)
		}
		seen[id] = true
	}
}

// TestTTASConcurrentTryLock: at most one TryLock may win per release epoch.
func TestTTASConcurrentTryLock(t *testing.T) {
	var l TTAS
	const workers = 8
	var wins int
	var mu sync.Mutex
	var wg, armed sync.WaitGroup
	armed.Add(workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			armed.Done()
			armed.Wait()
			if l.TryLock() {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d TryLock winners, want exactly 1", wins)
	}
	l.Unlock()
}
