package collect

import "repro/internal/pad"

// This file extends the announce array with BATCH slots: each process
// announces a *vector* of operations instead of a single one, so one
// combining round can apply a whole pipeline's worth of work per announced
// process (degree of combining × batch amplification). The slot still holds
// one atomically-published pointer — helpers discover the vector exactly the
// way they discovered the single argument — so the announce/toggle protocol
// of §4 is unchanged; only the payload grew.
//
// Publishing a fresh heap box per announcement would put one allocation on
// the hot path (the last one the fig2 sweep showed at n ≥ 2). Instead each
// owner rotates through a small pool of boxes and rewrites the oldest one no
// helper is reading, under the same hazard-slot discipline as the state
// records (internal/core/recycle.go): a helper protects the box pointer it
// loaded with one store and one validating re-load of the slot, and an owner
// reuses a box only after a scan of the helper slots finds nobody holding
// it.
//
// Validation failure is not retried: the slot changed, so the announcing
// process k re-announced, so k's previously pending operation COMPLETED —
// which takes a successful state publish that happened strictly after the
// helper's (hazard-validated) load of the state record. The helper's own
// publish CAS is therefore doomed, and the round is abandoned exactly like a
// failed CAS. The same staleness argument makes the one ABA interleaving
// benign: a box can only reappear in its slot fully rewritten and
// re-published (contents ordered by the slot's release/acquire pair), and
// protecting it then just reads the newer announcement of a round that
// cannot publish.

// Batch is one announced operation vector. The backing array is owned by the
// announce pool and rewritten on reuse; read it only between a successful
// Protect and the corresponding Clear/re-Protect.
type Batch[T any] struct {
	vec []T
}

// Vec returns the announced operation vector.
func (b *Batch[T]) Vec() []T { return b.vec }

// boxesPerOwner is each owner's box-pool size: the published box, the box a
// slow helper may still hold, and slack so a second slow helper forces a
// rotation, not an allocation.
const boxesPerOwner = 4

// boxOwner is one process's private box pool (single-writer; padded so
// owners' rotation cursors do not share lines).
type boxOwner[T any] struct {
	boxes [boxesPerOwner]*Batch[T]
	next  int
	_     pad.CacheLinePad
}

// BatchAnnounce is an announce array whose slots carry operation vectors.
// Slot i is written only by process i; helper (reader) slot r is written
// only by process r.
type BatchAnnounce[T any] struct {
	slots  []pad.Pointer[Batch[T]]
	haz    []pad.Pointer[Batch[T]] // helper hazard slots, one per process
	owners []boxOwner[T]           // per-process box pools (each padded)
}

// NewBatchAnnounce returns a batch announce array for n processes.
func NewBatchAnnounce[T any](n int) *BatchAnnounce[T] {
	return &BatchAnnounce[T]{
		slots:  make([]pad.Pointer[Batch[T]], n),
		haz:    make([]pad.Pointer[Batch[T]], n),
		owners: make([]boxOwner[T], n),
	}
}

func (a *BatchAnnounce[T]) N() int { return len(a.slots) }

// hazarded reports whether any helper slot protects b.
func (a *BatchAnnounce[T]) hazarded(b *Batch[T]) bool {
	for i := range a.haz {
		if a.haz[i].P.Load() == b {
			return true
		}
	}
	return false
}

// take returns a box process i may rewrite: the next pool box no helper
// protects, or a fresh box (replacing the protected one in the pool — the
// protected box is dropped to the garbage collector once its readers move
// on) when every candidate is held. Never waits.
func (a *BatchAnnounce[T]) take(i int) *Batch[T] {
	o := &a.owners[i]
	cur := a.slots[i].P.Load()
	for probe := 0; probe < boxesPerOwner; probe++ {
		o.next = (o.next + 1) % boxesPerOwner
		b := o.boxes[o.next]
		if b == nil {
			b = &Batch[T]{}
			o.boxes[o.next] = b
			return b
		}
		if b != cur && !a.hazarded(b) {
			return b
		}
	}
	b := &Batch[T]{}
	o.boxes[o.next] = b
	return b
}

// Publish announces the operation vector vals for process i. vals is COPIED
// into pool-owned storage (helpers may read the box after Publish's caller
// has moved on to reuse vals), so steady-state publishes allocate nothing
// once the box's backing array has grown to the working batch size.
func (a *BatchAnnounce[T]) Publish(i int, vals []T) {
	b := a.take(i)
	b.vec = append(b.vec[:0], vals...)
	a.slots[i].P.Store(b)
}

// PublishOne announces the single operation v for process i (the Apply
// fast path: no caller-side slice needed).
func (a *BatchAnnounce[T]) PublishOne(i int, v T) {
	b := a.take(i)
	b.vec = append(b.vec[:0], v)
	a.slots[i].P.Store(b)
}

// OwnVec returns process i's currently announced vector without protection —
// only the owner itself may call it (it never rewrites a box mid-operation,
// so its own announcement is stable).
func (a *BatchAnnounce[T]) OwnVec(i int) []T {
	return a.slots[i].P.Load().vec
}

// Protect loads process k's announced box and protects it in helper slot
// `reader`: store the pointer, re-load the slot, accept only if unchanged.
// ok=false means k re-announced meanwhile — the caller's combining round is
// doomed (see the file comment) and must be abandoned like a failed CAS.
// The protection holds until the slot is overwritten by the helper's next
// Protect or cleared with Clear.
func (a *BatchAnnounce[T]) Protect(reader, k int) (b *Batch[T], ok bool) {
	s := &a.haz[reader].P
	p := a.slots[k].P.Load()
	s.Store(p)
	if a.slots[k].P.Load() != p {
		return nil, false
	}
	return p, true
}

// Clear releases helper slot `reader` so a parked helper does not pin the
// last box it read (pinning forces that owner to allocate a replacement).
func (a *BatchAnnounce[T]) Clear(reader int) {
	a.haz[reader].P.Store(nil)
}
