package ingest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/retention"
	"repro/internal/spool"
)

func TestAppendFlushDrainPoll(t *testing.T) {
	p := New(2, Config{Batch: 4, Clock: func() int64 { return 1 }})
	for i := 0; i < 10; i++ {
		if seq := p.Append(0, uint64(100+i)); seq != uint64(i+1) {
			t.Fatalf("append %d stamped seq %d", i, seq)
		}
	}
	if p.Pending(0) != 2 { // 10 appends, batch 4: two flushed vectors + 2 buffered
		t.Fatalf("pending=%d, want 2", p.Pending(0))
	}
	p.Flush(0)
	if p.Pending(0) != 0 {
		t.Fatalf("pending=%d after Flush", p.Pending(0))
	}
	if n := p.Drain(1, 100); n != 10 {
		t.Fatalf("drained %d events, want 10", n)
	}
	c := p.NewCursor()
	evs := c.Poll(100, nil)
	if len(evs) != 10 {
		t.Fatalf("cursor got %d events, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Payload != uint64(100+i) || e.Seq != uint64(i+1) || e.Producer != 0 {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	if c.Pos() != 10 || c.Skipped() != 0 {
		t.Fatalf("cursor pos=%d skipped=%d", c.Pos(), c.Skipped())
	}
	if evs := c.Poll(100, evs[:0]); len(evs) != 0 {
		t.Fatalf("caught-up cursor returned %d events", len(evs))
	}
	st := p.Stats()
	if st.Appended != 10 || st.Drained != 10 || st.Flushes != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAppendBatchStampsAndEnqueuesImmediately(t *testing.T) {
	p := New(2, Config{Batch: 64})
	p.Append(0, 1) // buffered
	seqs := p.AppendBatch(0, []uint64{2, 3, 4}, nil)
	if len(seqs) != 3 || seqs[0] != 2 || seqs[2] != 4 {
		t.Fatalf("seqs = %v", seqs)
	}
	if p.Pending(0) != 0 {
		t.Fatal("AppendBatch left events buffered")
	}
	if n := p.Drain(1, 100); n != 4 { // the buffered event flushed first
		t.Fatalf("drained %d, want 4 (buffered event flushed ahead)", n)
	}
	evs := p.NewCursor().Poll(100, nil)
	for i, e := range evs {
		if e.Payload != uint64(i+1) || e.Seq != uint64(i+1) {
			t.Fatalf("order broken: event %d = %+v", i, e)
		}
	}
}

func TestCursorCountsRetentionGap(t *testing.T) {
	p := New(2, Config{Batch: 1, Spool: spool.Config{SegEvents: 4, MaxSegments: 1 << 20}})
	for i := 0; i < 20; i++ {
		p.Append(0, uint64(i))
	}
	p.Drain(1, 100)
	r := retention.NewRunner(p.Spool(), 1, retention.Policy{MaxEvents: 5})
	lwm := r.Pass()
	if lwm == 0 {
		t.Fatal("retention pass did not advance the watermark")
	}
	c := p.NewCursor()
	evs := c.Poll(100, nil)
	if c.Skipped() != lwm {
		t.Fatalf("cursor skipped %d, watermark %d", c.Skipped(), lwm)
	}
	if uint64(len(evs)) != 20-lwm {
		t.Fatalf("cursor got %d events, want %d", len(evs), 20-lwm)
	}
	if evs[0].Payload != lwm {
		t.Fatalf("first surviving event %+v, want payload %d", evs[0], lwm)
	}
}

// TestPipelineConcurrent drives producers, a drainer, a retention runner and
// snapshot consumers together — the full dataflow under the race detector.
// Consumers assert the cursor contract: positions monotone, offsets strictly
// increasing, per-producer sequence numbers strictly increasing.
func TestPipelineConcurrent(t *testing.T) {
	const (
		producers = 3
		per       = 2000
		drainID   = producers
		retID     = producers + 1
	)
	p := New(producers+2, Config{Batch: 8, Spool: spool.Config{SegEvents: 64, MaxSegments: 1 << 20}})
	var produced atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				p.Append(id, uint64(id)<<32|uint64(k))
			}
			p.Flush(id)
			produced.Add(per)
		}(i)
	}

	stopDrain := make(chan struct{})
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for {
			n := p.Drain(drainID, 128)
			select {
			case <-stopDrain:
				for p.Drain(drainID, 128) > 0 { // final sweep
				}
				return
			default:
			}
			if n == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	r := retention.NewRunner(p.Spool(), retID, retention.Policy{MaxEvents: 1024})
	r.Start(500 * time.Microsecond)

	consDone := make(chan error, 2)
	for c := 0; c < 2; c++ {
		go func() {
			cur := p.NewCursor()
			buf := make([]Event, 0, 64)
			lastSeq := make(map[int32]uint64)
			for {
				posBefore, skipBefore := cur.Pos(), cur.Skipped()
				v := p.View()
				evs := cur.PollView(&v, 64, buf[:0])
				if cur.Pos() < posBefore {
					consDone <- errTest("cursor position regressed")
					return
				}
				// The cursor contract: every offset is either returned or
				// counted as skipped, never both, never neither.
				if cur.Pos()-posBefore != (cur.Skipped()-skipBefore)+uint64(len(evs)) {
					consDone <- errTest("cursor advance != skipped + returned")
					return
				}
				for _, e := range evs {
					if e.Seq <= lastSeq[e.Producer] {
						consDone <- errTest("per-producer seq not increasing")
						return
					}
					lastSeq[e.Producer] = e.Seq
				}
				if produced.Load() == producers*per && cur.Pos() >= uint64(producers*per) {
					consDone <- nil
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stopDrain)
	<-drainDone
	for c := 0; c < 2; c++ {
		if err := <-consDone; err != nil {
			t.Fatal(err)
		}
	}
	r.Stop()

	v := p.View()
	if v.End() != producers*per {
		t.Fatalf("spool end=%d, want %d", v.End(), producers*per)
	}
	st := p.Stats()
	if st.Appended != producers*per || st.Drained != producers*per {
		t.Fatalf("stats = %+v", st)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
