package harness

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

func TestMeanStdev(t *testing.T) {
	m, s := meanStdev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(s-2.1380899352993) > 1e-9 { // sample stdev
		t.Fatalf("stdev = %v", s)
	}
}

func TestMeanStdevDegenerate(t *testing.T) {
	if m, s := meanStdev(nil); m != 0 || s != 0 {
		t.Fatalf("empty: %v %v", m, s)
	}
	if m, s := meanStdev([]float64{3}); m != 3 || s != 0 {
		t.Fatalf("singleton: %v %v", m, s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if minOf(xs) != 1 || maxOf(xs) != 3 {
		t.Fatalf("min=%v max=%v", minOf(xs), maxOf(xs))
	}
}

// countingMaker builds an instance that counts its operations, so the test
// can verify the runner executes the configured volume.
func countingMaker(name string, total *atomic.Uint64) Maker {
	return func(n int) Instance {
		return Instance{
			Name: name,
			Op: func(id int, rng *workload.RNG) {
				total.Add(1)
			},
			Helping: func() float64 { return 2.5 },
		}
	}
}

func TestRunExecutesConfiguredVolume(t *testing.T) {
	var total atomic.Uint64
	cfg := Config{Threads: []int{1, 2}, TotalOps: 100, MaxWork: 0, Reps: 3, Seed: 1}
	res := Run(cfg, []Maker{countingMaker("x", &total)})
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// 2 thread counts × 3 reps × 100 ops each (n divides 100 for both).
	if got := total.Load(); got != 600 {
		t.Fatalf("ops executed = %d, want 600", got)
	}
	for _, r := range res {
		if r.Impl != "x" || r.TotalOps != 100 || r.Reps != 3 {
			t.Fatalf("result meta wrong: %+v", r)
		}
		if r.MeanSec <= 0 || r.Throughput <= 0 {
			t.Fatalf("timing not recorded: %+v", r)
		}
		if r.AvgHelping != 2.5 {
			t.Fatalf("helping not captured: %+v", r)
		}
		if r.MinSec > r.MeanSec || r.MeanSec > r.MaxSec {
			t.Fatalf("min/mean/max inconsistent: %+v", r)
		}
	}
}

func TestLatencyRecording(t *testing.T) {
	var total atomic.Uint64
	cfg := Config{Threads: []int{2}, TotalOps: 100, MaxWork: 0, Reps: 2, Seed: 1, Latency: true}
	res := Run(cfg, []Maker{countingMaker("x", &total)})
	r := res[0]
	if r.Latency.Count != 200 { // 2 reps × 100 ops
		t.Fatalf("latency samples = %d, want 200", r.Latency.Count)
	}
	p50, p99 := r.Latency.Quantile(0.50), r.Latency.Quantile(0.99)
	if p50 > p99 || p99 > r.Latency.Max {
		t.Fatalf("quantiles out of order: p50=%d p99=%d max=%d", p50, p99, r.Latency.Max)
	}
	out := LatencyTable(res)
	if !strings.Contains(out, "threads") || !strings.Contains(out, "x p50/p99/max") {
		t.Fatalf("latency table malformed:\n%s", out)
	}
	csv := CSV(res)
	if !strings.Contains(csv, "p50_ns,p99_ns,max_ns") {
		t.Fatalf("CSV missing latency columns:\n%s", csv)
	}
}

func TestLatencyViaRegistry(t *testing.T) {
	var total atomic.Uint64
	reg := obs.NewRegistry()
	cfg := Config{Threads: []int{1, 2}, TotalOps: 50, MaxWork: 0, Reps: 1, Seed: 1, Registry: reg}
	res := Run(cfg, []Maker{countingMaker("x", &total)})
	// The registered metric accumulates across runs; each Result carries its
	// own delta.
	snap := reg.Snapshot()
	if got := snap.Histograms["harness_op_latency_ns"].Count; got != 100 {
		t.Fatalf("registry histogram count = %d, want 100", got)
	}
	// Every logical operation also lands in the live ops counter, so the
	// telemetry timeline discovers a "harness" series.
	if got := snap.Counters["harness_ops_total"]; got != 100 {
		t.Fatalf("harness_ops_total = %d, want 100", got)
	}
	for _, r := range res {
		if r.Latency.Count != 50 {
			t.Fatalf("per-run delta = %d, want 50", r.Latency.Count)
		}
	}
}

func TestRunRoundsUpTinyOps(t *testing.T) {
	var total atomic.Uint64
	cfg := Config{Threads: []int{8}, TotalOps: 4, MaxWork: 0, Reps: 1, Seed: 1}
	Run(cfg, []Maker{countingMaker("x", &total)})
	if got := total.Load(); got != 8 { // 1 op per thread minimum
		t.Fatalf("ops executed = %d, want 8", got)
	}
}

func sampleResults() []Result {
	return []Result{
		{Impl: "A", Threads: 1, MeanSec: 0.010, Throughput: 1000, AvgHelping: 1.5},
		{Impl: "A", Threads: 2, MeanSec: 0.008, Throughput: 1250, AvgHelping: 2.5},
		{Impl: "B", Threads: 1, MeanSec: 0.020, Throughput: 500, AvgHelping: math.NaN()},
		{Impl: "B", Threads: 2, MeanSec: 0.024, Throughput: 417, AvgHelping: math.NaN()},
	}
}

func TestTableRendering(t *testing.T) {
	out := Table(sampleResults())
	for _, want := range []string{"threads", "A", "B", "10.00ms", "24.00ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestHelpingTableRendering(t *testing.T) {
	out := HelpingTable(sampleResults())
	if !strings.Contains(out, "2.50") {
		t.Fatalf("helping table missing value:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("helping table missing NaN placeholder:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	out := CSV(sampleResults())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "impl,threads") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], "A,1,") {
		t.Fatalf("CSV row wrong: %s", lines[1])
	}
	// NaN helping renders as the empty field.
	if !strings.HasSuffix(lines[3], ",") {
		t.Fatalf("NaN helping not empty: %s", lines[3])
	}
}

func TestSpeedups(t *testing.T) {
	out := Speedups(sampleResults(), "A")
	if !strings.Contains(out, "vs B") {
		t.Fatalf("speedups missing baseline:\n%s", out)
	}
	// Best ratio: at 2 threads, 0.024/0.008 = 3.00x.
	if !strings.Contains(out, "3.00x") {
		t.Fatalf("speedup value wrong:\n%s", out)
	}
	if strings.Contains(out, "vs A") {
		t.Fatal("speedups compared target against itself")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TotalOps <= 0 || cfg.Reps <= 0 || len(cfg.Threads) == 0 {
		t.Fatalf("bad default config: %+v", cfg)
	}
	if cfg.MaxWork != workload.DefaultMaxWork {
		t.Fatalf("MaxWork = %d", cfg.MaxWork)
	}
}

func TestChartRendering(t *testing.T) {
	out := Chart(sampleResults(), 10)
	for _, want := range []string{"legend:", "A", "B", "threads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart too short:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := Chart(nil, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestChartHeightClamped(t *testing.T) {
	out := Chart(sampleResults(), 1) // clamped to a usable height
	if !strings.Contains(out, "legend:") {
		t.Fatal("clamped chart unusable")
	}
}
