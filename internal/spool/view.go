package spool

// View is an immutable snapshot of the log, produced by Spool.Snapshot via
// PSim.Read. Sealed segments are shared with the live state (they are
// frozen); the active segment is a private deep copy made by the read-side
// clone. A View therefore stays valid forever, costs no coordination with
// writers, and supports any number of concurrent consumers — the query
// layer of the ingest pipeline is built entirely on it.
type View struct {
	st state
}

// LowWater returns the oldest retained offset: everything below it has been
// expired by retention (or the sealed-ring bound).
func (v View) LowWater() uint64 { return v.st.lwm }

// End returns the offset one past the newest event (the next to be
// assigned). The retained range is the single interval [LowWater, End).
func (v View) End() uint64 { return v.st.next }

// Len returns the number of retained events.
func (v View) Len() int { return int(v.st.next - v.st.lwm) }

// Segments returns the number of sealed segments in the ring.
func (v View) Segments() int { return len(v.st.sealed) }

// SealedTotal returns the number of segments sealed since the spool was
// created (a monotone counter, unlike Segments which the ring bounds).
func (v View) SealedTotal() uint64 { return v.st.sealedTotal }

// ExpiredTotal returns the number of events dropped by retention and the
// sealed-ring bound — the retention high-watermark equals
// LowWater() == ExpiredTotal() exactly because offsets are contiguous.
func (v View) ExpiredTotal() uint64 { return v.st.expiredTotal }

// Read copies up to max events starting at offset cursor into out
// (appending; pass out[:0] to reuse a buffer) and returns the filled slice,
// the cursor to resume from, and the number of events skipped because
// retention expired them before the consumer arrived (cursor below the low
// watermark). next is always ≥ cursor, and next - cursor == skipped +
// len(returned): a consumer that tracks its cursor observes every retained
// event exactly once, in offset order, with gaps accounted rather than
// silent.
func (v View) Read(cursor uint64, max int, out []Event) (evs []Event, next uint64, skipped uint64) {
	start := cursor
	if start < v.st.lwm {
		skipped = v.st.lwm - start
		start = v.st.lwm
	}
	next = start
	if max <= 0 || start >= v.st.next {
		return out, next, skipped
	}
	// Sealed segments: skip those wholly below start, then copy.
	for _, seg := range v.st.sealed {
		if seg.End() <= next {
			continue
		}
		out, next = copyFrom(out, max, seg.Base, seg.Events, next)
		if len(out) >= max {
			return out, next, skipped
		}
	}
	if len(v.st.active.Events) > 0 {
		out, next = copyFrom(out, max, v.st.active.Base, v.st.active.Events, next)
	}
	return out, next, skipped
}

// copyFrom appends events of one segment starting at offset next, stopping
// at max total events.
func copyFrom(out []Event, max int, base uint64, events []Event, next uint64) ([]Event, uint64) {
	if next > base {
		events = events[next-base:]
	}
	room := max - len(out)
	if room < len(events) {
		events = events[:room]
	}
	out = append(out, events...)
	return out, next + uint64(len(events))
}
