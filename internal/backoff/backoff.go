// Package backoff implements the contention-management schemes used across
// the reproduction: plain bounded exponential backoff (the lock-free CAS
// baseline and the Treiber stack use it) and the adaptive scheme of P-Sim
// (§4), which widens the window when a thread's CAS on the shared state
// fails — a failure means some other thread combined on its behalf, so
// waiting longer raises the degree of helping — and narrows it on success.
//
// Backoff is expressed in iterations of a delay loop rather than wall-clock
// sleeps, matching the paper's implementation. On an oversubscribed host
// (more goroutines than cores) a pure spin would starve the combiner, so
// every Wait yields to the Go scheduler once per call; this preserves the
// relative ordering of window sizes, which is all the algorithms rely on.
package backoff

import (
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
)

// spinSink defeats dead-code elimination of the delay loop.
var spinSink atomic.Uint64

// spin burns roughly iters loop iterations.
func spin(iters int) {
	var s uint64
	for i := 0; i < iters; i++ {
		s += uint64(i)
	}
	spinSink.Add(s)
}

// Exp is a bounded exponential backoff. The zero value is unusable; use
// NewExp. Not safe for concurrent use — each goroutine owns one.
type Exp struct {
	min, max int
	cur      int
	rng      uint64
}

// NewExp returns an exponential backoff whose window doubles from min up to
// max. min must be ≥ 1 and max ≥ min.
func NewExp(min, max int) *Exp {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &Exp{min: min, max: max, cur: min, rng: 0x9E3779B97F4A7C15}
}

// Wait delays for a uniformly random number of iterations in [0, window),
// then doubles the window (saturating at max). Call after a failed CAS.
func (b *Exp) Wait() {
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	d := int(b.rng % uint64(b.cur))
	spin(d)
	runtime.Gosched()
	if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
}

// Reset shrinks the window back to min. Call after a success.
func (b *Exp) Reset() { b.cur = b.min }

// Window returns the current window size, for tests and stats.
func (b *Exp) Window() int { return b.cur }

// Adaptive is P-Sim's backoff: an upper bound that grows when the thread's
// operation was completed by a helper (its own CAS failed twice) and shrinks
// when the thread's first CAS succeeded (it waited longer than necessary).
// Each goroutine owns one.
type Adaptive struct {
	lower, upper int
	cur          int
	enabled      bool

	grows  *obs.Counter // optional: counts Grow events (nil = off)
	obsID  int
	onGrow func(window int) // optional flight-recorder hook (nil = off)
}

// NewAdaptive returns an adaptive backoff bounded to [lower, upper]
// iterations. If upper <= 0 the backoff is disabled and Wait returns
// immediately (the paper notes P-Sim performs well even with no backoff;
// the ablation bench measures exactly that).
func NewAdaptive(lower, upper int) *Adaptive {
	if lower < 1 {
		lower = 1
	}
	enabled := upper > 0
	if upper < lower {
		upper = lower
	}
	return &Adaptive{lower: lower, upper: upper, cur: lower, enabled: enabled}
}

// Wait delays for the current window (Algorithm 3 line 4: the thread backs
// off right after announcing, so that by the time it attempts to combine,
// more operations have accumulated for it to help). Unlike Exp.Wait it does
// not yield to the scheduler on small windows: P-Sim never waits FOR another
// thread (it is wait-free), so the delay is pure pacing and a forced yield
// per operation would dominate the cost at low contention. Wide windows —
// the high-contention regime where helping is the point — still yield so an
// active combiner can run.
func (b *Adaptive) Wait() {
	if !b.enabled {
		return
	}
	spin(b.cur)
	if b.cur >= yieldThreshold {
		runtime.Gosched()
	}
}

// yieldThreshold is the adaptive window size above which Wait also yields
// the processor to let a combiner run.
const yieldThreshold = 256

// Grow widens the window; call when the operation was served by a helper
// (both CAS attempts failed — contention is high, so waiting more increases
// combining).
func (b *Adaptive) Grow() {
	if !b.enabled {
		return
	}
	b.grows.Inc(b.obsID) // nil-safe no-op when uninstrumented
	b.cur *= 2
	if b.cur > b.upper {
		b.cur = b.upper
	}
	if b.onGrow != nil {
		b.onGrow(b.cur)
	}
}

// Shrink narrows the window; call when the first CAS succeeded (contention
// is low, waiting was wasted time).
func (b *Adaptive) Shrink() {
	if !b.enabled {
		return
	}
	b.cur /= 2
	if b.cur < b.lower {
		b.cur = b.lower
	}
}

// Window returns the current window size.
func (b *Adaptive) Window() int { return b.cur }

// Enabled reports whether the backoff is active.
func (b *Adaptive) Enabled() bool { return b.enabled }

// Instrument attaches an observability counter that records every Grow
// event into slot id (a Grow means the thread's publish failed twice — the
// paper's contention signal). The counter's Inc is a single uncontended
// store; pass nil to detach.
func (b *Adaptive) Instrument(c *obs.Counter, id int) {
	b.grows, b.obsID = c, id
}

// OnGrow attaches a hook invoked after every Grow with the new window size
// (the flight recorder records it as a backoff_grow event). Grow already
// sits off the hot path — it runs only after two failed publishes — so the
// indirect call costs nothing that matters. Pass nil to detach.
func (b *Adaptive) OnGrow(f func(window int)) { b.onGrow = f }
