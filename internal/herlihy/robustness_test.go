package herlihy

import (
	"sync"
	"testing"
)

// TestHerlihyCrashedAnnouncerIsHelped: a process that announces its cell and
// crashes is still threaded by round-robin helping — the wait-freedom
// mechanism of the classic construction.
func TestHerlihyCrashedAnnouncerIsHelped(t *testing.T) {
	const n, per = 4, 200
	u := faa(n)

	// Process 0 announces and crashes.
	crashed := &cell[uint64, uint64, uint64]{pid: 0, arg: 500}
	u.announce[0].P.Store(crashed)

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()

	if crashed.done.Load() == nil {
		t.Fatal("crashed process's announced operation was never threaded")
	}
	if got := u.Read(1); got != (n-1)*per+500 {
		t.Fatalf("state = %d, want %d", got, (n-1)*per+500)
	}
}

// TestHerlihyHistoryChainIntact: after a run, walking the chain from any
// process's head reaches a consistent suffix with strictly increasing
// sequence numbers.
func TestHerlihyHistoryChainIntact(t *testing.T) {
	const n, per = 3, 50
	u := faa(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	cur := u.head[0].P.Load()
	prev := cur.done.Load().seq
	steps := 0
	for {
		next := cur.next.Load()
		if next == nil {
			break
		}
		d := next.done.Load()
		if d == nil {
			t.Fatal("threaded chain contains an undecided cell")
		}
		if d.seq != prev+1 {
			t.Fatalf("sequence gap: %d after %d", d.seq, prev)
		}
		prev = d.seq
		cur = next
		steps++
	}
	if prev != n*per {
		t.Fatalf("chain ends at seq %d, want %d", prev, n*per)
	}
}
