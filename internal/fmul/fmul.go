// Package fmul implements the synthetic object of Figure 2: a
// Fetch&Multiply instruction (multiply the shared word by a factor, return
// the previous value — an operation no hardware provides, so some software
// synchronization is mandatory), under every technique the paper compares:
//
//   - P-Sim (both the GC-based and the faithful pooled variant)
//   - the theoretical Sim (used for Table 1 instrumentation)
//   - CLH and MCS spin locks
//   - the simple lock-free CAS loop with exponential backoff
//   - flat combining
//   - Herlihy's universal construction (Table 1 baseline)
//
// Arithmetic is modulo 2^64.
package fmul

import (
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/combtree"
	"repro/internal/core"
	"repro/internal/flatcombining"
	"repro/internal/herlihy"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/spin"
)

// Interface is a shared Fetch&Multiply object: Apply multiplies the state by
// factor and returns the previous value. Each process id must be driven by
// one goroutine.
type Interface interface {
	Apply(id int, factor uint64) uint64
	Read() uint64
	Name() string
}

// --- P-Sim (GC-based) ---

// PSim is Fetch&Multiply over the GC-based P-Sim.
type PSim struct {
	u *core.PSim[uint64, uint64, uint64]
}

// NewPSim returns a P-Sim backed Fetch&Multiply for n processes.
func NewPSim(n int, opts ...core.PSimOption[uint64]) *PSim {
	return &PSim{u: core.NewPSim(n, uint64(1), func(st *uint64, _ int, f uint64) uint64 {
		prev := *st
		*st = prev * f
		return prev
	}, opts...)}
}

// Apply implements Interface.
func (o *PSim) Apply(id int, f uint64) uint64 { return o.u.Apply(id, f) }

// ApplyBatch multiplies by every factor of fs in order on behalf of process
// id, appending the previous values to res[:0] and returning it (see
// core.PSim.ApplyBatch): the whole vector is combined in one announce slot.
func (o *PSim) ApplyBatch(id int, fs, res []uint64) []uint64 {
	return o.u.ApplyBatch(id, fs, res)
}

// Read implements Interface.
func (o *PSim) Read() uint64 { return o.u.Read() }

// Name implements Interface.
func (o *PSim) Name() string { return "P-Sim" }

// Stats exposes combining statistics (Figure 2 right).
func (o *PSim) Stats() core.Stats { return o.u.Stats() }

// SetRecorder attaches a distribution recorder to the underlying P-Sim
// (used by BenchmarkObsOverhead). Call before any operation.
func (o *PSim) SetRecorder(rec *obs.SimRecorder) { o.u.SetRecorder(rec) }

// SetTracer attaches a flight recorder to the underlying P-Sim (see
// core.PSim.SetTracer). Call before any operation.
func (o *PSim) SetTracer(tr *trace.Tracer) { o.u.SetTracer(tr) }

// Instrument publishes the instance in reg under prefix (see
// core.PSim.Instrument). Call before any operation.
func (o *PSim) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	return o.u.Instrument(reg, prefix)
}

// --- P-Sim (pooled, faithful layout) ---

// PSimPooled is Fetch&Multiply over the pooled PSimWord (ablation:
// paper-exact pool/seqlock layout vs GC publication).
type PSimPooled struct{ u *core.PSimWord }

// NewPSimPooled returns a pooled P-Sim Fetch&Multiply for n processes.
func NewPSimPooled(n int) *PSimPooled {
	return &PSimPooled{u: core.NewPSimWord(n, 0, 1, func(st, f uint64) (uint64, uint64) {
		return st * f, st
	})}
}

// Apply implements Interface.
func (o *PSimPooled) Apply(id int, f uint64) uint64 { return o.u.Apply(id, f) }

// ApplyBatch multiplies by every factor of fs in order on behalf of process
// id, appending the previous values to res[:0] and returning it (see
// core.PSimWord.ApplyBatch).
func (o *PSimPooled) ApplyBatch(id int, fs, res []uint64) []uint64 {
	return o.u.ApplyBatch(id, fs, res)
}

// Read implements Interface.
func (o *PSimPooled) Read() uint64 { return o.u.Read() }

// Name implements Interface.
func (o *PSimPooled) Name() string { return "P-Sim(pool)" }

// Stats exposes combining statistics.
func (o *PSimPooled) Stats() core.Stats { return o.u.Stats() }

// SetTracer attaches a flight recorder to the underlying pooled P-Sim.
// Call before any operation.
func (o *PSimPooled) SetTracer(tr *trace.Tracer) { o.u.SetTracer(tr) }

// --- CLH / MCS spin locks ---

// CLH is Fetch&Multiply under a CLH queue lock.
type CLH struct {
	lock    *spin.CLH
	handles []*spin.CLHHandle
	_       pad.CacheLinePad
	state   uint64 // guarded by lock
}

// NewCLH returns a CLH-locked Fetch&Multiply for n processes.
func NewCLH(n int) *CLH {
	o := &CLH{lock: spin.NewCLH(), handles: make([]*spin.CLHHandle, n), state: 1}
	for i := range o.handles {
		o.handles[i] = o.lock.NewHandle()
	}
	return o
}

// Apply implements Interface.
func (o *CLH) Apply(id int, f uint64) uint64 {
	h := o.handles[id]
	h.Lock()
	prev := o.state
	o.state = prev * f
	h.Unlock()
	return prev
}

// Read implements Interface (requires quiescence for an exact value).
func (o *CLH) Read() uint64 {
	h := o.handles[0]
	h.Lock()
	v := o.state
	h.Unlock()
	return v
}

// Name implements Interface.
func (o *CLH) Name() string { return "CLH-lock" }

// MCS is Fetch&Multiply under an MCS queue lock.
type MCS struct {
	lock    *spin.MCS
	handles []*spin.MCSHandle
	_       pad.CacheLinePad
	state   uint64
}

// NewMCS returns an MCS-locked Fetch&Multiply for n processes.
func NewMCS(n int) *MCS {
	o := &MCS{lock: spin.NewMCS(), handles: make([]*spin.MCSHandle, n), state: 1}
	for i := range o.handles {
		o.handles[i] = o.lock.NewHandle()
	}
	return o
}

// Apply implements Interface.
func (o *MCS) Apply(id int, f uint64) uint64 {
	h := o.handles[id]
	h.Lock()
	prev := o.state
	o.state = prev * f
	h.Unlock()
	return prev
}

// Read implements Interface.
func (o *MCS) Read() uint64 {
	h := o.handles[0]
	h.Lock()
	v := o.state
	h.Unlock()
	return v
}

// Name implements Interface.
func (o *MCS) Name() string { return "MCS-lock" }

// --- simple lock-free CAS loop ---

// LockFree is the paper's "simple lock-free algorithm": a CAS loop on a
// single word with bounded exponential backoff.
type LockFree struct {
	state atomic.Uint64
	_     pad.CacheLinePad
	bo    []pad.Slot[*backoff.Exp]
}

// LockFreeBackoff bounds the exponential backoff window.
const LockFreeBackoff = 2048

// NewLockFree returns a lock-free Fetch&Multiply for n processes.
func NewLockFree(n int) *LockFree {
	o := &LockFree{bo: make([]pad.Slot[*backoff.Exp], n)}
	o.state.Store(1)
	for i := range o.bo {
		o.bo[i].Value = backoff.NewExp(1, LockFreeBackoff)
	}
	return o
}

// Apply implements Interface.
func (o *LockFree) Apply(id int, f uint64) uint64 {
	bo := o.bo[id].Value
	for {
		prev := o.state.Load()
		if o.state.CompareAndSwap(prev, prev*f) {
			bo.Reset()
			return prev
		}
		bo.Wait()
	}
}

// Read implements Interface.
func (o *LockFree) Read() uint64 { return o.state.Load() }

// Name implements Interface.
func (o *LockFree) Name() string { return "lock-free CAS" }

// --- flat combining ---

// FC is Fetch&Multiply under flat combining.
type FC struct {
	fc      *flatcombining.FC[uint64, uint64]
	handles []*flatcombining.Handle[uint64, uint64]
	state   uint64 // combiner-only
}

// NewFC returns a flat-combining Fetch&Multiply for n processes.
func NewFC(n, rounds, cleanupEvery int) *FC {
	o := &FC{state: 1, handles: make([]*flatcombining.Handle[uint64, uint64], n)}
	o.fc = flatcombining.New(func(_ int, f uint64) uint64 {
		prev := o.state
		o.state = prev * f
		return prev
	}, rounds, cleanupEvery)
	for i := range o.handles {
		o.handles[i] = o.fc.NewHandle(i)
	}
	return o
}

// Apply implements Interface.
func (o *FC) Apply(id int, f uint64) uint64 { return o.handles[id].Apply(f) }

// Read implements Interface: a Fetch&Multiply by 1 returns the current value
// without perturbing the state.
func (o *FC) Read() uint64 { return o.handles[0].Apply(1) }

// Name implements Interface.
func (o *FC) Name() string { return "FlatCombining" }

// Stats exposes combining statistics.
func (o *FC) Stats() flatcombining.Stats { return o.fc.Stats() }

// --- Herlihy universal construction ---

// Herlihy is Fetch&Multiply over Herlihy's universal construction.
type Herlihy struct {
	u *herlihy.Universal[uint64, uint64, uint64]
}

// NewHerlihy returns a Herlihy-construction Fetch&Multiply for n processes.
func NewHerlihy(n int) *Herlihy {
	return &Herlihy{u: herlihy.New(n, uint64(1), func(st uint64, _ int, f uint64) (uint64, uint64) {
		return st * f, st
	})}
}

// Apply implements Interface.
func (o *Herlihy) Apply(id int, f uint64) uint64 { return o.u.Apply(id, f) }

// Read implements Interface.
func (o *Herlihy) Read() uint64 { return o.u.Read(0) }

// Name implements Interface.
func (o *Herlihy) Name() string { return "Herlihy-UC" }

// --- software combining tree ---

// CombTree is Fetch&Multiply over the classic (blocking) software combining
// tree — the pre-Sim combining technique of the paper's reference [30].
type CombTree struct{ t *combtree.Tree }

// NewCombTree returns a combining-tree Fetch&Multiply for n processes.
func NewCombTree(n int) *CombTree {
	return &CombTree{t: combtree.NewFetchMultiply(n, 1)}
}

// Apply implements Interface.
func (o *CombTree) Apply(id int, f uint64) uint64 { return o.t.Apply(id, f) }

// Read implements Interface.
func (o *CombTree) Read() uint64 { return o.t.Read() }

// Name implements Interface.
func (o *CombTree) Name() string { return "CombiningTree" }
