package timeline

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SampleJSON is the wire shape of one scrape sample: the raw interval
// deltas plus the derived rates the console renders.
type SampleJSON struct {
	TS           int64   `json:"ts_unix_ns"`
	IntervalNs   int64   `json:"interval_ns"`
	Ops          uint64  `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	CASSuccess   uint64  `json:"cas_success"`
	CASFail      uint64  `json:"cas_fail"`
	CASFailRatio float64 `json:"cas_fail_ratio"`
	Combined     uint64  `json:"combined"`
	LatCount     uint64  `json:"lat_count"`
	LatP50       uint64  `json:"lat_p50_ns"`
	LatP90       uint64  `json:"lat_p90_ns"`
	LatP99       uint64  `json:"lat_p99_ns"`
	LatMax       uint64  `json:"lat_max_ns"`
	CombineMean  float64 `json:"combine_mean"`
}

// AnnotationJSON is the wire shape of one annotation event.
type AnnotationJSON struct {
	TS    int64   `json:"ts_unix_ns"`
	Kind  string  `json:"kind"`
	Ref   string  `json:"ref"` // rule name (SLO) or "pid N" (stall)
	Value float64 `json:"value"`
}

// ResponseJSON is the /debug/timeline response document.
type ResponseJSON struct {
	Now         int64                   `json:"now_unix_ns"`
	WindowNs    int64                   `json:"window_ns"`
	IntervalNs  int64                   `json:"interval_ns"`
	LowWater    uint64                  `json:"low_water"`
	End         uint64                  `json:"end"`
	Next        uint64                  `json:"next"`
	Skipped     uint64                  `json:"skipped"`
	Series      map[string][]SampleJSON `json:"series"`
	Annotations []AnnotationJSON        `json:"annotations"`
	SLO         []BreachState           `json:"slo,omitempty"`
}

// Query materializes the timeline over the trailing window as a JSON-ready
// document. cursor resumes an incremental consumer: samples below it are
// excluded and Skipped counts entries retention expired before the
// consumer arrived (cursor below the low watermark); pass 0 for a plain
// windowed query. series filters to the named series (nil = all).
func (t *Timeline) Query(window time.Duration, cursor uint64, series []string) ResponseJSON {
	now := t.cfg.Now()
	v := t.Snapshot()
	out := ResponseJSON{
		Now:        now,
		WindowNs:   window.Nanoseconds(),
		IntervalNs: t.cfg.Interval.Nanoseconds(),
		LowWater:   v.LowWater(),
		End:        v.End(),
		Series:     map[string][]SampleJSON{},
	}
	want := map[string]bool{}
	for _, s := range series {
		if s != "" {
			want[s] = true
		}
	}
	start := cursor
	if start < v.LowWater() {
		if cursor != 0 {
			out.Skipped = v.LowWater() - start
			t.CountSkip(out.Skipped)
		}
		start = v.LowWater()
	}
	buf, next, _ := v.Read(start, v.Len(), nil)
	out.Next = next
	cutoff := now - window.Nanoseconds()
	for _, s := range buf {
		if s.TS < cutoff && window > 0 {
			continue
		}
		switch s.Kind {
		case KindSample:
			name := t.seriesName(int(s.Series))
			if len(want) > 0 && !want[name] {
				continue
			}
			out.Series[name] = append(out.Series[name], SampleJSON{
				TS:           s.TS,
				IntervalNs:   s.IntervalNs,
				Ops:          s.Ops,
				OpsPerSec:    s.OpsPerSec(),
				CASSuccess:   s.CASSuccess,
				CASFail:      s.CASFail,
				CASFailRatio: s.CASFailRatio(),
				Combined:     s.Combined,
				LatCount:     s.LatCount,
				LatP50:       s.LatP50,
				LatP90:       s.LatP90,
				LatP99:       s.LatP99,
				LatMax:       s.LatMax,
				CombineMean:  float64(s.CombineMeanMilli) / 1000,
			})
		default:
			out.Annotations = append(out.Annotations, AnnotationJSON{
				TS:    s.TS,
				Kind:  s.Kind.String(),
				Ref:   t.annotationRef(s),
				Value: s.Value,
			})
		}
	}
	out.SLO = t.Breaches(now)
	return out
}

func (t *Timeline) seriesName(i int) string {
	if i >= 0 && i < len(t.names) {
		return t.names[i]
	}
	return "series" + strconv.Itoa(i)
}

func (t *Timeline) annotationRef(s Sample) string {
	switch s.Kind {
	case KindBreach, KindClear:
		if i := int(s.Series); i >= 0 && i < len(t.rules) {
			return t.rules[i].rule.Name()
		}
	case KindStall:
		return "pid " + strconv.Itoa(int(s.Series))
	}
	return ""
}

// Handler serves the timeline query surface:
//
//	GET /debug/timeline?window=60s&series=map,map{shard="0"}&cursor=N
//
// window trims to the trailing duration (default 60s, 0 = everything
// retained); series filters to a comma-separated list of series names;
// cursor resumes an incremental consumer and reports expired entries in
// the `skipped` field. The response is ResponseJSON.
func Handler(t *Timeline) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "timeline disabled (start the daemon with -timeline)", http.StatusNotFound)
			return
		}
		window := time.Minute
		if s := r.URL.Query().Get("window"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d < 0 {
				http.Error(w, "window must be a non-negative duration", http.StatusBadRequest)
				return
			}
			window = d
		}
		var cursor uint64
		if s := r.URL.Query().Get("cursor"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "cursor must be a non-negative integer", http.StatusBadRequest)
				return
			}
			cursor = n
		}
		var series []string
		if s := r.URL.Query().Get("series"); s != "" {
			series = strings.Split(s, ",")
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Query(window, cursor, series))
	})
}
