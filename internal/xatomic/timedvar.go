package xatomic

import "sync/atomic"

// TimedVar is the LL/SC-shaped face shared by the two (index, stamp)
// implementations: the paper-exact packed-word TimedWord (stamp-based ABA
// protection, sound up to the 2^48 wrap bound documented in timed.go) and
// the wrap-safe TimedSafe (cell-identity ABA protection per "LL/SC and
// Atomic Copy", arXiv 1911.09671, unconditionally sound).
//
// The protocol is LL/SC in miniature: LL returns the current pair plus an
// opaque tag; SC installs a new pair iff the variable has not been
// successfully written since the LL that produced the tag. Store is
// initialization-only. Load is a plain read for paths that never SC
// (fallback reads).
type TimedVar interface {
	// Load returns the current index and stamp.
	Load() (index uint16, stamp uint64)
	// LL returns the current pair and the tag for a later SC.
	LL() (index uint16, stamp uint64, tag TimedTag)
	// SC installs (index, stamp) iff no successful SC or Store intervened
	// since tag's LL. A false return means the caller lost the race.
	SC(tag TimedTag, index uint16, stamp uint64) bool
	// Store sets the pair unconditionally (initialization only).
	Store(index uint16, stamp uint64)
}

// TimedTag is the link from an LL to its SC. For TimedWord it is the packed
// word (value equality — the 2^48 argument); for TimedSafe it is the cell
// pointer (identity — immune to value recurrence).
type TimedTag struct {
	raw  uint64
	cell *timedCell
}

// LL returns the current pair and a value tag for SC.
func (t *TimedWord) LL() (index uint16, stamp uint64, tag TimedTag) {
	raw := t.w.Load()
	i, s := UnpackTimed(raw)
	return i, s, TimedTag{raw: raw}
}

// SC installs (index, stamp) iff the packed word still equals the tag's.
// This is the paper's versioned CAS: a stale tag can succeed only if the
// exact (index, stamp) word recurred — the 2^48 wrap bound.
func (t *TimedWord) SC(tag TimedTag, index uint16, stamp uint64) bool {
	return t.w.CompareAndSwap(tag.raw, PackTimed(index, stamp))
}

// timedCell is one immutable (index, stamp) version of a TimedSafe. A cell
// is written once, before publication, and never mutated — all the
// construction needs from the "destination objects" of arXiv 1911.09671.
type timedCell struct {
	idx   uint16
	stamp uint64
}

// TimedSafe is the wrap-safe TimedVar: the pair lives behind an atomic
// pointer to an immutable cell, and SC compares CELL IDENTITY, not value.
// Every successful SC installs a freshly allocated cell, so a stale tag's
// cell can never be the current one again — the garbage collector plays the
// role of the reuse guard in arXiv 1911.09671's LL/SC-from-CAS construction
// (their Theorem 1 hazard-protects destination cells; Go's GC subsumes
// that), and stamp recurrence is harmless because the stamp no longer
// carries the ABA argument. The price is one small heap allocation per
// successful update; P-Sim's publish path already allocates nothing else on
// its slow path, and NewTimedVar selects this variant only when a
// deployment's update horizon makes the 2^48 wrap reachable.
type TimedSafe struct {
	p atomic.Pointer[timedCell]
}

var timedZero = &timedCell{}

func (t *TimedSafe) cur() *timedCell {
	if c := t.p.Load(); c != nil {
		return c
	}
	return timedZero
}

// Load returns the current index and stamp.
func (t *TimedSafe) Load() (index uint16, stamp uint64) {
	c := t.cur()
	return c.idx, c.stamp
}

// LL returns the current pair and an identity tag for SC.
func (t *TimedSafe) LL() (index uint16, stamp uint64, tag TimedTag) {
	c := t.cur()
	return c.idx, c.stamp, TimedTag{cell: c}
}

// SC installs (index, stamp) iff the current cell is still the tag's cell.
// Identity comparison: even if (index, stamp) values recur — stamp wrap,
// counter reset — a superseded cell is a different object and the CAS fails.
func (t *TimedSafe) SC(tag TimedTag, index uint16, stamp uint64) bool {
	if tag.cell == nil {
		return false
	}
	next := &timedCell{idx: index, stamp: stamp}
	if tag.cell == timedZero {
		// The variable is still at its zero value: install over nil too.
		if t.p.CompareAndSwap(nil, next) {
			return true
		}
	}
	return t.p.CompareAndSwap(tag.cell, next)
}

// Store sets the pair unconditionally (initialization only).
func (t *TimedSafe) Store(index uint16, stamp uint64) {
	t.p.Store(&timedCell{idx: index, stamp: stamp})
}

// NewTimedVar picks the TimedVar implementation for a deployment expecting
// up to `horizon` successful updates over the variable's lifetime: the
// paper-exact packed word while the 2^48 stamp-wrap bound is unreachable,
// the atomic-copy cell construction once it is. Called at construction init
// (core.NewPSimWord passes its update horizon); the choice is static per
// instance, so the hot path pays no per-operation dispatch beyond the
// interface call.
func NewTimedVar(horizon uint64) TimedVar {
	if horizon >= TimedStampMax {
		return new(TimedSafe)
	}
	return new(TimedWord)
}
