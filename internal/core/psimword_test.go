package core

import (
	"sync"
	"testing"

	"repro/internal/check"
)

// faaWord builds a pooled fetch-and-add object.
func faaWord(n, c int) *PSimWord {
	return NewPSimWord(n, c, 0, func(st, arg uint64) (uint64, uint64) {
		return st + arg, st
	})
}

func TestPSimWordSequential(t *testing.T) {
	u := faaWord(1, 2)
	if got := u.Apply(0, 7); got != 0 {
		t.Fatalf("first = %d", got)
	}
	if got := u.Apply(0, 3); got != 7 {
		t.Fatalf("second = %d", got)
	}
	if u.Read() != 10 {
		t.Fatalf("state = %d", u.Read())
	}
}

func TestPSimWordConstructionValidation(t *testing.T) {
	assertPanics(t, func() { faaWord(0, 2) })
	assertPanics(t, func() { faaWord(2, 1) })     // C must be >= 2
	assertPanics(t, func() { faaWord(8192, 16) }) // pool index overflows 16 bits
	if u := NewPSimWord(2, 0, 0, func(st, a uint64) (uint64, uint64) { return st, st }); u == nil {
		t.Fatal("C=0 should select the default pool size")
	}
}

// TestPSimWordSmallPoolStress: C=2 is the tightest legal pool; heavy churn
// maximizes record recycling and exercises the seq1/seq2 consistency path.
func TestPSimWordSmallPoolStress(t *testing.T) {
	const n, per = 8, 500
	u := faaWord(n, 2)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("final = %d, want %d", got, n*per)
	}
}

func TestPSimWordResponsesArePermutation(t *testing.T) {
	const n, per = 8, 300
	u := faaWord(n, 4)
	seen := make([]bool, n*per)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for k := 0; k < per; k++ {
				local = append(local, u.Apply(id, 1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, prev := range local {
				if prev >= n*per || seen[prev] {
					t.Errorf("bad/duplicate previous value %d", prev)
					return
				}
				seen[prev] = true
			}
		}(i)
	}
	wg.Wait()
}

func TestPSimWordLinearizableHistories(t *testing.T) {
	const n, per, rounds = 3, 4, 20
	for r := 0; r < rounds; r++ {
		u := faaWord(n, 2)
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					slot := rec.Invoke(id, check.OpAdd, 1)
					prev := u.Apply(id, 1)
					rec.Return(slot, prev, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

func TestPSimWordStats(t *testing.T) {
	const n, per = 4, 100
	u := faaWord(n, 4)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	s := u.Stats()
	if s.Ops != n*per || s.Combined != n*per {
		t.Fatalf("stats = %+v", s)
	}
	u.ResetStats()
	if u.Stats().Ops != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestPSimWordBackoffSettings(t *testing.T) {
	u := faaWord(4, 2)
	u.SetBackoff(1, 0) // disabled
	const n, per = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("final = %d", got)
	}
}

func TestPSimWordConcurrentReaders(t *testing.T) {
	const n, per = 4, 300
	u := faaWord(n, 2)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := u.Read()
				if v > n*per {
					t.Errorf("Read out of range: %d", v)
					return
				}
				if v < last {
					t.Errorf("Read went backwards: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				u.Apply(id, 1)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := u.Read(); got != n*per {
		t.Fatalf("final = %d", got)
	}
}

func TestPSimWordN(t *testing.T) {
	if faaWord(5, 2).N() != 5 {
		t.Fatal("N() wrong")
	}
}

func TestPSimWordGenericTransition(t *testing.T) {
	// A non-commutative transition: st' = st*3 + arg; response = st. Checks
	// that the pooled variant applies operations atomically in some total
	// order (responses must chain: resp_{k+1} = resp_k*3 + arg_k).
	u := NewPSimWord(2, 2, 1, func(st, arg uint64) (uint64, uint64) {
		return st*3 + arg, st
	})
	prev := u.Apply(0, 5)
	if prev != 1 {
		t.Fatalf("prev = %d", prev)
	}
	if got := u.Read(); got != 8 {
		t.Fatalf("state = %d", got)
	}
}
