package ingest

import "repro/internal/spool"

// Cursor is one consumer's position in the log — the query layer of the
// pipeline. Every Poll takes a fresh spool snapshot through PSim.Read, a
// lock-free hazard-protected read that announces nothing: consumers never
// block producers or drainers, need no process id, and any number may run
// concurrently.
//
// Offsets are globally contiguous, so the cursor's invariants are simple
// and checkable: Pos never decreases, consecutive polls return events in
// strictly increasing offset order with no overlap, and events lost to
// retention (cursor fell below the low watermark) surface as a counted gap
// in Skipped — never as silent disorder.
//
// A Cursor is not safe for concurrent use; give each consumer its own.
type Cursor struct {
	p       *Pipeline
	pos     uint64
	skipped uint64
	polls   uint64
	events  uint64
}

// NewCursor returns a cursor positioned at offset 0 (the first poll skips
// forward to the low watermark if retention already expired the prefix).
func (p *Pipeline) NewCursor() *Cursor { return &Cursor{p: p} }

// Poll appends up to max events at the cursor to out (pass out[:0] to
// reuse a buffer) and advances. An empty result means the consumer has
// caught up with the drainers.
func (c *Cursor) Poll(max int, out []Event) []Event {
	v := c.p.sp.Snapshot()
	return c.PollView(&v, max, out)
}

// PollView is Poll against an existing snapshot, so one snapshot can serve
// several cursor reads (a daemon answering many consumers from one Read).
func (c *Cursor) PollView(v *spool.View[Event], max int, out []Event) []Event {
	evs, next, skipped := v.Read(c.pos, max, out)
	c.pos = next
	c.skipped += skipped
	c.polls++
	c.events += uint64(len(evs) - len(out))
	return evs
}

// Pos returns the offset the next Poll resumes from (monotone).
func (c *Cursor) Pos() uint64 { return c.pos }

// Skipped returns the total events lost to retention before this consumer
// could read them.
func (c *Cursor) Skipped() uint64 { return c.skipped }

// Polls returns the number of Poll calls; Events the total events returned.
func (c *Cursor) Polls() uint64 { return c.polls }

// Events returns the total events this cursor has returned.
func (c *Cursor) Events() uint64 { return c.events }

// Seek repositions the cursor (e.g. to the current low watermark after
// deciding to drop a backlog). Seeking backward re-reads retained events.
func (c *Cursor) Seek(off uint64) { c.pos = off }
