package stack

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/check"
)

// TestStackLIFOOrderSingleThread: a longer single-thread interleaving per
// implementation, checked against a reference model.
func TestStackLIFOOrderSingleThread(t *testing.T) {
	for _, s := range all(1) {
		t.Run(s.Name(), func(t *testing.T) {
			var ref []uint64
			seed := uint64(12345)
			for step := 0; step < 2000; step++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				if seed%3 != 0 { // 2/3 pushes
					v := seed
					s.Push(0, v)
					ref = append(ref, v)
				} else {
					v, ok := s.Pop(0)
					if len(ref) == 0 {
						if ok {
							t.Fatalf("step %d: pop on empty returned %d", step, v)
						}
						continue
					}
					want := ref[len(ref)-1]
					ref = ref[:len(ref)-1]
					if !ok || v != want {
						t.Fatalf("step %d: pop = (%d,%v), want (%d,true)", step, v, ok, want)
					}
				}
			}
		})
	}
}

// TestStackQuickEquivalence: random op strings vs the reference model
// (property-based sequential equivalence).
func TestStackQuickEquivalence(t *testing.T) {
	for _, mk := range []func() Interface[uint64]{
		func() Interface[uint64] { return NewSimStack[uint64](1) },
		func() Interface[uint64] { return NewTreiber[uint64](1) },
		func() Interface[uint64] { return NewElimination[uint64](1) },
		func() Interface[uint64] { return NewCLHStack[uint64](1) },
		func() Interface[uint64] { return NewFCStack[uint64](1, 0, 0) },
	} {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			f := func(ops []uint16) bool {
				st := mk()
				var ref []uint64
				for _, o := range ops {
					if o%2 == 0 {
						v := uint64(o) + 1
						st.Push(0, v)
						ref = append(ref, v)
					} else {
						v, ok := st.Pop(0)
						if len(ref) == 0 {
							if ok {
								return false
							}
							continue
						}
						want := ref[len(ref)-1]
						ref = ref[:len(ref)-1]
						if !ok || v != want {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStackLinearizable: small adversarial concurrent histories validated by
// the Wing–Gong checker, for every implementation.
func TestStackLinearizable(t *testing.T) {
	const n, per, rounds = 3, 3, 12
	for _, mk := range []func(int) Interface[uint64]{
		func(n int) Interface[uint64] { return NewSimStack[uint64](n) },
		func(n int) Interface[uint64] { return NewTreiber[uint64](n) },
		func(n int) Interface[uint64] { return NewElimination[uint64](n) },
		func(n int) Interface[uint64] { return NewCLHStack[uint64](n) },
		func(n int) Interface[uint64] { return NewFCStack[uint64](n, 0, 0) },
	} {
		name := mk(1).Name()
		t.Run(name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				s := mk(n)
				rec := check.NewRecorder(2 * n * per)
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for k := 0; k < per; k++ {
							v := uint64(id*per+k) + 1
							slot := rec.Invoke(id, check.OpPush, v)
							s.Push(id, v)
							rec.Return(slot, 0, false)

							slot = rec.Invoke(id, check.OpPop, 0)
							pv, ok := s.Pop(id)
							rec.Return(slot, pv, ok)
						}
					}(i)
				}
				wg.Wait()
				if ok, err := check.Linearizable(rec.Operations(), check.StackSpec()); err != nil {
					t.Fatalf("linearizability search: %v", err)
				} else if !ok {
					t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
				}
			}
		})
	}
}

func TestSimStackLenAndStats(t *testing.T) {
	s := NewSimStack[uint64](2)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Push(0, 1)
	s.Push(1, 2)
	s.Push(0, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Pop(1)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	st := s.Stats()
	if st.Ops != 4 {
		t.Fatalf("Stats.Ops = %d, want 4", st.Ops)
	}
}

func TestSimStackOptions(t *testing.T) {
	s := NewSimStack[uint64](4, WithBackoff(1, 0), WithPaddedAct())
	const n, per = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				s.Push(id, 1)
				s.Pop(id)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after balanced ops", s.Len())
	}
}

// TestStackPopOrderWithinProducer: values pushed by one producer and popped
// by the same producer (no interleaving pops elsewhere) come back LIFO.
func TestStackPopOrderWithinProducer(t *testing.T) {
	for _, s := range all(2) {
		t.Run(s.Name(), func(t *testing.T) {
			for k := uint64(1); k <= 50; k++ {
				s.Push(0, k)
			}
			for k := uint64(50); k >= 1; k-- {
				v, ok := s.Pop(0)
				if !ok || v != k {
					t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, k)
				}
			}
		})
	}
}

// --- elimination exchanger unit tests ---

func TestExchangerSameKindRefuses(t *testing.T) {
	var e exchanger[uint64]
	// Install a waiting pusher.
	n1 := &node[uint64]{v: 1}
	cell := &xcell[uint64]{offered: n1}
	if !e.slot.CompareAndSwap(nil, cell) {
		t.Fatal("setup failed")
	}
	// A second pusher must refuse immediately.
	if _, ok := e.exchange(&node[uint64]{v: 2}, true, 100); ok {
		t.Fatal("push-push elimination succeeded")
	}
}

func TestExchangerOppositeKindsMatch(t *testing.T) {
	var e exchanger[uint64]
	n1 := &node[uint64]{v: 7}
	var wg sync.WaitGroup
	wg.Add(1)
	var popGot *node[uint64]
	var popOK bool
	go func() {
		defer wg.Done()
		popGot, popOK = e.exchange(nil, false, 1<<20) // popper waits
	}()
	// Pusher arrives and matches (retry until the popper has enlisted).
	var pushOK bool
	for !pushOK {
		_, pushOK = e.exchange(n1, true, 1<<10)
	}
	wg.Wait()
	if !popOK || popGot == nil || popGot.v != 7 {
		t.Fatalf("popper got (%v,%v)", popGot, popOK)
	}
}

func TestExchangerTimesOutOnEmpty(t *testing.T) {
	var e exchanger[uint64]
	if _, ok := e.exchange(&node[uint64]{v: 1}, true, 50); ok {
		t.Fatal("exchange succeeded with no partner")
	}
	if e.slot.Load() != nil {
		t.Fatal("slot not withdrawn after timeout")
	}
}

// TestEliminationHeavyMix: push/pop storm with interleaved exchanges must
// conserve values (stresses the elimination paths specifically by using a
// tiny collision array).
func TestEliminationHeavyMix(t *testing.T) {
	const n, pairs = 8, 400
	s := NewElimination[uint64](n)
	s.timeout = 64 // quick cycles through eliminate/retry
	var mu sync.Mutex
	popped := make(map[uint64]int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := map[uint64]int{}
			for k := 0; k < pairs; k++ {
				v := uint64(id*pairs+k) + 1
				s.Push(id, v)
				if got, ok := s.Pop(id); ok {
					local[got]++
				}
			}
			mu.Lock()
			for v, c := range local {
				popped[v] += c
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for {
		v, ok := s.Pop(0)
		if !ok {
			break
		}
		popped[v]++
	}
	if len(popped) != n*pairs {
		t.Fatalf("got %d distinct values, want %d", len(popped), n*pairs)
	}
	for v, c := range popped {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

// TestSimStackManyThreadsMultiWordAct: 70 processes -> two Act words;
// conservation across word boundaries.
func TestSimStackManyThreadsMultiWordAct(t *testing.T) {
	const n, per = 70, 20
	s := NewSimStack[uint64](n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				s.Push(id, uint64(id*per+k)+1)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != n*per {
		t.Fatalf("Len = %d, want %d", s.Len(), n*per)
	}
	seen := map[uint64]bool{}
	for {
		v, ok := s.Pop(0)
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n*per {
		t.Fatalf("popped %d values, want %d", len(seen), n*per)
	}
}

// TestStackInterleavedPushersPoppers: dedicated pusher and popper threads
// (not pairs), for every implementation.
func TestStackInterleavedPushersPoppers(t *testing.T) {
	const pushers, poppers, per = 4, 3, 300
	n := pushers + poppers
	for _, s := range all(n) {
		t.Run(s.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			var popCount int64
			var mu sync.Mutex
			seen := map[uint64]bool{}
			for p := 0; p < pushers; p++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < per; k++ {
						s.Push(id, uint64(id*per+k)+1)
					}
				}(p)
			}
			for c := 0; c < poppers; c++ {
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					id := pushers + idx
					for k := 0; k < per; k++ {
						if v, ok := s.Pop(id); ok {
							mu.Lock()
							if seen[v] {
								t.Errorf("value %d popped twice", v)
							}
							seen[v] = true
							popCount++
							mu.Unlock()
						}
					}
				}(c)
			}
			wg.Wait()
			// Drain the leftovers; total distinct = total pushed.
			for {
				v, ok := s.Pop(0)
				if !ok {
					break
				}
				if seen[v] {
					t.Fatalf("value %d popped twice", v)
				}
				seen[v] = true
			}
			if len(seen) != pushers*per {
				t.Fatalf("saw %d distinct values, want %d", len(seen), pushers*per)
			}
		})
	}
}
