package main

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// runSmoke is the -smoke N mode: boot the daemon on a loopback port, publish
// n events from pipelined producer connections, poll every partition with a
// concurrent consumer, and verify the end-to-end invariants the pipeline
// promises:
//
//   - per-producer sequence stamps are 1,2,3,… with no gap or repeat;
//   - POLL cursors are monotone: the batch starts at or after the cursor,
//     offsets are contiguous, and next == cursor + skipped + returned;
//   - per-producer sequence numbers are strictly increasing across polls;
//   - every published event is either observed or accounted for by a
//     retention skip: sum(observed + skipped) == n;
//   - retention moved the high-watermark (HWM low > 0) on every partition.
//
// The retention policy must be aggressive enough to fire mid-run; when the
// flags left it empty, MaxEvents defaults to max(1024, n/8).
func runSmoke(n int, cfg serverConfig) error {
	const producers = 4
	if cfg.clients < producers+cfg.shards+1 {
		cfg.clients = producers + cfg.shards + 1
	}
	if cfg.policy.MaxAge == 0 && cfg.policy.MaxSegments == 0 && cfg.policy.MaxEvents == 0 {
		cfg.policy.MaxEvents = n / 8
		if cfg.policy.MaxEvents < 1024 {
			cfg.policy.MaxEvents = 1024
		}
	}
	if cfg.retainTick > 10*time.Millisecond {
		cfg.retainTick = 10 * time.Millisecond
	}

	srv := newServer(cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	defer srv.Close()
	shards := len(srv.parts)
	fmt.Printf("smoke: daemon on %s — %d events, %d producers, %d partition(s), batch %d, retention %+v\n",
		addr, n, producers, shards, cfg.batch, cfg.policy)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     atomic.Bool // producers finished and spools drained
		observed atomic.Uint64
		skipped  atomic.Uint64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Producers: connection i publishes its share in pipelined PUB runs and
	// checks its own gapless sequence stream.
	for i := 0; i < producers; i++ {
		share := n / producers
		if i < n%producers {
			share++
		}
		wg.Add(1)
		go func(i, share int) {
			defer wg.Done()
			if err := produce(addr, i, share); err != nil {
				fail(fmt.Errorf("producer %d: %w", i, err))
			}
		}(i, share)
	}

	// Consumers: one per partition, polling concurrently with the producers
	// and then catching up to the final high-watermark.
	for part := 0; part < shards; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			obs, skip, err := consume(addr, part, &done)
			observed.Add(obs)
			skipped.Add(skip)
			if err != nil {
				fail(fmt.Errorf("consumer part %d: %w", part, err))
			}
		}(part)
	}

	// Control connection: wait for the drain loops to move everything into
	// the spools, then release the consumers.
	ctl, err := dial(addr)
	if err != nil {
		fail(err)
	} else {
		defer ctl.close()
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, _, err := ctl.stats()
			if err != nil {
				fail(fmt.Errorf("control: %w", err))
				break
			}
			if st["appended"] == uint64(n) && st["drained"] == uint64(n) {
				break
			}
			if time.Now().After(deadline) {
				fail(fmt.Errorf("drain stalled: appended=%d drained=%d want %d",
					st["appended"], st["drained"], n))
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	done.Store(true)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Conservation: every event was observed or counted as skipped.
	if got := observed.Load() + skipped.Load(); got != uint64(n) {
		return fmt.Errorf("event conservation: observed %d + skipped %d = %d, want %d",
			observed.Load(), skipped.Load(), got, n)
	}

	// Retention high-watermark: a partition that filled past the policy
	// bound (by at least one sealable segment) must have expired something.
	// A lighter partition legitimately keeps low == 0 — connections map to
	// partitions by accept-order slot, so producer shares can be uneven —
	// but pigeonhole guarantees the heaviest partition exceeds the bound.
	// The runner ticks on its own clock, so allow it a moment.
	seg := cfg.spool.SegEvents
	if seg <= 0 {
		seg = 256 // spool.Config default
	}
	mustMove := func(end uint64) bool {
		return end > uint64(cfg.policy.MaxEvents)+uint64(seg)
	}
	lows := make([]uint64, shards)
	deadline := time.Now().Add(5 * time.Second)
	for {
		allMoved := true
		for part := 0; part < shards; part++ {
			low, end, err := ctl.hwm(part)
			if err != nil {
				return fmt.Errorf("control: %w", err)
			}
			if low > end {
				return fmt.Errorf("partition %d: low-watermark %d above end %d", part, low, end)
			}
			lows[part] = low
			if low == 0 && mustMove(end) {
				allMoved = false
			}
		}
		if allMoved || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	moved := 0
	for part, low := range lows {
		if low > 0 {
			moved++
			continue
		}
		_, end, err := ctl.hwm(part)
		if err != nil {
			return fmt.Errorf("control: %w", err)
		}
		if mustMove(end) {
			return fmt.Errorf("partition %d: retention never advanced the high-watermark (end %d, low still 0)", part, end)
		}
	}
	if moved == 0 {
		return fmt.Errorf("retention advanced no partition (lows %v)", lows)
	}

	// Per-partition STATS lines must agree with the aggregate terminator
	// and with the consumers' own skip accounting: low == expired (offsets
	// are contiguous), and POLL-skip counters sum to what consumers saw.
	agg, parts, err := ctl.stats()
	if err != nil {
		return fmt.Errorf("control: %w", err)
	}
	if len(parts) != shards {
		return fmt.Errorf("STATS returned %d PART lines, want %d", len(parts), shards)
	}
	var sumEnd, sumLow, sumSkipped uint64
	for i, p := range parts {
		if p["low"] != p["expired"] {
			return fmt.Errorf("partition %d: low=%d != expired=%d (offsets must be contiguous)", i, p["low"], p["expired"])
		}
		if p["passes"] == 0 {
			return fmt.Errorf("partition %d: no retention passes recorded", i)
		}
		sumEnd += p["end"]
		sumLow += p["low"]
		sumSkipped += p["skipped"]
	}
	if sumEnd != agg["end"] || sumLow != agg["low"] {
		return fmt.Errorf("PART sums (low=%d end=%d) disagree with STATS (low=%d end=%d)",
			sumLow, sumEnd, agg["low"], agg["end"])
	}
	if sumSkipped != skipped.Load() {
		return fmt.Errorf("poll-skip counters sum to %d, consumers observed %d", sumSkipped, skipped.Load())
	}

	fmt.Printf("smoke: OK — %d observed + %d retention-skipped = %d events; low-watermarks %v\n",
		observed.Load(), skipped.Load(), n, lows)
	return nil
}

// produce publishes share events over one connection in pipelined runs of 32
// PUB lines, verifying the per-producer sequence stamps come back gapless.
func produce(addr string, id, share int) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.close()
	const run = 32
	var seq uint64
	for sent := 0; sent < share; {
		b := run
		if rem := share - sent; rem < b {
			b = rem
		}
		for j := 0; j < b; j++ {
			payload := uint64(id)<<32 | uint64(sent+j+1)
			fmt.Fprintf(c.w, "PUB %d\n", payload)
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		for j := 0; j < b; j++ {
			line, err := c.readLine()
			if err != nil {
				return err
			}
			got, ok := strings.CutPrefix(line, "OK ")
			if !ok {
				return fmt.Errorf("want OK <seq>, got %q", line)
			}
			q, err := strconv.ParseUint(got, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seq in %q: %w", line, err)
			}
			if q != seq+1 {
				return fmt.Errorf("sequence gap: got %d after %d", q, seq)
			}
			seq = q
		}
		sent += b
	}
	return nil
}

// consume polls partition part until the producers are done and the cursor
// has caught the high-watermark, checking cursor monotonicity and
// per-producer ordering along the way. It returns how many events it saw and
// how many retention skipped under it.
func consume(addr string, part int, done *atomic.Bool) (observed, skipped uint64, err error) {
	c, err := dial(addr)
	if err != nil {
		return 0, 0, err
	}
	defer c.close()
	var cursor uint64
	lastSeq := map[uint64]uint64{} // producer pid -> last seq seen
	for {
		evs, next, skip, err := c.poll(part, cursor, 256)
		if err != nil {
			return observed, skipped, err
		}
		if next < cursor {
			return observed, skipped, fmt.Errorf("cursor went backwards: %d -> %d", cursor, next)
		}
		if next != cursor+skip+uint64(len(evs)) {
			return observed, skipped, fmt.Errorf(
				"cursor accounting: cursor %d + skipped %d + %d events != next %d",
				cursor, skip, len(evs), next)
		}
		start := next - uint64(len(evs))
		if start < cursor {
			return observed, skipped, fmt.Errorf("batch starts at %d, before cursor %d", start, cursor)
		}
		for i, ev := range evs {
			if ev.Off != start+uint64(i) {
				return observed, skipped, fmt.Errorf("offset gap: event %d at offset %d, want %d",
					i, ev.Off, start+uint64(i))
			}
			if last := lastSeq[ev.Producer]; ev.Seq <= last {
				return observed, skipped, fmt.Errorf(
					"producer %d sequence not increasing: %d after %d", ev.Producer, ev.Seq, last)
			}
			lastSeq[ev.Producer] = ev.Seq
		}
		observed += uint64(len(evs))
		skipped += skip
		cursor = next
		if len(evs) == 0 {
			if done.Load() {
				_, end, err := c.hwm(part)
				if err != nil {
					return observed, skipped, err
				}
				if cursor >= end {
					return observed, skipped, nil
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
}

// client is a line-oriented connection to the daemon.
type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dial(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (c *client) close() {
	fmt.Fprintln(c.w, "QUIT")
	c.w.Flush()
	c.conn.Close()
}

func (c *client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// smokeEvent is one EVT line.
type smokeEvent struct {
	Off, Producer, Seq, Payload uint64
}

// poll issues POLL <part> <cursor> <max> and parses the EVT/END response.
func (c *client) poll(part int, cursor uint64, max int) (evs []smokeEvent, next, skipped uint64, err error) {
	fmt.Fprintf(c.w, "POLL %d %d %d\n", part, cursor, max)
	if err = c.w.Flush(); err != nil {
		return nil, 0, 0, err
	}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, 0, 0, err
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 5 && fields[0] == "EVT":
			var ev smokeEvent
			ev.Off, _ = strconv.ParseUint(fields[1], 10, 64)
			ev.Producer, _ = strconv.ParseUint(fields[2], 10, 64)
			ev.Seq, _ = strconv.ParseUint(fields[3], 10, 64)
			ev.Payload, _ = strconv.ParseUint(fields[4], 10, 64)
			evs = append(evs, ev)
		case len(fields) == 3 && fields[0] == "END":
			next, _ = strconv.ParseUint(fields[1], 10, 64)
			skipped, _ = strconv.ParseUint(fields[2], 10, 64)
			return evs, next, skipped, nil
		default:
			return nil, 0, 0, fmt.Errorf("unexpected POLL response %q", line)
		}
	}
}

// hwm issues HWM <part> and parses HWM <low> <end>.
func (c *client) hwm(part int) (low, end uint64, err error) {
	fmt.Fprintf(c.w, "HWM %d\n", part)
	if err = c.w.Flush(); err != nil {
		return 0, 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "HWM" {
		return 0, 0, fmt.Errorf("unexpected HWM response %q", line)
	}
	low, _ = strconv.ParseUint(fields[1], 10, 64)
	end, _ = strconv.ParseUint(fields[2], 10, 64)
	return low, end, nil
}

// stats issues STATS and parses the response: PART key=value lines (one
// per partition, in partition order) terminated by the aggregate STATS
// line.
func (c *client) stats() (map[string]uint64, []map[string]uint64, error) {
	fmt.Fprintln(c.w, "STATS")
	if err := c.w.Flush(); err != nil {
		return nil, nil, err
	}
	var parts []map[string]uint64
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, nil, err
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil, nil, fmt.Errorf("empty STATS response line")
		}
		kvs := fields[1:]
		if fields[0] == "PART" {
			if len(fields) < 2 || fields[1] != strconv.Itoa(len(parts)) {
				return nil, nil, fmt.Errorf("PART lines out of order: %q", line)
			}
			kvs = fields[2:]
		} else if fields[0] != "STATS" {
			return nil, nil, fmt.Errorf("unexpected STATS response %q", line)
		}
		out := map[string]uint64{}
		for _, kv := range kvs {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			out[k], _ = strconv.ParseUint(v, 10, 64)
		}
		if fields[0] == "PART" {
			parts = append(parts, out)
			continue
		}
		return out, parts, nil
	}
}
