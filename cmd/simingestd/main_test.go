package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/spool"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return string(body)
}

// waitEnd polls HWM until partition part's end reaches want (the drain loop
// moves queue batches into the spool asynchronously).
func waitEnd(t *testing.T, c *client, part int, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, end, err := c.hwm(part)
		if err != nil {
			t.Fatalf("HWM: %v", err)
		}
		if end >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition %d never drained to %d (end %d)", part, want, end)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDaemonEndToEnd boots the full daemon on ephemeral ports, exercises
// PUB/POLL/HWM/STATS/QUIT over TCP and /metrics over HTTP, and verifies a
// clean shutdown.
func TestDaemonEndToEnd(t *testing.T) {
	cfg := serverConfig{clients: 4, shards: 2, batch: 4,
		spool: spool.Config{SegEvents: 16}}
	d, err := start("127.0.0.1:0", "127.0.0.1:0", cfg, 0)
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	c, err := dial(d.addr) // first connection: slot 0 -> partition 0, pid 0
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.conn.Close()
	send := func(line string) string {
		fmt.Fprintln(c.w, line)
		if err := c.w.Flush(); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := c.readLine()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return resp
	}

	for i, want := range []string{"OK 1", "OK 2", "OK 3"} {
		if got := send(fmt.Sprintf("PUB %d", 100+i)); got != want {
			t.Fatalf("PUB -> %q, want %q", got, want)
		}
	}
	waitEnd(t, c, 0, 3)

	evs, next, skipped, err := c.poll(0, 0, 10)
	if err != nil {
		t.Fatalf("POLL: %v", err)
	}
	if len(evs) != 3 || next != 3 || skipped != 0 {
		t.Fatalf("POLL -> %d events next=%d skipped=%d, want 3/3/0", len(evs), next, skipped)
	}
	for i, ev := range evs {
		if ev.Off != uint64(i) || ev.Producer != 0 || ev.Seq != uint64(i+1) || ev.Payload != uint64(100+i) {
			t.Fatalf("event %d = %+v, want off=%d producer=0 seq=%d payload=%d",
				i, ev, i, i+1, 100+i)
		}
	}
	// Partition 1 saw nothing.
	if evs, next, _, _ := c.poll(1, 0, 10); len(evs) != 0 || next != 0 {
		t.Fatalf("partition 1 unexpectedly has events: %d, next %d", len(evs), next)
	}

	st, parts, err := c.stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if st["appended"] != 3 || st["drained"] != 3 || st["end"] != 3 {
		t.Fatalf("STATS = %v, want appended=3 drained=3 end=3", st)
	}
	if len(parts) != 2 || parts[0]["end"] != 3 || parts[1]["end"] != 0 {
		t.Fatalf("PART lines = %v, want partition 0 end=3, partition 1 end=0", parts)
	}
	if parts[0]["skipped"] != 0 || parts[0]["expired"] != 0 {
		t.Fatalf("PART 0 reports losses on a loss-free run: %v", parts[0])
	}

	for _, bad := range []string{"POLL 9 0 10", "POLL 0 0", "HWM 9", "NOPE"} {
		if got := send(bad); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", bad, got)
		}
	}

	prom := httpGet(t, "http://"+d.metricsAddr()+"/metrics")
	for _, want := range []string{
		"# TYPE ingest_pub_total counter",
		"# TYPE ingest_connections gauge",
		`ingest_spool_ops_total{partition="0"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%.400s", want, prom)
		}
	}

	if got := send("QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}

	closed := make(chan error, 1)
	go func() { closed <- d.close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon close hung")
	}
	if _, err := net.Dial("tcp", d.addr); err == nil {
		t.Fatal("ingest port still accepting after close")
	}
}

// TestPipelinedPubRun queues a run of PUB lines in one write so the executor
// submits them as a single AppendBatch, and checks the responses are
// byte-identical to the one-at-a-time protocol.
func TestPipelinedPubRun(t *testing.T) {
	d, err := start("127.0.0.1:0", "", serverConfig{clients: 2, shards: 1, batch: 8,
		spool: spool.Config{SegEvents: 16}}, 0)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	c, err := dial(d.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.conn.Close()
	for i := 1; i <= 6; i++ {
		fmt.Fprintf(c.w, "PUB %d\n", i*10)
	}
	fmt.Fprintln(c.w, "HWM 0") // barrier closes the run
	if err := c.w.Flush(); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 1; i <= 6; i++ {
		line, err := c.readLine()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if want := fmt.Sprintf("OK %d", i); line != want {
			t.Fatalf("response %d = %q, want %q", i, line, want)
		}
	}
	if line, _ := c.readLine(); !strings.HasPrefix(line, "HWM ") {
		t.Fatalf("barrier response = %q, want HWM", line)
	}
	waitEnd(t, c, 0, 6)
}

// TestSmokeMode runs the -smoke self-drive end to end at a small size.
func TestSmokeMode(t *testing.T) {
	cfg := serverConfig{shards: 2, batch: 8, spool: spool.Config{SegEvents: 32}}
	if err := runSmoke(4000, cfg); err != nil {
		t.Fatalf("smoke: %v", err)
	}
}

// TestFlightRecorder checks the partition-0 flight recorder is reachable
// through /debug/flight when enabled.
func TestFlightRecorder(t *testing.T) {
	d, err := start("127.0.0.1:0", "127.0.0.1:0", serverConfig{clients: 2, shards: 1, batch: 4,
		spool: spool.Config{SegEvents: 16}, flight: 64}, 0)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	c, err := dial(d.addr) // slot 0 -> partition 0: the traced partition
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.conn.Close()
	for i := 0; i < 8; i++ {
		fmt.Fprintf(c.w, "PUB %d\n", i)
	}
	c.w.Flush()
	for i := 0; i < 8; i++ {
		if _, err := c.readLine(); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	waitEnd(t, c, 0, 8)

	body := httpGet(t, "http://"+d.metricsAddr()+"/debug/flight?format=text")
	if !strings.Contains(body, "round") {
		t.Fatalf("flight snapshot has no round events:\n%.400s", body)
	}
}

func TestStartRejectsBadMetricsAddr(t *testing.T) {
	if _, err := start("127.0.0.1:0", "256.0.0.1:bad",
		serverConfig{clients: 1, shards: 1, batch: 1}, 0); err == nil {
		t.Fatal("start accepted a bad metrics address")
	}
}

// TestTimelineEndpoint boots with the telemetry timeline enabled, publishes
// events, and checks /debug/timeline serves per-partition ingest series
// with nonzero ops — the per-partition breakdown riding the labeled-name
// convention.
func TestTimelineEndpoint(t *testing.T) {
	cfg := serverConfig{clients: 4, shards: 2, batch: 4,
		spool:    spool.Config{SegEvents: 16},
		timeline: 10 * time.Millisecond}
	d, err := start("127.0.0.1:0", "127.0.0.1:0", cfg, 0)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	c, err := dial(d.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.conn.Close()
	for i := 0; i < 32; i++ {
		fmt.Fprintf(c.w, "PUB %d\n", i)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatalf("pub: %v", err)
	}
	for i := 0; i < 32; i++ {
		if line, err := c.readLine(); err != nil || !strings.HasPrefix(line, "OK") {
			t.Fatalf("PUB %d -> %q, %v", i, line, err)
		}
	}
	waitEnd(t, c, 0, 32)

	base := "http://" + d.metricsAddr()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp struct {
			Series map[string][]struct {
				Ops uint64 `json:"ops"`
			} `json:"series"`
		}
		body := httpGet(t, base+`/debug/timeline?window=30s`)
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("timeline response invalid JSON: %v\n%s", err, body)
		}
		var spoolOps uint64
		for _, s := range resp.Series[`ingest_spool{partition="0"}`] {
			spoolOps += s.Ops
		}
		if spoolOps > 0 {
			return
		}
		if time.Now().After(deadline) {
			names := make([]string, 0, len(resp.Series))
			for k := range resp.Series {
				names = append(names, k)
			}
			t.Fatalf("partition-0 spool series never saw ops; series: %v", names)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
