// Package flatcombining is a from-scratch implementation of flat combining
// (Hendler, Incze, Shavit and Tzafrir, SPAA 2010), the closest prior art to
// Sim and its strongest competitor in Figures 2 and 3. A thread publishes
// its operation in a publication list, then either spins until a combiner
// serves it or — if it acquires the global lock — becomes the combiner and
// serves everyone. Flat combining is BLOCKING: a preempted or crashed
// combiner stalls all other threads, which is precisely the robustness gap
// the wait-free Sim closes (paper §1).
//
// The knobs the paper tuned for its comparison (number of combining rounds
// per lock acquisition, publication-list cleanup frequency) are exposed as
// options.
package flatcombining

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/spin"
)

// FC runs operations of argument type A and response type R against a
// sequential object guarded by a global lock, combining announced operations
// whenever a thread holds the lock.
type FC[A, R any] struct {
	lock  spin.TTAS
	_     pad.CacheLinePad
	head  atomic.Pointer[record[A, R]] // publication list (LIFO of records)
	_pad2 pad.CacheLinePad
	apply func(pid int, arg A) R // the sequential object; combiner-only

	combinerPasses atomic.Uint64 // lock acquisitions (combining sessions)
	servedTotal    atomic.Uint64 // operations applied by combiners

	rounds       int // scans of the publication list per lock acquisition
	cleanupEvery int // combining sessions between publication-list cleanups
	maxIdleAge   uint64
}

// record is one thread's publication-list node. The request/response
// hand-off is synchronized on the pending flag: the requester writes arg
// then stores pending=true (release); the combiner loads pending (acquire),
// reads arg, writes resp, then stores pending=false (release); the requester
// observes pending=false (acquire) and reads resp. Both plain fields are
// therefore data-race free under the Go memory model.
type record[A, R any] struct {
	next     atomic.Pointer[record[A, R]]
	enlisted atomic.Bool
	pending  atomic.Bool
	pid      int
	arg      A
	resp     R
	lastUsed atomic.Uint64 // combining pass that last served this record
	_        pad.CacheLinePad
}

// New returns a flat-combining wrapper around the sequential function apply
// for up to any number of threads. rounds is the number of publication-list
// scans per combining session (the paper's "number of combining rounds");
// cleanupEvery is how many sessions pass between publication-list cleanups.
// Pass 0 for the defaults (rounds 3, cleanup every 64 sessions).
func New[A, R any](apply func(pid int, arg A) R, rounds, cleanupEvery int) *FC[A, R] {
	if rounds <= 0 {
		rounds = 3
	}
	if cleanupEvery <= 0 {
		cleanupEvery = 64
	}
	return &FC[A, R]{
		apply:        apply,
		rounds:       rounds,
		cleanupEvery: cleanupEvery,
		maxIdleAge:   uint64(cleanupEvery) * 2,
	}
}

// Handle is one goroutine's private access point.
type Handle[A, R any] struct {
	fc  *FC[A, R]
	rec *record[A, R]
}

// NewHandle returns a per-goroutine handle for process pid.
func (f *FC[A, R]) NewHandle(pid int) *Handle[A, R] {
	return &Handle[A, R]{fc: f, rec: &record[A, R]{pid: pid}}
}

// enlist links the record at the head of the publication list.
func (f *FC[A, R]) enlist(r *record[A, R]) {
	for {
		h := f.head.Load()
		r.next.Store(h)
		if f.head.CompareAndSwap(h, r) {
			r.enlisted.Store(true)
			return
		}
	}
}

// Apply publishes arg and returns its response, combining if this thread
// wins the lock.
func (h *Handle[A, R]) Apply(arg A) R {
	f, r := h.fc, h.rec
	if !r.enlisted.Load() {
		f.enlist(r)
	}
	r.arg = arg
	r.pending.Store(true)

	for {
		if !r.pending.Load() {
			return r.resp
		}
		if f.lock.TryLock() {
			f.combine()
			f.lock.Unlock()
			if !r.pending.Load() {
				return r.resp
			}
			// The cleanup pass may have unlinked us before our request was
			// published to the combiner's scan; re-enlist and retry.
			if !r.enlisted.Load() {
				f.enlist(r)
			}
			continue
		}
		runtime.Gosched()
	}
}

// combine serves pending requests; caller must hold the lock.
func (f *FC[A, R]) combine() {
	pass := f.combinerPasses.Add(1)
	served := uint64(0)
	for round := 0; round < f.rounds; round++ {
		any := false
		for rec := f.head.Load(); rec != nil; rec = rec.next.Load() {
			if rec.pending.Load() {
				rec.resp = f.apply(rec.pid, rec.arg)
				rec.lastUsed.Store(pass)
				rec.pending.Store(false)
				served++
				any = true
			}
		}
		if !any {
			break
		}
	}
	f.servedTotal.Add(served)
	if pass%uint64(f.cleanupEvery) == 0 {
		f.cleanup(pass)
	}
}

// cleanup unlinks records idle for more than maxIdleAge passes; caller must
// hold the lock. The head record stays (simplifies the unlink), matching the
// original implementation.
func (f *FC[A, R]) cleanup(pass uint64) {
	prev := f.head.Load()
	if prev == nil {
		return
	}
	for cur := prev.next.Load(); cur != nil; cur = prev.next.Load() {
		if !cur.pending.Load() && pass-cur.lastUsed.Load() > f.maxIdleAge {
			cur.enlisted.Store(false)
			prev.next.Store(cur.next.Load())
			continue
		}
		prev = cur
	}
}

// Stats reports the combining behaviour: sessions (lock acquisitions),
// operations served, and the average combining degree (served/sessions) —
// flat combining's analogue of the helping degree in Figure 2 (right).
type Stats struct {
	Sessions   uint64
	Served     uint64
	AvgCombine float64
}

// Stats returns a snapshot of the combining statistics.
func (f *FC[A, R]) Stats() Stats {
	s := Stats{Sessions: f.combinerPasses.Load(), Served: f.servedTotal.Load()}
	if s.Sessions > 0 {
		s.AvgCombine = float64(s.Served) / float64(s.Sessions)
	}
	return s
}
