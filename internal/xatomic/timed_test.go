package xatomic

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		index uint16
		stamp uint64
	}{
		{0, 0},
		{1, 1},
		{65535, 0},
		{0, TimedStampMax},
		{65535, TimedStampMax},
		{1234, 0xABCDEF},
	}
	for _, c := range cases {
		i, s := UnpackTimed(PackTimed(c.index, c.stamp))
		if i != c.index || s != c.stamp {
			t.Fatalf("round-trip (%d,%d) -> (%d,%d)", c.index, c.stamp, i, s)
		}
	}
}

func TestPackUnpackQuick(t *testing.T) {
	f := func(index uint16, stamp uint64) bool {
		stamp &= TimedStampMax
		i, s := UnpackTimed(PackTimed(index, stamp))
		return i == index && s == stamp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackStampWraps(t *testing.T) {
	// A stamp beyond 48 bits wraps silently rather than corrupting the index.
	w := PackTimed(7, TimedStampMax+1)
	i, s := UnpackTimed(w)
	if i != 7 {
		t.Fatalf("index corrupted by overflowing stamp: %d", i)
	}
	if s != 0 {
		t.Fatalf("stamp = %d, want wrap to 0", s)
	}
}

func TestTimedWordStoreLoad(t *testing.T) {
	var w TimedWord
	w.Store(12, 34)
	i, s := w.Load()
	if i != 12 || s != 34 {
		t.Fatalf("Load = (%d,%d), want (12,34)", i, s)
	}
}

func TestTimedWordCAS(t *testing.T) {
	var w TimedWord
	w.Store(1, 10)
	raw := w.LoadRaw()
	if !w.CompareAndSwap(raw, 2, 11) {
		t.Fatal("CAS with current raw failed")
	}
	if w.CompareAndSwap(raw, 3, 12) {
		t.Fatal("CAS with stale raw succeeded")
	}
	i, s := w.Load()
	if i != 2 || s != 11 {
		t.Fatalf("Load = (%d,%d), want (2,11)", i, s)
	}
}

func TestTimedWordCASDistinguishesSameIndexDifferentStamp(t *testing.T) {
	// The stamp is exactly what makes index reuse ABA-safe: the same index
	// with a bumped stamp must not satisfy a stale expectation.
	var w TimedWord
	w.Store(5, 100)
	stale := w.LoadRaw()
	if !w.CompareAndSwap(stale, 5, 101) {
		t.Fatal("setup CAS failed")
	}
	if w.CompareAndSwap(stale, 6, 102) {
		t.Fatal("stale CAS succeeded against same index, newer stamp")
	}
}
