package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/lsim"
	"repro/internal/simmap"
	"repro/internal/workload"
)

// The paper leaves L-Sim's experimental analysis as future work (§1, §6);
// this experiment performs it. The object is an array of `size` words; each
// operation touches two pseudo-random cells (w = 2). P-Sim must copy all
// `size` words per combining round (the clone), while L-Sim touches only
// the accessed ItemSV records — O(kw) instead of O(s). The crossover as
// `size` grows is the entire reason L-Sim exists.

// LargeObjectMakers returns the two contenders for one object size.
func LargeObjectMakers(size int) []harness.Maker {
	psim := func(n int) harness.Instance {
		u := newArrayPSim(n, size)
		return harness.Instance{
			Name: fmt.Sprintf("P-Sim(s=%d)", size),
			Op: func(id int, rng *workload.RNG) {
				u.Apply(id, [2]uint64{uint64(rng.Intn(size)), uint64(rng.Intn(size))})
			},
		}
	}
	lsimMk := func(n int) harness.Instance {
		l, _, op := newArrayLSim(n, size)
		return harness.Instance{
			Name: fmt.Sprintf("L-Sim(s=%d)", size),
			Op: func(id int, rng *workload.RNG) {
				l.ApplyOp(id, op, [2]uint64{uint64(rng.Intn(size)), uint64(rng.Intn(size))})
			},
		}
	}
	return []harness.Maker{psim, lsimMk}
}

// newArrayPSim builds the array object over plain P-Sim: the state is the
// whole []uint64 and each combining round copies every word — but into the
// recycled record's existing buffer (CloneInto), so the O(s) cost is a
// memcpy, not an allocation.
func newArrayPSim(n, size int) *core.PSim[[]uint64, [2]uint64, uint64] {
	return core.NewPSim(n, make([]uint64, size),
		func(st *[]uint64, _ int, arg [2]uint64) uint64 {
			va := (*st)[arg[0]]
			(*st)[arg[0]] = va + 1
			(*st)[arg[1]] ^= va
			return va
		},
		core.WithCloneInto[[]uint64](func(dst, src *[]uint64) {
			*dst = append((*dst)[:0], *src...)
		}))
}

// newArrayLSim builds the same object over L-Sim: one item per cell.
func newArrayLSim(n, size int) (*lsim.LSim[uint64, [2]uint64, uint64], []*lsim.Item[uint64], lsim.OpFunc[uint64, [2]uint64, uint64]) {
	l := lsim.New[uint64, [2]uint64, uint64](n)
	items := make([]*lsim.Item[uint64], size)
	for i := range items {
		items[i] = l.NewRootItem(0)
	}
	op := func(m *lsim.Mem[uint64, [2]uint64, uint64], arg [2]uint64) uint64 {
		a, b := items[arg[0]], items[arg[1]]
		va := m.Read(a)
		m.Write(a, va+1)
		vb := m.Read(b)
		m.Write(b, vb^va)
		return va
	}
	return l, items, op
}

// LargeObjectSweep runs the comparison across object sizes and returns the
// combined results (the harness keys rows by implementation name, which
// embeds the size).
func LargeObjectSweep(cfg harness.Config, sizes []int) []harness.Result {
	var all []harness.Result
	for _, s := range sizes {
		all = append(all, harness.Run(cfg, LargeObjectMakers(s))...)
	}
	return all
}

// The large-VALUE crossover: where LargeObjectMakers sweeps the number of
// machine words in the object, this experiment sweeps the SIZE OF ONE VALUE
// in a fixed 64-key byte-value store — the tiered map's actual design
// question ("from what value size should a binding live in an L-Sim item?").
// Three contenders serve the same workload (overwrite a random key with one
// of 16 preallocated immutable payloads, return the first byte of the old
// value):
//
//   - "P-Sim flat": the whole store is one []byte slab inside a single
//     P-Sim. Every combining round clones the slab (CloneInto memcpy — no
//     allocation, but O(nkeys*vsize) bytes moved), and each op copies its
//     payload into the key's slot. This is what "keep values inline in the
//     combined state" costs.
//   - "L-Sim items": one lsim.Item[[]byte] per key; an overwrite reads the
//     old header and writes the new one — O(w)=O(1) per op regardless of
//     vsize. The payloads themselves are immutable and shared, exactly like
//     the tiered map's owned copies (the ownership copy happens in Put for
//     every engine, so it is excluded from all contenders).
//   - "MultiPSim(4)": four independent P-Sim slab instances, keys hash-
//     partitioned — the multiple-instances trick (§5; CX makes the same
//     move). Partitioning divides the per-round clone by K but cannot
//     change its O(vsize) growth, so it delays the crossover rather than
//     removing it.
//
// Payload choice rides in the op argument, so deterministic replay holds:
// every helper that simulates the op picks the same pool entry.
const (
	crossoverKeys = 64
	crossoverPool = 16
)

// crossoverPayloads builds the immutable payload pool for one value size.
func crossoverPayloads(vsize int) [][]byte {
	pool := make([][]byte, crossoverPool)
	for i := range pool {
		p := make([]byte, vsize)
		for j := range p {
			p[j] = byte(i + j)
		}
		pool[i] = p
	}
	return pool
}

// newFlatPSim builds the slab contender over nkeys keys of vsize bytes.
func newFlatPSim(n, nkeys, vsize int, pool [][]byte) *core.PSim[[]byte, [2]uint64, uint64] {
	return core.NewPSim(n, make([]byte, nkeys*vsize),
		func(st *[]byte, _ int, arg [2]uint64) uint64 {
			off := int(arg[0]) * vsize
			old := (*st)[off]
			copy((*st)[off:off+vsize], pool[arg[1]])
			return uint64(old)
		},
		core.WithCloneInto[[]byte](func(dst, src *[]byte) {
			*dst = append((*dst)[:0], *src...)
		}))
}

// LargeValueCrossoverMakers returns the three contenders for one value size.
func LargeValueCrossoverMakers(vsize int) []harness.Maker {
	flat := func(n int) harness.Instance {
		pool := crossoverPayloads(vsize)
		u := newFlatPSim(n, crossoverKeys, vsize, pool)
		return harness.Instance{
			Name: fmt.Sprintf("P-Sim flat(v=%d)", vsize),
			Op: func(id int, rng *workload.RNG) {
				u.Apply(id, [2]uint64{uint64(rng.Intn(crossoverKeys)), uint64(rng.Intn(crossoverPool))})
			},
		}
	}
	items := func(n int) harness.Instance {
		pool := crossoverPayloads(vsize)
		l := lsim.New[[]byte, [2]uint64, uint64](n)
		its := make([]*lsim.Item[[]byte], crossoverKeys)
		for i := range its {
			its[i] = l.NewRootItem(pool[i%crossoverPool])
		}
		op := func(m *lsim.Mem[[]byte, [2]uint64, uint64], arg [2]uint64) uint64 {
			it := its[arg[0]]
			old := m.Read(it)
			m.Write(it, pool[arg[1]])
			return uint64(old[0])
		}
		return harness.Instance{
			Name: fmt.Sprintf("L-Sim items(v=%d)", vsize),
			Op: func(id int, rng *workload.RNG) {
				l.ApplyOp(id, op, [2]uint64{uint64(rng.Intn(crossoverKeys)), uint64(rng.Intn(crossoverPool))})
			},
		}
	}
	multi := func(n int) harness.Instance {
		const k = 4
		pool := crossoverPayloads(vsize)
		insts := make([]*core.PSim[[]byte, [2]uint64, uint64], k)
		for i := range insts {
			insts[i] = newFlatPSim(n, crossoverKeys/k, vsize, pool)
		}
		return harness.Instance{
			Name: fmt.Sprintf("MultiPSim(%d) flat(v=%d)", k, vsize),
			Op: func(id int, rng *workload.RNG) {
				key := rng.Intn(crossoverKeys)
				insts[key%k].Apply(id, [2]uint64{uint64(key / k), uint64(rng.Intn(crossoverPool))})
			},
		}
	}
	return []harness.Maker{flat, items, multi}
}

// LargeValueCrossoverSweep runs the three contenders across value sizes.
func LargeValueCrossoverSweep(cfg harness.Config, vsizes []int) []harness.Result {
	var all []harness.Result
	for _, v := range vsizes {
		all = append(all, harness.Run(cfg, LargeValueCrossoverMakers(v))...)
	}
	return all
}

// MapContentionMakers compares the striped wait-free map against a single
// global P-Sim instance managing the same object — quantifying what the
// multiple-instances idea (SimQueue's trick, §5) buys on a map workload.
func MapContentionMakers(stripes int) []harness.Maker {
	striped := func(n int) harness.Instance {
		m := simmap.New[uint64, uint64](n, stripes)
		return harness.Instance{
			Name: fmt.Sprintf("Map(%d-stripes)", stripes),
			Op: func(id int, rng *workload.RNG) {
				k := rng.Uint64() % 512
				if rng.Intn(4) == 0 {
					m.Delete(id, k)
				} else {
					m.Put(id, k, k)
				}
			},
		}
	}
	single := func(n int) harness.Instance {
		m := simmap.New[uint64, uint64](n, 1)
		return harness.Instance{
			Name: "Map(1-stripe)",
			Op: func(id int, rng *workload.RNG) {
				k := rng.Uint64() % 512
				if rng.Intn(4) == 0 {
					m.Delete(id, k)
				} else {
					m.Put(id, k, k)
				}
			},
		}
	}
	return []harness.Maker{striped, single}
}

// ShardedMapMakers sweeps the sharded wait-free map across shard counts,
// driving every instance with MSet batches of `batch` random keys
// (batch <= 1 degrades to single Puts). One shard is the baseline: it shows
// what hash-partitioning across independent Sim instances buys on top of
// striping alone, so stripes-per-shard stays FIXED (8) while the shard
// count sweeps — total chain length per key is held constant by the 512-key
// space, matching MapContentionMakers.
func ShardedMapMakers(shards []int, batch int) []harness.Maker {
	var makers []harness.Maker
	for _, k := range shards {
		k := k
		makers = append(makers, func(n int) harness.Instance {
			m := simmap.NewSharded[uint64, uint64](n, k, 8)
			if batch <= 1 {
				return harness.Instance{
					Name: fmt.Sprintf("Sharded(%d)", k),
					Op: func(id int, rng *workload.RNG) {
						key := rng.Uint64() % 512
						m.Put(id, key, key)
					},
				}
			}
			keys := make([][]uint64, n)
			vals := make([][]uint64, n)
			for i := range keys {
				keys[i] = make([]uint64, batch)
				vals[i] = make([]uint64, batch)
			}
			return harness.Instance{
				Name:       fmt.Sprintf("Sharded(%d) b=%d", k, batch),
				OpsPerCall: batch,
				Op: func(id int, rng *workload.RNG) {
					ks, vs := keys[id], vals[id]
					for i := range ks {
						ks[i] = rng.Uint64() % 512
						vs[i] = ks[i]
					}
					m.MSet(id, ks, vs)
				},
			}
		})
	}
	return makers
}
