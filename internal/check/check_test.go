package check

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// h builds an operation with explicit interval endpoints.
func h(thread int, op string, arg, ret uint64, ok bool, inv, res int64) Operation {
	return Operation{Thread: thread, Op: op, Arg: arg, Ret: ret, RetOK: ok, Invoke: inv, Return: res}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	if ok, err := Linearizable(nil, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("empty history rejected")
	}
}

func TestSequentialStackAccepted(t *testing.T) {
	ops := []Operation{
		h(0, OpPush, 1, 0, false, 1, 2),
		h(0, OpPush, 2, 0, false, 3, 4),
		h(0, OpPop, 0, 2, true, 5, 6),
		h(0, OpPop, 0, 1, true, 7, 8),
		h(0, OpPop, 0, 0, false, 9, 10),
	}
	if ok, err := Linearizable(ops, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("valid sequential stack history rejected")
	}
}

func TestSequentialStackWrongOrderRejected(t *testing.T) {
	ops := []Operation{
		h(0, OpPush, 1, 0, false, 1, 2),
		h(0, OpPush, 2, 0, false, 3, 4),
		h(0, OpPop, 0, 1, true, 5, 6), // FIFO answer from a LIFO object
	}
	if ok, err := Linearizable(ops, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("non-LIFO history accepted by stack spec")
	}
}

func TestConcurrentStackReorderAccepted(t *testing.T) {
	// Overlapping push(1) and pop -> pop may see 1 even though the pop's
	// invocation precedes the push's response.
	ops := []Operation{
		h(0, OpPush, 1, 0, false, 1, 5),
		h(1, OpPop, 0, 1, true, 2, 6),
	}
	if ok, err := Linearizable(ops, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("legal concurrent history rejected")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// pop returns 1 BEFORE push(1) is invoked: must be rejected.
	ops := []Operation{
		h(1, OpPop, 0, 1, true, 1, 2),
		h(0, OpPush, 1, 0, false, 3, 4),
	}
	if ok, err := Linearizable(ops, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("future-read accepted: real-time order not enforced")
	}
}

func TestEmptyPopOnlyWhenEmptyPossible(t *testing.T) {
	// push(1) completes, then pop claims empty: must be rejected.
	ops := []Operation{
		h(0, OpPush, 1, 0, false, 1, 2),
		h(1, OpPop, 0, 0, false, 3, 4),
	}
	if ok, err := Linearizable(ops, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("empty pop after completed push accepted")
	}
	// Overlapping push and empty-pop: the pop may linearize first — accept.
	ops2 := []Operation{
		h(0, OpPush, 1, 0, false, 1, 5),
		h(1, OpPop, 0, 0, false, 2, 4),
	}
	if ok, err := Linearizable(ops2, StackSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("empty pop overlapping push rejected")
	}
}

func TestQueueSpecFIFO(t *testing.T) {
	ok := []Operation{
		h(0, OpEnqueue, 1, 0, false, 1, 2),
		h(0, OpEnqueue, 2, 0, false, 3, 4),
		h(1, OpDequeue, 0, 1, true, 5, 6),
		h(1, OpDequeue, 0, 2, true, 7, 8),
	}
	if ok, err := Linearizable(ok, QueueSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("valid FIFO history rejected")
	}
	bad := []Operation{
		h(0, OpEnqueue, 1, 0, false, 1, 2),
		h(0, OpEnqueue, 2, 0, false, 3, 4),
		h(1, OpDequeue, 0, 2, true, 5, 6), // LIFO answer from a FIFO object
	}
	if ok, err := Linearizable(bad, QueueSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("non-FIFO history accepted by queue spec")
	}
}

func TestQueueDuplicateDequeueRejected(t *testing.T) {
	ops := []Operation{
		h(0, OpEnqueue, 7, 0, false, 1, 2),
		h(1, OpDequeue, 0, 7, true, 3, 4),
		h(2, OpDequeue, 0, 7, true, 5, 6),
	}
	if ok, err := Linearizable(ops, QueueSpec()); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("duplicated dequeue accepted")
	}
}

func TestCounterSpec(t *testing.T) {
	ok := []Operation{
		h(0, OpAdd, 5, 0, false, 1, 2),
		h(1, OpAdd, 3, 5, false, 3, 4),
		h(0, OpRead, 0, 8, false, 5, 6),
	}
	if ok, err := Linearizable(ok, CounterSpec(0)); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("valid counter history rejected")
	}
	bad := []Operation{
		h(0, OpAdd, 5, 0, false, 1, 2),
		h(1, OpAdd, 3, 4, false, 3, 4), // wrong previous value
	}
	if ok, err := Linearizable(bad, CounterSpec(0)); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("wrong fetch-add response accepted")
	}
}

func TestCounterConcurrentPermutation(t *testing.T) {
	// Two overlapping add(1): previous values {0,1} in either assignment.
	ops := []Operation{
		h(0, OpAdd, 1, 1, false, 1, 10),
		h(1, OpAdd, 1, 0, false, 2, 9),
	}
	if ok, err := Linearizable(ops, CounterSpec(0)); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("legal overlapping adds rejected")
	}
	dup := []Operation{
		h(0, OpAdd, 1, 0, false, 1, 10),
		h(1, OpAdd, 1, 0, false, 2, 9), // both claim previous 0
	}
	if ok, err := Linearizable(dup, CounterSpec(0)); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("duplicate previous values accepted")
	}
}

func TestFMulSpec(t *testing.T) {
	ops := []Operation{
		h(0, OpMul, 3, 1, false, 1, 2),
		h(1, OpMul, 5, 3, false, 3, 4),
		h(0, OpRead, 0, 15, false, 5, 6),
	}
	if ok, err := Linearizable(ops, FMulSpec(1)); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("valid Fetch&Multiply history rejected")
	}
}

func TestRegisterSpec(t *testing.T) {
	ok := []Operation{
		h(0, OpWrite, 9, 0, false, 1, 2),
		h(1, OpRead, 0, 9, false, 3, 4),
	}
	if ok, err := Linearizable(ok, RegisterSpec(0)); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("valid register history rejected")
	}
	bad := []Operation{
		h(0, OpWrite, 9, 0, false, 1, 2),
		h(1, OpRead, 0, 0, false, 3, 4), // stale read after completed write
	}
	if ok, err := Linearizable(bad, RegisterSpec(0)); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("stale read accepted")
	}
}

func TestRecorderTimestamps(t *testing.T) {
	r := NewRecorder(4)
	s1 := r.Invoke(0, OpPush, 1)
	r.Return(s1, 0, false)
	s2 := r.Invoke(1, OpPop, 0)
	r.Return(s2, 1, true)
	ops := r.Operations()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops", len(ops))
	}
	if !(ops[0].Invoke < ops[0].Return && ops[0].Return < ops[1].Invoke) {
		t.Fatalf("timestamps not ordered: %+v", ops)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	const n, per = 4, 50
	r := NewRecorder(n * per)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				s := r.Invoke(id, OpAdd, 1)
				r.Return(s, uint64(k), false)
			}
		}(i)
	}
	wg.Wait()
	ops := r.Operations()
	if len(ops) != n*per {
		t.Fatalf("recorded %d ops, want %d", len(ops), n*per)
	}
	for _, o := range ops {
		if o.Invoke >= o.Return {
			t.Fatalf("inverted interval: %v", o)
		}
	}
}

func TestRecorderCapacityPanics(t *testing.T) {
	r := NewRecorder(1)
	r.Invoke(0, OpPush, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected capacity panic")
		}
	}()
	r.Invoke(0, OpPush, 2)
}

func TestLinearizableTooLargeError(t *testing.T) {
	ops := make([]Operation, 65)
	for i := range ops {
		ops[i] = h(0, OpPush, 1, 0, false, int64(2*i), int64(2*i+1))
	}
	ok, err := Linearizable(ops, StackSpec())
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got (%v, %v), want ErrTooLarge", ok, err)
	}
	// The partitioned form surfaces the same error with the partition name.
	if _, err := LinearizablePartitioned(ops, func(Operation) string { return "p" },
		func(string) Spec { return StackSpec() }); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("partitioned: %v, want ErrTooLarge", err)
	}
}

func TestOperationString(t *testing.T) {
	s := h(2, OpPop, 0, 7, true, 1, 3).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestLinearizablePartitioned(t *testing.T) {
	// Two independent registers, each with a consistent sub-history, but
	// more total ops than one bitmask could hold if scaled up.
	var ops []Operation
	ts := int64(0)
	for k := 0; k < 2; k++ {
		key := fmt.Sprintf("k%d", k)
		for i := 0; i < 5; i++ {
			ts++
			inv := ts
			ts++
			ops = append(ops, Operation{
				Thread: k, Op: OpWrite, Arg: uint64(i),
				Invoke: inv, Return: ts,
			})
			_ = key
		}
	}
	partOf := func(o Operation) string { return fmt.Sprintf("t%d", o.Thread) }
	spec := func(string) Spec { return RegisterSpec(0) }
	if ok, err := LinearizablePartitioned(ops, partOf, spec); err != nil {
		t.Fatalf("search: %v", err)
	} else if !ok {
		t.Fatal("valid partitioned history rejected")
	}
	// Corrupt one partition: a read of a value never written.
	bad := append(append([]Operation(nil), ops...), Operation{
		Thread: 0, Op: OpRead, Ret: 999, Invoke: ts + 1, Return: ts + 2,
	})
	if ok, err := LinearizablePartitioned(bad, partOf, spec); err != nil {
		t.Fatalf("search: %v", err)
	} else if ok {
		t.Fatal("invalid partition accepted")
	}
}
