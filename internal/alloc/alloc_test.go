package alloc

import (
	"sync"
	"sync/atomic"
	"testing"
)

// tblk is the test block: a payload, the intrusive free-chain link, and an
// atomic protection flag standing in for a hazard-pointer table.
type tblk struct {
	val  int
	next *tblk
	prot atomic.Bool
}

func tconfig(chain, slots int) Config[tblk] {
	return Config[tblk]{
		New:     func() *tblk { return new(tblk) },
		Next:    func(b *tblk) *tblk { return b.next },
		SetNext: func(b, n *tblk) { b.next = n },
		Reset:   func(b *tblk) { b.val = 0 },
		Chain:   chain,
		Slots:   slots,
	}
}

// flagGuard treats a block as protected while its prot flag is set.
type flagGuard struct{}

func (flagGuard) Hazarded(b *tblk) bool { return b.prot.Load() }

func TestPoolRoundtrip(t *testing.T) {
	p := NewPool(1, tconfig(4, 2))
	h := p.Handle(0)

	x, fresh := h.Get()
	if !fresh {
		t.Fatalf("first Get must be fresh")
	}
	x.val = 42
	h.Put(x)
	y, fresh := h.Get()
	if fresh {
		t.Fatalf("Get after Put must recycle")
	}
	if y != x {
		t.Fatalf("expected the same block back (LIFO stack)")
	}
	if y.val != 0 {
		t.Fatalf("Reset must have cleared val, got %d", y.val)
	}
	if got := p.blocks.Total(); got != 2 {
		t.Fatalf("blocks counter = %d, want 2", got)
	}
	if got := p.fresh.Total(); got != 1 {
		t.Fatalf("fresh counter = %d, want 1", got)
	}
}

// TestPoolHandoff drives an imbalanced producer/consumer pair and checks
// chains actually move through the shared pool.
func TestPoolHandoff(t *testing.T) {
	const chain = 4
	p := NewPool(2, tconfig(chain, 2))
	prod, cons := p.Handle(0), p.Handle(1)

	// Producer retires 3 chains' worth of blocks it never takes back.
	for i := 0; i < 3*chain; i++ {
		prod.Put(new(tblk))
	}
	// Cache holds 2 chains; one must have reached the shared pool.
	if got := p.handoff.Total(); got != 1 {
		t.Fatalf("handoff counter = %d, want 1 give", got)
	}
	// Consumer drains: the first chain Gets must be recycled, not fresh.
	recycled := 0
	for i := 0; i < chain; i++ {
		if _, fresh := cons.Get(); !fresh {
			recycled++
		}
	}
	if recycled != chain {
		t.Fatalf("consumer recycled %d of %d blocks from the shared pool", recycled, chain)
	}
	if got := p.handoff.Total(); got != 2 {
		t.Fatalf("handoff counter = %d, want 2 (1 give + 1 take)", got)
	}
}

// TestPoolDropBoundsSpace fills the shared pool and verifies overflow chains
// are dropped to the GC (the space bound) instead of retained.
func TestPoolDropBoundsSpace(t *testing.T) {
	const chain = 4
	p := NewPool(1, tconfig(chain, 2))
	h := p.Handle(0)

	// 2 slots × 4 + handle cache 2×4 = 16 retained max; put twice that.
	for i := 0; i < 2*p.Cap(); i++ {
		h.Put(new(tblk))
	}
	if p.drops.Total() == 0 {
		t.Fatalf("expected drops after overflowing the shared pool")
	}
	if got, capN := p.Retained(), p.Cap(); got > capN {
		t.Fatalf("Retained() = %d exceeds Cap() = %d", got, capN)
	}
	freed := p.frees.Total()
	if want := uint64(2 * p.Cap()); freed != want {
		t.Fatalf("frees counter = %d, want %d", freed, want)
	}
}

// TestAllocFreeAllocsSteadyState is the CI gate: once warm, balanced
// Get/Put cycles allocate nothing — both within one handle and when blocks
// circulate between two handles through the shared pool.
func TestAllocFreeAllocsSteadyState(t *testing.T) {
	const chain = 4

	t.Run("single-handle", func(t *testing.T) {
		p := NewPool(1, tconfig(chain, 2))
		h := p.Handle(0)
		warm := func() {
			x, _ := h.Get()
			x.val = 1
			h.Put(x)
		}
		for i := 0; i < 4*chain; i++ {
			warm()
		}
		if avg := testing.AllocsPerRun(200, warm); avg != 0 {
			t.Fatalf("single-handle steady state allocates %.2f/op, want 0", avg)
		}
	})

	t.Run("cross-handle-circulation", func(t *testing.T) {
		p := NewPool(2, tconfig(chain, 4))
		prod, cons := p.Handle(0), p.Handle(1)
		cycle := func() {
			x, _ := cons.Get() // consumer takes (refills from shared pool)
			x.val = 1
			prod.Put(x) // producer retires (gives chains to shared pool)
		}
		// Warm until the circulation reaches steady state: the block
		// population in flight is bounded by the two caches + pool.
		for i := 0; i < 8*p.Cap(); i++ {
			cycle()
		}
		if avg := testing.AllocsPerRun(400, cycle); avg != 0 {
			t.Fatalf("cross-handle circulation allocates %.2f/op, want 0", avg)
		}
	})

	t.Run("typed-guarded", func(t *testing.T) {
		p := NewPool(1, tconfig(chain, 2))
		ty := NewTyped(p, flagGuard{})
		h := p.Handle(0)
		cycle := func() {
			x, _ := ty.Get(h)
			x.val = 1
			ty.Put(h, x)
		}
		for i := 0; i < 4*chain; i++ {
			cycle()
		}
		if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
			t.Fatalf("guarded steady state allocates %.2f/op, want 0", avg)
		}
	})
}

// TestTypedNeverReissuesProtected pins the hazard-composition contract: a
// protected block parks in the cache and is not returned by Get until the
// protection clears; a fully protected cache yields fresh blocks (starved
// counter) rather than waiting.
func TestTypedNeverReissuesProtected(t *testing.T) {
	const chain = 4
	p := NewPool(1, tconfig(chain, 2))
	ty := NewTyped(p, flagGuard{})
	h := p.Handle(0)

	// Retire a handful of blocks, then protect one of them.
	blocks := make([]*tblk, chain)
	for i := range blocks {
		blocks[i], _ = ty.Get(h)
	}
	for _, b := range blocks {
		ty.Put(h, b)
	}
	pinned := blocks[len(blocks)-1] // top of the stack: first Get candidate
	pinned.prot.Store(true)

	for i := 0; i < 3*chain; i++ {
		x, _ := ty.Get(h)
		if x == pinned {
			t.Fatalf("Get reissued a protected block")
		}
		ty.Put(h, x)
	}

	// Release the pin and drain the whole cache (balanced one-block churn
	// never digs below the LIFO top): the block must be reissuable again.
	pinned.prot.Store(false)
	seen := false
	drained := make([]*tblk, 0, 2*chain)
	for i := 0; i < 2*chain; i++ {
		x, fresh := ty.Get(h)
		if x == pinned {
			seen = true
		}
		if fresh {
			break
		}
		drained = append(drained, x)
	}
	for _, b := range drained {
		ty.Put(h, b)
	}
	if !seen {
		t.Fatalf("unpinned block never returned to circulation")
	}
}

// TestTypedStarvation is the starvation half of the acceptance criteria:
// with EVERY retired block protected, Get stays wait-free (fresh blocks, no
// spinning), counts starvation, and retained space stays within Cap().
func TestTypedStarvation(t *testing.T) {
	const chain = 4
	p := NewPool(2, tconfig(chain, 2))
	ty := NewTyped(p, flagGuard{})
	h := p.Handle(0)

	for i := 0; i < 4*p.Cap(); i++ {
		x, _ := ty.Get(h)
		x.prot.Store(true) // reader parks on it forever
		ty.Put(h, x)
	}
	if p.starved.Total() == 0 {
		t.Fatalf("expected starved Gets with every block protected")
	}
	if p.fresh.Total() == 0 {
		t.Fatalf("expected fresh allocations under starvation")
	}
	if got, capN := p.Retained(), p.Cap(); got > capN {
		t.Fatalf("starvation broke the space bound: Retained() = %d > Cap() = %d", got, capN)
	}
	// Space bound must hold with drops accounting for the excess.
	if p.drops.Total() == 0 {
		t.Fatalf("expected drops to enforce the bound under starvation churn")
	}
}

// TestPoolConcurrentChurn is the -race stress: per-goroutine handles with
// deliberately imbalanced flows so chains cross through the shared pool
// while the race detector watches the link-field accesses.
func TestPoolConcurrentChurn(t *testing.T) {
	const (
		threads = 8
		chain   = 8
		iters   = 5000
	)
	p := NewPool(threads, tconfig(chain, threads))
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			held := make([]*tblk, 0, 2*chain)
			for i := 0; i < iters; i++ {
				switch {
				case id%2 == 0 && i%3 == 0:
					// Producer bias: retire a block it never took.
					h.Put(&tblk{val: id})
				case id%2 == 1 && i%3 == 0:
					// Consumer bias: take a block and leak it to the GC.
					x, _ := h.Get()
					x.val = id
				default:
					x, _ := h.Get()
					x.val = i
					held = append(held, x)
					if len(held) == cap(held) {
						for _, b := range held {
							h.Put(b)
						}
						held = held[:0]
					}
				}
			}
			for _, b := range held {
				h.Put(b)
			}
		}(id)
	}
	wg.Wait()
	if got, capN := p.Retained(), p.Cap(); got > capN {
		t.Fatalf("Retained() = %d exceeds Cap() = %d after churn", got, capN)
	}
}

// TestSharedFront covers the anonymous front: recycling hits, bounded
// retention with drops, and concurrent churn under -race.
func TestSharedFront(t *testing.T) {
	s := NewShared(2, func() *tblk { return new(tblk) })

	a := s.Get()
	s.Put(a)
	if b := s.Get(); b != a {
		t.Fatalf("expected the parked block back")
	}
	s.Put(a)

	// Overfill: retention must stay within the slot bound.
	extra := make([]*tblk, 6)
	for i := range extra {
		extra[i] = s.Get()
	}
	for _, b := range extra {
		s.Put(b)
	}
	if got := s.Retained(); got > 2 {
		t.Fatalf("Shared retained %d blocks, bound is 2", got)
	}
	if s.drops.Total() == 0 {
		t.Fatalf("expected drops after overfilling the anonymous front")
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				x := s.Get()
				x.val = i
				s.Put(x)
			}
		}()
	}
	wg.Wait()
}

// TestPoolCounters checks the counter identities the timeline mapping
// relies on: blocks = fresh + recycled, frees ≥ handoff×chain outflow.
func TestPoolCounters(t *testing.T) {
	const chain = 4
	p := NewPool(1, tconfig(chain, 2))
	h := p.Handle(0)
	recycled := 0
	for i := 0; i < 100; i++ {
		x, fresh := h.Get()
		if !fresh {
			recycled++
		}
		h.Put(x)
	}
	if got, want := p.blocks.Total(), uint64(100); got != want {
		t.Fatalf("blocks = %d, want %d", got, want)
	}
	if got, want := p.fresh.Total(), uint64(100-recycled); got != want {
		t.Fatalf("fresh = %d, want %d", got, want)
	}
	if got, want := p.frees.Total(), uint64(100); got != want {
		t.Fatalf("frees = %d, want %d", got, want)
	}
}
