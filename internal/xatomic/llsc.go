package xatomic

import "sync/atomic"

// LLSC is a linked-load/store-conditional object holding a value of type T.
//
// The paper's theoretical construction (Algorithm 1) stores the whole State
// struct in one LL/SC object; its practical port (§4) simulates LL with a
// read and SC with a CAS on a timestamped word. This implementation uses the
// equivalent Go idiom: the value lives behind an atomic.Pointer to an
// immutable cell, LL loads the pointer, and SC is a CompareAndSwap that
// installs a freshly allocated cell. Because every SC installs a cell that
// did not previously occupy the variable, and the LL holder keeps its cell
// reachable (so the allocator cannot recycle its address), CAS success is
// exactly "no successful SC intervened since my LL" — i.e. true LL/SC
// semantics with no ABA and no spurious failures.
type LLSC[T any] struct {
	p atomic.Pointer[llCell[T]]
}

type llCell[T any] struct{ v T }

// Tag witnesses a linked load; pass it to SC or VL.
type Tag[T any] struct{ cell *llCell[T] }

// NewLLSC returns an LL/SC object initialized to v.
func NewLLSC[T any](v T) *LLSC[T] {
	l := &LLSC[T]{}
	l.p.Store(&llCell[T]{v: v})
	return l
}

// LL performs a linked load: it returns the current value and a tag to be
// used by a subsequent SC.
func (l *LLSC[T]) LL() (T, Tag[T]) {
	c := l.p.Load()
	return c.v, Tag[T]{cell: c}
}

// SC performs a store-conditional: it installs v and reports true iff no
// successful SC has occurred since the LL that produced tag.
func (l *LLSC[T]) SC(tag Tag[T], v T) bool {
	return l.p.CompareAndSwap(tag.cell, &llCell[T]{v: v})
}

// VL (validate-load) reports whether no successful SC has occurred since the
// LL that produced tag.
func (l *LLSC[T]) VL(tag Tag[T]) bool {
	return l.p.Load() == tag.cell
}

// Read returns the current value without linking.
func (l *LLSC[T]) Read() T {
	return l.p.Load().v
}
