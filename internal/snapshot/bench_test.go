package snapshot

import "testing"

func BenchmarkSnapshotUpdate(b *testing.B) {
	s := New(4, 8, 8)
	w := s.Writer(1)
	for i := 0; i < b.N; i++ {
		w.Update(uint64(i) & 0xFF)
	}
}

func BenchmarkSnapshotScan(b *testing.B) {
	b.Run("single-word", func(b *testing.B) {
		s := New(4, 8, 8)
		for i := 0; i < b.N; i++ {
			_ = s.Scan()
		}
	})
	b.Run("multi-word", func(b *testing.B) {
		s := New(16, 16, 16)
		for i := 0; i < b.N; i++ {
			_ = s.Scan()
		}
	})
}
