package simmap

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/check/v2"
	"repro/internal/obs"
)

// blobPayload builds a deterministic value of the given size whose 32-bit
// token is recoverable from the stored bytes — the recorded histories talk
// tokens, the map talks bytes. size must be >= 4.
func blobPayload(token uint32, size int) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint32(b, token)
	for i := 4; i < size; i++ {
		b[i] = byte(token>>uint((i%4)*8)) ^ byte(i)
	}
	return b
}

func blobToken(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// TestTieredBasic exercises routing, tier moves in both directions, and the
// per-tier counters, single-threaded so every intermediate state is exact.
func TestTieredBasic(t *testing.T) {
	const threshold = 64
	m := NewTiered[string](2, 4, threshold)
	if m.Threshold() != threshold {
		t.Fatalf("Threshold() = %d, want %d", m.Threshold(), threshold)
	}

	small := blobPayload(1, threshold-1)
	large := blobPayload(2, threshold)
	huge := blobPayload(3, 4*threshold)

	if existed := m.Put(0, "k", small); existed {
		t.Fatal("first put reported existed")
	}
	if v, ok := m.Get("k"); !ok || blobToken(v) != 1 {
		t.Fatalf("get after small put = %v, %v", v, ok)
	}
	// Small -> large tier move: the binding swings to an item.
	if existed := m.Put(0, "k", large); !existed {
		t.Fatal("tier-move put reported !existed")
	}
	if v, ok := m.Get("k"); !ok || blobToken(v) != 2 || len(v) != threshold {
		t.Fatalf("get after large put = token %d len %d, %v", blobToken(v), len(v), ok)
	}
	// Large -> large overwrite: stays in the item, no map round.
	if existed := m.Put(1, "k", huge); !existed {
		t.Fatal("large overwrite reported !existed")
	}
	if v, ok := m.Get("k"); !ok || blobToken(v) != 3 || len(v) != 4*threshold {
		t.Fatalf("get after large overwrite = token %d len %d, %v", blobToken(v), len(v), ok)
	}
	// Large -> small tier move back.
	if existed := m.Put(0, "k", small); !existed {
		t.Fatal("move-back put reported !existed")
	}
	if v, ok := m.Get("k"); !ok || blobToken(v) != 1 {
		t.Fatalf("get after move back = %v, %v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
	if existed := m.Delete(0, "k"); !existed {
		t.Fatal("delete reported !existed")
	}
	if _, ok := m.Get("k"); ok {
		t.Fatal("get after delete found a value")
	}
	if existed := m.Delete(0, "k"); existed {
		t.Fatal("second delete reported existed")
	}

	st := m.Stats()
	// Puts: small, large, large, small; deletes: one small-tier, one miss.
	if st.SmallOps != 4 || st.LargeOps != 2 {
		t.Fatalf("tier counters small=%d large=%d, want 4/2", st.SmallOps, st.LargeOps)
	}
	if st.Small.Ops == 0 {
		t.Fatal("small-tier engine recorded no ops")
	}
	if st.Large.Ops != 1 {
		t.Fatalf("large-tier engine ops = %d, want 1 (one in-tier overwrite)", st.Large.Ops)
	}
	if st.ItemsHeld == 0 {
		t.Fatal("no committed item write-backs recorded")
	}
}

// TestTieredThresholdBoundary pins the routing rule: len == threshold is
// large, len == threshold-1 is small.
func TestTieredThresholdBoundary(t *testing.T) {
	const threshold = 32
	m := NewTiered[uint64](1, 2, threshold)
	m.Put(0, 1, blobPayload(7, threshold-1))
	m.Put(0, 2, blobPayload(8, threshold))
	st := m.Stats()
	if st.SmallOps != 1 || st.LargeOps != 1 {
		t.Fatalf("tier counters small=%d large=%d, want 1/1", st.SmallOps, st.LargeOps)
	}
	if v, ok := m.Get(2); !ok || blobToken(v) != 8 {
		t.Fatalf("large-tier get = %v, %v", v, ok)
	}
}

// TestTieredRangeAndInstrument covers Range over mixed tiers and the
// registry wiring for both engines.
func TestTieredRangeAndInstrument(t *testing.T) {
	const threshold = 16
	m := NewTiered[uint64](2, 4, threshold)
	reg := obs.NewRegistry()
	if rec := m.Instrument(reg, "tmap"); rec == nil {
		t.Fatal("Instrument returned nil recorder")
	}
	for k := uint64(0); k < 10; k++ {
		size := 8
		if k%2 == 1 {
			size = threshold * 2
		}
		m.Put(0, k, blobPayload(uint32(100+k), size))
	}
	got := map[uint64]uint32{}
	m.Range(func(k uint64, v []byte) bool {
		got[k] = blobToken(v)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("Range saw %d keys, want 10", len(got))
	}
	for k, tok := range got {
		if tok != uint32(100+k) {
			t.Fatalf("key %d: token %d, want %d", k, tok, 100+k)
		}
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"tmap_ops_total", "tmap_lsim_ops_total",
		"tmap_tier_small_ops_total", "tmap_tier_large_ops_total",
		"tmap_lsim_items_written_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("registry missing counter %q (have %v)", name, snap.Counters)
		}
	}
	if snap.Counters["tmap_tier_small_ops_total"] != 5 || snap.Counters["tmap_tier_large_ops_total"] != 5 {
		t.Fatalf("tier metric split = %d/%d, want 5/5",
			snap.Counters["tmap_tier_small_ops_total"], snap.Counters["tmap_tier_large_ops_total"])
	}
}

// TestTieredSoakHistory is the large-value-tier linearizability gate: a
// concurrent mixed small/large workload is recorded as blob-map operations
// (values as tokens) and the full history is validated per key against
// BlobKeySpec with EngineBoth — forward simulation and bounded search
// cross-checking every partition the search can reach. Sizes straddle the
// threshold so the soak constantly moves bindings between tiers, which is
// exactly the race the prev-less spec exists for (see the tiered.go package
// comment).
func TestTieredSoakHistory(t *testing.T) {
	const (
		threads   = 4
		keys      = 8
		per       = 250
		threshold = 48
	)
	m := NewTiered[uint64](threads, 4, threshold)
	rec := check.NewRecorder(threads * per)

	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				seed = seed*6364136223846793005 + 1442695040888963407
				return seed >> 33
			}
			for c := 0; c < per; c++ {
				k := next() % keys
				switch r := next() % 10; {
				case r < 5: // put, half small / half large
					token := uint32(next()&0xffff + 1)
					size := 8 + int(next()%uint64(threshold-8))
					if next()%2 == 0 {
						size = threshold + int(next()%uint64(3*threshold))
					}
					slot := rec.Invoke(id, check.OpBlobPut, k<<32|uint64(token))
					existed := m.Put(id, k, blobPayload(token, size))
					rec.Return(slot, 0, existed)
				case r < 8: // get
					slot := rec.Invoke(id, check.OpBlobGet, k<<32)
					v, ok := m.Get(k)
					var tok uint64
					if ok {
						tok = uint64(blobToken(v))
					}
					rec.Return(slot, tok, ok)
				default: // delete
					slot := rec.Invoke(id, check.OpBlobDel, k<<32)
					existed := m.Delete(id, k)
					rec.Return(slot, 0, existed)
				}
			}
		}(i)
	}
	wg.Wait()

	h := rec.Operations()
	if len(h) != threads*per {
		t.Fatalf("recorded %d operations, want %d", len(h), threads*per)
	}
	for _, partition := range []bool{true, false} {
		opts := v2.DefaultOptions()
		opts.Engine = v2.EngineBoth
		opts.Partition = partition
		if err := v2.CheckHistory(h, opts); err != nil {
			t.Fatalf("partition=%v: mixed-tier history not linearizable: %v", partition, err)
		}
	}
	st := m.Stats()
	if st.SmallOps == 0 || st.LargeOps == 0 {
		t.Fatalf("soak did not exercise both tiers: small=%d large=%d", st.SmallOps, st.LargeOps)
	}
}
