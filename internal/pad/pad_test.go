package pad

import (
	"testing"
	"unsafe"
)

func TestCacheLinePadSize(t *testing.T) {
	if s := unsafe.Sizeof(CacheLinePad{}); s != CacheLineSize {
		t.Fatalf("CacheLinePad is %d bytes, want %d", s, CacheLineSize)
	}
}

func TestPaddedUint64Size(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s%CacheLineSize != 0 {
		t.Fatalf("pad.Uint64 is %d bytes, not a multiple of %d", s, CacheLineSize)
	}
}

func TestPaddedUint32Size(t *testing.T) {
	if s := unsafe.Sizeof(Uint32{}); s%CacheLineSize != 0 {
		t.Fatalf("pad.Uint32 is %d bytes, not a multiple of %d", s, CacheLineSize)
	}
}

func TestPaddedInt64Size(t *testing.T) {
	if s := unsafe.Sizeof(Int64{}); s%CacheLineSize != 0 {
		t.Fatalf("pad.Int64 is %d bytes, not a multiple of %d", s, CacheLineSize)
	}
}

func TestPaddedBoolSize(t *testing.T) {
	if s := unsafe.Sizeof(Bool{}); s%CacheLineSize != 0 {
		t.Fatalf("pad.Bool is %d bytes, not a multiple of %d", s, CacheLineSize)
	}
}

func TestPaddedPointerSize(t *testing.T) {
	if s := unsafe.Sizeof(Pointer[int]{}); s%CacheLineSize != 0 {
		t.Fatalf("pad.Pointer is %d bytes, not a multiple of %d", s, CacheLineSize)
	}
}

// TestUint64SliceSeparation verifies that the hot words of consecutive
// padded slots are at least a cache line apart — the property the padding
// exists for.
func TestUint64SliceSeparation(t *testing.T) {
	s := make([]Uint64, 4)
	for i := 1; i < len(s); i++ {
		a := uintptr(unsafe.Pointer(&s[i-1].V))
		b := uintptr(unsafe.Pointer(&s[i].V))
		if b-a < CacheLineSize {
			t.Fatalf("slots %d and %d only %d bytes apart", i-1, i, b-a)
		}
	}
}

// TestSlotSeparation verifies Slot payload separation for a payload larger
// than one word.
func TestSlotSeparation(t *testing.T) {
	type payload struct{ a, b, c uint64 }
	s := make([]Slot[payload], 4)
	for i := 1; i < len(s); i++ {
		a := uintptr(unsafe.Pointer(&s[i-1].Value))
		b := uintptr(unsafe.Pointer(&s[i].Value))
		if b-a < CacheLineSize {
			t.Fatalf("slots %d and %d only %d bytes apart", i-1, i, b-a)
		}
	}
}

func TestPaddedFieldsUsable(t *testing.T) {
	var u Uint64
	u.V.Store(7)
	if u.V.Load() != 7 {
		t.Fatal("padded Uint64 does not round-trip")
	}
	var p Pointer[int]
	x := 5
	p.P.Store(&x)
	if *p.P.Load() != 5 {
		t.Fatal("padded Pointer does not round-trip")
	}
	var bl Bool
	bl.V.Store(true)
	if !bl.V.Load() {
		t.Fatal("padded Bool does not round-trip")
	}
}
