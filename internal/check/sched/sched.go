// Package sched is a deterministic adversarial schedule explorer for the
// wait-free structures in this repository. It serializes a group of worker
// goroutines — only one runs at a time, and control changes hands only at
// the instrumented preemption points inside internal/core, internal/queue
// and friends (announce publication, collect/hazard acquisition, the moment
// before SC/CAS; see core.SchedPoint) — so an execution is a pure function
// of the seed: the same seed replays the same interleaving, instruction for
// instruction, which makes failures from CI or fuzzing reproducible with a
// one-line config.
//
// Serializing wait-free code cannot deadlock: no operation ever waits on
// another thread's progress, so whichever worker holds the token always
// reaches its next yield point or returns. (Running lock-based code under
// this scheduler would hang; don't.)
//
// The preemption budget follows the probabilistic-concurrency-testing
// insight that most concurrency bugs need only a handful of well-placed
// context switches: schedules with a small budget are both more likely to
// trip real bugs and vastly easier to read. Minimize shrinks a failing
// configuration's budget before it is reported.
package sched

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Config seeds one deterministic execution.
type Config struct {
	// Seed selects the interleaving. Same seed, same schedule.
	Seed uint64
	// Threads is the number of workers (process ids 0..Threads-1).
	Threads int
	// Preemptions is the forced-context-switch budget at instrumented
	// yield points: <0 switches at every point (uniformly among ready
	// workers, including staying put), 0 never preempts (workers run to
	// completion one after another), and n>0 allows at most n forced
	// switches — the PCT-style small-budget mode that Minimize drives
	// toward.
	Preemptions int
}

// String renders the config as a replayable one-liner for failure reports.
func (c Config) String() string {
	return fmt.Sprintf("sched.Config{Seed: %#x, Threads: %d, Preemptions: %d}", c.Seed, c.Threads, c.Preemptions)
}

// Stats summarizes one execution.
type Stats struct {
	Points   int // instrumented yield points reached
	Switches int // forced context switches taken
}

// scheduler carries the token-passing state. All fields except the grant
// channels are touched only by the token holder; the channel hand-off
// orders those accesses, so the race detector is satisfied without locks.
type scheduler struct {
	cfg      Config
	rng      uint64
	grants   []chan struct{}
	ready    []bool
	points   int
	switches int
}

// Exec runs body(pid) on cfg.Threads workers under the schedule drawn from
// cfg.Seed and reports how many yield points and switches occurred. It
// installs the core scheduling hook for the duration, so at most one Exec
// may run per process at a time (run such tests sequentially, never with
// t.Parallel). Workers must drive the shared structure with their own pid,
// and must not spawn further goroutines that touch instrumented code.
func Exec(cfg Config, body func(pid int)) Stats {
	n := cfg.Threads
	if n <= 0 {
		panic("sched: Config.Threads must be positive")
	}
	s := &scheduler{
		cfg:    cfg,
		rng:    cfg.Seed,
		grants: make([]chan struct{}, n),
		ready:  make([]bool, n),
	}
	for i := range s.grants {
		s.grants[i] = make(chan struct{}, 1)
		s.ready[i] = true
	}

	core.SetSchedHook(func(pid int, _ core.SchedPoint) { s.yield(pid) })
	var wg sync.WaitGroup
	wg.Add(n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			<-s.grants[pid] // wait for the token
			body(pid)
			s.finish(pid)
		}(pid)
	}
	s.grants[s.pick(-1)] <- struct{}{}
	wg.Wait()
	core.SetSchedHook(nil)
	return Stats{Points: s.points, Switches: s.switches}
}

// yield is the core hook: called by the token holder at each instrumented
// point, it decides whether the token moves.
func (s *scheduler) yield(pid int) {
	if pid < 0 || pid >= len(s.grants) {
		return // a pid outside the worker group (e.g. the test goroutine itself)
	}
	s.points++
	if s.cfg.Preemptions == 0 {
		return
	}
	if s.cfg.Preemptions > 0 && s.switches >= s.cfg.Preemptions {
		return
	}
	next := s.pick(pid)
	if next == pid || next < 0 {
		return
	}
	s.switches++
	s.grants[next] <- struct{}{}
	<-s.grants[pid] // park until the token returns
}

// finish retires pid and hands the token to a remaining worker, if any.
func (s *scheduler) finish(pid int) {
	s.ready[pid] = false
	if next := s.pick(-1); next >= 0 {
		s.grants[next] <- struct{}{}
	}
}

// pick chooses uniformly among ready workers. self >= 0 includes the
// caller in the draw (a self-pick means "keep running"); -1 draws only
// among the others.
func (s *scheduler) pick(self int) int {
	var cands []int
	for pid, r := range s.ready {
		if r || pid == self {
			cands = append(cands, pid)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[s.rand()%uint64(len(cands))]
}

// rand is splitmix64: tiny, fast, and plenty for schedule diversity.
func (s *scheduler) rand() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Minimize shrinks a failing configuration's preemption budget: given that
// fails(cfg) reproduces a failure, it returns a config with the smallest
// budget (under the same seed) that still fails, making the schedule as
// readable as possible. Failure is not monotone in the budget, so this is
// a heuristic: the result is a local minimum among the probed budgets, and
// always still failing. An unbounded budget (<0) is first pinned to a
// finite failing one by doubling probes; if only the unbounded schedule
// fails, cfg is returned unchanged.
func Minimize(cfg Config, fails func(Config) bool) Config {
	if !fails(cfg) {
		return cfg
	}
	if cfg.Preemptions < 0 {
		found := false
		for b := 1; b <= 1<<14; b *= 2 {
			c := cfg
			c.Preemptions = b
			if fails(c) {
				cfg = c
				found = true
				break
			}
		}
		if !found {
			return cfg
		}
	}
	lo, hi := 0, cfg.Preemptions // invariant: budget hi fails
	for lo < hi {
		mid := lo + (hi-lo)/2
		c := cfg
		c.Preemptions = mid
		if fails(c) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cfg.Preemptions = hi
	return cfg
}
