// Package kvserver is a small TCP key-value server built on the wait-free
// striped map — the kind of downstream application the universal
// construction exists for. Every mutation is wait-free: a slow or stalled
// client connection can never hold a lock that blocks other clients'
// operations (there are no locks), and reads are single atomic loads.
//
// Protocol (one request per line, space-separated, values base-10 uint64):
//
//	PUT <key> <value>   -> OK <previous>|OK NIL
//	GET <key>           -> VAL <value>|NIL
//	DEL <key>           -> OK <previous>|OK NIL
//	LEN                 -> LEN <count>
//	STATS               -> STATS ops=<n> helping=<avg>
//	QUIT                -> BYE (closes the connection)
//
// Malformed requests get "ERR <reason>" and the connection stays open.
package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/simmap"
)

// Server is a key-value server instance. Up to MaxClients connections are
// served concurrently; each holds one of the map's process ids while
// connected.
type Server struct {
	m       *simmap.Map[string, uint64]
	ids     chan int // free-list of process ids
	ln      net.Listener
	mu      sync.Mutex
	closed  bool
	wg      sync.WaitGroup
	maxConn int
}

// New returns a server allowing maxClients concurrent connections, with the
// given stripe count for the underlying map (0 selects maxClients).
func New(maxClients, stripes int) *Server {
	if maxClients < 1 {
		maxClients = 1
	}
	if stripes <= 0 {
		stripes = maxClients
	}
	s := &Server{
		m:       simmap.New[string, uint64](maxClients, stripes),
		ids:     make(chan int, maxClients),
		maxConn: maxClients,
	}
	for i := 0; i < maxClients; i++ {
		s.ids <- i
	}
	return s
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		id := <-s.ids // waits if all client slots are busy
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { s.ids <- id }()
			defer conn.Close()
			s.ServeConn(id, conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ServeConn handles one client connection with map process id. Exposed so
// tests (and in-process embedders) can drive the protocol over net.Pipe.
func (s *Server) ServeConn(id int, conn net.Conn) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp, quit := s.handle(id, line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// handle executes one request line and returns the response line.
func (s *Server) handle(id int, line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PUT":
		if len(fields) != 3 {
			return "ERR usage: PUT <key> <value>", false
		}
		v, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return "ERR value must be a uint64", false
		}
		prev, existed := s.m.Put(id, fields[1], v)
		if !existed {
			return "OK NIL", false
		}
		return fmt.Sprintf("OK %d", prev), false
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>", false
		}
		v, ok := s.m.Get(fields[1])
		if !ok {
			return "NIL", false
		}
		return fmt.Sprintf("VAL %d", v), false
	case "DEL":
		if len(fields) != 2 {
			return "ERR usage: DEL <key>", false
		}
		prev, existed := s.m.Delete(id, fields[1])
		if !existed {
			return "OK NIL", false
		}
		return fmt.Sprintf("OK %d", prev), false
	case "LEN":
		return fmt.Sprintf("LEN %d", s.m.Len()), false
	case "STATS":
		st := s.m.Stats()
		return fmt.Sprintf("STATS ops=%d helping=%.2f", st.Ops, st.AvgHelping), false
	case "QUIT":
		return "BYE", true
	}
	return "ERR unknown command " + cmd, false
}

// Map exposes the underlying map for embedding scenarios and tests.
func (s *Server) Map() *simmap.Map[string, uint64] { return s.m }
