package xatomic

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"repro/internal/pad"
)

// WordBits is the number of bits per bit-vector word.
const WordBits = 64

// Snapshot is an immutable point-in-time copy of a bit vector, one uint64
// per 64 bits. It supports the local bit algebra P-Sim's Attempt performs on
// its diffs value (Algorithm 3, lines 10–19): XOR against another snapshot,
// bitSearchFirst, and bit extraction.
type Snapshot []uint64

// NewSnapshot returns an all-zero snapshot able to hold n bits.
func NewSnapshot(n int) Snapshot {
	return make(Snapshot, WordsFor(n))
}

// WordsFor returns the number of 64-bit words needed for n bits.
func WordsFor(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + WordBits - 1) / WordBits
}

// Bit reports whether bit i is set.
func (s Snapshot) Bit(i int) bool {
	return s[i/WordBits]&(1<<uint(i%WordBits)) != 0
}

// SetBit sets bit i.
func (s Snapshot) SetBit(i int) {
	s[i/WordBits] |= 1 << uint(i%WordBits)
}

// ClearBit clears bit i.
func (s Snapshot) ClearBit(i int) {
	s[i/WordBits] &^= 1 << uint(i%WordBits)
}

// FlipBit toggles bit i.
func (s Snapshot) FlipBit(i int) {
	s[i/WordBits] ^= 1 << uint(i%WordBits)
}

// XorInto stores s XOR other into dst. All three must have equal length.
// This is Algorithm 3 line 10: diffs = applied XOR active.
func (s Snapshot) XorInto(other, dst Snapshot) {
	for i := range s {
		dst[i] = s[i] ^ other[i]
	}
}

// CopyFrom copies other into s.
func (s Snapshot) CopyFrom(other Snapshot) {
	copy(s, other)
}

// Equal reports whether the two snapshots hold identical bits.
func (s Snapshot) Equal(other Snapshot) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set.
func (s Snapshot) IsZero() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// BitSearchFirst returns the index of the lowest set bit, or -1 if none.
// This is the paper's bitSearchFirst (Algorithm 3 line 16), which drives the
// helping loop over the diffs set.
func (s Snapshot) BitSearchFirst() int {
	for i, w := range s {
		if w != 0 {
			return i*WordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// IsOnlyBit reports whether the snapshot's only set bits are exactly mask in
// word — i.e. the vector is the singleton {the caller}. P-Sim's uncontended
// fast path uses it on diffs: a singleton means no helper work accumulated,
// so the backoff window was wasted and should shrink fast.
func (s Snapshot) IsOnlyBit(word int, mask uint64) bool {
	for i, w := range s {
		if i == word {
			if w != mask {
				return false
			}
		} else if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits — used by the helping-degree
// statistic of Figure 2 (right).
func (s Snapshot) PopCount() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s Snapshot) Clone() Snapshot {
	d := make(Snapshot, len(s))
	copy(d, s)
	return d
}

// String renders the snapshot as little-endian bits grouped per word, for
// test diagnostics.
func (s Snapshot) String() string {
	var b strings.Builder
	for i, w := range s {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%064b", bits.Reverse64(w))
	}
	return b.String()
}

// SharedBits is an n-bit shared vector stored in ⌈n/64⌉ atomic words, each
// on its own cache line when padded is true. It is written only with
// Fetch&Add (via Toggler) so that, as in P-Sim, announcing activity is a
// single F&A instruction, and read with per-word atomic loads.
//
// The paper stores the multi-word Act vector "to the minimum possible number
// of cache lines" (§4) so a read costs one miss for up to 512 threads; under
// heavy F&A traffic, however, spreading words across lines avoids false
// sharing between togglers of different words. Both layouts are provided:
// NewSharedBits (dense) and NewSharedBitsPadded (padded); the ablation bench
// compares them.
type SharedBits struct {
	n      int
	padded bool
	densew []atomic.Uint64 // dense layout: words packed contiguously
	padw   []pad.Uint64    // padded layout: one word per cache line
}

// NewSharedBits returns an n-bit vector in the paper's dense layout: words
// packed contiguously so a full read touches the minimum number of cache
// lines (one line per 512 bits).
func NewSharedBits(n int) *SharedBits {
	return &SharedBits{n: n, densew: make([]atomic.Uint64, WordsFor(n))}
}

// NewSharedBitsPadded returns an n-bit vector with one word per cache line,
// trading read cost for toggle-side false-sharing avoidance.
func NewSharedBitsPadded(n int) *SharedBits {
	return &SharedBits{n: n, padded: true, padw: make([]pad.Uint64, WordsFor(n))}
}

// Len returns the number of bits.
func (b *SharedBits) Len() int { return b.n }

// Words returns the number of 64-bit words.
func (b *SharedBits) Words() int { return WordsFor(b.n) }

// AddWord atomically adds delta to word w and returns the previous value.
func (b *SharedBits) AddWord(w int, delta uint64) uint64 {
	if b.padded {
		return FetchAdd64(&b.padw[w].V, delta)
	}
	return FetchAdd64(&b.densew[w], delta)
}

// LoadWord atomically reads word w.
func (b *SharedBits) LoadWord(w int) uint64 {
	if b.padded {
		return b.padw[w].V.Load()
	}
	return b.densew[w].Load()
}

// LoadInto reads every word into dst (len must equal Words()). The read is
// per-word atomic, not a multi-word snapshot — exactly the guarantee the
// paper's Act read has, and all P-Sim needs (each bit is single-writer).
func (b *SharedBits) LoadInto(dst Snapshot) {
	for i := range dst {
		dst[i] = b.LoadWord(i)
	}
}

// Load allocates and returns a snapshot of the vector.
func (b *SharedBits) Load() Snapshot {
	s := make(Snapshot, b.Words())
	b.LoadInto(s)
	return s
}

// Toggler flips one fixed bit of a SharedBits with a single Fetch&Add per
// call, the paper's announcement trick (Algorithm 3 lines 2–3): process i
// alternately adds +2^i and −2^i. Because process i is the only writer of
// that delta and the bit strictly alternates 0→1→0, the addition never
// carries or borrows into neighbouring bits.
//
// A Toggler is owned by one goroutine and must not be shared.
type Toggler struct {
	bits   *SharedBits
	word   int
	offset uint64 // +mask or its two's complement, alternating
	mask   uint64
	set    bool // local mirror: does the shared bit currently read 1?
}

// NewToggler returns a toggler for bit i, which must currently be 0 and must
// be toggled only through this Toggler.
func NewToggler(b *SharedBits, i int) *Toggler {
	mask := uint64(1) << uint(i%WordBits)
	return &Toggler{bits: b, word: i / WordBits, offset: mask, mask: mask}
}

// Toggle flips the bit with one Fetch&Add and returns the snapshot the bit's
// word held BEFORE the toggle.
func (t *Toggler) Toggle() (prevWord uint64) {
	prev := t.bits.AddWord(t.word, t.offset)
	t.offset = -t.offset
	t.set = !t.set
	return prev
}

// Set reports the current value of the bit according to this (single-writer)
// toggler's local mirror.
func (t *Toggler) Set() bool { return t.set }

// Mask returns the bit's mask within its word.
func (t *Toggler) Mask() uint64 { return t.mask }

// Word returns the index of the word holding the bit.
func (t *Toggler) Word() int { return t.word }
