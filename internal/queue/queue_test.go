package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/check"
)

// TestQueueFIFOOrderSingleThread: long single-thread interleavings vs a
// reference model, for every implementation.
func TestQueueFIFOOrderSingleThread(t *testing.T) {
	for _, q := range all(1) {
		t.Run(q.Name(), func(t *testing.T) {
			var ref []uint64
			seed := uint64(54321)
			for step := 0; step < 2000; step++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				if seed%3 != 0 {
					v := seed
					q.Enqueue(0, v)
					ref = append(ref, v)
				} else {
					v, ok := q.Dequeue(0)
					if len(ref) == 0 {
						if ok {
							t.Fatalf("step %d: dequeue on empty returned %d", step, v)
						}
						continue
					}
					want := ref[0]
					ref = ref[1:]
					if !ok || v != want {
						t.Fatalf("step %d: dequeue = (%d,%v), want (%d,true)", step, v, ok, want)
					}
				}
			}
		})
	}
}

// TestQueueQuickEquivalence: property-based sequential equivalence against
// the reference model.
func TestQueueQuickEquivalence(t *testing.T) {
	for _, mk := range []func() Interface[uint64]{
		func() Interface[uint64] { return NewSimQueue[uint64](1) },
		func() Interface[uint64] { return NewMSQueue[uint64](1) },
		func() Interface[uint64] { return NewTwoLockQueue[uint64](1) },
		func() Interface[uint64] { return NewFCQueue[uint64](1, 0, 0) },
	} {
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				q := mk()
				var ref []uint64
				for _, o := range ops {
					if o%2 == 0 {
						v := uint64(o) + 1
						q.Enqueue(0, v)
						ref = append(ref, v)
					} else {
						v, ok := q.Dequeue(0)
						if len(ref) == 0 {
							if ok {
								return false
							}
							continue
						}
						want := ref[0]
						ref = ref[1:]
						if !ok || v != want {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQueueLinearizable: small adversarial concurrent histories validated by
// the checker, for every implementation.
func TestQueueLinearizable(t *testing.T) {
	const n, per, rounds = 3, 3, 12
	for _, mk := range []func(int) Interface[uint64]{
		func(n int) Interface[uint64] { return NewSimQueue[uint64](n) },
		func(n int) Interface[uint64] { return NewMSQueue[uint64](n) },
		func(n int) Interface[uint64] { return NewTwoLockQueue[uint64](n) },
		func(n int) Interface[uint64] { return NewFCQueue[uint64](n, 0, 0) },
	} {
		name := mk(1).Name()
		t.Run(name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				q := mk(n)
				rec := check.NewRecorder(2 * n * per)
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for k := 0; k < per; k++ {
							v := uint64(id*per+k) + 1
							slot := rec.Invoke(id, check.OpEnqueue, v)
							q.Enqueue(id, v)
							rec.Return(slot, 0, false)

							slot = rec.Invoke(id, check.OpDequeue, 0)
							dv, ok := q.Dequeue(id)
							rec.Return(slot, dv, ok)
						}
					}(i)
				}
				wg.Wait()
				if ok, err := check.Linearizable(rec.Operations(), check.QueueSpec()); err != nil {
					t.Fatalf("linearizability search: %v", err)
				} else if !ok {
					t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
				}
			}
		})
	}
}

// TestQueuePerProducerFIFO: values from one producer must be dequeued in
// production order — the weakest FIFO property every linearizable queue must
// satisfy, checked at a scale the full checker cannot reach. A SINGLE
// consumer is used: with several consumers the observation order of
// dequeues cannot be recovered from logs (a consumer may be descheduled
// between its dequeue and its log append), so apparent reorderings would be
// observation artifacts, not queue bugs.
func TestQueuePerProducerFIFO(t *testing.T) {
	const producers, per = 4, 400
	n := producers + 1
	for _, q := range all(n) {
		t.Run(q.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < per; k++ {
						// value encodes (producer, sequence)
						q.Enqueue(id, uint64(id)<<32|uint64(k))
					}
				}(p)
			}
			got := make(map[int][]uint64) // producer -> seqs in dequeue order
			consumed := 0
			for consumed < producers*per {
				v, ok := q.Dequeue(producers)
				if !ok {
					runtime.Gosched() // producers still filling the queue
					continue
				}
				prod := int(v >> 32)
				got[prod] = append(got[prod], v&0xFFFFFFFF)
				consumed++
			}
			wg.Wait()
			for p, seqs := range got {
				if len(seqs) != per {
					t.Fatalf("producer %d: %d values dequeued, want %d", p, len(seqs), per)
				}
				for i := 1; i < len(seqs); i++ {
					if seqs[i] <= seqs[i-1] {
						t.Fatalf("producer %d: out-of-order dequeue %d after %d", p, seqs[i], seqs[i-1])
					}
				}
			}
		})
	}
}

// TestSimQueueBatchedEnqueues: with a wide backoff window enqueuers form
// batches (one private list spliced at once); conservation and per-producer
// order must survive batching.
func TestSimQueueBatchedEnqueues(t *testing.T) {
	const n, per = 8, 300
	q := NewSimQueue[uint64](n)
	q.SetBackoff(512, 4096)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				q.Enqueue(id, uint64(id)<<32|uint64(k))
			}
		}(i)
	}
	wg.Wait()
	st := q.Stats()
	if st.AvgHelping <= 1.05 {
		t.Logf("note: helping %.2f — batching did not trigger on this host", st.AvgHelping)
	}
	// Drain and verify per-producer order + conservation.
	lastSeq := make(map[int]int64)
	for i := 0; i < n; i++ {
		lastSeq[i] = -1
	}
	count := 0
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		prod, seq := int(v>>32), int64(v&0xFFFFFFFF)
		if seq <= lastSeq[prod] {
			t.Fatalf("producer %d out of order: %d after %d", prod, seq, lastSeq[prod])
		}
		lastSeq[prod] = seq
		count++
	}
	if count != n*per {
		t.Fatalf("drained %d values, want %d", count, n*per)
	}
}

func TestSimQueueStatsAndBackoff(t *testing.T) {
	q := NewSimQueue[uint64](2)
	q.SetBackoff(1, 0) // disabled
	q.Enqueue(0, 1)
	q.Enqueue(1, 2)
	q.Dequeue(0)
	st := q.Stats()
	if st.Ops != 3 {
		t.Fatalf("Stats.Ops = %d, want 3", st.Ops)
	}
	if st.Combined != 3 {
		t.Fatalf("Stats.Combined = %d, want 3", st.Combined)
	}
}

// TestQueueAlternatingEmptiness: strict enqueue/dequeue alternation never
// observes a spurious empty.
func TestQueueAlternatingEmptiness(t *testing.T) {
	for _, q := range all(1) {
		t.Run(q.Name(), func(t *testing.T) {
			for k := uint64(0); k < 500; k++ {
				q.Enqueue(0, k)
				v, ok := q.Dequeue(0)
				if !ok || v != k {
					t.Fatalf("iteration %d: dequeue = (%d,%v)", k, v, ok)
				}
				if _, ok := q.Dequeue(0); ok {
					t.Fatalf("iteration %d: queue not empty after drain", k)
				}
			}
		})
	}
}

// TestSimQueueManyThreadsMultiWordAct: 70 processes -> two Act words on
// both instances; conservation must hold across word boundaries.
func TestSimQueueManyThreadsMultiWordAct(t *testing.T) {
	const n, per = 70, 20
	q := NewSimQueue[uint64](n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				q.Enqueue(id, uint64(id*per+k)+1)
			}
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n*per {
		t.Fatalf("drained %d values, want %d", len(seen), n*per)
	}
}

// TestQueuePhases: enqueue-only phase then dequeue-only phase, concurrent
// within each phase — order across the drain must be a valid interleaving
// (per producer increasing).
func TestQueuePhases(t *testing.T) {
	const n, per = 6, 100
	for _, q := range all(n) {
		t.Run(q.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < per; k++ {
						q.Enqueue(id, uint64(id)<<32|uint64(k))
					}
				}(i)
			}
			wg.Wait()
			last := map[int]int64{}
			for i := 0; i < n; i++ {
				last[i] = -1
			}
			count := 0
			for {
				v, ok := q.Dequeue(0)
				if !ok {
					break
				}
				prod, seq := int(v>>32), int64(v&0xFFFFFFFF)
				if seq <= last[prod] {
					t.Fatalf("producer %d out of order: %d after %d", prod, seq, last[prod])
				}
				last[prod] = seq
				count++
			}
			if count != n*per {
				t.Fatalf("drained %d, want %d", count, n*per)
			}
		})
	}
}

// TestMSQueueTailLagRecovery: exercises the help-the-lagging-tail paths by
// hammering enqueue/dequeue pairs from many goroutines.
func TestMSQueueTailLagRecovery(t *testing.T) {
	const n, per = 10, 500
	q := NewMSQueue[uint64](n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				q.Enqueue(id, 1)
				q.Dequeue(id)
			}
		}(i)
	}
	wg.Wait()
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue not empty after balanced pairs")
	}
}
