package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs collided %d/100 times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seed RNG stuck at 0")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnQuickBounds(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnCoversRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		seen[r.Intn(8)] = true
	}
	for v := 0; v < 8; v++ {
		if !seen[v] {
			t.Fatalf("Intn(8) never produced %d in 2000 draws", v)
		}
	}
}

func TestRandomWorkZeroAndNegative(t *testing.T) {
	r := NewRNG(1)
	r.RandomWork(0)  // must not panic
	r.RandomWork(-5) // must not panic
	r.RandomWork(32) // smoke
}
