package queue

import (
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/pad"
)

// MSQueue is the Michael–Scott lock-free queue (PODC 1996), the lock-free
// baseline of Figure 3 (right). Garbage collection removes the ABA hazard
// the original handled with counted pointers. Bounded exponential backoff is
// applied on CAS failure, matching the paper's tuned baselines.
type MSQueue[V any] struct {
	head atomic.Pointer[qnode[V]]
	_    pad.CacheLinePad
	tail atomic.Pointer[qnode[V]]
	_pad pad.CacheLinePad
	bo   []pad.Slot[*backoff.Exp]
}

// MSQueueBackoff bounds the exponential backoff window in delay-loop
// iterations.
const MSQueueBackoff = 1024

// NewMSQueue returns an empty Michael–Scott queue for n processes.
func NewMSQueue[V any](n int) *MSQueue[V] {
	q := &MSQueue[V]{bo: make([]pad.Slot[*backoff.Exp], n)}
	sentinel := &qnode[V]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	for i := range q.bo {
		q.bo[i].Value = backoff.NewExp(1, MSQueueBackoff)
	}
	return q
}

// Enqueue appends v.
func (q *MSQueue[V]) Enqueue(id int, v V) {
	bo := q.bo[id].Value
	n := &qnode[V]{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n) // swing tail (may fail benignly)
			bo.Reset()
			return
		}
		bo.Wait()
	}
}

// Dequeue removes the front value; ok is false if empty.
func (q *MSQueue[V]) Dequeue(id int) (V, bool) {
	bo := q.bo[id].Value
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				var zero V
				bo.Reset()
				return zero, false
			}
			q.tail.CompareAndSwap(tail, next) // help a lagging tail
			continue
		}
		v := next.v
		if q.head.CompareAndSwap(head, next) {
			bo.Reset()
			return v, true
		}
		bo.Wait()
	}
}

// Name implements Interface.
func (q *MSQueue[V]) Name() string { return "MS-lock-free" }
