package check

import (
	"fmt"
	"strconv"
)

// Operation names understood by the built-in specs.
const (
	OpPush    = "push" // stack: Arg = value
	OpPop     = "pop"  // stack: RetOK=false means empty, else Ret = value
	OpEnqueue = "enq"  // queue: Arg = value
	OpDequeue = "deq"  // queue: RetOK=false means empty, else Ret = value
	OpAdd     = "add"  // counter: Arg = delta, Ret = previous value
	OpMul     = "mul"  // Fetch&Multiply: Arg = factor, Ret = previous value
	OpRead    = "read" // register: Ret = value
	OpWrite   = "write"
)

// seqState is an immutable slice-backed sequence state shared by the stack
// and queue specs.
type seqState struct {
	items []uint64
}

// seqKey builds dedup keys with strconv.AppendUint rather than fmt: key
// construction dominates the forward engine's runtime on long histories
// (every frontier state is keyed at every step), and Fprintf is ~10x the
// cost of AppendUint per element.
func seqKey(s any) string {
	st := s.(*seqState)
	b := make([]byte, 0, 8*len(st.items))
	for _, v := range st.items {
		b = strconv.AppendUint(b, v, 10)
		b = append(b, ',')
	}
	return string(b)
}

// StackSpec is the sequential LIFO specification.
func StackSpec() Spec {
	return Spec{
		Init: func() any { return &seqState{} },
		Step: func(state any, op Operation) (any, bool) {
			st := state.(*seqState)
			switch op.Op {
			case OpPush:
				ns := append(append([]uint64(nil), st.items...), op.Arg)
				return &seqState{items: ns}, true
			case OpPop:
				if len(st.items) == 0 {
					return st, !op.RetOK
				}
				top := st.items[len(st.items)-1]
				if !op.RetOK || op.Ret != top {
					return st, false
				}
				ns := append([]uint64(nil), st.items[:len(st.items)-1]...)
				return &seqState{items: ns}, true
			}
			return st, false
		},
		Key: seqKey,
	}
}

// QueueSpec is the sequential FIFO specification.
func QueueSpec() Spec {
	return Spec{
		Init: func() any { return &seqState{} },
		Step: func(state any, op Operation) (any, bool) {
			st := state.(*seqState)
			switch op.Op {
			case OpEnqueue:
				ns := append(append([]uint64(nil), st.items...), op.Arg)
				return &seqState{items: ns}, true
			case OpDequeue:
				if len(st.items) == 0 {
					return st, !op.RetOK
				}
				front := st.items[0]
				if !op.RetOK || op.Ret != front {
					return st, false
				}
				ns := append([]uint64(nil), st.items[1:]...)
				return &seqState{items: ns}, true
			}
			return st, false
		},
		Key: seqKey,
	}
}

// CounterSpec is a fetch-and-add counter: add returns the previous value.
func CounterSpec(init uint64) Spec {
	return Spec{
		Init: func() any { return init },
		Step: func(state any, op Operation) (any, bool) {
			v := state.(uint64)
			switch op.Op {
			case OpAdd:
				return v + op.Arg, op.Ret == v
			case OpRead:
				return v, op.Ret == v
			}
			return v, false
		},
		Key: func(state any) string { return fmt.Sprintf("%d", state.(uint64)) },
	}
}

// FMulSpec is the paper's Fetch&Multiply object: mul returns the previous
// value and multiplies the state by the argument.
func FMulSpec(init uint64) Spec {
	return Spec{
		Init: func() any { return init },
		Step: func(state any, op Operation) (any, bool) {
			v := state.(uint64)
			switch op.Op {
			case OpMul:
				return v * op.Arg, op.Ret == v
			case OpRead:
				return v, op.Ret == v
			}
			return v, false
		},
		Key: func(state any) string { return fmt.Sprintf("%d", state.(uint64)) },
	}
}

// RegisterSpec is a read/write register.
func RegisterSpec(init uint64) Spec {
	return Spec{
		Init: func() any { return init },
		Step: func(state any, op Operation) (any, bool) {
			v := state.(uint64)
			switch op.Op {
			case OpWrite:
				return op.Arg, true
			case OpRead:
				return v, op.Ret == v
			}
			return v, false
		},
		Key: func(state any) string { return fmt.Sprintf("%d", state.(uint64)) },
	}
}

// Set operation names.
const (
	OpInsert   = "ins" // set: Arg = key; RetOK = newly inserted
	OpRemove   = "rem" // set: Arg = key; RetOK = was present
	OpContains = "has" // set: Arg = key; RetOK = present
)

// SetSpec is a sequential set of uint64 keys.
func SetSpec() Spec {
	return Spec{
		Init: func() any { return &seqState{} }, // sorted keys
		Step: func(state any, op Operation) (any, bool) {
			st := state.(*seqState)
			idx := -1
			for i, k := range st.items {
				if k == op.Arg {
					idx = i
					break
				}
			}
			present := idx >= 0
			switch op.Op {
			case OpContains:
				return st, op.RetOK == present
			case OpInsert:
				if present {
					return st, !op.RetOK
				}
				if !op.RetOK {
					return st, false
				}
				ns := append(append([]uint64(nil), st.items...), op.Arg)
				sortKeys(ns)
				return &seqState{items: ns}, true
			case OpRemove:
				if !present {
					return st, !op.RetOK
				}
				if !op.RetOK {
					return st, false
				}
				ns := append([]uint64(nil), st.items[:idx]...)
				ns = append(ns, st.items[idx+1:]...)
				return &seqState{items: ns}, true
			}
			return st, false
		},
		Key: seqKey,
	}
}

// Map operation names. All three pack the key into the high half of Arg so
// one partition function covers them (values are the low half; get/del
// leave it zero).
const (
	OpMapPut = "mput" // Arg = key<<32 | value; Ret = previous value; RetOK = existed
	OpMapDel = "mdel" // Arg = key<<32; Ret = previous value; RetOK = existed
	OpMapGet = "mget" // Arg = key<<32; Ret = value; RetOK = found
)

// MapPartOf partitions map operations by key, for use with
// LinearizablePartitioned and MapKeySpec: operations on independent keys of
// a hash map never interact, so each key's subhistory is checked against
// the single-binding spec — this is exactly the consistency a sharded map
// guarantees (per-key linearizability, no cross-key atomicity).
func MapPartOf(op Operation) string { return fmt.Sprintf("%d", op.Arg>>32) }

// MapKeySpec is the sequential specification of ONE map key: a binding
// that put overwrites (returning the previous value), del clears, and get
// reads. State packs presence into bit 63 (values must fit 32 bits, which
// the OpMap encodings already require).
func MapKeySpec() Spec {
	const present = uint64(1) << 63
	return Spec{
		Init: func() any { return uint64(0) },
		Step: func(state any, op Operation) (any, bool) {
			s := state.(uint64)
			exists := s&present != 0
			cur := s &^ present
			prevOK := op.RetOK == exists && (!exists || op.Ret == cur)
			switch op.Op {
			case OpMapPut:
				if !prevOK {
					return s, false
				}
				return present | (op.Arg & 0xffffffff), true
			case OpMapDel:
				if !prevOK {
					return s, false
				}
				return uint64(0), true
			case OpMapGet:
				return s, prevOK
			}
			return s, false
		},
		Key: func(state any) string { return fmt.Sprintf("%d", state.(uint64)) },
	}
}

// Blob-map operation names — the tiered byte-value map (internal/simmap's
// Tiered). Stored byte values are recorded as 32-bit TOKENS (a fingerprint
// of the bytes, chosen by the recording driver). Unlike the plain map ops,
// put and del report existence only: Tiered.Put deliberately returns no
// previous value, because a tier-move race can make a lost large-tier write
// linearizable only when no operation has to report it as a predecessor
// (see internal/simmap/tiered.go). The spec therefore validates existence
// on put/del and the value token on get.
const (
	OpBlobPut = "bput" // Arg = key<<32 | token; RetOK = existed (Ret unused)
	OpBlobDel = "bdel" // Arg = key<<32; RetOK = existed (Ret unused)
	OpBlobGet = "bget" // Arg = key<<32; Ret = token; RetOK = found
)

// BlobKeySpec is the sequential specification of ONE blob-map key: a
// binding that put overwrites, del clears, and get reads by token. State
// packs presence into bit 63 like MapKeySpec.
func BlobKeySpec() Spec {
	const present = uint64(1) << 63
	return Spec{
		Init: func() any { return uint64(0) },
		Step: func(state any, op Operation) (any, bool) {
			s := state.(uint64)
			exists := s&present != 0
			cur := s &^ present
			switch op.Op {
			case OpBlobPut:
				if op.RetOK != exists {
					return s, false
				}
				return present | (op.Arg & 0xffffffff), true
			case OpBlobDel:
				if op.RetOK != exists {
					return s, false
				}
				return uint64(0), true
			case OpBlobGet:
				return s, op.RetOK == exists && (!exists || op.Ret == cur)
			}
			return s, false
		},
		Key: func(state any) string { return fmt.Sprintf("%d", state.(uint64)) },
	}
}

// Append-log operation names — the sequential object of the ingest spool
// (internal/spool): a log of payload values at globally contiguous offsets
// with a retention low watermark that only moves forward. Payloads must fit
// 32 bits (lget packs offset and payload like the map encodings).
const (
	OpLogAppend = "lapp" // Arg = payload; Ret = assigned offset
	OpLogRead   = "lget" // Arg = cursor; Ret = offset<<32 | payload of the
	// first retained event at offset ≥ max(cursor, lwm); RetOK=false means
	// the cursor is past the end (caught up)
	OpLogTrim = "ltrim" // Arg = requested cutoff offset; Ret = resulting
	// low watermark. Trims are segment-granular, so the spec admits any
	// watermark in [current, clamp(Arg)] — the return value resolves the
	// nondeterminism and becomes the new watermark.
)

// logState is the immutable append-log state: payloads of the retained
// offsets [lwm, lwm+len(pays)).
type logState struct {
	lwm  uint64
	pays []uint64
}

// LogSpec is the sequential specification of the ingest spool's append log.
func LogSpec() Spec {
	return Spec{
		Init: func() any { return &logState{} },
		Step: func(state any, op Operation) (any, bool) {
			st := state.(*logState)
			next := st.lwm + uint64(len(st.pays))
			switch op.Op {
			case OpLogAppend:
				if !op.RetOK || op.Ret != next {
					return st, false
				}
				ns := append(append([]uint64(nil), st.pays...), op.Arg)
				return &logState{lwm: st.lwm, pays: ns}, true
			case OpLogRead:
				cur := op.Arg
				if cur < st.lwm {
					cur = st.lwm
				}
				if cur >= next {
					return st, !op.RetOK // nothing at or past the cursor
				}
				return st, op.RetOK && op.Ret == cur<<32|st.pays[cur-st.lwm]
			case OpLogTrim:
				hi := op.Arg
				if hi < st.lwm {
					hi = st.lwm
				}
				if hi > next {
					hi = next
				}
				if !op.RetOK || op.Ret < st.lwm || op.Ret > hi {
					return st, false
				}
				if op.Ret == st.lwm {
					return st, true
				}
				ns := append([]uint64(nil), st.pays[op.Ret-st.lwm:]...)
				return &logState{lwm: op.Ret, pays: ns}, true
			}
			return st, false
		},
		Key: func(state any) string {
			st := state.(*logState)
			b := make([]byte, 0, 12+8*len(st.pays))
			b = strconv.AppendUint(b, st.lwm, 10)
			b = append(b, '|')
			for _, v := range st.pays {
				b = strconv.AppendUint(b, v, 10)
				b = append(b, ',')
			}
			return string(b)
		},
	}
}

// sortKeys is a tiny insertion sort (sets in checked histories are small).
func sortKeys(ks []uint64) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}
