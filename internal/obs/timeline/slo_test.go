package timeline

import (
	"strings"
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(` ops>=12000, p99<=2ms , casfail<=0.25, stalls<=3@1m, map{shard="0"}:ops>=100@30s `)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("want 5 rules, got %d", len(rules))
	}
	want := []Rule{
		{Kind: RuleOpsFloor, Threshold: 12000, Window: 10 * time.Second},
		{Kind: RuleP99Ceiling, Threshold: float64(2 * time.Millisecond), Window: 10 * time.Second},
		{Kind: RuleCASFailCeiling, Threshold: 0.25, Window: 10 * time.Second},
		{Kind: RuleStallRate, Threshold: 3, Window: time.Minute},
		{Kind: RuleOpsFloor, Threshold: 100, Window: 30 * time.Second, Series: `map{shard="0"}`},
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	// Round-trip: Name() output parses back to the same rule.
	for _, r := range rules {
		back, err := ParseRules(r.Name())
		if err != nil || len(back) != 1 || back[0] != r {
			t.Fatalf("Name round-trip of %+v -> %q gave %+v, %v", r, r.Name(), back, err)
		}
	}
	if r, err := ParseRules(""); err != nil || r != nil {
		t.Fatalf("empty spec should be nil rules: %v %v", r, err)
	}
	for _, bad := range []string{
		"ops<=5",       // floor direction inverted
		"p99>=2ms",     // ceiling direction inverted
		"p99<=fast",    // bad duration
		"latency<=2ms", // unknown kind
		"ops",          // no comparison
		"ops>=x",       // bad number
		"ops>=5@soon",  // bad window
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted a bad rule", bad)
		}
	}
}

// TestSLOBreachEpisode drives a throughput-floor rule through
// healthy → starved → healthy and checks the once-per-episode contract:
// exactly one breach callback and one KindBreach annotation when entering
// violation, no repeats while it persists, exactly one clear on recovery.
func TestSLOBreachEpisode(t *testing.T) {
	reg, ops, _ := testRegistry()
	clk := &fakeClock{now: time.Now().UnixNano()}
	var breaches []Breach
	rules, err := ParseRules("ops>=50@3s")
	if err != nil {
		t.Fatal(err)
	}
	tl := New(reg, Config{
		Interval: time.Second,
		Now:      clk.Now,
		Rules:    rules,
		OnBreach: func(b Breach) { breaches = append(breaches, b) },
	})
	tick := func(delta uint64) {
		ops.Add(0, delta)
		tl.Scrape()
		clk.Advance(time.Second)
	}
	for i := 0; i < 5; i++ {
		tick(100) // 100 ops/s: healthy
	}
	if len(breaches) != 0 {
		t.Fatalf("breach fired while healthy: %+v", breaches)
	}
	for i := 0; i < 5; i++ {
		tick(0) // starved: the 3s window drains below 50 ops/s
	}
	if len(breaches) != 1 || breaches[0].Cleared {
		t.Fatalf("want exactly 1 breach, got %+v", breaches)
	}
	if breaches[0].Value >= 50 {
		t.Fatalf("breach value %v not below threshold", breaches[0].Value)
	}
	st := tl.Breaches(clk.Now())
	if !st[0].Breached || !st[0].Evaluated {
		t.Fatalf("breach state not reflected: %+v", st)
	}
	for i := 0; i < 5; i++ {
		tick(100) // recovered
	}
	if len(breaches) != 2 || !breaches[1].Cleared {
		t.Fatalf("want breach then clear, got %+v", breaches)
	}
	if breaches[1].SinceNs <= 0 {
		t.Fatalf("clear carries no violation duration: %+v", breaches[1])
	}
	if tl.Breaches(clk.Now())[0].Breached {
		t.Fatal("state still breached after recovery")
	}

	// Both transitions landed in the log as annotations, in order.
	resp := tl.Query(0, 0, nil)
	var kinds []string
	for _, a := range resp.Annotations {
		kinds = append(kinds, a.Kind)
		if a.Ref != rules[0].Name() {
			t.Fatalf("annotation ref %q, want %q", a.Ref, rules[0].Name())
		}
	}
	if strings.Join(kinds, ",") != "slo_breach,slo_clear" {
		t.Fatalf("annotations = %v, want breach then clear", kinds)
	}
}

// TestSLOStallRate checks the watchdog-episode rule: stalls recorded via
// RecordStall count against the windowed ceiling.
func TestSLOStallRate(t *testing.T) {
	reg, _, _ := testRegistry()
	clk := &fakeClock{now: time.Now().UnixNano()}
	var breaches []Breach
	rules, _ := ParseRules("stalls<=2@1m")
	tl := New(reg, Config{
		Interval: time.Second,
		Now:      clk.Now,
		Rules:    rules,
		OnBreach: func(b Breach) { breaches = append(breaches, b) },
	})
	tl.Scrape()
	for i := 0; i < 3; i++ {
		tl.RecordStall(i, 1000)
	}
	clk.Advance(time.Second)
	tl.Scrape()
	if len(breaches) != 1 || breaches[0].Rule.Kind != RuleStallRate || breaches[0].Value != 3 {
		t.Fatalf("stall rule did not breach: %+v", breaches)
	}
	// Stalls age out of the window; the rule clears.
	clk.Advance(2 * time.Minute)
	tl.Scrape()
	if len(breaches) != 2 || !breaches[1].Cleared {
		t.Fatalf("stall rule did not clear: %+v", breaches)
	}
}

// TestSLOScopedSeries checks a rule scoped to one labeled series ignores
// the aggregate's traffic.
func TestSLOScopedSeries(t *testing.T) {
	reg, ops, _ := testRegistry()
	shard0 := reg.LookupCounters(`map_ops_total{shard="0"}`)[0]
	clk := &fakeClock{now: time.Now().UnixNano()}
	var breaches []Breach
	rules, _ := ParseRules(`map{shard="0"}:ops>=10@2s`)
	tl := New(reg, Config{
		Interval: time.Second,
		Now:      clk.Now,
		Rules:    rules,
		OnBreach: func(b Breach) { breaches = append(breaches, b) },
	})
	for i := 0; i < 4; i++ {
		ops.Add(0, 1000) // aggregate busy, shard 0 idle
		tl.Scrape()
		clk.Advance(time.Second)
	}
	if len(breaches) != 1 {
		t.Fatalf("scoped rule ignored its series: %+v", breaches)
	}
	for i := 0; i < 4; i++ {
		shard0.Add(0, 100)
		tl.Scrape()
		clk.Advance(time.Second)
	}
	if len(breaches) != 2 || !breaches[1].Cleared {
		t.Fatalf("scoped rule did not clear: %+v", breaches)
	}
}
