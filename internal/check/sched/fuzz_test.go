package sched

import (
	"testing"

	v2 "repro/internal/check/v2"
)

// FuzzSchedule lets the fuzzer steer the deterministic scheduler: each
// input is a (seed, preemption budget) pair, the SimQueue scenario runs
// under that schedule, and the recorded history must pass the queue axiom
// checker. A failure is reported with its minimized, replayable config —
// paste the sched.Config literal into a test to reproduce the exact
// interleaving.
func FuzzSchedule(f *testing.F) {
	f.Add(uint64(1), int8(-1))
	f.Add(uint64(42), int8(3))
	f.Add(uint64(0xdeadbeef), int8(0))
	f.Add(uint64(0x5eed), int8(1))
	f.Fuzz(func(t *testing.T, seed uint64, budget int8) {
		cfg := Config{Seed: seed, Threads: 3, Preemptions: int(budget)}
		hist := runQueueScenario(cfg, 3)
		if err := v2.ForwardQueue(hist); err != nil {
			min := Minimize(cfg, func(c Config) bool {
				return v2.Rejected(v2.ForwardQueue(runQueueScenario(c, 3)))
			})
			t.Fatalf("non-linearizable history under %v\nminimized replay: %v\nverdict: %v\nhistory:\n%s",
				cfg, min, err, v2.FormatHistory(hist))
		}
	})
}
