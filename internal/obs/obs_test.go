package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter(4)
	c.Inc(0)
	c.Add(0, 2)
	c.Inc(3)
	if got := c.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	if c.Value(0) != 3 || c.Value(3) != 1 || c.Value(1) != 0 {
		t.Fatalf("slot values wrong: %d %d %d", c.Value(0), c.Value(3), c.Value(1))
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestCounterRoundsUpSlots(t *testing.T) {
	if NewCounter(0).Slots() != 1 || NewHistogram(-3).Slots() != 1 {
		t.Fatal("slot count not rounded up to 1")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *SimRecorder
	var reg *Registry
	c.Inc(0)
	c.Add(5, 7)
	_ = c.Total()
	_ = c.Value(9)
	c.Reset()
	g.Add(1)
	g.Set(2)
	_ = g.Value()
	h.Record(0, 1)
	_ = h.Snapshot()
	h.Reset()
	t0 := r.Start(0)
	if t0 != 0 {
		t.Fatal("nil recorder touched the clock")
	}
	r.OpPublished(0, t0, 1)
	r.OpDone(0, t0)
	r.CombineObserved(0, 1)
	r.SetSampleEvery(8)
	if reg.Counter("x", 1) != nil || reg.Gauge("x") != nil || reg.Histogram("x", 1) != nil {
		t.Fatal("nil registry returned a metric")
	}
	_ = reg.Snapshot()
	_ = reg.Delta()
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(2)
	h.Record(0, 0) // bucket 0
	h.Record(0, 1) // bucket 1: [1,1]
	h.Record(1, 5) // bucket 3: [4,7]
	h.Record(1, 1<<40)
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 6+1<<40 || s.Max != 1<<40 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[3] != 1 || s.Buckets[41] != 1 {
		t.Fatalf("buckets wrong: %v", s.Buckets)
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(3) != 7 {
		t.Fatal("small bucket bounds wrong")
	}
	if BucketUpper(64) != math.MaxUint64 {
		t.Fatal("top bucket bound wrong")
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(1)
	// 100 samples at ~1000 (bucket upper 1023), 1 at ~1e6.
	for i := 0; i < 100; i++ {
		h.Record(0, 1000)
	}
	h.Record(0, 1_000_000)
	s := h.Snapshot()
	if q := s.Quantile(0.50); q != 1023 {
		t.Fatalf("p50 = %d, want 1023", q)
	}
	// p99 rank = ceil(0.99*101) = 100 → still the 1000s bucket.
	if q := s.Quantile(0.99); q != 1023 {
		t.Fatalf("p99 = %d, want 1023", q)
	}
	// p100 lands in the outlier's bucket, clamped to the observed max.
	if q := s.Quantile(1.0); q != 1_000_000 {
		t.Fatalf("p100 = %d, want 1000000", q)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not 0")
	}
}

func TestSnapshotMergeSub(t *testing.T) {
	h := NewHistogram(1)
	h.Record(0, 10)
	h.Record(0, 20)
	before := h.Snapshot()
	h.Record(0, 30)
	after := h.Snapshot()
	after.Sub(before)
	if after.Count != 1 || after.Sum != 30 {
		t.Fatalf("delta: %+v", after)
	}
	m := before
	m.Merge(after)
	if m.Count != 3 || m.Sum != 60 || m.Max != 30 {
		t.Fatalf("merge: %+v", m)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("ops", 4)
	c2 := reg.Counter("ops", 99) // n ignored: first registration wins
	if c1 != c2 || c1.Slots() != 4 {
		t.Fatal("counter not deduplicated by name")
	}
	if reg.Histogram("lat", 2) != reg.Histogram("lat", 2) {
		t.Fatal("histogram not deduplicated")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Fatal("gauge not deduplicated")
	}
}

func TestSimRecorderSampling(t *testing.T) {
	reg := NewRegistry()
	r := NewSimRecorder(reg, "x", 1)
	r.SetSampleEvery(4)
	for k := 0; k < 16; k++ {
		t0 := r.Start(0)
		if sampled := t0 != 0; sampled != (k%4 == 0) {
			t.Fatalf("op %d sampled=%v", k, sampled)
		}
		r.OpPublished(0, t0, 2)
	}
	s := reg.Snapshot()
	if s.Histograms["x_op_latency_ns"].Count != 4 || s.Histograms["x_combine_degree"].Count != 4 {
		t.Fatalf("sampled counts wrong: %+v", s.Histograms)
	}

	// SetSampleEvery(1) records every operation.
	r2 := NewSimRecorder(reg, "y", 1)
	r2.SetSampleEvery(1)
	for k := 0; k < 5; k++ {
		r2.OpDone(0, r2.Start(0))
	}
	if got := reg.Snapshot().Histograms["y_op_latency_ns"].Count; got != 5 {
		t.Fatalf("unsampled latency count = %d, want 5", got)
	}

	// CombineObserved follows the enclosing operation's sampling decision and
	// may fire several times per operation (core.Sim publishes repeatedly).
	r3 := NewSimRecorder(reg, "z", 1)
	r3.SetSampleEvery(2)
	for k := 0; k < 6; k++ {
		r3.Start(0)
		r3.CombineObserved(0, 1)
		r3.CombineObserved(0, 2)
	}
	if got := reg.Snapshot().Histograms["z_combine_degree"].Count; got != 6 {
		t.Fatalf("combine observations = %d, want 6 (2 per sampled op)", got)
	}
}

func TestRegistryAttach(t *testing.T) {
	reg := NewRegistry()
	a, b := NewCounter(2), NewCounter(2)
	reg.AttachCounter("ops", a)
	reg.AttachCounter("ops", b)
	a.Add(0, 3)
	b.Add(1, 4)
	if got := reg.Snapshot().Counters["ops"]; got != 7 {
		t.Fatalf("attached counters sum = %d, want 7", got)
	}
	h1, h2 := NewHistogram(1), NewHistogram(1)
	reg.AttachHistogram("lat", h1)
	reg.AttachHistogram("lat", h2)
	h1.Record(0, 10)
	h2.Record(0, 1000)
	if s := reg.Snapshot().Histograms["lat"]; s.Count != 2 || s.Max != 1000 {
		t.Fatalf("attached histograms merge = %+v", s)
	}
	// Get-or-create under an attached name returns the first attachment.
	if reg.Counter("ops", 2) != a {
		t.Fatal("Counter did not return the first attached counter")
	}
	var nilReg *Registry
	nilReg.AttachCounter("x", a)
	nilReg.AttachHistogram("x", h1)
}

func TestRegistrySnapshotAndDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops", 2)
	g := reg.Gauge("conns")
	h := reg.Histogram("lat", 2)
	c.Add(0, 5)
	g.Set(3)
	h.Record(1, 100)

	s := reg.Snapshot()
	if s.Counters["ops"] != 5 || s.Gauges["conns"] != 3 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot: %+v", s)
	}

	d1 := reg.Delta()
	if d1.Counters["ops"] != 5 || d1.Histograms["lat"].Count != 1 {
		t.Fatalf("first delta should cover everything: %+v", d1)
	}
	c.Add(1, 2)
	d2 := reg.Delta()
	if d2.Counters["ops"] != 2 || d2.Histograms["lat"].Count != 0 {
		t.Fatalf("second delta: %+v", d2)
	}
	// Gauges stay absolute in deltas.
	if d2.Gauges["conns"] != 3 {
		t.Fatalf("gauge in delta = %d, want absolute 3", d2.Gauges["conns"])
	}
}

// TestConcurrentWritersAndReaders is the -race exercise: one writer per
// slot, concurrent snapshot readers observing monotone counts.
func TestConcurrentWritersAndReaders(t *testing.T) {
	const n, perThread = 8, 5000
	reg := NewRegistry()
	c := reg.Counter("ops", n)
	h := reg.Histogram("lat", n)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: totals must never decrease.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastC, lastH uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := reg.Snapshot()
				if s.Counters["ops"] < lastC {
					t.Errorf("counter went backwards: %d -> %d", lastC, s.Counters["ops"])
					return
				}
				lastC = s.Counters["ops"]
				if s.Histograms["lat"].Count < lastH {
					t.Errorf("histogram count went backwards")
					return
				}
				lastH = s.Histograms["lat"].Count
			}
		}()
	}
	var writers sync.WaitGroup
	for i := 0; i < n; i++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			for k := 0; k < perThread; k++ {
				c.Inc(id)
				h.Record(id, uint64(k%4096))
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if got := c.Total(); got != n*perThread {
		t.Fatalf("counter total = %d, want %d", got, n*perThread)
	}
	if got := h.Snapshot().Count; got != n*perThread {
		t.Fatalf("histogram count = %d, want %d", got, n*perThread)
	}
}
