package lsim

// Mem is the memory interface an operation uses to access the shared
// object (Algorithm 8 lines 21–36). Reads and writes go through a private
// directory (the paper's D) so a helper's speculative updates stay local
// until the write-back phase; allocations go through the round's shared
// new-variable list so every helper of the round agrees on the identity of
// freshly allocated items.
//
// The directory is a per-thread reusable slice, reset between rounds:
// typical write sets are a handful of items, so a linear scan beats any map
// and keeps the round allocation-free. Past dirScanMax entries a (reused)
// map index takes over, so pathological w stays O(1) per access.
type Mem[V, A, R any] struct {
	l    *LSim[V, A, R]
	id   int // helper's process id (hazard slot + instrumentation)
	seq  uint64
	ents []dirEnt[V]
	idx  map[*Item[V]]int // nil while len(ents) <= dirScanMax
	midx map[*Item[V]]int // the retained map, cleared and re-armed on demand
	ltop *newVar          // cursor into the round's new-variable list
	pvar *newVar          // preallocated node for the next Alloc attempt
}

// dirEnt is one directory record (struct DirectoryNode): the item's locally
// current value, and whether the round changed it (only dirty entries are
// written back).
type dirEnt[V any] struct {
	it    *Item[V]
	val   V
	dirty bool
}

// dirScanMax is the directory size beyond which lookups switch from a
// linear scan to the retained map index.
const dirScanMax = 16

// reset re-arms the directory for a new round. Entries keep their backing
// storage (a bounded scratch working set, like the recycling rings).
func (m *Mem[V, A, R]) reset(seq uint64, ltop *newVar) {
	m.seq = seq
	m.ents = m.ents[:0]
	if m.idx != nil {
		clear(m.midx)
		m.idx = nil
	}
	m.ltop = ltop
}

// lookup returns the directory index of it, or -1.
func (m *Mem[V, A, R]) lookup(it *Item[V]) int {
	if m.idx != nil {
		if j, ok := m.idx[it]; ok {
			return j
		}
		return -1
	}
	for j := range m.ents {
		if m.ents[j].it == it {
			return j
		}
	}
	return -1
}

// insert appends a directory entry, promoting to the map index past
// dirScanMax.
func (m *Mem[V, A, R]) insert(it *Item[V], v V, dirty bool) int {
	m.ents = append(m.ents, dirEnt[V]{it: it, val: v, dirty: dirty})
	j := len(m.ents) - 1
	switch {
	case m.idx != nil:
		m.idx[it] = j
	case len(m.ents) > dirScanMax:
		if m.midx == nil {
			m.midx = make(map[*Item[V]]int, 4*dirScanMax)
		}
		m.idx = m.midx
		for k := range m.ents {
			m.idx[m.ents[k].it] = k
		}
	}
	return j
}

// Read returns the item's value as of this round's simulation, fetching it
// from the shared record on first access (lines 28–35). It aborts the
// enclosing attempt (via panic, recovered in attempt) when the item has
// already been written by a LATER round — the state this helper simulates
// against is obsolete.
func (m *Mem[V, A, R]) Read(it *Item[V]) V {
	if j := m.lookup(it); j >= 0 { // line 31: read the local copy
		return m.ents[j].val
	}
	// line 32: protected load (the LL); the copied V is safe to keep after
	// protection moves on because bodies recycle by overwriting their slots,
	// never the memory a stored V refers to.
	body, _ := m.l.ihaz.Acquire(m.id, &it.p, 0)
	m.l.count(m.id, 1)
	var v V
	switch {
	case body.seq == m.seq:
		// A co-helper of THIS round already wrote the item; the pre-round
		// value sits in the other slot (line 33).
		v = body.val[1-body.toggle]
	case body.seq < m.seq:
		v = body.val[body.toggle] // line 34: committed value
	default:
		panic(obsoleteError{}) // line 35: goto the validation (abort)
	}
	m.insert(it, v, false)
	return v
}

// Write records v as the item's new value in the directory (line 36). The
// shared record is updated during the write-back phase. v must be treated
// as immutable from here on (helpers hand it to readers by reference).
func (m *Mem[V, A, R]) Write(it *Item[V], v V) {
	if j := m.lookup(it); j >= 0 {
		m.ents[j].val = v
		m.ents[j].dirty = true
		return
	}
	m.insert(it, v, true)
}

// Alloc returns a fresh item (lines 21–27). All helpers of the round
// allocate through the round's shared list, so the k-th allocation of the
// round yields the SAME item for every helper — their speculative writes to
// it therefore converge on one shared record. Alloc is the one Mem path
// that allocates (a genuinely new item plus its list node); the node is
// preallocated across rounds so a lost CAS race costs nothing extra.
func (m *Mem[V, A, R]) Alloc() *Item[V] {
	if m.pvar == nil { // the paper preallocates pvar before the round
		m.pvar = &newVar{item: newItem(m.l.ihaz, *new(V))}
	}
	if m.ltop.next.CompareAndSwap(nil, m.pvar) { // line 23
		m.l.count(m.id, 1)
		m.pvar = nil // consumed; lines 24–25 preallocate lazily next time
	}
	m.ltop = m.ltop.next.Load() // line 26
	m.l.count(m.id, 1)
	it := m.ltop.item.(*Item[V])
	if m.lookup(it) < 0 {
		// line 27: enter it into the directory with its initial value,
		// dirty so the item's record is materialized at write-back.
		m.insert(it, *new(V), true)
	}
	return it
}
