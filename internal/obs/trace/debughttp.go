package trace

import (
	"net/http"
	"net/http/pprof"
	rtrace "runtime/trace"
	"strconv"
	"time"
)

// RegisterDebug wires the standard debug surface shared by the repository's
// daemons (cmd/simkvd, cmd/simingestd) onto mux:
//
//	/debug/pprof/*       standard pprof endpoints
//	/debug/trace?sec=N   a runtime/trace capture of the next N seconds
//	/debug/flight        the flight-recorder snapshot, when tr is non-nil:
//	                     ?format=chrome (default; open in Perfetto) or
//	                     ?format=text, &last=N to trim to the newest N events
//	/debug/timeline      the telemetry-timeline query surface (windowed
//	                     per-series rate/latency history; see
//	                     internal/obs/timeline), when timeline is non-nil
//
// tr may be nil: the flight endpoint then answers 404 with a hint to enable
// the recorder. timeline is passed as an opaque http.Handler (the timeline
// package sits above the spool, which this package instruments — a typed
// parameter would be an import cycle); nil answers 404 with a hint.
func RegisterDebug(mux *http.ServeMux, tr *Tracer, timeline http.Handler) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", handleRuntimeTrace)
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		handleFlight(w, r, tr)
	})
	if timeline == nil {
		timeline = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "timeline disabled (start the daemon with -timeline)", http.StatusNotFound)
		})
	}
	mux.Handle("/debug/timeline", timeline)
}

// handleRuntimeTrace streams a runtime/trace capture of the next ?sec=N
// seconds (default 1, capped at 60). Only one capture can run at a time;
// concurrent requests get 503 from trace.Start.
func handleRuntimeTrace(w http.ResponseWriter, r *http.Request) {
	sec := 1
	if s := r.URL.Query().Get("sec"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, "sec must be a positive integer", http.StatusBadRequest)
			return
		}
		sec = n
	}
	if sec > 60 {
		sec = 60
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.out"`)
	if err := rtrace.Start(w); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	time.Sleep(time.Duration(sec) * time.Second)
	rtrace.Stop()
}

// handleFlight serves the flight-recorder snapshot: Chrome trace_event JSON
// by default (?format=chrome), a plain-text dump with ?format=text, trimmed
// to the newest ?last=N events.
func handleFlight(w http.ResponseWriter, r *http.Request, tr *Tracer) {
	if tr == nil {
		http.Error(w, "flight recorder disabled (start the daemon with -flight)", http.StatusNotFound)
		return
	}
	evs := tr.Snapshot()
	if s := r.URL.Query().Get("last"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		evs = Tail(evs, n)
	}
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChrome(w, evs)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteText(w, evs)
	default:
		http.Error(w, "format must be chrome or text", http.StatusBadRequest)
	}
}
