// Command simkvd serves the wait-free key-value store over TCP — a
// demonstration that the Sim universal construction's data structures
// compose into a realistic service: no operation ever takes a lock, so one
// stalled client cannot block another.
//
//	simkvd -addr 127.0.0.1:7070 -clients 64 -stripes 16 -metrics-addr 127.0.0.1:9090
//
// Talk to it with netcat:
//
//	$ printf 'PUT a 1\nGET a\nLEN\nQUIT\n' | nc 127.0.0.1 7070
//	OK NIL
//	VAL 1
//	LEN 1
//	BYE
//
// With -metrics-addr set, the wait-free observability plane (internal/obs)
// is exported live at /metrics: Prometheus text format by default, JSON with
// ?format=json — op counts per command, publish CAS outcomes, the
// combining-degree histogram, p50/p99 operation latency, and the open
// connection gauge.
//
//	$ curl -s http://127.0.0.1:9090/metrics?format=json | head
//
// The same listener carries the debug surface:
//
//	/debug/pprof/*       standard pprof endpoints; samples are labeled with
//	                     pid (map process id) and object, so a CPU profile
//	                     attributes combiner time to the announcing slot
//	/debug/trace?sec=N   a runtime/trace capture of the next N seconds
//	/debug/flight        the flight-recorder snapshot (-flight enables it):
//	                     ?format=chrome (default; open in Perfetto) or
//	                     ?format=text, &last=N to trim to the newest N events
//	/debug/timeline      the telemetry timeline (-timeline enables it, on by
//	                     default at 1s): windowed per-series rate/latency
//	                     history ?window=60s&series=map,map{shard="0"} —
//	                     watch it live with cmd/simstat
//
// -watchdog BUDGET additionally starts a progress watchdog that reports (to
// stderr) any client slot whose announced map operation has not committed
// within BUDGET system-wide committed rounds — the wait-freedom bound made
// observable. It implies -flight. Watchdog stalls also land in the timeline
// as annotations, where -slo RULES (e.g. "ops>=10000,p99<=2ms,casfail<=0.25,
// stalls<=3@1m") evaluates SLO rules against every scrape and escalates
// breach/clear transitions through the same stderr path, once per episode.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/kvserver"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	obstrace "repro/internal/obs/trace"
)

// daemon is a running simkvd: the KV server plus the optional metrics
// listener and progress watchdog. Split from main so tests boot and tear
// down real instances.
type daemon struct {
	srv       *kvserver.Server
	addr      string
	metricsLn net.Listener
	metricsWG chan struct{}
	watchdog  *obstrace.Watchdog
	timeline  *timeline.Timeline
}

// options carries the observability knobs from flags to start.
type options struct {
	flight       int // flight-recorder ring capacity; 0 disables
	flightSample int // record 1 in N operations
	watchdog     int // stall budget in committed rounds; 0 disables
	shards       int // sharded store; <=1 keeps the single striped map
	pipeline     int // pipelined protocol batch depth; <=1 disables
	largeThresh  int // BPUT/BGET/BDEL tier threshold in bytes; 0 disables the blob store
	timeline     time.Duration // telemetry-timeline scrape interval; 0 disables
	slo          string        // SLO rule spec evaluated over the timeline
}

// start boots the KV server on addr and, when metricsAddr is non-empty, the
// /metrics + /debug HTTP surface on metricsAddr.
func start(addr, metricsAddr string, clients, stripes int, opt options) (*daemon, error) {
	kvOpts := []kvserver.Option{
		kvserver.WithShards(opt.shards), kvserver.WithPipeline(opt.pipeline)}
	if opt.largeThresh > 0 {
		kvOpts = append(kvOpts, kvserver.WithLargeValues(opt.largeThresh))
	}
	srv := kvserver.New(clients, stripes, kvOpts...)
	if opt.watchdog > 0 && opt.flight == 0 {
		opt.flight = obstrace.DefaultCapacity // watchdog needs the tracer's progress counters
	}
	if opt.flight > 0 {
		srv.EnableFlightRecorder(opt.flight, opt.flightSample)
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, err
	}
	d := &daemon{srv: srv, addr: bound}
	if opt.timeline > 0 {
		rules, err := timeline.ParseRules(opt.slo)
		if err != nil {
			srv.Close()
			return nil, err
		}
		d.timeline = timeline.New(srv.Registry(), timeline.Config{
			Interval: opt.timeline,
			Rules:    rules,
			OnBreach: func(b timeline.Breach) {
				if b.Cleared {
					fmt.Fprintf(os.Stderr, "simkvd: slo: %s recovered (value %.4g, violated for %s)\n",
						b.Rule.Name(), b.Value, time.Duration(b.SinceNs))
					return
				}
				fmt.Fprintf(os.Stderr, "simkvd: slo: BREACH %s (value %.4g)\n", b.Rule.Name(), b.Value)
			},
		})
		d.timeline.Start()
	} else if opt.slo != "" {
		srv.Close()
		return nil, fmt.Errorf("-slo requires -timeline")
	}
	if opt.watchdog > 0 {
		tl := d.timeline
		d.watchdog = obstrace.NewWatchdog(srv.Tracer(), uint64(opt.watchdog), func(s obstrace.Stall) {
			fmt.Fprintf(os.Stderr, "simkvd: watchdog: pid %d stalled: %d announced op(s) uncommitted for %d rounds (%s)\n",
				s.Pid, s.Pending, s.Rounds, s.Since)
			if tl != nil {
				tl.RecordStall(s.Pid, s.Rounds)
			}
		})
		d.watchdog.Start(100 * time.Millisecond)
	}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			d.stopWatchdog()
			d.stopTimeline()
			srv.Close()
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(srv.Registry()))
		var tlHandler http.Handler
		if d.timeline != nil {
			tlHandler = timeline.Handler(d.timeline)
		}
		obstrace.RegisterDebug(mux, srv.Tracer(), tlHandler)
		d.metricsLn = ln
		d.metricsWG = make(chan struct{})
		go func() {
			defer close(d.metricsWG)
			_ = http.Serve(ln, mux) // returns when ln closes
		}()
	}
	return d, nil
}

// metricsAddr returns the bound metrics address, or "" if metrics are off.
func (d *daemon) metricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

func (d *daemon) stopWatchdog() {
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
}

func (d *daemon) stopTimeline() {
	if d.timeline != nil {
		d.timeline.Stop()
	}
}

// close shuts down both listeners and waits for the serve loops to drain.
func (d *daemon) close() error {
	d.stopWatchdog()
	d.stopTimeline()
	err := d.srv.Close()
	if d.metricsLn != nil {
		d.metricsLn.Close()
		<-d.metricsWG
	}
	return err
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		clients     = flag.Int("clients", 64, "max concurrent client connections")
		stripes     = flag.Int("stripes", 16, "map stripes (Sim instances)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug on this address (empty disables)")
		flight      = flag.Int("flight", 0,
			"flight-recorder events per client slot (rounded up to a power of two; 0 disables)")
		flightSample = flag.Int("flight-sample", 1,
			"with -flight, record one in N operations per slot (1 = every op)")
		watchdog = flag.Int("watchdog", 0,
			"report client slots whose announced op hasn't committed within N system-wide rounds (0 disables; implies -flight)")
		shards = flag.Int("shards", 1,
			"independent map shards (rounded up to a power of two; 1 = single striped map)")
		pipeline = flag.Int("pipeline", 1,
			"pipelined protocol batch depth: execute up to N queued requests per wakeup as batched map ops (1 = request-at-a-time)")
		largeThresh = flag.Int("large-threshold", 0,
			"enable the BPUT/BGET/BDEL byte-value store; values of at least N bytes are served by L-Sim item records instead of inline map entries (0 disables)")
		timelineEvery = flag.Duration("timeline", time.Second,
			"telemetry-timeline scrape interval; samples are queryable at /debug/timeline (0 disables)")
		slo = flag.String("slo", "",
			"SLO rules over the timeline, e.g. 'ops>=10000,p99<=2ms,casfail<=0.5,stalls<=3@1m' (requires -timeline)")
	)
	flag.Parse()

	d, err := start(*addr, *metricsAddr, *clients, *stripes,
		options{flight: *flight, flightSample: *flightSample, watchdog: *watchdog,
			shards: *shards, pipeline: *pipeline, largeThresh: *largeThresh,
			timeline: *timelineEvery, slo: *slo})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simkvd:", err)
		os.Exit(1)
	}
	fmt.Printf("simkvd listening on %s (%d client slots, %d stripes, %d shard(s), pipeline %d)\n",
		d.addr, *clients, *stripes, *shards, *pipeline)
	if *largeThresh > 0 {
		fmt.Printf("simkvd large-value tier on: values >= %d bytes served by L-Sim items (BPUT/BGET/BDEL)\n",
			*largeThresh)
	}
	if ma := d.metricsAddr(); ma != "" {
		fmt.Printf("simkvd metrics on http://%s/metrics\n", ma)
		if d.srv.Tracer() != nil {
			fmt.Printf("simkvd flight recorder on http://%s/debug/flight (pprof under /debug/pprof/)\n", ma)
		}
	}
	if d.watchdog != nil {
		fmt.Printf("simkvd progress watchdog armed: budget %d rounds\n", *watchdog)
	}
	if d.timeline != nil {
		fmt.Printf("simkvd timeline scraping every %s (%d series)\n", *timelineEvery, len(d.timeline.SeriesNames()))
		for _, r := range d.timeline.Rules() {
			fmt.Printf("simkvd slo rule armed: %s\n", r.Name())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("simkvd: shutting down")
	d.close()
}
