package spool

// View is an immutable snapshot of the log, produced by Spool.Snapshot via
// PSim.Read. Sealed segments are shared with the live state (they are
// frozen); the active segment is a private deep copy made by the read-side
// clone. A View therefore stays valid forever, costs no coordination with
// writers, and supports any number of concurrent consumers — the query
// layers of the ingest pipeline and the telemetry timeline are built
// entirely on it.
type View[E Entry] struct {
	st state[E]
}

// LowWater returns the oldest retained offset: everything below it has been
// expired by retention (or the sealed-ring bound).
func (v View[E]) LowWater() uint64 { return v.st.lwm }

// End returns the offset one past the newest entry (the next to be
// assigned). The retained range is the single interval [LowWater, End).
func (v View[E]) End() uint64 { return v.st.next }

// Len returns the number of retained entries.
func (v View[E]) Len() int { return int(v.st.next - v.st.lwm) }

// Segments returns the number of sealed segments in the ring.
func (v View[E]) Segments() int { return len(v.st.sealed) }

// SealedTotal returns the number of segments sealed since the spool was
// created (a monotone counter, unlike Segments which the ring bounds).
func (v View[E]) SealedTotal() uint64 { return v.st.sealedTotal }

// ExpiredTotal returns the number of entries dropped by retention and the
// sealed-ring bound — the retention high-watermark equals
// LowWater() == ExpiredTotal() exactly because offsets are contiguous.
func (v View[E]) ExpiredTotal() uint64 { return v.st.expiredTotal }

// Read copies up to max entries starting at offset cursor into out
// (appending; pass out[:0] to reuse a buffer) and returns the filled slice,
// the cursor to resume from, and the number of entries skipped because
// retention expired them before the consumer arrived (cursor below the low
// watermark). next is always ≥ cursor, and next - cursor == skipped +
// len(returned): a consumer that tracks its cursor observes every retained
// entry exactly once, in offset order, with gaps accounted rather than
// silent.
func (v View[E]) Read(cursor uint64, max int, out []E) (evs []E, next uint64, skipped uint64) {
	start := cursor
	if start < v.st.lwm {
		skipped = v.st.lwm - start
		start = v.st.lwm
	}
	next = start
	if max <= 0 || start >= v.st.next {
		return out, next, skipped
	}
	// Sealed segments: skip those wholly below start, then copy.
	for _, seg := range v.st.sealed {
		if seg.End() <= next {
			continue
		}
		out, next = copyFrom(out, max, seg.Base, seg.Entries, next)
		if len(out) >= max {
			return out, next, skipped
		}
	}
	if len(v.st.active.Entries) > 0 {
		out, next = copyFrom(out, max, v.st.active.Base, v.st.active.Entries, next)
	}
	return out, next, skipped
}

// copyFrom appends entries of one segment starting at offset next, stopping
// at max total entries.
func copyFrom[E Entry](out []E, max int, base uint64, entries []E, next uint64) ([]E, uint64) {
	if next > base {
		entries = entries[next-base:]
	}
	room := max - len(out)
	if room < len(entries) {
		entries = entries[:room]
	}
	out = append(out, entries...)
	return out, next + uint64(len(entries))
}
