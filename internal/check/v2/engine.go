// Package v2 is the scalable successor to the Wing–Gong search in
// internal/check: single-pass forward-simulation checkers that verify
// linearizability in time linear in the history length, so the 10k+
// operation histories produced by soak runs and batched workloads are
// checkable (the bitmask search caps at 64 operations).
//
// Three layers:
//
//   - Simulate: a generic abstraction-relation engine over any check.Spec.
//     It sweeps the history's invoke/return events in timestamp order and
//     maintains the FRONTIER of a forward simulation — every abstract
//     (state, linearized-set) configuration reachable by linearizing some
//     subset of the currently open operations. An operation's return keeps
//     only configurations that have linearized it; an empty frontier is a
//     proof of non-linearizability. Deduplication by spec.Key bounds the
//     frontier, so the sweep is O(E·F·k) for E events, frontier size F and
//     overlap width k — O(n·k) whenever the spec's states collapse (which
//     counters, registers, and per-key map bindings do).
//   - ForwardQueue: a queue-specific axiom checker (see queue.go) that
//     avoids frontier growth entirely — O(n log n) for any overlap.
//   - CheckHistory: the compositional driver (see compose.go) that splits a
//     mixed history into independent object classes and per-key partitions
//     and routes each part to the right checker, in the spirit of the
//     forward-simulation hierarchy of arXiv 2601.11646: structures with
//     fixed linearization points get deterministic single-pass checkers,
//     and composition over independent parts is sound because their
//     operations commute.
//
// Verdict conventions: nil means linearizable; an error wrapping
// ErrRejected means PROVEN non-linearizable; any other error means the
// engine could not decide (too wide, frontier blow-up, malformed input) —
// callers fall back to another engine or report the limitation.
package v2

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/check"
)

// ErrRejected is wrapped by every "history is not linearizable" verdict,
// distinguishing a rejection from an engine limitation.
var ErrRejected = errors.New("history is not linearizable")

// ErrTooWide is returned when more than 64 operations overlap at one
// instant — the frontier engine tracks open operations in one mask word.
// (The queue axiom checker has no width limit.)
var ErrTooWide = errors.New("forward engine: more than 64 operations overlap")

// ErrFrontierLimit is returned when the abstraction frontier exceeds its
// bound: the history is too concurrent for this spec's state space (e.g.
// huge overlapping batches on one sequence object). The verdict is unknown.
var ErrFrontierLimit = errors.New("forward engine: abstraction frontier exceeded its bound")

// DefaultMaxFrontier bounds the forward engine's configuration frontier.
// Real histories keep the frontier near the overlap width; hitting this
// bound means the history defeats state deduplication.
const DefaultMaxFrontier = 1 << 16

// SimOption configures Simulate.
type SimOption func(*simConfig)

type simConfig struct {
	maxFrontier int
}

// WithMaxFrontier overrides DefaultMaxFrontier.
func WithMaxFrontier(m int) SimOption {
	return func(c *simConfig) {
		if m > 0 {
			c.maxFrontier = m
		}
	}
}

// Rejected reports whether err is a non-linearizability verdict (as opposed
// to an engine limitation or malformed input).
func Rejected(err error) bool { return errors.Is(err, ErrRejected) }

// frontier is the deduplicated set of reachable abstract configurations.
// A configuration pairs an abstract state with the set of OPEN operations
// already linearized into it (a bitmask over open-operation slots).
//
// Each configuration caches its spec.Key string: key construction is O(state
// size) and dominates the sweep on sequence-like specs, and the frontier is
// rebuilt at EVERY return event with states that have not changed — only
// their masks have. The index maps state key -> set of masks, so re-adding a
// surviving configuration costs two map operations and zero key building.
type frontier struct {
	spec  check.Spec
	list  []config
	index map[string]map[uint64]struct{}
	max   int
}

type config struct {
	state any
	mask  uint64
	skey  string // cached spec.Key(state)
}

// add keys st and inserts (st, mask) if novel.
func (f *frontier) add(st any, mask uint64) (bool, error) {
	return f.addKeyed(config{state: st, mask: mask, skey: f.spec.Key(st)})
}

// addKeyed inserts a configuration whose state key is already built;
// reports whether it was inserted.
func (f *frontier) addKeyed(c config) (bool, error) {
	masks := f.index[c.skey]
	if masks == nil {
		masks = make(map[uint64]struct{}, 1)
		f.index[c.skey] = masks
	} else if _, dup := masks[c.mask]; dup {
		return false, nil
	}
	if len(f.list) >= f.max {
		return false, fmt.Errorf("%w (%d configurations)", ErrFrontierLimit, f.max)
	}
	masks[c.mask] = struct{}{}
	f.list = append(f.list, c)
	return true, nil
}

// Simulate checks ops against spec with the forward-simulation frontier
// engine. It is equivalent to the Wing–Gong search (both decide
// linearizability exactly) but runs as a single pass over the history's
// events, so history LENGTH is never the limit — only instantaneous
// overlap and abstract-state diversity are.
func Simulate(ops []check.Operation, spec check.Spec, opts ...SimOption) error {
	cfg := simConfig{maxFrontier: DefaultMaxFrontier}
	for _, o := range opts {
		o(&cfg)
	}
	if len(ops) == 0 {
		return nil
	}

	// Event sweep order: by timestamp; invokes before returns on equal
	// stamps, so ties count as overlap — the same convention as the search
	// engine's Invoke <= minReturn test.
	type event struct {
		t   int64
		ret bool
		op  int
	}
	evs := make([]event, 0, 2*len(ops))
	for i, o := range ops {
		if o.Invoke >= o.Return {
			return fmt.Errorf("forward engine: operation %v has an empty or inverted window", o)
		}
		evs = append(evs, event{o.Invoke, false, i}, event{o.Return, true, i})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return !evs[a].ret && evs[b].ret
	})

	// Open-operation slots: each open op holds one of 64 mask bits.
	slotOf := make([]int, len(ops))
	var freeSlots []int
	for s := 63; s >= 0; s-- {
		freeSlots = append(freeSlots, s)
	}
	openMask := uint64(0)
	slotOp := make([]int, 64) // slot -> op index, for iteration over opens

	f := &frontier{spec: spec, index: make(map[string]map[uint64]struct{}), max: cfg.maxFrontier}
	if _, err := f.add(spec.Init(), 0); err != nil {
		return err
	}

	// try linearizes op j on top of c if j is open, un-linearized in c, and
	// its recorded response matches; the successor joins the frontier.
	try := func(c config, j int) error {
		bit := uint64(1) << uint(slotOf[j])
		if c.mask&bit != 0 {
			return nil
		}
		ns, ok := spec.Step(c.state, ops[j])
		if !ok {
			return nil
		}
		_, err := f.add(ns, c.mask|bit)
		return err
	}

	for _, e := range evs {
		if !e.ret {
			// Invoke: open a slot, then close the frontier under the new
			// operation. Configurations not involving e.op were already
			// closed, so seeding with "apply e.op to every existing
			// configuration" and closing only the NEW configurations under
			// all open operations reaches exactly the full closure.
			if len(freeSlots) == 0 {
				return ErrTooWide
			}
			s := freeSlots[len(freeSlots)-1]
			freeSlots = freeSlots[:len(freeSlots)-1]
			slotOf[e.op] = s
			slotOp[s] = e.op
			openMask |= 1 << uint(s)

			seedEnd := len(f.list)
			for i := 0; i < len(f.list); i++ {
				c := f.list[i]
				if i < seedEnd {
					if err := try(c, e.op); err != nil {
						return err
					}
					continue
				}
				rest := openMask &^ c.mask
				for m := rest; m != 0; m &= m - 1 {
					s := trailingZeros(m)
					if err := try(c, slotOp[s]); err != nil {
						return err
					}
				}
			}
			continue
		}

		// Return: every surviving configuration must have linearized e.op.
		s := slotOf[e.op]
		bit := uint64(1) << uint(s)
		old := f.list
		f.list = make([]config, 0, len(old))
		f.index = make(map[string]map[uint64]struct{}, len(old))
		for _, c := range old {
			if c.mask&bit == 0 {
				continue
			}
			c.mask &^= bit
			if _, err := f.addKeyed(c); err != nil {
				return err
			}
		}
		if len(f.list) == 0 {
			open := popCount(openMask) - 1
			return fmt.Errorf("%w: %v cannot be linearized within its window (%d configurations, %d other open ops)",
				ErrRejected, ops[e.op], len(old), open)
		}
		openMask &^= bit
		freeSlots = append(freeSlots, s)
	}
	return nil
}

func trailingZeros(m uint64) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}

func popCount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
