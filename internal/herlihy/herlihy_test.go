package herlihy

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/xatomic"
)

func faa(n int) *Universal[uint64, uint64, uint64] {
	return New(n, uint64(0), func(st uint64, _ int, arg uint64) (uint64, uint64) {
		return st + arg, st
	})
}

func TestHerlihySequential(t *testing.T) {
	u := faa(1)
	if got := u.Apply(0, 5); got != 0 {
		t.Fatalf("first = %d", got)
	}
	if got := u.Apply(0, 3); got != 5 {
		t.Fatalf("second = %d", got)
	}
	if got := u.Read(0); got != 8 {
		t.Fatalf("Read = %d", got)
	}
}

func TestHerlihyResponsesArePermutation(t *testing.T) {
	const n, per = 8, 200
	u := faa(n)
	seen := make([]bool, n*per)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for k := 0; k < per; k++ {
				local = append(local, u.Apply(id, 1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, prev := range local {
				if prev >= n*per || seen[prev] {
					t.Errorf("bad/duplicate previous value %d", prev)
					return
				}
				seen[prev] = true
			}
		}(i)
	}
	wg.Wait()
	if got := u.Read(0); got != n*per {
		t.Fatalf("final = %d, want %d", got, n*per)
	}
}

func TestHerlihyLinearizableHistories(t *testing.T) {
	const n, per, rounds = 3, 4, 15
	for r := 0; r < rounds; r++ {
		u := faa(n)
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					slot := rec.Invoke(id, check.OpAdd, 1)
					prev := u.Apply(id, 1)
					rec.Return(slot, prev, false)
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.CounterSpec(0)); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: history not linearizable:\n%v", r, rec.Operations())
		}
	}
}

// TestHerlihyAccessGrowth: the construction's per-op shared-access count
// must grow with n (contrast with Sim's constant — the Table 1 comparison).
func TestHerlihyAccessGrowth(t *testing.T) {
	perOp := func(n int) float64 {
		u := faa(n)
		c := xatomic.NewAccessCounter(n)
		u.SetAccessCounter(c)
		const per = 60
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					u.Apply(id, 1)
				}
			}(i)
		}
		wg.Wait()
		return float64(c.Total()) / float64(n*per)
	}
	a1, a16 := perOp(1), perOp(16)
	if a16 <= a1 {
		t.Fatalf("accesses/op did not grow with n: %v vs %v", a1, a16)
	}
}

func TestHerlihyStructState(t *testing.T) {
	type st struct{ a, b int }
	u := New(2, st{}, func(s st, pid int, arg int) (st, int) {
		s.a += arg
		s.b = pid
		return s, s.a
	})
	if got := u.Apply(1, 4); got != 4 {
		t.Fatalf("Apply = %d", got)
	}
	if got := u.Read(1); got.a != 4 || got.b != 1 {
		t.Fatalf("Read = %+v", got)
	}
}

func TestHerlihyN(t *testing.T) {
	if faa(3).N() != 3 {
		t.Fatal("N() wrong")
	}
}
