// Package lsim implements L-Sim (paper §6, Algorithms 7 and 8): the Sim
// universal construction for LARGE objects. Where Sim/P-Sim copy the whole
// simulated state each round, L-Sim operates directly on the shared data
// structure: every data item lives in its own ItemSV record holding two
// value slots, a toggle selecting the current slot, and the sequence number
// of the combining round that last wrote it. Helpers of a round execute the
// same set of operations deterministically against per-helper directories
// (write sets), then write the dirty items back with per-item SC, so a round
// costs O(kw) shared accesses — k the interval contention, w the number of
// items an operation touches — instead of O(s) for the full state.
//
// The construction is wait-free and linearizable (Theorem 6.1). Announced
// operations are executed by ALL concurrent helpers of a round, so an
// operation function must be deterministic and must access shared data only
// through its Mem parameter.
package lsim

import (
	"sync/atomic"

	"repro/internal/collect"
	"repro/internal/xatomic"
)

// Item is one shared data item (struct ItemSV of Algorithm 7): two value
// slots plus toggle and round stamp, manipulated with LL/SC. The zero value
// of V plays the paper's ⊥.
type Item[V any] struct {
	sv *xatomic.LLSC[itemBody[V]]
}

type itemBody[V any] struct {
	val    [2]V
	toggle int    // index of the CURRENT slot; 1-toggle holds the old value
	seq    uint64 // round that last wrote the item
}

func newItem[V any](init V) *Item[V] {
	var b itemBody[V]
	b.val[0] = init
	return &Item[V]{sv: xatomic.NewLLSC(b)}
}

// Current returns the item's committed value — for inspection outside any
// operation (tests, examples). Inside an operation use Mem.Read.
func (it *Item[V]) Current() V {
	b := it.sv.Read()
	return b.val[b.toggle]
}

// OpFunc is a sequential operation on the large object. It may read, write
// and allocate items only through m, must be deterministic (helpers replay
// it), and must not retain m beyond the call.
type OpFunc[V, A, R any] func(m *Mem[V, A, R], arg A) R

// announced is an announce-array record.
type announced[V, A, R any] struct {
	fn  OpFunc[V, A, R]
	arg A
}

// lsimState is the LL/SC-published round record (struct State of
// Algorithm 7): the applied/papplied double bit vector, per-process
// responses, the round number, and the shared list of items allocated
// during the round.
type lsimState[R any] struct {
	applied  []bool
	papplied []bool
	rvals    []R
	seq      uint64
	varList  *newList
}

// newList is the shared new-variable list; head is a dummy node so the
// first insertion is the same CAS as every other (the paper's var_list).
type newList struct {
	head newVar
}

type newVar struct {
	item any // *Item[V]; stored untyped to keep newList monomorphic
	next atomic.Pointer[newVar]
}

// LSim is an L-Sim universal object instance.
type LSim[V, A, R any] struct {
	n int

	announce *collect.Announce[announced[V, A, R]]
	act      *collect.ActSet
	members  []*collect.Member
	s        *xatomic.LLSC[lsimState[R]]

	counter *xatomic.AccessCounter
	stats   []lsimStats
}

type lsimStats struct {
	ops, scSuccess, scFail, combined atomic.Uint64
	_                                [32]byte
}

// New returns an L-Sim instance for n processes. Items making up the
// object's initial state are created with NewRootItem before any ApplyOp.
func New[V, A, R any](n int) *LSim[V, A, R] {
	l := &LSim[V, A, R]{
		n:        n,
		announce: collect.NewAnnounce[announced[V, A, R]](n),
		act:      collect.NewActSet(n),
		members:  make([]*collect.Member, n),
		stats:    make([]lsimStats, n),
	}
	for i := range l.members {
		l.members[i] = l.act.Member(i)
	}
	l.s = xatomic.NewLLSC(lsimState[R]{
		applied:  make([]bool, n),
		papplied: make([]bool, n),
		rvals:    make([]R, n),
		varList:  &newList{},
	})
	return l
}

// NewRootItem creates a free-standing item initialized to init. Root items
// form the object's initial structure; items allocated during operations
// come from Mem.Alloc.
func (l *LSim[V, A, R]) NewRootItem(init V) *Item[V] {
	return newItem(init)
}

// SetAccessCounter attaches shared-access instrumentation (Table 1). Not
// safe to call concurrently with ApplyOp.
func (l *LSim[V, A, R]) SetAccessCounter(c *xatomic.AccessCounter) { l.counter = c }

// N returns the number of processes.
func (l *LSim[V, A, R]) N() int { return l.n }

// ApplyOp announces op with argument arg for process i, executes the
// join/attempt/leave protocol of Algorithm 7 (lines 1–7), and returns the
// operation's response. Each process id must be driven by one goroutine.
func (l *LSim[V, A, R]) ApplyOp(i int, op OpFunc[V, A, R], arg A) R {
	l.announce.Write(i, &announced[V, A, R]{fn: op, arg: arg}) // line 1
	l.count(i, 1)
	l.members[i].Join() // line 2
	l.count(i, 1)
	l.attempt(i) // lines 3–4
	l.attempt(i)
	l.members[i].Leave() // line 5
	l.count(i, 1)
	l.attempt(i) // line 6: eliminate the evidence of op

	rv := l.s.Read().rvals[i] // line 7
	l.count(i, 1)
	l.stats[i].ops.Add(1)
	return rv
}

// errObsolete aborts an in-progress simulation when the helper discovers the
// state it read is stale (Algorithm 8 line 35's "goto line 38").
type obsoleteError struct{}

func (obsoleteError) Error() string { return "lsim: state obsolete" }

// attempt is Attempt of Algorithm 8: two rounds of
// read-state/simulate/write-back/publish.
func (l *LSim[V, A, R]) attempt(i int) {
	st := &l.stats[i]
	for j := 0; j < 2; j++ { // line 9
		ls, tag := l.s.LL() // line 11
		l.count(i, 1)
		lact := l.act.GetSet() // line 12
		l.count(i, uint64(l.act.Words()))

		tmp := lsimState[R]{ // lines 14–18
			applied:  make([]bool, l.n),
			papplied: append([]bool(nil), ls.applied...),
			rvals:    append([]R(nil), ls.rvals...),
			seq:      ls.seq + 1,
		}
		for q := 0; q < l.n; q++ {
			tmp.applied[q] = lact.Bit(q)
		}

		m := &Mem[V, A, R]{
			l:    l,
			id:   i,
			seq:  tmp.seq,
			dir:  make(map[*Item[V]]*dirEntry[V]),
			ltop: &ls.varList.head, // line 13
		}

		// lines 19–37: simulate the operation of every process whose
		// announcement became visible last round (applied ∧ ¬papplied).
		combined := uint64(0)
		if ok := l.simulate(ls, &tmp, m, &combined); !ok {
			continue // stale state detected mid-simulation — retry round
		}

		if !l.s.VL(tag) { // line 38: the state we read is obsolete
			l.count(i, 1)
			continue
		}
		l.count(i, 1)

		// lines 39–43: write the directory back with per-item SC.
		if !l.writeBack(i, m, tmp.seq) {
			return // a later round already committed everything (line 40)
		}

		tmp.varList = &newList{} // line 44: fresh list for the next round

		if l.s.SC(tag, tmp) { // line 45
			st.scSuccess.Add(1)
			st.combined.Add(combined)
		} else {
			st.scFail.Add(1)
		}
		l.count(i, 1)
	}
}

// simulate runs every eligible announced operation against m. It reports
// false if the state was discovered to be obsolete.
func (l *LSim[V, A, R]) simulate(ls lsimState[R], tmp *lsimState[R], m *Mem[V, A, R], combined *uint64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isObsolete := r.(obsoleteError); isObsolete {
				ok = false
				return
			}
			panic(r)
		}
	}()
	for q := 0; q < l.n; q++ { // line 19
		if ls.applied[q] && !ls.papplied[q] { // line 20
			a := l.announce.Read(q) // the operation announced by q
			l.count(m.id, 1)
			tmp.rvals[q] = a.fn(m, a.arg) // lines 21–37
			*combined++
		}
	}
	return true
}

// writeBack applies the directory to the shared items (lines 39–43). It
// reports false when a LATER round has already committed, in which case the
// caller must return immediately (every operation of this round — including
// the caller's — has been applied by others).
func (l *LSim[V, A, R]) writeBack(id int, m *Mem[V, A, R], seq uint64) bool {
	for it, d := range m.dir {
		body, itag := it.sv.LL() // lines 39–41
		l.count(id, 1)
		if body.seq > seq {
			return false // line 40
		}
		if body.seq == seq {
			continue // line 41: a co-helper already wrote it
		}
		var nb itemBody[V]
		nb.seq = seq
		if body.toggle == 0 { // line 42: preserve val[0] as the old value
			nb.val[0] = body.val[0]
			nb.val[1] = d.val
			nb.toggle = 1
		} else { // line 43
			nb.val[0] = d.val
			nb.val[1] = body.val[1]
			nb.toggle = 0
		}
		it.sv.SC(itag, nb)
		l.count(id, 1)
	}
	return true
}

func (l *LSim[V, A, R]) count(i int, n uint64) {
	l.counter.Add(i, n)
}

// Rvals returns the committed response of process i (test helper).
func (l *LSim[V, A, R]) Rvals(i int) R { return l.s.Read().rvals[i] }

// Seq returns the committed round number (test helper).
func (l *LSim[V, A, R]) Seq() uint64 { return l.s.Read().seq }

// Stats aggregates combining statistics across processes.
func (l *LSim[V, A, R]) Stats() (ops, scSuccess, scFail, combined uint64) {
	for i := range l.stats {
		ops += l.stats[i].ops.Load()
		scSuccess += l.stats[i].scSuccess.Load()
		scFail += l.stats[i].scFail.Load()
		combined += l.stats[i].combined.Load()
	}
	return
}
