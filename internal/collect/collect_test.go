package collect

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSimCollectBasics(t *testing.T) {
	c := NewSimCollect(4, 8)
	if c.N() != 4 || c.D() != 8 || c.Words() != 1 || !c.Single() {
		t.Fatalf("geometry wrong: n=%d d=%d words=%d", c.N(), c.D(), c.Words())
	}
	u0, u2 := c.Updater(0), c.Updater(2)
	u0.Update(5)
	u2.Update(200)
	got := c.Collect()
	want := []uint64{5, 0, 200, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Collect = %v, want %v", got, want)
		}
	}
}

func TestSimCollectOverwrite(t *testing.T) {
	c := NewSimCollect(2, 8)
	u := c.Updater(0)
	for _, v := range []uint64{1, 255, 0, 42, 41, 43, 0, 7} {
		u.Update(v)
		if got := c.Collect()[0]; got != v {
			t.Fatalf("component 0 = %d after Update(%d)", got, v)
		}
		if u.Last() != v {
			t.Fatalf("Last() = %d, want %d", u.Last(), v)
		}
	}
}

func TestSimCollectTruncatesToD(t *testing.T) {
	c := NewSimCollect(2, 4)
	u := c.Updater(1)
	u.Update(0x1F) // 5 bits; chunk keeps low 4
	if got := c.Collect()[1]; got != 0xF {
		t.Fatalf("component = %#x, want 0xF", got)
	}
}

// TestSimCollectNeighborIsolation: downward updates must not borrow into the
// neighbouring chunk (regression test for the masked-delta bug found during
// development: (0→2→0) on one chunk corrupted its neighbour).
func TestSimCollectNeighborIsolation(t *testing.T) {
	c := NewSimCollect(8, 8)
	u3, u4 := c.Updater(3), c.Updater(4)
	u4.Update(7)
	u3.Update(200)
	u3.Update(1) // big downward step
	u3.Update(0)
	got := c.Collect()
	if got[4] != 7 {
		t.Fatalf("component 4 corrupted: %v", got)
	}
	if got[3] != 0 {
		t.Fatalf("component 3 = %d, want 0", got[3])
	}
}

// TestSimCollectQuickIsolation: random update sequences on every component;
// each component must always read the last value its owner wrote.
func TestSimCollectQuickIsolation(t *testing.T) {
	f := func(raw []uint16) bool {
		const n, d = 5, 12
		c := NewSimCollect(n, d)
		ups := make([]*Updater, n)
		last := make([]uint64, n)
		for i := range ups {
			ups[i] = c.Updater(i)
		}
		for i, r := range raw {
			comp := i % n
			v := uint64(r) & ((1 << d) - 1)
			ups[comp].Update(v)
			last[comp] = v
		}
		got := c.Collect()
		for i := 0; i < n; i++ {
			if got[i] != last[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimCollectMultiWord(t *testing.T) {
	c := NewSimCollect(20, 16) // 4 chunks per word -> 5 words
	if c.Words() != 5 || c.Single() {
		t.Fatalf("Words = %d, want 5", c.Words())
	}
	for i := 0; i < 20; i++ {
		c.Updater(i).Update(uint64(i * 100))
	}
	got := c.Collect()
	for i := 0; i < 20; i++ {
		if got[i] != uint64(i*100) {
			t.Fatalf("component %d = %d", i, got[i])
		}
	}
}

func TestSimCollectD64SingleComponent(t *testing.T) {
	c := NewSimCollect(1, 64)
	u := c.Updater(0)
	u.Update(^uint64(0))
	if got := c.Collect()[0]; got != ^uint64(0) {
		t.Fatalf("component = %#x", got)
	}
	u.Update(3)
	if got := c.Collect()[0]; got != 3 {
		t.Fatalf("component = %d, want 3", got)
	}
}

func TestSimCollectPanicsOnBadArgs(t *testing.T) {
	assertPanics(t, func() { NewSimCollect(0, 8) })
	assertPanics(t, func() { NewSimCollect(4, 0) })
	assertPanics(t, func() { NewSimCollect(4, 65) })
	c := NewSimCollect(4, 8)
	assertPanics(t, func() { c.Updater(-1) })
	assertPanics(t, func() { c.Updater(4) })
}

func TestSnapshotSingleWordOnly(t *testing.T) {
	c := NewSimCollect(4, 8)
	_ = c.Snapshot() // single word: OK
	big := NewSimCollect(20, 16)
	assertPanics(t, func() { big.Snapshot() })
}

// TestSimCollectConcurrentRegularity: concurrent single-writer updates; a
// final collect (after quiescence) must return every writer's last value,
// and no intermediate collect may observe a value never written.
func TestSimCollectConcurrentRegularity(t *testing.T) {
	const n, per = 8, 500
	c := NewSimCollect(n, 16)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			u := c.Updater(id)
			for k := 1; k <= per; k++ {
				u.Update(uint64(k)) // monotonically increasing per writer
			}
		}(i)
	}
	stop := make(chan struct{})
	violations := make(chan string, 1)
	go func() {
		prev := make([]uint64, n)
		for {
			select {
			case <-stop:
				return
			default:
			}
			vals := c.Collect()
			for i, v := range vals {
				if v > per {
					select {
					case violations <- "value out of range":
					default:
					}
				}
				// Monotonic writers: collects must never go backwards.
				if v < prev[i] {
					select {
					case violations <- "collect went backwards for a monotonic writer":
					default:
					}
				}
				prev[i] = v
			}
		}
	}()
	wg.Wait()
	close(stop)
	select {
	case msg := <-violations:
		t.Fatal(msg)
	default:
	}
	got := c.Collect()
	for i := 0; i < n; i++ {
		if got[i] != per {
			t.Fatalf("component %d = %d, want %d", i, got[i], per)
		}
	}
}

func TestCollectInto(t *testing.T) {
	c := NewSimCollect(3, 8)
	c.Updater(1).Update(9)
	dst := make([]uint64, 3)
	c.CollectInto(dst)
	if dst[1] != 9 || dst[0] != 0 || dst[2] != 0 {
		t.Fatalf("CollectInto = %v", dst)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
