package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// histJSON is the JSON shape of one histogram: the derived statistics the
// acceptance dashboards want (p50/p99/mean/max) plus the non-empty buckets,
// keyed by inclusive upper bound.
type histJSON struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Mean    float64           `json:"mean"`
	Max     uint64            `json:"max"`
	P50     uint64            `json:"p50"`
	P90     uint64            `json:"p90"`
	P99     uint64            `json:"p99"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

type snapshotJSON struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

// WriteJSON writes the snapshot as one indented JSON document: counters and
// gauges as flat name→value maps, histograms with precomputed p50/p90/p99,
// mean, max, and the non-empty log buckets.
func WriteJSON(w io.Writer, s Snapshot) error {
	out := snapshotJSON{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: map[string]histJSON{},
	}
	for name, h := range s.Histograms {
		hj := histJSON{
			Count: h.Count,
			Sum:   h.Sum,
			Mean:  h.Mean(),
			Max:   h.Max,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		for i, c := range h.Buckets {
			if c != 0 {
				if hj.Buckets == nil {
					hj.Buckets = map[string]uint64{}
				}
				hj.Buckets[fmt.Sprintf("%d", BucketUpper(i))] = c
			}
		}
		out.Histograms[name] = hj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the snapshot in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count` (the standard
// histogram convention, so PromQL's histogram_quantile works unchanged).
func WriteProm(w io.Writer, s Snapshot) error {
	counters, gauges, hists := s.Names()
	for _, name := range counters {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range hists {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, BucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry over HTTP: Prometheus text format by default,
// JSON with `?format=json` (or an Accept: application/json header), and the
// delta-since-last-scrape view with `?delta=1`. Mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var snap Snapshot
		if req.URL.Query().Get("delta") == "1" {
			snap = r.Delta()
		} else {
			snap = r.Snapshot()
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, snap)
	})
}
