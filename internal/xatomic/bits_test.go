package xatomic

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {512, 8},
	}
	for _, c := range cases {
		if got := WordsFor(c.n); got != c.want {
			t.Fatalf("WordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSnapshotBitOps(t *testing.T) {
	s := NewSnapshot(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		if s.Bit(i) {
			t.Fatalf("bit %d set in zero snapshot", i)
		}
		s.SetBit(i)
		if !s.Bit(i) {
			t.Fatalf("bit %d not set after SetBit", i)
		}
	}
	if got := s.PopCount(); got != 5 {
		t.Fatalf("PopCount = %d, want 5", got)
	}
	s.ClearBit(64)
	if s.Bit(64) {
		t.Fatal("bit 64 still set after ClearBit")
	}
	s.FlipBit(64)
	if !s.Bit(64) {
		t.Fatal("bit 64 clear after FlipBit")
	}
	s.FlipBit(64)
	if s.Bit(64) {
		t.Fatal("bit 64 set after second FlipBit")
	}
}

func TestSnapshotBitSearchFirst(t *testing.T) {
	s := NewSnapshot(200)
	if got := s.BitSearchFirst(); got != -1 {
		t.Fatalf("BitSearchFirst on zero = %d, want -1", got)
	}
	s.SetBit(150)
	if got := s.BitSearchFirst(); got != 150 {
		t.Fatalf("BitSearchFirst = %d, want 150", got)
	}
	s.SetBit(3)
	if got := s.BitSearchFirst(); got != 3 {
		t.Fatalf("BitSearchFirst = %d, want 3", got)
	}
}

// TestSnapshotDrainOrder: the clear-lowest loop visits set bits in ascending
// order — the helping order of Algorithm 3.
func TestSnapshotDrainOrder(t *testing.T) {
	s := NewSnapshot(192)
	want := []int{1, 63, 64, 100, 191}
	for _, i := range want {
		s.SetBit(i)
	}
	var got []int
	for {
		k := s.BitSearchFirst()
		if k < 0 {
			break
		}
		got = append(got, k)
		s.ClearBit(k)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if !s.IsZero() {
		t.Fatal("snapshot not zero after drain")
	}
}

func TestSnapshotXorInto(t *testing.T) {
	a, b, d := NewSnapshot(128), NewSnapshot(128), NewSnapshot(128)
	a.SetBit(5)
	a.SetBit(70)
	b.SetBit(70)
	b.SetBit(100)
	a.XorInto(b, d)
	if !d.Bit(5) || !d.Bit(100) || d.Bit(70) {
		t.Fatalf("xor wrong: %v", d)
	}
}

func TestSnapshotIsOnlyBit(t *testing.T) {
	s := NewSnapshot(128)
	s.SetBit(70)
	word, mask := 1, uint64(1)<<(70-64)
	if !s.IsOnlyBit(word, mask) {
		t.Fatal("singleton {70} not recognized")
	}
	if s.IsOnlyBit(0, 1) {
		t.Fatal("wrong word/mask accepted")
	}
	s.SetBit(5) // second bit in another word
	if s.IsOnlyBit(word, mask) {
		t.Fatal("extra bit in another word accepted")
	}
	s.ClearBit(5)
	s.SetBit(71) // second bit in the same word
	if s.IsOnlyBit(word, mask) {
		t.Fatal("extra bit in the same word accepted")
	}
	var empty Snapshot = NewSnapshot(64)
	if empty.IsOnlyBit(0, 1) {
		t.Fatal("empty snapshot accepted as singleton")
	}
}

func TestSnapshotEqualCloneCopy(t *testing.T) {
	a := NewSnapshot(100)
	a.SetBit(42)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.SetBit(43)
	if a.Equal(c) {
		t.Fatal("mutating clone affected or equals original")
	}
	b := NewSnapshot(100)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom result not equal")
	}
	if a.Equal(NewSnapshot(200)) {
		t.Fatal("snapshots of different lengths compared equal")
	}
}

func TestSnapshotXorQuickSelfInverse(t *testing.T) {
	f := func(xs []uint64) bool {
		if len(xs) == 0 {
			xs = []uint64{0}
		}
		a := Snapshot(xs)
		d := make(Snapshot, len(a))
		a.XorInto(a, d)
		return d.IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedBitsLayouts(t *testing.T) {
	for _, padded := range []bool{false, true} {
		var b *SharedBits
		if padded {
			b = NewSharedBitsPadded(130)
		} else {
			b = NewSharedBits(130)
		}
		if b.Len() != 130 || b.Words() != 3 {
			t.Fatalf("padded=%v: Len=%d Words=%d", padded, b.Len(), b.Words())
		}
		prev := b.AddWord(2, 0b101)
		if prev != 0 {
			t.Fatalf("AddWord previous = %d, want 0", prev)
		}
		if b.LoadWord(2) != 0b101 {
			t.Fatalf("LoadWord = %b", b.LoadWord(2))
		}
		s := b.Load()
		if !s.Bit(128) || s.Bit(129) || !s.Bit(130) {
			t.Fatalf("snapshot bits wrong: %v", s)
		}
	}
}

func TestTogglerAlternates(t *testing.T) {
	b := NewSharedBits(8)
	tg := NewToggler(b, 3)
	if tg.Set() {
		t.Fatal("toggler starts set")
	}
	tg.Toggle()
	if !tg.Set() || b.LoadWord(0) != 1<<3 {
		t.Fatalf("after first toggle: set=%v word=%b", tg.Set(), b.LoadWord(0))
	}
	tg.Toggle()
	if tg.Set() || b.LoadWord(0) != 0 {
		t.Fatalf("after second toggle: set=%v word=%b", tg.Set(), b.LoadWord(0))
	}
}

func TestTogglerMaskWord(t *testing.T) {
	b := NewSharedBits(200)
	tg := NewToggler(b, 130)
	if tg.Word() != 2 || tg.Mask() != 1<<2 {
		t.Fatalf("Word=%d Mask=%b", tg.Word(), tg.Mask())
	}
}

// TestTogglerNeighborIsolation: toggling bit i never disturbs other bits of
// the word, even across many toggles — the no-carry/no-borrow property the
// announcement trick relies on.
func TestTogglerNeighborIsolation(t *testing.T) {
	b := NewSharedBits(64)
	t3 := NewToggler(b, 3)
	t4 := NewToggler(b, 4)
	t4.Toggle() // bit 4 = 1
	for i := 0; i < 101; i++ {
		t3.Toggle()
	}
	w := b.LoadWord(0)
	if w&(1<<4) == 0 {
		t.Fatal("bit 4 disturbed by toggles of bit 3")
	}
	if w&(1<<3) == 0 { // 101 toggles: bit 3 ends set
		t.Fatal("bit 3 not set after odd number of toggles")
	}
	if w != (1<<3)|(1<<4) {
		t.Fatalf("stray bits set: %b", w)
	}
}

// TestTogglersConcurrent: every process toggling its own bit concurrently;
// final word must reflect each process's parity exactly.
func TestTogglersConcurrent(t *testing.T) {
	const n = 32
	b := NewSharedBits(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tg := NewToggler(b, id)
			// process i toggles i+1 times: final bit = (i+1) mod 2
			for k := 0; k <= id; k++ {
				tg.Toggle()
			}
		}(i)
	}
	wg.Wait()
	s := b.Load()
	for i := 0; i < n; i++ {
		want := (i+1)%2 == 1
		if s.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, s.Bit(i), want)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	s := NewSnapshot(64)
	s.SetBit(0)
	str := s.String()
	if len(str) != 64 || str[0] != '1' {
		t.Fatalf("String() = %q", str)
	}
}
