// Package xatomic provides the shared-memory primitives the Sim universal
// construction is built from: Fetch&Add with "returns the previous value"
// semantics (the paper's F&A), a linked-load/store-conditional (LL/SC)
// object simulated over CAS exactly the way the paper ports it to x86-64
// (§4), timestamped pool indices, and multi-word bit vectors manipulated
// with Fetch&Add-based bit toggling (Algorithm 2's Act vector).
//
// Everything here is wait-free and allocation-free on the hot path except
// LLSC.SC, which allocates one cell per attempt (the GC-based reclamation
// noted in DESIGN.md).
package xatomic

import "sync/atomic"

// FetchAdd64 atomically adds delta to *addr and returns the PREVIOUS value,
// matching the paper's FA(R, x) semantics (Go's atomic.AddUint64 returns the
// new value).
func FetchAdd64(addr *atomic.Uint64, delta uint64) uint64 {
	return addr.Add(delta) - delta
}

// FetchAdd32 is FetchAdd64 for 32-bit words.
func FetchAdd32(addr *atomic.Uint32, delta uint32) uint32 {
	return addr.Add(delta) - delta
}

// FetchAddInt64 atomically adds delta to *addr and returns the previous
// value, for signed counters.
func FetchAddInt64(addr *atomic.Int64, delta int64) int64 {
	return addr.Add(delta) - delta
}
