package simset

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/check"
)

func TestSetSequentialBasics(t *testing.T) {
	s := New(1)
	if s.Contains(0, 5) {
		t.Fatal("empty set contains 5")
	}
	if !s.Insert(0, 5) {
		t.Fatal("first insert reported duplicate")
	}
	if s.Insert(0, 5) {
		t.Fatal("duplicate insert reported new")
	}
	if !s.Contains(0, 5) {
		t.Fatal("5 missing after insert")
	}
	if !s.Remove(0, 5) {
		t.Fatal("remove of present key failed")
	}
	if s.Remove(0, 5) {
		t.Fatal("double remove succeeded")
	}
	if s.Contains(0, 5) {
		t.Fatal("5 present after remove")
	}
}

func TestSetSortedOrder(t *testing.T) {
	s := New(1)
	for _, k := range []uint64{5, 1, 9, 3, 7, 2, 8} {
		s.Insert(0, k)
	}
	keys := s.Keys()
	want := []uint64{1, 2, 3, 5, 7, 8, 9}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want sorted %v", keys, want)
		}
	}
	s.Remove(0, 1) // head position
	s.Remove(0, 9) // tail position
	s.Remove(0, 5) // middle
	keys = s.Keys()
	want = []uint64{2, 3, 7, 8}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("after removes: %v, want %v", keys, want)
		}
	}
}

// TestSetQuickEquivalence: random op strings vs map[uint64]bool.
func TestSetQuickEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(1)
		ref := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o % 16)
			switch o % 3 {
			case 0:
				if s.Insert(0, k) != !ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if s.Remove(0, k) != ref[k] {
					return false
				}
				delete(ref, k)
			case 2:
				if s.Contains(0, k) != ref[k] {
					return false
				}
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSetConcurrentDisjointRanges: writers insert disjoint key ranges; all
// keys must end up present exactly once, in order.
func TestSetConcurrentDisjointRanges(t *testing.T) {
	const n, per = 6, 60
	s := New(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if !s.Insert(id, uint64(id*per+k)+1) {
					t.Errorf("insert of fresh key reported duplicate")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	keys := s.Keys()
	if len(keys) != n*per {
		t.Fatalf("set has %d keys, want %d", len(keys), n*per)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly sorted at %d: %d after %d", i, keys[i], keys[i-1])
		}
	}
}

// TestSetConcurrentSameKeys: all processes fight over a small key range;
// insert/remove responses must balance per key.
func TestSetConcurrentSameKeys(t *testing.T) {
	const n, per, keys = 6, 120, 8
	s := New(n)
	var inserted, removed [keys]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id) + 3
			localIns := [keys]int64{}
			localRem := [keys]int64{}
			for k := 0; k < per; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				key := seed % keys
				if seed%2 == 0 {
					if s.Insert(id, key) {
						localIns[key]++
					}
				} else {
					if s.Remove(id, key) {
						localRem[key]++
					}
				}
			}
			mu.Lock()
			for k := 0; k < keys; k++ {
				inserted[k] += localIns[k]
				removed[k] += localRem[k]
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	final := map[uint64]bool{}
	for _, k := range s.Keys() {
		if final[k] {
			t.Fatalf("key %d appears twice", k)
		}
		final[k] = true
	}
	for k := 0; k < keys; k++ {
		wantPresent := inserted[k]-removed[k] == 1
		if inserted[k]-removed[k] != 0 && inserted[k]-removed[k] != 1 {
			t.Fatalf("key %d: %d successful inserts vs %d removes", k, inserted[k], removed[k])
		}
		if final[uint64(k)] != wantPresent {
			t.Fatalf("key %d: present=%v, want %v", k, final[uint64(k)], wantPresent)
		}
	}
}

// TestSetLinearizable: small adversarial histories against the set spec.
func TestSetLinearizable(t *testing.T) {
	const n, per, rounds = 3, 3, 10
	for r := 0; r < rounds; r++ {
		s := New(n)
		rec := check.NewRecorder(n * per)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				seed := uint64(id*31 + r + 1)
				for k := 0; k < per; k++ {
					seed ^= seed << 13
					seed ^= seed >> 7
					seed ^= seed << 17
					key := seed % 4
					switch seed % 3 {
					case 0:
						slot := rec.Invoke(id, check.OpInsert, key)
						ok := s.Insert(id, key)
						rec.Return(slot, 0, ok)
					case 1:
						slot := rec.Invoke(id, check.OpRemove, key)
						ok := s.Remove(id, key)
						rec.Return(slot, 0, ok)
					case 2:
						slot := rec.Invoke(id, check.OpContains, key)
						ok := s.Contains(id, key)
						rec.Return(slot, 0, ok)
					}
				}
			}(i)
		}
		wg.Wait()
		if ok, err := check.Linearizable(rec.Operations(), check.SetSpec()); err != nil {
			t.Fatalf("linearizability search: %v", err)
		} else if !ok {
			t.Fatalf("round %d: set history not linearizable:\n%v", r, rec.Operations())
		}
	}
}
