package obs

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("sim_ops_total", 2)
	c.Add(0, 10)
	c.Add(1, 5)
	reg.Gauge("conns").Set(2)
	h := reg.Histogram("op latency (ns)", 2) // name needs sanitizing
	h.Record(0, 100)
	h.Record(0, 200)
	h.Record(1, 1<<20)
	// Labeled per-shard series of one family (see Labeled).
	for i := 0; i < 2; i++ {
		sc := reg.Counter(Join(Labeled("map", "shard", strconv.Itoa(i)), "_ops_total"), 1)
		sc.Add(0, uint64(3+i))
		sh := reg.Histogram(Join(Labeled("map", "shard", strconv.Itoa(i)), "_op_latency_ns"), 1)
		sh.Record(0, uint64(50<<i))
	}
	return reg
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, exampleRegistry().Snapshot()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64            `json:"count"`
			P50     uint64            `json:"p50"`
			P99     uint64            `json:"p99"`
			Max     uint64            `json:"max"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if out.Counters["sim_ops_total"] != 15 || out.Gauges["conns"] != 2 {
		t.Fatalf("scalar metrics wrong: %+v", out)
	}
	h := out.Histograms["op latency (ns)"]
	if h.Count != 3 || h.P50 != 255 || h.Max != 1<<20 {
		t.Fatalf("histogram stats wrong: %+v", h)
	}
	if len(h.Buckets) != 3 { // buckets 7 (100), 8 (200), 21 (1<<20)
		t.Fatalf("expected 3 non-empty buckets: %v", h.Buckets)
	}
}

func TestWriteProm(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, exampleRegistry().Snapshot()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_ops_total counter",
		"sim_ops_total 15",
		"# TYPE conns gauge",
		"conns 2",
		"# TYPE op_latency__ns_ histogram",
		"op_latency__ns__bucket{le=\"+Inf\"} 3",
		"op_latency__ns__sum 1048876",
		"op_latency__ns__count 3",
		// Labeled series share one family and one TYPE header.
		"# TYPE map_ops_total counter",
		`map_ops_total{shard="0"} 3`,
		`map_ops_total{shard="1"} 4`,
		`map_op_latency_ns_bucket{shard="0",le="+Inf"} 1`,
		`map_op_latency_ns_sum{shard="1"} 100`,
		`map_op_latency_ns_count{shard="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the final non-Inf bucket equals the count.
	if !strings.Contains(out, "op_latency__ns__bucket{le=\"2097151\"} 3") {
		t.Fatalf("cumulative bucket wrong:\n%s", out)
	}
	// Labeled series of one family get exactly one TYPE header.
	if n := strings.Count(out, "# TYPE map_ops_total counter"); n != 1 {
		t.Fatalf("expected 1 TYPE header for map_ops_total, got %d:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE map_op_latency_ns histogram"); n != 1 {
		t.Fatalf("expected 1 TYPE header for map_op_latency_ns, got %d:\n%s", n, out)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestWritePromGolden pins the exact Prometheus text exposition: bucket
// series must carry ascending `le` bounds ending in `+Inf`, each histogram
// must close with `_sum` and `_count`, and the layout must stay byte-stable
// so scrape configs and recording rules written against it keep working.
// Regenerate deliberately with `go test ./internal/obs -run Golden -update`.
func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, exampleRegistry().Snapshot()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	got := b.String()

	const golden = "testdata/prom.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("prometheus output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}

	// Structural guard on top of the byte comparison: every histogram's
	// `le` bounds ascend strictly and the series closes with +Inf.
	var prevLe, inInf = int64(-1), false
	for _, line := range strings.Split(got, "\n") {
		i := strings.Index(line, "_bucket{le=\"")
		if i < 0 {
			continue
		}
		rest := line[i+len("_bucket{le=\""):]
		le := rest[:strings.Index(rest, "\"")]
		if le == "+Inf" {
			prevLe, inInf = -1, true
			continue
		}
		n, err := strconv.ParseInt(le, 10, 64)
		if err != nil {
			t.Fatalf("non-numeric le %q in %q", le, line)
		}
		if n <= prevLe {
			t.Fatalf("le bounds not ascending: %d after %d in %q", n, prevLe, line)
		}
		prevLe = n
	}
	if !inInf {
		t.Fatal("no +Inf bucket in prometheus output")
	}
}

func TestPromNameSanitizing(t *testing.T) {
	if got := promName("9a-b.c"); got != "_a_b_c" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("ok_name:x0"); got != "ok_name:x0" {
		t.Fatalf("promName mangled a valid name: %q", got)
	}
}

func TestHandlerFormats(t *testing.T) {
	reg := exampleRegistry()
	h := Handler(reg)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "sim_ops_total 15") {
		t.Fatalf("prom body wrong:\n%s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if !json.Valid(rr.Body.Bytes()) {
		t.Fatalf("json body invalid:\n%s", rr.Body.String())
	}

	// Accept-header negotiation.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if !json.Valid(rr.Body.Bytes()) {
		t.Fatal("Accept: application/json not honoured")
	}

	// Delta scrapes: the second sees only what happened in between.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?delta=1", nil))
	reg.Counter("sim_ops_total", 2).Add(0, 1)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?delta=1", nil))
	if !strings.Contains(rr.Body.String(), "sim_ops_total 1") {
		t.Fatalf("delta scrape wrong:\n%s", rr.Body.String())
	}
}
