package xatomic

import "sync/atomic"

// The practical P-Sim (§4, Algorithm 2) replaces the LL/SC object with a CAS
// on a "TimedPoolIndex": a 16-bit index into the pool of State structs plus
// a 48-bit timestamp that makes ABA on the index impossible for 2^48
// successful updates. TimedWord is that word.
//
// Wrap bound, precisely: a stale CAS can only succeed if the packed 64-bit
// word RECURS — same index AND same stamp. Stamps increment once per
// successful update and wrap silently at 2^48, so the word a thread read
// can recur no earlier than 2^48 successful updates later; the emulation is
// sound iff no thread stalls between its LoadRaw and its CompareAndSwap
// across that many updates. At a (generous) 10^8 successful combining
// rounds per second that is a single operation stalled for ~32 days; the
// paper's 48-bit argument is this bound. TestTimedWordStampWrapVersionReuse
// pins its sharpness: advancing the stamp by exactly 2^48 reproduces the
// identical word and reopens the ABA window, one update fewer does not.
//
// The bound is an assumption, not an invariant — "LL/SC and Atomic Copy"
// (arXiv 1911.09671) shows how to make LL/SC unconditionally sound from
// pointer-width CAS by protecting the target against reuse instead of
// stamping it. internal/core's hazard-guarded recycling (and internal/lsim's
// per-item variant) is that construction: a protected record is never
// recycled, so its pointer can never recur while observed, and no stamp is
// needed. TimedWord remains the paper-exact pool/seqlock variant used by
// the publication ablation.

const (
	timedIndexBits = 16
	timedIndexMask = (1 << timedIndexBits) - 1
	// TimedStampMax is the largest representable timestamp (48 bits).
	TimedStampMax = (1 << (64 - timedIndexBits)) - 1
	// TimedIndexMax is the largest representable pool index (16 bits).
	TimedIndexMax = timedIndexMask
)

// PackTimed packs a 16-bit pool index and a 48-bit timestamp into one word.
// Bits [0,16) hold the index, bits [16,64) the stamp; the stamp wraps
// silently at 2^48 (over 10^14 operations — unreachable in practice, as the
// paper argues for its 48-bit stamps).
func PackTimed(index uint16, stamp uint64) uint64 {
	return uint64(index) | (stamp << timedIndexBits)
}

// UnpackTimed splits a packed word into its index and stamp.
func UnpackTimed(w uint64) (index uint16, stamp uint64) {
	return uint16(w & timedIndexMask), w >> timedIndexBits
}

// TimedWord is an atomic word holding a (pool index, timestamp) pair.
// The zero value holds index 0, stamp 0.
type TimedWord struct {
	w atomic.Uint64
}

// Load returns the current index and stamp.
func (t *TimedWord) Load() (index uint16, stamp uint64) {
	return UnpackTimed(t.w.Load())
}

// LoadRaw returns the packed word, for use as the expected value of a CAS.
func (t *TimedWord) LoadRaw() uint64 { return t.w.Load() }

// Store sets the index and stamp unconditionally (initialization only).
func (t *TimedWord) Store(index uint16, stamp uint64) {
	t.w.Store(PackTimed(index, stamp))
}

// CompareAndSwap installs (index, stamp) iff the word still equals oldRaw.
func (t *TimedWord) CompareAndSwap(oldRaw uint64, index uint16, stamp uint64) bool {
	return t.w.CompareAndSwap(oldRaw, PackTimed(index, stamp))
}
