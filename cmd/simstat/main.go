// Command simstat is the operator console for the telemetry timeline: it
// attaches to a running simkvd or simingestd (anything serving
// /debug/timeline), polls the windowed query surface, and renders a live
// top-style view — throughput sparkline, latency percentiles, CAS-failure
// ratio, combining degree, a per-series (per-shard / per-partition) table,
// and any active SLO breaches.
//
//	simstat -addr 127.0.0.1:9090            # live console, 1s refresh
//	simstat -addr 127.0.0.1:9090 -window 5m # wider history window
//	simstat -addr 127.0.0.1:9090 -once      # one plain-text frame, no ANSI
//	simstat -addr 127.0.0.1:9090 -once -json # one raw snapshot as JSON
//
// The console is read-only: every poll is a PSim.Read snapshot server-side,
// so watching a daemon never perturbs the wait-free hot path it reports on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/timeline"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "daemon metrics address serving /debug/timeline")
		window   = flag.Duration("window", time.Minute, "history window to query")
		interval = flag.Duration("interval", time.Second, "console refresh interval")
		series   = flag.String("series", "", "comma-separated series filter (empty = all)")
		once     = flag.Bool("once", false, "print one frame and exit")
		asJSON   = flag.Bool("json", false, "with -once, print the raw snapshot JSON")
	)
	flag.Parse()

	url := fmt.Sprintf("http://%s/debug/timeline?window=%s", *addr, *window)
	if *series != "" {
		// Series names carry label blocks (`map{shard="0"}`); escape them.
		url += "&series=" + neturl.QueryEscape(*series)
	}

	if *once {
		if err := oneShot(os.Stdout, url, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "simstat:", err)
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		var buf strings.Builder
		resp, err := fetch(url)
		if err != nil {
			buf.WriteString("simstat: " + err.Error() + "\n")
		} else {
			renderFrame(&buf, *addr, resp)
		}
		// Home + clear-to-end redraw: no flicker, stale rows never linger.
		fmt.Print("\x1b[H\x1b[2J" + buf.String())
		select {
		case <-sig:
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}

// oneShot prints a single frame (or the raw JSON document) and returns.
func oneShot(w io.Writer, url string, asJSON bool) error {
	if asJSON {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
		}
		_, err = io.Copy(w, resp.Body)
		return err
	}
	doc, err := fetch(url)
	if err != nil {
		return err
	}
	renderFrame(w, url, doc)
	return nil
}

// fetch pulls one timeline snapshot.
func fetch(url string) (timeline.ResponseJSON, error) {
	var doc timeline.ResponseJSON
	resp, err := http.Get(url)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return doc, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// renderFrame writes one console frame: header, the primary series' rate
// sparkline and latency line, the per-series table, SLO state, and the
// newest annotations.
func renderFrame(w io.Writer, target string, doc timeline.ResponseJSON) {
	names := make([]string, 0, len(doc.Series))
	for name := range doc.Series {
		names = append(names, name)
	}
	sort.Strings(names)

	primary, primaryOps := "", -1.0
	for _, name := range names {
		if strings.ContainsRune(name, '{') {
			continue // labeled sub-series never headline
		}
		if ops := totalOps(doc.Series[name]); ops > primaryOps {
			primary, primaryOps = name, ops
		}
	}
	if primary == "" && len(names) > 0 {
		primary = names[0]
	}

	fmt.Fprintf(w, "simstat — %s   window %s   %d series   %s\n\n",
		target, time.Duration(doc.WindowNs), len(doc.Series),
		time.Unix(0, doc.Now).Format("15:04:05"))

	if primary != "" {
		samples := doc.Series[primary]
		last := samples[len(samples)-1]
		rates := make([]float64, len(samples))
		for i, s := range samples {
			rates[i] = s.OpsPerSec
		}
		fmt.Fprintf(w, "%-24s %10.0f ops/s  %s\n", primary, last.OpsPerSec, sparkline(rates, 32))
		fmt.Fprintf(w, "%-24s p50 %-8s p90 %-8s p99 %-8s max %-8s cas-fail %5.1f%%  combine %.2f\n\n",
			"", fmtNs(last.LatP50), fmtNs(last.LatP90), fmtNs(last.LatP99), fmtNs(last.LatMax),
			last.CASFailRatio*100, last.CombineMean)
	}

	fmt.Fprintf(w, "%-32s %10s %7s %9s %9s %8s\n", "SERIES", "OPS/S", "CASF%", "P99", "MAX", "COMBINE")
	for _, name := range names {
		samples := doc.Series[name]
		last := samples[len(samples)-1]
		fmt.Fprintf(w, "%-32s %10.0f %7.1f %9s %9s %8.2f\n",
			name, last.OpsPerSec, last.CASFailRatio*100, fmtNs(last.LatP99), fmtNs(last.LatMax), last.CombineMean)
	}

	if len(doc.SLO) > 0 {
		fmt.Fprintf(w, "\nSLO\n")
		for _, st := range doc.SLO {
			state := "ok"
			if st.Breached {
				state = "BREACH"
			} else if !st.Evaluated {
				state = "warming"
			}
			fmt.Fprintf(w, " %-7s %-28s value %.4g", state, st.Name, st.Value)
			if st.Breached {
				fmt.Fprintf(w, "  since %s", time.Duration(st.SinceNs).Round(time.Second))
			}
			fmt.Fprintln(w)
		}
	}

	if n := len(doc.Annotations); n > 0 {
		fmt.Fprintf(w, "\nANNOTATIONS (%d in window)\n", n)
		const show = 5
		for _, a := range doc.Annotations[max(0, n-show):] {
			fmt.Fprintf(w, " %s %-14s %-28s value %.4g\n",
				time.Unix(0, a.TS).Format("15:04:05"), a.Kind, a.Ref, a.Value)
		}
	}
	if doc.Skipped > 0 {
		fmt.Fprintf(w, "\n(%d samples expired by retention before this query)\n", doc.Skipped)
	}
}

func totalOps(samples []timeline.SampleJSON) float64 {
	var t float64
	for _, s := range samples {
		t += float64(s.Ops)
	}
	return t
}

// sparkline renders values as a fixed-width block-glyph strip, scaled to
// the observed maximum (an empty strip for no data).
func sparkline(values []float64, width int) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	if len(values) > width {
		values = values[len(values)-width:]
	}
	var maxV float64
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * 7)
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// fmtNs renders a nanosecond quantity as a compact duration.
func fmtNs(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
