# Development targets for the Sim universal construction reproduction.

GO ?= go

.PHONY: all build vet test race short bench examples experiments check clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1 -timeout 900s

short:
	$(GO) test ./... -count=1 -short -timeout 300s

race:
	$(GO) test -race ./... -count=1 -timeout 1800s

bench:
	$(GO) test -bench=. -benchmem -timeout 3000s ./...

# Regenerate every figure/table at CI scale (paper scale: OPS=1000000 REPS=10).
OPS ?= 200000
REPS ?= 3
experiments:
	$(GO) run ./cmd/simbench -experiment all -ops $(OPS) -reps $(REPS)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bankaccount
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/largeobject
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/priorityqueue

# Linearizability + conservation stress across every implementation.
check:
	$(GO) run ./cmd/simcheck -object stack -impl sim
	$(GO) run ./cmd/simcheck -object stack -impl sim -mode linearize
	$(GO) run ./cmd/simcheck -object queue -impl sim
	$(GO) run ./cmd/simcheck -object queue -impl sim -mode linearize
	$(GO) run ./cmd/simcheck -object fmul -impl psim -mode linearize
	$(GO) run ./cmd/simcheck -object fmul -impl pool -mode linearize

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
