package obs

import (
	"time"

	"repro/internal/pad"
)

// DefaultSampleEvery is the default latency/combine sampling period: one in
// every 64 operations per thread reads the clock and records into the
// histograms. Counters are never sampled — a Sim-family instance counts every
// operation exactly in its core.StatsPlane — sampling only thins the
// *distribution* observations, whose two time.Now calls would otherwise
// dominate a sub-microsecond wait-free operation (BenchmarkObsOverhead
// quantifies this). Uniform 1-in-k sampling leaves quantile estimates
// unbiased; use SetSampleEvery(1) when exact per-op distributions matter more
// than hot-path cost (tests, network-bound servers).
const DefaultSampleEvery = 64

// sampleSlot is one thread's private sampling state: written and read only by
// the owning thread, padded so neighbours don't share its line.
type sampleSlot struct {
	seq     uint64
	sampled bool
	_       [pad.CacheLineSize - 9]byte
}

// SimRecorder bundles the distribution metrics a Sim-family instance
// (core.PSim, core.Sim, queue.SimQueue, …) reports on top of its exact
// StatsPlane counters: per-operation latency, the combining-degree
// distribution (Figure 2 right as a histogram, not just a mean), and backoff
// window growth events. All methods are nil-receiver safe no-ops, so a nil
// *SimRecorder IS the no-op recorder — instrumented code calls
// unconditionally and pays one predictable branch when observability is off.
type SimRecorder struct {
	OpLatency *Histogram // ns from announce to response (sampled)
	Combine   *Histogram // operations applied per successful publish (sampled)
	Retries   *Counter   // backoff Grow events (2nd-chance contention signal)

	mask    uint64 // sample when seq&mask == 0
	samples []sampleSlot
}

// NewSimRecorder registers a recorder's metrics under prefix in reg for n
// process ids: <prefix>_op_latency_ns, <prefix>_combine_degree,
// <prefix>_backoff_grow_total (a labeled prefix keeps its label block
// trailing, see Join). Sampling starts at DefaultSampleEvery.
func NewSimRecorder(reg *Registry, prefix string, n int) *SimRecorder {
	if n < 1 {
		n = 1
	}
	return &SimRecorder{
		OpLatency: reg.Histogram(Join(prefix, "_op_latency_ns"), n),
		Combine:   reg.Histogram(Join(prefix, "_combine_degree"), n),
		Retries:   reg.Counter(Join(prefix, "_backoff_grow_total"), n),
		mask:      DefaultSampleEvery - 1,
		samples:   make([]sampleSlot, n),
	}
}

// SetSampleEvery records the distributions on every k-th operation per
// thread (k rounds up to a power of two; k <= 1 records every operation).
// Call before the first operation; not safe concurrently with recording.
func (r *SimRecorder) SetSampleEvery(k int) {
	if r == nil {
		return
	}
	p := uint64(1)
	for p < uint64(k) {
		p <<= 1
	}
	r.mask = p - 1
}

// Stamp is a sampled operation's start time: monotonic nanoseconds since the
// recorder epoch, or 0 for an unsampled operation. One machine word, so
// instrumented hot paths carry it in a register instead of spilling a
// three-word time.Time across their combining rounds.
type Stamp int64

// epoch anchors Stamps; only differences of Stamps are meaningful.
// time.Since(epoch) stays on the runtime's monotonic clock.
var epoch = time.Now()

// now returns a non-zero monotonic stamp (0 is reserved for "unsampled").
func now() Stamp {
	if s := Stamp(time.Since(epoch)); s != 0 {
		return s
	}
	return 1
}

// Now returns the current monotonic stamp on the shared obs clock. The
// flight recorder (obs/trace) stamps its events with it so trace timestamps
// and recorder latencies are directly comparable.
func Now() Stamp { return now() }

// Start opens an operation for process id and returns its start stamp — 0
// when this operation is not sampled (or the recorder is nil), in which case
// no clock was read and the matching OpDone/OpPublished is a no-op.
func (r *SimRecorder) Start(id int) Stamp {
	if r == nil {
		return 0
	}
	s := &r.samples[id]
	hit := s.seq&r.mask == 0
	s.seq++
	s.sampled = hit
	if !hit {
		return 0
	}
	return now()
}

// OpPublished closes a sampled operation that completed by winning the
// publish CAS, having combined `combined` announced operations.
func (r *SimRecorder) OpPublished(id int, t0 Stamp, combined uint64) {
	if r == nil || t0 == 0 {
		return
	}
	r.Combine.Record(id, combined)
	r.OpLatency.Record(id, uint64(now()-t0))
}

// OpDone closes a sampled operation that completed without publishing —
// served by a helper's combine, or any path where no combining degree was
// observed.
func (r *SimRecorder) OpDone(id int, t0 Stamp) {
	if r == nil || t0 == 0 {
		return
	}
	r.OpLatency.Record(id, uint64(now()-t0))
}

// CombineObserved records a combining degree observed mid-operation (core.Sim
// publishes up to four times per ApplyOp, so its degree observations are
// decoupled from operation completion). Honours the current operation's
// sampling decision.
func (r *SimRecorder) CombineObserved(id int, combined uint64) {
	if r == nil || !r.samples[id].sampled {
		return
	}
	r.Combine.Record(id, combined)
}
