package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/backoff"
	"repro/internal/collect"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/xatomic"
)

// PSim is the practical Sim universal construction (Algorithms 2 and 3) for
// an arbitrary sequential object.
//
// Type parameters:
//   - S: the simulated object's state. Attempt works on a private copy of S
//     obtained with the Clone option (shallow copy by default, which is
//     correct when S is a value or an immutable pointer-to-structure).
//   - A: the argument type announced with each operation.
//   - R: the operation return type.
//
// Progress: Apply performs at most two combining rounds, then falls back to
// reading the published state, which by then must contain its result (the
// two-successful-CAS argument of Observation 3.2). With recycled records
// that terminal read needs hazard protection, and a protection attempt
// fails only when a concurrent CAS publishes meanwhile — so the fallback is
// lock-free (every retry is paid for by another operation completing)
// rather than strictly bounded; the same holds for Read(). Everything
// before the fallback is bounded. The theoretical variant (sim.go), which
// never recycles, keeps the paper's unqualified wait-freedom.
//
// Batching: each announce slot carries a VECTOR of operations
// (collect.BatchAnnounce); a combining round applies every announced
// process's whole pending vector in announce order, so one Fetch&Add + CAS
// cycle completes up to n×budget logical operations. ApplyBatch announces a
// caller's vector directly; Apply announces a vector of one. The two-round +
// fallback progress argument is unchanged — a round is bounded by
// n×DefaultBatchBudget sequential applications, still a constant for a given
// instance. Announce boxes are recycled with the same hazard discipline as
// state records; a box-protection failure means the announcing process
// re-announced, which requires an intervening successful publish, so the
// round is abandoned exactly like a failed CAS (see collect/batch.go).
//
// Memory discipline: like the paper's pool of State records, the hot path is
// allocation-free in steady state. Retired State records live in the unified
// memory plane (internal/alloc): each thread owns a two-stack handle of up to
// 2(n+1) records with O(1) get/put, whole chains of n+1 records move through
// a bounded shared pool when one thread retires what another consumes, and
// anything beyond the plane's O(threads × cache) bound is dropped to the GC —
// the Blelloch–Wei space guarantee the old per-thread rings lacked. Reissue
// goes through alloc.Typed over this instance's hazard table: readers protect
// the record they are reading with a hazard slot (one store plus one
// validating re-load — see recycle.go for why Observation 3.2 alone cannot
// license reuse under arbitrary preemption), and Typed.Get probes candidates
// against those slots, so a protected record is never rewritten. A CAS still
// installs a pointer that is not the current one, hence no ABA and no torn
// read; the race detector agrees. When every cached record is protected, the
// thread allocates fresh instead of waiting — recycling is an optimization,
// never a wait. WithLegacyRings restores the pre-plane per-thread Ring
// discipline for the alloc-churn ablation.
type PSim[S, A, R any] struct {
	n     int
	apply func(st *S, pid int, arg A) R
	clone func(S) S
	// cloneInto, when set, rebuilds dst from src reusing dst's buffers (the
	// recycled record's previous state) instead of allocating via clone.
	cloneInto func(dst, src *S)

	announce *collect.BatchAnnounce[A]
	act      *xatomic.SharedBits
	state    atomic.Pointer[psimState[S, R]]
	haz      *Hazards[psimState[S, R]]
	// pool is the unified memory plane for retired records (nil under
	// WithLegacyRings, which keeps the pre-plane per-thread Ring scheme).
	pool *alloc.Typed[psimState[S, R]]

	threads []psimThread[S, R]
	stats   *StatsPlane
	counter *xatomic.AccessCounter // optional Table 1 instrumentation
	rec     *obs.SimRecorder       // optional observability plane (nil = off)

	boLower, boUpper int
	batchBudget      int
}

// psimState is one published state record: the simulated state, the applied
// bit vector, the per-process return values (struct State of Algorithm 2
// minus the seq stamps — hazard-protected recycling makes torn reads
// impossible rather than merely detectable), and the per-process BATCH
// return vectors. brvals[k] holds the responses of k's last served vector
// when it had more than one element (a single-element vector answers through
// rvals[k] alone, so vector-free workloads only pay an empty-row copy per
// round). A record is immutable from the moment it is published until the
// memory plane reissues it. nextFree is the plane's intrusive free-chain
// link, dead while the record is live.
type psimState[S, R any] struct {
	applied  xatomic.Snapshot
	rvals    []R
	brvals   [][]R
	st       S
	nextFree *psimState[S, R]
}

// psimThread is a thread's private handle internals.
type psimThread[S, R any] struct {
	toggler *xatomic.Toggler
	bo      *backoff.Adaptive
	active  xatomic.Snapshot              // scratch: last read of Act
	diffs   xatomic.Snapshot              // scratch: applied XOR active
	blk     *alloc.Handle[psimState[S, R]] // memory-plane handle (default)
	ring    *Ring[psimState[S, R]]        // legacy retirement ring (ablation)
	inited  bool
}

// PSimOption configures a PSim instance.
type PSimOption[S any] func(*psimOptions[S])

type psimOptions[S any] struct {
	clone            func(S) S
	cloneInto        func(dst, src *S)
	boLower, boUpper int
	padActWords      bool
	batchBudget      int
	legacyRings      bool
}

// WithClone supplies a deep-copy function for the state, required when S
// contains shared mutable references (slices, maps) that combining rounds
// mutate in place.
func WithClone[S any](clone func(S) S) PSimOption[S] {
	return func(o *psimOptions[S]) { o.clone = clone }
}

// WithCloneInto supplies an in-place deep-copy: rebuild *dst from *src,
// reusing dst's existing buffers where possible. dst is either the state
// left in a recycled record (same shape as src) or the zero S (a fresh
// record), so the function must handle both, e.g. for a slice state:
//
//	func(dst, src *[]uint64) { *dst = append((*dst)[:0], *src...) }
//
// When set it replaces WithClone on the hot path, making combining rounds
// allocation-free for states whose buffers can be reused.
func WithCloneInto[S any](cloneInto func(dst, src *S)) PSimOption[S] {
	return func(o *psimOptions[S]) { o.cloneInto = cloneInto }
}

// WithBackoff bounds the adaptive backoff window to [lower, upper] spin
// iterations. upper = 0 disables backoff entirely (§4 notes P-Sim performs
// well even without it; the ablation bench quantifies the difference).
func WithBackoff[S any](lower, upper int) PSimOption[S] {
	return func(o *psimOptions[S]) { o.boLower, o.boUpper = lower, upper }
}

// WithPaddedAct spreads the Act bit vector one word per cache line instead
// of the paper's dense minimal-lines layout.
func WithPaddedAct[S any]() PSimOption[S] {
	return func(o *psimOptions[S]) { o.padActWords = true }
}

// WithLegacyRings restores the pre-plane reclamation scheme — one private
// Ring of 2n+2 retired records per thread, no shared handoff, no space bound
// beyond the rings themselves. It exists for the alloc-churn ablation
// (old-rings vs unified-plane); production instances should use the default
// memory plane.
func WithLegacyRings[S any]() PSimOption[S] {
	return func(o *psimOptions[S]) { o.legacyRings = true }
}

// WithBatchBudget bounds how many operations one announcement may carry;
// ApplyBatch splits longer vectors into budget-sized chunks, each its own
// announce/toggle round. The budget times n bounds the sequential work one
// combining round performs — the constant in the wait-freedom bound.
func WithBatchBudget[S any](b int) PSimOption[S] {
	return func(o *psimOptions[S]) {
		if b > 0 {
			o.batchBudget = b
		}
	}
}

// DefaultBackoffUpper is the default adaptive-backoff ceiling, in delay-loop
// iterations. It is deliberately modest: the right value is machine
// dependent and the harness sweeps it.
const DefaultBackoffUpper = 4096

// DefaultBatchBudget is the default per-announcement vector budget (see
// WithBatchBudget).
const DefaultBatchBudget = 64

// hazardAttempts bounds the per-round hazard acquisition loop. A failed
// attempt means a successful CAS intervened, so attempts failures imply that
// many publishes since the round began — enough for the Observation 3.2
// fallback argument — and the round is simply consumed, exactly like a
// failed seq1/seq2 consistency check in the pooled variant.
const hazardAttempts = 8

// anonReadSlots is the number of claimable hazard slots Read() draws from,
// on top of one slot per process id; more concurrent anonymous readers than
// this briefly queue on the claim words.
const anonReadSlots = 4

// NewPSim builds a P-Sim instance for n threads simulating a sequential
// object with initial state init and sequential operation apply. apply is
// called with a PRIVATE copy of the state it may mutate, the id of the
// process whose operation it is applying, and that operation's argument; it
// returns the operation's response.
func NewPSim[S, A, R any](n int, init S, apply func(st *S, pid int, arg A) R, opts ...PSimOption[S]) *PSim[S, A, R] {
	if n < 1 {
		panic("core: PSim needs n >= 1")
	}
	o := &psimOptions[S]{boLower: 1, boUpper: DefaultBackoffUpper, batchBudget: DefaultBatchBudget}
	for _, f := range opts {
		f(o)
	}
	clone := o.clone
	if clone == nil {
		clone = func(s S) S { return s }
	}
	var act *xatomic.SharedBits
	if o.padActWords {
		act = xatomic.NewSharedBitsPadded(n)
	} else {
		act = xatomic.NewSharedBits(n)
	}
	u := &PSim[S, A, R]{
		n:           n,
		apply:       apply,
		clone:       clone,
		cloneInto:   o.cloneInto,
		announce:    collect.NewBatchAnnounce[A](n),
		act:         act,
		haz:         NewHazards[psimState[S, R]](n, anonReadSlots),
		threads:     make([]psimThread[S, R], n),
		stats:       NewStatsPlane(n),
		boLower:     o.boLower,
		boUpper:     o.boUpper,
		batchBudget: o.batchBudget,
	}
	if !o.legacyRings {
		// The unified memory plane: chains of n+1 records (per-thread cache
		// 2(n+1), matching the old 2n+2 ring bound) moving through n shared
		// slots, reissue guarded by this instance's hazard table.
		pool := alloc.NewPool(n, alloc.Config[psimState[S, R]]{
			New: func() *psimState[S, R] {
				return &psimState[S, R]{
					applied: xatomic.NewSnapshot(n),
					rvals:   make([]R, n),
					brvals:  make([][]R, n),
				}
			},
			Next:    func(s *psimState[S, R]) *psimState[S, R] { return s.nextFree },
			SetNext: func(s, nx *psimState[S, R]) { s.nextFree = nx },
			Chain:   n + 1,
			Slots:   n,
		})
		u.pool = alloc.NewTyped(pool, u.haz)
		u.stats.AttachAllocPool("state", pool)
	}
	u.state.Store(&psimState[S, R]{
		applied: xatomic.NewSnapshot(n),
		rvals:   make([]R, n),
		brvals:  make([][]R, n),
		st:      init,
	})
	return u
}

// N returns the number of threads the instance was built for.
func (u *PSim[S, A, R]) N() int { return u.n }

// SetAccessCounter attaches shared-memory-access instrumentation (the
// Table 1 experiment: P-Sim performs O(k) accesses — the announce-array
// reads replace the theoretical construction's O(1) collect). Not safe to
// call concurrently with Apply.
func (u *PSim[S, A, R]) SetAccessCounter(c *xatomic.AccessCounter) { u.counter = c }

// SetRecorder attaches a distribution recorder: sampled per-operation
// latency, the combining-degree histogram, and backoff growth are recorded
// into rec's per-thread slots (single-writer, no coherence traffic — see
// internal/obs). Pass nil to disable; the hot path then pays one predictable
// branch per call site. Not safe to call concurrently with Apply; call before
// the first operation.
func (u *PSim[S, A, R]) SetRecorder(rec *obs.SimRecorder) { u.rec = rec }

// SetTracer attaches a flight recorder (see internal/obs/trace): committed
// rounds, publish failures, recycling hits/misses, backoff growth, and
// hazard-overflow events are recorded into tr's per-thread rings. Pass nil
// to disable (the hot path then pays one predictable branch per site, and
// the allocation-free steady state is preserved — event slots are
// preallocated, so it is preserved with tracing enabled too). Not safe to
// call concurrently with Apply; call before the first operation.
func (u *PSim[S, A, R]) SetTracer(tr *trace.Tracer) {
	u.stats.Trace = tr
	if tr != nil {
		u.haz.SetOverflowHook(func() { tr.AnonInstant(trace.KindHazardOverflow, 0, 0) })
	} else {
		u.haz.SetOverflowHook(nil)
	}
	if u.pool != nil {
		u.pool.Pool().SetTracer(tr)
	}
}

// RegisterStats publishes the instance's exact counters in reg under prefix
// without attaching a recorder (see StatsPlane.Register) — for structures
// that share one recorder across several instances (internal/simmap).
func (u *PSim[S, A, R]) RegisterStats(reg *obs.Registry, prefix string) {
	u.stats.Register(reg, prefix)
}

// Instrument publishes the instance in reg under prefix: the exact counters
// the hot path already maintains (see StatsPlane.Register) plus a new
// SimRecorder for the latency and combining-degree histograms, which is
// attached and returned (e.g. to adjust its sampling rate). Call before the
// first operation.
func (u *PSim[S, A, R]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	u.stats.Register(reg, prefix)
	rec := obs.NewSimRecorder(reg, prefix, u.n)
	u.SetRecorder(rec)
	return rec
}

// thread lazily initializes and returns thread i's private handle internals.
// Apply(i, …) must only ever be called by one goroutine per i, which makes
// the lazy init safe.
func (u *PSim[S, A, R]) thread(i int) *psimThread[S, R] {
	t := &u.threads[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(u.act, i)
		t.bo = backoff.NewAdaptive(u.boLower, u.boUpper)
		if u.rec != nil {
			t.bo.Instrument(u.rec.Retries, i)
		}
		if tr := u.stats.Trace; tr != nil {
			id := i
			t.bo.OnGrow(func(w int) { tr.Rare(id, trace.KindBackoffGrow, uint64(w), 0) })
		}
		t.active = xatomic.NewSnapshot(u.n)
		t.diffs = xatomic.NewSnapshot(u.n)
		if u.pool != nil {
			t.blk = u.pool.Pool().Handle(i)
		} else {
			t.ring = NewRing[psimState[S, R]](2*u.n + 2)
		}
		t.inited = true
	}
	return t
}

// record returns a State record for process i to build the next round into:
// an unprotected recycled record from the memory plane (or legacy ring), or
// a freshly allocated one when every cached record is still protected (or
// the plane is still warming up).
func (u *PSim[S, A, R]) record(i int, t *psimThread[S, R]) *psimState[S, R] {
	tr := u.stats.Trace
	if t.blk != nil {
		ns, fresh := u.pool.Get(t.blk)
		if !fresh {
			tr.Instant(i, trace.KindRecycleHit, uint64(t.blk.Cached()), 0)
			return ns
		}
		// A miss pays a fresh allocation, so the unconditional event is free
		// by comparison — and warmup misses make cache fill visible.
		tr.Rare(i, trace.KindRecycleMiss, uint64(t.blk.Cached()), 0)
		return ns
	}
	if ns := t.ring.PopFree(u.haz); ns != nil {
		tr.Instant(i, trace.KindRecycleHit, uint64(t.ring.Len()), 0)
		return ns
	}
	tr.Rare(i, trace.KindRecycleMiss, uint64(t.ring.Len()), 0)
	return &psimState[S, R]{
		applied: xatomic.NewSnapshot(u.n),
		rvals:   make([]R, u.n),
		brvals:  make([][]R, u.n),
	}
}

// retire returns a record to the memory plane (or legacy ring). Protected
// records are fine to retire: the plane re-checks hazards at reissue time.
func (u *PSim[S, A, R]) retire(t *psimThread[S, R], s *psimState[S, R]) {
	if t.blk != nil {
		u.pool.Put(t.blk, s)
		return
	}
	t.ring.Push(s)
}

// cloneStateInto rebuilds ns.st from ls.st, reusing ns's previous state
// buffers when a CloneInto was supplied.
func (u *PSim[S, A, R]) cloneStateInto(ns, ls *psimState[S, R]) {
	if u.cloneInto != nil {
		u.cloneInto(&ns.st, &ls.st)
		return
	}
	ns.st = u.clone(ls.st)
}

// forwardBatchResults carries every process's pending batch-result row from
// ls into ns: a process served several rounds ago must still find its
// responses in whatever record is current when it looks. Rows are copied by
// content into ns-owned storage (rows are never shared between records), and
// empty rows — every process that only ever announces single operations —
// cost one length check each.
func (u *PSim[S, A, R]) forwardBatchResults(ns, ls *psimState[S, R]) {
	for k := 0; k < u.n; k++ {
		if len(ls.brvals[k]) == 0 {
			ns.brvals[k] = ns.brvals[k][:0]
			continue
		}
		ns.brvals[k] = append(ns.brvals[k][:0], ls.brvals[k]...)
	}
}

// Apply announces operation arg on behalf of process i, participates in
// combining until the operation has been applied, and returns its response.
// Each process id must be driven by a single goroutine at a time.
func (u *PSim[S, A, R]) Apply(i int, arg A) R {
	if i < 0 || i >= u.n {
		panic(fmt.Sprintf("core: process id %d out of range [0,%d)", i, u.n))
	}
	t := u.thread(i)
	t0 := u.rec.Start(i)           // stamp 0 (no clock read) unless this op is sampled
	tt := u.stats.Trace.OpStart(i) // flight-recorder stamp, same sampling discipline

	if u.n == 1 {
		// Uncontended fast path: no helper can exist, so skip the announce
		// (nobody reads it), the Act toggle, and the backoff wait, and
		// publish with a plain store (process 0 is the only writer).
		var res []R
		r, _ := u.applySoloVec(t, t0, tt, arg, nil, res)
		return r
	}

	// line 1: announce the operation — a vector of one, copied into a
	// recycled announce box (no heap box per call; see collect/batch.go).
	u.announce.PublishOne(i, arg)
	SchedYield(i, PointAnnounce)
	t.toggler.Toggle() // lines 2–3: toggle pi's bit in Act (one F&A)
	u.counter.Add(i, 2)
	t.bo.Wait() // line 4: back off so helpers accumulate work

	r, _ := u.applyAnnounced(i, t, t0, tt, 1, nil)
	return r
}

// ApplyBatch announces the operation vector args on behalf of process i and
// returns the responses in args order, appended to res[:0] (pass a slice
// kept across calls for an allocation-free steady state; nil allocates).
// The whole vector is applied contiguously at one linearization point per
// budget-sized chunk: no other process's operation is interleaved within a
// chunk. Progress is Apply's: at most two combining rounds per chunk, then
// the lock-free hazard-protected fallback read. An empty args returns res
// truncated to zero length.
func (u *PSim[S, A, R]) ApplyBatch(i int, args []A, res []R) []R {
	if i < 0 || i >= u.n {
		panic(fmt.Sprintf("core: process id %d out of range [0,%d)", i, u.n))
	}
	res = res[:0]
	if len(args) == 0 {
		return res
	}
	t := u.thread(i)
	for len(args) > 0 {
		c := len(args)
		if c > u.batchBudget {
			c = u.batchBudget
		}
		chunk := args[:c]
		args = args[c:]

		t0 := u.rec.Start(i)
		tt := u.stats.Trace.OpStart(i)
		if u.n == 1 {
			var zero A
			_, res = u.applySoloVec(t, t0, tt, zero, chunk, res)
			continue
		}
		u.announce.Publish(i, chunk)
		SchedYield(i, PointAnnounce)
		t.toggler.Toggle()
		u.counter.Add(i, 2)
		t.bo.Wait()
		if c == 1 {
			var r R
			r, res = u.applyAnnounced(i, t, t0, tt, 1, res)
			res = append(res, r)
		} else {
			_, res = u.applyAnnounced(i, t, t0, tt, c, res)
		}
	}
	return res
}

// applyAnnounced runs the two-round combining protocol plus the Observation
// 3.2 fallback for process i's just-published announcement of m operations.
// For m == 1 the response is returned directly (res is untouched and may be
// nil); for m > 1 the m responses are appended to res. The caller has
// already announced, toggled, and backed off.
func (u *PSim[S, A, R]) applyAnnounced(i int, t *psimThread[S, R], t0, tt obs.Stamp, m int, res []R) (R, []R) {
	st := u.stats
	tr := st.Trace
	um := uint64(m)
	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ { // lines 5–27: at most two Attempt rounds
		// line 6: "LL" — read the state reference, hazard-protected so the
		// record cannot be recycled under us. A failed acquisition means
		// hazardAttempts publishes succeeded meanwhile; the round is consumed
		// like a failed seq-stamp check in the pooled variant.
		ls, ok := u.haz.Acquire(i, &u.state, hazardAttempts)
		u.counter.Add(i, 2)
		if !ok {
			st.CASFail.Inc(i)
			tr.Instant(i, trace.KindCASFail, uint64(j), 1)
			continue
		}
		SchedYield(i, PointCollect)
		u.act.LoadInto(t.active) // line 9: read Act
		u.counter.Add(i, uint64(u.act.Words()))
		// line 10: diffs = applied XOR active — the set of processes whose
		// announced operations have not been applied to ls.
		ls.applied.XorInto(t.active, t.diffs)

		// line 12: if pi's bit agrees, its vector has been applied; the
		// responses are already in ls (record protected — safe to read).
		if t.diffs[myWord]&myMask == 0 {
			var r R
			if m == 1 {
				r = ls.rvals[i]
			} else {
				res = append(res, ls.brvals[i]...)
			}
			u.haz.Clear(i) // don't pin ls while parked outside Apply
			st.Ops.Add(i, um)
			st.ServedBy.Add(i, um)
			u.rec.OpDone(i, t0)
			tr.OpServed(i, tt)
			return r, res
		}
		solo := t.diffs.IsOnlyBit(myWord, myMask)

		// Build the successor record: lines 8/14–21 work on a private copy
		// rebuilt into a recycled record — applied, rvals, and batch-result
		// buffers are reused, and the state clone reuses buffers too under
		// CloneInto.
		ns := u.record(i, t)
		ns.applied.CopyFrom(t.active)
		copy(ns.rvals, ls.rvals)
		u.forwardBatchResults(ns, ls)
		u.cloneStateInto(ns, ls)
		slots, ops := uint64(0), uint64(0)
		abandoned := false
		d := t.diffs
		for { // lines 15–19: help every process in diffs
			k := d.BitSearchFirst()
			if k < 0 {
				break
			}
			d.ClearBit(k)
			var vec []A
			if k == i {
				// Our own box is stable for the duration of the operation —
				// no protection needed.
				vec = u.announce.OwnVec(i)
			} else {
				// line 17: discover k's operation vector, hazard-protected so
				// k's box pool cannot rewrite it under us. A validation
				// failure means k re-announced — its previous vector
				// completed, so a publish succeeded after we loaded ls and
				// our CAS below is doomed: abandon the round like a failed
				// CAS (the staleness argument in collect/batch.go).
				b, bok := u.announce.Protect(i, k)
				if !bok {
					abandoned = true
					break
				}
				vec = b.Vec()
			}
			u.counter.Inc(i) // the O(k) announce reads of P-Sim
			if len(vec) == 1 {
				ns.rvals[k] = u.apply(&ns.st, k, vec[0])
				ns.brvals[k] = ns.brvals[k][:0]
			} else {
				row := ns.brvals[k][:0]
				for _, a := range vec {
					row = append(row, u.apply(&ns.st, k, a))
				}
				ns.brvals[k] = row
				ns.rvals[k] = row[len(row)-1]
			}
			slots++
			ops += uint64(len(vec))
		}
		u.announce.Clear(i) // done reading other processes' boxes
		if !abandoned {
			// Read our responses BEFORE publishing: once published, ns may
			// be retired and recycled by any later winner.
			var rv R
			base := len(res)
			if m == 1 {
				rv = ns.rvals[i]
			} else {
				res = append(res, ns.brvals[i]...)
			}

			// lines 22–25: try to publish. CAS on the pointer plays the role
			// of the CAS on the timestamped pool index.
			u.counter.Inc(i)
			SchedYield(i, PointCAS)
			if u.state.CompareAndSwap(ls, ns) {
				u.haz.Clear(i)  // unpin ls before retiring it to the plane
				u.retire(t, ls) // line 26's pool rotation: retire the old record
				st.Ops.Add(i, um)
				st.CASSuccess.Inc(i)
				st.Combined.Add(i, ops)
				u.rec.OpPublished(i, t0, slots)
				var act uint64
				if tt != 0 {
					act = uint64(t.active.PopCount()) // sampled rounds only
				}
				tr.OpCommit(i, tt, slots, act, ops)
				if j == 0 || solo {
					t.bo.Shrink() // low contention: waiting was wasted
				}
				return rv, res
			}
			res = res[:base] // speculative copies die with the failed round
		}
		u.retire(t, ns) // never published — immediately reusable
		st.CASFail.Inc(i)
		tr.Instant(i, trace.KindCASFail, uint64(j), 0)
		if j == 0 {
			t.bo.Grow() // line 13: contention detected — widen the window
			t.bo.Wait()
		}
	}

	// Lines 28–30: both rounds failed, so two successful CASes intervened;
	// the second one must have applied our operations (Observation 3.2 /
	// Lemma 3.3 carried to the practical algorithm — an abandoned round also
	// witnesses an intervening publish). Read and return under hazard
	// protection; each failed acquisition implies yet another concurrent
	// publish, so the unbounded form is lock-free.
	u.counter.Inc(i)
	ls, _ := u.haz.Acquire(i, &u.state, 0)
	var r R
	if m == 1 {
		r = ls.rvals[i]
	} else {
		res = append(res, ls.brvals[i]...)
	}
	u.haz.Clear(i)
	st.Ops.Add(i, um)
	st.ServedBy.Add(i, um)
	u.rec.OpDone(i, t0)
	tr.OpServed(i, tt)
	return r, res
}

// applySoloVec is Apply/ApplyBatch for n == 1: the announce array, Act
// toggle, backoff wait, and CAS all exist to coordinate with helpers, and a
// single-thread instance can never have one. When batch is nil the single
// operation arg is applied and its response returned; otherwise every
// operation of batch is applied in order and the responses appended to res.
// Records still rotate through the ring with a hazard scan so concurrent
// Read()ers stay safe.
func (u *PSim[S, A, R]) applySoloVec(t *psimThread[S, R], t0, tt obs.Stamp, arg A, batch []A, res []R) (R, []R) {
	ls := u.state.Load() // current record: never in the ring, safe to read
	ns := u.record(0, t)
	// applied stays all-zero (Act is never toggled on this path), but copy
	// it anyway so the record is well-formed if n==1 invariants ever change.
	ns.applied.CopyFrom(ls.applied)
	copy(ns.rvals, ls.rvals)
	// No helper ever reads a solo instance's batch rows; keep them empty.
	ns.brvals[0] = ns.brvals[0][:0]
	u.cloneStateInto(ns, ls)
	var rv R
	ops := uint64(1)
	if batch == nil {
		rv = u.apply(&ns.st, 0, arg)
		ns.rvals[0] = rv
	} else {
		ops = uint64(len(batch))
		for _, a := range batch {
			rv = u.apply(&ns.st, 0, a)
			res = append(res, rv)
		}
		ns.rvals[0] = rv
	}
	u.state.Store(ns) // sole writer: plain atomic publish
	u.retire(t, ls)
	u.counter.Add(0, 2)
	st := u.stats
	st.Ops.Add(0, ops)
	st.CASSuccess.Inc(0)
	st.Combined.Add(0, ops)
	u.rec.OpPublished(0, t0, 1)
	st.Trace.OpCommit(0, tt, 1, 1, ops)
	return rv, res
}

// Read returns a snapshot of the current simulated state without announcing
// an operation. It may be called from any goroutine. The record is protected
// by a claimable hazard slot while the snapshot is taken, and the snapshot
// is produced with the instance's clone function — under WithCloneInto the
// in-place copy runs into a zero S — so it shares no buffers that record
// recycling would later rewrite. Under the default shallow clone the
// returned value may alias the live state and must be treated as immutable
// (the same condition under which the shallow clone is correct at all).
// Lock-free: a Read retries only when a concurrent Apply publishes.
func (u *PSim[S, A, R]) Read() S {
	ls, slot := u.haz.AcquireAnon(&u.state)
	var s S
	if u.cloneInto != nil {
		u.cloneInto(&s, &ls.st)
	} else {
		s = u.clone(ls.st)
	}
	u.haz.ReleaseAnon(slot)
	return s
}

// Stats returns aggregated combining statistics (Figure 2 right: the average
// degree of helping is Stats().AvgHelping).
func (u *PSim[S, A, R]) Stats() Stats { return u.stats.Aggregate() }

// ResetStats zeroes the statistics counters.
func (u *PSim[S, A, R]) ResetStats() { u.stats.Reset() }
