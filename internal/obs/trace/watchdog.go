// Progress watchdog: the observable counterpart of the wait-freedom bound.
//
// The construction guarantees every announced operation completes within
// O(1) combining rounds of the whole system (each round's combiner applies
// EVERY announced operation it observes). The watchdog turns that theorem
// into a runtime check: it scans each process's started/committed progress
// counters, and a process that has an announced-but-uncommitted operation
// while the rest of the system commits more than `budget` operations is
// reported as stalled. A correct, live system never trips it; a lost
// wakeup, a deadlocked applier function, or a helping bug shows up as a
// named pid with a round count attached.
package trace

import (
	"sync"
	"time"
)

// Stall describes one process whose announced operation exceeded the
// round budget without completing.
type Stall struct {
	Pid     int           // the stalled process id
	Pending uint64        // announced-but-uncommitted operations (1 under the API contract)
	Rounds  uint64        // operations the REST of the system committed since the stall was first observed
	Since   time.Duration // wall time since the stall was first observed
}

// wdState is the watchdog's per-pid tracking state (watchdog-private; only
// Scan touches it, under mu).
type wdState struct {
	committed uint64    // committed counter at the last scan
	baseTotal uint64    // system-wide committed total when the stall was first observed
	since     time.Time // when the stall was first observed
	tracking  bool      // an uncommitted op has been observed across >= 1 scan
	reported  bool      // onStall already fired for this stall episode
}

// Watchdog periodically scans a Tracer's progress counters for processes
// whose announced operation has not committed within a configurable budget
// of system-wide commits. Create with NewWatchdog; drive either with
// Start/Stop (background goroutine) or by calling Scan directly.
type Watchdog struct {
	t       *Tracer
	budget  uint64
	onStall func(Stall)

	mu    sync.Mutex
	state []wdState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatchdog returns a watchdog over t. budget is the number of
// system-wide commits an announced operation may be outlived by before its
// process is reported (values below the process count are rounded up to
// it — one full round can legitimately commit n operations). onStall, if
// non-nil, is invoked once per stall episode from the scanning goroutine
// (or Scan caller).
func NewWatchdog(t *Tracer, budget uint64, onStall func(Stall)) *Watchdog {
	if n := uint64(t.N()); budget < n {
		budget = n
	}
	return &Watchdog{
		t:       t,
		budget:  budget,
		onStall: onStall,
		state:   make([]wdState, t.N()),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Scan performs one pass over the progress counters and returns the
// processes currently stalled beyond the budget. A stall is counted from
// the first scan that observes the uncommitted operation, so detection
// needs two scans: one to arm, one to measure — call it at an interval
// shorter than the timescale you care about. Safe for concurrent use.
func (w *Watchdog) Scan() []Stall {
	n := w.t.N()
	started := make([]uint64, n)
	committed := make([]uint64, n)
	var total uint64
	for i := 0; i < n; i++ {
		started[i], committed[i] = w.t.Progress(i)
		total += committed[i]
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	var stalls []Stall
	for i := 0; i < n; i++ {
		s := &w.state[i]
		if committed[i] > s.committed || started[i] == committed[i] {
			// Progress since the last scan, or idle: not stalled.
			s.committed = committed[i]
			s.tracking = false
			s.reported = false
			continue
		}
		// started > committed and no commit since the last scan.
		if !s.tracking {
			s.tracking = true
			s.baseTotal = total
			s.since = time.Now()
			continue
		}
		// Every commit since baseTotal is someone else's: pid i has not
		// committed, or the first branch would have caught it.
		elapsed := total - s.baseTotal
		if elapsed <= w.budget {
			continue
		}
		st := Stall{
			Pid:     i,
			Pending: started[i] - committed[i],
			Rounds:  elapsed,
			Since:   time.Since(s.since),
		}
		stalls = append(stalls, st)
		if !s.reported {
			s.reported = true
			if w.onStall != nil {
				w.onStall(st)
			}
		}
	}
	return stalls
}

// Start launches the scanning goroutine at the given interval. Stop halts
// it. Start may be called once.
func (w *Watchdog) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.Scan()
			}
		}
	}()
}

// Stop halts the scanning goroutine and waits for it to exit. Safe to call
// multiple times; a Watchdog that was never Started must not be Stopped.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
