//go:build !race

package timeline

// raceEnabled reports whether the race detector is on. The detector's
// shadow-memory machinery allocates on its own, so the strict steady-state
// allocation bounds only hold without it.
const raceEnabled = false
