// Package check provides concurrent-history recording and a Wing–Gong style
// linearizability checker, used by the test suite to validate that every
// stack/queue/universal-object implementation in the repository is
// linearizable (the correctness condition of §2) on adversarially
// interleaved small histories, complementing the large-scale structural
// stress tests.
package check

import (
	"fmt"
	"sync/atomic"
)

// Operation is one completed operation of a recorded history.
type Operation struct {
	Thread int
	Op     string // operation name, interpreted by the Spec
	Arg    uint64
	Ret    uint64
	RetOK  bool  // auxiliary response flag (e.g. pop/dequeue non-empty)
	Invoke int64 // logical invocation timestamp
	Return int64 // logical response timestamp
}

// String renders the operation compactly for failure messages.
func (o Operation) String() string {
	return fmt.Sprintf("t%d %s(%d)=(%d,%v)@[%d,%d]", o.Thread, o.Op, o.Arg, o.Ret, o.RetOK, o.Invoke, o.Return)
}

// Recorder collects a concurrent history. Invoke/Return draw timestamps from
// one atomic clock, so the happens-before order of non-overlapping
// operations is captured exactly: if op A's Return timestamp was drawn
// before op B's Invoke timestamp, then A really responded before B was
// invoked.
type Recorder struct {
	clock atomic.Int64
	next  atomic.Int64
	ops   []Operation // preallocated; indexed by slot
}

// NewRecorder returns a recorder for up to capacity operations.
func NewRecorder(capacity int) *Recorder {
	return &Recorder{ops: make([]Operation, capacity)}
}

// Invoke records the invocation of an operation and returns its slot, to be
// passed to Return. It must be called BEFORE the operation's first step.
func (r *Recorder) Invoke(thread int, op string, arg uint64) int {
	slot := int(r.next.Add(1) - 1)
	if slot >= len(r.ops) {
		panic("check: recorder capacity exceeded")
	}
	r.ops[slot] = Operation{
		Thread: thread, Op: op, Arg: arg,
		Invoke: r.clock.Add(1),
	}
	return slot
}

// Return records the response of the operation in slot. It must be called
// AFTER the operation's last step.
func (r *Recorder) Return(slot int, ret uint64, ok bool) {
	r.ops[slot].Ret = ret
	r.ops[slot].RetOK = ok
	r.ops[slot].Return = r.clock.Add(1)
}

// Operations returns the completed history. Call only after all recorded
// operations have returned.
func (r *Recorder) Operations() []Operation {
	return r.ops[:r.next.Load()]
}
