// Command simbench regenerates the paper's tables and figures on the local
// machine. Each experiment prints the rows/series the corresponding figure
// plots, plus the speedup ratios the paper quotes in prose.
//
// Usage:
//
//	simbench -experiment fig2        # Figure 2 left: Fetch&Multiply sweep
//	simbench -experiment fig2-batch  # batched ApplyBatch throughput (-batch 1,16)
//	simbench -experiment map-sharded # sharded map sweep (-shards 1,4)
//	simbench -experiment ingest      # ingest pipeline events/sec + p99 append latency (-ingest-batch 1,8,32)
//	simbench -experiment fig2help    # Figure 2 right: helping degree
//	simbench -experiment fig3stack   # Figure 3 left: stacks
//	simbench -experiment fig3queue   # Figure 3 right: queues
//	simbench -experiment table1      # Table 1: accesses per operation
//	simbench -experiment ablation-backoff
//	simbench -experiment ablation-publication
//	simbench -experiment ablation-act
//	simbench -experiment all
//
// -experiment also accepts a comma-separated list, and -json FILE writes
// machine-readable results (ns/op, allocs/op, helping degree) for whatever
// ran — `make bench-json` uses this to refresh BENCH_psim.json.
//
// Flags -ops, -reps, -threads and -maxwork rescale the runs; the paper's
// full-size configuration is -ops 1000000 -reps 10.
//
// -timeline-dump FILE scrapes the harness into a telemetry timeline
// (internal/obs/timeline) every -timeline-every while experiments run and
// writes the whole history — a "harness" series of ops/sec and latency
// percentiles per scrape tick — as timeline ResponseJSON, the same document
// the daemons serve at /debug/timeline.
//
// -flight FILE attaches the wait-free flight recorder to every Sim-family
// instance and writes a Chrome trace_event JSON of the newest
// combining-round events (one track per process id, round duration and
// degree of combining as args) — open it in chrome://tracing or Perfetto.
// -flight-sample N thins recording to one in N operations per thread.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/obs/trace"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which experiment to run (fig2, fig2-batch, fig2help, fig3stack, fig3queue, table1, lsim, largeobject-crossover, map, map-sharded, ingest, alloc-churn, ablation-backoff, ablation-publication, ablation-act, all)")
		ops     = flag.Int("ops", 100_000, "total operations per run (paper: 1000000)")
		reps    = flag.Int("reps", 3, "repetitions per configuration (paper: 10)")
		threads = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread counts")
		maxWork = flag.Int("maxwork", 512, "max dummy-loop iterations between operations (paper: 512)")
		csvOut  = flag.Bool("csv", false, "also print CSV series")
		withMCS = flag.Bool("mcs", false, "include the MCS lock in fig2 (paper footnote 2)")
		latency = flag.Bool("latency", false,
			"record per-op latency distributions (p50/p99/max columns); inflates mean times by ~2 clock reads per op")
		obsEvery = flag.Duration("obs-every", 0,
			"periodically dump a JSON metrics delta to stderr while experiments run (0 disables)")
		timelineDump = flag.String("timeline-dump", "",
			"scrape the harness into a telemetry timeline while experiments run and write the full history (timeline ResponseJSON) to this file")
		timelineEvery = flag.Duration("timeline-every", 250*time.Millisecond,
			"scrape interval for -timeline-dump")
		jsonOut = flag.String("json", "",
			"write machine-readable results (ns/op, allocs/op, helping) for the experiments run to this file")
		flightOut = flag.String("flight", "",
			"attach the flight recorder to Sim-family instances and write a Chrome trace_event JSON of the newest round events to this file")
		flightSample = flag.Int("flight-sample", 1,
			"with -flight, record one in N operations per thread (1 = every op)")
		batches = flag.String("batch", "1,16",
			"comma-separated batch sizes for fig2-batch (ops per ApplyBatch call; 1 = plain Apply)")
		ingestBatches = flag.String("ingest-batch", "1,8,32",
			"comma-separated producer batch sizes for the ingest experiment")
		shards = flag.String("shards", "1,4",
			"comma-separated shard counts for map-sharded (rounded up to powers of two)")
		vsizes = flag.String("vsize", "16,256,1024,4096",
			"comma-separated value sizes in bytes for largeobject-crossover")
	)
	flag.Parse()

	tc, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(2)
	}
	bc, err := parseThreads(*batches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: -batch:", err)
		os.Exit(2)
	}
	shc, err := parseThreads(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: -shards:", err)
		os.Exit(2)
	}
	ibc, err := parseThreads(*ingestBatches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: -ingest-batch:", err)
		os.Exit(2)
	}
	vsc, err := parseThreads(*vsizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: -vsize:", err)
		os.Exit(2)
	}
	cfg := harness.Config{
		Threads:  tc,
		TotalOps: *ops,
		MaxWork:  *maxWork,
		Reps:     *reps,
		Seed:     1,
		Latency:  *latency,
	}
	var flight *trace.Tracer
	if *flightOut != "" {
		maxN := 1
		for _, n := range tc {
			if n > maxN {
				maxN = n
			}
		}
		flight = trace.New(maxN, trace.WithSampleEvery(*flightSample))
		cfg.Tracer = flight
	}
	var tl *timeline.Timeline
	if *timelineDump != "" {
		// The timeline resolves its series at construction, so the harness
		// metrics must exist first: pre-register them at the sweep's max
		// width (the harness get-or-creates the same objects later).
		maxN := 1
		for _, n := range tc {
			if n > maxN {
				maxN = n
			}
		}
		reg := obs.NewRegistry()
		cfg.Registry = reg
		reg.Counter("harness_ops_total", maxN)
		reg.Histogram("harness_op_latency_ns", maxN)
		tl = timeline.New(reg, timeline.Config{Interval: *timelineEvery})
		tl.Start()
	}
	if *obsEvery > 0 {
		// Live observability: the harness records into a registered metric
		// and a dumper prints per-interval deltas without pausing the runs.
		reg := cfg.Registry
		if reg == nil {
			reg = obs.NewRegistry()
			cfg.Registry = reg
		}
		ticker := time.NewTicker(*obsEvery)
		defer ticker.Stop()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-ticker.C:
					fmt.Fprintf(os.Stderr, "# obs delta @ %s\n", time.Now().Format(time.RFC3339))
					_ = obs.WriteJSON(os.Stderr, reg.Delta())
				case <-stop:
					return
				}
			}
		}()
	}

	collected := map[string][]harness.Result{}
	run := func(name string) {
		switch name {
		case "fig2":
			collected[name] = runSweep(cfg, "Figure 2 (left): Fetch&Multiply, time for total ops",
				experiments.Fig2Makers(*withMCS), "P-Sim", *csvOut)
		case "fig2-batch":
			collected[name] = runSweep(cfg, fmt.Sprintf(
				"Figure 2 batch sweep: ApplyBatch op-vectors (batch sizes %v)", bc),
				experiments.Fig2BatchMakers(bc), "P-Sim b=1", *csvOut)
		case "map-sharded":
			b := bc[len(bc)-1]
			collected[name] = runSweep(cfg, fmt.Sprintf(
				"Sharded map sweep: shard counts %v, MSet batch %d", shc, b),
				experiments.ShardedMapMakers(shc, b), fmt.Sprintf("Sharded(%d) b=%d", shc[len(shc)-1], b), *csvOut)
		case "ingest":
			// The ingest acceptance gate reads p99 append latency, so this
			// experiment always records latency distributions.
			icfg := cfg
			icfg.Latency = true
			collected[name] = runSweep(icfg, fmt.Sprintf(
				"Ingest pipeline: append+drain through queue and spool (batch sizes %v)", ibc),
				experiments.IngestMakers(ibc), fmt.Sprintf("Ingest b=%d", ibc[len(ibc)-1]), *csvOut)
		case "fig2help":
			fmt.Println("== Figure 2 (right): average degree of helping ==")
			res := harness.Run(cfg, experiments.Fig2Makers(*withMCS))
			collected[name] = res
			fmt.Println(harness.HelpingTable(res))
		case "fig3stack":
			collected[name] = runSweep(cfg, "Figure 3 (left): stacks, time for total push+pop pairs",
				experiments.Fig3StackMakers(), "SimStack", *csvOut)
		case "fig3queue":
			collected[name] = runSweep(cfg, "Figure 3 (right): queues, time for total enq+deq pairs",
				experiments.Fig3QueueMakers(), "SimQueue", *csvOut)
		case "table1":
			fmt.Println("== Table 1: shared-memory accesses per operation ==")
			opsPer := *ops / 100
			if opsPer < 100 {
				opsPer = 100
			}
			rows := experiments.Table1Measure(cfg.Threads, opsPer)
			fmt.Println(experiments.Table1Render(rows))
		case "lsim":
			fmt.Println("== L-Sim vs P-Sim on large objects (the paper's deferred experiment) ==")
			fmt.Printf("   object sizes 16/256/4096 words, w=2 cells touched per op\n\n")
			small := cfg
			small.TotalOps = cfg.TotalOps / 10 // the s=4096 P-Sim rows are O(s) per op
			if small.TotalOps < 1000 {
				small.TotalOps = 1000
			}
			res := experiments.LargeObjectSweep(small, []int{16, 256, 4096})
			collected[name] = res
			fmt.Println(harness.Table(res))
			if *csvOut {
				fmt.Println(harness.CSV(res))
			}
		case "largeobject-crossover":
			fmt.Println("== Large-value crossover: P-Sim flat slab vs L-Sim items vs MultiPSim(4) ==")
			fmt.Printf("   %d keys, value sizes %v bytes, 16-payload pool, overwrite workload\n\n",
				64, vsc)
			// The v=4096 P-Sim rows memcpy a 256KB slab per round; scale the
			// op count down like the lsim experiment does.
			small := cfg
			small.TotalOps = cfg.TotalOps / 10
			if small.TotalOps < 1000 {
				small.TotalOps = 1000
			}
			res := experiments.LargeValueCrossoverSweep(small, vsc)
			collected[name] = res
			fmt.Println(harness.Table(res))
			for _, v := range vsc {
				fmt.Println(harness.Speedups(res, fmt.Sprintf("P-Sim flat(v=%d)", v)))
			}
			if *csvOut {
				fmt.Println(harness.CSV(res))
			}
		case "map":
			collected[name] = runSweep(cfg, "Striped map: multiple Sim instances vs one",
				experiments.MapContentionMakers(8), "Map(8-stripes)", *csvOut)
		case "alloc-churn":
			collected[name] = runSweep(cfg, "Memory plane: unified allocator vs per-thread recycling rings",
				experiments.AllocChurnMakers(), "P-Sim rings", *csvOut)
		case "ablation-backoff":
			collected[name] = runSweep(cfg, "Ablation: adaptive backoff vs none",
				experiments.AblationBackoffMakers(), "P-Sim(backoff)", *csvOut)
		case "ablation-publication":
			collected[name] = runSweep(cfg, "Ablation: GC state publication vs paper-exact pool/seqlock",
				experiments.AblationPublicationMakers(), "P-Sim(GC)", *csvOut)
		case "ablation-act":
			collected[name] = runSweep(cfg, "Ablation: dense vs padded Act bit-vector layout",
				experiments.AblationActLayoutMakers(), "Act-dense", *csvOut)
		default:
			fmt.Fprintf(os.Stderr, "simbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{
			"fig2", "fig2-batch", "fig2help", "fig3stack", "fig3queue", "table1", "lsim",
			"largeobject-crossover", "map", "map-sharded", "ingest", "alloc-churn",
			"ablation-backoff", "ablation-publication", "ablation-act",
		}
	}
	for _, name := range names {
		run(strings.TrimSpace(name))
		if len(names) > 1 {
			fmt.Println()
		}
	}

	if tl != nil {
		tl.Stop()
		tl.Scrape() // catch the tail of the last run
		doc := tl.Query(0, 0, nil)
		data, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*timelineDump, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench: writing timeline:", err)
			os.Exit(1)
		}
		samples := 0
		for _, s := range doc.Series {
			samples += len(s)
		}
		fmt.Printf("wrote %s (%d series, %d samples at %s)\n",
			*timelineDump, len(doc.Series), samples, *timelineEvery)
	}

	if flight != nil {
		f, err := os.Create(*flightOut)
		if err == nil {
			err = trace.WriteChrome(f, flight.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench: writing flight trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events; open in chrome://tracing or Perfetto)\n",
			*flightOut, len(flight.Snapshot()))
	}

	if *jsonOut != "" {
		data, err := harness.BenchJSON(collected)
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench: writing json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonOut, len(collected))
	}
}

func runSweep(cfg harness.Config, title string, makers []harness.Maker, target string, csvOut bool) []harness.Result {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("   total ops %d, reps %d, max inter-op work %d iters\n\n",
		cfg.TotalOps, cfg.Reps, cfg.MaxWork)
	res := harness.Run(cfg, makers)
	fmt.Println(harness.Table(res))
	if cfg.Latency || cfg.Registry != nil {
		fmt.Println("per-operation latency distribution:")
		fmt.Println(harness.LatencyTable(res))
	}
	fmt.Println(harness.Chart(res, 14))
	fmt.Println(harness.Speedups(res, target))
	if csvOut {
		fmt.Println(harness.CSV(res))
	}
	return res
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
