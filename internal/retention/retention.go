// Package retention is the compaction stage of the spool-backed logs: a
// policy (age bound, sealed-segment bound, retained-entry bound) plus a
// pass that applies the policy to a spool as ONE ApplyBatch op-vector.
// Because the universal construction linearizes a batch contiguously at a
// single announce slot, the whole expiry decision — seal the aged active
// tail, drop aged segments, enforce the count bounds — takes effect at one
// linearization point: no consumer can ever observe half a retention pass.
// It is generic over the spool's entry type, so the ingest pipeline's event
// log and the telemetry timeline's sample log share one expiry engine.
package retention

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spool"
)

// Policy bounds what the spool retains. Zero fields disable that bound.
type Policy struct {
	// MaxAge expires entries older than this (whole sealed segments; the
	// active segment is first sealed if its oldest entry is past the bound,
	// so a quiescent log still drains).
	MaxAge time.Duration
	// MaxSegments caps the sealed-segment ring.
	MaxSegments int
	// MaxEvents caps retained entries; excess expires from the front
	// (segment-granular in the sealed ring, exact in the active segment).
	MaxEvents int
}

// enabled reports whether the policy bounds anything at all.
func (p Policy) enabled() bool {
	return p.MaxAge > 0 || p.MaxSegments > 0 || p.MaxEvents > 0
}

// Runner periodically applies a Policy to a spool on behalf of one process
// id. The id must be reserved for the runner — the construction's announce
// slots are single-writer.
type Runner[E spool.Entry] struct {
	sp  *spool.Spool[E]
	id  int
	pol Policy
	// Now is the clock (unix nanos); tests override it. Defaults to the
	// wall clock.
	Now func() int64

	lwm    atomic.Uint64 // last observed low watermark (retention HWM)
	passes atomic.Uint64

	mu   sync.Mutex // guards start/stop transitions
	stop chan struct{}
	done chan struct{}

	ops [4]spool.Op[E] // scratch: a pass allocates nothing
}

// NewRunner returns a runner applying pol via process id on sp.
func NewRunner[E spool.Entry](sp *spool.Spool[E], id int, pol Policy) *Runner[E] {
	return &Runner[E]{sp: sp, id: id, pol: pol, Now: func() int64 { return time.Now().UnixNano() }}
}

// Pass runs one compaction pass now and returns the new low watermark. The
// policy legs are submitted as a single op-vector, so the pass is one
// linearizable step.
func (r *Runner[E]) Pass() uint64 {
	ops := r.ops[:0]
	if r.pol.MaxAge > 0 {
		cutoff := r.Now() - r.pol.MaxAge.Nanoseconds()
		ops = append(ops, spool.SealAgedOp[E](cutoff), spool.TrimAgeOp[E](cutoff))
	}
	if r.pol.MaxSegments > 0 {
		ops = append(ops, spool.TrimSegmentsOp[E](r.pol.MaxSegments))
	}
	if r.pol.MaxEvents > 0 {
		v := r.sp.Snapshot()
		if end := v.End(); end > uint64(r.pol.MaxEvents) {
			ops = append(ops, spool.TrimToOp[E](end-uint64(r.pol.MaxEvents)))
		}
	}
	if len(ops) == 0 {
		// Nothing to trim this pass; it still counts — Passes() is the
		// runner's liveness signal (simingestd smoke asserts it moved).
		v := r.sp.Snapshot()
		r.lwm.Store(v.LowWater())
		r.passes.Add(1)
		return v.LowWater()
	}
	lwm := r.sp.Do(r.id, ops...)
	r.lwm.Store(lwm)
	r.passes.Add(1)
	return lwm
}

// Start launches the periodic pass loop (no-op for an empty policy).
func (r *Runner[E]) Start(every time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil || !r.pol.enabled() {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Pass()
			}
		}
	}(r.stop, r.done)
}

// Stop halts the loop and waits for an in-flight pass to finish.
func (r *Runner[E]) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
}

// LowWater returns the low watermark observed by the most recent pass —
// the retention high-watermark: every offset below it is gone.
func (r *Runner[E]) LowWater() uint64 { return r.lwm.Load() }

// Passes returns the number of completed compaction passes, including
// passes that found nothing to trim — a liveness counter for the loop.
func (r *Runner[E]) Passes() uint64 { return r.passes.Load() }
