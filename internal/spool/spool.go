// Package spool is a segmented in-memory log driven entirely through the
// P-Sim universal construction (internal/core). The sequential object under
// the UC is an append log — generic over its entry type since the telemetry
// timeline (internal/obs/timeline) reuses it for metric samples — whose
// state is a bounded ring of SEALED segments plus one ACTIVE segment being
// filled:
//
//	sealed (immutable, shared)          active (private per clone)
//	[seg0][seg1][seg2] ............ [ entries being appended ]
//	 ^ low watermark                                ^ next offset
//
// Every entry receives a globally contiguous uint64 offset at its
// linearization point, so the retained range is always one interval
// [LowWater, End): consumers address the log by offset, and a cursor below
// the low watermark has simply lost entries to retention (a gap the reader
// can observe and count, never silently misorder).
//
// The split between sealed and active is what keeps the state cheap to
// clone under the construction's copy-publish discipline (paper §2, the
// clone in SIM's combining round):
//
//   - Sealed segments are immutable. The clone copies only the slice of
//     pointers; a thousand sealed entries cost eight bytes to clone. Because
//     a sealed segment is never written again, snapshots taken via
//     PSim.Read may share its backing array indefinitely.
//   - The active segment is deep-copied into the destination record's
//     recycled buffer (core.WithCloneInto), so steady-state appends reuse
//     the 2n+2 pooled buffers and allocate nothing.
//
// Sealing moves the active buffer — the publishing record's private copy —
// into a fresh Segment and resets the active slice to nil, so exactly one
// owner ever existed for that buffer before it froze. Retention (trim
// operations) drops whole sealed segments from the front and may also trim
// the active segment's prefix in place (the active copy is private to the
// clone, so an in-place shift is safe and allocation-free).
package spool

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Entry is the constraint on what a spool stores: any fixed-size value that
// can report its timestamp (unix nanos). The timestamp drives time-bucketed
// sealing and age-based retention; an entry type that never uses either may
// return 0.
type Entry interface {
	Stamp() int64
}

// Event is one ingested record — the entry type of the ingest pipeline.
// Producer+Seq identify the event at its source (per-producer sequence
// stamps assigned by internal/ingest); TS is the ingest timestamp (unix
// nanos) used for time-bucketed sealing and age-based retention; Payload is
// the application value.
type Event struct {
	Payload  uint64
	Seq      uint64
	TS       int64
	Producer int32
	_        int32 // keep the struct 8-byte aligned and 32 bytes wide
}

// Stamp returns the ingest timestamp, satisfying Entry.
func (e Event) Stamp() int64 { return e.TS }

// Segment is a sealed run of consecutive entries. Base is the global offset
// of Entries[0]; FirstTS/LastTS bound the timestamps it covers. Sealed
// segments are immutable: snapshots and the live state share them.
type Segment[E Entry] struct {
	Base    uint64
	FirstTS int64
	LastTS  int64
	Entries []E
}

// End returns the offset one past the segment's last entry.
func (s *Segment[E]) End() uint64 { return s.Base + uint64(len(s.Entries)) }

// Config sizes the spool.
type Config struct {
	// SegEvents seals the active segment after this many entries
	// (default 256). Smaller segments cost more seal allocations but make
	// clones — and therefore combining rounds — cheaper.
	SegEvents int
	// BucketNs additionally seals the active segment when the incoming
	// entry's timestamp is more than BucketNs past the segment's first —
	// the time bucketing that gives age-based retention whole segments to
	// drop. 0 disables time bucketing.
	BucketNs int64
	// MaxSegments bounds the sealed ring (default 64). Sealing past the
	// bound drops the oldest segment and advances the low watermark — the
	// spool is bounded even if no retention pass ever runs.
	MaxSegments int
	// PreallocEvents pre-sizes the active buffer of the initial state (and
	// the recycled clone buffers as they first fill) so steady-state
	// workloads below that size never grow a buffer mid-publish. 0 means
	// grow on demand.
	PreallocEvents int
}

func (c Config) withDefaults() Config {
	if c.SegEvents <= 0 {
		c.SegEvents = 256
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 64
	}
	return c
}

// state is the sequential append-log object applied under the UC.
type state[E Entry] struct {
	sealed []*Segment[E] // immutable segments, oldest first
	active Segment[E]    // deep-copied per clone; Entries may be nil
	next   uint64        // next offset to assign
	lwm    uint64        // oldest retained offset

	sealedTotal  uint64 // segments sealed since birth
	expiredTotal uint64 // entries dropped by retention or the ring bound
}

// opKind tags the operations of the sequential object.
type opKind uint8

const (
	opAppend   opKind = iota // Ev: append one entry
	opSeal                   // seal the active segment if non-empty
	opSealAged               // seal the active segment if it started before Arg (ns)
	opTrimAge                // drop sealed segments whose LastTS < int64(Arg)
	opTrimSegs               // drop oldest sealed segments beyond Arg remaining
	opTrimTo                 // drop entries below offset Arg (sealed whole-segment, active in place)
)

// Op is one operation of the append-log object. Build values with AppendOp
// and the Trim*/Seal* constructors; a retention pass submits several trim
// legs as ONE ApplyBatch vector, which the construction linearizes
// contiguously — expiry is itself a single linearizable step.
type Op[E Entry] struct {
	Kind opKind
	Arg  uint64
	Ev   E
}

// AppendOp appends ev; the op's result is the assigned offset.
func AppendOp[E Entry](ev E) Op[E] { return Op[E]{Kind: opAppend, Ev: ev} }

// SealOp seals the active segment if non-empty; result is the low watermark.
func SealOp[E Entry]() Op[E] { return Op[E]{Kind: opSeal} }

// SealAgedOp seals the active segment if its first entry predates cutoff
// (unix nanos) — so age-based retention can expire a quiescent tail.
func SealAgedOp[E Entry](cutoff int64) Op[E] { return Op[E]{Kind: opSealAged, Arg: uint64(cutoff)} }

// TrimAgeOp drops sealed segments wholly older than cutoff (unix nanos);
// result is the new low watermark.
func TrimAgeOp[E Entry](cutoff int64) Op[E] { return Op[E]{Kind: opTrimAge, Arg: uint64(cutoff)} }

// TrimSegmentsOp drops the oldest sealed segments until at most max remain;
// result is the new low watermark.
func TrimSegmentsOp[E Entry](max int) Op[E] { return Op[E]{Kind: opTrimSegs, Arg: uint64(max)} }

// TrimToOp drops every entry with offset below off (clamped to the retained
// range); result is the new low watermark. Sealed segments are dropped
// whole; the active segment is trimmed in place.
func TrimToOp[E Entry](off uint64) Op[E] { return Op[E]{Kind: opTrimTo, Arg: off} }

// Spool is the wait-free segmented log: a thin shell around core.PSim with
// per-process scratch vectors so batch appends build their op-vector
// without allocating.
type Spool[E Entry] struct {
	u       *core.PSim[state[E], Op[E], uint64]
	n       int
	cfg     Config
	threads []spoolThread[E]
}

// spoolThread is per-process scratch. Only process id i touches threads[i],
// mirroring the single-writer discipline of the construction.
type spoolThread[E Entry] struct {
	ops []Op[E]
	res []uint64
}

// New returns a spool for n process ids.
func New[E Entry](n int, cfg Config) *Spool[E] {
	cfg = cfg.withDefaults()
	s := &Spool[E]{n: n, cfg: cfg, threads: make([]spoolThread[E], n)}
	init := state[E]{}
	if cfg.PreallocEvents > 0 {
		init.active.Entries = make([]E, 0, cfg.PreallocEvents)
	}
	s.u = core.NewPSim[state[E], Op[E], uint64](n, init, s.apply,
		core.WithCloneInto[state[E]](cloneInto[E]))
	return s
}

// NewEvents returns an event spool for n process ids — the ingest
// pipeline's instantiation, kept as a named constructor so call sites read
// naturally.
func NewEvents(n int, cfg Config) *Spool[Event] { return New[Event](n, cfg) }

// cloneInto is the construction's state clone: sealed-segment pointers are
// shared (immutable), the active segment is deep-copied into the
// destination record's recycled buffer.
func cloneInto[E Entry](dst, src *state[E]) {
	dst.sealed = append(dst.sealed[:0], src.sealed...)
	dst.active.Base = src.active.Base
	dst.active.FirstTS = src.active.FirstTS
	dst.active.LastTS = src.active.LastTS
	dst.active.Entries = append(dst.active.Entries[:0], src.active.Entries...)
	dst.next = src.next
	dst.lwm = src.lwm
	dst.sealedTotal = src.sealedTotal
	dst.expiredTotal = src.expiredTotal
}

// apply is the sequential specification run by the combiner.
func (s *Spool[E]) apply(st *state[E], _ int, op Op[E]) uint64 {
	switch op.Kind {
	case opAppend:
		ev := op.Ev
		ts := ev.Stamp()
		if len(st.active.Entries) > 0 &&
			(len(st.active.Entries) >= s.cfg.SegEvents ||
				(s.cfg.BucketNs > 0 && ts-st.active.FirstTS >= s.cfg.BucketNs)) {
			s.seal(st)
		}
		off := st.next
		if len(st.active.Entries) == 0 {
			st.active.Base = off
			st.active.FirstTS = ts
		}
		st.active.Entries = append(st.active.Entries, ev)
		st.active.LastTS = ts
		st.next = off + 1
		s.reckonLWM(st) // sealing may have dropped a ring-bound segment
		return off
	case opSeal:
		if len(st.active.Entries) > 0 {
			s.seal(st)
		}
	case opSealAged:
		if len(st.active.Entries) > 0 && st.active.FirstTS < int64(op.Arg) {
			s.seal(st)
		}
	case opTrimAge:
		for len(st.sealed) > 0 && st.sealed[0].LastTS < int64(op.Arg) {
			s.dropOldest(st)
		}
	case opTrimSegs:
		for len(st.sealed) > int(op.Arg) {
			s.dropOldest(st)
		}
	case opTrimTo:
		for len(st.sealed) > 0 && st.sealed[0].End() <= op.Arg {
			s.dropOldest(st)
		}
		if len(st.sealed) == 0 && op.Arg > st.active.Base && len(st.active.Entries) > 0 {
			k := op.Arg - st.active.Base
			if k > uint64(len(st.active.Entries)) {
				k = uint64(len(st.active.Entries))
			}
			// The active copy is private to this clone: shift in place.
			n := copy(st.active.Entries, st.active.Entries[k:])
			st.active.Entries = st.active.Entries[:n]
			st.active.Base += k
			st.expiredTotal += k
			if n > 0 {
				st.active.FirstTS = st.active.Entries[0].Stamp()
			}
		}
	}
	s.reckonLWM(st)
	return st.lwm
}

// seal freezes the active segment. The publishing clone is the buffer's
// only owner, so handing it to the (immutable) Segment is safe; the active
// slice is reset to nil and regrows — the recycled record that next clones
// this state supplies a fresh private buffer.
func (s *Spool[E]) seal(st *state[E]) {
	seg := &Segment[E]{
		Base:    st.active.Base,
		FirstTS: st.active.FirstTS,
		LastTS:  st.active.LastTS,
		Entries: st.active.Entries,
	}
	st.sealed = append(st.sealed, seg)
	st.sealedTotal++
	st.active = Segment[E]{Base: st.next}
	for len(st.sealed) > s.cfg.MaxSegments {
		s.dropOldest(st)
	}
}

// dropOldest expires the oldest sealed segment.
func (s *Spool[E]) dropOldest(st *state[E]) {
	st.expiredTotal += uint64(len(st.sealed[0].Entries))
	st.sealed[0] = nil // release the segment even while the slice head advances
	st.sealed = st.sealed[1:]
}

// reckonLWM recomputes the low watermark after any structural change.
func (s *Spool[E]) reckonLWM(st *state[E]) {
	switch {
	case len(st.sealed) > 0:
		st.lwm = st.sealed[0].Base
	case len(st.active.Entries) > 0:
		st.lwm = st.active.Base
	default:
		st.lwm = st.next
	}
}

// Append appends one entry on behalf of process id, returning its offset.
func (s *Spool[E]) Append(id int, ev E) uint64 {
	return s.u.Apply(id, AppendOp(ev))
}

// AppendBatch appends evs as one operation vector (a single announce slot —
// the paper's batching lever) and appends the assigned offsets to offs.
func (s *Spool[E]) AppendBatch(id int, evs []E, offs []uint64) []uint64 {
	t := &s.threads[id]
	t.ops = t.ops[:0]
	for _, ev := range evs {
		t.ops = append(t.ops, AppendOp(ev))
	}
	return s.u.ApplyBatch(id, t.ops, offs)
}

// Do submits an arbitrary op-vector as ONE ApplyBatch call: all legs
// linearize contiguously. It returns the result of the last leg (for trim
// vectors, the final low watermark). This is the entry point retention
// passes use to make expiry a single linearizable step.
func (s *Spool[E]) Do(id int, ops ...Op[E]) uint64 {
	t := &s.threads[id]
	t.res = s.u.ApplyBatch(id, ops, t.res[:0])
	if len(t.res) == 0 {
		return 0
	}
	return t.res[len(t.res)-1]
}

// Seal forces the active segment to seal (e.g. before a shutdown snapshot).
func (s *Spool[E]) Seal(id int) uint64 { return s.u.Apply(id, SealOp[E]()) }

// Snapshot returns a consistent view of the log via PSim.Read: a
// hazard-protected lock-free read that never announces an operation, so
// readers never block writers (and need no process id).
func (s *Spool[E]) Snapshot() View[E] { return View[E]{st: s.u.Read()} }

// N returns the number of process ids.
func (s *Spool[E]) N() int { return s.n }

// SetTracer attaches a flight recorder to the underlying construction.
func (s *Spool[E]) SetTracer(tr *trace.Tracer) { s.u.SetTracer(tr) }

// SetRecorder attaches a metrics recorder to the underlying construction.
func (s *Spool[E]) SetRecorder(rec *obs.SimRecorder) { s.u.SetRecorder(rec) }

// Instrument registers the spool's combining counters and latency/degree
// recorder under prefix.
func (s *Spool[E]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	return s.u.Instrument(reg, prefix)
}

// RegisterStats registers only the hot-path counters under prefix.
func (s *Spool[E]) RegisterStats(reg *obs.Registry, prefix string) { s.u.RegisterStats(reg, prefix) }

// Stats returns the construction's combining statistics.
func (s *Spool[E]) Stats() core.Stats { return s.u.Stats() }

// Name identifies the implementation to the harness.
func (s *Spool[E]) Name() string { return "Spool" }
