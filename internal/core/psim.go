package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/collect"
	"repro/internal/obs"
	"repro/internal/xatomic"
)

// PSim is the practical Sim universal construction (Algorithms 2 and 3) for
// an arbitrary sequential object.
//
// Type parameters:
//   - S: the simulated object's state. Attempt works on a private copy of S
//     obtained with the Clone option (shallow copy by default, which is
//     correct when S is a value or an immutable pointer-to-structure).
//   - A: the argument type announced with each operation.
//   - R: the operation return type.
//
// The construction is wait-free: Apply finishes after at most two combining
// rounds, falling back to reading the published state (which by then must
// contain its result — the two-successful-CAS argument of Observation 3.2).
//
// Deviation from the paper's memory layout: instead of the pool of State
// records recycled under seq1/seq2 stamps, each round publishes a freshly
// allocated immutable state record via CompareAndSwap on an atomic pointer,
// and the garbage collector reclaims superseded records. This removes ABA
// (every CAS installs a never-before-present pointer) and the need for the
// consistency check; PSimWord implements the faithful pooled layout.
type PSim[S, A, R any] struct {
	n     int
	apply func(st *S, pid int, arg A) R
	clone func(S) S

	announce *collect.Announce[A]
	act      *xatomic.SharedBits
	state    atomic.Pointer[psimState[S, R]]

	threads []psimThread
	stats   *StatsPlane
	counter *xatomic.AccessCounter // optional Table 1 instrumentation
	rec     *obs.SimRecorder       // optional observability plane (nil = off)

	boLower, boUpper int
}

// psimState is one immutable published state record: the simulated state, the
// applied bit vector, and the per-process return values (struct State of
// Algorithm 2 minus the seq stamps, which pointer-publication makes
// unnecessary).
type psimState[S, R any] struct {
	applied xatomic.Snapshot
	rvals   []R
	st      S
}

// psimThread is a thread's private handle internals.
type psimThread struct {
	toggler *xatomic.Toggler
	bo      *backoff.Adaptive
	active  xatomic.Snapshot // scratch: last read of Act
	diffs   xatomic.Snapshot // scratch: applied XOR active
	inited  bool
}

// PSimOption configures a PSim instance.
type PSimOption[S any] func(*psimOptions[S])

type psimOptions[S any] struct {
	clone            func(S) S
	boLower, boUpper int
	padActWords      bool
}

// WithClone supplies a deep-copy function for the state, required when S
// contains shared mutable references (slices, maps) that combining rounds
// mutate in place.
func WithClone[S any](clone func(S) S) PSimOption[S] {
	return func(o *psimOptions[S]) { o.clone = clone }
}

// WithBackoff bounds the adaptive backoff window to [lower, upper] spin
// iterations. upper = 0 disables backoff entirely (§4 notes P-Sim performs
// well even without it; the ablation bench quantifies the difference).
func WithBackoff[S any](lower, upper int) PSimOption[S] {
	return func(o *psimOptions[S]) { o.boLower, o.boUpper = lower, upper }
}

// WithPaddedAct spreads the Act bit vector one word per cache line instead
// of the paper's dense minimal-lines layout.
func WithPaddedAct[S any]() PSimOption[S] {
	return func(o *psimOptions[S]) { o.padActWords = true }
}

// DefaultBackoffUpper is the default adaptive-backoff ceiling, in delay-loop
// iterations. It is deliberately modest: the right value is machine
// dependent and the harness sweeps it.
const DefaultBackoffUpper = 4096

// NewPSim builds a P-Sim instance for n threads simulating a sequential
// object with initial state init and sequential operation apply. apply is
// called with a PRIVATE copy of the state it may mutate, the id of the
// process whose operation it is applying, and that operation's argument; it
// returns the operation's response.
func NewPSim[S, A, R any](n int, init S, apply func(st *S, pid int, arg A) R, opts ...PSimOption[S]) *PSim[S, A, R] {
	if n < 1 {
		panic("core: PSim needs n >= 1")
	}
	o := &psimOptions[S]{boLower: 1, boUpper: DefaultBackoffUpper}
	for _, f := range opts {
		f(o)
	}
	clone := o.clone
	if clone == nil {
		clone = func(s S) S { return s }
	}
	var act *xatomic.SharedBits
	if o.padActWords {
		act = xatomic.NewSharedBitsPadded(n)
	} else {
		act = xatomic.NewSharedBits(n)
	}
	u := &PSim[S, A, R]{
		n:        n,
		apply:    apply,
		clone:    clone,
		announce: collect.NewAnnounce[A](n),
		act:      act,
		threads:  make([]psimThread, n),
		stats:    NewStatsPlane(n),
		boLower:  o.boLower,
		boUpper:  o.boUpper,
	}
	u.state.Store(&psimState[S, R]{
		applied: xatomic.NewSnapshot(n),
		rvals:   make([]R, n),
		st:      init,
	})
	return u
}

// N returns the number of threads the instance was built for.
func (u *PSim[S, A, R]) N() int { return u.n }

// SetAccessCounter attaches shared-memory-access instrumentation (the
// Table 1 experiment: P-Sim performs O(k) accesses — the announce-array
// reads replace the theoretical construction's O(1) collect). Not safe to
// call concurrently with Apply.
func (u *PSim[S, A, R]) SetAccessCounter(c *xatomic.AccessCounter) { u.counter = c }

// SetRecorder attaches a distribution recorder: sampled per-operation
// latency, the combining-degree histogram, and backoff growth are recorded
// into rec's per-thread slots (single-writer, no coherence traffic — see
// internal/obs). Pass nil to disable; the hot path then pays one predictable
// branch per call site. Not safe to call concurrently with Apply; call before
// the first operation.
func (u *PSim[S, A, R]) SetRecorder(rec *obs.SimRecorder) { u.rec = rec }

// RegisterStats publishes the instance's exact counters in reg under prefix
// without attaching a recorder (see StatsPlane.Register) — for structures
// that share one recorder across several instances (internal/simmap).
func (u *PSim[S, A, R]) RegisterStats(reg *obs.Registry, prefix string) {
	u.stats.Register(reg, prefix)
}

// Instrument publishes the instance in reg under prefix: the exact counters
// the hot path already maintains (see StatsPlane.Register) plus a new
// SimRecorder for the latency and combining-degree histograms, which is
// attached and returned (e.g. to adjust its sampling rate). Call before the
// first operation.
func (u *PSim[S, A, R]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	u.stats.Register(reg, prefix)
	rec := obs.NewSimRecorder(reg, prefix, u.n)
	u.SetRecorder(rec)
	return rec
}

// thread lazily initializes and returns thread i's private handle internals.
// Apply(i, …) must only ever be called by one goroutine per i, which makes
// the lazy init safe.
func (u *PSim[S, A, R]) thread(i int) *psimThread {
	t := &u.threads[i]
	if !t.inited {
		t.toggler = xatomic.NewToggler(u.act, i)
		t.bo = backoff.NewAdaptive(u.boLower, u.boUpper)
		if u.rec != nil {
			t.bo.Instrument(u.rec.Retries, i)
		}
		t.active = xatomic.NewSnapshot(u.n)
		t.diffs = xatomic.NewSnapshot(u.n)
		t.inited = true
	}
	return t
}

// Apply announces operation arg on behalf of process i, participates in
// combining until the operation has been applied, and returns its response.
// Each process id must be driven by a single goroutine at a time.
func (u *PSim[S, A, R]) Apply(i int, arg A) R {
	if i < 0 || i >= u.n {
		panic(fmt.Sprintf("core: process id %d out of range [0,%d)", i, u.n))
	}
	t := u.thread(i)
	st := u.stats
	t0 := u.rec.Start(i) // stamp 0 (no clock read) unless this op is sampled

	u.announce.Write(i, &arg) // line 1: announce the operation
	t.toggler.Toggle()        // lines 2–3: toggle pi's bit in Act (one F&A)
	u.counter.Add(i, 2)
	t.bo.Wait() // line 4: back off so helpers accumulate work

	myWord, myMask := t.toggler.Word(), t.toggler.Mask()

	for j := 0; j < 2; j++ { // lines 5–27: at most two Attempt rounds
		ls := u.state.Load()     // line 6: "LL" — read the state reference
		u.act.LoadInto(t.active) // line 9: read Act
		u.counter.Add(i, 1+uint64(u.act.Words()))
		// line 10: diffs = applied XOR active — the set of processes whose
		// announced operation has not been applied to ls.
		ls.applied.XorInto(t.active, t.diffs)

		// line 12: if pi's bit agrees, its operation has been applied; the
		// response is already in ls.rvals (immutable record — safe to read).
		if t.diffs[myWord]&myMask == 0 {
			st.Ops.Inc(i)
			st.ServedBy.Inc(i)
			u.rec.OpDone(i, t0)
			return ls.rvals[i]
		}

		// Build the successor record: lines 8/14–21 work on a private copy.
		ns := &psimState[S, R]{
			applied: t.active.Clone(),
			rvals:   append([]R(nil), ls.rvals...),
			st:      u.clone(ls.st),
		}
		combined := uint64(0)
		d := t.diffs
		for { // lines 15–19: help every process in diffs
			k := d.BitSearchFirst()
			if k < 0 {
				break
			}
			arg := u.announce.Read(k) // line 17: discover its operation
			u.counter.Inc(i)          // the O(k) announce reads of P-Sim
			ns.rvals[k] = u.apply(&ns.st, k, *arg)
			d.ClearBit(k)
			combined++
		}

		// lines 22–25: try to publish. CAS on the pointer plays the role of
		// the CAS on the timestamped pool index.
		u.counter.Inc(i)
		if u.state.CompareAndSwap(ls, ns) {
			st.Ops.Inc(i)
			st.CASSuccess.Inc(i)
			st.Combined.Add(i, combined)
			u.rec.OpPublished(i, t0, combined)
			if j == 0 {
				t.bo.Shrink() // low contention: waiting was wasted
			}
			return ns.rvals[i]
		}
		st.CASFail.Inc(i)
		if j == 0 {
			t.bo.Grow() // line 13: contention detected — widen the window
			t.bo.Wait()
		}
	}

	// Lines 28–30: both rounds failed, so two successful CASes intervened;
	// the second one must have applied our operation (Observation 3.2 /
	// Lemma 3.3 carried to the practical algorithm). Read and return.
	u.counter.Inc(i)
	ls := u.state.Load()
	st.Ops.Inc(i)
	st.ServedBy.Inc(i)
	u.rec.OpDone(i, t0)
	return ls.rvals[i]
}

// Read returns the current simulated state without announcing an operation.
// The returned value must be treated as immutable.
func (u *PSim[S, A, R]) Read() S {
	return u.state.Load().st
}

// Stats returns aggregated combining statistics (Figure 2 right: the average
// degree of helping is Stats().AvgHelping).
func (u *PSim[S, A, R]) Stats() Stats { return u.stats.Aggregate() }

// ResetStats zeroes the statistics counters.
func (u *PSim[S, A, R]) ResetStats() { u.stats.Reset() }
