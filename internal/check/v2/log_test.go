package v2

import (
	"testing"

	"repro/internal/check"
)

// lop builds a log operation with an explicit window.
func lop(thread int, op string, arg, ret uint64, ok bool, inv, rtn int64) check.Operation {
	return check.Operation{Thread: thread, Op: op, Arg: arg, Ret: ret, RetOK: ok, Invoke: inv, Return: rtn}
}

func TestLogSpecSequential(t *testing.T) {
	ops := []check.Operation{
		lop(0, check.OpLogAppend, 10, 0, true, 1, 2),
		lop(0, check.OpLogAppend, 11, 1, true, 3, 4),
		lop(1, check.OpLogRead, 0, 0<<32|10, true, 5, 6),
		lop(2, check.OpLogTrim, 1, 1, true, 7, 8),
		lop(1, check.OpLogRead, 0, 1<<32|11, true, 9, 10),
		lop(1, check.OpLogRead, 2, 0, false, 11, 12),
	}
	for _, engine := range []Engine{EngineForward, EngineSearch, EngineBoth} {
		opts := DefaultOptions()
		opts.Engine = engine
		if err := CheckHistory(ops, opts); err != nil {
			t.Fatalf("engine %v rejected a sequential log history: %v", engine, err)
		}
	}
}

func TestLogSpecRejectsStaleReadAfterTrim(t *testing.T) {
	// The read returns the trimmed event even though the trim completed
	// before the read was invoked — impossible under any linearization.
	ops := []check.Operation{
		lop(0, check.OpLogAppend, 10, 0, true, 1, 2),
		lop(0, check.OpLogAppend, 11, 1, true, 3, 4),
		lop(2, check.OpLogTrim, 1, 1, true, 5, 6),
		lop(1, check.OpLogRead, 0, 0<<32|10, true, 7, 8),
	}
	for _, engine := range []Engine{EngineForward, EngineSearch} {
		opts := DefaultOptions()
		opts.Engine = engine
		if err := CheckHistory(ops, opts); !Rejected(err) {
			t.Fatalf("engine %v accepted a stale read past the watermark: %v", engine, err)
		}
	}
}

func TestLogSpecRejectsWatermarkRegression(t *testing.T) {
	ops := []check.Operation{
		lop(0, check.OpLogAppend, 10, 0, true, 1, 2),
		lop(0, check.OpLogAppend, 11, 1, true, 3, 4),
		lop(2, check.OpLogTrim, 2, 2, true, 5, 6),
		lop(2, check.OpLogTrim, 2, 1, true, 7, 8), // watermark moved backward
	}
	if err := CheckHistory(ops, DefaultOptions()); !Rejected(err) {
		t.Fatalf("accepted a regressing watermark: %v", err)
	}
}

func TestLogSpecTrimIsSegmentGranular(t *testing.T) {
	// A trim may stop short of the requested cutoff (segment boundary) but
	// never beyond it.
	ops := []check.Operation{
		lop(0, check.OpLogAppend, 10, 0, true, 1, 2),
		lop(0, check.OpLogAppend, 11, 1, true, 3, 4),
		lop(0, check.OpLogAppend, 12, 2, true, 5, 6),
		lop(2, check.OpLogTrim, 2, 1, true, 7, 8), // stopped at 1 < 2: fine
	}
	if err := CheckHistory(ops, DefaultOptions()); err != nil {
		t.Fatalf("rejected a segment-granular trim: %v", err)
	}
	over := append(ops[:3:3], lop(2, check.OpLogTrim, 2, 3, true, 7, 8))
	if err := CheckHistory(over, DefaultOptions()); !Rejected(err) {
		t.Fatalf("accepted a trim past its cutoff: %v", err)
	}
}

func TestLogHistoryRoundTripsThroughTextFormat(t *testing.T) {
	ops := []check.Operation{
		lop(0, check.OpLogAppend, 10, 0, true, 1, 2),
		lop(1, check.OpLogRead, 0, 0<<32|10, true, 3, 4),
		lop(2, check.OpLogTrim, 1, 1, true, 5, 6),
		lop(1, check.OpLogRead, 0, 0, false, 7, 8),
	}
	parsed, err := ParseHistory(FormatHistory(ops))
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if len(parsed) != len(ops) {
		t.Fatalf("round trip lost operations: %d -> %d", len(ops), len(parsed))
	}
	for i := range ops {
		if parsed[i] != ops[i] {
			t.Fatalf("op %d changed in round trip: %+v -> %+v", i, ops[i], parsed[i])
		}
	}
	if err := CheckHistory(parsed, DefaultOptions()); err != nil {
		t.Fatalf("round-tripped history rejected: %v", err)
	}
}

func TestLogClassComposesWithOtherClasses(t *testing.T) {
	// A queue history and a log history interleaved in one recording: the
	// driver splits them and checks each against its own spec.
	ops := []check.Operation{
		lop(0, check.OpEnqueue, 7, 0, false, 1, 2),
		lop(0, check.OpLogAppend, 7, 0, true, 3, 4),
		lop(1, check.OpDequeue, 0, 7, true, 5, 6),
		lop(1, check.OpLogRead, 0, 0<<32|7, true, 7, 8),
	}
	for _, engine := range []Engine{EngineForward, EngineSearch, EngineBoth} {
		opts := DefaultOptions()
		opts.Engine = engine
		if err := CheckHistory(ops, opts); err != nil {
			t.Fatalf("engine %v rejected mixed queue+log history: %v", engine, err)
		}
	}
}
