// Benchmarks regenerating the paper's evaluation via `go test -bench`.
// One family per table/figure (DESIGN.md per-experiment index):
//
//	BenchmarkFigure2        — Fetch&Multiply under each technique (Fig. 2 left;
//	                          the reported helping/publish metric is Fig. 2 right)
//	BenchmarkFigure3Stack   — push+pop pairs under each stack (Fig. 3 left)
//	BenchmarkFigure3Queue   — enq+deq pairs under each queue (Fig. 3 right)
//	BenchmarkTable1         — shared-memory accesses per operation (Table 1)
//	BenchmarkAblation*      — design-choice ablations called out in DESIGN.md
//
// The full sweep (paper-scale op counts, thread axis 1..32, 10 repetitions,
// CSV output) lives in cmd/simbench; these benches are the quick
// `go test -bench=. -benchmem` view of the same experiments.
package simuc_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fmul"
	"repro/internal/herlihy"
	"repro/internal/lsim"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/simmap"
	"repro/internal/stack"
	"repro/internal/workload"
	"repro/internal/xatomic"
)

// benchThreads are the thread counts each family sweeps. The paper's x axis
// is 1..32; benches keep three representative points and cmd/simbench does
// the full axis.
var benchThreads = []int{1, 4, 16}

// runConcurrent distributes b.N operations over n goroutines with the
// paper's random inter-operation work and reports ns/op over all of them.
func runConcurrent(b *testing.B, n int, op func(id int, rng *workload.RNG)) {
	b.Helper()
	per := (b.N + n - 1) / n
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer done.Done()
			rng := workload.NewRNG(uint64(id) + 1)
			start.Wait()
			for k := 0; k < per; k++ {
				op(id, rng)
				rng.RandomWork(workload.DefaultMaxWork)
			}
		}(i)
	}
	b.ResetTimer()
	start.Done()
	done.Wait()
}

// --- Figure 2: Fetch&Multiply ---

func BenchmarkFigure2(b *testing.B) {
	type entry struct {
		name    string
		build   func(n int) fmul.Interface
		helping func(fmul.Interface) float64
	}
	entries := []entry{
		{"P-Sim", func(n int) fmul.Interface { return fmul.NewPSim(n) },
			func(o fmul.Interface) float64 { return o.(*fmul.PSim).Stats().AvgHelping }},
		{"P-Sim-combine", func(n int) fmul.Interface {
			return fmul.NewPSim(n, core.WithBackoff[uint64](512, 4096))
		}, func(o fmul.Interface) float64 { return o.(*fmul.PSim).Stats().AvgHelping }},
		{"CLH-lock", func(n int) fmul.Interface { return fmul.NewCLH(n) }, nil},
		{"MCS-lock", func(n int) fmul.Interface { return fmul.NewMCS(n) }, nil},
		{"lock-free-CAS", func(n int) fmul.Interface { return fmul.NewLockFree(n) }, nil},
		{"FlatCombining", func(n int) fmul.Interface { return fmul.NewFC(n, 0, 0) },
			func(o fmul.Interface) float64 { return o.(*fmul.FC).Stats().AvgCombine }},
		{"CombiningTree", func(n int) fmul.Interface { return fmul.NewCombTree(n) }, nil},
	}
	for _, e := range entries {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", e.name, n), func(b *testing.B) {
				o := e.build(n)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					o.Apply(id, uint64(rng.Intn(1000))*2+3)
				})
				if e.helping != nil {
					b.ReportMetric(e.helping(o), "helping/publish")
				}
			})
		}
	}
}

// --- Figure 3 (left): stacks, one op = one push+pop pair ---

func BenchmarkFigure3Stack(b *testing.B) {
	builders := []func(n int) stack.Interface[uint64]{
		func(n int) stack.Interface[uint64] { return stack.NewSimStack[uint64](n) },
		func(n int) stack.Interface[uint64] { return stack.NewTreiber[uint64](n) },
		func(n int) stack.Interface[uint64] { return stack.NewElimination[uint64](n) },
		func(n int) stack.Interface[uint64] { return stack.NewCLHStack[uint64](n) },
		func(n int) stack.Interface[uint64] { return stack.NewFCStack[uint64](n, 0, 0) },
	}
	for _, build := range builders {
		name := build(1).Name()
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", name, n), func(b *testing.B) {
				s := build(n)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					s.Push(id, rng.Uint64())
					rng.RandomWork(workload.DefaultMaxWork)
					s.Pop(id)
				})
			})
		}
	}
}

// --- Figure 3 (right): queues, one op = one enq+deq pair ---

func BenchmarkFigure3Queue(b *testing.B) {
	builders := []func(n int) queue.Interface[uint64]{
		func(n int) queue.Interface[uint64] { return queue.NewSimQueue[uint64](n) },
		func(n int) queue.Interface[uint64] { return queue.NewMSQueue[uint64](n) },
		func(n int) queue.Interface[uint64] { return queue.NewTwoLockQueue[uint64](n) },
		func(n int) queue.Interface[uint64] { return queue.NewFCQueue[uint64](n, 0, 0) },
	}
	for _, build := range builders {
		name := build(1).Name()
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", name, n), func(b *testing.B) {
				q := build(n)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					q.Enqueue(id, rng.Uint64())
					rng.RandomWork(workload.DefaultMaxWork)
					q.Dequeue(id)
				})
			})
		}
	}
}

// --- Table 1: measured shared-memory accesses per operation ---

func BenchmarkTable1(b *testing.B) {
	b.Run("Sim", func(b *testing.B) {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
				u := core.NewSim(n, 8, uint64(0), func(st uint64, _ int, op uint64) (uint64, uint64) {
					return st + op, st
				})
				c := xatomic.NewAccessCounter(n)
				u.SetAccessCounter(c)
				runConcurrent(b, n, func(id int, _ *workload.RNG) { u.ApplyOp(id, 1) })
				b.ReportMetric(float64(c.Total())/float64(b.N), "accesses/op")
			})
		}
	})
	b.Run("LSim", func(b *testing.B) {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
				l := lsim.New[uint64, uint64, uint64](n)
				item := l.NewRootItem(0)
				op := func(m *lsim.Mem[uint64, uint64, uint64], arg uint64) uint64 {
					v := m.Read(item)
					m.Write(item, v+arg)
					return v
				}
				c := xatomic.NewAccessCounter(n)
				l.SetAccessCounter(c)
				runConcurrent(b, n, func(id int, _ *workload.RNG) { l.ApplyOp(id, op, 1) })
				b.ReportMetric(float64(c.Total())/float64(b.N), "accesses/op")
			})
		}
	})
	b.Run("Herlihy", func(b *testing.B) {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
				u := herlihy.New(n, uint64(0), func(st uint64, _ int, arg uint64) (uint64, uint64) {
					return st + arg, st
				})
				c := xatomic.NewAccessCounter(n)
				u.SetAccessCounter(c)
				runConcurrent(b, n, func(id int, _ *workload.RNG) { u.Apply(id, 1) })
				b.ReportMetric(float64(c.Total())/float64(b.N), "accesses/op")
			})
		}
	})
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationBackoff: §4 claims P-Sim performs well even with no
// backoff; this measures the gap.
func BenchmarkAblationBackoff(b *testing.B) {
	configs := []struct {
		name  string
		build func(n int) *fmul.PSim
	}{
		{"adaptive", func(n int) *fmul.PSim { return fmul.NewPSim(n) }},
		{"none", func(n int) *fmul.PSim { return fmul.NewPSim(n, core.WithBackoff[uint64](1, 0)) }},
		{"wide", func(n int) *fmul.PSim { return fmul.NewPSim(n, core.WithBackoff[uint64](512, 4096)) }},
	}
	for _, cfg := range configs {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", cfg.name, n), func(b *testing.B) {
				o := cfg.build(n)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					o.Apply(id, 3)
				})
				b.ReportMetric(o.Stats().AvgHelping, "helping/publish")
			})
		}
	}
}

// BenchmarkAblationPublication: GC pointer publication vs the paper-exact
// pooled records with seqlock stamps and a timestamped index CAS — on the
// single-word Fetch&Multiply state and on an 8-word state (PSimWords vs a
// slice-cloning PSim), where the pooled copy cost starts to matter.
func BenchmarkAblationPublication(b *testing.B) {
	configs := []struct {
		name  string
		build func(n int) fmul.Interface
	}{
		{"gc", func(n int) fmul.Interface { return fmul.NewPSim(n) }},
		{"pooled", func(n int) fmul.Interface { return fmul.NewPSimPooled(n) }},
	}
	for _, cfg := range configs {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", cfg.name, n), func(b *testing.B) {
				o := cfg.build(n)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					o.Apply(id, 3)
				})
			})
		}
	}

	const sWords = 8
	for _, n := range benchThreads {
		b.Run(fmt.Sprintf("gc-multiword/threads=%d", n), func(b *testing.B) {
			u := core.NewPSim(n, make([]uint64, sWords),
				func(st *[]uint64, _ int, arg uint64) uint64 {
					prev := (*st)[arg%sWords]
					(*st)[arg%sWords] = prev + arg
					return prev
				},
				core.WithClone[[]uint64](func(s []uint64) []uint64 {
					return append([]uint64(nil), s...)
				}))
			runConcurrent(b, n, func(id int, rng *workload.RNG) {
				u.Apply(id, rng.Uint64()%64)
			})
		})
		b.Run(fmt.Sprintf("pooled-multiword/threads=%d", n), func(b *testing.B) {
			u := core.NewPSimWords(n, 0, make([]uint64, sWords),
				func(st []uint64, _ int, arg uint64) uint64 {
					prev := st[arg%sWords]
					st[arg%sWords] = prev + arg
					return prev
				})
			runConcurrent(b, n, func(id int, rng *workload.RNG) {
				u.Apply(id, rng.Uint64()%64)
			})
		})
	}
}

// BenchmarkAblationActLayout: the paper's dense Act vector (minimum cache
// lines, §4) vs one word per line.
func BenchmarkAblationActLayout(b *testing.B) {
	configs := []struct {
		name  string
		build func(n int) fmul.Interface
	}{
		{"dense", func(n int) fmul.Interface { return fmul.NewPSim(n) }},
		{"padded", func(n int) fmul.Interface { return fmul.NewPSim(n, core.WithPaddedAct[uint64]()) }},
	}
	for _, cfg := range configs {
		for _, n := range []int{16, 64, 128} { // layout matters only with many words
			b.Run(fmt.Sprintf("%s/threads=%d", cfg.name, n), func(b *testing.B) {
				o := cfg.build(n)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					o.Apply(id, 3)
				})
			})
		}
	}
}

// BenchmarkLargeObject: L-Sim vs P-Sim as the object grows — the paper's
// deferred L-Sim experiment (§1/§6). P-Sim's per-op cost is O(s) (it clones
// the array every round); L-Sim's is O(kw) with w=2 here, independent of s.
func BenchmarkLargeObject(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("P-Sim/size=%d", size), func(b *testing.B) {
			u := core.NewPSim(2, make([]uint64, size),
				func(st *[]uint64, _ int, arg [2]uint64) uint64 {
					va := (*st)[arg[0]]
					(*st)[arg[0]] = va + 1
					(*st)[arg[1]] ^= va
					return va
				},
				core.WithClone[[]uint64](func(s []uint64) []uint64 {
					return append([]uint64(nil), s...)
				}))
			runConcurrent(b, 2, func(id int, rng *workload.RNG) {
				u.Apply(id, [2]uint64{uint64(rng.Intn(size)), uint64(rng.Intn(size))})
			})
		})
		b.Run(fmt.Sprintf("L-Sim/size=%d", size), func(b *testing.B) {
			l := lsim.New[uint64, [2]uint64, uint64](2)
			items := make([]*lsim.Item[uint64], size)
			for i := range items {
				items[i] = l.NewRootItem(0)
			}
			op := func(m *lsim.Mem[uint64, [2]uint64, uint64], arg [2]uint64) uint64 {
				a, bb := items[arg[0]], items[arg[1]]
				va := m.Read(a)
				m.Write(a, va+1)
				m.Write(bb, m.Read(bb)^va)
				return va
			}
			runConcurrent(b, 2, func(id int, rng *workload.RNG) {
				l.ApplyOp(id, op, [2]uint64{uint64(rng.Intn(size)), uint64(rng.Intn(size))})
			})
		})
	}
}

// BenchmarkMapStripes: the striped wait-free map vs a single-instance map —
// what generalizing SimQueue's multiple-instances trick buys.
func BenchmarkMapStripes(b *testing.B) {
	for _, stripes := range []int{1, 8} {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("stripes=%d/threads=%d", stripes, n), func(b *testing.B) {
				m := simmap.New[uint64, uint64](n, stripes)
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					k := rng.Uint64() % 512
					if rng.Intn(4) == 0 {
						m.Delete(id, k)
					} else {
						m.Put(id, k, k)
					}
				})
			})
		}
	}
}

// BenchmarkAblationQueueInstances: SimQueue's two Sim instances vs a single
// P-Sim simulating the whole queue (head and tail in one state) — the design
// choice §5 credits for SimQueue's advantage over flat combining.
func BenchmarkAblationQueueInstances(b *testing.B) {
	type singleQueueState struct {
		items []uint64
	}
	buildSingle := func(n int) func(id int, enq bool, v uint64) (uint64, bool) {
		u := core.NewPSim(n, singleQueueState{},
			func(st *singleQueueState, _ int, op [2]uint64) [2]uint64 {
				if op[0] == 1 { // enqueue
					st.items = append(st.items, op[1])
					return [2]uint64{0, 0}
				}
				if len(st.items) == 0 {
					return [2]uint64{0, 0}
				}
				v := st.items[0]
				st.items = st.items[1:]
				return [2]uint64{1, v}
			},
			core.WithClone[singleQueueState](func(s singleQueueState) singleQueueState {
				return singleQueueState{items: append([]uint64(nil), s.items...)}
			}))
		return func(id int, enq bool, v uint64) (uint64, bool) {
			if enq {
				u.Apply(id, [2]uint64{1, v})
				return 0, true
			}
			r := u.Apply(id, [2]uint64{0, 0})
			return r[1], r[0] == 1
		}
	}
	for _, n := range benchThreads {
		b.Run(fmt.Sprintf("two-instances/threads=%d", n), func(b *testing.B) {
			q := queue.NewSimQueue[uint64](n)
			runConcurrent(b, n, func(id int, rng *workload.RNG) {
				q.Enqueue(id, rng.Uint64())
				q.Dequeue(id)
			})
		})
		b.Run(fmt.Sprintf("single-instance/threads=%d", n), func(b *testing.B) {
			q := buildSingle(n)
			runConcurrent(b, n, func(id int, rng *workload.RNG) {
				q(id, true, rng.Uint64())
				q(id, false, 0)
			})
		})
	}
}

// BenchmarkObsOverhead: the acceptance gate for the observability plane —
// the P-Sim Fetch&Multiply benchmark with and without full instrumentation
// (registered counters plus a SimRecorder at the default sampling rate).
// The exact counters are the very slots the construction already maintains
// for Stats, so registering them costs nothing per operation; the "on" rows
// additionally pay the recorder's sampling gate every op and its clock reads
// plus histogram stores on one op in 64. The requirement is < 5% throughput
// loss versus "off".
func BenchmarkObsOverhead(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		label := "off"
		if instrumented {
			label = "on"
		}
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", label, n), func(b *testing.B) {
				o := fmul.NewPSim(n)
				if instrumented {
					o.Instrument(obs.NewRegistry(), "bench")
				}
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					o.Apply(id, uint64(rng.Intn(1000))*2+3)
				})
			})
		}
	}
}

// BenchmarkTraceOverhead: the acceptance gate for the flight recorder —
// the same P-Sim Fetch&Multiply benchmark with tracing disabled (nil
// tracer: one predictable branch per event site), enabled at the default
// 1-in-64 sampling (CI comparison target: within noise of "off"), and
// enabled at sample=1 (the worst case, every op writes ring events).
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []struct {
		label  string
		sample int // 0 = tracing off
	}{{"off", 0}, {"sampled", obs.DefaultSampleEvery}, {"every-op", 1}} {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", mode.label, n), func(b *testing.B) {
				o := fmul.NewPSim(n)
				if mode.sample > 0 {
					o.SetTracer(trace.New(n, trace.WithSampleEvery(mode.sample)))
				}
				runConcurrent(b, n, func(id int, rng *workload.RNG) {
					o.Apply(id, uint64(rng.Intn(1000))*2+3)
				})
			})
		}
	}
}

// BenchmarkObsPrimitives: raw cost of the wait-free metric primitives — the
// single-writer counter and histogram stores, the sampled and unsampled
// recorder paths, and the disabled (nil recorder) path.
func BenchmarkObsPrimitives(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		c := obs.NewCounter(1)
		for i := 0; i < b.N; i++ {
			c.Inc(0)
		}
	})
	b.Run("histogram-record", func(b *testing.B) {
		h := obs.NewHistogram(1)
		for i := 0; i < b.N; i++ {
			h.Record(0, uint64(i))
		}
	})
	b.Run("counter-inc-nil", func(b *testing.B) {
		var c *obs.Counter
		for i := 0; i < b.N; i++ {
			c.Inc(0)
		}
	})
	b.Run("recorder-sampled", func(b *testing.B) {
		// Every op through the full clock + histogram path.
		reg := obs.NewRegistry()
		r := obs.NewSimRecorder(reg, "bench", 1)
		r.SetSampleEvery(1)
		for i := 0; i < b.N; i++ {
			r.OpPublished(0, r.Start(0), 1)
		}
	})
	b.Run("recorder-default", func(b *testing.B) {
		// The production path: sampling gate every op, clock 1-in-64.
		reg := obs.NewRegistry()
		r := obs.NewSimRecorder(reg, "bench", 1)
		for i := 0; i < b.N; i++ {
			r.OpPublished(0, r.Start(0), 1)
		}
	})
	b.Run("recorder-nil", func(b *testing.B) {
		var r *obs.SimRecorder
		for i := 0; i < b.N; i++ {
			r.OpPublished(0, r.Start(0), 1)
		}
	})
}
