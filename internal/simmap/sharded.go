package simmap

import (
	"hash/maphash"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pad"
)

// Sharded partitions the key space across a power-of-two number of
// independent Maps — the next scaling level above stripes. A stripe shares
// its Act vector, announce array, and observability plane with its siblings
// inside one Map; a SHARD is a whole Map of its own, so shards share
// nothing: each has its own stripes, its own hash seed, and (when
// instrumented) its own StatsPlane and flight recorder. Multi-key
// operations group keys per shard and hand each shard's group to the
// shard's batched entry points, so a cross-shard MGet/MSet costs one
// combining round per TOUCHED shard, not per key.
//
// Consistency contract: single-key operations are linearizable exactly as
// on Map. A multi-key operation is atomic per (shard, stripe) group and
// per-key linearizable overall, but has no single atomic point across
// shards — the standard partitioned-map contract, checkable per key with
// check.LinearizablePartitioned.
type Sharded[K comparable, V any] struct {
	shards []*Map[K, V]
	seed   maphash.Seed
	mask   uint64
	// per-process scratch for cross-shard fan-out of multi-key calls.
	scratch []shardScratch[K, V]
}

type shardScratch[K comparable, V any] struct {
	skeys [][]K   // keys grouped by shard
	svals [][]V   // values grouped by shard (MSet only)
	pos   [][]int // pos[s][j] = caller index of skeys[s][j]
	prevs []V
	oks   []bool
	_     pad.CacheLinePad
}

// NewSharded returns a map for n processes with `shards` independent Maps
// (rounded up to the next power of two, minimum 1) of stripesPerShard
// stripes each. The shard count is a pure parallelism knob: the key space
// is hash-partitioned, so any power of two works; a count near the number
// of concurrently mutating processes is a good default.
func NewSharded[K comparable, V any](n, shards, stripesPerShard int) *Sharded[K, V] {
	k := 1
	for k < shards {
		k <<= 1
	}
	s := &Sharded[K, V]{
		shards:  make([]*Map[K, V], k),
		seed:    maphash.MakeSeed(),
		mask:    uint64(k - 1),
		scratch: make([]shardScratch[K, V], n),
	}
	for i := range s.shards {
		s.shards[i] = New[K, V](n, stripesPerShard)
	}
	return s
}

func (s *Sharded[K, V]) shardIdx(k K) int {
	// An independent seed from every shard's internal stripe seed, so shard
	// and stripe partitions are uncorrelated.
	return int(maphash.Comparable(s.seed, k) & s.mask)
}

// Shard returns shard i — e.g. to attach a tracer or recorder to just that
// shard. Shards are full Maps; anything legal on a Map is legal here.
func (s *Sharded[K, V]) Shard(i int) *Map[K, V] { return s.shards[i] }

// Shards returns the shard count (a power of two).
func (s *Sharded[K, V]) Shards() int { return len(s.shards) }

// Put binds k to v on behalf of process id and returns the previous binding.
func (s *Sharded[K, V]) Put(id int, k K, v V) (prev V, existed bool) {
	return s.shards[s.shardIdx(k)].Put(id, k, v)
}

// Delete removes k on behalf of process id and returns the removed binding.
func (s *Sharded[K, V]) Delete(id int, k K) (prev V, existed bool) {
	return s.shards[s.shardIdx(k)].Delete(id, k)
}

// Get returns k's binding (linearizable, no announcement — see Map.Get).
func (s *Sharded[K, V]) Get(k K) (V, bool) {
	return s.shards[s.shardIdx(k)].Get(k)
}

// group fans keys (and optional parallel vals) out into per-shard slices.
func (s *Sharded[K, V]) group(id int, keys []K, vals []V) *shardScratch[K, V] {
	sc := &s.scratch[id]
	if sc.skeys == nil {
		sc.skeys = make([][]K, len(s.shards))
		sc.svals = make([][]V, len(s.shards))
		sc.pos = make([][]int, len(s.shards))
	}
	for i := range sc.skeys {
		sc.skeys[i] = sc.skeys[i][:0]
		sc.svals[i] = sc.svals[i][:0]
		sc.pos[i] = sc.pos[i][:0]
	}
	for i, k := range keys {
		sh := s.shardIdx(k)
		sc.skeys[sh] = append(sc.skeys[sh], k)
		if vals != nil {
			sc.svals[sh] = append(sc.svals[sh], vals[i])
		}
		sc.pos[sh] = append(sc.pos[sh], i)
	}
	sc.prevs = sc.prevs[:0]
	sc.oks = sc.oks[:0]
	var zero V
	for range keys {
		sc.prevs = append(sc.prevs, zero)
		sc.oks = append(sc.oks, false)
	}
	return sc
}

// scatter copies shard sh's group results (aligned with sc.skeys[sh]) back
// to caller order.
func (sc *shardScratch[K, V]) scatter(sh int, prevs []V, oks []bool) {
	for j, i := range sc.pos[sh] {
		sc.prevs[i] = prevs[j]
		sc.oks[i] = oks[j]
	}
}

// MSet binds keys[i] to vals[i] for every i on behalf of process id,
// returning previous bindings aligned with keys. Each shard's group is one
// batched call on that shard (see Map.MSet for the per-group atomicity
// contract); the returned slices are process-id-owned scratch, valid until
// id's next multi-key call on this Sharded.
func (s *Sharded[K, V]) MSet(id int, keys []K, vals []V) (prevs []V, existed []bool) {
	sc := s.group(id, keys, vals)
	for sh, ks := range sc.skeys {
		if len(ks) == 0 {
			continue
		}
		p, ok := s.shards[sh].MSet(id, ks, sc.svals[sh])
		sc.scatter(sh, p, ok)
	}
	return sc.prevs, sc.oks
}

// MDelete removes every key on behalf of process id, returning the removed
// bindings aligned with keys. Same contract as MSet.
func (s *Sharded[K, V]) MDelete(id int, keys []K) (prevs []V, existed []bool) {
	sc := s.group(id, keys, nil)
	for sh, ks := range sc.skeys {
		if len(ks) == 0 {
			continue
		}
		p, ok := s.shards[sh].MDelete(id, ks)
		sc.scatter(sh, p, ok)
	}
	return sc.prevs, sc.oks
}

// MGet returns the bindings of all keys, aligned with keys. Keys on the
// same (shard, stripe) are read from one snapshot; different shards are
// read at different instants (see the type comment). The returned slices
// are process-id-owned scratch, valid until id's next multi-key call.
func (s *Sharded[K, V]) MGet(id int, keys []K) (vals []V, ok []bool) {
	sc := s.group(id, keys, nil)
	for sh, ks := range sc.skeys {
		if len(ks) == 0 {
			continue
		}
		v, o := s.shards[sh].MGet(id, ks)
		sc.scatter(sh, v, o)
	}
	return sc.prevs, sc.oks
}

// Len counts all entries (non-atomic across shards, like Map.Len across
// stripes).
func (s *Sharded[K, V]) Len() int {
	total := 0
	for _, m := range s.shards {
		total += m.Len()
	}
	return total
}

// Range calls f for every entry of per-stripe snapshots across all shards,
// stopping early if f returns false.
func (s *Sharded[K, V]) Range(f func(k K, v V) bool) {
	stop := false
	for _, m := range s.shards {
		if stop {
			return
		}
		m.Range(func(k K, v V) bool {
			if !f(k, v) {
				stop = true
				return false
			}
			return true
		})
	}
}

// Instrument publishes every shard in reg as labeled series of one metric
// family — prefix_ops_total{shard="<i>"}, … — giving each shard its own
// SimRecorder (returned in shard order) so per-shard load imbalance is
// visible while `sum by (shard)` still aggregates the family. Call before
// any mutation.
func (s *Sharded[K, V]) Instrument(reg *obs.Registry, prefix string) []*obs.SimRecorder {
	recs := make([]*obs.SimRecorder, len(s.shards))
	for i, m := range s.shards {
		recs[i] = m.Instrument(reg, obs.Labeled(prefix, "shard", strconv.Itoa(i)))
	}
	return recs
}

// SetTracer attaches one flight recorder per shard (trs aligned with shard
// indices; nil entries skip that shard), keeping each shard's event stream
// separate. Sharing one tracer across shards would also be safe — multi-key
// calls touch shards one after another, so process id i stays a single
// writer — but separate rings are what per-shard load debugging wants.
// Call before any mutation.
func (s *Sharded[K, V]) SetTracer(trs []*trace.Tracer) {
	for i, m := range s.shards {
		if i < len(trs) && trs[i] != nil {
			m.SetTracer(trs[i])
		}
	}
}

// Stats aggregates combining statistics across all shards.
func (s *Sharded[K, V]) Stats() core.Stats {
	var total core.Stats
	for _, m := range s.shards {
		st := m.Stats()
		total.Ops += st.Ops
		total.CASSuccesses += st.CASSuccesses
		total.CASFailures += st.CASFailures
		total.Combined += st.Combined
		total.ServedByOther += st.ServedByOther
	}
	if total.CASSuccesses > 0 {
		total.AvgHelping = float64(total.Combined) / float64(total.CASSuccesses)
	}
	return total
}
