// Allocation-regression tests for the zero-allocation hot path: after a
// warm-up phase that fills the per-thread recycling rings and free-lists,
// the P-Sim constructions must run without steady-state heap allocation.
// The announce box — formerly one allocation per operation at n > 1 — is
// gone: announce slots recycle owner-pooled vector boxes (collect.
// BatchAnnounce), so Apply and ApplyBatch both pin at 0 allocs/op. The only
// remaining per-operation source is the linked-list node the stack and
// queue objects themselves allocate per pushed/enqueued element at n > 1
// (at n = 1 the solo paths recycle whole node chains through the spare
// slot, so even batches are allocation-free for the queue).
//
// testing.AllocsPerRun is single-goroutine, so the n=4 cases drive the ids
// round-robin from one goroutine — every Apply still takes the full
// announce/toggle/combine/CAS path, only without CAS contention. A separate
// concurrent check bounds the amortized rate under real contention.
package simuc_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/stack"
)

// steadyAllocs warms the structure up, then measures allocations per op.
func steadyAllocs(warmup int, op func()) float64 {
	for i := 0; i < warmup; i++ {
		op()
	}
	return testing.AllocsPerRun(200, op)
}

func TestApplyAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own; bounds only hold without it")
	}

	t.Run("PSim/n=1", func(t *testing.T) {
		u := core.NewPSim(1, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
			old := *st
			*st += d
			return old
		})
		got := steadyAllocs(256, func() { u.Apply(0, 1) })
		if got != 0 {
			t.Errorf("PSim n=1 allocs/op = %v, want 0", got)
		}
	})

	t.Run("PSim/n=4", func(t *testing.T) {
		u := core.NewPSim(4, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
			old := *st
			*st += d
			return old
		})
		id := 0
		got := steadyAllocs(256, func() {
			u.Apply(id, 1)
			id = (id + 1) % 4
		})
		if got != 0 {
			t.Errorf("PSim n=4 allocs/op = %v, want 0 (announce boxes recycle)", got)
		}
	})

	t.Run("PSimWord/n=1", func(t *testing.T) {
		u := core.NewPSimWord(1, 0, 1, func(st, f uint64) (uint64, uint64) {
			return st * f, st
		})
		got := steadyAllocs(256, func() { u.Apply(0, 3) })
		if got != 0 {
			t.Errorf("PSimWord n=1 allocs/op = %v, want 0", got)
		}
	})

	t.Run("PSimWord/n=4", func(t *testing.T) {
		u := core.NewPSimWord(4, 0, 1, func(st, f uint64) (uint64, uint64) {
			return st * f, st
		})
		id := 0
		got := steadyAllocs(256, func() {
			u.Apply(id, 3)
			id = (id + 1) % 4
		})
		if got != 0 {
			t.Errorf("PSimWord n=4 allocs/op = %v, want 0 (word-register announce)", got)
		}
	})

	t.Run("SimQueue/n=1", func(t *testing.T) {
		q := queue.NewSimQueue[uint64](1)
		var i uint64
		got := steadyAllocs(256, func() {
			q.Enqueue(0, i)
			q.Dequeue(0)
			i++
		})
		if got != 0 {
			t.Errorf("SimQueue n=1 allocs per enq+deq pair = %v, want 0", got)
		}
	})

	t.Run("SimQueue/n=4", func(t *testing.T) {
		q := queue.NewSimQueue[uint64](4)
		id := 0
		var i uint64
		got := steadyAllocs(256, func() {
			q.Enqueue(id, i)
			q.Dequeue(id)
			id = (id + 1) % 4
			i++
		})
		if got > 1 {
			t.Errorf("SimQueue n=4 allocs per enq+deq pair = %v, want <= 1 (enqueued node)", got)
		}
	})

	t.Run("SimStack/n=1", func(t *testing.T) {
		s := stack.NewSimStack[uint64](1)
		var i uint64
		got := steadyAllocs(256, func() {
			s.Push(0, i)
			s.Pop(0)
			i++
		})
		if got > 1 {
			t.Errorf("SimStack n=1 allocs per push+pop pair = %v, want <= 1 (pushed node)", got)
		}
	})

	t.Run("SimStack/n=4", func(t *testing.T) {
		s := stack.NewSimStack[uint64](4)
		id := 0
		var i uint64
		got := steadyAllocs(256, func() {
			s.Push(id, i)
			s.Pop(id)
			id = (id + 1) % 4
			i++
		})
		if got > 1 {
			t.Errorf("SimStack n=4 allocs per push+pop pair = %v, want <= 1 (pushed node)", got)
		}
	})
}

// TestApplyAllocsBatch pins the batched entry points: ApplyBatch combines a
// whole op-vector per announce slot and must not allocate at all in steady
// state — neither on the n=1 solo path (chain recycling) nor round-robin at
// n=4 (results live in the published record's brvals rows, the caller's res
// buffer is reused, boxes recycle). The queue's batched pair is also 0 at
// n=1 (consumed chains hand back through the spare slot) and one node per
// element at n=4; the stack pays its usual node per pushed element.
func TestApplyAllocsBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own; bounds only hold without it")
	}
	const b = 8
	args := make([]uint64, b)
	res := make([]uint64, 0, b)
	out := make([]uint64, 0, b)
	add := func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	}

	t.Run("PSim/n=1", func(t *testing.T) {
		u := core.NewPSim(1, uint64(0), add)
		got := steadyAllocs(256, func() { res = u.ApplyBatch(0, args, res[:0]) })
		if got != 0 {
			t.Errorf("PSim n=1 allocs per %d-op batch = %v, want 0", b, got)
		}
	})

	t.Run("PSim/n=4", func(t *testing.T) {
		u := core.NewPSim(4, uint64(0), add)
		id := 0
		got := steadyAllocs(256, func() {
			res = u.ApplyBatch(id, args, res[:0])
			id = (id + 1) % 4
		})
		if got != 0 {
			t.Errorf("PSim n=4 allocs per %d-op batch = %v, want 0", b, got)
		}
	})

	t.Run("PSimWord/n=4", func(t *testing.T) {
		u := core.NewPSimWord(4, 0, 1, func(st, f uint64) (uint64, uint64) {
			return st * f, st
		})
		wargs := []uint64{3, 3, 3, 3} // WordBatchBudget caps vectors at 8
		id := 0
		got := steadyAllocs(256, func() {
			res = u.ApplyBatch(id, wargs, res[:0])
			id = (id + 1) % 4
		})
		if got != 0 {
			t.Errorf("PSimWord n=4 allocs per 4-op batch = %v, want 0", got)
		}
	})

	t.Run("SimQueue/n=1", func(t *testing.T) {
		q := queue.NewSimQueue[uint64](1)
		got := steadyAllocs(256, func() {
			q.EnqueueBatch(0, args)
			out = q.DequeueBatch(0, b, out[:0])
		})
		if got != 0 {
			t.Errorf("SimQueue n=1 allocs per %d-element batch pair = %v, want 0 (chain recycling)", b, got)
		}
	})

	t.Run("SimQueue/n=4", func(t *testing.T) {
		q := queue.NewSimQueue[uint64](4)
		id := 0
		got := steadyAllocs(256, func() {
			q.EnqueueBatch(id, args)
			out = q.DequeueBatch(id, b, out[:0])
			id = (id + 1) % 4
		})
		if got > b {
			t.Errorf("SimQueue n=4 allocs per %d-element batch pair = %v, want <= %d (one node per element)", b, got, b)
		}
	})

	t.Run("SimStack/n=4", func(t *testing.T) {
		s := stack.NewSimStack[uint64](4)
		id := 0
		got := steadyAllocs(256, func() {
			s.PushBatch(id, args)
			out = s.PopBatch(id, b, out[:0])
			id = (id + 1) % 4
		})
		if got > b {
			t.Errorf("SimStack n=4 allocs per %d-element batch pair = %v, want <= %d (one node per element)", b, got, b)
		}
	})
}

// TestApplyAllocsContended bounds the amortized allocation rate under real
// CAS contention, where losing rounds rebuild records and every thread's
// ring must absorb the churn. The bound is looser than the sequential one
// only by the goroutine-scheduling noise MemStats cannot exclude.
func TestApplyAllocsContended(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own; bounds only hold without it")
	}
	const n, per = 4, 50_000
	u := core.NewPSim(n, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	})
	run := func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					u.Apply(id, 1)
				}
			}(i)
		}
		wg.Wait()
	}
	run() // warm-up: fill rings, grow goroutine stacks
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	run()
	runtime.ReadMemStats(&ms)
	got := float64(ms.Mallocs-m0) / float64(n*per)
	if got > 2 {
		t.Errorf("PSim n=%d contended allocs/op = %v, want <= 2 amortized", n, got)
	}
}

// TestApplyAllocsContendedBatch is the contended bound for the batched
// entry point: 4 threads ApplyBatch 16-op vectors against each other.
// Per LOGICAL op the rate must round to zero — batching amortizes even the
// record churn of lost CAS races across the whole vector.
func TestApplyAllocsContendedBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on its own; bounds only hold without it")
	}
	const n, calls, b = 4, 3_000, 16
	u := core.NewPSim(n, uint64(0), func(st *uint64, _ int, d uint64) uint64 {
		old := *st
		*st += d
		return old
	})
	run := func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				args := make([]uint64, b)
				res := make([]uint64, 0, b)
				for k := 0; k < calls; k++ {
					res = u.ApplyBatch(id, args, res[:0])
				}
			}(i)
		}
		wg.Wait()
	}
	run() // warm-up: fill rings, grow goroutine stacks
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	run()
	runtime.ReadMemStats(&ms)
	got := float64(ms.Mallocs-m0) / float64(n*calls*b)
	if got > 0.25 {
		t.Errorf("PSim n=%d contended batched allocs per logical op = %v, want <= 0.25 amortized", n, got)
	}
}
