# Development targets for the Sim universal construction reproduction.

GO ?= go

.PHONY: all build vet test race short bench bench-json examples experiments check metrics-demo flight-demo ingest-demo largeobject-demo timeline-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1 -timeout 900s

short:
	$(GO) test ./... -count=1 -short -timeout 300s

race:
	$(GO) test -race ./... -count=1 -timeout 1800s

bench:
	$(GO) test -bench=. -benchmem -timeout 3000s ./...

# Regenerate every figure/table at CI scale (paper scale: OPS=1000000 REPS=10).
OPS ?= 200000
REPS ?= 3
experiments:
	$(GO) run ./cmd/simbench -experiment all -ops $(OPS) -reps $(REPS)

# Refresh the machine-readable perf trajectory (ns/op, allocs/op, helping
# degree for the fig2/fig3 families) checked in as BENCH_psim.json.
bench-json:
	$(GO) run ./cmd/simbench -experiment fig2,fig2help,fig3stack,fig3queue,fig2-batch,map-sharded,ingest,largeobject-crossover,alloc-churn \
		-ops $(OPS) -reps $(REPS) -ingest-batch 1,8,32 -json BENCH_psim.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bankaccount
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/largeobject
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/priorityqueue

# Linearizability + conservation stress across every implementation.
check:
	$(GO) run ./cmd/simcheck -object stack -impl sim
	$(GO) run ./cmd/simcheck -object stack -impl sim -mode linearize
	$(GO) run ./cmd/simcheck -object queue -impl sim
	$(GO) run ./cmd/simcheck -object queue -impl sim -mode linearize
	$(GO) run ./cmd/simcheck -object fmul -impl psim -mode linearize
	$(GO) run ./cmd/simcheck -object fmul -impl pool -mode linearize
	$(GO) run ./cmd/simcheck -object queue -impl sim -batch 8
	$(GO) run ./cmd/simcheck -object queue -impl sim -batch 4 -mode linearize
	$(GO) run ./cmd/simcheck -object stack -impl sim -batch 8
	$(GO) run ./cmd/simcheck -object fmul -impl psim -batch 8 -mode linearize
	$(GO) run ./cmd/simcheck -object map
	$(GO) run ./cmd/simcheck -object map -batch 4 -mode linearize

# Boot simkvd with live metrics, drive a little traffic, scrape /metrics in
# both formats, then shut the daemon down. Uses bash's /dev/tcp so the demo
# needs no netcat.
metrics-demo:
	$(GO) build -o /tmp/simkvd ./cmd/simkvd
	bash -c '/tmp/simkvd -addr 127.0.0.1:7070 -metrics-addr 127.0.0.1:9090 & \
	  trap "kill $$!" EXIT; sleep 0.5; \
	  exec 3<>/dev/tcp/127.0.0.1/7070; \
	  printf "PUT a 1\nPUT b 2\nGET a\nDEL b\nSTATS\nQUIT\n" >&3; cat <&3; \
	  echo "--- prometheus ---"; curl -s http://127.0.0.1:9090/metrics | head -40; \
	  echo "--- json ---"; curl -s "http://127.0.0.1:9090/metrics?format=json"; echo'

flight-demo:
	$(GO) build -o /tmp/simkvd ./cmd/simkvd
	bash -c '/tmp/simkvd -addr 127.0.0.1:7071 -metrics-addr 127.0.0.1:9091 -flight 256 -watchdog 64 & \
	  trap "kill $$!" EXIT; sleep 0.5; \
	  exec 3<>/dev/tcp/127.0.0.1/7071; \
	  printf "PUT a 1\nPUT b 2\nPUT a 3\nDEL b\nGET a\nQUIT\n" >&3; cat <&3; \
	  echo "--- flight recorder (newest 20 events) ---"; \
	  curl -s "http://127.0.0.1:9091/debug/flight?format=text&last=20"; \
	  echo "--- chrome trace -> /tmp/flight.json (open in Perfetto) ---"; \
	  curl -s "http://127.0.0.1:9091/debug/flight" -o /tmp/flight.json; \
	  wc -c /tmp/flight.json'

# Boot simkvd with the large-value tier on, store a mix of small and large
# values, and read STATS back: blob_small/blob_large show which engine
# (inline P-Sim stripes vs L-Sim item records) served each write.
largeobject-demo:
	$(GO) build -o /tmp/simkvd ./cmd/simkvd
	bash -c '/tmp/simkvd -addr 127.0.0.1:7072 -large-threshold 64 & \
	  trap "kill $$!" EXIT; sleep 0.5; \
	  big=$$(printf "x%.0s" $$(seq 1 256)); \
	  exec 3<>/dev/tcp/127.0.0.1/7072; \
	  printf "BPUT tiny hello\nBPUT blob $$big\nBPUT blob $${big}2\nBGET tiny\nBDEL tiny\nSTATS\nQUIT\n" >&3; \
	  cat <&3 | sed "s/VAL x\{20\}.*/VAL x...(large value elided)/"'

# Self-driving ingest smoke: boot simingestd on a loopback port, publish 50k
# events from pipelined producers, poll every partition, and verify sequence
# gaplessness, cursor monotonicity, event conservation, and retention
# high-watermark movement — the same gate CI runs.
ingest-demo:
	$(GO) run ./cmd/simingestd -smoke 50000 -shards 2 -batch 32 -seg 256

# Boot simkvd with a fast timeline scrape and an impossible throughput SLO,
# drive traffic, then show the breach escalating to stderr, the windowed
# /debug/timeline history, and one simstat console frame.
timeline-demo:
	$(GO) build -o /tmp/simkvd ./cmd/simkvd
	$(GO) build -o /tmp/simstat ./cmd/simstat
	bash -c '/tmp/simkvd -addr 127.0.0.1:7073 -metrics-addr 127.0.0.1:9093 \
	    -timeline 100ms -slo "ops>=1000000@1s" & \
	  trap "kill $$!" EXIT; sleep 0.5; \
	  exec 3<>/dev/tcp/127.0.0.1/7073; \
	  printf "PUT a 1\nPUT b 2\nGET a\nPUT a 3\nDEL b\nQUIT\n" >&3; cat <&3; \
	  sleep 1; \
	  echo "--- /debug/timeline (map series, newest samples) ---"; \
	  curl -s "http://127.0.0.1:9093/debug/timeline?window=10s&series=map" | tail -30; \
	  echo "--- simstat frame ---"; \
	  /tmp/simstat -addr 127.0.0.1:9093 -once'

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
