package harness

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the results as an ASCII line chart shaped like the paper's
// figures: x axis = threads, y axis = mean time per run, one glyph per
// implementation. It makes the qualitative shape (who degrades, who stays
// flat, where curves cross) visible directly in terminal output and in
// EXPERIMENTS.md.
func Chart(results []Result, height int) string {
	impls, threads := axes(results)
	cell := index(results)
	if len(impls) == 0 || len(threads) == 0 {
		return "(no data)\n"
	}
	if height < 4 {
		height = 12
	}

	// y range over all cells.
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, r := range results {
		if r.MeanSec < minY {
			minY = r.MeanSec
		}
		if r.MeanSec > maxY {
			maxY = r.MeanSec
		}
	}
	if minY == maxY {
		maxY = minY + 1e-9
	}

	glyphs := []byte{'S', 'c', 'l', 'f', 'm', 't', 'p', 'q', 'x', 'o', 'w'}
	colWidth := 6
	width := len(threads) * colWidth

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	row := func(sec float64) int {
		frac := (sec - minY) / (maxY - minY)
		r := int(math.Round(frac * float64(height-1)))
		return height - 1 - r // row 0 is the top (max)
	}
	for ii, im := range impls {
		g := glyphs[ii%len(glyphs)]
		for ti, n := range threads {
			r, ok := cell[key{im, n}]
			if !ok {
				continue
			}
			x := ti*colWidth + colWidth/2
			y := row(r.MeanSec)
			if grid[y][x] == ' ' {
				grid[y][x] = g
			} else {
				grid[y][x] = '*' // collision: curves overlap here
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%9.2fms ┤\n", maxY*1e3)
	for i := range grid {
		label := strings.Repeat(" ", 12)
		if i == height-1 {
			label = fmt.Sprintf("%9.2fms ", minY*1e3)
		}
		fmt.Fprintf(&b, "%s│%s\n", label, string(grid[i]))
	}
	b.WriteString(strings.Repeat(" ", 12) + "└" + strings.Repeat("─", width) + "\n")
	b.WriteString(strings.Repeat(" ", 13))
	for _, n := range threads {
		fmt.Fprintf(&b, "%-*d", colWidth, n)
	}
	b.WriteString("threads\n\nlegend: ")
	for ii, im := range impls {
		fmt.Fprintf(&b, "%c=%s  ", glyphs[ii%len(glyphs)], im)
	}
	b.WriteString("(*=overlap)\n")
	return b.String()
}
