package v2

import (
	"errors"
	"testing"

	"repro/internal/check"
)

// decodeHistory turns fuzzer bytes into a well-formed (valid windows,
// unique timestamps) but not necessarily linearizable history across the
// driver's object classes. The bytes drive an open/close machine — ops
// open and close in fuzzer-chosen interleavings — and each closing op
// takes its result either from a sequential model evaluated at close time
// (plausible histories that reach deep into the checkers) or from raw
// fuzzer bytes (corrupted histories that must be rejected consistently).
func decodeHistory(data []byte) []check.Operation {
	// maxOps bounds the search oracle's cost: Wing–Gong memoization keys on
	// (state, remaining-mask), and chained windows of distinct values keep
	// states from collapsing, so cost grows like (width!)^(n/width).
	const maxOps = 16
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	var (
		ops     []check.Operation
		opens   []int
		ts      int64
		queue   []uint64
		stack   []uint64
		counter uint64
		mp      = make(map[uint64]uint64)
		nextVal uint64
	)
	tick := func() int64 { ts++; return ts }

	closeOp := func(i int) {
		o := &ops[i]
		honest := next()%4 != 0
		switch o.Op {
		case check.OpEnqueue:
			queue = append(queue, o.Arg)
		case check.OpDequeue:
			if len(queue) > 0 {
				o.Ret, o.RetOK = queue[0], true
				queue = queue[1:]
			}
		case check.OpPush:
			stack = append(stack, o.Arg)
		case check.OpPop:
			if len(stack) > 0 {
				o.Ret, o.RetOK = stack[len(stack)-1], true
				stack = stack[:len(stack)-1]
			}
		case check.OpAdd:
			o.Ret = counter
			counter += o.Arg
		case check.OpRead:
			o.Ret = counter // reads pair with adds in this generator
		case check.OpMapPut:
			k := o.Arg >> 32
			o.Ret, o.RetOK = mp[k], mapHas(mp, k)
			mp[k] = o.Arg & 0xffffffff
		case check.OpMapGet:
			k := o.Arg >> 32
			o.Ret, o.RetOK = mp[k], mapHas(mp, k)
		case check.OpMapDel:
			k := o.Arg >> 32
			o.Ret, o.RetOK = mp[k], mapHas(mp, k)
			delete(mp, k)
		}
		if !honest {
			o.Ret = uint64(next() % 5)
			o.RetOK = next()%2 == 0
		}
		o.Return = tick()
	}

	// maxWidth caps simultaneous open operations: real recorded histories
	// are at most thread-count wide, and the search oracle's cost grows
	// factorially with width on distinct-value histories.
	const maxWidth = 4
	for pos < len(data) && len(ops) < maxOps {
		c := next()
		if (c&1 == 1 || len(opens) >= maxWidth) && len(opens) > 0 {
			k := int(c>>1) % len(opens)
			closeOp(opens[k])
			opens = append(opens[:k], opens[k+1:]...)
			continue
		}
		op := check.Operation{Thread: int(c>>1) % 4, Invoke: tick()}
		switch (c >> 3) % 4 {
		case 0: // queue
			if c&0x40 == 0 {
				nextVal++
				op.Op, op.Arg = check.OpEnqueue, nextVal
			} else {
				op.Op = check.OpDequeue
			}
		case 1: // stack
			if c&0x40 == 0 {
				nextVal++
				op.Op, op.Arg = check.OpPush, nextVal
			} else {
				op.Op = check.OpPop
			}
		case 2: // counter (+ reads, which classify to the counter here)
			if c&0x40 == 0 {
				op.Op, op.Arg = check.OpAdd, uint64(next()%3+1)
			} else {
				op.Op = check.OpRead
			}
		case 3: // map over two keys
			key := uint64(next()%2 + 1)
			switch next() % 3 {
			case 0:
				op.Op, op.Arg = check.OpMapPut, key<<32|uint64(next()%3)
			case 1:
				op.Op, op.Arg = check.OpMapGet, key<<32
			default:
				op.Op, op.Arg = check.OpMapDel, key<<32
			}
		}
		ops = append(ops, op)
		opens = append(opens, len(ops)-1)
	}
	// Close whatever is still open, oldest first.
	for _, i := range opens {
		closeOp(i)
	}
	return ops
}

func mapHas(m map[uint64]uint64, k uint64) bool {
	_, ok := m[k]
	return ok
}

// FuzzHistory differentially fuzzes the checkers: every decoded history is
// run through CheckHistory with EngineBoth, which checks each partition
// with the forward engine AND the Wing–Gong search and reports ErrDisagree
// on any verdict mismatch. Rejections and engine limitations are fine —
// only disagreement (a checker bug) fails.
func FuzzHistory(f *testing.F) {
	f.Add([]byte{0x00, 0x02, 0x01, 0x40, 0x03, 0x05})
	f.Add([]byte{0x08, 0x48, 0x09, 0x0b, 0x48, 0x07})
	f.Add([]byte{0x10, 0x50, 0x11, 0x13, 0x10, 0x51})
	f.Add([]byte{0x18, 0x01, 0x18, 0x02, 0x19, 0x18, 0x03, 0x05, 0x07})
	f.Add([]byte{0x00, 0x00, 0x00, 0x40, 0x40, 0x01, 0x03, 0x05, 0x07, 0x09})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHistory(data)
		if len(ops) == 0 {
			return
		}
		opts := DefaultOptions()
		opts.Engine = EngineBoth
		opts.MaxFrontier = 1 << 12
		err := CheckHistory(ops, opts)
		if errors.Is(err, ErrDisagree) {
			t.Fatalf("engines disagree: %v\nhistory:\n%s", err, FormatHistory(ops))
		}
	})
}

// TestDecodeHistoryWellFormed pins the generator's invariants: valid
// windows, bounded size, and determinism.
func TestDecodeHistoryWellFormed(t *testing.T) {
	data := []byte{0x00, 0x02, 0x01, 0x40, 0x03, 0x05, 0x18, 0x19, 0x10, 0x50, 0x11}
	ops := decodeHistory(data)
	if len(ops) == 0 || len(ops) > 24 {
		t.Fatalf("decoded %d ops", len(ops))
	}
	for _, o := range ops {
		if o.Invoke >= o.Return {
			t.Fatalf("invalid window: %v", o)
		}
	}
	again := decodeHistory(data)
	if len(again) != len(ops) {
		t.Fatal("decoder is nondeterministic")
	}
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatalf("decoder is nondeterministic at op %d: %v vs %v", i, ops[i], again[i])
		}
	}
}
