// Package snapshot implements the single-writer snapshot object the paper
// derives from its Fetch&Add collect (§1, §3): n components, each updated
// by its owner with a SINGLE Fetch&Add, scanned atomically.
//
// Two regimes, mirroring Theorem 3.1:
//
//   - When every component (value + embedded update counter) fits in one
//     64-bit Fetch&Add word, a scan is ONE atomic load: the collect itself
//     is linearizable. Both operations are wait-free with step complexity 1
//     ("one cache miss", as §1 puts it).
//
//   - Otherwise the object spans ⌈n(d+q)/64⌉ words and a scan uses the
//     classic double collect: read all words, read them again, accept when
//     every component's embedded update counter is unchanged — then the two
//     reads bracket a moment at which all observed values coexisted. Updates
//     stay wait-free (1 F&A); scans are lock-free (a scan retries only when
//     a concurrent update COMPLETES, so some operation always progresses).
//
// Each component's value and its update counter share one chunk, so a
// single F&A updates both atomically — a torn view of value-vs-counter is
// impossible by construction.
package snapshot

import (
	"fmt"

	"repro/internal/collect"
)

// SWSnapshot is a single-writer snapshot object.
type SWSnapshot struct {
	n        int
	dataBits int
	seqBits  int
	col      *collect.SimCollect
	dataMask uint64
}

// DefaultSeqBits is the default width of the embedded update counter. A
// scan can only be fooled if a writer performs an exact multiple of 2^seq
// updates between the scan's two collects; 16 bits makes that 65536
// completed F&As inside one scan window.
const DefaultSeqBits = 16

// New returns a snapshot object with n components of dataBits bits each,
// with seqBits of embedded counter (0 selects DefaultSeqBits).
// dataBits+seqBits must be ≤ 64.
func New(n, dataBits, seqBits int) *SWSnapshot {
	if seqBits == 0 {
		seqBits = DefaultSeqBits
	}
	if dataBits < 1 || seqBits < 1 || dataBits+seqBits > 64 {
		panic(fmt.Sprintf("snapshot: bad widths data=%d seq=%d", dataBits, seqBits))
	}
	return &SWSnapshot{
		n:        n,
		dataBits: dataBits,
		seqBits:  seqBits,
		col:      collect.NewSimCollect(n, dataBits+seqBits),
		dataMask: chunkMask(dataBits),
	}
}

func chunkMask(bits int) uint64 {
	if bits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(bits)) - 1
}

// N returns the number of components.
func (s *SWSnapshot) N() int { return s.n }

// Single reports whether the whole object fits in one Fetch&Add word, in
// which case Scan is a single atomic load.
func (s *SWSnapshot) Single() bool { return s.col.Single() }

// Words returns the number of Fetch&Add words backing the object.
func (s *SWSnapshot) Words() int { return s.col.Words() }

// Writer is component i's single-writer handle.
type Writer struct {
	s   *SWSnapshot
	upd *collect.Updater
	seq uint64
}

// Writer returns the handle for component i (single goroutine only).
func (s *SWSnapshot) Writer(i int) *Writer {
	return &Writer{s: s, upd: s.col.Updater(i)}
}

// Update stores v (truncated to dataBits) with one Fetch&Add, bumping the
// embedded update counter so concurrent scans see the change even when the
// value is rewritten unchanged.
func (w *Writer) Update(v uint64) {
	w.seq++
	chunk := (v & w.s.dataMask) | (w.seq&chunkMask(w.s.seqBits))<<uint(w.s.dataBits)
	w.upd.Update(chunk)
}

// Scan returns a linearizable snapshot of all component values. Wait-free
// when Single(); lock-free double collect otherwise.
func (s *SWSnapshot) Scan() []uint64 {
	first := s.col.Collect()
	if s.Single() {
		return s.values(first)
	}
	for {
		second := s.col.Collect()
		if sameSeqs(first, second, s.dataBits) {
			return s.values(second)
		}
		first = second
	}
}

// values strips the embedded counters.
func (s *SWSnapshot) values(chunks []uint64) []uint64 {
	out := make([]uint64, s.n)
	for i, c := range chunks {
		out[i] = c & s.dataMask
	}
	return out
}

func sameSeqs(a, b []uint64, dataBits int) bool {
	for i := range a {
		if a[i]>>uint(dataBits) != b[i]>>uint(dataBits) {
			return false
		}
	}
	return true
}
