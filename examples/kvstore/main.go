// KV store: a wait-free striped hash map assembled from multiple Sim
// instances — the paper's route to data structures with internal
// parallelism (it uses two instances for SimQueue and names the
// generalization as future work; simuc.Map is that generalization).
//
// A mixed read/write workload runs against the store while a monitor
// goroutine continuously reads hot keys; wait-freedom means the monitor can
// never be starved by writers and vice versa.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	simuc "repro"
)

const (
	writers = 6
	keys    = 256
	opsPer  = 3_000
)

func main() {
	m := simuc.NewMap[uint64, uint64](writers, 8)

	var puts, deletes atomic.Uint64
	var wg sync.WaitGroup
	for id := 0; id < writers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9E3779B9 + 11
			for k := 0; k < opsPer; k++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				key := seed % keys
				if seed%5 == 0 {
					m.Delete(id, key)
					deletes.Add(1)
				} else {
					m.Put(id, key, seed)
					puts.Add(1)
				}
			}
		}(id)
	}

	// Concurrent reader: Gets are wait-free single loads, so this loop can
	// run flat out without ever blocking a writer.
	stop := make(chan struct{})
	var reads atomic.Uint64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Get(reads.Add(1) % keys)
		}
	}()

	wg.Wait()
	close(stop)

	fmt.Printf("puts %d, deletes %d, concurrent reads %d\n",
		puts.Load(), deletes.Load(), reads.Load())
	fmt.Printf("final size: %d entries across %d stripes\n", m.Len(), m.Stripes())
	s := m.Stats()
	fmt.Printf("mutations combined per publish: %.2f (across all stripes)\n", s.AvgHelping)
}
