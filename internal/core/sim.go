package core

import (
	"fmt"

	"repro/internal/collect"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/xatomic"
)

// OpBottom is the reserved "no operation announced" value (the paper's ⊥)
// in a Sim instance's collect object. Announced opcodes must be non-zero.
const OpBottom uint64 = 0

// Sim is the theoretical universal construction of Algorithm 1: one LL/SC
// object S holding ⟨applied[1..n], rvals[1..n], st⟩ and one SimCollect
// object Col announcing each process's pending operation.
//
// Operations are announced as d-bit opcodes (the collect object's component
// width); the sequential object is supplied as a pure function mapping
// (state, pid, opcode) to (new state, response). With nd ≤ 64 the collect is
// a single Fetch&Add word and every ApplyOp performs a CONSTANT number of
// shared memory accesses — 2 F&A updates + 2·(LL + collect + SC) = 8 — which
// is the paper's headline result (Theorem 3.1) beating Jayanti's Ω(log n)
// LL/SC lower bound. With nd > 64 the collect costs ⌈nd/64⌉ reads and the
// bound becomes O(nd/b), also per Theorem 3.1.
//
// Sim is wait-free: ApplyOp runs Attempt exactly twice after announcing and
// twice after withdrawing, never waiting on other processes.
type Sim[S, R any] struct {
	n, d  int
	apply func(st S, pid int, op uint64) (S, R)

	col      *collect.SimCollect
	updaters []*collect.Updater
	s        *xatomic.LLSC[simState[S, R]]

	counter *xatomic.AccessCounter // optional shared-access instrumentation
	rec     *obs.SimRecorder       // optional observability plane (nil = off)
	stats   *StatsPlane
}

// simState is the contents of the LL/SC object (struct State of §3).
type simState[S, R any] struct {
	applied []bool
	rvals   []R
	st      S
}

// NewSim builds a theoretical Sim instance for n processes, opcode width d
// bits (1 ≤ d ≤ 64; opcode 0 is reserved as ⊥), initial state init and the
// sequential object's transition function apply. apply must be pure: it
// receives the state by value and returns the successor state.
func NewSim[S, R any](n, d int, init S, apply func(st S, pid int, op uint64) (S, R)) *Sim[S, R] {
	if n < 1 {
		panic("core: Sim needs n >= 1")
	}
	u := &Sim[S, R]{
		n: n, d: d,
		apply:    apply,
		col:      collect.NewSimCollect(n, d),
		updaters: make([]*collect.Updater, n),
		stats:    NewStatsPlane(n),
	}
	u.s = xatomic.NewLLSC(simState[S, R]{
		applied: make([]bool, n),
		rvals:   make([]R, n),
		st:      init,
	})
	return u
}

// SetAccessCounter attaches a shared-memory-access counter (Table 1
// instrumentation). Pass nil to detach. Not safe to call concurrently with
// ApplyOp.
func (u *Sim[S, R]) SetAccessCounter(c *xatomic.AccessCounter) { u.counter = c }

// SetRecorder attaches a distribution recorder (see PSim's SetRecorder).
// Not safe to call concurrently with ApplyOp.
func (u *Sim[S, R]) SetRecorder(rec *obs.SimRecorder) { u.rec = rec }

// SetTracer attaches a flight recorder (see PSim's SetTracer). Sim never
// recycles records, so only round, served and cas_fail events appear; each
// ApplyOp traces as one round event whose degree sums its (up to four) SC
// rounds. Not safe to call concurrently with ApplyOp.
func (u *Sim[S, R]) SetTracer(tr *trace.Tracer) { u.stats.Trace = tr }

// Instrument publishes the instance in reg under prefix (see PSim's
// Instrument). Call before the first operation.
func (u *Sim[S, R]) Instrument(reg *obs.Registry, prefix string) *obs.SimRecorder {
	u.stats.Register(reg, prefix)
	rec := obs.NewSimRecorder(reg, prefix, u.n)
	u.SetRecorder(rec)
	return rec
}

// N returns the number of processes.
func (u *Sim[S, R]) N() int { return u.n }

// CollectWords returns the number of Fetch&Add words backing the collect
// object (the ⌈nd/b⌉ factor of Theorem 3.1).
func (u *Sim[S, R]) CollectWords() int { return u.col.Words() }

func (u *Sim[S, R]) updater(i int) *collect.Updater {
	if u.updaters[i] == nil {
		u.updaters[i] = u.col.Updater(i)
	}
	return u.updaters[i]
}

// ApplyOp announces opcode op (which must be non-zero and fit in d bits) for
// process i, runs the two-phase Attempt protocol of Algorithm 1, and returns
// the operation's response. Each process id must be driven by one goroutine.
func (u *Sim[S, R]) ApplyOp(i int, op uint64) R {
	if op == OpBottom {
		panic("core: opcode 0 is reserved as ⊥")
	}
	if u.d < 64 && op>>uint(u.d) != 0 {
		panic(fmt.Sprintf("core: opcode %#x exceeds %d bits", op, u.d))
	}
	upd := u.updater(i)
	t0 := u.rec.Start(i)
	tr := u.stats.Trace
	tt := tr.OpStart(i)

	upd.Update(op) // line 1: announce op
	SchedYield(i, PointAnnounce)
	u.countAccess(i, 1)
	combined := u.attempt(i) // line 2

	upd.Update(OpBottom) // line 3: withdraw the announcement
	u.countAccess(i, 1)
	combined += u.attempt(i) // line 4: eliminate the evidence of op

	rv := u.s.Read().rvals[i] // line 5
	u.countAccess(i, 1)
	u.stats.Ops.Inc(i)
	u.rec.OpDone(i, t0)
	if combined > 0 {
		tr.OpCommit(i, tt, combined, 0, combined) // at least one SC of ours published
	} else {
		tr.OpServed(i, tt) // every SC lost: a helper applied our op
	}
	return rv
}

// attempt is Algorithm 1's Attempt: run the LL/collect/apply/SC round
// exactly twice (Observation 3.2 rests on both rounds executing). It
// returns the total combining degree of its successful SC rounds.
func (u *Sim[S, R]) attempt(i int) uint64 {
	st := u.stats
	tr := st.Trace
	total := uint64(0)
	ops := make([]uint64, u.n)
	for j := 0; j < 2; j++ {
		ls, tag := u.s.LL() // line 7
		SchedYield(i, PointCollect)
		u.countAccess(i, 1)
		u.col.CollectInto(ops) // line 8
		u.countAccess(i, uint64(u.col.Words()))

		// lines 9–13: local loop — apply every announced-but-unapplied
		// operation to a local copy of the state.
		ns := simState[S, R]{
			applied: append([]bool(nil), ls.applied...),
			rvals:   append([]R(nil), ls.rvals...),
			st:      ls.st,
		}
		combined := uint64(0)
		for q := 0; q < u.n; q++ {
			if ops[q] != OpBottom && !ns.applied[q] {
				ns.st, ns.rvals[q] = u.apply(ns.st, q, ops[q])
				combined++
			}
			ns.applied[q] = ops[q] != OpBottom
		}

		SchedYield(i, PointCAS)
		if u.s.SC(tag, ns) { // line 14
			st.CASSuccess.Inc(i)
			st.Combined.Add(i, combined)
			u.rec.CombineObserved(i, combined)
			total += combined
		} else {
			st.CASFail.Inc(i)
			tr.Instant(i, trace.KindCASFail, uint64(j), 0)
		}
		u.countAccess(i, 1)
	}
	return total
}

func (u *Sim[S, R]) countAccess(i int, n uint64) {
	u.counter.Add(i, n)
}

// Read returns the current simulated state (immutable by the purity
// contract of apply).
func (u *Sim[S, R]) Read() S { return u.s.Read().st }

// Stats returns aggregated combining statistics.
func (u *Sim[S, R]) Stats() Stats { return u.stats.Aggregate() }

// ResetStats zeroes the statistics counters.
func (u *Sim[S, R]) ResetStats() { u.stats.Reset() }
